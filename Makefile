GO ?= go

.PHONY: all build vet test race bench-smoke

all: vet test

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A fast allocation/throughput smoke over the hot paths: the obs
# registry (must stay allocation-free) and one end-to-end experiment.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=1000x ./internal/obs/
	$(GO) test -run='^$$' -bench=BenchmarkFig7TableCurves -benchtime=1x .
