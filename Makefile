GO ?= go

.PHONY: all build vet test race bench-smoke bench-proxy bench-synth chaos crash fuzz-smoke

all: vet test

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The fault-tolerance suite under the race detector: deterministic
# fault injection (internal/faultnet), the per-site circuit breaker,
# the mediator's degraded-mode accounting, and the 3-site black-hole
# end-to-end cycle. The synth chaos run streams the flight recorder's
# fault exemplars to chaos_exemplars.jsonl (archived by CI).
chaos:
	$(GO) test -race -v ./internal/faultnet/
	$(GO) test -race -v -run 'TestChaos|TestBreaker|TestSiteUnavailable|TestDegraded|TestHealthDetached' \
		./internal/wire/ ./internal/federation/
	CHAOS_EXEMPLARS_OUT=$(CURDIR)/chaos_exemplars.jsonl \
		$(GO) test -race -v -run 'TestChaosSynth' ./cmd/bysynth/

# Kill-tolerant recovery suite under the race detector: a real
# byproxyd subprocess is SIGKILLed mid-workload (and deterministically
# crashed mid-WAL-write via -persist-faults), then restarted on the
# same -state-dir; it must come back warm with Σ ledger yields = D_A
# and zero WAN refetches for the persisted cache, and corrupted
# snapshot/WAL tails must fall back to the previous generation.
# Snapshot format compatibility rides along: version-1 (pre-sharding)
# snapshots restore into a sharded plane, sharded snapshots round-trip
# at several -decision-shards counts, and a daemon restarted with a
# different shard count rehashes its state. Every startup's recovery
# report is appended to crash_recovery.log (archived by CI).
crash:
	rm -f crash_recovery.log
	CRASH_RECOVERY_LOG=$(CURDIR)/crash_recovery.log \
		$(GO) test -race -v -count=1 \
		-run 'TestKillRecoveryEndToEnd|TestFaultInjectedTornWALRecovery|TestCorruptTailFallsBackAcrossRestart|TestShardLayoutChangeAcrossRestart' \
		./cmd/byproxyd/
	$(GO) test -race -v -count=1 -run 'TestBreakerRestartCycle' ./internal/wire/
	$(GO) test -race -v -count=1 \
		-run 'TestShardedSnapshotRoundTrip|TestShardLayoutChangeRestores|TestV1SnapshotRestoresIntoShardedPlane' \
		./internal/persist/
	cat crash_recovery.log

# A bounded fuzz of the decoders that face untrusted or crash-torn
# bytes: the wire frame reader, the persistence WAL walker, and the
# snapshot frame + policy-blob decoders must never panic or
# over-allocate.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadFrame -fuzztime=30s ./internal/wire/
	$(GO) test -run='^$$' -fuzz=FuzzWALReplay -fuzztime=30s ./internal/persist/
	$(GO) test -run='^$$' -fuzz=FuzzSnapshotDecode -fuzztime=30s ./internal/persist/

# A fast allocation/throughput smoke over the hot paths: the obs
# registry (must stay allocation-free) and one end-to-end experiment.
# The obs run is distilled into BENCH_obs.json (ns/op and allocs/op
# per benchmark) so CI can archive hot-path numbers across commits.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=1000x ./internal/obs/ | tee bench_obs.txt
	awk 'BEGIN { print "{"; n = 0 } \
	  /^Benchmark/ { \
	    if (n++) printf ",\n"; \
	    name = $$1; sub(/-[0-9]+$$/, "", name); \
	    printf "  \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s}", name, $$3, $$7 \
	  } \
	  END { print "\n}" }' bench_obs.txt > BENCH_obs.json
	rm -f bench_obs.txt
	cat BENCH_obs.json
	$(GO) test -run='^$$' -bench=BenchmarkFig7TableCurves -benchtime=1x .

# The concurrent-pipeline benchmark: 8 clients over a 4-site federation
# with ~2ms of simulated WAN latency per conn operation, serial
# (pre-pipeline, -max-inflight 1) vs concurrent (default bounds) with
# client-side p50/p99 latency, plus the pooled frame encoder's
# allocation budget and the decide-phase contention matrix (decision
# shard count × disjoint/overlapping object sets, with per-query lock
# wait). Distilled into BENCH_proxy.json so CI archives throughput,
# latency, and decision-plane serialization per commit.
bench-proxy:
	$(GO) test -run='^$$' -bench=BenchmarkProxyThroughput -benchtime=200x ./internal/wire/ | tee bench_proxy.txt
	$(GO) test -run='^$$' -bench=BenchmarkWriteFrame -benchmem -benchtime=100000x ./internal/wire/ | tee -a bench_proxy.txt
	$(GO) test -run='^$$' -bench=BenchmarkMediatorDecide -benchmem -benchtime=1s -cpu=8 ./internal/federation/ | tee -a bench_proxy.txt
	awk -f scripts/bench_proxy.awk bench_proxy.txt > BENCH_proxy.json
	rm -f bench_proxy.txt
	cat BENCH_proxy.json

# The open-loop load harness against a real two-node federation: bydbd
# for the photo and spec sites, byproxyd mediating, bysynth
# binary-searching the saturation knee (max RPS with p99 under the
# 500ms objective) over the wire protocol. The report — the knee, the
# probe trail, and the best probe's full latency/SLO/flow accounting —
# lands in BENCH_synth.json for CI to archive. The run is a perf gate
# twice over: attainment below SLO_FAIL (default 0.90) exits nonzero,
# and benchgate fails the build when the knee or achieved RPS drops
# (or p99 drifts) beyond tolerance vs the committed BENCH_synth.json.
bench-synth:
	sh scripts/bench_synth.sh
