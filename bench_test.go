// Package bypassyield holds the repository-level benchmark harness:
// one testing.B benchmark per table and figure of the paper's
// evaluation (regenerating its rows at reduced scale), plus
// throughput micro-benchmarks for the cache decision path.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Full-scale experiment output comes from `go run ./cmd/bybench`.
package bypassyield

import (
	"io"
	"math/rand"
	"sync"
	"testing"

	"bypassyield/internal/core"
	"bypassyield/internal/experiments"
	"bypassyield/internal/federation"
	"bypassyield/internal/trace"
	"bypassyield/internal/workload"
)

// benchScale reduces the paper's workload 100× so each benchmark
// iteration stays sub-second; cmd/bybench regenerates full scale.
const benchScale = 100

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

// benchSuite shares one Suite across benchmarks so trace generation
// (the dominant cost) is paid once and cached.
func benchSuite() *experiments.Suite {
	suiteOnce.Do(func() { suite = experiments.NewSuite(benchScale) })
	return suite
}

func benchExperiment(b *testing.B, id string) {
	s := benchSuite()
	// Prime the trace cache outside the timed region.
	if _, err := s.Run(id); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := s.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if err := tab.WriteText(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4QueryContainment(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFig5ColumnLocality(b *testing.B)    { benchExperiment(b, "fig5") }
func BenchmarkFig6TableLocality(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig7TableCurves(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8ColumnCurves(b *testing.B)      { benchExperiment(b, "fig8") }
func BenchmarkFig9TableCacheSweep(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10ColumnCacheSweep(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkTable1ColumnBreakdown(b *testing.B) { benchExperiment(b, "tab1") }
func BenchmarkTable2TableBreakdown(b *testing.B)  { benchExperiment(b, "tab2") }

// Extension experiments (beyond the paper's evaluation).
func BenchmarkXSemSemanticCaching(b *testing.B)   { benchExperiment(b, "xsem") }
func BenchmarkXNetNonUniformNetwork(b *testing.B) { benchExperiment(b, "xnet") }
func BenchmarkXCompCompetitiveRatio(b *testing.B) { benchExperiment(b, "xcomp") }
func BenchmarkXHierCacheHierarchy(b *testing.B)   { benchExperiment(b, "xhier") }

// benchTrace builds a scaled EDR column-granularity request stream
// for the micro-benchmarks.
func benchTrace(b *testing.B) ([]core.Request, map[core.ObjectID]core.Object, int64) {
	b.Helper()
	p := workload.ScaledProfile(workload.EDRProfile(), benchScale)
	recs, err := workload.Generate(p, federation.Columns)
	if err != nil {
		b.Fatal(err)
	}
	reqs := trace.Requests(trace.Preprocess(recs))
	objs := federation.Objects(p.Schema, federation.Columns, nil)
	return reqs, objs, p.Schema.TotalBytes() * 4 / 10
}

// benchPolicy measures end-to-end decision+accounting throughput of
// one policy over the trace; the reported metric is ns per access.
func benchPolicy(b *testing.B, mk func(capacity int64) core.Policy) {
	reqs, objs, capacity := benchTrace(b)
	var accesses int64
	for _, r := range reqs {
		accesses += int64(len(r.Accesses))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := mk(capacity)
		sim := &core.Simulator{Policy: p, Objects: objs}
		if _, err := sim.Run(reqs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(accesses), "ns/access")
}

func BenchmarkPolicyRateProfile(b *testing.B) {
	benchPolicy(b, func(c int64) core.Policy {
		return core.NewRateProfile(core.RateProfileConfig{Capacity: c})
	})
}

func BenchmarkPolicyOnlineBY(b *testing.B) {
	benchPolicy(b, func(c int64) core.Policy {
		return core.NewOnlineBY(core.NewLandlord(c))
	})
}

func BenchmarkPolicySpaceEffBY(b *testing.B) {
	benchPolicy(b, func(c int64) core.Policy {
		return core.NewSpaceEffBY(core.NewLandlord(c), rand.NewSource(1))
	})
}

func BenchmarkPolicyGDS(b *testing.B) {
	benchPolicy(b, func(c int64) core.Policy { return core.NewGDS(c) })
}

// BenchmarkWorkloadGenerate measures trace synthesis (including the
// sequence-cost calibration loop).
func BenchmarkWorkloadGenerate(b *testing.B) {
	p := workload.ScaledProfile(workload.EDRProfile(), benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(p, federation.Columns); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStaticPlan measures the offline knapsack planner.
func BenchmarkStaticPlan(b *testing.B) {
	reqs, objs, capacity := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.PlanStatic(capacity, reqs, objs)
	}
}

func BenchmarkXViewGranularity(b *testing.B) { benchExperiment(b, "xview") }

func BenchmarkXScaleFederationGrowth(b *testing.B) { benchExperiment(b, "xscale") }
