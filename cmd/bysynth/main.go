// Command bysynth synthesizes a workload scenario and drives it
// open-loop against a live byproxyd, reporting latency quantiles, SLO
// attainment, achieved-vs-target throughput, and the proxy's byte
// flow by decision class over the run window.
//
// Scenarios come from three places, in precedence order: -spec (a
// JSON file, the full model — named RPS slots, per-tenant mixes, Zipf
// skew, size shaping), -slots (the compact flag grammar,
// single-tenant), or -scenario (a canned name; see -list).
//
// -scenario saturation is a search mode rather than a fixed schedule:
// constant-rate probes double from -sat-low until one misses the SLO,
// then bisect the bracket, reporting the knee — the max RPS the proxy
// sustains with p99 under -slo — plus the full probe trail.
//
// The harness is open-loop: the arrival schedule is fixed before the
// run starts and never waits on completions. When the proxy falls
// behind, arrivals past the in-flight cap are shed and counted — so
// overload shows up as achieved < target plus a nonzero shed counter,
// with the full queueing delay charged to the latency histogram,
// instead of the coordinated omission a closed-loop driver hides.
//
// Usage:
//
//	bysynth -addr localhost:7100                      # canned "steady"
//	bysynth -addr localhost:7100 -scenario rampx4 -out report.json
//	bysynth -addr localhost:7100 -slots 'constant:100x30s,ramp:100..400x1m'
//	bysynth -addr localhost:7100 -spec nightly.json -time-scale 4
//	bysynth -list
//
// Per-query failures, degraded results, and shedding are report data,
// not process failures: bysynth exits nonzero only when the run
// cannot proceed at all (bad spec, unreachable proxy after -wait) —
// or when -slo-fail is set and attainment lands below it, turning the
// harness into a CI latency gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bypassyield/internal/synth"
	"bypassyield/internal/wire"
)

type options struct {
	addr     string
	scenario string
	specPath string
	slots    string

	release string
	seed    int64
	arrival string

	maxInflight int
	slo         time.Duration
	dialTimeout time.Duration
	drain       time.Duration
	timeScale   float64
	rpsScale    float64
	wait        time.Duration

	satLow    float64
	satMax    float64
	satProbe  time.Duration
	satBisect int

	out      string
	asJSON   bool
	quiet    bool
	noScrape bool
	sloFail  float64
}

func main() {
	var o options
	list := flag.Bool("list", false, "list canned scenarios and exit")
	flag.StringVar(&o.addr, "addr", "localhost:7100", "byproxyd client address")
	flag.StringVar(&o.scenario, "scenario", "steady", "canned scenario name (see -list)")
	flag.StringVar(&o.specPath, "spec", "", "JSON scenario spec file (overrides -scenario and -slots)")
	flag.StringVar(&o.slots, "slots", "", "compact slot grammar, e.g. 'constant:100x30s,ramp:50..200x1m,sine:80~60x2m/30s' (overrides -scenario)")
	flag.StringVar(&o.release, "release", "", "override the scenario's release (edr, dr1)")
	flag.Int64Var(&o.seed, "seed", 0, "override the scenario's seed (same seed ⇒ same run)")
	flag.StringVar(&o.arrival, "arrival", "", "override the arrival pacing (poisson, uniform)")
	flag.IntVar(&o.maxInflight, "max-inflight", synth.DefaultMaxInflight, "in-flight cap; arrivals past it are shed, never queued")
	flag.DurationVar(&o.slo, "slo", synth.DefaultSLO, "latency objective to report attainment against")
	flag.DurationVar(&o.dialTimeout, "dial-timeout", wire.DefaultDialTimeout, "per-connection dial timeout")
	flag.DurationVar(&o.drain, "drain-timeout", synth.DefaultDrainTimeout, "post-schedule wait for in-flight queries")
	flag.Float64Var(&o.timeScale, "time-scale", 1, "compress the scenario in time (2 = twice as fast)")
	flag.Float64Var(&o.rpsScale, "rps-scale", 1, "multiply every target rate")
	flag.DurationVar(&o.wait, "wait", 0, "retry the first proxy contact for up to this long (daemon startup races)")
	flag.StringVar(&o.out, "out", "", "write the JSON report to this file")
	flag.BoolVar(&o.asJSON, "json", false, "print the JSON report to stdout instead of the table")
	flag.BoolVar(&o.quiet, "quiet", false, "suppress progress logging")
	flag.BoolVar(&o.noScrape, "no-scrape", false, "skip the proxy metrics scrape (targets that only speak MsgQuery)")
	flag.Float64Var(&o.sloFail, "slo-fail", 0, "exit nonzero when SLO attainment falls below this fraction (0 disables; e.g. 0.90)")
	flag.Float64Var(&o.satLow, "sat-low", synth.DefaultSatLowRPS, "saturation search: first probe rate (rps)")
	flag.Float64Var(&o.satMax, "sat-max", synth.DefaultSatMaxRPS, "saturation search: expansion cap (rps)")
	flag.DurationVar(&o.satProbe, "sat-probe", synth.DefaultSatProbe, "saturation search: per-probe schedule length")
	flag.IntVar(&o.satBisect, "sat-bisect", synth.DefaultSatBisections, "saturation search: bisection probes after the knee is bracketed")
	flag.Parse()

	if *list {
		for _, name := range synth.CannedNames() {
			fmt.Println(name)
		}
		fmt.Println("saturation")
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bysynth:", err)
		os.Exit(1)
	}
}

// loadScenario resolves the spec/slots/canned precedence and applies
// the command-line overrides.
func loadScenario(o options) (*synth.Scenario, error) {
	var sc *synth.Scenario
	switch {
	case o.specPath != "":
		data, err := os.ReadFile(o.specPath)
		if err != nil {
			return nil, err
		}
		if sc, err = synth.ParseScenario(data); err != nil {
			return nil, err
		}
	case o.slots != "":
		slots, err := synth.ParseSlots(o.slots)
		if err != nil {
			return nil, err
		}
		sc = &synth.Scenario{Name: "adhoc", Seed: 1, Slots: slots}
	default:
		var err error
		if sc, err = synth.Canned(o.scenario); err != nil {
			return nil, fmt.Errorf("%w (have %s)", err, strings.Join(synth.CannedNames(), ", "))
		}
	}
	if o.release != "" {
		sc.Release = o.release
	}
	if o.seed != 0 {
		sc.Seed = o.seed
	}
	if o.arrival != "" {
		sc.Arrival = o.arrival
	}
	sc.Scale(o.timeScale, o.rpsScale)
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// waitReady retries a metrics ping until the proxy answers or the
// budget runs out, absorbing daemon-startup races in scripts and CI.
func waitReady(ctx context.Context, addr string, budget, dialTimeout time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		c, err := wire.DialTimeout(addr, dialTimeout)
		if err == nil {
			_, err = c.Metrics()
			c.Close()
			if err == nil {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("proxy at %s not ready after %v: %w", addr, budget, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}

func run(ctx context.Context, o options, stdout io.Writer) error {
	logf := func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	if o.quiet {
		logf = nil
	}
	runCfg := synth.RunConfig{
		Addr:         o.addr,
		MaxInflight:  o.maxInflight,
		SLO:          o.slo,
		DialTimeout:  o.dialTimeout,
		DrainTimeout: o.drain,
		SkipScrape:   o.noScrape,
		Logf:         logf,
	}

	var rep *synth.Report
	var err error
	if o.specPath == "" && o.slots == "" && o.scenario == "saturation" {
		// The saturation "scenario" is a search mode: constant-rate
		// probes binary-searching the knee — the max RPS the proxy
		// sustains with p99 under the SLO. Release/seed/arrival
		// overrides shape the probe workload as usual.
		base := &synth.Scenario{Name: "saturation", Seed: 5}
		if o.release != "" {
			base.Release = o.release
		}
		if o.seed != 0 {
			base.Seed = o.seed
		}
		if o.arrival != "" {
			base.Arrival = o.arrival
		}
		if o.wait > 0 {
			if err := waitReady(ctx, o.addr, o.wait, o.dialTimeout); err != nil {
				return err
			}
		}
		rep, err = synth.Saturate(ctx, synth.SaturationConfig{
			Run:           runCfg,
			Base:          base,
			LowRPS:        o.satLow,
			MaxRPS:        o.satMax,
			ProbeDuration: o.satProbe,
			Bisections:    o.satBisect,
		})
	} else {
		var sc *synth.Scenario
		if sc, err = loadScenario(o); err != nil {
			return err
		}
		if o.wait > 0 {
			if err := waitReady(ctx, o.addr, o.wait, o.dialTimeout); err != nil {
				return err
			}
		}
		rep, err = synth.Run(ctx, sc, runCfg)
	}
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if o.out != "" {
		if err := os.WriteFile(o.out, data, 0o644); err != nil {
			return err
		}
	}
	if o.asJSON {
		if _, err := stdout.Write(data); err != nil {
			return err
		}
	} else if err := rep.WriteText(stdout); err != nil {
		return err
	}
	// The SLO gate runs after the report is out: a failing run still
	// leaves the full evidence on stdout and in -out.
	if o.sloFail > 0 && rep.SLO.Attainment < o.sloFail {
		return fmt.Errorf("slo gate: attainment %.4f below -slo-fail %.4f (%d/%d met the %v objective)",
			rep.SLO.Attainment, o.sloFail, rep.SLO.Met, rep.Completed, o.slo)
	}
	return nil
}
