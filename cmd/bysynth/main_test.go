package main

import (
	"context"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bypassyield/internal/catalog"
	"bypassyield/internal/engine"
	"bypassyield/internal/faultnet"
	"bypassyield/internal/federation"
	"bypassyield/internal/obs"
	"bypassyield/internal/obs/flightrec"
	"bypassyield/internal/synth"
	"bypassyield/internal/wire"
)

func TestLoadScenarioPrecedence(t *testing.T) {
	// Canned by name, with overrides.
	sc, err := loadScenario(options{scenario: "steady", seed: 99, release: "dr1", arrival: "uniform", timeScale: 2, rpsScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "steady" || sc.Seed != 99 || sc.Release != "dr1" || sc.Arrival != "uniform" {
		t.Fatalf("overrides not applied: %+v", sc)
	}
	if got := sc.TotalDuration(); got != 5*time.Second {
		t.Fatalf("time-scale 2 on steady: duration = %v, want 5s", got)
	}

	// The slot grammar builds an ad-hoc scenario.
	sc, err = loadScenario(options{slots: "ramp:10..40x2s", scenario: "steady", timeScale: 1, rpsScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "adhoc" || len(sc.Slots) != 1 || sc.Slots[0].Shape != synth.ShapeRamp {
		t.Fatalf("slots grammar ignored: %+v", sc)
	}

	// A spec file wins over both.
	spec := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(spec, []byte(`{"name":"from-file","seed":3,"slots":[{"shape":"constant","rps":5,"duration":"1s"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err = loadScenario(options{specPath: spec, slots: "constant:1x1s", scenario: "steady", timeScale: 1, rpsScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "from-file" {
		t.Fatalf("spec file did not win: %+v", sc)
	}

	if _, err := loadScenario(options{scenario: "no-such"}); err == nil || !strings.Contains(err.Error(), "steady") {
		t.Fatalf("unknown canned name should list the choices, got %v", err)
	}
	// Overrides are validated: a bad arrival mode fails loudly.
	if _, err := loadScenario(options{scenario: "steady", arrival: "bursty", timeScale: 1, rpsScale: 1}); err == nil {
		t.Fatal("bad -arrival accepted")
	}
}

// testFederation stands up an in-process EDR federation — engine, one
// DBNode per site, mediating proxy — optionally with a fault injector
// on the proxy's node connections. It returns the client address and
// the proxy for flight-recorder inspection.
func testFederation(t *testing.T, inj *faultnet.Injector) (string, *wire.Proxy) {
	t.Helper()
	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 100000})
	if err != nil {
		t.Fatal(err)
	}
	quiet := func(string, ...any) {}

	addrs := map[string]string{}
	for _, site := range []string{catalog.SitePhoto, catalog.SiteSpec, catalog.SiteMeta} {
		n := wire.NewDBNode(site, db)
		n.SetLogf(quiet)
		naddr, err := n.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		addrs[site] = naddr
	}

	med, err := federation.New(federation.Config{
		Schema: s, Engine: db, Granularity: federation.Tables, Obs: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy := wire.NewProxy(med, federation.Tables, addrs)
	proxy.SetLogf(quiet)
	if inj != nil {
		proxy.SetDialer(func(_, a string) (net.Conn, error) {
			c, err := net.DialTimeout("tcp", a, time.Second)
			if err != nil {
				return nil, err
			}
			return inj.Conn(c), nil
		})
	}
	addr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	return addr, proxy
}

// TestRunAgainstProxy drives the full command path — waitReady, a
// scaled canned scenario, JSON report to -out — against a healthy
// in-process federation.
func TestRunAgainstProxy(t *testing.T) {
	addr, _ := testFederation(t, nil)
	out := filepath.Join(t.TempDir(), "report.json")
	var sb strings.Builder
	err := run(context.Background(), options{
		addr: addr, scenario: "steady", timeScale: 10, rpsScale: 0.5,
		maxInflight: 32, wait: 5 * time.Second, out: out, quiet: true,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep synth.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, data)
	}
	// steady is 100 rps × 10s; scaled ÷10 in time and ×0.5 in rate it
	// targets ~50 ops in 1s.
	if rep.Scenario != "steady" || rep.TargetOps == 0 || rep.Completed == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Completed != rep.Dispatched || rep.Errors != 0 {
		t.Fatalf("healthy federation dropped queries: %+v", rep)
	}
	if rep.Latency.P50US <= 0 || rep.Latency.P999US < rep.Latency.P50US {
		t.Fatalf("latency = %+v", rep.Latency)
	}
	// The proxy scrape fills the decision-class byte flow; an EDR run
	// with no policy moves every byte over the WAN (bypass).
	if rep.Proxy == nil || rep.Proxy.Queries == 0 {
		t.Fatalf("proxy delta missing: %+v", rep.Proxy)
	}
	if rep.Proxy.YieldBytes == 0 {
		t.Fatalf("proxy saw no yield: %+v", rep.Proxy)
	}
	if !strings.Contains(sb.String(), "achieved") {
		t.Fatalf("table output missing:\n%s", sb.String())
	}
}

// TestChaosSynth is the CI chaos satellite: a short steady run with
// fault injection on both the proxy's node legs and the client
// connections must record nonzero errors or degraded results — and
// still produce a clean report with the accounting identities intact
// (exit 0; failures under chaos are data). The flight recorder must
// capture the faults as complete exemplars; with CHAOS_EXEMPLARS_OUT
// set, they are also streamed to a JSONL file (archived by CI).
func TestChaosSynth(t *testing.T) {
	inj := faultnet.NewInjector(7)
	inj.Set(faultnet.Faults{Latency: time.Millisecond, ResetProb: 0.05})
	addr, proxy := testFederation(t, inj)

	if path := os.Getenv("CHAOS_EXEMPLARS_OUT"); path != "" {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Close() })
		proxy.SetExemplarSink(flightrec.NewJSONL(f))
	}

	clientChaos := faultnet.NewInjector(11)
	clientChaos.Set(faultnet.Faults{ResetProb: 0.02})

	sc, err := synth.Canned("steady")
	if err != nil {
		t.Fatal(err)
	}
	sc.Scale(5, 0.8) // 2s at 80 rps
	rep, err := synth.Run(context.Background(), sc, synth.RunConfig{
		Addr:        addr,
		MaxInflight: 32,
		Dialer: func(a string) (net.Conn, error) {
			c, err := net.DialTimeout("tcp", a, time.Second)
			if err != nil {
				return nil, err
			}
			return clientChaos.Conn(c), nil
		},
	})
	if err != nil {
		t.Fatalf("chaos run must not fail the process: %v", err)
	}
	if rep.Errors+rep.Degraded == 0 {
		t.Fatalf("chaos run saw no faults: %+v", rep)
	}
	if rep.Completed == 0 {
		t.Fatalf("chaos run completed nothing: %+v", rep)
	}
	if got := rep.Completed + rep.Errors + rep.Abandoned; got != rep.Dispatched {
		t.Fatalf("identity broken under chaos: completed %d + errors %d + abandoned %d ≠ dispatched %d",
			rep.Completed, rep.Errors, rep.Abandoned, rep.Dispatched)
	}

	// The probabilistic draws above may land entirely on client
	// connections (which the proxy never mediates); hard-fail every
	// node leg for a few direct queries so at least one server-side
	// fault exemplar exists deterministically.
	inj.Set(faultnet.Faults{ResetProb: 1})
	cl, err := wire.DialTimeout(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		// Minted correlation ids double as the traced-exemplar fixture.
		tctx := obs.TraceContext{TraceID: obs.NewID(), SpanID: obs.NewID()}
		cl.QueryTraced("select z, zconf from specobj where z < 3", tctx) // errors are the point
	}
	cl.Close()
	inj.Set(faultnet.Faults{})

	// The proxy's flight recorder saw the same chaos: at least one
	// error or degraded exemplar, captured completely — query text,
	// duration, attribution, and a live runtime snapshot.
	exs := proxy.Flight().Snapshot()
	hit := 0
	for _, e := range exs {
		if e.Outcome != flightrec.OutcomeError && e.Outcome != flightrec.OutcomeDegraded {
			continue
		}
		hit++
		if e.SQL == "" || e.DurUS <= 0 {
			t.Fatalf("incomplete exemplar: %+v", e)
		}
		if e.Outcome == flightrec.OutcomeError && e.Err == "" {
			t.Fatalf("error exemplar without error text: %+v", e)
		}
		if len(e.Attribution) == 0 || e.Cause == "" {
			t.Fatalf("exemplar missing attribution: %+v", e)
		}
		if e.Runtime.Goroutines <= 0 || e.Runtime.HeapAllocBytes <= 0 {
			t.Fatalf("exemplar missing runtime snapshot: %+v", e)
		}
		// Degraded results come from failed or partial legs. When the
		// breaker is already open the leg fast-fails before any wire
		// activity, so no LegRec exists — but the decision record must
		// still name the failed site so the exemplar stays explainable.
		if e.Outcome == flightrec.OutcomeDegraded && len(e.Legs) == 0 && len(e.Decisions) == 0 {
			t.Fatalf("degraded exemplar with neither legs nor decisions: %+v", e)
		}
	}
	if hit == 0 {
		t.Fatalf("chaos run (%d errors, %d degraded) published no fault exemplar among %d",
			rep.Errors, rep.Degraded, len(exs))
	}
	// Per-op minted correlation ids reach the recorder.
	traced := 0
	for _, e := range exs {
		if e.Trace != "" {
			traced++
		}
	}
	if traced == 0 {
		t.Fatalf("no exemplar carries a trace id: %+v", exs)
	}
	t.Logf("chaos: %d completed, %d errors, %d degraded, %d shed; %d fault exemplars (%d traced)",
		rep.Completed, rep.Errors, rep.Degraded, rep.Shed, hit, traced)
}

// TestSLOGate: -slo-fail turns attainment into an exit code — an
// impossible objective must fail the run after the report is written,
// an easy one must pass.
func TestSLOGate(t *testing.T) {
	addr, _ := testFederation(t, nil)
	base := options{
		addr: addr, scenario: "steady", timeScale: 20, rpsScale: 0.25,
		maxInflight: 32, wait: 5 * time.Second, quiet: true, slo: synth.DefaultSLO,
	}

	var sb strings.Builder
	ok := base
	ok.sloFail = 0.01
	if err := run(context.Background(), ok, &sb); err != nil {
		t.Fatalf("easy slo gate failed: %v", err)
	}

	sb.Reset()
	bad := base
	bad.slo = time.Nanosecond // nothing completes in a nanosecond
	bad.sloFail = 0.99
	err := run(context.Background(), bad, &sb)
	if err == nil || !strings.Contains(err.Error(), "slo gate") {
		t.Fatalf("impossible slo gate passed: %v", err)
	}
	// The report must still have been rendered before the gate fired.
	if !strings.Contains(sb.String(), "achieved") {
		t.Fatalf("gate failure swallowed the report:\n%s", sb.String())
	}
}
