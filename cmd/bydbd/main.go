// Command bydbd runs a federation member database node: it owns the
// tables of one site of a data release and answers sub-queries and
// object fetches from the proxy over TCP.
//
// Usage:
//
//	bydbd -release edr -site photo.sdss.org -addr :7101 \
//	  -http :7181 -trace-out node-spans.jsonl -exemplar-out node-tails.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bypassyield/internal/catalog"
	"bypassyield/internal/engine"
	"bypassyield/internal/faultnet"
	"bypassyield/internal/obs"
	"bypassyield/internal/obs/flightrec"
	"bypassyield/internal/wire"
)

// options bundles the node's tunables (one per flag).
type options struct {
	release   string
	site      string
	addr      string
	sample    int64
	seed      int64
	traceOut  string // JSONL span log path ("" disables)
	httpAddr  string // telemetry plane listen address ("" disables)
	chaos     string // faultnet plan applied to inbound conns ("" disables)
	chaosSeed int64

	flightThreshold time.Duration // flight-recorder slow-capture threshold
	flightCap       int           // flight-recorder exemplar ring capacity
	flightSample    int           // publish every Nth healthy sub-query (0 disables)
	exemplarOut     string        // JSONL exemplar log path ("" disables)
}

func main() {
	var o options
	flag.StringVar(&o.release, "release", "edr", "data release: edr or dr1")
	flag.StringVar(&o.site, "site", catalog.SitePhoto, "site this node serves")
	flag.StringVar(&o.addr, "addr", ":7101", "listen address")
	flag.Int64Var(&o.sample, "sample", 1000, "materialize 1 of every N logical rows")
	flag.Int64Var(&o.seed, "seed", 1, "data synthesis seed (must match the proxy's)")
	flag.StringVar(&o.traceOut, "trace-out", "", "append execute/fetch spans as JSONL to this file")
	flag.StringVar(&o.httpAddr, "http", "", "serve /metrics, /healthz, /debug/pprof on this address")
	flag.StringVar(&o.chaos, "chaos", "", "fault-injection plan for inbound connections, e.g. 'latency=50ms,reset=0.1' or 'blackhole after=5s for=10s' (see internal/faultnet)")
	flag.Int64Var(&o.chaosSeed, "chaos-seed", 1, "seed for the chaos plan's randomness")
	fdef := flightrec.DefaultConfig()
	flag.DurationVar(&o.flightThreshold, "flight-threshold", fdef.Threshold, "capture a full exemplar for every sub-query at least this slow")
	flag.IntVar(&o.flightCap, "flight-cap", fdef.Capacity, "flight-recorder exemplar ring capacity")
	flag.IntVar(&o.flightSample, "flight-sample", fdef.SampleEvery, "also capture every Nth healthy sub-query as a 'normal' exemplar (0 disables)")
	flag.StringVar(&o.exemplarOut, "exemplar-out", "", "append every published exemplar as JSONL to this file")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "bydbd:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	d, err := start(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bydbd: serving %s of release %s on %s (sample 1/%d)\n",
		o.site, o.release, d.bound, o.sample)
	if d.http != nil {
		fmt.Fprintf(os.Stderr, "bydbd: telemetry on http://%s/metrics\n", d.http.Addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return d.Close()
}

// daemon is a started node with its telemetry plane and span sink.
type daemon struct {
	node      *wire.DBNode
	http      *obs.HTTPServer  // nil when -http is unset
	sink      *obs.JSONL       // nil when -trace-out is unset
	exemplars *flightrec.JSONL // nil when -exemplar-out is unset
	plan      *faultnet.Plan   // nil when -chaos is unset
	bound     string
}

// Close shuts the listener, the HTTP plane, and — last, so in-flight
// spans still land — flushes and closes the span log.
func (d *daemon) Close() error {
	err := d.node.Close()
	if d.plan != nil {
		d.plan.Stop()
	}
	if d.http != nil {
		if herr := d.http.Close(); err == nil {
			err = herr
		}
	}
	if serr := d.sink.Close(); err == nil {
		err = serr
	}
	if eerr := d.exemplars.Close(); err == nil {
		err = eerr
	}
	return err
}

// start builds and listens a database node; split from run so tests
// can exercise everything but the signal wait.
func start(o options) (*daemon, error) {
	s, err := schemaFor(o.release)
	if err != nil {
		return nil, err
	}
	// Materialize only this site's tables; synthesis is seeded per
	// column, so the subset matches the proxy's full instance exactly.
	sub := catalog.SiteSchema(s, o.site)
	if len(sub.Tables) == 0 {
		return nil, fmt.Errorf("site %q owns no tables of release %s (have %v)",
			o.site, s.Name, catalog.Sites(s))
	}
	db, err := engine.Open(sub, engine.Config{SampleEvery: o.sample, Seed: o.seed})
	if err != nil {
		return nil, err
	}
	node := wire.NewDBNode(o.site, db)
	node.SetFlightConfig(flightrec.Config{
		Capacity: o.flightCap, Threshold: o.flightThreshold, SampleEvery: o.flightSample,
	})
	d := &daemon{node: node}
	if o.exemplarOut != "" {
		f, err := os.OpenFile(o.exemplarOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		d.exemplars = flightrec.NewJSONL(f)
		node.Flight().SetSink(d.exemplars)
	}
	if o.chaos != "" {
		plan, err := faultnet.ParsePlan(o.chaos, o.chaosSeed)
		if err != nil {
			return nil, err
		}
		plan.Start()
		inj := plan.Injector(o.site)
		node.SetConnWrapper(inj.Conn)
		d.plan = plan
	}
	if o.traceOut != "" {
		f, err := os.OpenFile(o.traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			d.exemplars.Close()
			return nil, err
		}
		d.sink = obs.NewJSONL(f)
		node.SetTracer(obs.NewTracer(d.sink))
	}
	if o.httpAddr != "" {
		srv, err := obs.StartHTTP(o.httpAddr, obs.NewHTTPHandler(node.Obs().Snapshot))
		if err != nil {
			d.sink.Close()
			d.exemplars.Close()
			return nil, err
		}
		d.http = srv
	}
	bound, err := node.Listen(o.addr)
	if err != nil {
		if d.http != nil {
			d.http.Close()
		}
		d.sink.Close()
		d.exemplars.Close()
		return nil, err
	}
	d.bound = bound
	return d, nil
}

func schemaFor(release string) (*catalog.Schema, error) {
	switch release {
	case "edr":
		return catalog.EDR(), nil
	case "dr1":
		return catalog.DR1(), nil
	default:
		return nil, fmt.Errorf("unknown release %q (have edr, dr1)", release)
	}
}
