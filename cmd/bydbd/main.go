// Command bydbd runs a federation member database node: it owns the
// tables of one site of a data release and answers sub-queries and
// object fetches from the proxy over TCP.
//
// Usage:
//
//	bydbd -release edr -site photo.sdss.org -addr :7101
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"bypassyield/internal/catalog"
	"bypassyield/internal/engine"
	"bypassyield/internal/wire"
)

func main() {
	var (
		release = flag.String("release", "edr", "data release: edr or dr1")
		site    = flag.String("site", catalog.SitePhoto, "site this node serves")
		addr    = flag.String("addr", ":7101", "listen address")
		sample  = flag.Int64("sample", 1000, "materialize 1 of every N logical rows")
		seed    = flag.Int64("seed", 1, "data synthesis seed (must match the proxy's)")
	)
	flag.Parse()

	if err := run(*release, *site, *addr, *sample, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "bydbd:", err)
		os.Exit(1)
	}
}

func run(release, site, addr string, sample, seed int64) error {
	node, bound, err := start(release, site, addr, sample, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bydbd: serving %s of release %s on %s (sample 1/%d)\n",
		site, release, bound, sample)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return node.Close()
}

// start builds and listens a database node; split from run so tests
// can exercise everything but the signal wait.
func start(release, site, addr string, sample, seed int64) (*wire.DBNode, string, error) {
	s, err := schemaFor(release)
	if err != nil {
		return nil, "", err
	}
	// Materialize only this site's tables; synthesis is seeded per
	// column, so the subset matches the proxy's full instance exactly.
	sub := catalog.SiteSchema(s, site)
	if len(sub.Tables) == 0 {
		return nil, "", fmt.Errorf("site %q owns no tables of release %s (have %v)",
			site, s.Name, catalog.Sites(s))
	}
	db, err := engine.Open(sub, engine.Config{SampleEvery: sample, Seed: seed})
	if err != nil {
		return nil, "", err
	}
	node := wire.NewDBNode(site, db)
	bound, err := node.Listen(addr)
	if err != nil {
		return nil, "", err
	}
	return node, bound, nil
}

func schemaFor(release string) (*catalog.Schema, error) {
	switch release {
	case "edr":
		return catalog.EDR(), nil
	case "dr1":
		return catalog.DR1(), nil
	default:
		return nil, fmt.Errorf("unknown release %q (have edr, dr1)", release)
	}
}
