package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bypassyield/internal/catalog"
	"bypassyield/internal/obs"
	"bypassyield/internal/wire"
)

func testOptions() options {
	return options{
		release: "edr", site: catalog.SiteSpec, addr: "127.0.0.1:0",
		sample: 100000, seed: 1,
	}
}

func TestStartAndServe(t *testing.T) {
	o := testOptions()
	o.traceOut = filepath.Join(t.TempDir(), "spans.jsonl")
	o.httpAddr = "127.0.0.1:0"
	d, err := start(o)
	if err != nil {
		t.Fatal(err)
	}
	c, err := wire.Dial(d.bound)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("select z from specobj where z < 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows <= 0 {
		t.Fatal("no rows from node")
	}
	// A traced query joins the caller's trace in the span log.
	ctx := obs.TraceContext{TraceID: obs.NewID(), SpanID: obs.NewID()}
	if _, err := c.QueryTraced("select z from specobj where z < 2", ctx); err != nil {
		t.Fatal(err)
	}
	// The node holds only its site's tables.
	if _, err := c.Query("select ra from photoobj where ra < 10"); err == nil {
		t.Fatal("foreign-site table should be rejected")
	}

	// HTTP telemetry plane serves the node's registry.
	resp, err := http.Get("http://" + d.http.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "dbnode_queries") {
		t.Fatalf("GET /metrics: %d\n%s", resp.StatusCode, body)
	}

	// Close flushes the span log: the traced execute span must be on
	// disk afterwards, carrying the client's trace id. The client must
	// disconnect first — Close waits for in-flight connections.
	c.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(o.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	log := string(b)
	if !strings.Contains(log, "dbnode.execute") || !strings.Contains(log, ctx.TraceHex()) {
		t.Fatalf("span log missing traced execute span:\n%s", log)
	}
	// The untraced queries produced no spans.
	if got := strings.Count(log, "dbnode.execute"); got != 1 {
		t.Fatalf("execute spans = %d, want 1 (untraced frames stay silent)", got)
	}
}

func TestStartErrors(t *testing.T) {
	o := testOptions()
	o.release = "dr9"
	if _, err := start(o); err == nil {
		t.Fatal("unknown release should error")
	}
	o = testOptions()
	o.site = "nowhere"
	if _, err := start(o); err == nil {
		t.Fatal("siteless node should error")
	}
	o = testOptions()
	o.httpAddr = "256.0.0.1:bogus"
	if _, err := start(o); err == nil {
		t.Fatal("unbindable -http address should fail startup")
	}
}
