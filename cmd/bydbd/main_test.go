package main

import (
	"testing"

	"bypassyield/internal/catalog"
	"bypassyield/internal/wire"
)

func TestStartAndServe(t *testing.T) {
	node, addr, err := start("edr", catalog.SiteSpec, "127.0.0.1:0", 100000, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query("select z from specobj where z < 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows <= 0 {
		t.Fatal("no rows from node")
	}
	// The node holds only its site's tables.
	if _, err := c.Query("select ra from photoobj where ra < 10"); err == nil {
		t.Fatal("foreign-site table should be rejected")
	}
}

func TestStartErrors(t *testing.T) {
	if _, _, err := start("dr9", catalog.SiteSpec, "127.0.0.1:0", 100000, 1); err == nil {
		t.Fatal("unknown release should error")
	}
	if _, _, err := start("edr", "nowhere", "127.0.0.1:0", 100000, 1); err == nil {
		t.Fatal("siteless node should error")
	}
}
