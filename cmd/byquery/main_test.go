package main

import (
	"testing"
	"time"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/federation"
	"bypassyield/internal/wire"
)

func startProxy(t *testing.T) (string, func()) {
	t.Helper()
	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 100000})
	if err != nil {
		t.Fatal(err)
	}
	med, err := federation.New(federation.Config{
		Schema: s, Engine: db,
		Policy:      core.NewGDS(s.TotalBytes() / 2),
		Granularity: federation.Tables,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy := wire.NewProxy(med, federation.Tables, nil)
	proxy.SetLogf(func(string, ...any) {})
	addr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return addr, func() { proxy.Close() }
}

func TestRunOneShotAndStats(t *testing.T) {
	addr, stop := startProxy(t)
	defer stop()
	if err := run(addr, time.Second, false, true, []string{"select", "ra", "from", "photoobj", "where", "ra", "<", "30"}); err != nil {
		t.Fatal(err)
	}
	if err := run(addr, time.Second, true, false, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadSQL(t *testing.T) {
	addr, stop := startProxy(t)
	defer stop()
	if err := run(addr, time.Second, false, false, []string{"not", "sql"}); err == nil {
		t.Fatal("bad SQL should error")
	}
}

func TestRunDialError(t *testing.T) {
	if err := run("127.0.0.1:1", time.Second, false, false, []string{"select 1"}); err == nil {
		t.Fatal("dial failure should error")
	}
}
