// Command byquery is a SQL client for the bypass-yield proxy: it
// sends one statement (or a stdin stream of statements), prints the
// bounded result sample, the per-object cache decisions, and —
// with -stats — the proxy's flow accounting.
//
// Usage:
//
//	byquery -addr localhost:7100 "select ra, dec from photoobj where ra < 10"
//	byquery -addr localhost:7100 -stats
//	echo "select count(*) from specobj" | byquery -addr localhost:7100
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bypassyield/internal/wire"
)

func main() {
	var (
		addr   = flag.String("addr", "localhost:7100", "proxy address")
		stats  = flag.Bool("stats", false, "print proxy statistics and exit")
		rows   = flag.Bool("rows", true, "print the sampled result rows")
		dialTO = flag.Duration("dial-timeout", wire.DefaultDialTimeout, "connect timeout")
	)
	flag.Parse()

	if err := run(*addr, *dialTO, *stats, *rows, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "byquery:", err)
		os.Exit(1)
	}
}

func run(addr string, dialTimeout time.Duration, stats, printRows bool, args []string) error {
	client, err := wire.DialTimeout(addr, dialTimeout)
	if err != nil {
		return err
	}
	defer client.Close()

	if stats {
		return printStats(client)
	}
	if len(args) > 0 {
		return query(client, strings.Join(args, " "), printRows)
	}
	// Read statements from stdin, one per line.
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		sql := strings.TrimSpace(sc.Text())
		if sql == "" {
			continue
		}
		if err := query(client, sql, printRows); err != nil {
			fmt.Fprintln(os.Stderr, "byquery:", err)
		}
	}
	return sc.Err()
}

func query(client *wire.Client, sql string, printRows bool) error {
	res, err := client.Query(sql)
	if err != nil {
		return err
	}
	fmt.Printf("%d rows, %.3f MB yield\n", res.Rows, float64(res.Bytes)/1e6)
	if printRows && len(res.Tuples) > 0 {
		fmt.Println(strings.Join(res.Columns, "\t"))
		for _, tu := range res.Tuples {
			cells := make([]string, len(tu))
			for i, v := range tu {
				cells[i] = fmt.Sprintf("%g", v)
			}
			fmt.Println(strings.Join(cells, "\t"))
		}
		if int64(len(res.Tuples)) < res.Rows {
			fmt.Printf("... (%d more rows at logical scale)\n", res.Rows-int64(len(res.Tuples)))
		}
	}
	for _, d := range res.Decisions {
		fmt.Printf("  %-8s %-32s %10.3f MB  @%s\n", d.Decision, d.Object, float64(d.Yield)/1e6, d.Site)
	}
	return nil
}

func printStats(client *wire.Client) error {
	st, err := client.Stats()
	if err != nil {
		return err
	}
	a := st.Acct
	fmt.Printf("policy:        %s (%s granularity)\n", st.Policy, st.Granularity)
	fmt.Printf("cache:         %d / %d MB used\n", st.CacheUsed>>20, st.CacheCapacity>>20)
	fmt.Printf("queries:       %d (%d accesses)\n", st.Queries, a.Accesses)
	fmt.Printf("decisions:     %d hits, %d bypasses, %d loads, %d evictions\n",
		a.Hits, a.Bypasses, a.Loads, a.Evictions)
	fmt.Printf("WAN traffic:   %.3f MB (bypass %.3f + fetch %.3f)\n",
		float64(a.WANBytes())/1e6, float64(a.BypassBytes)/1e6, float64(a.FetchBytes)/1e6)
	fmt.Printf("delivered:     %.3f MB (cache %.3f + server %.3f)\n",
		float64(a.DeliveredBytes())/1e6, float64(a.CacheBytes)/1e6, float64(a.BypassBytes)/1e6)
	fmt.Printf("byte hit rate: %.1f%%\n", a.ByteHitRate()*100)
	fmt.Printf("transport:     %d B tx, %d B rx to nodes\n", st.TransportTx, st.TransportRx)
	return nil
}
