// Command byreplay replays a workload trace file (bytrace's JSONL
// output) against a running proxy — the paper's trace-driven
// methodology over the live prototype — and reports the proxy's flow
// accounting when done. With -audit it also scrapes the decision
// ledger and diffs realized traffic against the proxy's online
// counterfactual baselines (always-bypass, LRU-K) and the ski-rental
// lower bound.
//
// Usage:
//
//	bytrace -release edr -scale 100 -out edr.jsonl
//	byreplay -addr localhost:7100 -trace edr.jsonl -progress 100 -audit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"bypassyield/internal/core"
	"bypassyield/internal/obs/ledger"
	"bypassyield/internal/trace"
	"bypassyield/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:7100", "proxy address")
		path     = flag.String("trace", "", "trace file (JSONL, from bytrace)")
		limit    = flag.Int("limit", 0, "replay at most N queries (0 = all)")
		progress = flag.Int("progress", 500, "print progress every N queries (0 = quiet)")
		audit    = flag.Bool("audit", false, "after replay, diff realized vs. counterfactual traffic from the proxy's ledger")
		top      = flag.Int("top", 5, "with -audit, show the top-N regret contributors")
		dialTO   = flag.Duration("dial-timeout", wire.DefaultDialTimeout, "connect timeout")
	)
	flag.Parse()

	if err := run(*addr, *dialTO, *path, *limit, *progress, *audit, *top); err != nil {
		fmt.Fprintln(os.Stderr, "byreplay:", err)
		os.Exit(1)
	}
}

func run(addr string, dialTimeout time.Duration, path string, limit, progress int, audit bool, top int) error {
	if path == "" {
		return fmt.Errorf("-trace is required")
	}
	recs, err := trace.ReadFile(path)
	if err != nil {
		return err
	}
	recs = trace.Preprocess(recs)
	if limit > 0 && len(recs) > limit {
		recs = recs[:limit]
	}

	client, err := wire.DialTimeout(addr, dialTimeout)
	if err != nil {
		return err
	}
	defer client.Close()

	start := time.Now()
	var replayed, failed int
	for i, rec := range recs {
		if _, err := client.Query(rec.SQL); err != nil {
			failed++
			if failed <= 5 {
				fmt.Fprintf(os.Stderr, "byreplay: query %d failed: %v\n", rec.Seq, err)
			}
			continue
		}
		replayed++
		if progress > 0 && (i+1)%progress == 0 {
			fmt.Fprintf(os.Stderr, "byreplay: %d/%d queries (%.0f/s)\n",
				i+1, len(recs), float64(i+1)/time.Since(start).Seconds())
		}
	}

	st, err := client.Stats()
	if err != nil {
		return err
	}
	a := st.Acct
	fmt.Printf("replayed %d queries (%d failed) in %v\n", replayed, failed, time.Since(start).Round(time.Millisecond))
	fmt.Printf("policy %s (%s): %d hits / %d bypasses / %d loads / %d evictions\n",
		st.Policy, st.Granularity, a.Hits, a.Bypasses, a.Loads, a.Evictions)
	fmt.Printf("WAN %.3f GB (bypass %.3f + fetch %.3f) of %.3f GB delivered; byte hit rate %.1f%%\n",
		float64(a.WANBytes())/1e9, float64(a.BypassBytes)/1e9, float64(a.FetchBytes)/1e9,
		float64(a.DeliveredBytes())/1e9, a.ByteHitRate()*100)
	if audit {
		return runAudit(os.Stdout, client, a, top)
	}
	return nil
}

// runAudit scrapes the proxy's decision ledger and diffs realized
// traffic against the shadow counterfactuals: savings per baseline,
// the ski-rental lower bound with the live competitive ratio, and the
// objects contributing the most regret.
func runAudit(w io.Writer, client *wire.Client, a core.Accounting, top int) error {
	dec, err := client.Decisions(wire.DecisionsMsg{Limit: 4096})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\naudit: %d decisions recorded (%d in ring)\n", dec.Total, len(dec.Records))
	if len(dec.Baselines) == 0 {
		fmt.Fprintln(w, "audit: proxy has no shadow baselines (byproxyd -shadow=false?)")
		return nil
	}

	realized := a.WANBytes()
	fmt.Fprintf(w, "realized WAN %14.3f MB\n", float64(realized)/1e6)
	for _, b := range dec.Baselines {
		wan := b.Acct.WANBytes()
		pct := 0.0
		if wan > 0 {
			pct = 100 * float64(b.SavedBytes) / float64(wan)
		}
		fmt.Fprintf(w, "  %-16s %14.3f MB  saved %14.3f MB (%5.1f%%)\n",
			b.Name, float64(wan)/1e6, float64(b.SavedBytes)/1e6, pct)
	}
	if dec.OptBoundBytes > 0 {
		fmt.Fprintf(w, "ski-rental bound %11.3f MB  → competitive ratio %.3f\n",
			float64(dec.OptBoundBytes)/1e6, float64(dec.CompetitiveRatioMilli)/1000)
	}

	regrets := ledger.Regret(dec.Records)
	if top > len(regrets) {
		top = len(regrets)
	}
	if top > 0 && len(regrets) > 0 && regrets[0].Regret > 0 {
		fmt.Fprintf(w, "top %d regret contributors (from the ring's %d records):\n", top, len(dec.Records))
		for _, or := range regrets[:top] {
			if or.Regret <= 0 {
				break
			}
			fmt.Fprintf(w, "  %-36s %4d accesses  regret %9.3f MB\n",
				or.Object, or.Accesses, float64(or.Regret)/1e6)
		}
	}
	return nil
}
