// Command byreplay replays a workload trace file (bytrace's JSONL
// output) against a running proxy — the paper's trace-driven
// methodology over the live prototype — and reports the proxy's flow
// accounting when done.
//
// Usage:
//
//	bytrace -release edr -scale 100 -out edr.jsonl
//	byreplay -addr localhost:7100 -trace edr.jsonl -progress 100
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bypassyield/internal/trace"
	"bypassyield/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:7100", "proxy address")
		path     = flag.String("trace", "", "trace file (JSONL, from bytrace)")
		limit    = flag.Int("limit", 0, "replay at most N queries (0 = all)")
		progress = flag.Int("progress", 500, "print progress every N queries (0 = quiet)")
	)
	flag.Parse()

	if err := run(*addr, *path, *limit, *progress); err != nil {
		fmt.Fprintln(os.Stderr, "byreplay:", err)
		os.Exit(1)
	}
}

func run(addr, path string, limit, progress int) error {
	if path == "" {
		return fmt.Errorf("-trace is required")
	}
	recs, err := trace.ReadFile(path)
	if err != nil {
		return err
	}
	recs = trace.Preprocess(recs)
	if limit > 0 && len(recs) > limit {
		recs = recs[:limit]
	}

	client, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer client.Close()

	start := time.Now()
	var replayed, failed int
	for i, rec := range recs {
		if _, err := client.Query(rec.SQL); err != nil {
			failed++
			if failed <= 5 {
				fmt.Fprintf(os.Stderr, "byreplay: query %d failed: %v\n", rec.Seq, err)
			}
			continue
		}
		replayed++
		if progress > 0 && (i+1)%progress == 0 {
			fmt.Fprintf(os.Stderr, "byreplay: %d/%d queries (%.0f/s)\n",
				i+1, len(recs), float64(i+1)/time.Since(start).Seconds())
		}
	}

	st, err := client.Stats()
	if err != nil {
		return err
	}
	a := st.Acct
	fmt.Printf("replayed %d queries (%d failed) in %v\n", replayed, failed, time.Since(start).Round(time.Millisecond))
	fmt.Printf("policy %s (%s): %d hits / %d bypasses / %d loads / %d evictions\n",
		st.Policy, st.Granularity, a.Hits, a.Bypasses, a.Loads, a.Evictions)
	fmt.Printf("WAN %.3f GB (bypass %.3f + fetch %.3f) of %.3f GB delivered; byte hit rate %.1f%%\n",
		float64(a.WANBytes())/1e9, float64(a.BypassBytes)/1e9, float64(a.FetchBytes)/1e9,
		float64(a.DeliveredBytes())/1e9, a.ByteHitRate()*100)
	return nil
}
