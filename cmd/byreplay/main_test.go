package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/federation"
	"bypassyield/internal/obs/ledger"
	"bypassyield/internal/trace"
	"bypassyield/internal/wire"
	"bypassyield/internal/workload"
)

// startProxy spins an in-process proxy in simulation mode, with the
// decision ledger and shadow baselines on so -audit has data.
func startProxy(t *testing.T) (string, func()) {
	t.Helper()
	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 100000})
	if err != nil {
		t.Fatal(err)
	}
	med, err := federation.New(federation.Config{
		Schema: s, Engine: db,
		Policy:      core.NewRateProfile(core.RateProfileConfig{Capacity: s.TotalBytes() * 4 / 10}),
		Granularity: federation.Columns,
		Ledger:      ledger.New(4096),
		Shadows:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy := wire.NewProxy(med, federation.Columns, nil)
	proxy.SetLogf(func(string, ...any) {})
	addr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return addr, func() { proxy.Close() }
}

func TestRunReplaysTrace(t *testing.T) {
	p := workload.ScaledProfile(workload.EDRProfile(), 500)
	recs, err := workload.Generate(p, federation.Columns)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.jsonl.gz")
	if err := trace.WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	addr, stop := startProxy(t)
	defer stop()
	if err := run(addr, time.Second, path, 25, 0, false, 5); err != nil {
		t.Fatal(err)
	}
}

func TestRunAudit(t *testing.T) {
	p := workload.ScaledProfile(workload.EDRProfile(), 500)
	recs, err := workload.Generate(p, federation.Columns)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.jsonl.gz")
	if err := trace.WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	addr, stop := startProxy(t)
	defer stop()
	if err := run(addr, time.Second, path, 25, 0, true, 5); err != nil {
		t.Fatal(err)
	}

	// runAudit's output carries the baseline diff and the bound.
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runAudit(&buf, c, st.Acct, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"realized WAN", "always-bypass", "lruk", "ski-rental bound"} {
		if !strings.Contains(out, want) {
			t.Fatalf("audit output missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("127.0.0.1:1", time.Second, "", 0, 0, false, 5); err == nil {
		t.Fatal("missing trace should error")
	}
	addrless := filepath.Join(t.TempDir(), "absent.jsonl")
	if err := run("127.0.0.1:1", time.Second, addrless, 0, 0, false, 5); err == nil {
		t.Fatal("absent trace should error")
	}
}
