package main

import (
	"path/filepath"
	"testing"

	"bypassyield/internal/trace"
)

func TestRunWritesValidTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "edr.jsonl")
	if err := run("edr", "columns", 300, 0, out, false); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty trace")
	}
	if err := trace.Validate(recs); err != nil {
		t.Fatal(err)
	}
}

func TestRunPreprocessed(t *testing.T) {
	out := filepath.Join(t.TempDir(), "edr.jsonl")
	if err := run("edr", "tables", 300, 7, out, true); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Class == trace.ClassLog {
			t.Fatal("log queries should have been removed")
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("dr9", "columns", 300, 0, "", false); err == nil {
		t.Fatal("unknown release should error")
	}
	if err := run("edr", "rows", 300, 0, "", false); err == nil {
		t.Fatal("unknown granularity should error")
	}
}
