// Command bytrace synthesizes SDSS-like workload traces matched to
// the paper's EDR and DR1 query logs and writes them as JSON lines.
//
// Usage:
//
//	bytrace -release edr -granularity columns -out edr-columns.jsonl
//	bytrace -release dr1 -scale 10 -out dr1-small.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"bypassyield/internal/federation"
	"bypassyield/internal/trace"
	"bypassyield/internal/workload"
)

func main() {
	var (
		release = flag.String("release", "edr", "data release: edr or dr1")
		gran    = flag.String("granularity", "columns", "object granularity for access decomposition: tables or columns")
		scale   = flag.Int("scale", 1, "divide trace length and traffic target by this factor")
		seed    = flag.Int64("seed", 0, "override the profile's seed (0 keeps the default)")
		out     = flag.String("out", "", "output file (default stdout)")
		prep    = flag.Bool("preprocess", false, "drop log-self queries before writing (the paper's preprocessing)")
	)
	flag.Parse()

	if err := run(*release, *gran, *scale, *seed, *out, *prep); err != nil {
		fmt.Fprintln(os.Stderr, "bytrace:", err)
		os.Exit(1)
	}
}

func run(release, gran string, scale int, seed int64, out string, prep bool) error {
	var p workload.Profile
	switch release {
	case "edr":
		p = workload.EDRProfile()
	case "dr1":
		p = workload.DR1Profile()
	default:
		return fmt.Errorf("unknown release %q (have edr, dr1)", release)
	}
	p = workload.ScaledProfile(p, scale)
	if seed != 0 {
		p.Seed = seed
	}
	g, err := federation.ParseGranularity(gran)
	if err != nil {
		return err
	}
	recs, err := workload.Generate(p, g)
	if err != nil {
		return err
	}
	if prep {
		recs = trace.Preprocess(recs)
	}
	if err := trace.Validate(recs); err != nil {
		return err
	}

	if out == "" {
		if err := trace.Write(os.Stdout, recs); err != nil {
			return err
		}
	} else if err := trace.WriteFile(out, recs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bytrace: %d queries, sequence cost %.2f GB (target %.2f GB)\n",
		len(recs), float64(trace.SequenceCost(trace.Preprocess(recs)))/1e9,
		float64(p.TargetSequenceCost)/1e9)
	return nil
}
