package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"bypassyield/internal/obs"
)

// waterfallWidth is the character width of the per-span timing bar.
const waterfallWidth = 30

// runSpans merges one or more JSONL span logs (byproxyd and bydbd
// -trace-out files) and renders each reconstructed trace as a
// waterfall: offset and duration per span, indentation by tree depth,
// and a bar positioning the span within the trace. Orphaned spans
// (parent missing from the merged logs) are flagged.
func runSpans(w io.Writer, paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("-spans needs at least one JSONL span log")
	}
	var merged []obs.Event
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		evs, err := obs.ReadEvents(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		merged = append(merged, evs...)
	}
	trees := obs.BuildTraces(merged)
	if len(trees) == 0 {
		return fmt.Errorf("no traced spans in %s", strings.Join(paths, ", "))
	}
	fmt.Fprintf(w, "%d traces from %d files\n", len(trees), len(paths))
	for _, tree := range trees {
		renderTrace(w, tree)
	}
	return nil
}

// renderTrace prints one trace's waterfall.
func renderTrace(w io.Writer, tree obs.TraceTree) {
	start, total := tree.Bounds()
	fmt.Fprintf(w, "\ntrace %s: %d spans, %.3f ms", tree.ID, tree.Spans,
		float64(total.Nanoseconds())/1e6)
	if tree.Orphans > 0 {
		fmt.Fprintf(w, " (%d orphaned spans)", tree.Orphans)
	}
	fmt.Fprintln(w)
	tree.Walk(func(n *obs.SpanNode, depth int) {
		offset := n.Time.Sub(start)
		bar := waterfallBar(float64(offset), float64(n.Duration), float64(total))
		attrs := make([]string, 0, len(n.Attrs))
		for _, a := range n.Attrs {
			attrs = append(attrs, a.Key+"="+a.Value)
		}
		fmt.Fprintf(w, "  %9.3f  +%8.3f  |%s|  %s%s",
			float64(offset.Nanoseconds())/1e6,
			float64(n.Duration.Nanoseconds())/1e6,
			bar, strings.Repeat("  ", depth), n.Name)
		if len(attrs) > 0 {
			fmt.Fprintf(w, "  %s", strings.Join(attrs, " "))
		}
		fmt.Fprintln(w)
	})
}

// waterfallBar draws a fixed-width bar with the span's extent marked.
func waterfallBar(offset, dur, total float64) string {
	bar := []byte(strings.Repeat(" ", waterfallWidth))
	if total <= 0 {
		return string(bar)
	}
	lo := int(offset / total * waterfallWidth)
	hi := int((offset + dur) / total * waterfallWidth)
	if lo >= waterfallWidth {
		lo = waterfallWidth - 1
	}
	if hi > waterfallWidth {
		hi = waterfallWidth
	}
	if hi <= lo {
		hi = lo + 1
	}
	for i := lo; i < hi; i++ {
		bar[i] = '='
	}
	return string(bar)
}
