package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bypassyield/internal/obs"
)

// writeSpanLog runs a tiny two-daemon trace through JSONL sinks: the
// "proxy" log holds the root and an RPC leg, the "node" log holds the
// remote span, exactly as -trace-out files from byproxyd and bydbd.
func writeSpanLogs(t *testing.T) (proxyLog, nodeLog string) {
	t.Helper()
	dir := t.TempDir()
	proxyLog = filepath.Join(dir, "proxy.jsonl")
	nodeLog = filepath.Join(dir, "node.jsonl")

	pf, err := os.Create(proxyLog)
	if err != nil {
		t.Fatal(err)
	}
	nf, err := os.Create(nodeLog)
	if err != nil {
		t.Fatal(err)
	}
	proxy := obs.NewTracer(obs.NewJSONL(pf))
	node := obs.NewTracer(obs.NewJSONL(nf))

	root := proxy.Root("proxy.query")
	leg := proxy.Child(root.Context(), "proxy.fetch", obs.A("object", "edr/photoobj.ra"))
	remote := node.Child(leg.Context(), "dbnode.fetch", obs.A("size", "4200"))
	time.Sleep(time.Millisecond)
	remote.End()
	leg.End()
	root.End(obs.A("decisions", "1"))
	pf.Close()
	nf.Close()
	return proxyLog, nodeLog
}

func TestRunSpansWaterfall(t *testing.T) {
	proxyLog, nodeLog := writeSpanLogs(t)
	var buf bytes.Buffer
	if err := runSpans(&buf, []string{proxyLog, nodeLog}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"1 traces from 2 files",
		"3 spans",
		"proxy.query",
		"  proxy.fetch", // indented one level under the root
		"    dbnode.fetch",
		"object=edr/photoobj.ra",
		"size=4200",
		"decisions=1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "orphaned") {
		t.Fatalf("fully merged logs should have no orphans:\n%s", out)
	}
	// The proxy log alone is missing the node span's subtree — still
	// renders, no orphan either (the node span is simply absent).
	buf.Reset()
	if err := runSpans(&buf, []string{proxyLog}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "dbnode.fetch") {
		t.Fatal("node span leaked into proxy-only rendering")
	}
	// The node log alone has a span whose parent lives elsewhere: it
	// must surface as an orphan, not vanish.
	buf.Reset()
	if err := runSpans(&buf, []string{nodeLog}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1 orphaned") {
		t.Fatalf("partial log should flag the orphan:\n%s", buf.String())
	}
}

func TestRunSpansErrors(t *testing.T) {
	if err := runSpans(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("no paths should error")
	}
	if err := runSpans(&bytes.Buffer{}, []string{filepath.Join(t.TempDir(), "absent.jsonl")}); err == nil {
		t.Fatal("absent file should error")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSpans(&bytes.Buffer{}, []string{empty}); err == nil {
		t.Fatal("span-free log should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSpans(&bytes.Buffer{}, []string{bad}); err == nil {
		t.Fatal("malformed log should error")
	}
}

func TestWaterfallBar(t *testing.T) {
	if got := waterfallBar(0, 1, 1); !strings.HasPrefix(got, "==") || len(got) != waterfallWidth {
		t.Fatalf("full-extent bar = %q", got)
	}
	if got := waterfallBar(0, 0, 0); strings.Contains(got, "=") {
		t.Fatalf("zero-total bar = %q", got)
	}
	// A zero-duration span still gets one visible cell.
	if got := waterfallBar(0.5, 0, 1); strings.Count(got, "=") != 1 {
		t.Fatalf("point span bar = %q", got)
	}
	// Offset at the extreme right stays in bounds.
	if got := waterfallBar(1, 1, 1); len(got) != waterfallWidth {
		t.Fatalf("clamped bar = %q", got)
	}
}

func TestRunWatch(t *testing.T) {
	addr := liveProxy(t)
	var buf bytes.Buffer
	// Two 20ms rounds: the Metrics scrapes themselves move the proxy's
	// wire counters, so each sample shows deltas.
	if err := runWatch(&buf, addr, 20*time.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"watching byproxyd",
		"[sample 1 +20ms]",
		"[sample 2 +40ms]",
		"wire.frames_rx{metrics}",
		"windowed rates:",
		"core.query_rate",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("watch output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWatchErrors(t *testing.T) {
	if err := runWatch(&bytes.Buffer{}, "127.0.0.1:1", time.Millisecond, 1); err == nil {
		t.Fatal("dial failure should error")
	}
}
