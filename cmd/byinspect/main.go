// Command byinspect analyzes a workload trace file — class mix, yield
// distribution, sequence cost, schema locality (the paper's Figures
// 5–6), and query containment (Figure 4) — or, with -addr, scrapes a
// live byproxyd/bydbd metrics snapshot and renders it. With -spans it
// merges daemon span logs into per-query trace waterfalls; with
// -watch it re-scrapes live metrics and shows what moved; with
// -decisions it shows the proxy's decision ledger, counterfactual
// savings versus the shadow baselines, and top regret contributors;
// with -tail it scrapes the flight recorder and ranks tail-latency
// causes; with -federation it scrapes every listed daemon, verifies
// the Σ yields = D_A invariant across proxies, and merges exemplars
// by trace id into cross-node views.
//
// Usage:
//
//	bytrace -release edr -scale 50 -out edr.jsonl.gz
//	byinspect -trace edr.jsonl.gz
//	byinspect -addr localhost:7100          # live metrics, human table
//	byinspect -addr localhost:7100 -json    # raw snapshot JSON
//	byinspect -addr localhost:7100 -watch 2s
//	byinspect -addr localhost:7100 -decisions -action load -top 5
//	byinspect -addr localhost:7100 -tail -outcome slow
//	byinspect -federation localhost:7100,localhost:7201,localhost:7202
//	byinspect -spans proxy.jsonl,photo.jsonl,spec.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"bypassyield/internal/trace"
	"bypassyield/internal/wire"
	"bypassyield/internal/workload"
)

func main() {
	var (
		path   = flag.String("trace", "", "trace file (JSONL, optionally .gz)")
		top    = flag.Int("top", 10, "show the top-N items in each ranking")
		prep   = flag.Bool("preprocess", true, "drop log-self queries before analysis")
		addr   = flag.String("addr", "", "scrape live metrics from a proxy or node at this address")
		asJSON = flag.Bool("json", false, "with -addr, print the raw snapshot as JSON")
		watch  = flag.Duration("watch", 0, "with -addr, re-scrape at this interval and show deltas")
		spans  = flag.String("spans", "", "comma-separated daemon span logs (-trace-out files) to merge into trace waterfalls")

		dialTO = flag.Duration("dial-timeout", wire.DefaultDialTimeout, "with -addr, connect timeout")

		decisions = flag.Bool("decisions", false, "with -addr, show the proxy's decision ledger and counterfactual baselines")
		object    = flag.String("object", "", "with -decisions, filter records by exact object id")
		action    = flag.String("action", "", "with -decisions, filter records by action (hit, bypass, load)")
		traceID   = flag.String("trace-id", "", "with -decisions, filter records by 16-hex-digit trace id")
		limit     = flag.Int("limit", 0, "with -decisions or -tail, cap returned records (0 = server default)")

		tail       = flag.Bool("tail", false, "with -addr, show the flight recorder's tail-latency attribution and slowest exemplars")
		outcome    = flag.String("outcome", "", "with -tail or -federation, filter exemplars by outcome (slow, error, degraded, normal)")
		minMS      = flag.Int64("min-ms", 0, "with -tail or -federation, keep only exemplars at least this slow")
		federation = flag.String("federation", "", "comma-separated daemon addresses to scrape as one federation")
	)
	flag.Parse()
	dialTimeout = *dialTO

	exq := wire.ExemplarsMsg{Outcome: *outcome, MinUS: *minMS * 1000, Limit: *limit}
	var err error
	switch {
	case *spans != "":
		err = runSpans(os.Stdout, strings.Split(*spans, ","))
	case *federation != "":
		err = runFederation(os.Stdout, strings.Split(*federation, ","), exq, *top, *asJSON)
	case *tail:
		if *addr == "" {
			err = fmt.Errorf("-tail requires -addr")
			break
		}
		err = runTail(os.Stdout, *addr, exq, *top, *asJSON)
	case *decisions:
		if *addr == "" {
			err = fmt.Errorf("-decisions requires -addr")
			break
		}
		err = runDecisions(os.Stdout, *addr, wire.DecisionsMsg{
			Object: *object, Action: *action, Trace: *traceID, Limit: *limit,
		}, *top, *asJSON)
	case *addr != "" && *watch > 0:
		err = runWatch(os.Stdout, *addr, *watch, 0)
	case *addr != "":
		err = runLive(os.Stdout, *addr, *asJSON)
	default:
		err = run(*path, *top, *prep)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "byinspect:", err)
		os.Exit(1)
	}
}

func run(path string, top int, prep bool) error {
	if path == "" {
		return fmt.Errorf("one of -trace or -addr is required")
	}
	recs, err := trace.ReadFile(path)
	if err != nil {
		return err
	}
	if err := trace.Validate(recs); err != nil {
		return err
	}
	total := len(recs)
	if prep {
		recs = trace.Preprocess(recs)
	}

	fmt.Printf("trace: %d queries (%d after preprocessing), sequence cost %.3f GB\n",
		total, len(recs), float64(trace.SequenceCost(recs))/1e9)

	// Class mix and per-class yield volume.
	type classAgg struct {
		n     int
		bytes int64
	}
	classes := map[string]*classAgg{}
	var yields []int64
	for _, r := range recs {
		c := classes[r.Class]
		if c == nil {
			c = &classAgg{}
			classes[r.Class] = c
		}
		c.n++
		c.bytes += r.Yield
		yields = append(yields, r.Yield)
	}
	names := make([]string, 0, len(classes))
	for name := range classes {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return classes[names[i]].bytes > classes[names[j]].bytes })
	fmt.Println("\nclass mix (by byte volume):")
	for _, name := range names {
		c := classes[name]
		fmt.Printf("  %-10s %6d queries (%4.1f%%)  %9.3f GB (%4.1f%%)\n",
			name, c.n, 100*float64(c.n)/float64(len(recs)),
			float64(c.bytes)/1e9, 100*float64(c.bytes)/float64(trace.SequenceCost(recs)))
	}

	// Yield distribution.
	sort.Slice(yields, func(i, j int) bool { return yields[i] < yields[j] })
	pct := func(p float64) int64 {
		if len(yields) == 0 {
			return 0
		}
		i := int(p * float64(len(yields)-1))
		return yields[i]
	}
	fmt.Printf("\nyield distribution: p50 %.3f MB, p90 %.3f MB, p99 %.3f MB, max %.3f MB\n",
		float64(pct(0.5))/1e6, float64(pct(0.9))/1e6, float64(pct(0.99))/1e6,
		float64(yields[len(yields)-1])/1e6)

	// Schema locality (Figures 5-6).
	cols := workload.SummarizeLocality(workload.ColumnLocality(recs))
	tabs := workload.SummarizeLocality(workload.TableLocality(recs))
	if cols.References > 0 {
		fmt.Printf("\ncolumn locality: %d distinct, %d (%.0f%%) cover 90%% of %d references\n",
			cols.Items, cols.Top90, cols.Top90Frac*100, cols.References)
	}
	fmt.Printf("table locality:  %d distinct, %d (%.0f%%) cover 90%% of %d references\n",
		tabs.Items, tabs.Top90, tabs.Top90Frac*100, tabs.References)

	// Containment (Figure 4).
	cont := workload.QueryContainment(recs)
	if len(cont.Points) > 0 {
		fmt.Printf("query containment: %d identity queries, %d distinct ids, reuse rate %.3f\n",
			len(cont.Points), cont.Distinct, cont.ReuseRate())
	}

	// Top objects by yield volume.
	byObj := map[string]int64{}
	for _, r := range recs {
		for _, a := range r.Accesses {
			byObj[a.Object] += a.Yield
		}
	}
	objs := make([]string, 0, len(byObj))
	for o := range byObj {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return byObj[objs[i]] > byObj[objs[j]] })
	if top > len(objs) {
		top = len(objs)
	}
	fmt.Printf("\ntop %d objects by yield volume:\n", top)
	for _, o := range objs[:top] {
		fmt.Printf("  %-36s %9.3f GB\n", o, float64(byObj[o])/1e9)
	}
	return nil
}
