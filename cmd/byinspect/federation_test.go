package main

import (
	"net"
	"strings"
	"testing"
	"time"

	"bypassyield/internal/catalog"
	"bypassyield/internal/engine"
	"bypassyield/internal/faultnet"
	"bypassyield/internal/federation"
	"bypassyield/internal/obs"
	"bypassyield/internal/obs/flightrec"
	"bypassyield/internal/wire"
)

// startFederation stands up an in-process EDR federation with a fault
// injector on the proxy's legs to one site only, and a low flight
// threshold so ordinary test queries exceed it. It returns the proxy
// and node scrape addresses (proxy first).
func startFederation(t *testing.T, slowSite string, slow faultnet.Faults) []string {
	t.Helper()
	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 100000})
	if err != nil {
		t.Fatal(err)
	}
	quiet := func(string, ...any) {}

	nodeAddrs := map[string]string{}
	var scrape []string
	for _, site := range []string{catalog.SitePhoto, catalog.SiteSpec, catalog.SiteMeta} {
		n := wire.NewDBNode(site, db)
		n.SetLogf(quiet)
		n.SetFlightConfig(flightrec.Config{Threshold: 5 * time.Millisecond})
		naddr, err := n.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		nodeAddrs[site] = naddr
		scrape = append(scrape, naddr)
	}

	med, err := federation.New(federation.Config{
		Schema: s, Engine: db, Granularity: federation.Tables, Obs: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy := wire.NewProxy(med, federation.Tables, nodeAddrs)
	proxy.SetLogf(quiet)
	proxy.SetFlightConfig(flightrec.Config{Threshold: 5 * time.Millisecond})
	inj := faultnet.NewInjector(3)
	inj.Set(slow)
	proxy.SetDialer(func(site, a string) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", a, time.Second)
		if err != nil {
			return nil, err
		}
		if site == slowSite {
			return inj.Conn(c), nil
		}
		return c, nil
	})
	paddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	return append([]string{paddr}, scrape...)
}

// TestFederationTailAttribution is the issue's e2e acceptance test: a
// federation where one site answers ~30ms slower than the rest must
// produce proxy exemplars whose critical-path attribution names that
// site's WAN leg as the dominant tail cause — and the federation-wide
// scrape must report the Σ yields = D_A accounting invariant intact
// and merge the proxy- and node-side exemplars of the same query by
// trace id.
func TestFederationTailAttribution(t *testing.T) {
	addrs := startFederation(t, catalog.SiteSpec, faultnet.Faults{Latency: 30 * time.Millisecond})

	c, err := wire.Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Traced queries against the slow site: the minted ids let the
	// federation scrape join the proxy and node exemplars.
	var traces []string
	for i := 0; i < 4; i++ {
		id := obs.NewID()
		traces = append(traces, obs.FormatID(id))
		if _, err := c.QueryTraced("select z, zconf from specobj where z < 3",
			obs.TraceContext{TraceID: id, SpanID: obs.NewID()}); err != nil {
			t.Fatal(err)
		}
	}
	// A fast-site query for contrast; must not dominate attribution.
	if _, err := c.Query("select ra from photoobj where ra < 10"); err != nil {
		t.Fatal(err)
	}

	// The proxy's own recorder: every slow-site query breached the 5ms
	// threshold and the WAN leg to the slow site dominates.
	ex, err := c.Exemplars(wire.ExemplarsMsg{Outcome: flightrec.OutcomeSlow})
	if err != nil {
		t.Fatal(err)
	}
	wantCause := "wan:" + catalog.SiteSpec
	slowDominant := 0
	for _, e := range ex.Exemplars {
		if e.Cause == wantCause {
			slowDominant++
			if e.CauseUS < 25_000 {
				t.Fatalf("slow-site attribution too small: %+v", e)
			}
		}
	}
	if slowDominant == 0 {
		t.Fatalf("no exemplar blames %s: %+v", wantCause, ex.Exemplars)
	}

	// Federation-wide scrape: invariant satisfied, attribution table
	// ranks the slow site first, traces merge across daemons.
	var sb strings.Builder
	if err := runFederation(&sb, addrs, wire.ExemplarsMsg{}, 10, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Σ yields") || !strings.Contains(out, "SATISFIED") {
		t.Fatalf("invariant not verified:\n%s", out)
	}
	if strings.Contains(out, "VIOLATED") || strings.Contains(out, "MISMATCH") {
		t.Fatalf("invariant violated:\n%s", out)
	}
	if !strings.Contains(out, wantCause) {
		t.Fatalf("federation attribution missing %s:\n%s", wantCause, out)
	}
	// Attribution ranking: the slow WAN leg's row carries the largest
	// attributed time, so it renders before every other cause.
	if i, j := strings.Index(out, wantCause), strings.Index(out, "server-execute"); j >= 0 && i > j {
		t.Fatalf("slow site is not the top-ranked cause:\n%s", out)
	}
	merged := false
	for _, tr := range traces {
		if strings.Count(out, tr) > 0 && strings.Contains(out, "daemon views") {
			merged = true
		}
	}
	if !merged {
		t.Fatalf("no merged trace rendered:\n%s", out)
	}

	// The single-daemon tail view renders the same story.
	sb.Reset()
	if err := runTail(&sb, addrs[0], wire.ExemplarsMsg{}, 5, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), wantCause) || !strings.Contains(sb.String(), "tail attribution") {
		t.Fatalf("tail view missing attribution:\n%s", sb.String())
	}
}

// TestFederationUnreachable: a scrape set with a dead address must
// degrade per node, not fail the whole report.
func TestFederationUnreachable(t *testing.T) {
	addrs := startFederation(t, "", faultnet.Faults{})
	c, err := wire.Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("select ra from photoobj where ra < 10"); err != nil {
		t.Fatal(err)
	}
	c.Close()

	var sb strings.Builder
	dead := "127.0.0.1:1" // reserved port; connect refuses immediately
	if err := runFederation(&sb, append(addrs, dead), wire.ExemplarsMsg{}, 5, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "UNREACHABLE") {
		t.Fatalf("dead daemon not reported:\n%s", out)
	}
	if !strings.Contains(out, "Σ yields") || !strings.Contains(out, "SATISFIED") {
		t.Fatalf("reachable proxies not verified:\n%s", out)
	}
}
