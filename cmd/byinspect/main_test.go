package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/federation"
	"bypassyield/internal/obs"
	"bypassyield/internal/obs/ledger"
	"bypassyield/internal/trace"
	"bypassyield/internal/wire"
	"bypassyield/internal/workload"
)

func TestRunOnGeneratedTrace(t *testing.T) {
	p := workload.ScaledProfile(workload.EDRProfile(), 300)
	recs, err := workload.Generate(p, federation.Columns)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.jsonl.gz")
	if err := trace.WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 5, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", 5, true); err == nil {
		t.Fatal("missing -trace should error")
	}
	if err := run(filepath.Join(t.TempDir(), "absent.jsonl"), 5, true); err == nil {
		t.Fatal("absent file should error")
	}
}

// liveProxy starts an instrumented proxy and pushes a few queries
// through it so the snapshot has content to render.
func liveProxy(t *testing.T) string {
	t.Helper()
	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 100000})
	if err != nil {
		t.Fatal(err)
	}
	med, err := federation.New(federation.Config{
		Schema: s, Engine: db,
		Policy:      core.NewRateProfile(core.RateProfileConfig{Capacity: s.TotalBytes()}),
		Granularity: federation.Columns,
		Obs:         obs.NewRegistry(),
		Ledger:      ledger.New(1024),
		Shadows:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := wire.NewProxy(med, federation.Columns, nil)
	p.SetLogf(func(string, ...any) {})
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Query("select ra, dec from photoobj where ra between 0 and 350"); err != nil {
			t.Fatal(err)
		}
	}
	return addr
}

func TestRunLiveTable(t *testing.T) {
	addr := liveProxy(t)
	var buf bytes.Buffer
	if err := runLive(&buf, addr, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"metrics from byproxyd",
		"core.decisions",
		"rate-profile/bypass",
		"federation.query_latency_us",
		"histograms:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunLiveJSON(t *testing.T) {
	addr := liveProxy(t)
	var buf bytes.Buffer
	if err := runLive(&buf, addr, true); err != nil {
		t.Fatal(err)
	}
	var m wire.MetricsResultMsg
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if m.Source != "byproxyd" || m.Snapshot.CounterTotal("core.decisions") == 0 {
		t.Fatalf("decoded = %+v", m)
	}
}

func TestRunDecisionsTable(t *testing.T) {
	addr := liveProxy(t)
	var buf bytes.Buffer
	if err := runDecisions(&buf, addr, wire.DecisionsMsg{}, 5, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"decision ledger:",
		"by action:",
		"recent decisions",
		"edr/photoobj.ra",
		"vs always-bypass",
		"vs lruk",
		"ski-rental lower bound",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}

	// Action filter narrows the record list to loads only.
	buf.Reset()
	if err := runDecisions(&buf, addr, wire.DecisionsMsg{Action: "load"}, 5, false); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if strings.Contains(out, " bypass ") || strings.Contains(out, " hit ") {
		t.Fatalf("action=load output contains other actions:\n%s", out)
	}
}

func TestRunDecisionsJSON(t *testing.T) {
	addr := liveProxy(t)
	var buf bytes.Buffer
	if err := runDecisions(&buf, addr, wire.DecisionsMsg{}, 5, true); err != nil {
		t.Fatal(err)
	}
	var res wire.DecisionsResultMsg
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if res.Total == 0 || len(res.Records) == 0 || len(res.Baselines) == 0 {
		t.Fatalf("decoded = %+v", res)
	}
}

func TestRunLiveErrors(t *testing.T) {
	if err := runLive(&bytes.Buffer{}, "127.0.0.1:1", false); err == nil {
		t.Fatal("dial failure should error")
	}
}

func TestRenderLatencyDeltas(t *testing.T) {
	mk := func(counts []int64, sum, count int64) obs.HistogramSnap {
		return obs.HistogramSnap{
			Name:   "federation.query_latency_us",
			Bounds: []int64{1000, 10000, 100000},
			Counts: counts, Sum: sum, Count: count,
		}
	}
	// Between samples the histogram gained 10 fast and 1 slow
	// observation; the columns must reflect only the delta window.
	prev := obs.Snapshot{Histograms: []obs.HistogramSnap{mk([]int64{100, 0, 0, 0}, 50_000, 100)}}
	cur := obs.Snapshot{Histograms: []obs.HistogramSnap{mk([]int64{110, 0, 1, 0}, 100_000, 111)}}
	var buf bytes.Buffer
	renderDeltas(&buf, prev, cur, time.Second)
	out := buf.String()
	for _, want := range []string{
		"latency:",
		"federation.query_latency_us",
		"1.00ms",   // p50 of the delta: the first bucket's bound, as ms
		"100.00ms", // p999 reaches the slow observation's bucket
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("watch output missing %q:\n%s", want, out)
		}
	}
	// An idle histogram (no delta) stays out of the table.
	buf.Reset()
	renderDeltas(&buf, cur, cur, time.Second)
	if strings.Contains(buf.String(), "latency:") {
		t.Fatalf("idle histograms rendered:\n%s", buf.String())
	}
}
