package main

import (
	"path/filepath"
	"testing"

	"bypassyield/internal/federation"
	"bypassyield/internal/trace"
	"bypassyield/internal/workload"
)

func TestRunOnGeneratedTrace(t *testing.T) {
	p := workload.ScaledProfile(workload.EDRProfile(), 300)
	recs, err := workload.Generate(p, federation.Columns)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.jsonl.gz")
	if err := trace.WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 5, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", 5, true); err == nil {
		t.Fatal("missing -trace should error")
	}
	if err := run(filepath.Join(t.TempDir(), "absent.jsonl"), 5, true); err == nil {
		t.Fatal("absent file should error")
	}
}
