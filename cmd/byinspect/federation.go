package main

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"bypassyield/internal/obs"
	"bypassyield/internal/obs/flightrec"
	"bypassyield/internal/wire"
)

// nodeView is everything one federation member answered during a
// scrape. Unreachable or partially-answering daemons keep what they
// did return; Err records the first failure.
type nodeView struct {
	Addr      string                   `json:"addr"`
	Source    string                   `json:"source,omitempty"`
	Snapshot  obs.Snapshot             `json:"snapshot,omitempty"`
	Exemplars *wire.ExemplarsResultMsg `json:"exemplars,omitempty"`
	Stats     *wire.StatsResultMsg     `json:"stats,omitempty"`
	Err       string                   `json:"err,omitempty"`
}

// scrapeNode collects one daemon's metrics, exemplars, and — for
// proxies — flow-accounting stats. Database nodes reject MsgStats;
// that rejection is how the scrape tells the two roles apart, so a
// stats failure after a successful metrics scrape is not an error.
func scrapeNode(addr string, q wire.ExemplarsMsg) nodeView {
	v := nodeView{Addr: addr}
	c, err := wire.DialTimeout(addr, dialTimeout)
	if err != nil {
		v.Err = err.Error()
		return v
	}
	defer c.Close()
	m, err := c.Metrics()
	if err != nil {
		v.Err = err.Error()
		return v
	}
	v.Source = m.Source
	v.Snapshot = m.Snapshot
	if ex, err := c.Exemplars(q); err == nil {
		v.Exemplars = ex
	} else {
		v.Err = err.Error()
		return v
	}
	if st, err := c.Stats(); err == nil {
		v.Stats = st
	}
	return v
}

// runFederation scrapes every listed daemon (proxies and database
// nodes), verifies the paper's delivered-bytes invariant across the
// federation, aggregates tail-cause attribution, and merges exemplars
// that share a trace id into cross-node views of the same query.
func runFederation(w io.Writer, addrs []string, q wire.ExemplarsMsg, top int, asJSON bool) error {
	views := make([]nodeView, len(addrs))
	for i, addr := range addrs {
		views[i] = scrapeNode(addr, q)
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(views)
	}
	renderFederation(w, views, top)
	return nil
}

func renderFederation(w io.Writer, views []nodeView, top int) {
	fmt.Fprintf(w, "federation scrape: %d daemons\n", len(views))
	reachable := 0
	for _, v := range views {
		if v.Err != "" {
			fmt.Fprintf(w, "  %-24s UNREACHABLE: %s\n", v.Addr, v.Err)
			continue
		}
		reachable++
		role := v.Source
		extra := ""
		if v.Exemplars != nil {
			extra = fmt.Sprintf("  %d exemplars (%d published)",
				len(v.Exemplars.Exemplars), v.Exemplars.Published)
		}
		fmt.Fprintf(w, "  %-24s %-16s %s\n", v.Addr, role, extra)
	}
	if reachable == 0 {
		fmt.Fprintln(w, "no daemon reachable")
		return
	}

	renderInvariant(w, views)
	renderPersistence(w, views)
	renderFederationCauses(w, views)
	renderMergedTraces(w, views, top)
}

// renderPersistence reports each proxy's durability plane — warm vs
// cold start, recovery cost, and the snapshot/WAL counters — for
// proxies running with -state-dir (others carry no persist metrics).
func renderPersistence(w io.Writer, views []nodeView) {
	printed := false
	for _, v := range views {
		if v.Stats == nil {
			continue
		}
		present := false
		var warm int64
		for _, g := range v.Snapshot.Gauges {
			if g.Name == "persist.warm_start" {
				present, warm = true, g.Value
			}
		}
		if !present {
			continue
		}
		if !printed {
			fmt.Fprintln(w, "\npersistence (per proxy):")
			printed = true
		}
		mode := "cold start"
		if warm == 1 {
			mode = "warm start"
		}
		fmt.Fprintf(w, "  %-24s %s  recovery %dms  replayed %d  snapshots %d (clock %d)  wal records %d  torn tails %d  fallbacks %d\n",
			v.Addr, mode,
			v.Snapshot.GaugeValue("persist.recovery_ms"),
			v.Snapshot.GaugeValue("persist.recovered_records"),
			v.Snapshot.CounterValue("persist.snapshots", ""),
			v.Snapshot.GaugeValue("persist.snapshot_clock"),
			v.Snapshot.CounterValue("persist.wal_records", ""),
			v.Snapshot.CounterValue("persist.wal_torn_tails", ""),
			v.Snapshot.CounterValue("persist.snapshot_fallbacks", ""))
	}
}

// renderInvariant checks the paper's accounting identity on every
// proxy and across the federation: the mediator's raw yield counter
// (core.yield_bytes), the flow ledger's YieldBytes, and delivered
// bytes D_A = D_S + D_C must agree — bytes the policy accounted for
// are exactly the bytes clients received, with nothing double-counted
// and nothing lost, on every node and in the federation-wide sum.
func renderInvariant(w io.Writer, views []nodeView) {
	var sumCounter, sumLedger, sumDelivered int64
	proxies := 0
	ok := true
	fmt.Fprintln(w, "\nΣ yields = D_A invariant (per proxy):")
	for _, v := range views {
		if v.Stats == nil {
			continue
		}
		proxies++
		counter := v.Snapshot.CounterValue("core.yield_bytes", "")
		ledgerYield := v.Stats.Acct.YieldBytes
		delivered := v.Stats.Acct.DeliveredBytes()
		sumCounter += counter
		sumLedger += ledgerYield
		sumDelivered += delivered
		verdict := "ok"
		if counter != ledgerYield || ledgerYield != delivered {
			verdict = "MISMATCH"
			ok = false
		}
		fmt.Fprintf(w, "  %-24s yield counter %12d  ledger %12d  D_A %12d  %s\n",
			v.Addr, counter, ledgerYield, delivered, verdict)
	}
	if proxies == 0 {
		fmt.Fprintln(w, "  no proxy in the scrape set (stats unavailable)")
		return
	}
	status := "SATISFIED"
	if !ok || sumCounter != sumLedger || sumLedger != sumDelivered {
		status = "VIOLATED"
	}
	fmt.Fprintf(w, "  federation Σ yields %d = D_A %d: %s\n", sumLedger, sumDelivered, status)
}

// renderFederationCauses aggregates the tail-cause counters of every
// reachable daemon into one ranked table.
func renderFederationCauses(w io.Writer, views []nodeView) {
	agg := map[string]*tailCauseRow{}
	for _, v := range views {
		for _, r := range tailCauses(v.Snapshot) {
			a := agg[r.cause]
			if a == nil {
				a = &tailCauseRow{cause: r.cause}
				agg[r.cause] = a
			}
			a.dominant += r.dominant
			a.totalUS += r.totalUS
		}
	}
	if len(agg) == 0 {
		return
	}
	rows := make([]tailCauseRow, 0, len(agg))
	var totalUS int64
	for _, r := range agg {
		rows = append(rows, *r)
		totalUS += r.totalUS
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].totalUS != rows[j].totalUS {
			return rows[i].totalUS > rows[j].totalUS
		}
		return rows[i].cause < rows[j].cause
	})
	fmt.Fprintln(w, "\nfederation tail attribution (all daemons, ranked by attributed time):")
	fmt.Fprintln(w, "  cause                        dominant     total ms   share")
	for _, r := range rows {
		share := 0.0
		if totalUS > 0 {
			share = 100 * float64(r.totalUS) / float64(totalUS)
		}
		fmt.Fprintf(w, "  %-26s %10d %12.3f  %5.1f%%\n",
			r.cause, r.dominant, float64(r.totalUS)/1e3, share)
	}
}

// tracedExemplar pairs an exemplar with the daemon that captured it.
type tracedExemplar struct {
	source string
	ex     flightrec.Exemplar
}

// renderMergedTraces joins exemplars across daemons by trace id: a
// slow proxy query and the node-side execution it triggered share the
// propagated trace id, so the merged view shows both halves of the
// same tail event.
func renderMergedTraces(w io.Writer, views []nodeView, top int) {
	byTrace := map[string][]tracedExemplar{}
	for _, v := range views {
		if v.Exemplars == nil {
			continue
		}
		for _, ex := range v.Exemplars.Exemplars {
			if ex.Trace == "" {
				continue
			}
			byTrace[ex.Trace] = append(byTrace[ex.Trace], tracedExemplar{source: v.Exemplars.Source, ex: ex})
		}
	}
	// Rank merged traces by the proxy-side (max) duration; cross-node
	// traces (seen by ≥ 2 daemons) sort before single-view ones.
	type merged struct {
		trace string
		views []tracedExemplar
		durUS int64
	}
	ms := make([]merged, 0, len(byTrace))
	for t, vs := range byTrace {
		sort.Slice(vs, func(i, j int) bool { return vs[i].ex.DurUS > vs[j].ex.DurUS })
		ms = append(ms, merged{trace: t, views: vs, durUS: vs[0].ex.DurUS})
	}
	if len(ms) == 0 {
		return
	}
	sort.Slice(ms, func(i, j int) bool {
		if (len(ms[i].views) > 1) != (len(ms[j].views) > 1) {
			return len(ms[i].views) > 1
		}
		if ms[i].durUS != ms[j].durUS {
			return ms[i].durUS > ms[j].durUS
		}
		return ms[i].trace < ms[j].trace
	})
	if top > len(ms) {
		top = len(ms)
	}
	fmt.Fprintf(w, "\nmerged traces (%d total, showing %d):\n", len(ms), top)
	for _, m := range ms[:top] {
		fmt.Fprintf(w, "  trace %s  (%d daemon views)\n", m.trace, len(m.views))
		for _, tv := range m.views {
			e := tv.ex
			fmt.Fprintf(w, "    %-16s %-8s %8.3fms  cause %-22s %8.3fms\n",
				tv.source, e.Outcome, float64(e.DurUS)/1e3, e.Cause, float64(e.CauseUS)/1e3)
			if e.SQL != "" {
				fmt.Fprintf(w, "      sql: %s\n", oneLine(e.SQL, 84))
			}
		}
	}
}
