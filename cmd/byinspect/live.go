package main

import (
	"encoding/json"
	"fmt"
	"io"

	"bypassyield/internal/obs"
	"bypassyield/internal/wire"
)

// dialTimeout bounds every live-scrape connect; main overrides it from
// -dial-timeout.
var dialTimeout = wire.DefaultDialTimeout

// runLive scrapes a MsgMetrics snapshot from a running byproxyd or
// bydbd and renders it — raw JSON with -json, otherwise a table
// grouped by metric family with quantile summaries for histograms.
func runLive(w io.Writer, addr string, asJSON bool) error {
	c, err := wire.DialTimeout(addr, dialTimeout)
	if err != nil {
		return err
	}
	defer c.Close()
	m, err := c.Metrics()
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	}
	renderSnapshot(w, m.Source, m.Snapshot)
	return nil
}

func renderSnapshot(w io.Writer, source string, s obs.Snapshot) {
	fmt.Fprintf(w, "metrics from %s: %d counters, %d gauges, %d histograms, %d rates\n",
		source, len(s.Counters), len(s.Gauges), len(s.Histograms), len(s.Rates))

	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "\ncounters:")
		prev := ""
		for _, c := range s.Counters {
			if c.Label == "" {
				fmt.Fprintf(w, "  %-34s %12d\n", c.Name, c.Value)
				prev = ""
				continue
			}
			// Family members share a header line.
			if c.Name != prev {
				fmt.Fprintf(w, "  %s\n", c.Name)
				prev = c.Name
			}
			fmt.Fprintf(w, "    %-32s %12d\n", c.Label, c.Value)
		}
	}

	if len(s.Rates) > 0 {
		fmt.Fprintln(w, "\nwindowed rates:")
		for _, r := range s.Rates {
			fmt.Fprintf(w, "  %-34s %12.1f/s  (over %.0fs)\n", r.Name, r.PerSecond, r.WindowSeconds)
		}
	}

	if len(s.Gauges) > 0 {
		fmt.Fprintln(w, "\ngauges:")
		for _, g := range s.Gauges {
			name := g.Name
			if g.Label != "" {
				name += "{" + g.Label + "}"
			}
			fmt.Fprintf(w, "  %-34s %12d\n", name, g.Value)
		}
	}

	if len(s.Histograms) > 0 {
		fmt.Fprintln(w, "\nhistograms:                            count         mean          p50          p90          p99")
		for _, h := range s.Histograms {
			name := h.Name
			if h.Label != "" {
				name += "{" + h.Label + "}"
			}
			fmt.Fprintf(w, "  %-34s %10d %12.1f %12d %12d %12d\n",
				name, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99))
		}
	}
}
