package main

import (
	"encoding/json"
	"fmt"
	"io"

	"bypassyield/internal/obs/ledger"
	"bypassyield/internal/wire"
)

// runDecisions scrapes the proxy's decision ledger and shadow
// counterfactual accounting and renders them: recent decisions
// (filterable by object, action, or trace id), a per-action summary,
// savings versus each baseline, and the top regret contributors.
func runDecisions(w io.Writer, addr string, q wire.DecisionsMsg, top int, asJSON bool) error {
	c, err := wire.DialTimeout(addr, dialTimeout)
	if err != nil {
		return err
	}
	defer c.Close()
	res, err := c.Decisions(q)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	renderDecisions(w, res, top)
	return nil
}

func renderDecisions(w io.Writer, res *wire.DecisionsResultMsg, top int) {
	fmt.Fprintf(w, "decision ledger: %d recorded, %d matching\n", res.Total, len(res.Records))

	if len(res.Records) > 0 {
		// Per-action summary over the matching records.
		type agg struct {
			n          int64
			yield, wan int64
		}
		actions := map[string]*agg{}
		for _, r := range res.Records {
			a := actions[r.Action]
			if a == nil {
				a = &agg{}
				actions[r.Action] = a
			}
			a.n++
			a.yield += r.Yield
			a.wan += r.WANCost
		}
		fmt.Fprintln(w, "\nby action:                       count        yield MB          WAN MB")
		for _, name := range []string{"hit", "bypass", "load"} {
			a := actions[name]
			if a == nil {
				continue
			}
			fmt.Fprintf(w, "  %-24s %10d %15.3f %15.3f\n",
				name, a.n, float64(a.yield)/1e6, float64(a.wan)/1e6)
		}

		fmt.Fprintln(w, "\nrecent decisions (oldest first):")
		fmt.Fprintln(w, "      seq action  object                           yield MB    RP      BYU  epis phase  reason")
		for _, r := range res.Records {
			trace := ""
			if r.Trace != "" {
				trace = "  trace=" + r.Trace
			}
			fmt.Fprintf(w, "  %7d %-7s %-32s %8.3f %5.2f %8.3f %5d %-6s %s%s\n",
				r.Seq, r.Action, r.Object, float64(r.Yield)/1e6,
				r.RP, r.BYU, r.Episodes, r.EpisodePhase, r.Reason, trace)
		}

		// Regret: realized WAN above the per-object ski-rental bound.
		regrets := ledger.Regret(res.Records)
		if top > len(regrets) {
			top = len(regrets)
		}
		if top > 0 && regrets[0].Regret > 0 {
			fmt.Fprintf(w, "\ntop %d regret contributors (WAN above per-object bound):\n", top)
			for _, or := range regrets[:top] {
				if or.Regret <= 0 {
					break
				}
				fmt.Fprintf(w, "  %-36s %4d accesses  realized %9.3f MB  bound %9.3f MB  regret %9.3f MB\n",
					or.Object, or.Accesses, float64(or.RealizedWAN)/1e6,
					float64(or.Bound)/1e6, float64(or.Regret)/1e6)
			}
		}
	}

	if len(res.Baselines) > 0 {
		fmt.Fprintln(w, "\ncounterfactual baselines (full run, not just matching records):")
		for _, b := range res.Baselines {
			wan := b.Acct.WANBytes()
			pct := 0.0
			if wan > 0 {
				pct = 100 * float64(b.SavedBytes) / float64(wan)
			}
			fmt.Fprintf(w, "  vs %-16s WAN %12.3f MB   saved %12.3f MB (%5.1f%%)\n",
				b.Name, float64(wan)/1e6, float64(b.SavedBytes)/1e6, pct)
		}
	}
	if res.OptBoundBytes > 0 {
		fmt.Fprintf(w, "\nski-rental lower bound: %.3f MB, competitive ratio %.3f\n",
			float64(res.OptBoundBytes)/1e6, float64(res.CompetitiveRatioMilli)/1000)
	}
}
