package main

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"bypassyield/internal/obs"
	"bypassyield/internal/obs/flightrec"
	"bypassyield/internal/wire"
)

// runTail scrapes a daemon's flight recorder and tail-cause counters
// and renders a "why is p99 slow" report: the ranked critical-path
// attribution table (which phase or WAN leg dominated the exceedances)
// followed by the slowest captured exemplars with their per-leg
// breakdowns.
func runTail(w io.Writer, addr string, q wire.ExemplarsMsg, top int, asJSON bool) error {
	c, err := wire.DialTimeout(addr, dialTimeout)
	if err != nil {
		return err
	}
	defer c.Close()
	m, err := c.Metrics()
	if err != nil {
		return err
	}
	res, err := c.Exemplars(q)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	renderTail(w, res, m.Snapshot, top)
	return nil
}

// tailCauseRow is one row of the ranked attribution table.
type tailCauseRow struct {
	cause    string
	dominant int64 // exceedances where this cause was the largest slice
	totalUS  int64 // attributed microseconds across all exceedances
}

// tailCauses extracts the obs.tail_cause / obs.tail_cause_us counter
// families from a snapshot, ranked by attributed time.
func tailCauses(s obs.Snapshot) []tailCauseRow {
	rows := map[string]*tailCauseRow{}
	get := func(cause string) *tailCauseRow {
		r := rows[cause]
		if r == nil {
			r = &tailCauseRow{cause: cause}
			rows[cause] = r
		}
		return r
	}
	for _, c := range s.Counters {
		switch c.Name {
		case "obs.tail_cause":
			get(c.Label).dominant += c.Value
		case "obs.tail_cause_us":
			get(c.Label).totalUS += c.Value
		}
	}
	out := make([]tailCauseRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].totalUS != out[j].totalUS {
			return out[i].totalUS > out[j].totalUS
		}
		return out[i].cause < out[j].cause
	})
	return out
}

func renderTail(w io.Writer, res *wire.ExemplarsResultMsg, s obs.Snapshot, top int) {
	fmt.Fprintf(w, "flight recorder at %s: %d queries observed, %d exemplars published, threshold %.1fms\n",
		res.Source, res.Observed, res.Published, float64(res.ThresholdUS)/1e3)

	byOutcome := map[string]int64{}
	for _, c := range s.Counters {
		if c.Name == "obs.exemplars" {
			byOutcome[c.Label] = c.Value
		}
	}
	if len(byOutcome) > 0 {
		fmt.Fprintf(w, "outcomes: slow %d, error %d, degraded %d, normal %d\n",
			byOutcome["slow"], byOutcome["error"], byOutcome["degraded"], byOutcome["normal"])
	}

	causes := tailCauses(s)
	if len(causes) > 0 {
		var totalUS int64
		for _, r := range causes {
			totalUS += r.totalUS
		}
		fmt.Fprintln(w, "\ntail attribution (exceedances, ranked by attributed time):")
		fmt.Fprintln(w, "  cause                        dominant     total ms   share")
		for _, r := range causes {
			share := 0.0
			if totalUS > 0 {
				share = 100 * float64(r.totalUS) / float64(totalUS)
			}
			fmt.Fprintf(w, "  %-26s %10d %12.3f  %5.1f%%\n",
				r.cause, r.dominant, float64(r.totalUS)/1e3, share)
		}
	}

	if len(res.Exemplars) == 0 {
		fmt.Fprintln(w, "\nno exemplars captured yet")
		return
	}

	// Slowest first for the detail listing.
	exs := append([]flightrec.Exemplar(nil), res.Exemplars...)
	sort.SliceStable(exs, func(i, j int) bool { return exs[i].DurUS > exs[j].DurUS })
	if top > len(exs) {
		top = len(exs)
	}
	fmt.Fprintf(w, "\nslowest %d exemplars:\n", top)
	for _, e := range exs[:top] {
		trace := e.Trace
		if trace == "" {
			trace = "-"
		}
		fmt.Fprintf(w, "  #%d %-8s %8.3fms  cause %-22s %8.3fms  trace %s\n",
			e.Seq, e.Outcome, float64(e.DurUS)/1e3, e.Cause, float64(e.CauseUS)/1e3, trace)
		if e.SQL != "" {
			fmt.Fprintf(w, "      sql: %s\n", oneLine(e.SQL, 88))
		}
		if e.Err != "" {
			fmt.Fprintf(w, "      err: %s\n", oneLine(e.Err, 88))
		}
		for _, p := range e.Attribution {
			fmt.Fprintf(w, "      %-26s %10.3fms\n", p.Cause, float64(p.US)/1e3)
		}
		for _, l := range e.Legs {
			errs := ""
			if l.Err != "" {
				errs = "  err=" + oneLine(l.Err, 40)
			}
			fmt.Fprintf(w, "      leg %-10s %-24s wall %8.3fms (pool %0.3f, rpc %0.3f)%s\n",
				l.Kind, l.Site, float64(l.WallUS)/1e3,
				float64(l.PoolWaitUS)/1e3, float64(l.RPCUS)/1e3, errs)
		}
	}
}

// oneLine collapses whitespace and truncates for table rendering.
func oneLine(s string, max int) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > max {
		s = s[:max-1] + "…"
	}
	return s
}
