package main

import (
	"fmt"
	"io"
	"strings"
	"time"

	"bypassyield/internal/obs"
	"bypassyield/internal/wire"
)

// runWatch scrapes a daemon's metrics every interval and renders what
// moved: counter deltas with their implied per-second rate, plus the
// daemon's own sliding-window rates. rounds bounds the number of
// samples (≤ 0 means run until the connection drops or stdin closes
// the process; main passes 0, tests pass a small count).
func runWatch(w io.Writer, addr string, interval time.Duration, rounds int) error {
	if interval <= 0 {
		interval = time.Second
	}
	c, err := wire.DialTimeout(addr, dialTimeout)
	if err != nil {
		return err
	}
	defer c.Close()
	prev, err := c.Metrics()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "watching %s at %s every %s (ctrl-c to stop)\n",
		prev.Source, addr, interval)
	for i := 1; rounds <= 0 || i <= rounds; i++ {
		time.Sleep(interval)
		cur, err := c.Metrics()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n[sample %d +%s]\n", i, time.Duration(i)*interval)
		renderDeltas(w, prev.Snapshot, cur.Snapshot, interval)
		prev = cur
	}
	return nil
}

// renderDeltas prints the counters that moved between two snapshots
// and the current windowed rates.
func renderDeltas(w io.Writer, prev, cur obs.Snapshot, interval time.Duration) {
	base := map[string]int64{}
	for _, c := range prev.Counters {
		base[c.Name+"\x00"+c.Label] = c.Value
	}
	moved := 0
	secs := interval.Seconds()
	for _, c := range cur.Counters {
		d := c.Value - base[c.Name+"\x00"+c.Label]
		if d == 0 {
			continue
		}
		moved++
		name := c.Name
		if c.Label != "" {
			name += "{" + c.Label + "}"
		}
		fmt.Fprintf(w, "  %-40s %+12d  (%.1f/s)\n", name, d, float64(d)/secs)
	}
	if moved == 0 {
		fmt.Fprintln(w, "  (idle: no counter movement)")
	}
	renderLatencies(w, prev, cur)
	if len(cur.Rates) > 0 {
		fmt.Fprintln(w, "  windowed rates:")
		for _, r := range cur.Rates {
			fmt.Fprintf(w, "    %-38s %12.1f/s  (over %.0fs)\n",
				r.Name, r.PerSecond, r.WindowSeconds)
		}
	}
}

// renderLatencies prints compact quantile columns for every histogram
// that saw observations during the interval, computed over the delta
// window (HistogramSnap.Sub) so a long-running daemon's history does
// not wash out the last few seconds.
func renderLatencies(w io.Writer, prev, cur obs.Snapshot) {
	base := map[string]obs.HistogramSnap{}
	for _, h := range prev.Histograms {
		base[h.Name+"\x00"+h.Label] = h
	}
	printed := false
	for _, h := range cur.Histograms {
		d := h.Sub(base[h.Name+"\x00"+h.Label])
		if d.Count == 0 {
			continue
		}
		if !printed {
			printed = true
			fmt.Fprintf(w, "  latency:      %10s %10s %10s %8s\n", "p50", "p99", "p999", "n")
		}
		name := h.Name
		if h.Label != "" {
			name += "{" + h.Label + "}"
		}
		q := d.Quantiles(0.50, 0.99, 0.999)
		fmt.Fprintf(w, "    %-38s %8s %10s %10s %8d\n",
			name, fmtObs(h.Name, q[0]), fmtObs(h.Name, q[1]), fmtObs(h.Name, q[2]), d.Count)
	}
}

// fmtObs renders one histogram observation: microsecond histograms
// (the repo convention is a _us suffix) read as milliseconds, others
// as raw values.
func fmtObs(name string, v int64) string {
	if strings.HasSuffix(name, "_us") {
		return fmt.Sprintf("%.2fms", float64(v)/1e3)
	}
	return fmt.Sprintf("%d", v)
}
