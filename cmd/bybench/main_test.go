package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fig6.txt")
	if err := run("fig6", 100, 0.4, "text", out, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "fig6") {
		t.Fatalf("output missing experiment header:\n%s", data)
	}
}

func TestRunCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "tab2.csv")
	if err := run("tab2", 100, 0.4, "csv", out, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "data-set,") {
		t.Fatalf("csv output malformed:\n%s", data)
	}
}

func TestRunCommaList(t *testing.T) {
	out := filepath.Join(t.TempDir(), "both.txt")
	if err := run("fig6,fig4", 100, 0.4, "text", out, true); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	if !strings.Contains(string(data), "fig6") || !strings.Contains(string(data), "fig4") {
		t.Fatal("comma list should run both experiments")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", 100, 0.4, "text", "", true); err == nil {
		t.Fatal("unknown experiment should error")
	}
	if err := run("fig6", 100, 0.4, "yaml", "", true); err == nil {
		t.Fatal("unknown format should error")
	}
}

func TestRunMarkdown(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fig6.md")
	if err := run("fig6", 100, 0.4, "md", out, true); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	if !strings.Contains(string(data), "### fig6") {
		t.Fatalf("markdown output malformed:\n%s", data)
	}
}
