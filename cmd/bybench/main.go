// Command bybench regenerates the paper's evaluation: every figure
// (4–10) and table (1–2) of "Bypass Caching: Making Scientific
// Databases Good Network Citizens" (ICDE 2005), over synthesized EDR
// and DR1 traces.
//
// Usage:
//
//	bybench -exp all                 # run everything at full scale
//	bybench -exp fig9 -scale 10      # one experiment, 1/10 workload
//	bybench -exp tab1 -format csv -out tab1.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"bypassyield/internal/experiments"
)

func main() {
	var (
		exp = flag.String("exp", "all",
			"experiment id ("+strings.Join(experiments.IDs(), ", ")+
				"), an extension ("+strings.Join(experiments.ExtensionIDs(), ", ")+
				"), 'all' (the paper's evaluation), or 'extensions'")
		scale    = flag.Int("scale", 1, "divide trace length and traffic targets by this factor (1 = paper scale)")
		cachePct = flag.Float64("cache", 0.4, "cache size as a fraction of the database for figs 7-8 and tables 1-2")
		format   = flag.String("format", "text", "output format: text, csv, or md")
		out      = flag.String("out", "", "output file (default stdout)")
		quiet    = flag.Bool("q", false, "suppress progress messages")
	)
	flag.Parse()

	if err := run(*exp, *scale, *cachePct, *format, *out, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "bybench:", err)
		os.Exit(1)
	}
}

func run(exp string, scale int, cachePct float64, format, out string, quiet bool) error {
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	suite := experiments.NewSuite(scale)
	if cachePct > 0 && cachePct <= 1 {
		suite.CachePct = cachePct
	}

	var ids []string
	switch exp {
	case "all":
		ids = experiments.IDs()
	case "extensions":
		ids = experiments.ExtensionIDs()
	default:
		ids = strings.Split(exp, ",")
	}
	for i, id := range ids {
		start := time.Now()
		tab, err := suite.Run(strings.TrimSpace(id))
		if err != nil {
			return err
		}
		if i > 0 {
			fmt.Fprintln(w)
		}
		switch format {
		case "text":
			if err := tab.WriteText(w); err != nil {
				return err
			}
		case "csv":
			if err := tab.WriteCSV(w); err != nil {
				return err
			}
		case "md", "markdown":
			if err := tab.WriteMarkdown(w); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown format %q (have text, csv, md)", format)
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "bybench: %s done in %v\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}
