// Command byproxyd runs the paper's mediator-collocated bypass-yield
// proxy cache: clients send SQL, the proxy mediates each query across
// the federation's database nodes, and a bypass-yield policy decides
// per object whether to serve in cache, load, or bypass.
//
// Usage:
//
//	byproxyd -release edr -addr :7100 -policy rate-profile -cache-pct 0.4 \
//	  -nodes "photo.sdss.org=localhost:7101,spec.sdss.org=localhost:7102"
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/federation"
	"bypassyield/internal/wire"
)

func main() {
	var (
		release  = flag.String("release", "edr", "data release: edr or dr1")
		addr     = flag.String("addr", ":7100", "listen address for clients")
		policy   = flag.String("policy", "rate-profile", "cache policy: "+strings.Join(core.PolicyNames(), ", "))
		cachePct = flag.Float64("cache-pct", 0.4, "cache size as a fraction of the database")
		gran     = flag.String("granularity", "columns", "object granularity: tables or columns")
		nodes    = flag.String("nodes", "", "comma-separated site=addr pairs of database nodes (empty = simulate locally)")
		sample   = flag.Int64("sample", 1000, "materialize 1 of every N logical rows")
		seed     = flag.Int64("seed", 1, "data synthesis seed (must match the nodes')")
	)
	flag.Parse()

	if err := run(*release, *addr, *policy, *cachePct, *gran, *nodes, *sample, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "byproxyd:", err)
		os.Exit(1)
	}
}

func run(release, addr, policy string, cachePct float64, gran, nodes string, sample, seed int64) error {
	proxy, bound, desc, err := start(release, addr, policy, cachePct, gran, nodes, sample, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "byproxyd: %s on %s\n", desc, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return proxy.Close()
}

// start builds and listens the proxy; split from run so tests can
// exercise everything but the signal wait.
func start(release, addr, policy string, cachePct float64, gran, nodes string, sample, seed int64) (*wire.Proxy, string, string, error) {
	var s *catalog.Schema
	switch release {
	case "edr":
		s = catalog.EDR()
	case "dr1":
		s = catalog.DR1()
	default:
		return nil, "", "", fmt.Errorf("unknown release %q (have edr, dr1)", release)
	}
	g, err := federation.ParseGranularity(gran)
	if err != nil {
		return nil, "", "", err
	}
	capacity := int64(cachePct * float64(s.TotalBytes()))
	pol, err := core.NewPolicyByName(policy, capacity, seed)
	if err != nil {
		return nil, "", "", err
	}
	db, err := engine.Open(s, engine.Config{SampleEvery: sample, Seed: seed})
	if err != nil {
		return nil, "", "", err
	}
	med, err := federation.New(federation.Config{
		Schema: s, Engine: db, Policy: pol, Granularity: g,
	})
	if err != nil {
		return nil, "", "", err
	}

	nodeAddrs := map[string]string{}
	if nodes != "" {
		for _, pair := range strings.Split(nodes, ",") {
			site, naddr, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				return nil, "", "", fmt.Errorf("bad -nodes entry %q (want site=addr)", pair)
			}
			nodeAddrs[site] = naddr
		}
	}

	proxy := wire.NewProxy(med, g, nodeAddrs)
	bound, err := proxy.Listen(addr)
	if err != nil {
		return nil, "", "", err
	}
	desc := fmt.Sprintf("release %s, policy %s, cache %.0f%% (%d MB), granularity %s, %d nodes",
		s.Name, pol.Name(), cachePct*100, capacity>>20, g, len(nodeAddrs))
	return proxy, bound, desc, nil
}
