// Command byproxyd runs the paper's mediator-collocated bypass-yield
// proxy cache: clients send SQL, the proxy mediates each query across
// the federation's database nodes, and a bypass-yield policy decides
// per object whether to serve in cache, load, or bypass.
//
// Usage:
//
//	byproxyd -release edr -addr :7100 -policy rate-profile -cache-pct 0.4 \
//	  -nodes "photo.sdss.org=localhost:7101,spec.sdss.org=localhost:7102" \
//	  -http :7180 -trace-out proxy-spans.jsonl -ledger 4096 -ledger-out decisions.jsonl \
//	  -state-dir ./state -wal-sync
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/faultnet"
	"bypassyield/internal/federation"
	"bypassyield/internal/obs"
	"bypassyield/internal/obs/flightrec"
	"bypassyield/internal/obs/ledger"
	"bypassyield/internal/persist"
	"bypassyield/internal/wire"
)

// options bundles the proxy's tunables (one per flag).
type options struct {
	release  string
	addr     string
	policy   string
	cachePct float64
	gran     string
	nodes    string
	sample   int64
	seed     int64

	rpcTimeout time.Duration // node RPC deadline (0 disables)
	traceOut   string        // JSONL span log path ("" disables)
	httpAddr   string        // telemetry plane listen address ("" disables)

	dialTimeout    time.Duration // node connect timeout
	breakThreshold int           // consecutive failures that open a site's breaker
	breakBackoff   time.Duration // first open-state backoff
	breakMax       time.Duration // backoff doubling cap
	probeInterval  time.Duration // half-open probe cadence
	rpcRetries     int           // extra node RPC attempts before giving up
	chaos          string        // faultnet plan applied to node dials ("" disables)
	chaosSeed      int64

	ledgerCap int64  // decision-ledger ring capacity (0 disables)
	ledgerOut string // JSONL decision log path ("" disables)
	shadow    bool   // run counterfactual shadow baselines

	flightThreshold time.Duration // flight-recorder slow-capture threshold
	flightCap       int           // flight-recorder exemplar ring capacity
	flightSample    int           // publish every Nth healthy query (0 disables)
	exemplarOut     string        // JSONL exemplar log path ("" disables)

	maxInflight    int // concurrently pipelined client queries
	poolSize       int // per-site connection-pool bound
	decisionShards int // decision-plane partitions (0 = GOMAXPROCS)

	stateDir      string        // crash-safe state directory ("" disables persistence)
	snapInterval  time.Duration // periodic snapshot cadence
	walSync       bool          // fsync the WAL after every record
	recoveryLog   string        // append the startup recovery report here ("" disables)
	persistFaults string        // deterministic crash points in the writers (tests only)
}

func main() {
	var o options
	flag.StringVar(&o.release, "release", "edr", "data release: edr or dr1")
	flag.StringVar(&o.addr, "addr", ":7100", "listen address for clients")
	flag.StringVar(&o.policy, "policy", "rate-profile", "cache policy: "+strings.Join(core.PolicyNames(), ", "))
	flag.Float64Var(&o.cachePct, "cache-pct", 0.4, "cache size as a fraction of the database")
	flag.StringVar(&o.gran, "granularity", "columns", "object granularity: tables or columns")
	flag.StringVar(&o.nodes, "nodes", "", "comma-separated site=addr pairs of database nodes (empty = simulate locally)")
	flag.Int64Var(&o.sample, "sample", 1000, "materialize 1 of every N logical rows")
	flag.Int64Var(&o.seed, "seed", 1, "data synthesis seed (must match the nodes')")
	flag.DurationVar(&o.rpcTimeout, "rpc-timeout", wire.DefaultRPCTimeout, "deadline for node RPCs (0 disables)")
	bdef := wire.DefaultBreakerConfig()
	flag.DurationVar(&o.dialTimeout, "dial-timeout", wire.DefaultDialTimeout, "connect timeout for node dials")
	flag.IntVar(&o.breakThreshold, "breaker-threshold", bdef.FailureThreshold, "consecutive RPC failures that open a site's circuit breaker")
	flag.DurationVar(&o.breakBackoff, "breaker-backoff", bdef.BaseBackoff, "initial open-state backoff before the first half-open probe")
	flag.DurationVar(&o.breakMax, "breaker-max-backoff", bdef.MaxBackoff, "cap on the breaker's doubling backoff")
	flag.DurationVar(&o.probeInterval, "probe-interval", bdef.ProbeInterval, "how often the prober checks open breakers for due probes")
	flag.IntVar(&o.rpcRetries, "rpc-retries", bdef.RetryBudget, "extra attempts per node RPC before the failure counts")
	flag.StringVar(&o.chaos, "chaos", "", "fault-injection plan for node connections, e.g. 'spec.sdss.org:blackhole after=5s for=10s' (see internal/faultnet)")
	flag.Int64Var(&o.chaosSeed, "chaos-seed", 1, "seed for the chaos plan's randomness")
	flag.StringVar(&o.traceOut, "trace-out", "", "append per-query spans as JSONL to this file")
	flag.StringVar(&o.httpAddr, "http", "", "serve /metrics, /healthz, /debug/pprof on this address")
	flag.Int64Var(&o.ledgerCap, "ledger", 4096, "decision-ledger ring capacity in records (0 disables)")
	flag.StringVar(&o.ledgerOut, "ledger-out", "", "append every decision record as JSONL to this file")
	flag.BoolVar(&o.shadow, "shadow", true, "run counterfactual baselines (always-bypass, LRU-K) online")
	fdef := flightrec.DefaultConfig()
	flag.DurationVar(&o.flightThreshold, "flight-threshold", fdef.Threshold, "capture a full exemplar for every query at least this slow")
	flag.IntVar(&o.flightCap, "flight-cap", fdef.Capacity, "flight-recorder exemplar ring capacity")
	flag.IntVar(&o.flightSample, "flight-sample", fdef.SampleEvery, "also capture every Nth healthy query as a 'normal' exemplar (0 disables)")
	flag.StringVar(&o.exemplarOut, "exemplar-out", "", "append every published exemplar as JSONL to this file")
	flag.IntVar(&o.maxInflight, "max-inflight", wire.DefaultMaxInflight, "concurrently pipelined client queries (1 serializes the pipeline)")
	flag.IntVar(&o.poolSize, "pool-size", wire.DefaultPoolSize, "per-site node connection pool bound (max checked-out conns, 0 = adapt to load)")
	flag.IntVar(&o.decisionShards, "decision-shards", 0, "decision-plane partitions, rounded up to a power of two (0 = GOMAXPROCS; 1 serializes all decisions)")
	flag.StringVar(&o.stateDir, "state-dir", "", "persist cache/policy/accounting state here and warm-restart from it (empty disables)")
	flag.DurationVar(&o.snapInterval, "snapshot-interval", persist.DefaultSnapshotInterval, "periodic state snapshot cadence")
	flag.BoolVar(&o.walSync, "wal-sync", false, "fsync the write-ahead log after every access record (durable before the result frame, one fsync per access)")
	flag.StringVar(&o.recoveryLog, "recovery-log", "", "append the startup recovery report to this file")
	flag.StringVar(&o.persistFaults, "persist-faults", "", "arm deterministic crash points in the persistence writers, e.g. 'wal.append.mid-record:after=40' (crash tests only)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "byproxyd:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	d, err := start(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "byproxyd: %s on %s\n", d.desc, d.bound)
	if d.http != nil {
		fmt.Fprintf(os.Stderr, "byproxyd: telemetry on http://%s/metrics\n", d.http.Addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return d.Close()
}

// daemon is a started proxy with its telemetry plane, span sink, and
// decision-ledger sink.
type daemon struct {
	proxy     *wire.Proxy
	persist   *persist.Manager // nil when -state-dir is unset
	http      *obs.HTTPServer  // nil when -http is unset
	sink      *obs.JSONL       // nil when -trace-out is unset
	ledger    *ledger.JSONL    // nil when -ledger-out is unset
	exemplars *flightrec.JSONL // nil when -exemplar-out is unset
	plan      *faultnet.Plan   // nil when -chaos is unset
	bound     string
	desc      string
}

// Close shuts the listener (draining in-flight queries), flushes the
// final state snapshot, closes the HTTP plane, and — last, so
// in-flight spans and decision records still land — flushes and
// closes the JSONL logs.
func (d *daemon) Close() error {
	err := d.proxy.Close()
	if d.persist != nil {
		if perr := d.persist.Close(); err == nil {
			err = perr
		}
	}
	if d.plan != nil {
		d.plan.Stop()
	}
	if d.http != nil {
		if herr := d.http.Close(); err == nil {
			err = herr
		}
	}
	if serr := d.sink.Close(); err == nil {
		err = serr
	}
	if lerr := d.ledger.Close(); err == nil {
		err = lerr
	}
	if eerr := d.exemplars.Close(); err == nil {
		err = eerr
	}
	return err
}

// start builds and listens the proxy; split from run so tests can
// exercise everything but the signal wait.
func start(o options) (*daemon, error) {
	var s *catalog.Schema
	switch o.release {
	case "edr":
		s = catalog.EDR()
	case "dr1":
		s = catalog.DR1()
	default:
		return nil, fmt.Errorf("unknown release %q (have edr, dr1)", o.release)
	}
	g, err := federation.ParseGranularity(o.gran)
	if err != nil {
		return nil, err
	}
	capacity := int64(o.cachePct * float64(s.TotalBytes()))
	// Probe the policy name once so a typo fails at startup, not at
	// per-shard construction.
	if _, err := core.NewPolicyByName(o.policy, capacity, o.seed); err != nil {
		return nil, err
	}
	db, err := engine.Open(s, engine.Config{SampleEvery: o.sample, Seed: o.seed})
	if err != nil {
		return nil, err
	}
	// One registry spans the whole daemon: the mediator/policy record
	// into it, the local engine shares it, and the proxy adopts it, so
	// a single MsgMetrics snapshot (and the /metrics exposition) covers
	// every layer.
	reg := obs.NewRegistry()
	db.SetObs(reg)
	var led *ledger.Ledger
	var ledSink *ledger.JSONL
	if o.ledgerCap > 0 {
		led = ledger.New(int(o.ledgerCap))
		if o.ledgerOut != "" {
			f, err := os.OpenFile(o.ledgerOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, err
			}
			ledSink = ledger.NewJSONL(f)
			led.SetSink(ledSink)
		}
	} else if o.ledgerOut != "" {
		return nil, fmt.Errorf("-ledger-out requires -ledger > 0")
	}
	med, err := federation.New(federation.Config{
		Schema: s, Engine: db, Granularity: g, Obs: reg,
		Ledger: led, Shadows: o.shadow,
		// One policy instance per decision partition, seeded per shard
		// so randomized policies draw independent streams.
		NewPolicy: func(shard int, shardCap int64) (core.Policy, error) {
			return core.NewPolicyByName(o.policy, shardCap, o.seed+int64(shard))
		},
		Capacity: capacity,
		Shards:   o.decisionShards,
	})
	if err != nil {
		ledSink.Close()
		return nil, err
	}

	nodeAddrs := map[string]string{}
	if o.nodes != "" {
		for _, pair := range strings.Split(o.nodes, ",") {
			site, naddr, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				return nil, fmt.Errorf("bad -nodes entry %q (want site=addr)", pair)
			}
			nodeAddrs[site] = naddr
		}
	}

	proxy := wire.NewProxy(med, g, nodeAddrs)
	proxy.SetRPCTimeout(o.rpcTimeout)
	proxy.SetDialTimeout(o.dialTimeout)
	bcfg := wire.DefaultBreakerConfig()
	bcfg.FailureThreshold = o.breakThreshold
	bcfg.BaseBackoff = o.breakBackoff
	bcfg.MaxBackoff = o.breakMax
	bcfg.ProbeInterval = o.probeInterval
	bcfg.RetryBudget = o.rpcRetries
	bcfg.Seed = o.seed
	proxy.SetBreakerConfig(bcfg)
	proxy.SetConcurrency(o.maxInflight, 0)
	// -pool-size 0 hands sizing to the proxy's adaptive loop, which
	// re-derives each site's bound from wire.pool_waits and observed
	// RPC latency; any explicit value pins the bound.
	proxy.SetPoolConfig(wire.PoolConfig{MaxActive: o.poolSize, Adaptive: o.poolSize == 0})
	proxy.SetFlightConfig(flightrec.Config{
		Capacity: o.flightCap, Threshold: o.flightThreshold, SampleEvery: o.flightSample,
	})
	d := &daemon{proxy: proxy, ledger: ledSink}
	if o.exemplarOut != "" {
		f, err := os.OpenFile(o.exemplarOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			ledSink.Close()
			return nil, err
		}
		d.exemplars = flightrec.NewJSONL(f)
		proxy.SetExemplarSink(d.exemplars)
	}
	if o.chaos != "" {
		plan, err := faultnet.ParsePlan(o.chaos, o.chaosSeed)
		if err != nil {
			ledSink.Close()
			return nil, err
		}
		plan.Start()
		proxy.SetDialer(func(site, addr string) (net.Conn, error) {
			c, err := net.DialTimeout("tcp", addr, o.dialTimeout)
			if err != nil {
				return nil, err
			}
			return plan.Injector(site).Conn(c), nil
		})
		d.plan = plan
	}
	if o.traceOut != "" {
		f, err := os.OpenFile(o.traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			d.ledger.Close()
			d.exemplars.Close()
			return nil, err
		}
		d.sink = obs.NewJSONL(f)
		proxy.SetTracer(obs.NewTracer(d.sink))
	}
	if o.httpAddr != "" {
		srv, err := obs.StartHTTP(o.httpAddr, obs.NewHTTPHandler(reg.Snapshot))
		if err != nil {
			d.sink.Close()
			d.ledger.Close()
			d.exemplars.Close()
			return nil, err
		}
		d.http = srv
	}
	// Recover and attach persistent state before the listener opens:
	// the first client query must already see the warm cache and the
	// journal must capture every access.
	if o.stateDir != "" {
		faults, err := persist.ParseFaults(o.persistFaults)
		if err == nil {
			d.persist, err = persist.Open(persist.Config{
				Dir:              o.stateDir,
				SnapshotInterval: o.snapInterval,
				SyncEveryRecord:  o.walSync,
				Obs:              reg,
				Faults:           faults,
				Logf: func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, "byproxyd: "+format+"\n", args...)
				},
			}, med)
		}
		if err == nil && o.recoveryLog != "" {
			err = appendRecoveryLog(o.recoveryLog, d.persist.Recovery())
		}
		if err != nil {
			if d.persist != nil {
				d.persist.Close()
			}
			if d.http != nil {
				d.http.Close()
			}
			d.sink.Close()
			d.ledger.Close()
			d.exemplars.Close()
			return nil, err
		}
	} else if o.persistFaults != "" {
		return nil, fmt.Errorf("-persist-faults requires -state-dir")
	}
	bound, err := proxy.Listen(o.addr)
	if err != nil {
		if d.persist != nil {
			d.persist.Close()
		}
		if d.http != nil {
			d.http.Close()
		}
		d.sink.Close()
		d.ledger.Close()
		d.exemplars.Close()
		return nil, err
	}
	d.bound = bound
	d.desc = fmt.Sprintf("release %s, policy %s, cache %.0f%% (%d MB), granularity %s, %d decision shards, %d nodes",
		s.Name, o.policy, o.cachePct*100, capacity>>20, g, med.ShardCount(), len(nodeAddrs))
	return d, nil
}

// appendRecoveryLog appends one recovery report line so operators (and
// the CI crash job) keep a history of what each restart restored.
func appendRecoveryLog(path string, rep persist.RecoveryReport) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := fmt.Fprintf(f, "%s recovery: %s\n", time.Now().UTC().Format(time.RFC3339), rep)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
