package main

import (
	"strings"
	"testing"

	"bypassyield/internal/wire"
)

func TestStartAndQuery(t *testing.T) {
	proxy, addr, desc, err := start("edr", "127.0.0.1:0", "rate-profile", 0.4, "columns", "", 100000, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	if !strings.Contains(desc, "rate-profile") || !strings.Contains(desc, "columns") {
		t.Fatalf("description = %q", desc)
	}
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query("select ra, dec from photoobj where ra < 90")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows <= 0 || len(res.Decisions) == 0 {
		t.Fatalf("result = %+v", res)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != 1 {
		t.Fatalf("queries = %d", st.Queries)
	}
}

func TestStartErrors(t *testing.T) {
	cases := []struct {
		name    string
		release string
		policy  string
		gran    string
		nodes   string
	}{
		{"bad release", "dr9", "gds", "tables", ""},
		{"bad policy", "edr", "magic", "tables", ""},
		{"bad granularity", "edr", "gds", "rows", ""},
		{"bad nodes", "edr", "gds", "tables", "no-equals-sign"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, _, err := start(tc.release, "127.0.0.1:0", tc.policy, 0.4, tc.gran, tc.nodes, 100000, 1); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}
