package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bypassyield/internal/wire"
)

func testOptions() options {
	return options{
		release: "edr", addr: "127.0.0.1:0", policy: "rate-profile",
		cachePct: 0.4, gran: "columns", sample: 100000, seed: 1,
		rpcTimeout: wire.DefaultRPCTimeout,
	}
}

func TestStartAndQuery(t *testing.T) {
	o := testOptions()
	o.traceOut = filepath.Join(t.TempDir(), "spans.jsonl")
	proxy, addr, desc, err := start(o)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	if !strings.Contains(desc, "rate-profile") || !strings.Contains(desc, "columns") {
		t.Fatalf("description = %q", desc)
	}
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query("select ra, dec from photoobj where ra < 90")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows <= 0 || len(res.Decisions) == 0 {
		t.Fatalf("result = %+v", res)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != 1 {
		t.Fatalf("queries = %d", st.Queries)
	}

	// The daemon serves a unified metrics snapshot spanning the
	// federation, core, and engine layers.
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Source != "byproxyd" {
		t.Fatalf("source = %q", m.Source)
	}
	if got := m.Snapshot.CounterValue("federation.queries", ""); got != 1 {
		t.Fatalf("federation.queries = %d", got)
	}
	if m.Snapshot.CounterValue("engine.rows_scanned", "") == 0 {
		t.Fatal("engine counters missing from daemon registry")
	}
	if m.Snapshot.CounterTotal("core.decisions") == 0 {
		t.Fatal("decision counters missing from daemon registry")
	}

	// -trace-out wrote a span for the query.
	deadline := time.Now().Add(2 * time.Second)
	for {
		b, _ := os.ReadFile(o.traceOut)
		if strings.Contains(string(b), "proxy.query") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("span log missing proxy.query: %q", b)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStartErrors(t *testing.T) {
	cases := []struct {
		name    string
		release string
		policy  string
		gran    string
		nodes   string
	}{
		{"bad release", "dr9", "gds", "tables", ""},
		{"bad policy", "edr", "magic", "tables", ""},
		{"bad granularity", "edr", "gds", "rows", ""},
		{"bad nodes", "edr", "gds", "tables", "no-equals-sign"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := testOptions()
			o.release, o.policy, o.gran, o.nodes = tc.release, tc.policy, tc.gran, tc.nodes
			if _, _, _, err := start(o); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}
