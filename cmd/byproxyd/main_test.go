package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bypassyield/internal/wire"
)

func testOptions() options {
	return options{
		release: "edr", addr: "127.0.0.1:0", policy: "rate-profile",
		cachePct: 0.4, gran: "columns", sample: 100000, seed: 1,
		rpcTimeout: wire.DefaultRPCTimeout,
	}
}

func TestStartAndQuery(t *testing.T) {
	o := testOptions()
	o.traceOut = filepath.Join(t.TempDir(), "spans.jsonl")
	o.httpAddr = "127.0.0.1:0"
	d, err := start(o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if !strings.Contains(d.desc, "rate-profile") || !strings.Contains(d.desc, "columns") {
		t.Fatalf("description = %q", d.desc)
	}
	c, err := wire.Dial(d.bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query("select ra, dec from photoobj where ra < 90")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows <= 0 || len(res.Decisions) == 0 {
		t.Fatalf("result = %+v", res)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != 1 {
		t.Fatalf("queries = %d", st.Queries)
	}

	// The daemon serves a unified metrics snapshot spanning the
	// federation, core, and engine layers.
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Source != "byproxyd" {
		t.Fatalf("source = %q", m.Source)
	}
	if got := m.Snapshot.CounterValue("federation.queries", ""); got != 1 {
		t.Fatalf("federation.queries = %d", got)
	}
	if m.Snapshot.CounterValue("engine.rows_scanned", "") == 0 {
		t.Fatal("engine counters missing from daemon registry")
	}
	if m.Snapshot.CounterTotal("core.decisions") == 0 {
		t.Fatal("decision counters missing from daemon registry")
	}

	// The same registry backs the HTTP telemetry plane.
	resp, err := http.Get("http://" + d.http.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	for _, want := range []string{"federation_queries 1", "core_query_rate"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	if resp, err := http.Get("http://" + d.http.Addr + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	// -trace-out wrote a span for the query.
	deadline := time.Now().Add(2 * time.Second)
	for {
		b, _ := os.ReadFile(o.traceOut)
		if strings.Contains(string(b), "proxy.query") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("span log missing proxy.query: %q", b)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStartLedgerFlags(t *testing.T) {
	o := testOptions()
	o.ledgerCap = 64
	o.ledgerOut = filepath.Join(t.TempDir(), "decisions.jsonl")
	o.shadow = true
	d, err := start(o)
	if err != nil {
		t.Fatal(err)
	}
	c, err := wire.Dial(d.bound)
	if err != nil {
		d.Close()
		t.Fatal(err)
	}
	if _, err := c.Query("select ra from photoobj where ra < 90"); err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decisions(wire.DecisionsMsg{})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Total == 0 || len(dec.Records) == 0 {
		t.Fatalf("decisions = %+v, want records for the query", dec)
	}
	if len(dec.Baselines) == 0 {
		t.Fatal("shadow baselines missing with -shadow")
	}
	c.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// -ledger-out persisted every record as JSONL.
	b, err := os.ReadFile(o.ledgerOut)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(string(b)), "\n") + 1
	if uint64(lines) != dec.Total {
		t.Fatalf("ledger log has %d lines, want %d:\n%s", lines, dec.Total, b)
	}
	if !strings.Contains(string(b), `"action"`) {
		t.Fatalf("ledger log missing action field:\n%s", b)
	}
}

func TestStartLedgerOutRequiresLedger(t *testing.T) {
	o := testOptions()
	o.ledgerCap = 0
	o.ledgerOut = filepath.Join(t.TempDir(), "decisions.jsonl")
	if _, err := start(o); err == nil {
		t.Fatal("-ledger-out without -ledger should fail startup")
	}
}

func TestStartErrors(t *testing.T) {
	cases := []struct {
		name    string
		release string
		policy  string
		gran    string
		nodes   string
	}{
		{"bad release", "dr9", "gds", "tables", ""},
		{"bad policy", "edr", "magic", "tables", ""},
		{"bad granularity", "edr", "gds", "rows", ""},
		{"bad nodes", "edr", "gds", "tables", "no-equals-sign"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := testOptions()
			o.release, o.policy, o.gran, o.nodes = tc.release, tc.policy, tc.gran, tc.nodes
			if _, err := start(o); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestStartBadHTTPAddr(t *testing.T) {
	o := testOptions()
	o.httpAddr = "256.0.0.1:bogus"
	if _, err := start(o); err == nil {
		t.Fatal("unbindable -http address should fail startup")
	}
}
