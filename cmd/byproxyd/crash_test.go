package main

// Kill-tolerant recovery tests: a real byproxyd process (this test
// binary re-exec'd into helper mode) is killed — with SIGKILL, or
// deterministically mid-WAL-write via -persist-faults — and restarted
// on the same -state-dir. The parent keeps the database nodes alive
// across the kill, so WAN refetches after restart are observable as
// dbnode.fetches deltas.

import (
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"bypassyield/internal/catalog"
	"bypassyield/internal/engine"
	"bypassyield/internal/wire"
)

// TestCrashHelperProcess is the re-exec entry point: under
// BYPROXYD_CRASH_HELPER=1 it runs a real proxy daemon until SIGTERM
// (or until a -persist-faults crash point kills it). It is a no-op
// under a normal `go test` run.
func TestCrashHelperProcess(t *testing.T) {
	if os.Getenv("BYPROXYD_CRASH_HELPER") != "1" {
		t.Skip("helper process for the crash-recovery harness")
	}
	o := testOptions()
	// LRU loads on first miss, so the cache is deterministically
	// populated early — the warm-restart zero-refetch assertion then
	// has something concrete to protect.
	o.policy = "lru"
	o.gran = "tables"
	o.cachePct = 0.8
	o.nodes = os.Getenv("BYPROXYD_NODES")
	o.stateDir = os.Getenv("BYPROXYD_STATE_DIR")
	o.walSync = true
	o.snapInterval = time.Hour // only boundary snapshots: Open and Close
	o.recoveryLog = os.Getenv("BYPROXYD_RECOVERY_LOG")
	o.persistFaults = os.Getenv("BYPROXYD_FAULTS")
	if s := os.Getenv("BYPROXYD_SHARDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "helper: bad BYPROXYD_SHARDS:", err)
			os.Exit(3)
		}
		o.decisionShards = n
	}
	d, err := start(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(3)
	}
	// Publish the bound address only after recovery finished and the
	// listener is up — the parent polls for this file.
	addrFile := os.Getenv("BYPROXYD_ADDR_FILE")
	if err := os.WriteFile(addrFile+".tmp", []byte(d.bound), 0o644); err != nil {
		os.Exit(3)
	}
	if err := os.Rename(addrFile+".tmp", addrFile); err != nil {
		os.Exit(3)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	<-sig
	if err := d.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "helper close:", err)
		os.Exit(3)
	}
}

// crashRecoveryLog picks where helper daemons append their recovery
// reports: CRASH_RECOVERY_LOG (the `make crash` CI artifact) or a
// per-test temp file.
func crashRecoveryLog(t *testing.T) string {
	if p := os.Getenv("CRASH_RECOVERY_LOG"); p != "" {
		return p
	}
	return filepath.Join(t.TempDir(), "recovery.log")
}

// crashNodes starts one in-process database node per EDR site; they
// outlive proxy kills so their fetch counters span restarts.
type crashNodes struct {
	nodes map[string]*wire.DBNode
	addrs string
}

func startCrashNodes(t *testing.T) *crashNodes {
	t.Helper()
	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 100000})
	if err != nil {
		t.Fatal(err)
	}
	sites := map[string]bool{}
	for i := range s.Tables {
		sites[s.Tables[i].Site] = true
	}
	cn := &crashNodes{nodes: map[string]*wire.DBNode{}}
	var pairs []string
	for site := range sites {
		n := wire.NewDBNode(site, db)
		n.SetLogf(func(string, ...any) {})
		addr, err := n.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cn.nodes[site] = n
		pairs = append(pairs, site+"="+addr)
	}
	cn.addrs = strings.Join(pairs, ",")
	t.Cleanup(func() {
		for _, n := range cn.nodes {
			n.Close()
		}
	})
	return cn
}

// fetches sums dbnode.fetches across all sites.
func (cn *crashNodes) fetches() int64 {
	var total int64
	for _, n := range cn.nodes {
		total += n.Obs().Snapshot().CounterValue("dbnode.fetches", "")
	}
	return total
}

// proxyProc is one launched helper daemon.
type proxyProc struct {
	cmd  *exec.Cmd
	addr string
}

// launchProxy re-execs the test binary as a proxy daemon and waits for
// its bound address. faults arms -persist-faults; extraEnv appends
// helper environment (e.g. BYPROXYD_SHARDS=8).
func launchProxy(t *testing.T, cn *crashNodes, stateDir, recoveryLog, faults string, extraEnv ...string) *proxyProc {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashHelperProcess$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		"BYPROXYD_CRASH_HELPER=1",
		"BYPROXYD_NODES="+cn.addrs,
		"BYPROXYD_STATE_DIR="+stateDir,
		"BYPROXYD_ADDR_FILE="+addrFile,
		"BYPROXYD_RECOVERY_LOG="+recoveryLog,
		"BYPROXYD_FAULTS="+faults,
	)
	cmd.Env = append(cmd.Env, extraEnv...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return &proxyProc{cmd: cmd, addr: string(b)}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("helper proxy never published its address")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// crashWorkload drives the helper proxy; every query repeats over the
// same tables so the policy caches them early. Returns the
// last acknowledged stats — with -wal-sync, everything acknowledged is
// durable. Stops early (without failing) once the proxy dies, for
// fault-injected runs.
func crashWorkload(t *testing.T, addr string, n int, tolerateDeath bool) (last *wire.StatsResultMsg, died bool) {
	t.Helper()
	c, err := wire.Dial(addr)
	if err != nil {
		if tolerateDeath {
			return nil, true
		}
		t.Fatal(err)
	}
	defer c.Close()
	stmts := []string{
		"select ra, dec from photoobj where ra < 120",
		"select z, zConf from specobj where z < 0.4",
		"select p.objID, s.z from SpecObj s, PhotoObj p where p.ObjID = s.ObjID and s.z < 0.2",
	}
	for i := 0; i < n; i++ {
		if _, err := c.Query(stmts[i%len(stmts)]); err != nil {
			if tolerateDeath {
				return last, true
			}
			t.Fatalf("query %d: %v", i, err)
		}
		st, err := c.Stats()
		if err != nil {
			if tolerateDeath {
				return last, true
			}
			t.Fatalf("stats after query %d: %v", i, err)
		}
		last = st
	}
	return last, false
}

// delivered computes D_A from the flow accounting.
func delivered(st *wire.StatsResultMsg) int64 {
	return st.Acct.BypassBytes + st.Acct.CacheBytes
}

// assertRecovered dials the restarted proxy and checks the issue's
// acceptance bar: Σ ledger yields = D_A across the restart, the
// recovered state is at or past everything acknowledged pre-kill, the
// warm-start metrics are exported, and a query over a persisted cached
// object is a cache hit with zero WAN refetches.
func assertRecovered(t *testing.T, proc *proxyProc, cn *crashNodes, acked *wire.StatsResultMsg) {
	t.Helper()
	assertRecoveredObject(t, proc, cn, acked, "edr/photoobj",
		"select ra, dec from photoobj where ra < 120")
}

// assertRecoveredObject is assertRecovered with a caller-chosen cached
// object and covering query — cross-layout restarts split capacity
// across partitions, so only objects that fit a partition's slice
// survive the rehash and the biggest table is the wrong witness.
func assertRecoveredObject(t *testing.T, proc *proxyProc, cn *crashNodes, acked *wire.StatsResultMsg, object, query string) {
	t.Helper()
	c, err := wire.Dial(proc.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Acct.YieldBytes != delivered(st) {
		t.Fatalf("yield %d != D_A %d after restart", st.Acct.YieldBytes, delivered(st))
	}
	if acked != nil {
		if st.Acct.Queries < acked.Acct.Queries || st.Acct.YieldBytes < acked.Acct.YieldBytes {
			t.Fatalf("recovered %+v behind acknowledged %+v", st.Acct, acked.Acct)
		}
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Snapshot.GaugeValue("persist.warm_start") != 1 {
		t.Fatal("persist.warm_start != 1 after restart with state")
	}
	if m.Snapshot.GaugeValue("persist.recovery_ms") < 0 {
		t.Fatal("persist.recovery_ms not exported")
	}
	if got := m.Snapshot.CounterValue("core.yield_bytes", ""); got != st.Acct.YieldBytes {
		t.Fatalf("core.yield_bytes %d != restored accounting %d", got, st.Acct.YieldBytes)
	}
	// The recovered cache serves hits immediately: a query over the
	// persisted object must not fetch anything over the WAN.
	cached := false
	for _, id := range st.CachedObjects {
		if id == object {
			cached = true
		}
	}
	if !cached {
		t.Fatalf("%s not in recovered cache: %v", object, st.CachedObjects)
	}
	before := cn.fetches()
	res, err := c.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Decisions {
		if d.Object == object && d.Decision != "hit" {
			t.Fatalf("post-restart decision for cached object = %q, want hit", d.Decision)
		}
	}
	if after := cn.fetches(); after != before {
		t.Fatalf("restart triggered %d WAN refetches for persisted cache", after-before)
	}
}

func TestKillRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns proxy subprocesses")
	}
	cn := startCrashNodes(t)
	stateDir := filepath.Join(t.TempDir(), "state")
	recoveryLog := crashRecoveryLog(t)

	proc := launchProxy(t, cn, stateDir, recoveryLog, "")
	acked, _ := crashWorkload(t, proc.addr, 24, false)
	if acked == nil || acked.Acct.YieldBytes == 0 {
		t.Fatalf("workload produced no accounting: %+v", acked)
	}
	// SIGKILL: no drain, no final snapshot — recovery must come from
	// the synced WAL alone.
	if err := proc.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	proc.cmd.Wait()

	proc2 := launchProxy(t, cn, stateDir, recoveryLog, "")
	assertRecovered(t, proc2, cn, acked)
	b, err := os.ReadFile(recoveryLog)
	if err != nil || !strings.Contains(string(b), "warm start") {
		t.Fatalf("recovery log missing warm start (%v):\n%s", err, b)
	}
	if err := proc2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := proc2.cmd.Wait(); err != nil {
		t.Fatalf("graceful shutdown after recovery: %v", err)
	}
}

// TestShardLayoutChangeAcrossRestart restarts the daemon with a
// different -decision-shards than the state on disk was written under:
// a single-partition run's snapshot must warm-start an 8-partition
// plane through the rehash path — accounting and the persisted cache
// intact, zero WAN refetches — and vice versa back down to one.
func TestShardLayoutChangeAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns proxy subprocesses")
	}
	cn := startCrashNodes(t)
	stateDir := filepath.Join(t.TempDir(), "state")
	recoveryLog := crashRecoveryLog(t)

	// Generation 1: single partition, graceful shutdown (the rehash
	// path is exact for a quiescent-boundary snapshot).
	proc := launchProxy(t, cn, stateDir, recoveryLog, "", "BYPROXYD_SHARDS=1")
	acked, _ := crashWorkload(t, proc.addr, 24, false)
	if acked == nil || acked.Acct.YieldBytes == 0 {
		t.Fatalf("workload produced no accounting: %+v", acked)
	}
	if acked.DecisionShards != 1 {
		t.Fatalf("generation 1 runs %d shards, want 1", acked.DecisionShards)
	}
	if err := proc.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := proc.cmd.Wait(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	// Generation 2: same state directory, 8 partitions. Capacity is
	// split across partitions, so the big photoobj table no longer fits
	// any single slice and restarts cold — specobj is the witness that
	// cache contents crossed the layout change.
	proc2 := launchProxy(t, cn, stateDir, recoveryLog, "", "BYPROXYD_SHARDS=8")
	assertRecoveredObject(t, proc2, cn, acked, "edr/specobj",
		"select z, zConf from specobj where z < 0.4")
	c, err := wire.Dial(proc2.addr)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.DecisionShards != 8 || len(st.ShardAccts) != 8 {
		t.Fatalf("generation 2 reports %d shards (%d sections), want 8",
			st.DecisionShards, len(st.ShardAccts))
	}
	if err := proc2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := proc2.cmd.Wait(); err != nil {
		t.Fatalf("graceful shutdown after rehash up: %v", err)
	}

	// Generation 3: back down to one partition — the sharded snapshot's
	// sections aggregate and rehash into the single plane. (photoobj
	// was shed in generation 2, so specobj remains the witness.)
	proc3 := launchProxy(t, cn, stateDir, recoveryLog, "", "BYPROXYD_SHARDS=1")
	assertRecoveredObject(t, proc3, cn, acked, "edr/specobj",
		"select z, zConf from specobj where z < 0.4")
	if err := proc3.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := proc3.cmd.Wait(); err != nil {
		t.Fatalf("graceful shutdown after rehash down: %v", err)
	}
}

func TestFaultInjectedTornWALRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns proxy subprocesses")
	}
	cn := startCrashNodes(t)
	stateDir := filepath.Join(t.TempDir(), "state")
	recoveryLog := crashRecoveryLog(t)

	// The 30th WAL append dies mid-payload: a deterministic torn
	// record, not a race the test hopes to win.
	proc := launchProxy(t, cn, stateDir, recoveryLog, "wal.append.mid-record:after=30")
	acked, died := crashWorkload(t, proc.addr, 200, true)
	if !died {
		t.Fatal("proxy survived an armed fault point")
	}
	err := proc.cmd.Wait()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 137 {
		t.Fatalf("fault crash exit = %v, want status 137", err)
	}

	proc2 := launchProxy(t, cn, stateDir, recoveryLog, "")
	assertRecovered(t, proc2, cn, acked)
	b, _ := os.ReadFile(recoveryLog)
	if !strings.Contains(string(b), "torn tail truncated") {
		t.Fatalf("recovery log missing torn-tail truncation:\n%s", b)
	}
}

func TestCorruptTailFallsBackAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns proxy subprocesses")
	}
	cn := startCrashNodes(t)
	stateDir := filepath.Join(t.TempDir(), "state")
	recoveryLog := crashRecoveryLog(t)

	// Two graceful generations, so a fallback target exists.
	for i := 0; i < 2; i++ {
		proc := launchProxy(t, cn, stateDir, recoveryLog, "")
		if _, died := crashWorkload(t, proc.addr, 12, false); died {
			t.Fatal("proxy died during setup workload")
		}
		if err := proc.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := proc.cmd.Wait(); err != nil {
			t.Fatalf("graceful shutdown %d: %v", i, err)
		}
	}
	// Corrupt the newest snapshot and tear the newest WAL.
	snaps, err := filepath.Glob(filepath.Join(stateDir, "snap-*"))
	if err != nil || len(snaps) < 2 {
		t.Fatalf("want 2 snapshot generations, have %v (%v)", snaps, err)
	}
	data, err := os.ReadFile(snaps[len(snaps)-1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(snaps[len(snaps)-1], data, 0o644); err != nil {
		t.Fatal(err)
	}
	wals, _ := filepath.Glob(filepath.Join(stateDir, "wal-*"))
	if len(wals) == 0 {
		t.Fatal("no wal files")
	}
	f, err := os.OpenFile(wals[len(wals)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{64, 0, 0, 0, 1, 2, 3, 4, 9, 9})
	f.Close()

	proc := launchProxy(t, cn, stateDir, recoveryLog, "")
	assertRecovered(t, proc, cn, nil)
	b, _ := os.ReadFile(recoveryLog)
	if !strings.Contains(string(b), "fallbacks=1") {
		t.Fatalf("recovery log missing snapshot fallback:\n%s", b)
	}
}
