// Command benchgate compares a fresh bench-synth report against the
// committed baseline and exits nonzero when the federation got slower
// beyond tolerance — achieved RPS or the saturation knee dropping, or
// p99 latency drifting up. It is the CI regression threshold on
// BENCH_synth.json: the bench job regenerates the report, then gates
// it against the checked-in copy.
//
// Usage:
//
//	benchgate -baseline BENCH_synth.json -fresh /tmp/fresh.json \
//	    -max-rps-drop 0.30 -max-p99-drift 1.0
//
// Tolerances are fractions: -max-rps-drop 0.30 fails when the fresh
// rate lands below 70% of the baseline; -max-p99-drift 1.0 fails when
// fresh p99 exceeds twice the baseline. They default wide because CI
// runners are noisy — the gate is for step-change regressions (a
// reintroduced serialization point, a broken pool), not for 5% jitter.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"bypassyield/internal/synth"
)

type limits struct {
	// maxRPSDrop is the tolerated fractional drop in achieved RPS and
	// in the saturation knee (0.30 = fresh may be 30% below baseline).
	maxRPSDrop float64
	// maxP99Drift is the tolerated fractional rise in p99 latency
	// (1.0 = fresh p99 may be double the baseline).
	maxP99Drift float64
}

// gate returns one violation message per regression beyond tolerance.
// Checks degrade gracefully with report shape: the knee comparison
// runs only when both reports carry a saturation section, so an old
// steady-scenario baseline still gates RPS and p99.
func gate(baseline, fresh *synth.Report, lim limits) []string {
	var viol []string
	if floor := baseline.AchievedRPS * (1 - lim.maxRPSDrop); baseline.AchievedRPS > 0 && fresh.AchievedRPS < floor {
		viol = append(viol, fmt.Sprintf(
			"achieved RPS dropped %.1f → %.1f (floor %.1f at -max-rps-drop %.2f)",
			baseline.AchievedRPS, fresh.AchievedRPS, floor, lim.maxRPSDrop))
	}
	if ceil := float64(baseline.Latency.P99US) * (1 + lim.maxP99Drift); baseline.Latency.P99US > 0 && float64(fresh.Latency.P99US) > ceil {
		viol = append(viol, fmt.Sprintf(
			"p99 latency drifted %dµs → %dµs (ceiling %.0fµs at -max-p99-drift %.2f)",
			baseline.Latency.P99US, fresh.Latency.P99US, ceil, lim.maxP99Drift))
	}
	if baseline.Saturation != nil && fresh.Saturation != nil && baseline.Saturation.KneeRPS > 0 {
		if floor := baseline.Saturation.KneeRPS * (1 - lim.maxRPSDrop); fresh.Saturation.KneeRPS < floor {
			viol = append(viol, fmt.Sprintf(
				"saturation knee dropped %.0f → %.0f rps (floor %.0f at -max-rps-drop %.2f)",
				baseline.Saturation.KneeRPS, fresh.Saturation.KneeRPS, floor, lim.maxRPSDrop))
		}
	}
	return viol
}

func load(path string) (*synth.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep synth.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func main() {
	basePath := flag.String("baseline", "BENCH_synth.json", "committed baseline report")
	freshPath := flag.String("fresh", "", "freshly generated report to gate")
	var lim limits
	flag.Float64Var(&lim.maxRPSDrop, "max-rps-drop", 0.30, "tolerated fractional drop in achieved RPS / saturation knee")
	flag.Float64Var(&lim.maxP99Drift, "max-p99-drift", 1.0, "tolerated fractional rise in p99 latency")
	flag.Parse()
	if *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -fresh is required")
		os.Exit(2)
	}
	baseline, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	fmt.Printf("benchgate: achieved %.1f → %.1f rps, p99 %d → %dµs",
		baseline.AchievedRPS, fresh.AchievedRPS, baseline.Latency.P99US, fresh.Latency.P99US)
	if baseline.Saturation != nil && fresh.Saturation != nil {
		fmt.Printf(", knee %.0f → %.0f rps", baseline.Saturation.KneeRPS, fresh.Saturation.KneeRPS)
	}
	fmt.Println()

	viol := gate(baseline, fresh, lim)
	for _, v := range viol {
		fmt.Fprintln(os.Stderr, "benchgate: REGRESSION:", v)
	}
	if len(viol) > 0 {
		os.Exit(1)
	}
	fmt.Println("benchgate: within tolerance")
}
