package main

import (
	"strings"
	"testing"

	"bypassyield/internal/synth"
)

func report(rps float64, p99 int64, knee float64) *synth.Report {
	rep := &synth.Report{AchievedRPS: rps}
	rep.Latency.P99US = p99
	if knee > 0 {
		rep.Saturation = &synth.SaturationReport{KneeRPS: knee}
	}
	return rep
}

func TestGate(t *testing.T) {
	lim := limits{maxRPSDrop: 0.30, maxP99Drift: 1.0}
	base := report(200, 10_000, 400)

	cases := []struct {
		name  string
		fresh *synth.Report
		want  []string // substrings of expected violations, empty = pass
	}{
		{"identical", report(200, 10_000, 400), nil},
		{"within tolerance", report(150, 19_000, 300), nil},
		{"rps collapse", report(100, 10_000, 400), []string{"achieved RPS dropped"}},
		{"p99 blowup", report(200, 30_000, 400), []string{"p99 latency drifted"}},
		{"knee collapse", report(200, 10_000, 200), []string{"saturation knee dropped"}},
		{"everything regressed", report(50, 50_000, 100),
			[]string{"achieved RPS", "p99 latency", "saturation knee"}},
		// An old steady-scenario baseline (no saturation section) still
		// gates RPS and p99; the knee check is skipped, not failed.
		{"no knee in fresh", report(200, 10_000, 0), nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			viol := gate(base, tc.fresh, lim)
			if len(viol) != len(tc.want) {
				t.Fatalf("violations = %v, want %d matching %v", viol, len(tc.want), tc.want)
			}
			for i, want := range tc.want {
				if !strings.Contains(viol[i], want) {
					t.Fatalf("violation %d = %q, want substring %q", i, viol[i], want)
				}
			}
		})
	}

	// Baseline without a knee never triggers the knee check either.
	if viol := gate(report(200, 10_000, 0), report(200, 10_000, 50), lim); len(viol) != 0 {
		t.Fatalf("kneeless baseline produced violations: %v", viol)
	}
	// Improvements are never violations.
	if viol := gate(base, report(500, 2_000, 900), lim); len(viol) != 0 {
		t.Fatalf("improvement flagged as regression: %v", viol)
	}
}
