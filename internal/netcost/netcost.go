// Package netcost models wide-area transfer costs between federation
// sites and the proxy cache. The paper's metrics (BYHR) allow each
// object a fetch cost f_i distinct from its size s_i; on uniform
// networks f_i = s_i (the common case, and the paper's experimental
// setting), while non-uniform models scale per-byte cost by site.
package netcost

// Model assigns a per-byte WAN cost multiplier to each site.
type Model struct {
	// PerSite maps site names to cost multipliers; sites absent from
	// the map use Default.
	PerSite map[string]float64
	// Default is the multiplier for unlisted sites; zero means 1.
	Default float64
}

// Uniform returns the uniform network model (every byte costs 1),
// under which BYHR reduces to BYU.
func Uniform() *Model { return &Model{} }

// Factor returns the per-byte cost multiplier for a site.
func (m *Model) Factor(site string) float64 {
	if m == nil {
		return 1
	}
	if f, ok := m.PerSite[site]; ok && f > 0 {
		return f
	}
	if m.Default > 0 {
		return m.Default
	}
	return 1
}

// FetchCost returns the WAN cost of moving size bytes from the site
// to the cache. The result is at least 1 for positive sizes so that
// every object has a positive fetch cost.
func (m *Model) FetchCost(size int64, site string) int64 {
	c := int64(float64(size) * m.Factor(site))
	if c < 1 && size > 0 {
		c = 1
	}
	return c
}
