package netcost

import "testing"

func TestUniformModel(t *testing.T) {
	m := Uniform()
	if m.Factor("anything") != 1 {
		t.Fatal("uniform factor should be 1")
	}
	if m.FetchCost(1000, "x") != 1000 {
		t.Fatal("uniform fetch cost should equal size")
	}
}

func TestNilModel(t *testing.T) {
	var m *Model
	if m.Factor("x") != 1 {
		t.Fatal("nil model should behave uniformly")
	}
}

func TestPerSiteFactors(t *testing.T) {
	m := &Model{PerSite: map[string]float64{"far": 2.5}, Default: 1.5}
	if m.Factor("far") != 2.5 {
		t.Fatalf("Factor(far) = %v", m.Factor("far"))
	}
	if m.Factor("other") != 1.5 {
		t.Fatalf("Factor(other) = %v, want default 1.5", m.Factor("other"))
	}
	if got := m.FetchCost(100, "far"); got != 250 {
		t.Fatalf("FetchCost = %d, want 250", got)
	}
}

func TestZeroAndNegativeFactorsIgnored(t *testing.T) {
	m := &Model{PerSite: map[string]float64{"bad": 0}}
	if m.Factor("bad") != 1 {
		t.Fatal("non-positive per-site factor should fall back to 1")
	}
}

func TestFetchCostFloor(t *testing.T) {
	m := &Model{PerSite: map[string]float64{"near": 0.0001}}
	if got := m.FetchCost(100, "near"); got != 1 {
		t.Fatalf("FetchCost = %d, want floor of 1", got)
	}
	if got := m.FetchCost(0, "near"); got != 0 {
		t.Fatalf("FetchCost(0) = %d, want 0", got)
	}
}
