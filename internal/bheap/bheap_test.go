package bheap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyHeap(t *testing.T) {
	var h Heap
	if h.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", h.Len())
	}
	if h.PeekMin() != nil {
		t.Fatal("PeekMin on empty heap should be nil")
	}
	if h.PopMin() != nil {
		t.Fatal("PopMin on empty heap should be nil")
	}
	if h.Remove("x") != nil {
		t.Fatal("Remove on empty heap should be nil")
	}
	if h.Contains("x") {
		t.Fatal("Contains on empty heap should be false")
	}
	if h.Update("x", 1) {
		t.Fatal("Update on empty heap should report false")
	}
}

func TestPushPopOrder(t *testing.T) {
	h := New(8)
	utils := []float64{5, 1, 3, 2, 4, 0, 6}
	for i, u := range utils {
		if _, err := h.Push(string(rune('a'+i)), u, nil); err != nil {
			t.Fatalf("Push: %v", err)
		}
	}
	want := append([]float64(nil), utils...)
	sort.Float64s(want)
	for i, w := range want {
		it := h.PopMin()
		if it == nil {
			t.Fatalf("PopMin #%d returned nil", i)
		}
		if it.Utility != w {
			t.Fatalf("PopMin #%d utility = %v, want %v", i, it.Utility, w)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len after draining = %d, want 0", h.Len())
	}
}

func TestDuplicateKey(t *testing.T) {
	h := New(2)
	if _, err := h.Push("a", 1, nil); err != nil {
		t.Fatalf("first Push: %v", err)
	}
	if _, err := h.Push("a", 2, nil); err == nil {
		t.Fatal("second Push with duplicate key should fail")
	}
}

func TestGetAndValue(t *testing.T) {
	h := New(2)
	h.Push("a", 1, 42)
	it := h.Get("a")
	if it == nil {
		t.Fatal("Get returned nil for present key")
	}
	if v, ok := it.Value.(int); !ok || v != 42 {
		t.Fatalf("Value = %v, want 42", it.Value)
	}
	if h.Get("b") != nil {
		t.Fatal("Get for absent key should be nil")
	}
}

func TestUpdateMovesItem(t *testing.T) {
	h := New(4)
	h.Push("a", 1, nil)
	h.Push("b", 2, nil)
	h.Push("c", 3, nil)
	if !h.Update("a", 10) {
		t.Fatal("Update should report true for present key")
	}
	if got := h.PeekMin().Key; got != "b" {
		t.Fatalf("PeekMin after update = %q, want b", got)
	}
	h.Update("c", 0)
	if got := h.PeekMin().Key; got != "c" {
		t.Fatalf("PeekMin after second update = %q, want c", got)
	}
}

func TestRemoveMiddle(t *testing.T) {
	h := New(8)
	for i, u := range []float64{4, 2, 6, 1, 3, 5} {
		h.Push(string(rune('a'+i)), u, nil)
	}
	removed := h.Remove("a") // utility 4
	if removed == nil || removed.Utility != 4 {
		t.Fatalf("Remove returned %+v, want utility 4", removed)
	}
	if h.Contains("a") {
		t.Fatal("heap still contains removed key")
	}
	want := []float64{1, 2, 3, 5, 6}
	for i, w := range want {
		if got := h.PopMin().Utility; got != w {
			t.Fatalf("PopMin #%d = %v, want %v", i, got, w)
		}
	}
}

func TestRemoveLast(t *testing.T) {
	h := New(2)
	h.Push("a", 1, nil)
	it := h.Remove("a")
	if it == nil || it.Key != "a" {
		t.Fatalf("Remove = %+v, want key a", it)
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d, want 0", h.Len())
	}
}

func TestAscendMinOrderAndEarlyStop(t *testing.T) {
	h := New(16)
	r := rand.New(rand.NewSource(7))
	var want []float64
	for i := 0; i < 50; i++ {
		u := r.Float64()
		want = append(want, u)
		h.Push(string(rune(i+'0')), u, nil)
	}
	sort.Float64s(want)

	var got []float64
	h.AscendMin(func(it *Item) bool {
		got = append(got, it.Utility)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("AscendMin visited %d items, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("AscendMin order mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
	// Heap must be unchanged by AscendMin.
	if h.Len() != 50 {
		t.Fatalf("heap length changed by AscendMin: %d", h.Len())
	}
	if h.PeekMin().Utility != want[0] {
		t.Fatal("heap min changed by AscendMin")
	}

	// Early stop after three items.
	n := 0
	h.AscendMin(func(*Item) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d, want 3", n)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var h Heap
	if _, err := h.Push("a", 1, nil); err != nil {
		t.Fatalf("Push on zero-value heap: %v", err)
	}
	if h.PopMin().Key != "a" {
		t.Fatal("PopMin should return pushed item")
	}
}

// heapInvariant checks the min-heap property and index consistency.
func heapInvariant(h *Heap) bool {
	for i, it := range h.items {
		if it.index != i {
			return false
		}
		if got := h.byKey[it.Key]; got != it {
			return false
		}
		l, r := 2*i+1, 2*i+2
		if l < len(h.items) && h.items[l].Utility < it.Utility {
			return false
		}
		if r < len(h.items) && h.items[r].Utility < it.Utility {
			return false
		}
	}
	return len(h.items) == len(h.byKey)
}

func TestQuickRandomOps(t *testing.T) {
	// Property: after an arbitrary sequence of push/pop/update/remove
	// operations the heap invariant holds and PopMin drains in sorted
	// order.
	f := func(seed int64, opsRaw []byte) bool {
		r := rand.New(rand.NewSource(seed))
		h := New(4)
		live := map[string]bool{}
		keyN := 0
		for _, op := range opsRaw {
			switch op % 4 {
			case 0: // push
				k := string(rune('A' + keyN%64))
				keyN++
				if !live[k] {
					h.Push(k, r.Float64(), nil)
					live[k] = true
				}
			case 1: // pop
				if it := h.PopMin(); it != nil {
					delete(live, it.Key)
				}
			case 2: // update random live key
				for k := range live {
					h.Update(k, r.Float64())
					break
				}
			case 3: // remove random live key
				for k := range live {
					h.Remove(k)
					delete(live, k)
					break
				}
			}
			if !heapInvariant(h) {
				return false
			}
		}
		prev := -1.0
		for h.Len() > 0 {
			it := h.PopMin()
			if it.Utility < prev {
				return false
			}
			prev = it.Utility
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = string(rune(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := New(len(keys))
		for _, k := range keys {
			h.Push(k, r.Float64(), nil)
		}
		for h.Len() > 0 {
			h.PopMin()
		}
	}
}

func BenchmarkUpdate(b *testing.B) {
	h := New(1024)
	r := rand.New(rand.NewSource(1))
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = string(rune(i))
		h.Push(keys[i], r.Float64(), nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Update(keys[i%len(keys)], r.Float64())
	}
}
