// Package bheap provides a mutable binary min-heap keyed by a float64
// utility with O(1) membership lookup by string key.
//
// It is the cache data structure described in Section 6 of the paper:
// a binary heap of database objects ordered by utility value, with an
// additional hash table so that hits and misses resolve in O(1) time.
// Insertions are O(log n), eviction of the minimum-utility item is
// O(log n), and utility updates are O(log n).
package bheap

import "fmt"

// Item is an element stored in the heap. The zero Item is not valid;
// items are created by Push and owned by the heap until removed.
type Item struct {
	// Key uniquely identifies the item within the heap.
	Key string
	// Utility is the heap ordering key; the minimum-utility item is
	// at the root.
	Utility float64
	// Value is an arbitrary payload carried with the item.
	Value any

	index int // position in the heap slice; -1 once removed
}

// Heap is a binary min-heap over Items with O(1) lookup by key.
// The zero value is an empty heap ready for use.
type Heap struct {
	items []*Item
	byKey map[string]*Item
}

// New returns an empty heap with capacity hint n.
func New(n int) *Heap {
	return &Heap{
		items: make([]*Item, 0, n),
		byKey: make(map[string]*Item, n),
	}
}

// Len reports the number of items in the heap.
func (h *Heap) Len() int { return len(h.items) }

// Contains reports whether an item with the given key is present.
func (h *Heap) Contains(key string) bool {
	_, ok := h.byKey[key]
	return ok
}

// Get returns the item with the given key, or nil if absent.
func (h *Heap) Get(key string) *Item {
	return h.byKey[key]
}

// Push inserts a new item and returns it. It returns an error if an
// item with the same key is already present.
func (h *Heap) Push(key string, utility float64, value any) (*Item, error) {
	if h.byKey == nil {
		h.byKey = make(map[string]*Item)
	}
	if _, ok := h.byKey[key]; ok {
		return nil, fmt.Errorf("bheap: duplicate key %q", key)
	}
	it := &Item{Key: key, Utility: utility, Value: value, index: len(h.items)}
	h.items = append(h.items, it)
	h.byKey[key] = it
	h.up(it.index)
	return it, nil
}

// PeekMin returns the minimum-utility item without removing it, or nil
// if the heap is empty.
func (h *Heap) PeekMin() *Item {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

// PopMin removes and returns the minimum-utility item, or nil if the
// heap is empty.
func (h *Heap) PopMin() *Item {
	if len(h.items) == 0 {
		return nil
	}
	return h.remove(0)
}

// Remove removes the item with the given key and returns it, or nil if
// the key is absent.
func (h *Heap) Remove(key string) *Item {
	it, ok := h.byKey[key]
	if !ok {
		return nil
	}
	return h.remove(it.index)
}

// Update changes the utility of the item with the given key and
// restores heap order. It reports whether the key was present.
func (h *Heap) Update(key string, utility float64) bool {
	it, ok := h.byKey[key]
	if !ok {
		return false
	}
	old := it.Utility
	it.Utility = utility
	switch {
	case utility < old:
		h.up(it.index)
	case utility > old:
		h.down(it.index)
	}
	return true
}

// Items returns a snapshot of all items in heap (not sorted) order.
// Mutating the returned slice does not affect the heap, but the Items
// themselves are shared.
func (h *Heap) Items() []*Item {
	out := make([]*Item, len(h.items))
	copy(out, h.items)
	return out
}

// AscendMin visits items in nondecreasing utility order, calling fn for
// each until fn returns false. It operates on a temporary copy and does
// not modify the heap. Cost is O(n log n) in the worst case; callers
// typically stop early after a few items.
func (h *Heap) AscendMin(fn func(*Item) bool) {
	// Copy the heap structure (item pointers and order) and pop from
	// the copy. Indexes on shared items must not be disturbed, so the
	// copy tracks positions independently.
	type node struct {
		it *Item
	}
	nodes := make([]node, len(h.items))
	for i, it := range h.items {
		nodes[i] = node{it}
	}
	less := func(i, j int) bool { return nodes[i].it.Utility < nodes[j].it.Utility }
	swap := func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] }
	down := func(i, n int) {
		for {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < n && less(l, s) {
				s = l
			}
			if r < n && less(r, s) {
				s = r
			}
			if s == i {
				return
			}
			swap(i, s)
			i = s
		}
	}
	n := len(nodes)
	for n > 0 {
		if !fn(nodes[0].it) {
			return
		}
		n--
		swap(0, n)
		down(0, n)
	}
}

func (h *Heap) remove(i int) *Item {
	it := h.items[i]
	last := len(h.items) - 1
	h.swap(i, last)
	h.items = h.items[:last]
	delete(h.byKey, it.Key)
	if i < last {
		h.down(i)
		h.up(i)
	}
	it.index = -1
	return it
}

func (h *Heap) less(i, j int) bool {
	return h.items[i].Utility < h.items[j].Utility
}

func (h *Heap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
