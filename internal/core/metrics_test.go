package core

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestBYHRHandComputed(t *testing.T) {
	// Object: size 100, fetch 200. Queries: p=0.5 yield 40, p=0.25
	// yield 80. BYHR = (0.5·40 + 0.25·80)·200 / 100² = 40·200/10000 = 0.8.
	obj := testObjCost("a", 100, 200)
	qs := []WeightedQuery{{P: 0.5, Yield: 40}, {P: 0.25, Yield: 80}}
	if got := BYHR(obj, qs); !almostEqual(got, 0.8) {
		t.Fatalf("BYHR = %v, want 0.8", got)
	}
}

func TestBYUHandComputed(t *testing.T) {
	// BYU = (0.5·40 + 0.25·80)/100 = 0.4.
	obj := testObjCost("a", 100, 200)
	qs := []WeightedQuery{{P: 0.5, Yield: 40}, {P: 0.25, Yield: 80}}
	if got := BYU(obj, qs); !almostEqual(got, 0.4) {
		t.Fatalf("BYU = %v, want 0.4", got)
	}
}

func TestBYHRReducesToBYUTimesCostRatio(t *testing.T) {
	// BYHR = BYU · f/s always; with f = s they coincide.
	f := func(size uint16, fetch uint16, p1, p2 float64, y1, y2 uint16) bool {
		s := int64(size%1000) + 1
		fc := int64(fetch%1000) + 1
		obj := testObjCost("a", s, fc)
		qs := []WeightedQuery{
			{P: math.Abs(p1 - math.Trunc(p1)), Yield: int64(y1)},
			{P: math.Abs(p2 - math.Trunc(p2)), Yield: int64(y2)},
		}
		return almostEqual(BYHR(obj, qs), BYU(obj, qs)*float64(fc)/float64(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBYUDegeneratesToHitRate(t *testing.T) {
	// Page model: all yields equal the object size. BYU = Σ p_j — the
	// object's aggregate access probability, i.e. its expected hit
	// contribution.
	obj := testObj("a", 4096)
	qs := []WeightedQuery{{P: 0.3, Yield: 4096}, {P: 0.2, Yield: 4096}}
	if got := BYU(obj, qs); !almostEqual(got, 0.5) {
		t.Fatalf("BYU = %v, want 0.5 (aggregate probability)", got)
	}
}

func TestBYHRDegeneratesToGDSPUtility(t *testing.T) {
	// Object model: yield equals object size. BYHR = (Σ p_j)·f/s — the
	// frequency-weighted cost/size utility GDSP uses.
	obj := testObjCost("a", 100, 300)
	qs := []WeightedQuery{{P: 0.1, Yield: 100}, {P: 0.3, Yield: 100}}
	want := 0.4 * 300.0 / 100.0
	if got := BYHR(obj, qs); !almostEqual(got, want) {
		t.Fatalf("BYHR = %v, want %v", got, want)
	}
}

func TestMetricsEmptyDistribution(t *testing.T) {
	obj := testObj("a", 10)
	if BYHR(obj, nil) != 0 || BYU(obj, nil) != 0 {
		t.Fatal("empty distribution should give zero utility")
	}
}

func TestMetricsPreferHigherYieldPerByte(t *testing.T) {
	// Two objects with the same workload probability mass; the one
	// yielding more bytes per byte of cache space must score higher —
	// the first component of BYHR in the paper's decomposition.
	small := testObj("small", 100)
	big := testObj("big", 10000)
	qs := []WeightedQuery{{P: 0.5, Yield: 90}}
	if BYU(small, qs) <= BYU(big, qs) {
		t.Fatal("BYU must prefer the object with higher yield per byte of cache")
	}
}
