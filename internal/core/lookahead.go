package core

import "sort"

// Lookahead is a clairvoyant comparator: it knows the full trace in
// advance and decides per access from each object's actual future
// yields — a Belady-flavored heuristic for the bypass-yield problem.
// Computing the true offline optimum is intractable (cache states are
// exponential), so Lookahead serves as a tighter empirical stand-in
// than static-optimal when estimating competitive ratios (the xcomp
// experiment): it adapts over time, which a static plan cannot.
//
// Decision rule at time t for object o (not cached):
//
//   - gain(o, t) = Σ future yields of o within the horizon
//   - load if gain − fetch > Σ over victims of their remaining gain,
//     choosing victims with the least remaining gain per byte.
//
// Cached objects are served; eviction only happens to admit a
// better-gaining object.
type Lookahead struct {
	capacity int64
	used     int64
	// future[o] holds the (sorted) times and yields of o's accesses.
	future map[ObjectID]*futureRef
	// horizon bounds how far ahead gains accumulate; 0 = to the end.
	horizon int64
	entries map[ObjectID]*laEntry
	evicted int64
}

type futureRef struct {
	times  []int64
	yields []int64
	// next indexes the first access with time > the current clock.
	next int
}

type laEntry struct {
	obj Object
}

// NewLookahead builds the clairvoyant policy from the full trace.
// horizon bounds the lookahead window in queries (0 = unbounded).
func NewLookahead(capacity int64, reqs []Request, horizon int64) *Lookahead {
	l := &Lookahead{
		capacity: capacity,
		horizon:  horizon,
		future:   make(map[ObjectID]*futureRef),
		entries:  make(map[ObjectID]*laEntry),
	}
	for _, r := range reqs {
		for _, a := range r.Accesses {
			f := l.future[a.Object]
			if f == nil {
				f = &futureRef{}
				l.future[a.Object] = f
			}
			f.times = append(f.times, r.Seq)
			f.yields = append(f.yields, a.Yield)
		}
	}
	return l
}

// Name implements Policy.
func (l *Lookahead) Name() string { return "lookahead" }

// Used implements Policy.
func (l *Lookahead) Used() int64 { return l.used }

// Capacity implements Policy.
func (l *Lookahead) Capacity() int64 { return l.capacity }

// Contains implements Policy.
func (l *Lookahead) Contains(id ObjectID) bool {
	_, ok := l.entries[id]
	return ok
}

// Evictions implements Policy.
func (l *Lookahead) Evictions() int64 { return l.evicted }

// Reset implements Policy: cache state clears; the future knowledge
// (and each object's progress cursor) rewinds.
func (l *Lookahead) Reset() {
	l.used = 0
	l.evicted = 0
	l.entries = make(map[ObjectID]*laEntry)
	for _, f := range l.future {
		f.next = 0
	}
}

// gain sums an object's future yields within the horizon after time t.
func (l *Lookahead) gain(id ObjectID, t int64) int64 {
	f := l.future[id]
	if f == nil {
		return 0
	}
	// Advance the cursor past accesses at or before t.
	for f.next < len(f.times) && f.times[f.next] <= t {
		f.next++
	}
	var sum int64
	for i := f.next; i < len(f.times); i++ {
		if l.horizon > 0 && f.times[i] > t+l.horizon {
			break
		}
		sum += f.yields[i]
	}
	return sum
}

// Access implements Policy.
func (l *Lookahead) Access(t int64, obj Object, yield int64) Decision {
	if _, ok := l.entries[obj.ID]; ok {
		return Hit
	}
	if obj.Size > l.capacity {
		return Bypass
	}
	gain := l.gain(obj.ID, t)
	if gain <= obj.FetchCost {
		return Bypass // even serving every future access cannot repay the load
	}
	needed := obj.Size - (l.capacity - l.used)
	if needed > 0 {
		victims, victimGain, freed := l.selectVictims(t, needed)
		if freed < needed || victimGain >= gain-obj.FetchCost {
			return Bypass
		}
		for _, id := range victims {
			l.evict(id)
		}
	}
	l.entries[obj.ID] = &laEntry{obj: obj}
	l.used += obj.Size
	return Load
}

// selectVictims picks cached objects with the least remaining gain
// per byte until `needed` bytes are freed, returning their combined
// remaining gain.
func (l *Lookahead) selectVictims(t, needed int64) (victims []ObjectID, totalGain int64, freed int64) {
	type cand struct {
		id      ObjectID
		gain    int64
		size    int64
		density float64
	}
	cands := make([]cand, 0, len(l.entries))
	for id, e := range l.entries {
		g := l.gain(id, t)
		cands = append(cands, cand{id, g, e.obj.Size, float64(g) / float64(e.obj.Size)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].density != cands[j].density {
			return cands[i].density < cands[j].density
		}
		return cands[i].id < cands[j].id
	})
	for _, c := range cands {
		if freed >= needed {
			break
		}
		victims = append(victims, c.id)
		totalGain += c.gain
		freed += c.size
	}
	return victims, totalGain, freed
}

func (l *Lookahead) evict(id ObjectID) {
	e := l.entries[id]
	delete(l.entries, id)
	l.used -= e.obj.Size
	l.evicted++
}
