package core

// Episode tracking for the Rate-Profile algorithm (Sections 4.2–4.3).
//
// For objects not in the cache, the algorithm maintains a profile that
// divides the past accesses into disjoint episodes — clustered bursts
// of accesses. Within the current episode the load-adjusted rate
// profile (LARP, eq. 4) is a continuous-time quantity
//
//	LARP_{i,e}(t) = (Σ y − f_i) / ((t − t_S)·s_i)
//
// — the rate profile "reduced by the load cost" (Section 4.2): the
// cumulative net savings the object would have realized had it been
// loaded at the episode start, per query per byte of cache. (The
// paper's typeset eq. 4 reads Σy/((t−tS)s) − f/s, with the penalty
// term outside the time denominator; that form never turns positive
// unless a single query's yield rivals the whole fetch cost, which
// contradicts the surrounding text — "the rate will always be
// increasing until the load penalty has been overcome, i.e., until
// LARP > 0" only holds for the cumulative form, which we therefore
// implement. See DESIGN.md.)
//
// Each completed episode is distilled into a single value, the
// load-adjusted rate (LAR, eq. 5): the maximum LARP attained during
// the episode — the best savings rate the object would have realized
// had it been cached for that episode. The object's overall LAR
// (eq. 6) is a recency-weighted average over episodes.
//
// Episode boundaries follow the paper's two heuristics: the current
// episode ends when (1) LARP falls below c·(running max LARP), or
// (2) the object has not been accessed during the last k queries. The
// paper uses c = 0.5 and k = 1000.

// EpisodeConfig parameterizes episode division and aging.
type EpisodeConfig struct {
	// C is the decay-tolerance fraction of heuristic (1); the episode
	// ends when LARP < C · maxLARP. The paper's value is 0.5.
	C float64
	// K is the idle horizon of heuristic (2), in queries. The paper's
	// value is 1000.
	K int64
	// Gamma is the per-episode aging factor: episode e (counting from
	// the most recent, which has weight 1) is weighted Gamma^age. The
	// paper only requires recent episodes to weigh more; we default
	// to 0.5.
	Gamma float64
	// MaxEpisodes bounds the retained episode history per object
	// (pruning); older episodes are dropped. Zero means the default.
	MaxEpisodes int
}

// DefaultEpisodeConfig returns the paper's parameterization.
func DefaultEpisodeConfig() EpisodeConfig {
	return EpisodeConfig{C: 0.5, K: 1000, Gamma: 0.5, MaxEpisodes: 8}
}

func (c *EpisodeConfig) fill() {
	if c.C == 0 {
		c.C = 0.5
	}
	if c.K == 0 {
		c.K = 1000
	}
	if c.Gamma == 0 {
		c.Gamma = 0.5
	}
	if c.MaxEpisodes == 0 {
		c.MaxEpisodes = 8
	}
}

// profile is the out-of-cache metadata for one object: the open
// episode plus the LAR values of completed episodes (oldest first).
type profile struct {
	open       bool
	started    bool    // at least one access in the open episode
	start      int64   // t_S of the open episode
	sumYield   int64   // Σ y within the open episode
	maxLARP    float64 // running max of LARP over the open episode
	lastAccess int64   // time of the most recent access (for pruning and heuristic 2)
	past       []float64
}

// larp evaluates eq. 4 (cumulative form, see the package comment
// above) at time t for the open episode. The paper evaluates LARP at
// query arrival times; at the very first access of an episode
// t == t_S, where we use a one-query interval (the access itself
// consumed one unit of relative time).
func (p *profile) larp(t int64, obj Object) float64 {
	dt := t - p.start
	if dt < 1 {
		dt = 1
	}
	return (float64(p.sumYield) - float64(obj.FetchCost)) / (float64(dt) * float64(obj.Size))
}

// closeEpisode records the open episode's LAR and resets the open
// state. A never-accessed open episode is not recorded.
//
// Episodes whose rate never overcame the load cost record zero, not
// their negative maximum: eq. 5's "maximum value describes the
// balance point between network savings overcoming the initial load
// cost and, later, reduced usage causing the utility to decrease"
// presumes the balance point was reached. A never-profitable episode
// realized no savings opportunity — recording its raw negative
// maximum (whose magnitude is just the unamortized fetch penalty)
// would let a history of light probing drown out a later genuine
// burst in the eq. 6 average, and the object could never be loaded
// again.
func (p *profile) closeEpisode(maxEpisodes int) {
	if !p.open {
		return
	}
	rec := p.maxLARP
	if rec < 0 {
		rec = 0
	}
	p.past = append(p.past, rec)
	if len(p.past) > maxEpisodes {
		p.past = p.past[len(p.past)-maxEpisodes:]
	}
	p.open = false
	p.started = false
	p.sumYield = 0
	p.maxLARP = 0
}

// lar evaluates eq. 6: the aging-weighted average of episode LARs,
// including the open episode's running maximum as the most recent
// contribution.
func (p *profile) lar(gamma float64) float64 {
	var num, den float64
	w := 1.0
	if p.open {
		num += p.maxLARP
		den += 1
		w = gamma
	}
	for i := len(p.past) - 1; i >= 0; i-- {
		num += w * p.past[i]
		den += w
		w *= gamma
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// profileTable manages profiles for all objects observed outside the
// cache, with pruning to keep metadata compact: profiles idle longer
// than the prune horizon are discarded, and the table is bounded by
// MaxProfiles (discarding the least recently accessed).
type profileTable struct {
	cfg         EpisodeConfig
	maxProfiles int
	byID        map[ObjectID]*profile
	tel         *Telemetry // optional; counts episode open/close churn
}

func newProfileTable(cfg EpisodeConfig, maxProfiles int) *profileTable {
	cfg.fill()
	if maxProfiles <= 0 {
		maxProfiles = 1 << 16
	}
	return &profileTable{cfg: cfg, maxProfiles: maxProfiles, byID: make(map[ObjectID]*profile)}
}

// observe records a bypassed access at time t and returns the object's
// updated LAR. It applies both episode-termination heuristics.
func (pt *profileTable) observe(t int64, obj Object, yield int64) float64 {
	p := pt.byID[obj.ID]
	if p == nil {
		p = &profile{lastAccess: t}
		pt.byID[obj.ID] = p
		pt.prune(t)
	}
	// Heuristic (2): idle too long → the burst ended; close it out.
	if p.open && t-p.lastAccess > pt.cfg.K {
		p.closeEpisode(pt.cfg.MaxEpisodes)
		pt.tel.EpisodeClosed()
	}
	if !p.open {
		p.open = true
		p.started = false
		p.start = t
		p.sumYield = 0
		pt.tel.EpisodeOpened()
	}
	p.lastAccess = t
	p.sumYield += yield
	l := p.larp(t, obj)
	switch {
	case !p.started:
		// The running max starts from the first observed LARP (which
		// is typically negative: the load penalty dominates early).
		p.started = true
		p.maxLARP = l
	case l > p.maxLARP:
		p.maxLARP = l
	case p.maxLARP > 0 && l < pt.cfg.C*p.maxLARP:
		// Heuristic (1): the rate fell below the decay tolerance; end
		// the episode and begin a new one at this access. The guard
		// maxLARP > 0 follows the paper's observation that the rate
		// only increases until the load penalty is overcome.
		p.closeEpisode(pt.cfg.MaxEpisodes)
		pt.tel.EpisodeClosed()
		p.open = true
		p.started = true
		p.start = t
		p.sumYield = yield
		p.maxLARP = p.larp(t, obj)
		pt.tel.EpisodeOpened()
	}
	return p.lar(pt.cfg.Gamma)
}

// onLoad closes the open episode when the object enters the cache; its
// subsequent in-cache performance is tracked by the rate profile, not
// the episode history.
func (pt *profileTable) onLoad(id ObjectID) {
	if p := pt.byID[id]; p != nil {
		if p.open {
			pt.tel.EpisodeClosed()
		}
		p.closeEpisode(pt.cfg.MaxEpisodes)
	}
}

// prune enforces the metadata bound: drop profiles idle beyond the
// horizon; if still over budget, drop the least recently accessed.
func (pt *profileTable) prune(t int64) {
	if len(pt.byID) <= pt.maxProfiles {
		return
	}
	horizon := 4 * pt.cfg.K
	for id, p := range pt.byID {
		if t-p.lastAccess > horizon {
			delete(pt.byID, id)
		}
	}
	for len(pt.byID) > pt.maxProfiles {
		var oldest ObjectID
		oldestT := int64(1<<63 - 1)
		for id, p := range pt.byID {
			if p.lastAccess < oldestT {
				oldestT = p.lastAccess
				oldest = id
			}
		}
		delete(pt.byID, oldest)
	}
}

// info reports an object's episode state for explanations: the count
// of completed episodes and whether one is currently open ("open" vs
// "closed"; "" for an untracked object).
func (pt *profileTable) info(id ObjectID) (episodes int64, phase string) {
	p := pt.byID[id]
	if p == nil {
		return 0, ""
	}
	if p.open {
		return int64(len(p.past)), "open"
	}
	return int64(len(p.past)), "closed"
}

// size reports the number of tracked profiles (for tests of the
// metadata bound).
func (pt *profileTable) size() int { return len(pt.byID) }

// reset clears all profiles.
func (pt *profileTable) reset() { pt.byID = make(map[ObjectID]*profile) }
