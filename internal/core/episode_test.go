package core

import (
	"math"
	"testing"
)

func newTestTable(cfg EpisodeConfig, maxProfiles int) *profileTable {
	return newProfileTable(cfg, maxProfiles)
}

func TestLARPFirstAccess(t *testing.T) {
	// First access of an episode: dt clamps to 1.
	// LARP = y/(1·s) − f/s = (y − f)/s.
	pt := newTestTable(DefaultEpisodeConfig(), 0)
	obj := testObj("a", 100)
	lar := pt.observe(10, obj, 60)
	want := (60.0 - 100.0) / 100.0 // -0.4
	if !almostEqual(lar, want) {
		t.Fatalf("LAR after first access = %v, want %v", lar, want)
	}
}

func TestLARPGrowsWithinEpisode(t *testing.T) {
	// Two quick accesses: sum 200 over dt=1 at t=11 (start=10):
	// LARP = 200/(1·100) − 1 = 1.0. Running max is positive now.
	pt := newTestTable(DefaultEpisodeConfig(), 0)
	obj := testObj("a", 100)
	pt.observe(10, obj, 100)
	lar := pt.observe(11, obj, 100)
	if !almostEqual(lar, 1.0) {
		t.Fatalf("LAR = %v, want 1.0", lar)
	}
}

func TestEpisodeIdleSplit(t *testing.T) {
	// Heuristic (2): an access more than K queries after the last one
	// closes the episode; the closed episode's LAR enters the history.
	cfg := DefaultEpisodeConfig()
	cfg.K = 100
	pt := newTestTable(cfg, 0)
	obj := testObj("a", 100)
	pt.observe(1, obj, 100)
	pt.observe(2, obj, 100) // episode 1 max LARP = 1.0
	p := pt.byID[obj.ID]
	if len(p.past) != 0 {
		t.Fatalf("history before idle split: %v", p.past)
	}
	pt.observe(200, obj, 50) // idle gap 198 > K → new episode
	if len(p.past) != 1 {
		t.Fatalf("history after idle split has %d episodes, want 1", len(p.past))
	}
	if !almostEqual(p.past[0], 1.0) {
		t.Fatalf("closed episode LAR = %v, want 1.0", p.past[0])
	}
	if p.start != 200 {
		t.Fatalf("new episode start = %d, want 200", p.start)
	}
}

func TestEpisodeRateDecaySplit(t *testing.T) {
	// Heuristic (1): once the running max is positive, a LARP below
	// C·max closes the episode and a new one begins at that access.
	cfg := DefaultEpisodeConfig()
	cfg.C = 0.5
	cfg.K = 1 << 40 // disable idle split
	pt := newTestTable(cfg, 0)
	obj := testObj("a", 100)
	pt.observe(1, obj, 200) // LARP = 200/100 − 1 = 1.0; max = 1.0
	p := pt.byID[obj.ID]
	if !almostEqual(p.maxLARP, 1.0) {
		t.Fatalf("maxLARP = %v, want 1.0", p.maxLARP)
	}
	// t=20: sum=210 over dt=19 → 210/1900 − 1 ≈ −0.889 < 0.5·1.0.
	pt.observe(20, obj, 10)
	if len(p.past) != 1 || !almostEqual(p.past[0], 1.0) {
		t.Fatalf("episode not closed by rate decay: past = %v", p.past)
	}
	// The new episode starts at t=20 with the triggering access.
	if p.start != 20 || p.sumYield != 10 {
		t.Fatalf("new episode start=%d sum=%d, want 20/10", p.start, p.sumYield)
	}
}

func TestRateDecayBoundaryExactlyCDoesNotSplit(t *testing.T) {
	// Heuristic (1) is a strict inequality: the episode ends only when
	// LARP < C·maxLARP, so LARP landing EXACTLY on the boundary must
	// keep the episode open. All quantities here are exactly
	// representable in float64, so the comparison is exact.
	cfg := DefaultEpisodeConfig()
	cfg.C = 0.5
	cfg.K = 1 << 40 // disable idle split
	pt := newTestTable(cfg, 0)
	obj := testObj("a", 100)
	pt.observe(1, obj, 300) // LARP = (300−100)/(1·100) = 2.0; max = 2.0
	p := pt.byID[obj.ID]
	if !almostEqual(p.maxLARP, 2.0) {
		t.Fatalf("maxLARP = %v, want 2.0", p.maxLARP)
	}
	// t=3: dt=2, sum=300 → LARP = 200/200 = 1.0 == 0.5·2.0 exactly.
	pt.observe(3, obj, 0)
	if len(p.past) != 0 {
		t.Fatalf("episode split at LARP == C·maxLARP: past = %v", p.past)
	}
	if !p.open || p.start != 1 {
		t.Fatalf("episode state disturbed at the boundary: open=%v start=%d", p.open, p.start)
	}
	// One epsilon below the boundary (t=4: LARP = 200/300 < 1.0) the
	// split fires.
	pt.observe(4, obj, 0)
	if len(p.past) != 1 || !almostEqual(p.past[0], 2.0) {
		t.Fatalf("episode not split just below the boundary: past = %v", p.past)
	}
	if p.start != 4 {
		t.Fatalf("new episode start = %d, want 4", p.start)
	}
}

func TestRateDecayBoundaryZeroMaxDoesNotSplit(t *testing.T) {
	// The guard is also strict: maxLARP must be > 0 for heuristic (1)
	// to arm. An episode sitting exactly at maxLARP == 0 (the yield
	// exactly paid off the fetch cost, no more) never rate-splits.
	cfg := DefaultEpisodeConfig()
	cfg.C = 0.5
	cfg.K = 1 << 40
	pt := newTestTable(cfg, 0)
	obj := testObj("a", 100)
	pt.observe(1, obj, 100) // LARP = (100−100)/100 = 0 exactly
	p := pt.byID[obj.ID]
	if p.maxLARP != 0 {
		t.Fatalf("maxLARP = %v, want exactly 0", p.maxLARP)
	}
	for i := int64(2); i < 30; i += 3 {
		pt.observe(i, obj, 0)
	}
	if len(p.past) != 0 {
		t.Fatalf("zero-max episode was rate-split: past = %v", p.past)
	}
}

func TestRateDecaySplitRespectsConfiguredC(t *testing.T) {
	// The boundary moves with C: with C = 0.25 a decay to half the max
	// (which splits at C = 0.5) keeps the episode open, and only a
	// decay below a quarter of the max closes it.
	cfg := DefaultEpisodeConfig()
	cfg.C = 0.25
	cfg.K = 1 << 40
	pt := newTestTable(cfg, 0)
	obj := testObj("a", 100)
	pt.observe(1, obj, 300) // max = 2.0
	p := pt.byID[obj.ID]
	pt.observe(4, obj, 0) // LARP = 200/300 ≈ 0.667 ≥ 0.25·2.0
	if len(p.past) != 0 {
		t.Fatalf("episode split above the C=0.25 boundary: past = %v", p.past)
	}
	pt.observe(9, obj, 0) // LARP = 200/800 = 0.25 < 0.25·2.0 = 0.5 → split
	if len(p.past) != 1 {
		t.Fatalf("episode not split below the C=0.25 boundary: past = %v", p.past)
	}
}

func TestEpisodeInfo(t *testing.T) {
	cfg := DefaultEpisodeConfig()
	cfg.K = 10
	pt := newTestTable(cfg, 0)
	obj := testObj("a", 100)
	if n, phase := pt.info(obj.ID); n != 0 || phase != "" {
		t.Fatalf("untracked info = %d/%q, want 0/\"\"", n, phase)
	}
	pt.observe(1, obj, 100)
	if n, phase := pt.info(obj.ID); n != 0 || phase != "open" {
		t.Fatalf("open-episode info = %d/%q, want 0/open", n, phase)
	}
	pt.onLoad(obj.ID)
	if n, phase := pt.info(obj.ID); n != 1 || phase != "closed" {
		t.Fatalf("post-load info = %d/%q, want 1/closed", n, phase)
	}
}

func TestNegativeMaxDoesNotSplit(t *testing.T) {
	// While the load penalty has not been overcome (max LARP ≤ 0)
	// heuristic (1) must not fire — the paper observes the rate only
	// increases until LARP > 0.
	cfg := DefaultEpisodeConfig()
	cfg.K = 1 << 40
	pt := newTestTable(cfg, 0)
	obj := testObj("a", 1000)
	pt.observe(1, obj, 10) // LARP = (10−1000)/1000 < 0
	pt.observe(5, obj, 10)
	pt.observe(9, obj, 10)
	p := pt.byID[obj.ID]
	if len(p.past) != 0 {
		t.Fatalf("negative-rate episode was split: past = %v", p.past)
	}
}

func TestNegativeEpisodeRecordsZero(t *testing.T) {
	// An episode whose rate never overcame the load cost records a
	// LAR of zero (see DESIGN.md): otherwise a history of light
	// probing (each episode's raw maximum ≈ −f/s) would permanently
	// veto loading the object during a later genuine burst.
	cfg := DefaultEpisodeConfig()
	cfg.K = 10
	pt := newTestTable(cfg, 0)
	obj := testObj("a", 1000)
	// Several tiny probe episodes split by idleness.
	for i := int64(0); i < 4; i++ {
		pt.observe(1+i*100, obj, 5)
	}
	p := pt.byID[obj.ID]
	for i, v := range p.past {
		if v != 0 {
			t.Fatalf("probe episode %d recorded LAR %v, want 0", i, v)
		}
	}
	// A burst can now push the LAR positive despite the history.
	lar := 0.0
	for i := int64(0); i < 30; i++ {
		lar = pt.observe(1000+i*2, obj, 100)
	}
	if lar <= 0 {
		t.Fatalf("burst LAR = %v, want positive despite probe history", lar)
	}
}

func TestLARWeightsRecentEpisodes(t *testing.T) {
	// Two closed episodes with LARs 1.0 (old) and 0.0 (recent), no
	// open episode: with γ=0.5 LAR = (1·0.0 + 0.5·1.0)/(1+0.5) = 1/3.
	p := &profile{past: []float64{1.0, 0.0}}
	if got := p.lar(0.5); !almostEqual(got, 1.0/3.0) {
		t.Fatalf("lar = %v, want 1/3", got)
	}
}

func TestLAROpenEpisodeDominates(t *testing.T) {
	// Open episode maxLARP=2.0 plus history [1.0]:
	// LAR = (2.0 + 0.5·1.0)/(1 + 0.5) = 5/3.
	p := &profile{open: true, started: true, maxLARP: 2.0, past: []float64{1.0}}
	if got := p.lar(0.5); !almostEqual(got, 5.0/3.0) {
		t.Fatalf("lar = %v, want 5/3", got)
	}
}

func TestLAREmptyProfile(t *testing.T) {
	p := &profile{}
	if got := p.lar(0.5); got != 0 {
		t.Fatalf("lar of empty profile = %v, want 0", got)
	}
}

func TestEpisodeHistoryBounded(t *testing.T) {
	cfg := DefaultEpisodeConfig()
	cfg.K = 10
	cfg.MaxEpisodes = 3
	pt := newTestTable(cfg, 0)
	obj := testObj("a", 100)
	// Create many episodes via idle splits.
	for i := int64(0); i < 20; i++ {
		pt.observe(1+i*1000, obj, 100)
		pt.observe(2+i*1000, obj, 100)
	}
	p := pt.byID[obj.ID]
	if len(p.past) > cfg.MaxEpisodes {
		t.Fatalf("episode history %d exceeds bound %d", len(p.past), cfg.MaxEpisodes)
	}
}

func TestProfilePruningBound(t *testing.T) {
	cfg := DefaultEpisodeConfig()
	pt := newTestTable(cfg, 16)
	for i := 0; i < 200; i++ {
		obj := testObj(string(rune('A'+i%26))+string(rune('a'+i/26)), 100)
		pt.observe(int64(i+1), obj, 10)
	}
	if pt.size() > 16 {
		t.Fatalf("profile table size %d exceeds bound 16", pt.size())
	}
}

func TestProfilePruningKeepsRecent(t *testing.T) {
	cfg := DefaultEpisodeConfig()
	pt := newTestTable(cfg, 4)
	ids := []string{"a", "b", "c", "d", "e"}
	for i, id := range ids {
		pt.observe(int64(i+1), testObj(id, 100), 10)
	}
	// "a" (oldest) must have been pruned; "e" (newest) must remain.
	if pt.byID[ObjectID("a")] != nil {
		t.Fatal("oldest profile should have been pruned")
	}
	if pt.byID[ObjectID("e")] == nil {
		t.Fatal("newest profile should have been kept")
	}
}

func TestOnLoadClosesEpisode(t *testing.T) {
	pt := newTestTable(DefaultEpisodeConfig(), 0)
	obj := testObj("a", 100)
	pt.observe(1, obj, 100)
	pt.observe(2, obj, 100)
	pt.onLoad(obj.ID)
	p := pt.byID[obj.ID]
	if p.open {
		t.Fatal("episode still open after load")
	}
	if len(p.past) != 1 {
		t.Fatalf("history after load has %d episodes, want 1", len(p.past))
	}
}

func TestOnLoadUnknownObjectIsNoop(t *testing.T) {
	pt := newTestTable(DefaultEpisodeConfig(), 0)
	pt.onLoad("ghost") // must not panic
}

func TestEpisodeConfigFillDefaults(t *testing.T) {
	var cfg EpisodeConfig
	cfg.fill()
	def := DefaultEpisodeConfig()
	if cfg.C != def.C || cfg.K != def.K || cfg.Gamma != def.Gamma || cfg.MaxEpisodes != def.MaxEpisodes {
		t.Fatalf("fill() = %+v, want defaults %+v", cfg, def)
	}
}

func TestLARPNeverNaN(t *testing.T) {
	pt := newTestTable(DefaultEpisodeConfig(), 0)
	obj := testObj("a", 100)
	for i := int64(1); i < 100; i += 7 {
		lar := pt.observe(i, obj, 0) // zero-yield accesses
		if math.IsNaN(lar) || math.IsInf(lar, 0) {
			t.Fatalf("LAR is not finite at t=%d: %v", i, lar)
		}
	}
}
