package core

import "testing"

func TestGDSLoadsEveryMiss(t *testing.T) {
	// The in-line comparator caches all requests — the behaviour the
	// paper identifies as the source of its poor network citizenship.
	g := NewGDS(100)
	a, b := testObj("a", 60), testObj("b", 60)
	if d := g.Access(1, a, 1); d != Load {
		t.Fatalf("miss decision = %v, want load", d)
	}
	if d := g.Access(2, b, 1); d != Load {
		t.Fatalf("miss decision = %v, want load (after evicting a)", d)
	}
	if g.Contains(a.ID) {
		t.Fatal("a should have been evicted")
	}
	if g.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", g.Evictions())
	}
}

func TestGDSInflation(t *testing.T) {
	// GDS priorities: H = L + cost/size. After evicting a (H=1),
	// L rises to 1, so a freshly inserted object outranks the stale
	// priorities of earlier eras.
	g := NewGDS(120)
	a := testObjCost("a", 60, 60)  // H = 0 + 1 = 1
	b := testObjCost("b", 60, 120) // H = 0 + 2 = 2
	c := testObjCost("c", 60, 60)  // inserted after eviction: H = 1 + 1 = 2
	g.Access(1, a, 1)
	g.Access(2, b, 1)
	g.Access(3, c, 1) // must evict a (min H = 1), set L = 1
	if g.Contains(a.ID) || !g.Contains(b.ID) || !g.Contains(c.ID) {
		t.Fatal("GDS should evict the min-priority object a")
	}
	if !almostEqual(g.l, 1) {
		t.Fatalf("inflation L = %v, want 1", g.l)
	}
}

func TestGDSHitRefreshesPriority(t *testing.T) {
	g := NewGDS(120)
	a := testObj("a", 60)
	b := testObj("b", 60)
	g.Access(1, a, 1)
	g.Access(2, b, 1)
	g.Access(3, a, 1) // hit: refresh a's priority
	// Evicting for c: with equal priorities the heap picks one; after
	// a's refresh both are H=1 so this only checks no panic and space
	// accounting.
	c := testObj("c", 60)
	g.Access(4, c, 1)
	if g.Used() != 120 {
		t.Fatalf("used = %d, want 120", g.Used())
	}
}

func TestGDSOversizedBypasses(t *testing.T) {
	g := NewGDS(100)
	big := testObj("big", 200)
	if d := g.Access(1, big, 10); d != Bypass {
		t.Fatalf("oversized = %v, want bypass (forced)", d)
	}
}

func TestGDSPFrequencyPreference(t *testing.T) {
	// GDSP weighs priority by reference count: a frequently accessed
	// object outranks an equally sized infrequent one.
	g := NewGDSP(120)
	hot, cold := testObj("hot", 60), testObj("cold", 60)
	g.Access(1, hot, 1)
	g.Access(2, hot, 1)
	g.Access(3, hot, 1)  // freq 3, priority 3
	g.Access(4, cold, 1) // freq 1, priority 1
	g.Access(5, testObj("new", 60), 1)
	if !g.Contains(hot.ID) {
		t.Fatal("hot object evicted despite high frequency")
	}
	if g.Contains(cold.ID) {
		t.Fatal("cold object should have been the victim")
	}
}

func TestGDSPRemembersEvictedFrequency(t *testing.T) {
	// GDSP retains frequency for all objects in the reference stream,
	// so a re-loaded object resumes its count.
	g := NewGDSP(60)
	a, b := testObj("a", 60), testObj("b", 60)
	g.Access(1, a, 1)
	g.Access(2, a, 1) // freq 2
	g.Access(3, b, 1) // evicts a
	g.Access(4, a, 1) // re-load; freq resumes at 3
	if got := g.freq[a.ID]; got != 3 {
		t.Fatalf("frequency = %d, want 3 (retained across eviction)", got)
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	l := NewLRU(120)
	a, b, c := testObj("a", 60), testObj("b", 60), testObj("c", 60)
	l.Access(1, a, 1)
	l.Access(2, b, 1)
	l.Access(3, a, 1) // refresh a
	l.Access(4, c, 1) // must evict b (oldest)
	if l.Contains(b.ID) {
		t.Fatal("b should be the LRU victim")
	}
	if !l.Contains(a.ID) || !l.Contains(c.ID) {
		t.Fatal("a and c should be cached")
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	l := NewLFU(120)
	a, b, c := testObj("a", 60), testObj("b", 60), testObj("c", 60)
	l.Access(1, a, 1)
	l.Access(2, a, 1)
	l.Access(3, b, 1)
	l.Access(4, c, 1) // b has count 1, a has 2 → evict b
	if l.Contains(b.ID) {
		t.Fatal("b should be the LFU victim")
	}
	if !l.Contains(a.ID) {
		t.Fatal("a should survive")
	}
}

func TestInlineResetClearsExtraState(t *testing.T) {
	g := NewGDSP(100)
	g.Access(1, testObj("a", 50), 1)
	g.Reset()
	if len(g.freq) != 0 || g.l != 0 || g.Used() != 0 {
		t.Fatal("GDSP Reset incomplete")
	}
	lfu := NewLFU(100)
	lfu.Access(1, testObj("a", 50), 1)
	lfu.Reset()
	if len(lfu.count) != 0 || lfu.Used() != 0 {
		t.Fatal("LFU Reset incomplete")
	}
	gds := NewGDS(100)
	gds.Access(1, testObj("a", 50), 1)
	gds.Access(2, testObj("b", 80), 1) // force eviction: raises L
	gds.Reset()
	if gds.l != 0 || gds.Used() != 0 {
		t.Fatal("GDS Reset incomplete")
	}
}

func TestInlineCacheNamesAndCapacity(t *testing.T) {
	cases := []struct {
		p    Policy
		name string
	}{
		{NewGDS(10), "gds"},
		{NewGDSP(10), "gdsp"},
		{NewLRU(10), "lru"},
		{NewLFU(10), "lfu"},
	}
	for _, tc := range cases {
		if tc.p.Name() != tc.name {
			t.Fatalf("Name = %q, want %q", tc.p.Name(), tc.name)
		}
		if tc.p.Capacity() != 10 {
			t.Fatalf("%s Capacity = %d, want 10", tc.name, tc.p.Capacity())
		}
	}
}
