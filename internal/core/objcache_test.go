package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLandlordBasicLoadHit(t *testing.T) {
	ll := NewLandlord(10)
	a := testObj("a", 4)
	if got := ll.Request(a); got != ObjLoad {
		t.Fatalf("first request = %v, want load", got)
	}
	if got := ll.Request(a); got != ObjHit {
		t.Fatalf("second request = %v, want hit", got)
	}
	if ll.Used() != 4 {
		t.Fatalf("used = %d, want 4", ll.Used())
	}
}

func TestLandlordOversized(t *testing.T) {
	ll := NewLandlord(10)
	big := testObj("big", 11)
	if got := ll.Request(big); got != ObjBypass {
		t.Fatalf("oversized request = %v, want bypass", got)
	}
	if ll.Used() != 0 {
		t.Fatal("oversized object must not be cached")
	}
}

func TestLandlordEvictsMinCreditPerByte(t *testing.T) {
	ll := NewLandlord(10)
	a := testObjCost("a", 4, 4)  // credit/byte = 1
	b := testObjCost("b", 4, 12) // credit/byte = 3
	c := testObj("c", 4)
	ll.Request(a)
	ll.Request(b)
	// c needs 2 more bytes: the min credit-per-byte victim is a.
	if got := ll.Request(c); got != ObjLoad {
		t.Fatalf("request c = %v, want load", got)
	}
	if ll.Contains(a.ID) {
		t.Fatal("a (lowest credit per byte) should have been evicted")
	}
	if !ll.Contains(b.ID) || !ll.Contains(c.ID) {
		t.Fatal("b and c should be cached")
	}
	if ll.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", ll.Evictions())
	}
}

func TestLandlordCreditDecrementOnEviction(t *testing.T) {
	// Evicting a (ratio 1) raises the offset to 1, so b's effective
	// credit drops from 12 to (3−1)·4 = 8 — the uniform δ·size
	// decrement of the Landlord algorithm.
	ll := NewLandlord(10)
	a := testObjCost("a", 4, 4)
	b := testObjCost("b", 4, 12)
	ll.Request(a)
	ll.Request(b)
	ll.Request(testObj("c", 4)) // evicts a
	credit, ok := ll.Credit(b.ID)
	if !ok {
		t.Fatal("b should be cached")
	}
	if !almostEqual(credit, 8) {
		t.Fatalf("b's credit after eviction = %v, want 8", credit)
	}
}

func TestLandlordHitRefreshesCredit(t *testing.T) {
	ll := NewLandlord(10)
	a := testObjCost("a", 4, 4)
	b := testObjCost("b", 4, 12)
	ll.Request(a)
	ll.Request(b)
	ll.Request(testObj("c", 4)) // offset now 1; b credit 8
	ll.Request(b)               // hit: refresh to fetch cost 12
	credit, _ := ll.Credit(b.ID)
	if !almostEqual(credit, 12) {
		t.Fatalf("b's credit after hit = %v, want 12", credit)
	}
}

func TestLandlordCreditInvariant(t *testing.T) {
	// Property: every cached object's effective credit lies in
	// (0, fetch cost].
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ll := NewLandlord(1000)
		objs := make([]Object, 12)
		for i := range objs {
			objs[i] = testObjCost(
				string(rune('a'+i)),
				int64(r.Intn(400)+1),
				int64(r.Intn(800)+1),
			)
		}
		for step := 0; step < 500; step++ {
			o := objs[r.Intn(len(objs))]
			ll.Request(o)
			for _, cand := range objs {
				if credit, ok := ll.Credit(cand.ID); ok {
					// Ties at the eviction boundary may leave a
					// zero-credit object cached; credit must never go
					// negative or exceed the fetch cost.
					if credit < -1e-9 || credit > float64(cand.FetchCost)+1e-9 {
						return false
					}
				}
			}
			if ll.Used() > ll.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLandlordReset(t *testing.T) {
	ll := NewLandlord(10)
	ll.Request(testObj("a", 4))
	ll.Reset()
	if ll.Used() != 0 || ll.Contains("a") || ll.Evictions() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestSizeClass(t *testing.T) {
	cases := []struct {
		size int64
		want int
	}{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}}
	for _, tc := range cases {
		if got := sizeClass(tc.size); got != tc.want {
			t.Fatalf("sizeClass(%d) = %d, want %d", tc.size, got, tc.want)
		}
	}
}

func TestSizeClassMarkingBasic(t *testing.T) {
	m := NewSizeClassMarking(10)
	a := testObj("a", 4)
	if got := m.Request(a); got != ObjLoad {
		t.Fatalf("first request = %v, want load", got)
	}
	if got := m.Request(a); got != ObjHit {
		t.Fatalf("second request = %v, want hit", got)
	}
	if got := m.Request(testObj("big", 20)); got != ObjBypass {
		t.Fatalf("oversized = %v, want bypass", got)
	}
}

func TestSizeClassMarkingBypassWhenAllMarked(t *testing.T) {
	m := NewSizeClassMarking(8)
	a, b := testObj("a", 4), testObj("b", 4)
	m.Request(a) // load+mark
	m.Request(b) // load+mark
	// All cached objects are marked; c cannot fit → bypass.
	if got := m.Request(testObj("c", 4)); got != ObjBypass {
		t.Fatalf("request with all marked = %v, want bypass", got)
	}
	if !m.Contains(a.ID) || !m.Contains(b.ID) {
		t.Fatal("marked objects must not be evicted")
	}
}

func TestSizeClassMarkingPhaseTurnover(t *testing.T) {
	// After enough bypassed fetch volume (≥ capacity), the phase ends,
	// marks clear, and subsequent requests may evict.
	m := NewSizeClassMarking(8)
	a, b := testObj("a", 4), testObj("b", 4)
	m.Request(a)
	m.Request(b)
	c := testObj("c", 4)
	m.Request(c) // bypass, phaseBypass = 4
	m.Request(c) // bypass, phaseBypass = 8 ≥ cap → new phase
	if got := m.Request(c); got != ObjLoad {
		t.Fatalf("post-phase request = %v, want load", got)
	}
	if m.Evictions() == 0 {
		t.Fatal("an unmarked object should have been evicted")
	}
}

func TestSizeClassMarkingEvictsSmallestClassFirst(t *testing.T) {
	m := NewSizeClassMarking(12)
	small := testObj("small", 2) // class 1
	large := testObj("large", 8) // class 3
	m.Request(small)
	m.Request(large)
	m.newPhase() // unmark all
	// Requesting a 2-byte object: the smallest-class unmarked victim
	// (small) is evicted first.
	m.Request(testObj("x", 4))
	if m.Contains(small.ID) {
		t.Fatal("smallest-class unmarked object should be evicted first")
	}
	if !m.Contains(large.ID) {
		t.Fatal("larger-class object should survive when space suffices")
	}
}

func TestObjectCachersNeverExceedCapacity(t *testing.T) {
	for _, mk := range []func() ObjectCacher{
		func() ObjectCacher { return NewLandlord(100) },
		func() ObjectCacher { return NewSizeClassMarking(100) },
	} {
		oc := mk()
		t.Run(oc.Name(), func(t *testing.T) {
			r := rand.New(rand.NewSource(77))
			for i := 0; i < 2000; i++ {
				o := testObj(string(rune('a'+r.Intn(20))), int64(r.Intn(120)+1))
				oc.Request(o)
				if oc.Used() > oc.Capacity() {
					t.Fatalf("used %d > capacity %d", oc.Used(), oc.Capacity())
				}
			}
		})
	}
}

func TestLandlordLRUEquivalenceOnUniformObjects(t *testing.T) {
	// With uniform sizes and costs and no refresh differentiation,
	// Landlord behaves like FIFO/LRU-within-phase: it must achieve a
	// perfect hit run on a cyclic workload that fits.
	ll := NewLandlord(12)
	objs := []Object{testObj("a", 4), testObj("b", 4), testObj("c", 4)}
	for _, o := range objs {
		if ll.Request(o) != ObjLoad {
			t.Fatal("initial loads expected")
		}
	}
	for round := 0; round < 5; round++ {
		for _, o := range objs {
			if ll.Request(o) != ObjHit {
				t.Fatalf("cyclic fit workload should be all hits")
			}
		}
	}
	if ll.Evictions() != 0 {
		t.Fatalf("evictions = %d, want 0", ll.Evictions())
	}
}
