package core

// This file implements the yield-sensitive cache utility metrics of
// Section 3: byte-yield hit rate (BYHR, eq. 1) and byte-yield utility
// (BYU, eq. 2). Both are defined over a probability distribution of
// queries against an object; the Rate-Profile algorithm estimates the
// distribution from observed workload, while these functions compute
// the metrics exactly for a known distribution (used by tests, the
// static analyzer, and documentation examples).

// WeightedQuery is one query against an object: its occurrence
// probability and its yield in bytes.
type WeightedQuery struct {
	// P is the query's occurrence probability, in [0, 1].
	P float64
	// Yield is the query's result size in bytes.
	Yield int64
}

// BYHR computes the byte-yield hit rate of an object under a query
// distribution (eq. 1):
//
//	BYHR_i = Σ_j p_ij · y_ij · f_i / s_i²
//
// It measures the rate of network-bandwidth reduction per byte of
// cache space. Every object in the federation has a BYHR whether
// cached or not.
func BYHR(obj Object, queries []WeightedQuery) float64 {
	s := float64(obj.Size)
	f := float64(obj.FetchCost)
	var sum float64
	for _, q := range queries {
		sum += q.P * float64(q.Yield)
	}
	return sum * f / (s * s)
}

// BYU computes the byte-yield utility of an object under a query
// distribution (eq. 2):
//
//	BYU_i = Σ_j p_ij · y_ij / s_i
//
// BYU is the simplification of BYHR for environments where fetch cost
// is proportional to object size (single server, collocated servers,
// or uniform networks). BYU degenerates to hit rate in the page model
// (constant sizes, yield equal to object size) and BYHR degenerates to
// GDSP's utility in the object model.
func BYU(obj Object, queries []WeightedQuery) float64 {
	s := float64(obj.Size)
	var sum float64
	for _, q := range queries {
		sum += q.P * float64(q.Yield)
	}
	return sum / s
}
