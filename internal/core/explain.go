package core

import "bypassyield/internal/obs/ledger"

// Explain captures the inputs behind a policy's most recent Access
// decision — the quantities the paper's algorithms actually compare
// (RP vs. LAR, the BYU accumulator, episode state) plus a compact
// reason code naming the rule that fired. Policies that can explain
// themselves implement SelfExplainer; DecisionRecordFor folds the
// explanation into a ledger.DecisionRecord.
//
// Explain is a value (no pointers) and its Reason strings are the
// interned constants below, so capturing one allocates nothing.
type Explain struct {
	// RP is the in-cache rate profile involved in the decision (the
	// object's own RP on a hit; see VictimRP for eviction comparisons).
	RP float64
	// LAR is the candidate's load-adjusted rate (eqs. 4-6).
	LAR float64
	// BYU is the normalized ski-rental accumulator (OnlineBY).
	BYU float64
	// VictimRP is the maximum rate profile in the would-be victim set.
	VictimRP float64
	// Episodes counts the object's completed episodes.
	Episodes int64
	// EpisodePhase is "open" while the object is mid-burst, "closed"
	// otherwise, "" when the policy tracks no episodes.
	EpisodePhase string
	// Reason names the rule that produced the decision.
	Reason string
}

// Reason codes. Each names the single branch of a policy's Access
// that produced the decision, so an operator reading a ledger can map
// a record straight back to the algorithm text.
const (
	// ReasonInCache: the object was cached; the access is a hit.
	ReasonInCache = "in-cache"
	// ReasonOversize: the object exceeds the whole cache capacity and
	// can never be loaded.
	ReasonOversize = "object-exceeds-capacity"
	// ReasonLARNonpositive: free space was available but the candidate's
	// LAR has not overcome the load penalty, so loading is a bad
	// investment.
	ReasonLARNonpositive = "lar-nonpositive"
	// ReasonFitsFree: the object fit in free space and its LAR is
	// positive; loaded without evicting.
	ReasonFitsFree = "fits-free-space"
	// ReasonVictimsInsufficient: evicting every candidate victim still
	// would not free enough space.
	ReasonVictimsInsufficient = "victims-insufficient"
	// ReasonVictimsSaveMore: some would-be victim currently saves at a
	// rate ≥ the candidate's LAR; keeping the victims is better.
	ReasonVictimsSaveMore = "victims-save-more"
	// ReasonLARBeatsVictims: the candidate's LAR exceeds every victim's
	// RP; victims evicted, object loaded.
	ReasonLARBeatsVictims = "lar-beats-victims"
	// ReasonAccumulating: OnlineBY's BYU accumulator has not yet reached
	// 1; the access is bypassed while the ski rental keeps renting.
	ReasonAccumulating = "accumulating-byu"
	// ReasonBYUCrossed: the accumulator crossed 1 and A_obj admitted the
	// object.
	ReasonBYUCrossed = "byu-crossed"
	// ReasonAObjDeclined: the accumulator crossed 1 but A_obj declined
	// to admit (or immediately evicted) the object.
	ReasonAObjDeclined = "aobj-declined"

	// ReasonForcedCache prefixes degraded-mode forced hits: the owning
	// site was unavailable, bypass was impossible, and the cached copy
	// was served stale. The full reason is
	// "forced-cache: <site health detail>".
	ReasonForcedCache = "forced-cache"
	// ReasonFailedLeg prefixes dropped accesses: site unavailable and
	// the object not cached, so the leg could not be served at all.
	ReasonFailedLeg = "failed"
)

// SelfExplainer is an optional Policy interface: after Access returns,
// LastExplain reports the inputs behind that decision. Implementations
// overwrite the explanation on every Access, so callers must read it
// before the next one.
type SelfExplainer interface {
	LastExplain() Explain
}

// WANCost returns the WAN traffic a decision charges under the
// Figure-1 flow rules: 0 for a hit, the cost-scaled yield for a
// bypass, the fetch cost for a load.
func WANCost(obj Object, yield int64, d Decision) int64 {
	switch d {
	case Bypass:
		return obj.BypassCost(yield)
	case Load:
		return obj.FetchCost
	default:
		return 0
	}
}

// DecisionRecordFor builds the ledger record for one decided access,
// folding in the policy's self-explanation when it offers one. The
// record's Seq is assigned by Ledger.Record; T is the query clock.
// Safe on a nil policy (the record just carries no policy name).
func DecisionRecordFor(t int64, p Policy, trace string, obj Object, yield int64, d Decision) ledger.DecisionRecord {
	rec := ledger.DecisionRecord{
		T:         t,
		Trace:     trace,
		Object:    string(obj.ID),
		Action:    d.String(),
		Yield:     yield,
		WANCost:   WANCost(obj, yield, d),
		Size:      obj.Size,
		FetchCost: obj.FetchCost,
	}
	if p == nil {
		return rec
	}
	rec.Policy = p.Name()
	if se, ok := p.(SelfExplainer); ok {
		ex := se.LastExplain()
		rec.RP = ex.RP
		rec.LAR = ex.LAR
		rec.BYU = ex.BYU
		rec.VictimRP = ex.VictimRP
		rec.Episodes = ex.Episodes
		rec.EpisodePhase = ex.EpisodePhase
		rec.Reason = ex.Reason
	}
	return rec
}
