package core

import "sort"

// StaticOptimal is the paper's "static table caching" sanity check: an
// offline policy whose cache is populated with the best static set of
// objects for the whole trace, with no loading or eviction thereafter.
// All accesses to chosen objects are served in cache (the first access
// pays the fetch cost, modelling lazy population); every other access
// is bypassed.
//
// Choosing the set is a 0/1 knapsack: maximize Σ (total yield − fetch
// cost) subject to Σ size ≤ capacity, over objects whose whole-trace
// savings are positive. PlanStatic solves it with dynamic programming
// on a scaled capacity grid and falls back to the classic
// density-greedy 1/2-approximation when the instance is too large,
// returning whichever of the two plans saves more.
type StaticOptimal struct {
	cap    int64
	used   int64
	chosen map[ObjectID]bool
	loaded map[ObjectID]bool
}

// objStat aggregates an object's whole-trace demand.
type objStat struct {
	obj   Object
	yield int64 // Σ bypass-cost-scaled yield over the trace
}

// PlanStatic computes the optimal static cache contents for a trace
// and returns the policy. Objects not referenced by the trace are
// never chosen.
func PlanStatic(capacity int64, reqs []Request, objects map[ObjectID]Object) *StaticOptimal {
	stats := make(map[ObjectID]*objStat)
	for _, req := range reqs {
		for _, acc := range req.Accesses {
			obj, ok := objects[acc.Object]
			if !ok {
				continue
			}
			st := stats[acc.Object]
			if st == nil {
				st = &objStat{obj: obj}
				stats[acc.Object] = st
			}
			st.yield += obj.BypassCost(acc.Yield)
		}
	}
	// Candidates: positive net savings and fits alone.
	type cand struct {
		obj     Object
		savings int64 // yield − fetch
	}
	var cands []cand
	for _, st := range stats {
		savings := st.yield - st.obj.FetchCost
		if savings > 0 && st.obj.Size <= capacity {
			cands = append(cands, cand{st.obj, savings})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].obj.ID < cands[j].obj.ID })

	s := &StaticOptimal{cap: capacity, chosen: make(map[ObjectID]bool), loaded: make(map[ObjectID]bool)}
	if len(cands) == 0 || capacity <= 0 {
		return s
	}

	// Greedy by savings density, plus best single item (1/2-approx).
	greedy := func() (map[ObjectID]bool, int64) {
		order := make([]cand, len(cands))
		copy(order, cands)
		sort.Slice(order, func(i, j int) bool {
			di := float64(order[i].savings) / float64(order[i].obj.Size)
			dj := float64(order[j].savings) / float64(order[j].obj.Size)
			if di != dj {
				return di > dj
			}
			return order[i].obj.ID < order[j].obj.ID
		})
		set := make(map[ObjectID]bool)
		var used, total int64
		for _, c := range order {
			if used+c.obj.Size <= capacity {
				set[c.obj.ID] = true
				used += c.obj.Size
				total += c.savings
			}
		}
		var best cand
		for _, c := range cands {
			if c.savings > best.savings {
				best = c
			}
		}
		if best.savings > total {
			return map[ObjectID]bool{best.obj.ID: true}, best.savings
		}
		return set, total
	}

	// Exact DP on a scaled capacity grid. Grid of up to 4096 units
	// keeps the table small; sizes are rounded UP so the plan never
	// exceeds the true capacity.
	dp := func() (map[ObjectID]bool, int64) {
		const grid = 4096
		unit := (capacity + grid - 1) / grid
		if unit < 1 {
			unit = 1
		}
		w := int(capacity / unit)
		if w == 0 {
			return nil, 0
		}
		n := len(cands)
		if n*w > 64<<20 { // too large; let greedy stand
			return nil, -1
		}
		// best[j] = max savings using scaled capacity j.
		best := make([]int64, w+1)
		take := make([][]bool, n)
		for i, c := range cands {
			take[i] = make([]bool, w+1)
			sz := int((c.obj.Size + unit - 1) / unit)
			if sz == 0 {
				sz = 1
			}
			for j := w; j >= sz; j-- {
				if v := best[j-sz] + c.savings; v > best[j] {
					best[j] = v
					take[i][j] = true
				}
			}
		}
		set := make(map[ObjectID]bool)
		j := w
		for i := n - 1; i >= 0; i-- {
			if take[i][j] {
				set[cands[i].obj.ID] = true
				sz := int((cands[i].obj.Size + unit - 1) / unit)
				if sz == 0 {
					sz = 1
				}
				j -= sz
			}
		}
		return set, best[w]
	}

	gSet, gVal := greedy()
	dSet, dVal := dp()
	if dVal >= gVal && dSet != nil {
		s.chosen = dSet
	} else {
		s.chosen = gSet
	}
	for id := range s.chosen {
		s.used += objects[id].Size
	}
	return s
}

// Name implements Policy.
func (s *StaticOptimal) Name() string { return "static-optimal" }

// Used implements Policy. The chosen set is charged in full: the cache
// is statically provisioned for it.
func (s *StaticOptimal) Used() int64 { return s.used }

// Capacity implements Policy.
func (s *StaticOptimal) Capacity() int64 { return s.cap }

// Contains implements Policy.
func (s *StaticOptimal) Contains(id ObjectID) bool { return s.chosen[id] }

// Evictions implements Policy; a static cache never evicts.
func (s *StaticOptimal) Evictions() int64 { return 0 }

// Reset implements Policy: the chosen set is retained (it is the
// plan), only the lazily-loaded marks clear.
func (s *StaticOptimal) Reset() { s.loaded = make(map[ObjectID]bool) }

// Chosen returns the planned static contents (for reports and tests).
func (s *StaticOptimal) Chosen() []ObjectID {
	ids := make([]ObjectID, 0, len(s.chosen))
	for id := range s.chosen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Access implements Policy.
func (s *StaticOptimal) Access(t int64, obj Object, yield int64) Decision {
	if !s.chosen[obj.ID] {
		return Bypass
	}
	if !s.loaded[obj.ID] {
		s.loaded[obj.ID] = true
		return Load
	}
	return Hit
}

// NoCache is the paper's "sequence cost" baseline: every access is
// bypassed, so WAN traffic is exactly the sum of all query result
// sizes shipped from the servers.
type NoCache struct{}

// NewNoCache returns the no-caching baseline.
func NewNoCache() *NoCache { return &NoCache{} }

// Name implements Policy.
func (NoCache) Name() string { return "no-cache" }

// Access implements Policy.
func (NoCache) Access(t int64, obj Object, yield int64) Decision { return Bypass }

// Used implements Policy.
func (NoCache) Used() int64 { return 0 }

// Capacity implements Policy.
func (NoCache) Capacity() int64 { return 0 }

// Contains implements Policy.
func (NoCache) Contains(ObjectID) bool { return false }

// Evictions implements Policy.
func (NoCache) Evictions() int64 { return 0 }

// Reset implements Policy.
func (NoCache) Reset() {}
