package core

// Cache seeding: adopting an object into a policy's cache outside the
// decision path. The sharded mediator uses it to migrate cache
// contents between decision-partition layouts — a snapshot taken at
// one `-decision-shards` value restores into another by rehashing
// every cached object to its new owning partition and seeding it
// there (see federation.RestoreState).
//
// Seeding is deliberately best-effort on metadata: the object arrives
// with the freshest plausible standing (full credit, a cleared mark,
// one reference) rather than its exact history, which is meaningful
// only under the source layout's clock. What seeding does guarantee is
// membership and the capacity bound: a seeded object is Contains()-
// true, Used() grows by its size, and an object that does not fit the
// remaining capacity is refused (never evicts — the migration feeds
// objects in source order and lets the new layout's traffic sort out
// the rest).

// CacheSeeder is implemented by policies (and bypass-object
// subroutines) that can adopt an object into their cache outside the
// decision path. SeedObject reports whether the object was admitted;
// refusals (object larger than the remaining capacity, or already
// cached) leave the cache unchanged.
type CacheSeeder interface {
	SeedObject(obj Object) bool
}

// SeedObject implements CacheSeeder: the object is admitted with full
// credit (as a fresh load would grant) when it fits the remaining
// capacity.
func (l *Landlord) SeedObject(obj Object) bool {
	if l.heap.Contains(string(obj.ID)) {
		return false
	}
	if l.used+obj.Size > l.cap {
		return false
	}
	perByte := float64(obj.FetchCost) / float64(obj.Size)
	l.heap.Push(string(obj.ID), l.offset+perByte, obj)
	l.used += obj.Size
	return true
}

// SeedObject implements CacheSeeder: the object arrives unmarked (a
// migrated object has not been referenced in the current phase).
func (m *SizeClassMarking) SeedObject(obj Object) bool {
	if _, ok := m.entries[obj.ID]; ok {
		return false
	}
	if m.used+obj.Size > m.cap {
		return false
	}
	m.entries[obj.ID] = &scmEntry{obj: obj, class: sizeClass(obj.Size)}
	m.used += obj.Size
	return true
}

// SeedObject implements CacheSeeder by forwarding to the subroutine
// when it can seed.
func (o *OnlineBY) SeedObject(obj Object) bool {
	cs, ok := o.aobj.(CacheSeeder)
	return ok && cs.SeedObject(obj)
}

// SeedObject implements CacheSeeder by forwarding to the subroutine
// when it can seed.
func (s *SpaceEffBY) SeedObject(obj Object) bool {
	cs, ok := s.aobj.(CacheSeeder)
	return ok && cs.SeedObject(obj)
}

// SeedObject implements CacheSeeder: the entry restarts its rate
// profile from the adopting partition's clock origin.
func (r *RateProfile) SeedObject(obj Object) bool {
	if _, ok := r.entries[obj.ID]; ok {
		return false
	}
	if r.used+obj.Size > r.cfg.Capacity {
		return false
	}
	r.entries[obj.ID] = &rpEntry{obj: obj}
	r.used += obj.Size
	return true
}

// seedObject admits obj at the given utility when it fits the
// remaining capacity, without evicting.
func (c *inlineCache) seedObject(obj Object, utility float64) bool {
	if c.heap.Contains(string(obj.ID)) {
		return false
	}
	if c.used+obj.Size > c.cap {
		return false
	}
	c.heap.Push(string(obj.ID), utility, obj)
	c.used += obj.Size
	return true
}

// SeedObject implements CacheSeeder: a migrated object ranks oldest
// (priority 0 precedes any live access time).
func (l *LRU) SeedObject(obj Object) bool { return l.seedObject(obj, 0) }

// SeedObject implements CacheSeeder: a migrated object starts with one
// reference.
func (l *LFU) SeedObject(obj Object) bool {
	if !l.seedObject(obj, 1) {
		return false
	}
	if l.count[obj.ID] < 1 {
		l.count[obj.ID] = 1
	}
	return true
}

// SeedObject implements CacheSeeder: the object enters at the current
// inflation floor plus its cost density, as a fresh load would.
func (g *GDS) SeedObject(obj Object) bool { return g.seedObject(obj, g.priority(obj)) }

// SeedObject implements CacheSeeder: the object enters with one
// reference at the resulting GDSP priority.
func (g *GDSP) SeedObject(obj Object) bool {
	if g.freq[obj.ID] < 1 {
		g.freq[obj.ID] = 1
	}
	return g.seedObject(obj, g.priority(obj))
}

// SeedObject implements CacheSeeder: the object enters with no
// reference history (infinite backward K-distance), so it is the
// preferred victim until live traffic references it.
func (l *LRUK) SeedObject(obj Object) bool { return l.seedObject(obj, l.priority(obj.ID)) }
