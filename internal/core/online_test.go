package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// recordingCacher wraps an ObjectCacher and records the sequence of
// objects presented to it, for equivalence tests against the grouped
// sequence of Lemma 5.1.
type recordingCacher struct {
	ObjectCacher
	requests []ObjectID
}

func (r *recordingCacher) Request(obj Object) ObjAction {
	r.requests = append(r.requests, obj.ID)
	return r.ObjectCacher.Request(obj)
}

func TestOnlineBYSkiRentalAccumulation(t *testing.T) {
	a := testObj("a", 100)
	ob := NewOnlineBY(NewLandlord(100))
	// Yield 50: BYU = 0.5 < 1 → bypass.
	if d := ob.Access(1, a, 50); d != Bypass {
		t.Fatalf("t=1 decision = %v, want bypass", d)
	}
	if got := ob.AccumulatedYield(a.ID); got != 50 {
		t.Fatalf("accumulator = %v, want 50", got)
	}
	// Second yield 50: BYU crosses 1 → request to A_obj → load.
	if d := ob.Access(2, a, 50); d != Load {
		t.Fatalf("t=2 decision = %v, want load", d)
	}
	if got := ob.AccumulatedYield(a.ID); got != 0 {
		t.Fatalf("accumulator after crossing = %v, want 0", got)
	}
	// Cached now → hit, BYU keeps accumulating.
	if d := ob.Access(3, a, 30); d != Hit {
		t.Fatalf("t=3 decision = %v, want hit", d)
	}
	if got := ob.AccumulatedYield(a.ID); got != 30 {
		t.Fatalf("accumulator = %v, want 30", got)
	}
}

func TestOnlineBYAccumulatorInvariant(t *testing.T) {
	// Property: after every access the accumulator lies in [0, 1).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		objs := []Object{testObj("a", 100), testObj("b", 250), testObj("c", 40)}
		ob := NewOnlineBY(NewLandlord(300))
		for i := int64(1); i <= 500; i++ {
			o := objs[r.Intn(len(objs))]
			y := int64(r.Float64() * 3 * float64(o.Size)) // yields may exceed size
			ob.Access(i, o, y)
			for _, cand := range objs {
				acc := ob.AccumulatedYield(cand.ID)
				if acc < 0 || acc >= cand.Size {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineBYMatchesGroupedSequence(t *testing.T) {
	// The object requests OnlineBY generates must be exactly
	// object(σ) from the grouping analysis (Lemma 5.1): the reduction
	// is definitional.
	r := rand.New(rand.NewSource(13))
	objs := []Object{testObj("a", 100), testObj("b", 300), testObj("c", 64)}
	trace := randomTrace(r, objs, 800, 2.0) // yields up to 2× size
	rec := &recordingCacher{ObjectCacher: NewLandlord(400)}
	ob := NewOnlineBY(rec)
	for _, req := range trace {
		for _, acc := range req.Accesses {
			ob.Access(req.Seq, objs[indexOf(objs, acc.Object)], acc.Yield)
		}
	}
	grouped := GroupSequence(trace, objMap(objs...))
	want := grouped.ObjectSequence()
	if len(rec.requests) != len(want) {
		t.Fatalf("OnlineBY made %d object requests, grouping predicts %d",
			len(rec.requests), len(want))
	}
	for i := range want {
		if rec.requests[i] != want[i] {
			t.Fatalf("request %d = %s, grouping predicts %s", i, rec.requests[i], want[i])
		}
	}
}

func TestOnlineBYWithFullYieldLoadsImmediatelyOnSecond(t *testing.T) {
	// Yields equal to the object size: every access crosses the
	// accumulator, so the object-model behaviour (no partial yields)
	// is recovered exactly.
	a := testObj("a", 100)
	ob := NewOnlineBY(NewLandlord(100))
	if d := ob.Access(1, a, 100); d != Load {
		t.Fatalf("full-yield first access = %v, want load (A_obj fetches on request)", d)
	}
	if d := ob.Access(2, a, 100); d != Hit {
		t.Fatalf("second access = %v, want hit", d)
	}
}

func TestOnlineBYZeroYield(t *testing.T) {
	a := testObj("a", 100)
	ob := NewOnlineBY(NewLandlord(100))
	for i := int64(1); i <= 20; i++ {
		if d := ob.Access(i, a, 0); d != Bypass {
			t.Fatalf("zero-yield access = %v, want bypass", d)
		}
	}
	if ob.AccumulatedYield(a.ID) != 0 {
		t.Fatal("zero yields must not accumulate")
	}
}

func TestOnlineBYOversizedObjectNeverCached(t *testing.T) {
	big := testObj("big", 1000)
	ob := NewOnlineBY(NewLandlord(100))
	for i := int64(1); i <= 50; i++ {
		if d := ob.Access(i, big, 900); d != Bypass {
			t.Fatalf("oversized access = %v, want bypass", d)
		}
	}
	if ob.Used() != 0 {
		t.Fatal("oversized object cached")
	}
}

func TestOnlineBYReset(t *testing.T) {
	a := testObj("a", 100)
	ob := NewOnlineBY(NewLandlord(100))
	ob.Access(1, a, 100)
	ob.Reset()
	if ob.Used() != 0 || ob.Contains(a.ID) || ob.AccumulatedYield(a.ID) != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestOnlineBYCompetitiveOnAdversarialTrace(t *testing.T) {
	// Empirical competitiveness check: on random traces OnlineBY's
	// total WAN cost must stay within a moderate constant of the
	// static-optimal cost plus the dropped-query cost (a lower bound
	// on OPT_yield is not computed exactly; static-optimal is our
	// stand-in). The theory gives O(lg²k); we assert a loose factor.
	r := rand.New(rand.NewSource(99))
	objs := []Object{
		testObj("a", 100), testObj("b", 200), testObj("c", 50), testObj("d", 400),
	}
	trace := randomTrace(r, objs, 4000, 1.0)
	m := objMap(objs...)

	runCost := func(p Policy) int64 {
		sim := &Simulator{Policy: p, Objects: m}
		res, err := sim.Run(trace)
		if err != nil {
			t.Fatal(err)
		}
		return res.Acct.WANBytes()
	}
	onlineCost := runCost(NewOnlineBY(NewLandlord(500)))
	staticCost := runCost(PlanStatic(500, trace, m))
	if staticCost == 0 {
		t.Skip("degenerate trace")
	}
	if float64(onlineCost) > 25*float64(staticCost) {
		t.Fatalf("online cost %d is more than 25x static-optimal %d", onlineCost, staticCost)
	}
}

func TestSpaceEffBYProbabilityOne(t *testing.T) {
	// Yield == size → probability 1 → behaves like the object model:
	// first access loads... but rng.Float64() < 1.0 is always true, so
	// the object is always presented.
	a := testObj("a", 100)
	se := NewSpaceEffBY(NewLandlord(100), rand.NewSource(1))
	if d := se.Access(1, a, 100); d != Load {
		t.Fatalf("first full-yield access = %v, want load", d)
	}
	if d := se.Access(2, a, 100); d != Hit {
		t.Fatalf("second access = %v, want hit", d)
	}
}

func TestSpaceEffBYProbabilityZero(t *testing.T) {
	a := testObj("a", 100)
	se := NewSpaceEffBY(NewLandlord(100), rand.NewSource(1))
	for i := int64(1); i <= 50; i++ {
		if d := se.Access(i, a, 0); d != Bypass {
			t.Fatalf("zero-yield access = %v, want bypass", d)
		}
	}
	if se.Used() != 0 {
		t.Fatal("zero-probability accesses must never load")
	}
}

func TestSpaceEffBYDeterministicWithSeed(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	objs := []Object{testObj("a", 100), testObj("b", 300)}
	trace := randomTrace(r, objs, 1000, 1.0)
	m := objMap(objs...)
	run := func() Accounting {
		p := NewSpaceEffBY(NewLandlord(200), rand.NewSource(55))
		sim := &Simulator{Policy: p, Objects: m}
		res, err := sim.Run(trace)
		if err != nil {
			t.Fatal(err)
		}
		return res.Acct
	}
	if run() != run() {
		t.Fatal("same seed must reproduce identical runs")
	}
}

func TestSpaceEffBYExpectedPresentationRate(t *testing.T) {
	// Over many accesses with yield = s/4, roughly a quarter of
	// accesses present the object to A_obj. We count loads+hits as a
	// proxy: with capacity ≥ size, the first presentation loads and
	// the object stays; so instead count via a recordingCacher.
	a := testObj("a", 1000)
	rec := &recordingCacher{ObjectCacher: NewLandlord(1000)}
	se := NewSpaceEffBY(rec, rand.NewSource(8))
	const n = 10000
	for i := int64(1); i <= n; i++ {
		se.Access(i, a, 250)
	}
	got := float64(len(rec.requests)) / n
	if got < 0.22 || got > 0.28 {
		t.Fatalf("presentation rate = %v, want ≈ 0.25", got)
	}
}
