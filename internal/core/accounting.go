package core

// Accounting tracks the byte flows of Figure 1 in the paper for one
// cache over one trace. The WAN traffic to be minimized is
// BypassBytes + FetchBytes (D_S + D_L); the client always receives
// DeliveredBytes() = BypassBytes-equivalent yield + CacheBytes (D_A),
// independent of the caching configuration.
type Accounting struct {
	// Queries is the number of requests processed.
	Queries int64
	// Accesses is the number of per-object accesses processed (a
	// multi-object query contributes several).
	Accesses int64

	// Hits, Bypasses, Loads count decisions; Evictions counts objects
	// removed from the cache to make space.
	Hits      int64
	Bypasses  int64
	Loads     int64
	Evictions int64

	// BypassBytes is D_S: WAN bytes shipped server→client for
	// bypassed accesses (yield scaled by per-byte transfer cost).
	BypassBytes int64
	// FetchBytes is D_L: WAN bytes spent loading objects into the
	// cache.
	FetchBytes int64
	// CacheBytes is D_C: LAN bytes served cache→client. Not WAN
	// traffic; tracked for the conservation law D_A = D_S + D_C.
	CacheBytes int64
	// YieldBytes is the total raw yield of all accesses (unscaled by
	// transfer cost): the data volume the application received.
	YieldBytes int64
}

// WANBytes returns the total wide-area traffic D_S + D_L, the
// quantity every bypass-yield algorithm minimizes.
func (a Accounting) WANBytes() int64 { return a.BypassBytes + a.FetchBytes }

// DeliveredBytes returns D_A = D_S + D_C on uniform networks: the
// bytes delivered to the application. (On non-uniform networks
// BypassBytes is cost-scaled; use YieldBytes for the raw volume.)
func (a Accounting) DeliveredBytes() int64 { return a.BypassBytes + a.CacheBytes }

// HitRate returns the fraction of accesses served from cache.
func (a Accounting) HitRate() float64 {
	if a.Accesses == 0 {
		return 0
	}
	return float64(a.Hits) / float64(a.Accesses)
}

// ByteHitRate returns the fraction of yield bytes served from cache —
// the yield-model analogue of hit rate.
func (a Accounting) ByteHitRate() float64 {
	if a.YieldBytes == 0 {
		return 0
	}
	return float64(a.CacheBytes) / float64(a.YieldBytes)
}

// Account charges one access's decision to the accounting, applying
// the Figure-1 flow rules: a hit serves the yield from cache (LAN), a
// bypass ships the cost-scaled yield over the WAN, and a load pays the
// fetch cost over the WAN and then serves the yield from cache. It
// returns an error for an out-of-range decision.
func Account(a *Accounting, obj Object, yield int64, d Decision) error {
	a.Accesses++
	a.YieldBytes += yield
	switch d {
	case Hit:
		a.Hits++
		a.CacheBytes += yield
	case Bypass:
		a.Bypasses++
		a.BypassBytes += obj.BypassCost(yield)
	case Load:
		a.Loads++
		a.FetchBytes += obj.FetchCost
		a.CacheBytes += yield
	default:
		return &BadDecisionError{Decision: d}
	}
	return nil
}

// Add accumulates another accounting into a.
func (a *Accounting) Add(b Accounting) {
	a.Queries += b.Queries
	a.Accesses += b.Accesses
	a.Hits += b.Hits
	a.Bypasses += b.Bypasses
	a.Loads += b.Loads
	a.Evictions += b.Evictions
	a.BypassBytes += b.BypassBytes
	a.FetchBytes += b.FetchBytes
	a.CacheBytes += b.CacheBytes
	a.YieldBytes += b.YieldBytes
}
