package core

import "testing"

func TestNewPolicyByName(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := NewPolicyByName(name, 1000, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p == nil {
			t.Fatalf("%s: nil policy", name)
		}
		// Every constructed policy must handle an access.
		p.Access(1, testObj("a", 100), 50)
	}
}

func TestNewPolicyByNameAliases(t *testing.T) {
	for alias, want := range map[string]string{
		"rp":           "rate-profile",
		"RATE-PROFILE": "rate-profile",
		"online":       "online-by",
		"spaceeff":     "space-eff-by",
		"nocache":      "no-cache",
	} {
		p, err := NewPolicyByName(alias, 1000, 1)
		if err != nil {
			t.Fatalf("%s: %v", alias, err)
		}
		if p.Name() != want {
			t.Fatalf("%s → %s, want %s", alias, p.Name(), want)
		}
	}
}

func TestNewPolicyByNameUnknown(t *testing.T) {
	if _, err := NewPolicyByName("magic", 1000, 1); err == nil {
		t.Fatal("unknown policy should error")
	}
}
