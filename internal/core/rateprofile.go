package core

import "sort"

// RateProfileConfig parameterizes the Rate-Profile policy.
type RateProfileConfig struct {
	// Capacity is the cache size in bytes.
	Capacity int64
	// Episodes configures episode division and aging for out-of-cache
	// profiles; the zero value selects the paper's parameters
	// (c = 0.5, k = 1000).
	Episodes EpisodeConfig
	// MaxProfiles bounds out-of-cache metadata (pruning); zero means
	// a generous default.
	MaxProfiles int
}

// RateProfile is the workload-driven bypass-yield algorithm of
// Section 4. Cached objects carry a rate profile (RP, eq. 3) — the
// measured rate of network savings over their cache lifetime — and
// uncached objects carry an episode-based load-adjusted rate (LAR,
// eqs. 4–6) estimating the savings rate they would achieve if loaded.
// On a miss the candidate's LAR is compared against the RPs of the
// would-be victims: the object is loaded only if every victim
// currently saves at a lower rate than the candidate is expected to;
// otherwise the access is bypassed. Load cost is charged to LAR (an
// investment) but not to RP (a sunk cost), which keeps evictions
// conservative, as the paper requires.
type RateProfile struct {
	cfg       RateProfileConfig
	used      int64
	entries   map[ObjectID]*rpEntry
	profiles  *profileTable
	evictions int64
	last      Explain
}

type rpEntry struct {
	obj      Object
	loadTime int64
	sumYield int64
}

// rp evaluates eq. 3 at time t. As with LARP, the first access after
// load uses a one-query interval.
func (e *rpEntry) rp(t int64) float64 {
	dt := t - e.loadTime
	if dt < 1 {
		dt = 1
	}
	return float64(e.sumYield) / (float64(dt) * float64(e.obj.Size))
}

// NewRateProfile returns a Rate-Profile policy with the given
// configuration.
func NewRateProfile(cfg RateProfileConfig) *RateProfile {
	cfg.Episodes.fill()
	return &RateProfile{
		cfg:      cfg,
		entries:  make(map[ObjectID]*rpEntry),
		profiles: newProfileTable(cfg.Episodes, cfg.MaxProfiles),
	}
}

// Name implements Policy.
func (r *RateProfile) Name() string { return "rate-profile" }

// Used implements Policy.
func (r *RateProfile) Used() int64 { return r.used }

// Capacity implements Policy.
func (r *RateProfile) Capacity() int64 { return r.cfg.Capacity }

// Contains implements Policy.
func (r *RateProfile) Contains(id ObjectID) bool {
	_, ok := r.entries[id]
	return ok
}

// Evictions implements Policy.
func (r *RateProfile) Evictions() int64 { return r.evictions }

// Reset implements Policy.
func (r *RateProfile) Reset() {
	r.used = 0
	r.evictions = 0
	r.entries = make(map[ObjectID]*rpEntry)
	r.profiles.reset()
}

// ProfileCount reports the number of out-of-cache profiles retained
// (exposed for tests of the pruning bound).
func (r *RateProfile) ProfileCount() int { return r.profiles.size() }

// SetTelemetry implements TelemetrySetter: episode open/close churn
// is published through tel.
func (r *RateProfile) SetTelemetry(tel *Telemetry) { r.profiles.tel = tel }

// Contents implements ContentLister.
func (r *RateProfile) Contents() []ObjectID {
	ids := make([]ObjectID, 0, len(r.entries))
	for id := range r.entries {
		ids = append(ids, id)
	}
	return ids
}

// LastExplain implements SelfExplainer: the comparison behind the most
// recent Access (its RP on a hit, LAR and victim RPs on a miss, plus
// the object's episode state and the branch that fired).
func (r *RateProfile) LastExplain() Explain { return r.last }

// Access implements Policy.
func (r *RateProfile) Access(t int64, obj Object, yield int64) Decision {
	if e, ok := r.entries[obj.ID]; ok {
		e.sumYield += yield
		r.last = Explain{RP: e.rp(t), Reason: ReasonInCache}
		return Hit
	}
	lar := r.profiles.observe(t, obj, yield)
	r.last = Explain{LAR: lar}
	r.last.Episodes, r.last.EpisodePhase = r.profiles.info(obj.ID)
	if obj.Size > r.cfg.Capacity {
		r.last.Reason = ReasonOversize
		return Bypass
	}
	needed := obj.Size - (r.cfg.Capacity - r.used)
	if needed <= 0 {
		if lar <= 0 {
			r.last.Reason = ReasonLARNonpositive
			return Bypass
		}
		r.last.Reason = ReasonFitsFree
		r.load(t, obj, yield)
		return Load
	}
	victims, maxRP, freed := r.selectVictims(t, needed)
	r.last.VictimRP = maxRP
	if freed < needed {
		r.last.Reason = ReasonVictimsInsufficient
		return Bypass
	}
	if maxRP >= lar {
		r.last.Reason = ReasonVictimsSaveMore
		return Bypass
	}
	r.last.Reason = ReasonLARBeatsVictims
	for _, id := range victims {
		r.evict(id)
	}
	r.load(t, obj, yield)
	return Load
}

// selectVictims returns the lowest-RP cached objects whose combined
// size frees at least `needed` bytes, together with the maximum RP in
// the victim set and the total bytes freed.
func (r *RateProfile) selectVictims(t, needed int64) (victims []ObjectID, maxRP float64, freed int64) {
	type cand struct {
		id   ObjectID
		rp   float64
		size int64
	}
	cands := make([]cand, 0, len(r.entries))
	for id, e := range r.entries {
		cands = append(cands, cand{id, e.rp(t), e.obj.Size})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].rp != cands[j].rp {
			return cands[i].rp < cands[j].rp
		}
		return cands[i].id < cands[j].id // deterministic tie-break
	})
	for _, c := range cands {
		if freed >= needed {
			break
		}
		victims = append(victims, c.id)
		freed += c.size
		if c.rp > maxRP {
			maxRP = c.rp
		}
	}
	return victims, maxRP, freed
}

func (r *RateProfile) load(t int64, obj Object, yield int64) {
	r.profiles.onLoad(obj.ID)
	r.entries[obj.ID] = &rpEntry{obj: obj, loadTime: t, sumYield: yield}
	r.used += obj.Size
}

func (r *RateProfile) evict(id ObjectID) {
	e := r.entries[id]
	delete(r.entries, id)
	r.used -= e.obj.Size
	r.evictions++
}
