package core

import (
	"testing"

	"bypassyield/internal/obs"
)

// TestTelemetryMirrorsAccounting drives the same accesses through
// Account and Telemetry.RecordAccess and checks the registry agrees
// with the Figure-1 flows, including D_A = D_S + D_C.
func TestTelemetryMirrorsAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	tel := NewTelemetry(reg)
	obj := Object{ID: "edr/photoobj", Site: "photo", Size: 1000, FetchCost: 1000}

	var acct Accounting
	seq := []struct {
		yield int64
		d     Decision
	}{
		{100, Bypass}, {200, Load}, {300, Hit}, {50, Bypass}, {400, Hit},
	}
	for _, s := range seq {
		if err := Account(&acct, obj, s.yield, s.d); err != nil {
			t.Fatal(err)
		}
		tel.RecordAccess("test-policy", obj, s.yield, s.d)
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue("core.bypass_bytes", ""); got != acct.BypassBytes {
		t.Fatalf("bypass_bytes = %d, want %d", got, acct.BypassBytes)
	}
	if got := snap.CounterValue("core.fetch_bytes", ""); got != acct.FetchBytes {
		t.Fatalf("fetch_bytes = %d, want %d", got, acct.FetchBytes)
	}
	if got := snap.CounterValue("core.cache_bytes", ""); got != acct.CacheBytes {
		t.Fatalf("cache_bytes = %d, want %d", got, acct.CacheBytes)
	}
	if got := snap.CounterValue("core.yield_bytes", ""); got != acct.YieldBytes {
		t.Fatalf("yield_bytes = %d, want %d", got, acct.YieldBytes)
	}
	// Conservation: D_A = D_S + D_C (uniform network).
	da := snap.CounterValue("core.bypass_bytes", "") + snap.CounterValue("core.cache_bytes", "")
	if da != acct.DeliveredBytes() {
		t.Fatalf("D_A from registry = %d, accounting = %d", da, acct.DeliveredBytes())
	}
	// Per-verdict decision counts.
	for verdict, want := range map[string]int64{"bypass": 2, "load": 1, "hit": 2} {
		if got := snap.CounterValue("core.decisions", "test-policy/"+verdict); got != want {
			t.Fatalf("decisions[%s] = %d, want %d", verdict, got, want)
		}
	}
	if got := snap.CounterValue("core.accesses", ""); got != acct.Accesses {
		t.Fatalf("accesses = %d, want %d", got, acct.Accesses)
	}
	// Windowed flow rates ride along: present in the snapshot and, with
	// all accesses recorded just now, strictly positive.
	tel.RecordQuery()
	snap = reg.Snapshot()
	for _, name := range []string{
		"core.bypass_bytes_rate", "core.fetch_bytes_rate",
		"core.cache_bytes_rate", "core.query_rate",
	} {
		if !snap.HasRate(name) {
			t.Fatalf("snapshot missing rate %s", name)
		}
		if snap.RateValue(name) <= 0 {
			t.Fatalf("rate %s = %f, want > 0", name, snap.RateValue(name))
		}
	}
}

func TestTelemetryNilSafe(t *testing.T) {
	var tel *Telemetry
	tel.RecordAccess("p", Object{}, 1, Hit)
	tel.RecordQuery()
	tel.RecordEvictions("p", 3)
	tel.EpisodeOpened()
	tel.EpisodeClosed()
	if NewTelemetry(nil) != nil {
		t.Fatal("NewTelemetry(nil) should be nil (free no-op)")
	}
}

// TestSimulatorTelemetry runs a tiny trace through the Simulator with
// telemetry attached and checks decision counts reconcile with the
// result accounting, and episode churn is published.
func TestSimulatorTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	obj := Object{ID: "o1", Size: 100, FetchCost: 100}
	objs := map[ObjectID]Object{"o1": obj}
	pol := NewRateProfile(RateProfileConfig{Capacity: 1000, Episodes: EpisodeConfig{K: 2}})
	var reqs []Request
	for i := int64(1); i <= 20; i++ {
		seq := i
		if i > 10 {
			seq = i + 10 // a gap > K forces an episode close/reopen
		}
		reqs = append(reqs, Request{Seq: seq, Accesses: []Access{{Object: "o1", Yield: 90}}})
	}
	sim := &Simulator{Policy: pol, Objects: objs, Telemetry: NewTelemetry(reg)}
	res, err := sim.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	name := pol.Name()
	var decided int64
	for _, v := range []string{"hit", "bypass", "load"} {
		decided += snap.CounterValue("core.decisions", name+"/"+v)
	}
	if decided != res.Acct.Accesses {
		t.Fatalf("decision counts = %d, accesses = %d", decided, res.Acct.Accesses)
	}
	if snap.CounterValue("core.episodes_opened", "") == 0 {
		t.Fatal("no episodes opened")
	}
	if opened, closed := snap.CounterValue("core.episodes_opened", ""),
		snap.CounterValue("core.episodes_closed", ""); closed > opened {
		t.Fatalf("episodes closed (%d) > opened (%d)", closed, opened)
	}
}
