package core

// Grouping analysis for Theorem 5.1 (Section 5.2). Given a query
// sequence σ, the paper divides the sub-sequence σ_i of queries
// against each object o_i into groups whose yields sum to exactly the
// object size (Condition 7), splitting queries fractionally when
// necessary. Replacing each group with its object gives object(σ) —
// the very sequence OnlineBY presents to A_obj. Queries left over at
// the end of σ_i that cannot complete a group form dropped(σ);
// removing them from σ gives trimmed(σ).
//
// This module computes these sequences explicitly. It exists to make
// the reduction testable: the test suite verifies that each full
// group's yield fractions sum to s_i, that object(σ) matches the
// requests OnlineBY actually generates, and that dropped queries'
// total bypass cost per object is below the fetch cost
// (Observation 5.3's premise).

// GroupedQuery is a (possibly fractional) query assigned to a group.
type GroupedQuery struct {
	// Seq is the originating query's position in σ.
	Seq int64
	// Yield is the portion of the query's yield assigned to this
	// group, in bytes (fractional assignment rounds to whole bytes;
	// the residual goes to the next group).
	Yield int64
}

// Group is one unit of the grouped sequence: consecutive (fractions
// of) queries against one object whose yields sum to the object size.
type Group struct {
	// Object is the referenced object.
	Object ObjectID
	// EndSeq is the sequence number of the query at which the group
	// ends; groups in the grouped sequence are ordered by EndSeq.
	EndSeq int64
	// Queries lists the members in σ order.
	Queries []GroupedQuery
}

// GroupingResult is the decomposition of a query sequence per
// Section 5.2.
type GroupingResult struct {
	// Groups is grouped(σ) ordered by group end; replacing each group
	// by its object gives object(σ).
	Groups []Group
	// Dropped maps each object to the total yield bytes of its
	// incomplete trailing group (dropped(σ)).
	Dropped map[ObjectID]int64
	// DroppedCost is the total bypass cost of dropped(σ): the traffic
	// OPT_yield must pay regardless of caching (Observation 5.3).
	DroppedCost int64
}

// ObjectSequence returns object(σ): the object of each group in end
// order.
func (g *GroupingResult) ObjectSequence() []ObjectID {
	out := make([]ObjectID, len(g.Groups))
	for i, grp := range g.Groups {
		out[i] = grp.Object
	}
	return out
}

// GroupSequence computes the grouped/dropped decomposition of a
// request trace. Accesses to objects absent from the map are skipped.
func GroupSequence(reqs []Request, objects map[ObjectID]Object) *GroupingResult {
	type state struct {
		acc     int64 // yield bytes accumulated toward the open group
		queries []GroupedQuery
	}
	open := make(map[ObjectID]*state)
	res := &GroupingResult{Dropped: make(map[ObjectID]int64)}

	for _, req := range reqs {
		for _, acc := range req.Accesses {
			obj, ok := objects[acc.Object]
			if !ok {
				continue
			}
			st := open[acc.Object]
			if st == nil {
				st = &state{}
				open[acc.Object] = st
			}
			remaining := acc.Yield
			// A single query may complete several groups when its
			// yield exceeds the object size.
			for st.acc+remaining >= obj.Size {
				take := obj.Size - st.acc
				st.queries = append(st.queries, GroupedQuery{Seq: req.Seq, Yield: take})
				res.Groups = append(res.Groups, Group{
					Object:  acc.Object,
					EndSeq:  req.Seq,
					Queries: st.queries,
				})
				st.queries = nil
				st.acc = 0
				remaining -= take
			}
			if remaining > 0 {
				st.queries = append(st.queries, GroupedQuery{Seq: req.Seq, Yield: remaining})
				st.acc += remaining
			}
		}
	}
	for id, st := range open {
		if st.acc > 0 {
			obj := objects[id]
			res.Dropped[id] = st.acc
			res.DroppedCost += obj.BypassCost(st.acc)
		}
	}
	return res
}
