package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// PolicyNames lists the policy names NewPolicyByName accepts, for CLI
// help text.
func PolicyNames() []string {
	names := []string{
		"rate-profile", "online-by", "online-by-marking", "space-eff-by",
		"gds", "gdsp", "lru", "lru-k", "lfu", "none",
	}
	sort.Strings(names)
	return names
}

// NewPolicyByName constructs a policy from its CLI name. The seed
// feeds randomized policies (SpaceEffBY); deterministic policies
// ignore it. The static-optimal policy needs the whole trace up front
// and is not constructible by name — use PlanStatic.
func NewPolicyByName(name string, capacity int64, seed int64) (Policy, error) {
	switch strings.ToLower(name) {
	case "rate-profile", "rateprofile", "rp":
		return NewRateProfile(RateProfileConfig{Capacity: capacity}), nil
	case "online-by", "onlineby", "online":
		return NewOnlineBY(NewLandlord(capacity)), nil
	case "online-by-marking", "online-marking":
		return NewOnlineBY(NewSizeClassMarking(capacity)), nil
	case "space-eff-by", "spaceeffby", "spaceeff":
		return NewSpaceEffBY(NewLandlord(capacity), rand.NewSource(seed)), nil
	case "gds":
		return NewGDS(capacity), nil
	case "gdsp":
		return NewGDSP(capacity), nil
	case "lru":
		return NewLRU(capacity), nil
	case "lru-k", "lruk", "lru2":
		return NewLRUK(capacity, 2), nil
	case "lfu":
		return NewLFU(capacity), nil
	case "none", "no-cache", "nocache":
		return NewNoCache(), nil
	default:
		return nil, fmt.Errorf("core: unknown policy %q (have %s)",
			name, strings.Join(PolicyNames(), ", "))
	}
}
