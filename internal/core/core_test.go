package core

import (
	"math/rand"
	"testing"
)

// testObj builds an object with fetch cost equal to size (the uniform
// network case f_i = s_i).
func testObj(id string, size int64) Object {
	return Object{ID: ObjectID(id), Size: size, FetchCost: size, Site: "site-a"}
}

// testObjCost builds an object with an explicit fetch cost.
func testObjCost(id string, size, fetch int64) Object {
	return Object{ID: ObjectID(id), Size: size, FetchCost: fetch, Site: "site-a"}
}

// objMap indexes objects by ID.
func objMap(objs ...Object) map[ObjectID]Object {
	m := make(map[ObjectID]Object, len(objs))
	for _, o := range objs {
		m[o.ID] = o
	}
	return m
}

// singleAccessTrace builds one request per (object, yield) pair with
// sequence numbers 1..n.
func singleAccessTrace(accs ...Access) []Request {
	reqs := make([]Request, len(accs))
	for i, a := range accs {
		reqs[i] = Request{Seq: int64(i + 1), Accesses: []Access{a}}
	}
	return reqs
}

// randomTrace builds a reproducible random single-access trace over
// the given objects with yields in [0, maxYieldFrac·size].
func randomTrace(r *rand.Rand, objs []Object, n int, maxYieldFrac float64) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		o := objs[r.Intn(len(objs))]
		y := int64(r.Float64() * maxYieldFrac * float64(o.Size))
		reqs[i] = Request{Seq: int64(i + 1), Accesses: []Access{{Object: o.ID, Yield: y}}}
	}
	return reqs
}

func TestObjectValidate(t *testing.T) {
	cases := []struct {
		name    string
		obj     Object
		wantErr bool
	}{
		{"valid", testObj("a", 10), false},
		{"empty id", Object{Size: 1, FetchCost: 1}, true},
		{"zero size", Object{ID: "a", Size: 0, FetchCost: 1}, true},
		{"negative size", Object{ID: "a", Size: -5, FetchCost: 1}, true},
		{"zero fetch", Object{ID: "a", Size: 1, FetchCost: 0}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.obj.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestBypassCostUniform(t *testing.T) {
	o := testObj("a", 100)
	if got := o.BypassCost(37); got != 37 {
		t.Fatalf("BypassCost = %d, want 37 (uniform network: cost equals yield)", got)
	}
}

func TestBypassCostScaled(t *testing.T) {
	// Fetch cost 3x size: bypass cost is yield scaled by 3.
	o := testObjCost("a", 100, 300)
	if got := o.BypassCost(50); got != 150 {
		t.Fatalf("BypassCost = %d, want 150", got)
	}
	if got := o.BypassCost(0); got != 0 {
		t.Fatalf("BypassCost(0) = %d, want 0", got)
	}
}

func TestDecisionString(t *testing.T) {
	if Hit.String() != "hit" || Bypass.String() != "bypass" || Load.String() != "load" {
		t.Fatal("Decision names wrong")
	}
	if Decision(9).String() == "" {
		t.Fatal("unknown decision should still format")
	}
}

func TestAccountingDerived(t *testing.T) {
	a := Accounting{
		Accesses:    10,
		Hits:        4,
		BypassBytes: 60,
		FetchBytes:  100,
		CacheBytes:  40,
		YieldBytes:  100,
	}
	if got := a.WANBytes(); got != 160 {
		t.Fatalf("WANBytes = %d, want 160", got)
	}
	if got := a.DeliveredBytes(); got != 100 {
		t.Fatalf("DeliveredBytes = %d, want 100", got)
	}
	if got := a.HitRate(); got != 0.4 {
		t.Fatalf("HitRate = %v, want 0.4", got)
	}
	if got := a.ByteHitRate(); got != 0.4 {
		t.Fatalf("ByteHitRate = %v, want 0.4", got)
	}
}

func TestAccountingZero(t *testing.T) {
	var a Accounting
	if a.HitRate() != 0 || a.ByteHitRate() != 0 {
		t.Fatal("zero accounting rates should be 0, not NaN")
	}
}

func TestAccountingAdd(t *testing.T) {
	a := Accounting{Queries: 1, Hits: 2, BypassBytes: 3}
	b := Accounting{Queries: 10, Hits: 20, BypassBytes: 30, FetchBytes: 5}
	a.Add(b)
	if a.Queries != 11 || a.Hits != 22 || a.BypassBytes != 33 || a.FetchBytes != 5 {
		t.Fatalf("Add produced %+v", a)
	}
}

func TestSimulatorUnknownObject(t *testing.T) {
	sim := &Simulator{Policy: NewNoCache(), Objects: objMap()}
	_, err := sim.Run(singleAccessTrace(Access{Object: "ghost", Yield: 1}))
	if err == nil {
		t.Fatal("expected UnknownObjectError")
	}
	if _, ok := err.(*UnknownObjectError); !ok {
		t.Fatalf("error type = %T, want *UnknownObjectError", err)
	}
}

func TestSimulatorNoCacheSequenceCost(t *testing.T) {
	// With no caching, WAN cost equals the sum of all yields (the
	// paper's "sequence cost").
	a := testObj("a", 1000)
	b := testObj("b", 500)
	trace := singleAccessTrace(
		Access{a.ID, 100}, Access{b.ID, 200}, Access{a.ID, 300},
	)
	sim := &Simulator{Policy: NewNoCache(), Objects: objMap(a, b)}
	res, err := sim.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Acct.WANBytes() != 600 {
		t.Fatalf("WANBytes = %d, want 600", res.Acct.WANBytes())
	}
	if res.Acct.Bypasses != 3 || res.Acct.Hits != 0 || res.Acct.Loads != 0 {
		t.Fatalf("decisions = %+v", res.Acct)
	}
	if res.Acct.DeliveredBytes() != 600 {
		t.Fatalf("DeliveredBytes = %d, want 600", res.Acct.DeliveredBytes())
	}
}

func TestSimulatorCurve(t *testing.T) {
	a := testObj("a", 1000)
	trace := singleAccessTrace(
		Access{a.ID, 10}, Access{a.ID, 10}, Access{a.ID, 10},
		Access{a.ID, 10}, Access{a.ID, 10},
	)
	sim := &Simulator{Policy: NewNoCache(), Objects: objMap(a), CurveStride: 2}
	res, err := sim.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{20, 40, 50}
	if len(res.Curve) != len(want) {
		t.Fatalf("curve = %v, want %v", res.Curve, want)
	}
	for i := range want {
		if res.Curve[i] != want[i] {
			t.Fatalf("curve = %v, want %v", res.Curve, want)
		}
	}
}

func TestSimulatorCurveExactMultiple(t *testing.T) {
	// When the trace length is an exact multiple of the stride the
	// final sample must not be duplicated.
	a := testObj("a", 1000)
	trace := singleAccessTrace(
		Access{a.ID, 10}, Access{a.ID, 10}, Access{a.ID, 10}, Access{a.ID, 10},
	)
	sim := &Simulator{Policy: NewNoCache(), Objects: objMap(a), CurveStride: 2}
	res, err := sim.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{20, 40}
	if len(res.Curve) != 2 || res.Curve[0] != want[0] || res.Curve[1] != want[1] {
		t.Fatalf("curve = %v, want %v", res.Curve, want)
	}
}

// allPolicies builds one of each policy for cross-cutting tests.
func allPolicies(capacity int64) []Policy {
	return []Policy{
		NewRateProfile(RateProfileConfig{Capacity: capacity}),
		NewOnlineBY(NewLandlord(capacity)),
		NewOnlineBY(NewSizeClassMarking(capacity)),
		NewSpaceEffBY(NewLandlord(capacity), rand.NewSource(42)),
		NewGDS(capacity),
		NewGDSP(capacity),
		NewLRU(capacity),
		NewLRUK(capacity, 2),
		NewLFU(capacity),
		NewNoCache(),
	}
}

func TestPoliciesNeverExceedCapacity(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	objs := []Object{
		testObj("t1", 400), testObj("t2", 250), testObj("t3", 100),
		testObj("t4", 80), testObj("t5", 30), testObj("t6", 1500),
	}
	trace := randomTrace(r, objs, 3000, 1.0)
	for _, p := range allPolicies(1000) {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			for _, req := range trace {
				for _, acc := range req.Accesses {
					p.Access(req.Seq, objs[indexOf(objs, acc.Object)], acc.Yield)
					if p.Used() > p.Capacity() {
						t.Fatalf("used %d exceeds capacity %d", p.Used(), p.Capacity())
					}
					if p.Used() < 0 {
						t.Fatalf("used went negative: %d", p.Used())
					}
				}
			}
		})
	}
}

func indexOf(objs []Object, id ObjectID) int {
	for i, o := range objs {
		if o.ID == id {
			return i
		}
	}
	panic("object not found: " + string(id))
}

func TestFlowConservation(t *testing.T) {
	// On uniform networks D_A = D_S + D_C must equal the total yield
	// for every policy: the client always receives the same bytes.
	r := rand.New(rand.NewSource(23))
	objs := []Object{
		testObj("t1", 400), testObj("t2", 250), testObj("t3", 100), testObj("t4", 60),
	}
	trace := randomTrace(r, objs, 2000, 1.0)
	for _, p := range allPolicies(500) {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			sim := &Simulator{Policy: p, Objects: objMap(objs...)}
			res, err := sim.Run(trace)
			if err != nil {
				t.Fatal(err)
			}
			if res.Acct.DeliveredBytes() != res.Acct.YieldBytes {
				t.Fatalf("D_A = %d, want total yield %d",
					res.Acct.DeliveredBytes(), res.Acct.YieldBytes)
			}
			if res.Acct.Hits+res.Acct.Bypasses+res.Acct.Loads != res.Acct.Accesses {
				t.Fatal("decision counts do not sum to accesses")
			}
		})
	}
}

func TestPolicyResetRestoresInitialState(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	objs := []Object{testObj("t1", 300), testObj("t2", 200), testObj("t3", 90)}
	trace := randomTrace(r, objs, 800, 1.0)
	for _, p := range allPolicies(400) {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			sim := &Simulator{Policy: p, Objects: objMap(objs...)}
			if _, err := sim.Run(trace); err != nil {
				t.Fatal(err)
			}
			p.Reset()
			if p.Used() != 0 && p.Name() != "static-optimal" {
				t.Fatalf("Used after Reset = %d, want 0", p.Used())
			}
			for _, o := range objs {
				if p.Contains(o.ID) {
					t.Fatalf("cache still contains %s after Reset", o.ID)
				}
			}
		})
	}
}

func TestDeterministicReruns(t *testing.T) {
	// Every deterministic policy must produce identical accounting on
	// identical traces after Reset; SpaceEffBY must when rebuilt with
	// the same seed.
	r := rand.New(rand.NewSource(31))
	objs := []Object{testObj("t1", 300), testObj("t2", 200), testObj("t3", 90)}
	trace := randomTrace(r, objs, 1500, 1.0)

	run := func(p Policy) Accounting {
		sim := &Simulator{Policy: p, Objects: objMap(objs...)}
		res, err := sim.Run(trace)
		if err != nil {
			t.Fatal(err)
		}
		return res.Acct
	}

	for _, mk := range []func() Policy{
		func() Policy { return NewRateProfile(RateProfileConfig{Capacity: 400}) },
		func() Policy { return NewOnlineBY(NewLandlord(400)) },
		func() Policy { return NewSpaceEffBY(NewLandlord(400), rand.NewSource(7)) },
		func() Policy { return NewGDS(400) },
		func() Policy { return NewGDSP(400) },
	} {
		p1, p2 := mk(), mk()
		a1, a2 := run(p1), run(p2)
		if a1 != a2 {
			t.Fatalf("%s: non-deterministic accounting: %+v vs %+v", p1.Name(), a1, a2)
		}
	}
}
