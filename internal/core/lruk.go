package core

// LRUK is the LRU-K replacement policy of O'Neil, O'Neil & Weikum
// (SIGMOD '93), cited by the paper for database disk buffering: the
// eviction victim is the object whose K-th most recent reference is
// oldest, which discriminates frequently from infrequently referenced
// objects better than plain LRU. Reference history is retained for
// every object in the stream, cached or not, as the algorithm
// specifies. Like the paper's other comparators it is in-line: every
// miss loads.
type LRUK struct {
	inlineCache
	k    int
	hist map[ObjectID][]int64 // most recent first, at most k entries
}

// NewLRUK returns an LRU-K policy. k < 2 degrades to classic LRU
// semantics with history.
func NewLRUK(capacity int64, k int) *LRUK {
	if k < 1 {
		k = 1
	}
	return &LRUK{
		inlineCache: newInlineCache("lru-k", capacity),
		k:           k,
		hist:        make(map[ObjectID][]int64),
	}
}

// Reset implements Policy.
func (l *LRUK) Reset() {
	l.inlineCache.Reset()
	l.hist = make(map[ObjectID][]int64)
}

// priority orders eviction: objects with a full K-history rank by
// their K-th most recent reference; objects with fewer references
// rank below all of them (infinite backward K-distance), ordered by
// recency among themselves.
func (l *LRUK) priority(id ObjectID) float64 {
	h := l.hist[id]
	if len(h) >= l.k {
		return float64(h[l.k-1])
	}
	if len(h) == 0 {
		return -1e18
	}
	return float64(h[0]) - 1e12
}

// Access implements Policy.
func (l *LRUK) Access(t int64, obj Object, yield int64) Decision {
	h := l.hist[obj.ID]
	h = append([]int64{t}, h...)
	if len(h) > l.k {
		h = h[:l.k]
	}
	l.hist[obj.ID] = h

	key := string(obj.ID)
	if l.heap.Contains(key) {
		l.heap.Update(key, l.priority(obj.ID))
		return Hit
	}
	if !l.admit(obj, l.priority(obj.ID)) {
		return Bypass
	}
	return Load
}
