package core

import "bypassyield/internal/obs"

// Telemetry publishes the cache core's activity into an obs.Registry:
// decisions per policy per verdict, the Figure-1 byte flows, eviction
// and episode churn. The byte counters apply exactly the charging
// rules of Account, so a registry snapshot reconciles with the
// mediator's Accounting (D_A = D_S + D_C) — the end-to-end metrics
// test asserts this.
//
// Metric names:
//
//	core.decisions            counter family, label "<policy>/<verdict>"
//	core.evictions            counter family, label "<policy>"
//	core.accesses             counter
//	core.bypass_bytes         counter (D_S, cost-scaled)
//	core.fetch_bytes          counter (D_L)
//	core.cache_bytes          counter (D_C)
//	core.yield_bytes          counter (raw yield)
//	core.episodes_opened      counter
//	core.episodes_closed      counter
//
// Sliding-window rates (the operational analogue of the paper's rate
// profiles, eq. 3 — recent flow intensity rather than lifetime sums):
//
//	core.bypass_bytes_rate    D_S bytes/s over the recent window
//	core.fetch_bytes_rate     D_L bytes/s
//	core.cache_bytes_rate     D_C bytes/s
//	core.query_rate           mediated queries/s
//
// A Telemetry built over a nil registry — or a nil *Telemetry — is a
// no-op, so policies and simulators thread it unconditionally.
type Telemetry struct {
	decisions *obs.CounterFamily
	evictions *obs.CounterFamily

	accesses    *obs.Counter
	bypassBytes *obs.Counter
	fetchBytes  *obs.Counter
	cacheBytes  *obs.Counter
	yieldBytes  *obs.Counter

	episodesOpened *obs.Counter
	episodesClosed *obs.Counter

	bypassRate *obs.Rate
	fetchRate  *obs.Rate
	cacheRate  *obs.Rate
	queryRate  *obs.Rate
}

// TelemetrySetter is implemented by policies that publish internal
// churn (episode open/close, ...) through a Telemetry. The mediator
// and simulator attach their telemetry to any policy implementing it.
type TelemetrySetter interface {
	SetTelemetry(*Telemetry)
}

// NewTelemetry registers the core metric families in r. A nil r
// yields a nil Telemetry, whose methods are free no-ops.
func NewTelemetry(r *obs.Registry) *Telemetry {
	if r == nil {
		return nil
	}
	return &Telemetry{
		decisions:      r.CounterFamily("core.decisions"),
		evictions:      r.CounterFamily("core.evictions"),
		accesses:       r.Counter("core.accesses"),
		bypassBytes:    r.Counter("core.bypass_bytes"),
		fetchBytes:     r.Counter("core.fetch_bytes"),
		cacheBytes:     r.Counter("core.cache_bytes"),
		yieldBytes:     r.Counter("core.yield_bytes"),
		episodesOpened: r.Counter("core.episodes_opened"),
		episodesClosed: r.Counter("core.episodes_closed"),
		bypassRate:     r.Rate("core.bypass_bytes_rate"),
		fetchRate:      r.Rate("core.fetch_bytes_rate"),
		cacheRate:      r.Rate("core.cache_bytes_rate"),
		queryRate:      r.Rate("core.query_rate"),
	}
}

// RecordAccess charges one decided access, mirroring Account's flow
// rules. Unknown decisions are ignored (the caller surfaces the
// error through Account).
func (t *Telemetry) RecordAccess(policy string, obj Object, yield int64, d Decision) {
	if t == nil {
		return
	}
	t.decisions.Add(policy+"/"+d.String(), 1)
	t.accesses.Add(1)
	t.yieldBytes.Add(yield)
	switch d {
	case Hit:
		t.cacheBytes.Add(yield)
		t.cacheRate.Add(yield)
	case Bypass:
		cost := obj.BypassCost(yield)
		t.bypassBytes.Add(cost)
		t.bypassRate.Add(cost)
	case Load:
		t.fetchBytes.Add(obj.FetchCost)
		t.fetchRate.Add(obj.FetchCost)
		t.cacheBytes.Add(yield)
		t.cacheRate.Add(yield)
	}
}

// RecordQuery feeds the windowed query rate; the mediator calls it
// once per mediated statement.
func (t *Telemetry) RecordQuery() {
	if t == nil {
		return
	}
	t.queryRate.Add(1)
}

// RecordEvictions adds an eviction count for a policy (callers feed
// deltas of Policy.Evictions).
func (t *Telemetry) RecordEvictions(policy string, n int64) {
	if t == nil || n <= 0 {
		return
	}
	t.evictions.Add(policy, n)
}

// EpisodeOpened counts one episode opening in a rate profile.
func (t *Telemetry) EpisodeOpened() {
	if t == nil {
		return
	}
	t.episodesOpened.Add(1)
}

// EpisodeClosed counts one episode closing.
func (t *Telemetry) EpisodeClosed() {
	if t == nil {
		return
	}
	t.episodesClosed.Add(1)
}
