package core

import (
	"sync/atomic"
	"time"

	"bypassyield/internal/obs"
)

// Telemetry publishes the cache core's activity into an obs.Registry:
// decisions per policy per verdict, the Figure-1 byte flows, eviction
// and episode churn. The byte counters apply exactly the charging
// rules of Account, so a registry snapshot reconciles with the
// mediator's Accounting (D_A = D_S + D_C) — the end-to-end metrics
// test asserts this.
//
// Metric names:
//
//	core.decisions            counter family, label "<policy>/<verdict>"
//	core.evictions            counter family, label "<policy>"
//	core.accesses             counter
//	core.bypass_bytes         counter (D_S, cost-scaled)
//	core.fetch_bytes          counter (D_L)
//	core.cache_bytes          counter (D_C)
//	core.yield_bytes          counter (raw yield)
//	core.episodes_opened      counter
//	core.episodes_closed      counter
//
// Degraded-mode accounting (site breakers open, see the federation
// mediator):
//
//	core.forced_decisions     counter family, label "<site>": accesses
//	                          forced to serve-from-cache because the
//	                          owning site was unavailable
//	core.failed_legs          counter family, label "<site>": accesses
//	                          dropped entirely (site down, not cached)
//	core.degraded_queries     counter: queries with ≥ 1 forced or
//	                          failed access
//	core.stale_served_bytes   counter: yield served from cache with no
//	                          freshness guarantee
//
// Sliding-window rates (the operational analogue of the paper's rate
// profiles, eq. 3 — recent flow intensity rather than lifetime sums):
//
//	core.bypass_bytes_rate    D_S bytes/s over the recent window
//	core.fetch_bytes_rate     D_L bytes/s
//	core.cache_bytes_rate     D_C bytes/s
//	core.query_rate           mediated queries/s
//
// Decision latency (the cost of running the policy itself):
//
//	core.decide_seconds       histogram; observations in NANOSECONDS
//	                          with explicit sub-microsecond buckets —
//	                          the name keeps the Prometheus convention
//	                          while the unit stays integer-friendly
//	core.lock_wait_us         histogram: time queries spend blocked on
//	                          the mediation decision lock (µs) — the
//	                          decision plane's queueing delay, which
//	                          tail attribution separates from WAN time
//
// Sharded decision plane (the mediator partitions its decision state
// by object; see federation):
//
//	core.decide_wait_us       histogram: one query's TOTAL time blocked
//	                          on decision-partition locks (µs) — the
//	                          sharded successor of core.lock_wait_us,
//	                          which it equals at one partition
//	core.shard_queries        counter family, label "s<k>": queries
//	                          that touched partition k
//	core.shard_lock_wait_us   histogram family, label "s<k>": per-
//	                          partition lock acquisition wait (µs) —
//	                          a hot partition shows up as one skewed
//	                          member of the family
//
// Pipeline concurrency (the proxy's decide-then-execute split —
// decisions stay sequential under the mediation lock, WAN legs and
// whole queries overlap):
//
//	core.query_concurrency    gauge: client queries currently inside
//	                          the proxy pipeline (mediation + legs)
//	core.legs_inflight        gauge: WAN legs (object fetches and
//	                          bypass sub-queries) currently executing
//
// Counterfactual accounting (fed by ShadowSet, see shadow.go):
//
//	core.shadow_wan_bytes             counter family, label = baseline
//	core.optbound_bytes               counter: ski-rental lower bound
//	core.bytes_saved_vs_bypass        gauge: shadow always-bypass WAN − realized WAN
//	core.bytes_saved_vs_lruk          gauge: shadow LRU-K WAN − realized WAN
//	core.competitive_ratio_milli      gauge: 1000 · realized WAN / bound (lifetime)
//	core.competitive_ratio_window_milli  gauge: same ratio over the recent rate window
//	core.wan_bytes_rate               realized WAN bytes/s (D_S + D_L)
//	core.optbound_bytes_rate          bound bytes/s, the window ratio's denominator
//
// A Telemetry built over a nil registry — or a nil *Telemetry — is a
// no-op, so policies and simulators thread it unconditionally.
type Telemetry struct {
	decisions *obs.CounterFamily
	evictions *obs.CounterFamily

	accesses    *obs.Counter
	bypassBytes *obs.Counter
	fetchBytes  *obs.Counter
	cacheBytes  *obs.Counter
	yieldBytes  *obs.Counter

	episodesOpened *obs.Counter
	episodesClosed *obs.Counter

	forcedDecisions *obs.CounterFamily
	failedLegs      *obs.CounterFamily
	degradedQueries *obs.Counter
	staleBytes      *obs.Counter

	bypassRate *obs.Rate
	fetchRate  *obs.Rate
	cacheRate  *obs.Rate
	queryRate  *obs.Rate

	decide        *obs.Histogram
	lockWait      *obs.Histogram
	decideWait    *obs.Histogram
	shardQueries  *obs.CounterFamily
	shardLockWait *obs.HistogramFamily

	queryConcurrency *obs.Gauge
	legsInflight     *obs.Gauge

	shadowWAN       *obs.CounterFamily
	optBoundBytes   *obs.Counter
	savedVsBypass   *obs.Gauge
	savedVsLRUK     *obs.Gauge
	compRatio       *obs.Gauge
	compRatioWindow *obs.Gauge
	wanRate         *obs.Rate
	optRate         *obs.Rate

	// Global accumulators behind the competitive-ratio gauge: sharded
	// shadow sets each contribute deltas, the gauge reads the sum.
	compWAN   atomic.Int64
	compBound atomic.Int64
}

// DecideBuckets are the explicit core.decide_seconds bucket bounds in
// nanoseconds: policy decisions are map lookups plus at worst a victim
// scan, so the resolution concentrates between 100ns and 100µs with a
// long tail to 10ms for pathological victim sets.
func DecideBuckets() []int64 {
	return []int64{100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 1_000_000, 10_000_000}
}

// TelemetrySetter is implemented by policies that publish internal
// churn (episode open/close, ...) through a Telemetry. The mediator
// and simulator attach their telemetry to any policy implementing it.
type TelemetrySetter interface {
	SetTelemetry(*Telemetry)
}

// NewTelemetry registers the core metric families in r. A nil r
// yields a nil Telemetry, whose methods are free no-ops.
func NewTelemetry(r *obs.Registry) *Telemetry {
	if r == nil {
		return nil
	}
	return &Telemetry{
		decisions:      r.CounterFamily("core.decisions"),
		evictions:      r.CounterFamily("core.evictions"),
		accesses:       r.Counter("core.accesses"),
		bypassBytes:    r.Counter("core.bypass_bytes"),
		fetchBytes:     r.Counter("core.fetch_bytes"),
		cacheBytes:     r.Counter("core.cache_bytes"),
		yieldBytes:     r.Counter("core.yield_bytes"),
		episodesOpened: r.Counter("core.episodes_opened"),
		episodesClosed: r.Counter("core.episodes_closed"),

		forcedDecisions: r.CounterFamily("core.forced_decisions"),
		failedLegs:      r.CounterFamily("core.failed_legs"),
		degradedQueries: r.Counter("core.degraded_queries"),
		staleBytes:      r.Counter("core.stale_served_bytes"),
		bypassRate:      r.Rate("core.bypass_bytes_rate"),
		fetchRate:       r.Rate("core.fetch_bytes_rate"),
		cacheRate:       r.Rate("core.cache_bytes_rate"),
		queryRate:       r.Rate("core.query_rate"),

		decide:        r.Histogram("core.decide_seconds", DecideBuckets()),
		lockWait:      r.Histogram("core.lock_wait_us", obs.DefaultLatencyBuckets()),
		decideWait:    r.Histogram("core.decide_wait_us", obs.DefaultLatencyBuckets()),
		shardQueries:  r.CounterFamily("core.shard_queries"),
		shardLockWait: r.HistogramFamily("core.shard_lock_wait_us", obs.DefaultLatencyBuckets()),

		queryConcurrency: r.Gauge("core.query_concurrency"),
		legsInflight:     r.Gauge("core.legs_inflight"),

		shadowWAN:       r.CounterFamily("core.shadow_wan_bytes"),
		optBoundBytes:   r.Counter("core.optbound_bytes"),
		savedVsBypass:   r.Gauge("core.bytes_saved_vs_bypass"),
		savedVsLRUK:     r.Gauge("core.bytes_saved_vs_lruk"),
		compRatio:       r.Gauge("core.competitive_ratio_milli"),
		compRatioWindow: r.Gauge("core.competitive_ratio_window_milli"),
		wanRate:         r.Rate("core.wan_bytes_rate"),
		optRate:         r.Rate("core.optbound_bytes_rate"),
	}
}

// RecordAccess charges one decided access, mirroring Account's flow
// rules. Unknown decisions are ignored (the caller surfaces the
// error through Account).
func (t *Telemetry) RecordAccess(policy string, obj Object, yield int64, d Decision) {
	if t == nil {
		return
	}
	t.decisions.Add(policy+"/"+d.String(), 1)
	t.accesses.Add(1)
	t.yieldBytes.Add(yield)
	switch d {
	case Hit:
		t.cacheBytes.Add(yield)
		t.cacheRate.Add(yield)
	case Bypass:
		cost := obj.BypassCost(yield)
		t.bypassBytes.Add(cost)
		t.bypassRate.Add(cost)
		t.wanRate.Add(cost)
	case Load:
		t.fetchBytes.Add(obj.FetchCost)
		t.fetchRate.Add(obj.FetchCost)
		t.cacheBytes.Add(yield)
		t.cacheRate.Add(yield)
		t.wanRate.Add(obj.FetchCost)
	}
}

// SeedRestored re-publishes the cumulative counters that mirror a
// restored Accounting, so a registry snapshot keeps reconciling with
// the mediator's flow ledger (core.yield_bytes = Acct.YieldBytes =
// D_A, the invariant byinspect -federation checks) across a warm
// restart. Only the lifetime counters RecordAccess drives are seeded:
// sliding-window rates, latency histograms, and the degraded-mode
// site families describe live traffic and restart empty (Accounting
// cannot apportion historical hits between free and forced serves
// anyway — both charge the Hit flow rules).
func (t *Telemetry) SeedRestored(policy string, a Accounting) {
	if t == nil {
		return
	}
	t.decisions.Add(policy+"/"+Hit.String(), a.Hits)
	t.decisions.Add(policy+"/"+Bypass.String(), a.Bypasses)
	t.decisions.Add(policy+"/"+Load.String(), a.Loads)
	t.accesses.Add(a.Accesses)
	t.yieldBytes.Add(a.YieldBytes)
	t.cacheBytes.Add(a.CacheBytes)
	t.bypassBytes.Add(a.BypassBytes)
	t.fetchBytes.Add(a.FetchBytes)
}

// RecordForced charges one forced serve-from-cache: the owning site
// was unavailable, so the cached (possibly stale) copy was served.
// The byte flows follow the Hit rules — the bytes really came from
// the cache — on top of the degraded-mode counters.
func (t *Telemetry) RecordForced(policy, site string, obj Object, yield int64) {
	if t == nil {
		return
	}
	t.forcedDecisions.Add(site, 1)
	t.staleBytes.Add(yield)
	t.RecordAccess(policy, obj, yield, Hit)
}

// RecordFailedLeg counts one dropped access: site down, object not
// cached, nothing delivered and nothing charged.
func (t *Telemetry) RecordFailedLeg(site string) {
	if t == nil {
		return
	}
	t.failedLegs.Add(site, 1)
}

// RecordDegradedQuery counts one query that had at least one forced
// or failed access.
func (t *Telemetry) RecordDegradedQuery() {
	if t == nil {
		return
	}
	t.degradedQueries.Add(1)
}

// ObserveDecide records the wall time one Policy.Access call took in
// the core.decide_seconds histogram (observed in nanoseconds).
func (t *Telemetry) ObserveDecide(d time.Duration) {
	if t == nil {
		return
	}
	t.decide.Observe(int64(d))
}

// ObserveLockWait records how long one query waited for the mediation
// decision lock in the core.lock_wait_us histogram (microseconds).
func (t *Telemetry) ObserveLockWait(d time.Duration) {
	if t == nil {
		return
	}
	t.lockWait.Observe(d.Microseconds())
}

// ObserveDecideWait records one query's total decision-partition lock
// wait in the core.decide_wait_us histogram (microseconds). It also
// feeds core.lock_wait_us so dashboards built before the sharded plane
// keep reading the same queueing delay.
func (t *Telemetry) ObserveDecideWait(d time.Duration) {
	if t == nil {
		return
	}
	us := d.Microseconds()
	t.decideWait.Observe(us)
	t.lockWait.Observe(us)
}

// RecordShardQuery counts one query touching the named decision
// partition and records its wait for that partition's lock.
func (t *Telemetry) RecordShardQuery(shard string, wait time.Duration) {
	if t == nil {
		return
	}
	t.shardQueries.Add(shard, 1)
	t.shardLockWait.Observe(shard, wait.Microseconds())
}

// QueryInflight moves the core.query_concurrency gauge by delta; the
// proxy brackets each client query's pipeline (+1 on entry, −1 on
// exit), so the gauge reads the instantaneous overlap.
func (t *Telemetry) QueryInflight(delta int64) {
	if t == nil {
		return
	}
	t.queryConcurrency.Add(delta)
}

// LegInflight moves the core.legs_inflight gauge by delta; the proxy
// brackets each WAN leg (object fetch or bypass sub-query).
func (t *Telemetry) LegInflight(delta int64) {
	if t == nil {
		return
	}
	t.legsInflight.Add(delta)
}

// RecordShadow charges WAN traffic a shadow baseline would have
// incurred for one access.
func (t *Telemetry) RecordShadow(baseline string, wan int64) {
	if t == nil || wan == 0 {
		return
	}
	t.shadowWAN.Add(baseline, wan)
}

// RecordOptBound advances the ski-rental lower bound by delta bytes
// (the increment of Σ_i min(accumulated bypass cost_i, f_i)).
func (t *Telemetry) RecordOptBound(delta int64) {
	if t == nil || delta <= 0 {
		return
	}
	t.optBoundBytes.Add(delta)
	t.optRate.Add(delta)
}

// PublishSavings moves the bytes-saved-vs-baseline gauges by deltas.
// Each shadow set (one per decision partition under the sharded
// mediator) publishes the change in its own counterfactual-minus-
// realized WAN, so the gauges always read the sum across partitions —
// which at one partition is exactly the single set's current value.
func (t *Telemetry) PublishSavings(dBypass, dLRUK int64) {
	if t == nil {
		return
	}
	t.savedVsBypass.Add(dBypass)
	t.savedVsLRUK.Add(dLRUK)
}

// PublishCompetitive accumulates realized-WAN and ski-rental-bound
// deltas into the telemetry's global totals and republishes the
// competitive-ratio gauges, in thousandths (gauges are integers): the
// lifetime ratio from the accumulated totals, and the windowed ratio
// from the recent WAN and bound rates. A zero denominator leaves the
// gauge at 0.
func (t *Telemetry) PublishCompetitive(dWAN, dBound int64) {
	if t == nil {
		return
	}
	wan := t.compWAN.Add(dWAN)
	bound := t.compBound.Add(dBound)
	if bound > 0 {
		t.compRatio.Set(wan * 1000 / bound)
	}
	if br := t.optRate.PerSecond(); br > 0 {
		t.compRatioWindow.Set(int64(t.wanRate.PerSecond() / br * 1000))
	}
}

// RecordQuery feeds the windowed query rate; the mediator calls it
// once per mediated statement.
func (t *Telemetry) RecordQuery() {
	if t == nil {
		return
	}
	t.queryRate.Add(1)
}

// RecordEvictions adds an eviction count for a policy (callers feed
// deltas of Policy.Evictions).
func (t *Telemetry) RecordEvictions(policy string, n int64) {
	if t == nil || n <= 0 {
		return
	}
	t.evictions.Add(policy, n)
}

// EpisodeOpened counts one episode opening in a rate profile.
func (t *Telemetry) EpisodeOpened() {
	if t == nil {
		return
	}
	t.episodesOpened.Add(1)
}

// EpisodeClosed counts one episode closing.
func (t *Telemetry) EpisodeClosed() {
	if t == nil {
		return
	}
	t.episodesClosed.Add(1)
}
