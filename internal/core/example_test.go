package core_test

import (
	"fmt"

	"bypassyield/internal/core"
)

// The basic decision loop: a bypass-yield cache rents (bypasses)
// until a load pays off, then serves hits.
func ExampleRateProfile() {
	table := core.Object{ID: "sky/objects", Size: 1000, FetchCost: 1000, Site: "archive"}
	cache := core.NewRateProfile(core.RateProfileConfig{Capacity: 2000})

	for t := int64(1); t <= 4; t++ {
		d := cache.Access(t, table, 600) // each query yields 600 bytes
		fmt.Printf("query %d: %s\n", t, d)
	}
	// Output:
	// query 1: bypass
	// query 2: load
	// query 3: hit
	// query 4: hit
}

// Simulator drives any policy over a trace with the paper's flow
// accounting.
func ExampleSimulator() {
	obj := core.Object{ID: "sky/objects", Size: 1000, FetchCost: 1000, Site: "archive"}
	trace := []core.Request{
		{Seq: 1, Accesses: []core.Access{{Object: obj.ID, Yield: 600}}},
		{Seq: 2, Accesses: []core.Access{{Object: obj.ID, Yield: 600}}},
		{Seq: 3, Accesses: []core.Access{{Object: obj.ID, Yield: 600}}},
	}
	sim := &core.Simulator{
		Policy:  core.NewRateProfile(core.RateProfileConfig{Capacity: 2000}),
		Objects: map[core.ObjectID]core.Object{obj.ID: obj},
	}
	res, err := sim.Run(trace)
	if err != nil {
		panic(err)
	}
	fmt.Printf("WAN %d bytes (bypass %d + fetch %d), delivered %d\n",
		res.Acct.WANBytes(), res.Acct.BypassBytes, res.Acct.FetchBytes, res.Acct.DeliveredBytes())
	// Output:
	// WAN 1600 bytes (bypass 600 + fetch 1000), delivered 1800
}

// OnlineBY needs no workload knowledge: it runs one ski-rental per
// object over a bypass-object caching subroutine.
func ExampleOnlineBY() {
	obj := core.Object{ID: "sky/objects", Size: 1000, FetchCost: 1000, Site: "archive"}
	cache := core.NewOnlineBY(core.NewLandlord(2000))

	for t := int64(1); t <= 3; t++ {
		fmt.Println(cache.Access(t, obj, 500))
	}
	// Output:
	// bypass
	// load
	// hit
}

// BYU evaluates the paper's eq. 2 for a known query distribution.
func ExampleBYU() {
	obj := core.Object{ID: "sky/objects", Size: 1000, FetchCost: 1000}
	queries := []core.WeightedQuery{
		{P: 0.6, Yield: 500}, // frequent, selective
		{P: 0.1, Yield: 1000},
	}
	fmt.Printf("BYU = %.2f\n", core.BYU(obj, queries))
	// Output:
	// BYU = 0.40
}
