package core

import (
	"math/rand"
	"testing"
)

// The scripted scenario from DESIGN.md §7: two objects of size 100 on
// a cache of 100 bytes, uniform network. Hand-computed decisions.
func TestRateProfileScriptedScenario(t *testing.T) {
	a := testObj("a", 100)
	b := testObj("b", 100)
	rp := NewRateProfile(RateProfileConfig{Capacity: 100})

	// t=1: first access to a, LAR = (100−100)/100 = 0 → not positive
	// → bypass (rent before buying).
	if d := rp.Access(1, a, 100); d != Bypass {
		t.Fatalf("t=1 decision = %v, want bypass", d)
	}
	// t=2: LARP = 200/(1·100) − 1 = 1.0 → LAR 1.0 > 0, free space →
	// load.
	if d := rp.Access(2, a, 100); d != Load {
		t.Fatalf("t=2 decision = %v, want load", d)
	}
	if !rp.Contains(a.ID) || rp.Used() != 100 {
		t.Fatalf("cache state after load: contains=%v used=%d", rp.Contains(a.ID), rp.Used())
	}
	// t=3: a cached → hit.
	if d := rp.Access(3, a, 50); d != Hit {
		t.Fatalf("t=3 decision = %v, want hit", d)
	}
	// t=4: b first access, LAR = 0; victim a has RP = 150/((4−2)·100)
	// = 0.75 ≥ 0 → bypass.
	if d := rp.Access(4, b, 100); d != Bypass {
		t.Fatalf("t=4 decision = %v, want bypass", d)
	}
	// t=5: b again, LARP = 200/(1·100) − 1 = 1.0 → LAR 1.0; victim a
	// has RP = 150/((5−2)·100) = 0.5 < 1.0 → evict a, load b.
	if d := rp.Access(5, b, 100); d != Load {
		t.Fatalf("t=5 decision = %v, want load", d)
	}
	if rp.Contains(a.ID) || !rp.Contains(b.ID) {
		t.Fatal("expected a evicted and b cached")
	}
	if rp.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", rp.Evictions())
	}
}

func TestRateProfileHitUpdatesRP(t *testing.T) {
	a := testObj("a", 100)
	rp := NewRateProfile(RateProfileConfig{Capacity: 100})
	rp.Access(1, a, 100)
	rp.Access(2, a, 100) // load
	rp.Access(3, a, 70)  // hit
	e := rp.entries[a.ID]
	if e.sumYield != 170 {
		t.Fatalf("sumYield = %d, want 170 (load access 100 + hit 70)", e.sumYield)
	}
	// RP at t=4: 170/((4−2)·100) = 0.85.
	if got := e.rp(4); !almostEqual(got, 0.85) {
		t.Fatalf("rp(4) = %v, want 0.85", got)
	}
}

func TestRateProfileObjectLargerThanCache(t *testing.T) {
	big := testObj("big", 1000)
	rp := NewRateProfile(RateProfileConfig{Capacity: 100})
	for i := int64(1); i <= 10; i++ {
		if d := rp.Access(i, big, 1000); d != Bypass {
			t.Fatalf("oversized object decision = %v, want bypass", d)
		}
	}
	if rp.Used() != 0 {
		t.Fatal("oversized object must never occupy the cache")
	}
}

func TestRateProfileTimeDecaysRP(t *testing.T) {
	// A cached but idle object's RP decays with time, so a hot
	// candidate eventually displaces it.
	a := testObj("a", 100)
	b := testObj("b", 100)
	rp := NewRateProfile(RateProfileConfig{Capacity: 100})
	rp.Access(1, a, 100)
	rp.Access(2, a, 100) // a loaded, sumYield 100
	// Long idle period; at t=1000, RP_a = 100/(998·100) ≈ 0.001.
	// Burst on b: two accesses raise its LAR above RP_a.
	rp.Access(1000, b, 100) // bypass (first LAR = 0)
	if d := rp.Access(1001, b, 100); d != Load {
		t.Fatalf("hot candidate not loaded over idle victim: %v", d)
	}
	if rp.Contains(a.ID) {
		t.Fatal("idle object should have been evicted")
	}
}

func TestRateProfileConservativeEviction(t *testing.T) {
	// A performing cached object must not be evicted for a candidate
	// with lower expected rate. a is hot in cache; b trickles.
	a := testObj("a", 100)
	b := testObj("b", 100)
	rp := NewRateProfile(RateProfileConfig{Capacity: 100})
	rp.Access(1, a, 100)
	rp.Access(2, a, 100) // load a
	for i := int64(3); i <= 50; i++ {
		if i%2 == 1 {
			rp.Access(i, a, 100) // keep a hot (RP stays high)
		} else {
			if d := rp.Access(i, b, 10); d != Bypass {
				t.Fatalf("t=%d: low-rate candidate decision = %v, want bypass", i, d)
			}
		}
	}
	if !rp.Contains(a.ID) {
		t.Fatal("hot object was evicted by a cold candidate")
	}
}

func TestRateProfileMultiVictim(t *testing.T) {
	// Loading a large object may require evicting several small ones;
	// all victims must have RP below the candidate LAR.
	s1, s2 := testObj("s1", 50), testObj("s2", 50)
	big := testObj("big", 100)
	rp := NewRateProfile(RateProfileConfig{Capacity: 100})
	// Load both small objects.
	rp.Access(1, s1, 50)
	rp.Access(2, s1, 50) // load s1
	rp.Access(3, s2, 50)
	rp.Access(4, s2, 50) // load s2
	if rp.Used() != 100 {
		t.Fatalf("used = %d, want 100", rp.Used())
	}
	// Let both go idle, then burst on big.
	rp.Access(500, big, 100)
	d := rp.Access(501, big, 100)
	if d != Load {
		t.Fatalf("decision = %v, want load after burst", d)
	}
	if rp.Contains(s1.ID) || rp.Contains(s2.ID) || !rp.Contains(big.ID) {
		t.Fatal("expected both small objects evicted for the big one")
	}
	if rp.Evictions() != 2 {
		t.Fatalf("evictions = %d, want 2", rp.Evictions())
	}
}

func TestRateProfileLoadCostIsSunk(t *testing.T) {
	// After load, the in-cache RP does not subtract the fetch cost:
	// a freshly loaded object with modest hits must not be evicted by
	// a candidate whose LAR is below its raw rate.
	a := testObj("a", 100)
	b := testObj("b", 100)
	rp := NewRateProfile(RateProfileConfig{Capacity: 100})
	rp.Access(1, a, 100)
	rp.Access(2, a, 100) // load a; sumYield=100
	rp.Access(3, a, 40)  // hit; sumYield=140
	// b: first access LAR = (30−100)/100 < 0 → bypass regardless.
	if d := rp.Access(4, b, 30); d != Bypass {
		t.Fatalf("decision = %v, want bypass", d)
	}
	// b again: LARP = 60/(1·100) − 1 < 0 → still negative LAR.
	if d := rp.Access(5, b, 30); d != Bypass {
		t.Fatalf("decision = %v, want bypass", d)
	}
	if !rp.Contains(a.ID) {
		t.Fatal("a should remain cached")
	}
}

func TestRateProfileProfileCountBounded(t *testing.T) {
	rp := NewRateProfile(RateProfileConfig{Capacity: 100, MaxProfiles: 32})
	r := rand.New(rand.NewSource(3))
	for i := int64(1); i <= 5000; i++ {
		id := ObjectID(string(rune('A'+r.Intn(26))) + string(rune('A'+r.Intn(26))) + string(rune('A'+r.Intn(26))))
		obj := Object{ID: id, Size: 1000, FetchCost: 1000}
		rp.Access(i, obj, int64(r.Intn(1000)))
	}
	if rp.ProfileCount() > 32 {
		t.Fatalf("profile count %d exceeds bound 32", rp.ProfileCount())
	}
}

func TestRateProfileBeatsNoCacheOnSkewedWorkload(t *testing.T) {
	// End-to-end sanity: on a workload with heavy reuse of one object,
	// Rate-Profile must cut WAN traffic well below the sequence cost.
	hot := testObj("hot", 1000)
	cold1, cold2 := testObj("c1", 1000), testObj("c2", 1000)
	r := rand.New(rand.NewSource(9))
	var reqs []Request
	for i := int64(1); i <= 2000; i++ {
		var acc Access
		switch {
		case r.Float64() < 0.8:
			acc = Access{hot.ID, 500 + int64(r.Intn(500))}
		case r.Float64() < 0.5:
			acc = Access{cold1.ID, int64(r.Intn(100))}
		default:
			acc = Access{cold2.ID, int64(r.Intn(100))}
		}
		reqs = append(reqs, Request{Seq: i, Accesses: []Access{acc}})
	}
	objs := objMap(hot, cold1, cold2)

	run := func(p Policy) int64 {
		sim := &Simulator{Policy: p, Objects: objs}
		res, err := sim.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Acct.WANBytes()
	}
	rpCost := run(NewRateProfile(RateProfileConfig{Capacity: 1000}))
	seqCost := run(NewNoCache())
	if rpCost >= seqCost/5 {
		t.Fatalf("rate-profile WAN %d not ≪ sequence cost %d", rpCost, seqCost)
	}
}
