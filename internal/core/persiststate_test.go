package core

import (
	"math/rand"
	"sort"
	"testing"
)

// statefulPolicies lists the factory names whose decisions are fully
// deterministic after a restore (space-eff-by's random stream is not
// captured, so it is tested separately).
var statefulPolicies = []string{
	"rate-profile", "online-by", "online-by-marking",
	"gds", "gdsp", "lru", "lru-k", "lfu", "none",
}

// driveTrace feeds a trace segment through a policy, returning the
// decisions taken.
func driveTrace(t *testing.T, pol Policy, objs map[ObjectID]Object, reqs []Request) []Decision {
	t.Helper()
	var out []Decision
	for _, req := range reqs {
		for _, acc := range req.Accesses {
			out = append(out, pol.Access(req.Seq, objs[acc.Object], acc.Yield))
		}
	}
	return out
}

func sortedContents(pol Policy) []ObjectID {
	cl, ok := pol.(ContentLister)
	if !ok {
		return nil
	}
	ids := cl.Contents()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// persistTestUniverse builds a mixed-size object set spanning two
// sites with non-uniform fetch costs.
func persistTestUniverse() []Object {
	var objs []Object
	for i := 0; i < 12; i++ {
		size := int64(50 + 37*i)
		fetch := size
		site := "site-a"
		if i%3 == 0 {
			fetch = size * 2 // a remote, expensive site
			site = "site-b"
		}
		objs = append(objs, Object{
			ID:        ObjectID(rune('a' + i)),
			Size:      size,
			FetchCost: fetch,
			Site:      site,
		})
	}
	return objs
}

// TestStateRoundTrip drives each policy through a prefix trace,
// snapshots it, restores into a freshly constructed instance, and
// asserts both copies take identical decisions over a continuation
// trace — the property WAL replay relies on.
func TestStateRoundTrip(t *testing.T) {
	objs := persistTestUniverse()
	byID := objMap(objs...)
	const capacity = 600

	for _, name := range statefulPolicies {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			prefix := randomTrace(r, objs, 400, 1.2)
			cont := randomTrace(r, objs, 300, 1.2)
			for i := range cont {
				cont[i].Seq += 400
			}

			orig, err := NewPolicyByName(name, capacity, 1)
			if err != nil {
				t.Fatal(err)
			}
			driveTrace(t, orig, byID, prefix)

			ss, ok := orig.(StateSnapshotter)
			if !ok {
				t.Fatalf("policy %s does not implement StateSnapshotter", name)
			}
			blob := ss.SnapshotState()
			if blob == nil {
				t.Fatalf("policy %s returned nil snapshot", name)
			}

			restored, err := NewPolicyByName(name, capacity, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.(StateSnapshotter).RestoreState(blob); err != nil {
				t.Fatalf("RestoreState: %v", err)
			}

			if got, want := restored.Used(), orig.Used(); got != want {
				t.Fatalf("restored Used = %d, want %d", got, want)
			}
			if got, want := restored.Evictions(), orig.Evictions(); got != want {
				t.Fatalf("restored Evictions = %d, want %d", got, want)
			}
			gc, wc := sortedContents(restored), sortedContents(orig)
			if len(gc) != len(wc) {
				t.Fatalf("restored contents %v, want %v", gc, wc)
			}
			for i := range gc {
				if gc[i] != wc[i] {
					t.Fatalf("restored contents %v, want %v", gc, wc)
				}
			}

			d1 := driveTrace(t, orig, byID, cont)
			d2 := driveTrace(t, restored, byID, cont)
			for i := range d1 {
				if d1[i] != d2[i] {
					t.Fatalf("decision %d diverged after restore: orig %v, restored %v", i, d1[i], d2[i])
				}
			}
			if orig.Used() != restored.Used() {
				t.Fatalf("post-continuation Used diverged: orig %d, restored %d", orig.Used(), restored.Used())
			}
		})
	}
}

// TestStateRoundTripSpaceEff checks the randomized policy's restorable
// part: the subroutine cache state round-trips exactly even though the
// random stream does not.
func TestStateRoundTripSpaceEff(t *testing.T) {
	objs := persistTestUniverse()
	byID := objMap(objs...)
	orig := NewSpaceEffBY(NewLandlord(600), rand.NewSource(3))
	r := rand.New(rand.NewSource(9))
	driveTrace(t, orig, byID, randomTrace(r, objs, 500, 1.5))

	blob := orig.SnapshotState()
	if blob == nil {
		t.Fatal("nil snapshot")
	}
	restored := NewSpaceEffBY(NewLandlord(600), rand.NewSource(99))
	if err := restored.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if restored.Used() != orig.Used() {
		t.Fatalf("restored Used = %d, want %d", restored.Used(), orig.Used())
	}
	if restored.Evictions() != orig.Evictions() {
		t.Fatalf("restored Evictions = %d, want %d", restored.Evictions(), orig.Evictions())
	}
	for _, o := range objs {
		if restored.Contains(o.ID) != orig.Contains(o.ID) {
			t.Fatalf("restored Contains(%s) = %v, want %v", o.ID, restored.Contains(o.ID), orig.Contains(o.ID))
		}
	}
}

// TestRateProfileEpisodeStateSurvives asserts the episode table —
// the LAR history that makes Rate-Profile workload-driven — restores
// exactly, not just the cache contents.
func TestRateProfileEpisodeStateSurvives(t *testing.T) {
	objs := persistTestUniverse()
	byID := objMap(objs...)
	orig := NewRateProfile(RateProfileConfig{Capacity: 400})
	r := rand.New(rand.NewSource(5))
	driveTrace(t, orig, byID, randomTrace(r, objs, 600, 0.8))
	if orig.ProfileCount() == 0 {
		t.Fatal("trace produced no out-of-cache profiles; test is vacuous")
	}

	restored := NewRateProfile(RateProfileConfig{Capacity: 400})
	if err := restored.RestoreState(orig.SnapshotState()); err != nil {
		t.Fatal(err)
	}
	if restored.ProfileCount() != orig.ProfileCount() {
		t.Fatalf("restored ProfileCount = %d, want %d", restored.ProfileCount(), orig.ProfileCount())
	}
	for id, p := range orig.profiles.byID {
		q := restored.profiles.byID[id]
		if q == nil {
			t.Fatalf("profile %s missing after restore", id)
		}
		if q.open != p.open || q.started != p.started || q.start != p.start ||
			q.sumYield != p.sumYield || q.maxLARP != p.maxLARP || q.lastAccess != p.lastAccess {
			t.Fatalf("profile %s open-episode state diverged: %+v vs %+v", id, q, p)
		}
		if len(q.past) != len(p.past) {
			t.Fatalf("profile %s history length %d, want %d", id, len(q.past), len(p.past))
		}
		for i := range p.past {
			if q.past[i] != p.past[i] {
				t.Fatalf("profile %s LAR history diverged at %d", id, i)
			}
		}
	}
}

// TestRestoreStateRejectsCorrupt drives malformed blobs through every
// policy decoder: truncations, trailing garbage, bit flips, and
// configuration mismatches must return an error (never panic) and
// leave the receiver usable.
func TestRestoreStateRejectsCorrupt(t *testing.T) {
	objs := persistTestUniverse()
	byID := objMap(objs...)
	const capacity = 600

	for _, name := range statefulPolicies {
		t.Run(name, func(t *testing.T) {
			orig, _ := NewPolicyByName(name, capacity, 1)
			r := rand.New(rand.NewSource(2))
			driveTrace(t, orig, byID, randomTrace(r, objs, 300, 1.0))
			blob := orig.(StateSnapshotter).SnapshotState()

			check := func(label string, data []byte) {
				t.Helper()
				fresh, _ := NewPolicyByName(name, capacity, 1)
				if err := fresh.(StateSnapshotter).RestoreState(data); err == nil {
					t.Fatalf("%s: corrupt blob accepted", label)
				}
				// The receiver must stay usable after a rejected restore.
				fresh.Access(1, objs[0], 10)
			}

			for cut := 1; cut < len(blob); cut += 7 {
				check("truncated", blob[:cut])
			}
			check("trailing", append(append([]byte{}, blob...), 0xFF))
			check("empty", nil)
			if name != "none" {
				// A different capacity must be rejected, not adopted.
				other, _ := NewPolicyByName(name, capacity, 1)
				driveTrace(t, other, byID, randomTrace(rand.New(rand.NewSource(2)), objs, 300, 1.0))
				mismatched, _ := NewPolicyByName(name, capacity/2, 1)
				if err := mismatched.(StateSnapshotter).RestoreState(other.(StateSnapshotter).SnapshotState()); err == nil {
					t.Fatal("capacity mismatch accepted")
				}
			}
		})
	}
}
