package core

import (
	"sort"

	"bypassyield/internal/bheap"
)

// ObjAction is the outcome of presenting a whole-object request to a
// bypass-object cacher.
type ObjAction uint8

const (
	// ObjHit: the object was already cached.
	ObjHit ObjAction = iota
	// ObjLoad: the object was fetched into the cache.
	ObjLoad
	// ObjBypass: the request was served at the server; the cache is
	// unchanged.
	ObjBypass
)

// ObjectCacher is an algorithm for the bypass-object caching problem
// of Section 5.1: a request sequence of whole objects with varying
// sizes and fetch costs, where a miss may either fetch the object
// (possibly evicting others) or bypass to the server, both at cost
// f_i. OnlineBY and SpaceEffBY reduce bypass-yield caching to this
// problem and maintain their caches exactly as the subroutine (the
// paper's A_obj) does.
type ObjectCacher interface {
	// Name identifies the subroutine in reports.
	Name() string
	// Request presents a whole-object request and returns the action
	// taken.
	Request(obj Object) ObjAction
	// Contains reports whether the object is cached.
	Contains(id ObjectID) bool
	// Used reports bytes currently cached.
	Used() int64
	// Capacity reports the cache size in bytes.
	Capacity() int64
	// Evictions reports cumulative evictions.
	Evictions() int64
	// Reset restores the initial empty state.
	Reset()
}

// Landlord is Young's k-competitive cost-aware caching algorithm,
// used as the default deterministic A_obj (the abstract's
// "k-competitive deterministic algorithm"). Each cached object holds
// credit, initially its fetch cost; to make space the algorithm
// decreases every object's credit by δ·size where δ is the minimum
// credit-per-byte, and evicts objects whose credit reaches zero. A hit
// refreshes the object's credit to its fetch cost.
//
// The implementation uses the standard offset trick: credits are
// stored as credit-per-byte ratios in a min-heap and a global offset L
// rises on eviction, so the uniform decrement is O(1) and each
// operation is O(log n).
type Landlord struct {
	cap       int64
	used      int64
	offset    float64
	heap      *bheap.Heap
	evictions int64
}

// NewLandlord returns a Landlord cacher with the given capacity.
func NewLandlord(capacity int64) *Landlord {
	return &Landlord{cap: capacity, heap: bheap.New(64)}
}

// Name implements ObjectCacher.
func (l *Landlord) Name() string { return "landlord" }

// Capacity implements ObjectCacher.
func (l *Landlord) Capacity() int64 { return l.cap }

// Used implements ObjectCacher.
func (l *Landlord) Used() int64 { return l.used }

// Evictions implements ObjectCacher.
func (l *Landlord) Evictions() int64 { return l.evictions }

// Contains implements ObjectCacher.
func (l *Landlord) Contains(id ObjectID) bool { return l.heap.Contains(string(id)) }

// Contents implements core.ContentLister.
func (l *Landlord) Contents() []ObjectID {
	items := l.heap.Items()
	ids := make([]ObjectID, len(items))
	for i, it := range items {
		ids[i] = ObjectID(it.Key)
	}
	return ids
}

// Reset implements ObjectCacher.
func (l *Landlord) Reset() {
	l.used = 0
	l.offset = 0
	l.evictions = 0
	l.heap = bheap.New(64)
}

// Credit returns the effective remaining credit of a cached object
// (exposed for invariant tests); ok is false if the object is absent.
func (l *Landlord) Credit(id ObjectID) (credit float64, ok bool) {
	it := l.heap.Get(string(id))
	if it == nil {
		return 0, false
	}
	obj := it.Value.(Object)
	return (it.Utility - l.offset) * float64(obj.Size), true
}

// Request implements ObjectCacher.
func (l *Landlord) Request(obj Object) ObjAction {
	key := string(obj.ID)
	perByte := float64(obj.FetchCost) / float64(obj.Size)
	if l.heap.Contains(key) {
		// Refresh credit to the fetch cost.
		l.heap.Update(key, l.offset+perByte)
		return ObjHit
	}
	if obj.Size > l.cap {
		return ObjBypass
	}
	for l.used+obj.Size > l.cap {
		min := l.heap.PopMin()
		l.offset = min.Utility // uniform credit decrement
		victim := min.Value.(Object)
		l.used -= victim.Size
		l.evictions++
	}
	l.heap.Push(key, l.offset+perByte, obj)
	l.used += obj.Size
	return ObjLoad
}

// SizeClassMarking is an adaptation of Irani's O(lg²k)-competitive
// optional multi-size paging scheme: objects are rounded to
// power-of-two size classes and a marking algorithm runs over the
// cache. A hit marks the object. On a miss the algorithm evicts
// unmarked objects (smallest size class first) to make space; if the
// marked objects alone exceed the required residual space the request
// is bypassed, and once the bypassed fetch volume within the current
// phase exceeds the cache size a new phase begins (all marks are
// cleared).
//
// Irani's exact optional-paging construction appears in a technical
// report that is not available; this adaptation preserves its
// structural ingredients (size classes, marking phases, the option to
// bypass rather than thrash) and is offered as an alternative A_obj
// for ablation. No competitive bound is claimed for it.
type SizeClassMarking struct {
	cap         int64
	used        int64
	entries     map[ObjectID]*scmEntry
	phaseBypass int64
	evictions   int64
}

type scmEntry struct {
	obj    Object
	marked bool
	class  int
}

// NewSizeClassMarking returns a size-class marking cacher with the
// given capacity.
func NewSizeClassMarking(capacity int64) *SizeClassMarking {
	return &SizeClassMarking{cap: capacity, entries: make(map[ObjectID]*scmEntry)}
}

// Name implements ObjectCacher.
func (m *SizeClassMarking) Name() string { return "size-class-marking" }

// Capacity implements ObjectCacher.
func (m *SizeClassMarking) Capacity() int64 { return m.cap }

// Used implements ObjectCacher.
func (m *SizeClassMarking) Used() int64 { return m.used }

// Evictions implements ObjectCacher.
func (m *SizeClassMarking) Evictions() int64 { return m.evictions }

// Contains implements ObjectCacher.
func (m *SizeClassMarking) Contains(id ObjectID) bool {
	_, ok := m.entries[id]
	return ok
}

// Reset implements ObjectCacher.
func (m *SizeClassMarking) Reset() {
	m.used = 0
	m.phaseBypass = 0
	m.evictions = 0
	m.entries = make(map[ObjectID]*scmEntry)
}

func sizeClass(size int64) int {
	c := 0
	for s := int64(1); s < size; s <<= 1 {
		c++
	}
	return c
}

// Request implements ObjectCacher.
func (m *SizeClassMarking) Request(obj Object) ObjAction {
	if e, ok := m.entries[obj.ID]; ok {
		e.marked = true
		return ObjHit
	}
	if obj.Size > m.cap {
		return ObjBypass
	}
	needed := obj.Size - (m.cap - m.used)
	if needed > 0 {
		victims, freed := m.unmarkedVictims(needed)
		if freed < needed {
			// Marked objects alone exceed the residual space: bypass,
			// and advance the phase once enough fetch volume has been
			// refused.
			m.phaseBypass += obj.FetchCost
			if m.phaseBypass >= m.cap {
				m.newPhase()
			}
			return ObjBypass
		}
		for _, id := range victims {
			m.evict(id)
		}
	}
	m.entries[obj.ID] = &scmEntry{obj: obj, marked: true, class: sizeClass(obj.Size)}
	m.used += obj.Size
	return ObjLoad
}

// unmarkedVictims selects unmarked entries, smallest size class first,
// until `needed` bytes are freed.
func (m *SizeClassMarking) unmarkedVictims(needed int64) (victims []ObjectID, freed int64) {
	type cand struct {
		id    ObjectID
		class int
		size  int64
	}
	var cands []cand
	for id, e := range m.entries {
		if !e.marked {
			cands = append(cands, cand{id, e.class, e.obj.Size})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].class != cands[j].class {
			return cands[i].class < cands[j].class
		}
		return cands[i].id < cands[j].id
	})
	for _, c := range cands {
		if freed >= needed {
			break
		}
		victims = append(victims, c.id)
		freed += c.size
	}
	return victims, freed
}

func (m *SizeClassMarking) newPhase() {
	m.phaseBypass = 0
	for _, e := range m.entries {
		e.marked = false
	}
}

func (m *SizeClassMarking) evict(id ObjectID) {
	e := m.entries[id]
	delete(m.entries, id)
	m.used -= e.obj.Size
	m.evictions++
}
