package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSkiRentalBuysAfterRentsMatchCost(t *testing.T) {
	s := &SkiRental{BuyCost: 10}
	// Rent 4, 4, 4: paid reaches 8 then 12? No — the rule buys when
	// paid ≥ buy BEFORE the trip: trips pay 4, 4 (paid 8), 4 (paid
	// 12); the next trip sees paid 12 ≥ 10 → buy.
	for i := 0; i < 3; i++ {
		if s.Trip(4) {
			t.Fatalf("trip %d should rent", i)
		}
	}
	if !s.Trip(4) {
		t.Fatal("fourth trip should buy")
	}
	if !s.Bought() {
		t.Fatal("Bought() should be true")
	}
	if got := s.Cost(); got != 22 {
		t.Fatalf("total cost = %v, want 22 (12 rent + 10 buy)", got)
	}
	// All later trips are free.
	if !s.Trip(100) {
		t.Fatal("post-purchase trips should report bought")
	}
	if s.Cost() != 22 {
		t.Fatal("post-purchase trips must be free")
	}
}

func TestSkiRentalNeverBuysCheapSequence(t *testing.T) {
	s := &SkiRental{BuyCost: 1000}
	for i := 0; i < 5; i++ {
		s.Trip(1)
	}
	if s.Bought() {
		t.Fatal("should not buy for a cheap sequence")
	}
	if s.Cost() != 5 {
		t.Fatalf("cost = %v, want 5", s.Cost())
	}
}

func TestSkiRentalOPT(t *testing.T) {
	if got := SkiRentalOPT([]float64{1, 2, 3}, 10); got != 6 {
		t.Fatalf("OPT = %v, want 6 (renting)", got)
	}
	if got := SkiRentalOPT([]float64{5, 5, 5}, 10); got != 10 {
		t.Fatalf("OPT = %v, want 10 (buying)", got)
	}
}

func TestSkiRentalCompetitiveRatio(t *testing.T) {
	// Property: ALG ≤ 2·OPT + maxRent on any rent sequence. (With
	// uniform rents this is the classical 2-competitive bound; the
	// additive term covers the last, possibly overshooting, rental.)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		buy := float64(r.Intn(100) + 1)
		n := r.Intn(60)
		rents := make([]float64, n)
		maxRent := 0.0
		for i := range rents {
			rents[i] = float64(r.Intn(20) + 1)
			if rents[i] > maxRent {
				maxRent = rents[i]
			}
		}
		s := &SkiRental{BuyCost: buy}
		for _, rent := range rents {
			s.Trip(rent)
		}
		opt := SkiRentalOPT(rents, buy)
		return s.Cost() <= 2*opt+maxRent+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
