package core

// SkiRental is the classic rent-to-buy accumulator of Section 5.1,
// the building block of OnlineBY: rent (bypass) as long as the total
// paid in rental costs does not match or exceed the purchase (fetch)
// cost, then buy. With uniform rents the algorithm pays at most twice
// the offline optimum; OnlineBY runs one instance per object with
// rents equal to query yields.
type SkiRental struct {
	// BuyCost is the one-time purchase cost.
	BuyCost float64

	paid   float64
	bought bool
}

// Bought reports whether the purchase has been made.
func (s *SkiRental) Bought() bool { return s.bought }

// Paid reports the total rental cost paid so far.
func (s *SkiRental) Paid() float64 { return s.paid }

// Trip presents the next trip with the given rental cost and returns
// the action taken: true means buy (the trip and all future trips are
// free), false means rent at the given cost. Once bought, all
// subsequent trips return true at no cost.
func (s *SkiRental) Trip(rent float64) (buy bool) {
	if s.bought {
		return true
	}
	if s.paid >= s.BuyCost {
		s.bought = true
		return true
	}
	s.paid += rent
	return false
}

// Cost returns the total cost incurred so far: rents paid plus the
// purchase cost if bought.
func (s *SkiRental) Cost() float64 {
	if s.bought {
		return s.paid + s.BuyCost
	}
	return s.paid
}

// SkiRentalOPT returns the offline-optimal cost for a trip sequence
// with the given rental costs and buy cost: the cheaper of renting
// every trip and buying before the first trip.
func SkiRentalOPT(rents []float64, buyCost float64) float64 {
	var total float64
	for _, r := range rents {
		total += r
	}
	if buyCost < total {
		return buyCost
	}
	return total
}
