package core

import (
	"sync"
	"testing"
)

func TestSynchronizedConcurrentAccess(t *testing.T) {
	// Hammer a wrapped Rate-Profile from many goroutines; run with
	// -race this verifies the serialization.
	p := Synchronized(NewRateProfile(RateProfileConfig{Capacity: 1000}))
	objs := []Object{testObj("a", 300), testObj("b", 200), testObj("c", 900)}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := int64(1); i <= 500; i++ {
				o := objs[(int64(g)+i)%int64(len(objs))]
				p.Access(i, o, o.Size/2)
				p.Used()
				p.Contains(o.ID)
			}
		}(g)
	}
	wg.Wait()
	if p.Used() > p.Capacity() {
		t.Fatalf("used %d exceeds capacity", p.Used())
	}
}

func TestSynchronizedIdempotentWrap(t *testing.T) {
	p := Synchronized(NewGDS(100))
	if Synchronized(p) != p {
		t.Fatal("double wrapping should be a no-op")
	}
}

func TestSynchronizedDelegates(t *testing.T) {
	inner := NewGDS(100)
	p := Synchronized(inner)
	if p.Name() != "gds" || p.Capacity() != 100 {
		t.Fatal("delegation broken")
	}
	p.Access(1, testObj("a", 50), 10)
	if !p.Contains("a") || p.Used() != 50 {
		t.Fatal("state not visible through wrapper")
	}
	p.Reset()
	if p.Used() != 0 {
		t.Fatal("Reset not delegated")
	}
}

func TestSynchronizedContents(t *testing.T) {
	p := Synchronized(NewRateProfile(RateProfileConfig{Capacity: 1000}))
	obj := testObj("a", 100)
	p.Access(1, obj, 100)
	p.Access(2, obj, 100) // load
	cl, ok := p.(ContentLister)
	if !ok {
		t.Fatal("wrapper should expose ContentLister")
	}
	ids := cl.Contents()
	if len(ids) != 1 || ids[0] != obj.ID {
		t.Fatalf("contents = %v", ids)
	}
	// A wrapped non-lister returns nil.
	p2 := Synchronized(NewNoCache())
	if got := p2.(ContentLister).Contents(); got != nil {
		t.Fatalf("contents of no-cache = %v, want nil", got)
	}
}
