package core

import "math/rand"

// SpaceEffBY is the randomized, space-efficient bypass-yield algorithm
// of Section 5.3 (Figure 3). Instead of maintaining a per-object BYU
// accumulator like OnlineBY, it presents the object to the
// bypass-object caching subroutine A_obj with probability y/s on each
// access, simulating the same expected behaviour with O(1) extra
// space. The paper offers no competitive guarantee for it; empirically
// it trails OnlineBY, showing that some state aids the bypass
// decision.
type SpaceEffBY struct {
	aobj ObjectCacher
	rng  *rand.Rand
}

// NewSpaceEffBY returns a SpaceEffBY policy over the given subroutine,
// drawing randomness from the given source. A nil source selects a
// fixed-seed generator for reproducibility.
func NewSpaceEffBY(aobj ObjectCacher, src rand.Source) *SpaceEffBY {
	if src == nil {
		src = rand.NewSource(1)
	}
	return &SpaceEffBY{aobj: aobj, rng: rand.New(src)}
}

// Name implements Policy.
func (s *SpaceEffBY) Name() string { return "space-eff-by" }

// Used implements Policy.
func (s *SpaceEffBY) Used() int64 { return s.aobj.Used() }

// Capacity implements Policy.
func (s *SpaceEffBY) Capacity() int64 { return s.aobj.Capacity() }

// Contains implements Policy.
func (s *SpaceEffBY) Contains(id ObjectID) bool { return s.aobj.Contains(id) }

// Evictions implements Policy.
func (s *SpaceEffBY) Evictions() int64 { return s.aobj.Evictions() }

// Reset implements Policy. The random stream continues; pass a fresh
// source to NewSpaceEffBY for bitwise-identical reruns.
func (s *SpaceEffBY) Reset() { s.aobj.Reset() }

// Access implements Policy, following Figure 3 of the paper.
func (s *SpaceEffBY) Access(t int64, obj Object, yield int64) Decision {
	p := float64(yield) / float64(obj.Size)
	var action ObjAction = ObjBypass
	presented := false
	if s.rng.Float64() < p {
		action = s.aobj.Request(obj)
		presented = true
	}
	if s.aobj.Contains(obj.ID) {
		if presented && action == ObjLoad {
			return Load
		}
		return Hit
	}
	return Bypass
}
