package core

import "bypassyield/internal/bheap"

// This file implements the paper's in-line comparators: classic
// object-model caches with no bypass option. Every miss loads the
// object (unless it simply cannot fit), exactly the behaviour the
// paper blames for GDS's poor showing on scientific workloads: "GDS
// performs poorly because it caches all requests, loading columns
// (resp. tables) into the cache and generating query results in the
// cache."

// inlineCache is the shared machinery of the in-line policies: a
// utility-keyed min-heap cache where a miss always loads, evicting
// minimum-utility objects to make space.
type inlineCache struct {
	name      string
	cap       int64
	used      int64
	heap      *bheap.Heap
	evictions int64
	onEvict   func(it *bheap.Item)
}

func newInlineCache(name string, capacity int64) inlineCache {
	return inlineCache{name: name, cap: capacity, heap: bheap.New(64)}
}

// Name implements Policy.
func (c *inlineCache) Name() string { return c.name }

// Used implements Policy.
func (c *inlineCache) Used() int64 { return c.used }

// Capacity implements Policy.
func (c *inlineCache) Capacity() int64 { return c.cap }

// Contains implements Policy.
func (c *inlineCache) Contains(id ObjectID) bool { return c.heap.Contains(string(id)) }

// Evictions implements Policy.
func (c *inlineCache) Evictions() int64 { return c.evictions }

// Contents implements ContentLister.
func (c *inlineCache) Contents() []ObjectID {
	items := c.heap.Items()
	ids := make([]ObjectID, len(items))
	for i, it := range items {
		ids[i] = ObjectID(it.Key)
	}
	return ids
}

// Reset implements Policy (concrete policies with extra state wrap it).
func (c *inlineCache) Reset() {
	c.used = 0
	c.evictions = 0
	c.heap = bheap.New(64)
}

// admit loads obj with the given utility after evicting to fit. It
// reports false (forced bypass) when the object exceeds the whole
// cache.
func (c *inlineCache) admit(obj Object, utility float64) bool {
	if obj.Size > c.cap {
		return false
	}
	for c.used+obj.Size > c.cap {
		it := c.heap.PopMin()
		victim := it.Value.(Object)
		c.used -= victim.Size
		c.evictions++
		if c.onEvict != nil {
			c.onEvict(it)
		}
	}
	c.heap.Push(string(obj.ID), utility, obj)
	c.used += obj.Size
	return true
}

// GDS is Greedy-Dual-Size (Cao & Irani): on load or hit an object's
// priority is set to L + cost/size, where L is the inflation value,
// raised to the evicted priority on each eviction. The public-domain
// Squid proxy ships a variant of this policy; the paper uses it as
// the principal in-line comparator.
type GDS struct {
	inlineCache
	l float64
}

// NewGDS returns a Greedy-Dual-Size policy with the given capacity.
func NewGDS(capacity int64) *GDS {
	g := &GDS{inlineCache: newInlineCache("gds", capacity)}
	g.onEvict = func(it *bheap.Item) { g.l = it.Utility }
	return g
}

// Reset implements Policy.
func (g *GDS) Reset() {
	g.inlineCache.Reset()
	g.l = 0
}

func (g *GDS) priority(obj Object) float64 {
	return g.l + float64(obj.FetchCost)/float64(obj.Size)
}

// Access implements Policy.
func (g *GDS) Access(t int64, obj Object, yield int64) Decision {
	key := string(obj.ID)
	if g.heap.Contains(key) {
		g.heap.Update(key, g.priority(obj))
		return Hit
	}
	if !g.admit(obj, g.priority(obj)) {
		return Bypass
	}
	return Load
}

// GDSP is popularity-aware Greedy-Dual-Size (Jin & Bestavros): the
// priority becomes L + freq·cost/size with a reference count that is
// retained for every object in the reference stream, cached or not.
type GDSP struct {
	inlineCache
	l    float64
	freq map[ObjectID]int64
}

// NewGDSP returns a GDSP policy with the given capacity.
func NewGDSP(capacity int64) *GDSP {
	g := &GDSP{
		inlineCache: newInlineCache("gdsp", capacity),
		freq:        make(map[ObjectID]int64),
	}
	g.onEvict = func(it *bheap.Item) { g.l = it.Utility }
	return g
}

// Reset implements Policy.
func (g *GDSP) Reset() {
	g.inlineCache.Reset()
	g.l = 0
	g.freq = make(map[ObjectID]int64)
}

func (g *GDSP) priority(obj Object) float64 {
	return g.l + float64(g.freq[obj.ID])*float64(obj.FetchCost)/float64(obj.Size)
}

// Access implements Policy.
func (g *GDSP) Access(t int64, obj Object, yield int64) Decision {
	g.freq[obj.ID]++
	key := string(obj.ID)
	if g.heap.Contains(key) {
		g.heap.Update(key, g.priority(obj))
		return Hit
	}
	if !g.admit(obj, g.priority(obj)) {
		return Bypass
	}
	return Load
}

// LRU is least-recently-used in-line caching over variable-size
// objects: priority is the last access time.
type LRU struct {
	inlineCache
}

// NewLRU returns an LRU policy with the given capacity.
func NewLRU(capacity int64) *LRU {
	return &LRU{newInlineCache("lru", capacity)}
}

// Access implements Policy.
func (l *LRU) Access(t int64, obj Object, yield int64) Decision {
	key := string(obj.ID)
	if l.heap.Contains(key) {
		l.heap.Update(key, float64(t))
		return Hit
	}
	if !l.admit(obj, float64(t)) {
		return Bypass
	}
	return Load
}

// LFU is least-frequently-used in-line caching: priority is the
// cache-lifetime reference count.
type LFU struct {
	inlineCache
	count map[ObjectID]int64
}

// NewLFU returns an LFU policy with the given capacity.
func NewLFU(capacity int64) *LFU {
	return &LFU{
		inlineCache: newInlineCache("lfu", capacity),
		count:       make(map[ObjectID]int64),
	}
}

// Reset implements Policy.
func (l *LFU) Reset() {
	l.inlineCache.Reset()
	l.count = make(map[ObjectID]int64)
}

// Access implements Policy.
func (l *LFU) Access(t int64, obj Object, yield int64) Decision {
	key := string(obj.ID)
	if l.heap.Contains(key) {
		l.count[obj.ID]++
		l.heap.Update(key, float64(l.count[obj.ID]))
		return Hit
	}
	l.count[obj.ID] = 1
	if !l.admit(obj, 1) {
		return Bypass
	}
	return Load
}
