package core

import "testing"

func TestLRUKPrefersFrequentlyReferenced(t *testing.T) {
	// The classic LRU-K scenario: a frequently re-referenced object
	// must survive a recently touched one-off, where plain LRU would
	// evict it.
	l := NewLRUK(120, 2)
	hot, scan := testObj("hot", 60), testObj("scan", 60)
	l.Access(1, hot, 1)
	l.Access(2, hot, 1) // hot has a full 2-history
	l.Access(3, scan, 1)
	// A new object forces an eviction: scan (one reference, infinite
	// backward 2-distance) must go despite being more recent than
	// hot's 2nd reference.
	l.Access(4, testObj("new", 60), 1)
	if !l.Contains(hot.ID) {
		t.Fatal("hot object evicted despite full K-history")
	}
	if l.Contains(scan.ID) {
		t.Fatal("one-off scan object should be the victim")
	}
}

func TestLRUKHistoryRetainedAcrossEviction(t *testing.T) {
	l := NewLRUK(60, 2)
	a := testObj("a", 60)
	l.Access(1, a, 1)
	l.Access(2, a, 1)
	l.Access(3, testObj("b", 60), 1) // evicts a
	if l.Contains(a.ID) {
		t.Fatal("a should be evicted")
	}
	if len(l.hist[a.ID]) != 2 {
		t.Fatalf("history lost on eviction: %v", l.hist[a.ID])
	}
}

func TestLRUKDegradesToLRUWithK1(t *testing.T) {
	l := NewLRUK(120, 1)
	a, b, c := testObj("a", 60), testObj("b", 60), testObj("c", 60)
	l.Access(1, a, 1)
	l.Access(2, b, 1)
	l.Access(3, a, 1) // refresh a
	l.Access(4, c, 1) // LRU victim is b
	if l.Contains(b.ID) {
		t.Fatal("b should be the LRU victim at k=1")
	}
}

func TestLRUKZeroKClamped(t *testing.T) {
	l := NewLRUK(100, 0)
	if l.k != 1 {
		t.Fatalf("k = %d, want clamped to 1", l.k)
	}
}

func TestLRUKReset(t *testing.T) {
	l := NewLRUK(100, 2)
	l.Access(1, testObj("a", 50), 1)
	l.Reset()
	if l.Used() != 0 || len(l.hist) != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestLRUKOversized(t *testing.T) {
	l := NewLRUK(100, 2)
	if d := l.Access(1, testObj("big", 200), 1); d != Bypass {
		t.Fatalf("oversized = %v, want bypass", d)
	}
}
