package core

import (
	"fmt"
	"time"

	"bypassyield/internal/obs/ledger"
)

// Policy is a cache-management algorithm in the bypass-yield model.
// The simulator presents each access in trace order; the policy
// returns the decision and mutates its internal cache state
// accordingly. Implementations are single-goroutine: the simulator
// never calls a policy concurrently.
type Policy interface {
	// Name identifies the policy in reports ("rate-profile",
	// "online-by", ...).
	Name() string
	// Access presents one access at time t (the query sequence
	// number). The returned decision determines the traffic charged
	// by the simulator: Hit → 0 WAN, Bypass → obj.BypassCost(yield),
	// Load → obj.FetchCost (and the access is then served in cache).
	Access(t int64, obj Object, yield int64) Decision
	// Used reports the bytes currently occupied in the cache.
	Used() int64
	// Capacity reports the cache size in bytes.
	Capacity() int64
	// Contains reports whether the object is currently cached.
	Contains(id ObjectID) bool
	// Evictions reports the cumulative number of evictions.
	Evictions() int64
	// Reset restores the policy to its initial empty state so the
	// same instance can be reused across runs.
	Reset()
}

// ContentLister is an optional interface policies implement to expose
// their current cache contents for observability (the proxy's stats
// endpoint reports them).
type ContentLister interface {
	// Contents returns the cached object ids in unspecified order.
	Contents() []ObjectID
}

// Result is the outcome of simulating one policy over one trace.
type Result struct {
	// Policy is the policy's name.
	Policy string
	// Acct holds the aggregate flow accounting.
	Acct Accounting
	// Curve samples cumulative WAN bytes after every CurveStride
	// requests (index 0 is after the first stride). The final total
	// is always appended so Curve never under-reports.
	Curve []int64
	// CurveStride is the sampling interval, in requests.
	CurveStride int64
}

// Simulator drives a policy over a trace with full flow accounting.
type Simulator struct {
	// Policy is the algorithm under test.
	Policy Policy
	// Objects resolves accesses to object descriptors. Every access's
	// ObjectID must be present.
	Objects map[ObjectID]Object
	// CurveStride is the cumulative-cost sampling interval in
	// requests; 0 disables curve collection.
	CurveStride int64
	// Telemetry, when non-nil, publishes per-decision counts, byte
	// flows, and eviction/episode churn into an obs registry as the
	// simulation runs (see NewTelemetry).
	Telemetry *Telemetry
	// Ledger, when non-nil, receives one DecisionRecord per access
	// explaining the decision (see DecisionRecordFor).
	Ledger *ledger.Ledger
	// Shadows, when non-nil, replays every access through the
	// counterfactual baselines (see NewShadowSet); telemetry savings
	// gauges are published when Telemetry is also set.
	Shadows *ShadowSet
}

// Run simulates the trace and returns the result. The policy is NOT
// reset first; callers compose multi-trace runs by calling Run
// repeatedly or call Policy.Reset between independent runs.
func (s *Simulator) Run(reqs []Request) (*Result, error) {
	res := &Result{Policy: s.Policy.Name(), CurveStride: s.CurveStride}
	a := &res.Acct
	evBefore := s.Policy.Evictions()
	if ts, ok := s.Policy.(TelemetrySetter); ok && s.Telemetry != nil {
		ts.SetTelemetry(s.Telemetry)
	}
	if s.Shadows != nil && s.Telemetry != nil {
		s.Shadows.SetTelemetry(s.Telemetry)
	}
	for i, req := range reqs {
		a.Queries++
		for _, acc := range req.Accesses {
			obj, ok := s.Objects[acc.Object]
			if !ok {
				return nil, &UnknownObjectError{ID: acc.Object, Seq: req.Seq}
			}
			var d Decision
			if s.Telemetry != nil {
				start := time.Now()
				d = s.Policy.Access(req.Seq, obj, acc.Yield)
				s.Telemetry.ObserveDecide(time.Since(start))
			} else {
				d = s.Policy.Access(req.Seq, obj, acc.Yield)
			}
			if err := Account(a, obj, acc.Yield, d); err != nil {
				return nil, &BadDecisionError{Policy: s.Policy.Name(), Decision: d}
			}
			s.Telemetry.RecordAccess(res.Policy, obj, acc.Yield, d)
			s.Shadows.Access(req.Seq, obj, acc.Yield, d)
			if s.Ledger != nil {
				s.Ledger.Record(DecisionRecordFor(req.Seq, s.Policy, "", obj, acc.Yield, d))
			}
		}
		if s.CurveStride > 0 && int64(i+1)%s.CurveStride == 0 {
			res.Curve = append(res.Curve, a.WANBytes())
		}
	}
	if s.CurveStride > 0 && (len(res.Curve) == 0 || res.Curve[len(res.Curve)-1] != a.WANBytes()) {
		res.Curve = append(res.Curve, a.WANBytes())
	}
	a.Evictions = s.Policy.Evictions() - evBefore
	s.Telemetry.RecordEvictions(res.Policy, a.Evictions)
	return res, nil
}

// UnknownObjectError reports an access to an object absent from the
// simulator's object map.
type UnknownObjectError struct {
	ID  ObjectID
	Seq int64
}

func (e *UnknownObjectError) Error() string {
	return fmt.Sprintf("core: access at seq %d references unknown object %s", e.Seq, e.ID)
}

// BadDecisionError reports a policy returning an out-of-range decision.
type BadDecisionError struct {
	Policy   string
	Decision Decision
}

func (e *BadDecisionError) Error() string {
	return fmt.Sprintf("core: policy %s returned invalid decision %s", e.Policy, e.Decision)
}
