package core

import (
	"math/rand"
	"testing"
)

func TestLookaheadLoadsOnlyProfitableObjects(t *testing.T) {
	a := testObj("a", 100)
	b := testObj("b", 100)
	// a is accessed heavily; b only once with a small yield.
	trace := []Request{
		{Seq: 1, Accesses: []Access{{a.ID, 80}}},
		{Seq: 2, Accesses: []Access{{b.ID, 10}}},
		{Seq: 3, Accesses: []Access{{a.ID, 80}}},
		{Seq: 4, Accesses: []Access{{a.ID, 80}}},
		{Seq: 5, Accesses: []Access{{a.ID, 80}}},
	}
	la := NewLookahead(100, trace, 0)
	sim := &Simulator{Policy: la, Objects: objMap(a, b)}
	res, err := sim.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	// a loads at first access (future gain 240 > fetch 100); b's gain
	// is zero at its only access → bypass.
	if res.Acct.Loads != 1 {
		t.Fatalf("loads = %d, want 1", res.Acct.Loads)
	}
	if !la.Contains(a.ID) || la.Contains(b.ID) {
		t.Fatal("lookahead cached the wrong object")
	}
	// WAN = fetch(100) + bypass b (10) = 110.
	if res.Acct.WANBytes() != 110 {
		t.Fatalf("WAN = %d, want 110", res.Acct.WANBytes())
	}
}

func TestLookaheadEvictsForBetterFuture(t *testing.T) {
	a := testObj("a", 100)
	b := testObj("b", 100)
	// a is hot early, then dies; b takes over.
	var trace []Request
	seq := int64(0)
	add := func(id ObjectID, y int64) {
		seq++
		trace = append(trace, Request{Seq: seq, Accesses: []Access{{id, y}}})
	}
	for i := 0; i < 5; i++ {
		add(a.ID, 90)
	}
	for i := 0; i < 10; i++ {
		add(b.ID, 90)
	}
	la := NewLookahead(100, trace, 0)
	sim := &Simulator{Policy: la, Objects: objMap(a, b)}
	if _, err := sim.Run(trace); err != nil {
		t.Fatal(err)
	}
	if la.Contains(a.ID) || !la.Contains(b.ID) {
		t.Fatal("lookahead should have switched from a to b")
	}
	if la.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", la.Evictions())
	}
}

func TestLookaheadHorizonLimitsGreed(t *testing.T) {
	a := testObj("a", 100)
	// One access now, the payoff far in the future.
	trace := []Request{
		{Seq: 1, Accesses: []Access{{a.ID, 60}}},
		{Seq: 5000, Accesses: []Access{{a.ID, 60}}},
		{Seq: 5001, Accesses: []Access{{a.ID, 60}}},
	}
	// Unbounded horizon: gain at t=1 is 120 > 100 → load.
	la := NewLookahead(100, trace, 0)
	if d := la.Access(1, a, 60); d != Load {
		t.Fatalf("unbounded horizon: %v, want load", d)
	}
	// Short horizon: the payoff is invisible → bypass.
	la2 := NewLookahead(100, trace, 100)
	if d := la2.Access(1, a, 60); d != Bypass {
		t.Fatalf("bounded horizon: %v, want bypass", d)
	}
}

func TestLookaheadReset(t *testing.T) {
	a := testObj("a", 100)
	trace := []Request{
		{Seq: 1, Accesses: []Access{{a.ID, 80}}},
		{Seq: 2, Accesses: []Access{{a.ID, 80}}},
		{Seq: 3, Accesses: []Access{{a.ID, 80}}},
	}
	la := NewLookahead(100, trace, 0)
	sim := &Simulator{Policy: la, Objects: objMap(a)}
	r1, err := sim.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	la.Reset()
	r2, err := sim.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Acct != r2.Acct {
		t.Fatalf("reset run differs: %+v vs %+v", r1.Acct, r2.Acct)
	}
}

func TestLookaheadBeatsOnlinePoliciesUsually(t *testing.T) {
	// Clairvoyance should beat the on-line algorithms on random
	// traces — that is its purpose as an empirical bound.
	r := rand.New(rand.NewSource(21))
	objs := []Object{
		testObj("a", 100), testObj("b", 250), testObj("c", 40), testObj("d", 400),
	}
	trace := randomTrace(r, objs, 3000, 1.0)
	m := objMap(objs...)
	run := func(p Policy) int64 {
		sim := &Simulator{Policy: p, Objects: m}
		res, err := sim.Run(trace)
		if err != nil {
			t.Fatal(err)
		}
		return res.Acct.WANBytes()
	}
	la := run(NewLookahead(400, trace, 0))
	online := run(NewOnlineBY(NewLandlord(400)))
	if la > online {
		t.Fatalf("lookahead %d should not lose to online %d", la, online)
	}
}

func TestLookaheadOversized(t *testing.T) {
	big := testObj("big", 1000)
	trace := []Request{{Seq: 1, Accesses: []Access{{big.ID, 900}}}}
	la := NewLookahead(100, trace, 0)
	if d := la.Access(1, big, 900); d != Bypass {
		t.Fatalf("oversized = %v, want bypass", d)
	}
}
