package core

// OnlineBY is the competitive on-line bypass-yield algorithm of
// Section 5.2 (Figure 2). It runs a per-object ski-rental: every
// access adds y/s to the object's BYU accumulator; each time the
// accumulator reaches 1 — i.e. the cumulative bypassed yield matches
// the object's size, so bypass traffic has paid what a load would
// have cost — the object is presented as a whole-object request to
// the bypass-object caching subroutine A_obj, and the cache is
// maintained exactly as A_obj maintains it. Accesses to cached
// objects are hits; all other accesses are bypassed.
//
// Theorem 5.1: for every α-competitive A_obj this yields a
// (4α+2)-competitive bypass-yield algorithm; with Landlord
// (k-competitive for file caching) this is the deterministic
// algorithm referenced in the paper's abstract.
type OnlineBY struct {
	aobj ObjectCacher
	// acc accumulates yield BYTES per object; the BYU accumulator of
	// Figure 2 is acc/size. Integer bytes keep the crossings exact
	// and bit-identical to the grouped sequence of Lemma 5.1.
	acc  map[ObjectID]int64
	last Explain
}

// NewOnlineBY returns an OnlineBY policy running over the given
// bypass-object caching subroutine.
func NewOnlineBY(aobj ObjectCacher) *OnlineBY {
	return &OnlineBY{aobj: aobj, acc: make(map[ObjectID]int64)}
}

// Name implements Policy.
func (o *OnlineBY) Name() string { return "online-by" }

// Used implements Policy.
func (o *OnlineBY) Used() int64 { return o.aobj.Used() }

// Capacity implements Policy.
func (o *OnlineBY) Capacity() int64 { return o.aobj.Capacity() }

// Contains implements Policy.
func (o *OnlineBY) Contains(id ObjectID) bool { return o.aobj.Contains(id) }

// Evictions implements Policy.
func (o *OnlineBY) Evictions() int64 { return o.aobj.Evictions() }

// Reset implements Policy.
func (o *OnlineBY) Reset() {
	o.aobj.Reset()
	o.acc = make(map[ObjectID]int64)
}

// Subroutine returns the underlying A_obj (for reports and tests).
func (o *OnlineBY) Subroutine() ObjectCacher { return o.aobj }

// Contents implements ContentLister when the subroutine does.
func (o *OnlineBY) Contents() []ObjectID {
	if cl, ok := o.aobj.(ContentLister); ok {
		return cl.Contents()
	}
	return nil
}

// AccumulatedYield returns the ski-rental accumulator for an object in
// bytes; the paper's BYU accumulator is this divided by the object
// size, so it always lies in [0, size) after an access.
func (o *OnlineBY) AccumulatedYield(id ObjectID) int64 { return o.acc[id] }

// Access implements Policy, following Figure 2 of the paper. One
// generalization: when a single query's yield exceeds the object size
// the accumulator crosses 1 several times, and — matching the grouped
// sequence of Lemma 5.1, where one query may end several groups — the
// object is presented to A_obj once per crossing.
func (o *OnlineBY) Access(t int64, obj Object, yield int64) Decision {
	o.acc[obj.ID] += yield
	loaded := false
	crossed := o.acc[obj.ID] >= obj.Size
	for o.acc[obj.ID] >= obj.Size {
		o.acc[obj.ID] -= obj.Size
		if o.aobj.Request(obj) == ObjLoad {
			loaded = true
		}
	}
	// The explanation reports the post-access accumulator (in [0, 1))
	// and which ski-rental branch fired: still renting, crossed and
	// admitted, or crossed but declined by A_obj.
	o.last = Explain{BYU: float64(o.acc[obj.ID]) / float64(obj.Size)}
	if o.aobj.Contains(obj.ID) {
		if loaded {
			o.last.Reason = ReasonBYUCrossed
			return Load
		}
		o.last.Reason = ReasonInCache
		return Hit
	}
	if crossed {
		o.last.Reason = ReasonAObjDeclined
	} else {
		o.last.Reason = ReasonAccumulating
	}
	return Bypass
}

// LastExplain implements SelfExplainer: the BYU accumulator after the
// most recent access and the ski-rental branch that fired.
func (o *OnlineBY) LastExplain() Explain { return o.last }
