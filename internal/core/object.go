// Package core implements the bypass-yield caching model of Malik,
// Burns, and Chaudhary (ICDE 2005): yield-sensitive metrics (BYHR,
// BYU), the workload-driven Rate-Profile algorithm, the competitive
// OnlineBY algorithm, the randomized space-efficient SpaceEffBY
// algorithm, and the baseline policies the paper compares against
// (GDS, GDSP, LRU, LFU, static-optimal caching, and no caching).
//
// The model: a proxy cache is collocated with a federation mediator.
// Every query is decomposed into per-object accesses, each carrying a
// yield — the number of result bytes attributable to that object. For
// each access the cache decides to serve it from cache (zero WAN
// traffic), bypass it to the owning server (WAN traffic equal to the
// yield, scaled by the object's per-byte transfer cost), or load the
// object (WAN traffic equal to the fetch cost) and then serve it. The
// objective is altruistic: minimize total WAN traffic, not local
// response time.
package core

import "fmt"

// ObjectID uniquely identifies a cacheable database object within the
// federation, e.g. "edr/photoobj" for a table or "edr/photoobj.ra" for
// a column.
type ObjectID string

// Object describes a cacheable database object: a relational table, a
// column, or a materialized view.
type Object struct {
	// ID is the object's unique identifier.
	ID ObjectID
	// Size is the object's storage size in bytes (the cache space it
	// occupies when loaded).
	Size int64
	// FetchCost is the network cost, in bytes, of loading the object
	// into the cache from its home site. On uniform networks
	// FetchCost == Size (the paper's f_i = c·s_i with c = 1).
	FetchCost int64
	// Site names the federation site that owns the object.
	Site string
}

// Validate reports whether the object is well formed.
func (o Object) Validate() error {
	if o.ID == "" {
		return fmt.Errorf("core: object has empty ID")
	}
	if o.Size <= 0 {
		return fmt.Errorf("core: object %s has non-positive size %d", o.ID, o.Size)
	}
	if o.FetchCost <= 0 {
		return fmt.Errorf("core: object %s has non-positive fetch cost %d", o.ID, o.FetchCost)
	}
	return nil
}

// BypassCost returns the WAN cost, in bytes, of bypassing a query with
// the given yield against this object: c(q) = (y/s)·f per Section 5.2
// of the paper. On uniform networks (f = s) this is exactly the yield.
func (o Object) BypassCost(yield int64) int64 {
	if o.FetchCost == o.Size {
		return yield
	}
	// Scale by the object's per-byte transfer cost. Use float math:
	// yields and costs are large (bytes), so the rounding error is
	// negligible relative to the quantities involved.
	return int64(float64(yield) * float64(o.FetchCost) / float64(o.Size))
}

// Access is a single query's demand against one object: the object
// referenced and the yield (result bytes) attributable to it.
type Access struct {
	// Object identifies the referenced object.
	Object ObjectID
	// Yield is the number of result bytes the query derives from this
	// object. A yield of zero is legal (an empty result).
	Yield int64
}

// Request is one federation query after yield decomposition: the
// original SQL (if known) and the per-object accesses.
type Request struct {
	// Seq is the request's position in the trace; the paper measures
	// time in queries, so Seq is the clock.
	Seq int64
	// SQL optionally carries the originating statement.
	SQL string
	// Accesses lists the per-object demands of the query.
	Accesses []Access
}

// Decision is the outcome of presenting one access to a policy.
type Decision uint8

const (
	// Hit: the object was in cache; the access is served locally with
	// zero WAN traffic.
	Hit Decision = iota
	// Bypass: the sub-query is shipped to the owning server and only
	// the result returns; WAN traffic equals the access's bypass cost.
	Bypass
	// Load: the object is fetched into the cache (WAN traffic equals
	// the fetch cost) and the access is then served from cache.
	Load
)

// String returns the decision name.
func (d Decision) String() string {
	switch d {
	case Hit:
		return "hit"
	case Bypass:
		return "bypass"
	case Load:
		return "load"
	default:
		return fmt.Sprintf("Decision(%d)", uint8(d))
	}
}
