package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGroupSequenceSimple(t *testing.T) {
	// Object size 100; yields 40, 40, 40: one full group (40+40+20)
	// ending at the third query, 20 bytes dropped.
	a := testObj("a", 100)
	trace := singleAccessTrace(Access{a.ID, 40}, Access{a.ID, 40}, Access{a.ID, 40})
	g := GroupSequence(trace, objMap(a))
	if len(g.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(g.Groups))
	}
	grp := g.Groups[0]
	if grp.Object != a.ID || grp.EndSeq != 3 {
		t.Fatalf("group = %+v, want object a ending at seq 3", grp)
	}
	var sum int64
	for _, q := range grp.Queries {
		sum += q.Yield
	}
	if sum != a.Size {
		t.Fatalf("group yield sum = %d, want %d (Condition 7)", sum, a.Size)
	}
	// Fractional split: the third query contributes 20 to the group
	// and 20 to the open (dropped) remainder.
	if g.Dropped[a.ID] != 20 {
		t.Fatalf("dropped = %d, want 20", g.Dropped[a.ID])
	}
	if g.DroppedCost != 20 {
		t.Fatalf("dropped cost = %d, want 20 (uniform network)", g.DroppedCost)
	}
}

func TestGroupSequenceLargeYieldSpansGroups(t *testing.T) {
	// One query with yield 250 against a size-100 object completes two
	// groups and leaves 50 open.
	a := testObj("a", 100)
	trace := singleAccessTrace(Access{a.ID, 250})
	g := GroupSequence(trace, objMap(a))
	if len(g.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(g.Groups))
	}
	if g.Dropped[a.ID] != 50 {
		t.Fatalf("dropped = %d, want 50", g.Dropped[a.ID])
	}
}

func TestGroupSequenceInterleavedObjects(t *testing.T) {
	// Groups are ordered by the query at which they end, across
	// objects.
	a, b := testObj("a", 100), testObj("b", 50)
	trace := singleAccessTrace(
		Access{a.ID, 60}, // a: 60
		Access{b.ID, 50}, // b group ends at seq 2
		Access{a.ID, 40}, // a group ends at seq 3
	)
	g := GroupSequence(trace, objMap(a, b))
	seq := g.ObjectSequence()
	if len(seq) != 2 || seq[0] != b.ID || seq[1] != a.ID {
		t.Fatalf("object sequence = %v, want [b a]", seq)
	}
}

func TestGroupSequenceSkipsUnknownObjects(t *testing.T) {
	a := testObj("a", 100)
	trace := singleAccessTrace(Access{"ghost", 100}, Access{a.ID, 100})
	g := GroupSequence(trace, objMap(a))
	if len(g.Groups) != 1 || g.Groups[0].Object != a.ID {
		t.Fatalf("groups = %+v, want only a", g.Groups)
	}
}

func TestGroupSequenceScaledDroppedCost(t *testing.T) {
	// Non-uniform network: dropped cost scales by f/s.
	a := testObjCost("a", 100, 300)
	trace := singleAccessTrace(Access{a.ID, 50})
	g := GroupSequence(trace, objMap(a))
	if g.DroppedCost != 150 {
		t.Fatalf("dropped cost = %d, want 150", g.DroppedCost)
	}
}

func TestGroupingInvariants(t *testing.T) {
	// Properties over random traces:
	//  1. every group's yields sum exactly to the object size;
	//  2. group end sequences are nondecreasing;
	//  3. total yield = Σ group yields + Σ dropped;
	//  4. each object's dropped remainder is < its size.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		objs := []Object{testObj("a", 100), testObj("b", 37), testObj("c", 256)}
		trace := randomTrace(r, objs, 400, 2.5)
		m := objMap(objs...)
		g := GroupSequence(trace, m)

		var grouped int64
		prevEnd := int64(0)
		for _, grp := range g.Groups {
			var sum int64
			for _, q := range grp.Queries {
				sum += q.Yield
			}
			if sum != m[grp.Object].Size {
				return false
			}
			grouped += sum
			if grp.EndSeq < prevEnd {
				return false
			}
			prevEnd = grp.EndSeq
		}
		var dropped int64
		for id, d := range g.Dropped {
			if d <= 0 || d >= m[id].Size {
				return false
			}
			dropped += d
		}
		var total int64
		for _, req := range trace {
			for _, acc := range req.Accesses {
				total += acc.Yield
			}
		}
		return grouped+dropped == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
