package core

import (
	"math/rand"
	"testing"
)

func TestPlanStaticKnapsack(t *testing.T) {
	// A: size 6, total yield 20, fetch 6 → savings 14.
	// B: size 5, total yield 12, fetch 5 → savings 7.
	// C: size 4, total yield 10, fetch 4 → savings 6.
	// Capacity 10: optimum is {A, C} with savings 20 (A+B does not
	// fit; B+C saves only 13).
	a, b, c := testObj("a", 6), testObj("b", 5), testObj("c", 4)
	var accs []Access
	add := func(o Object, total, per int64) {
		for total > 0 {
			y := per
			if y > total {
				y = total
			}
			accs = append(accs, Access{o.ID, y})
			total -= y
		}
	}
	add(a, 20, 4)
	add(b, 12, 4)
	add(c, 10, 5)
	trace := singleAccessTrace(accs...)
	m := objMap(a, b, c)
	s := PlanStatic(10, trace, m)
	chosen := s.Chosen()
	if len(chosen) != 2 || chosen[0] != "a" || chosen[1] != "c" {
		t.Fatalf("chosen = %v, want [a c]", chosen)
	}
	if s.Used() != 10 {
		t.Fatalf("used = %d, want 10", s.Used())
	}
}

func TestPlanStaticExcludesNegativeSavings(t *testing.T) {
	// Total yield below the fetch cost: caching can only lose.
	a := testObj("a", 100)
	trace := singleAccessTrace(Access{a.ID, 30}, Access{a.ID, 40})
	s := PlanStatic(1000, trace, objMap(a))
	if len(s.Chosen()) != 0 {
		t.Fatalf("chosen = %v, want empty (yield 70 < fetch 100)", s.Chosen())
	}
}

func TestPlanStaticEmptyTrace(t *testing.T) {
	s := PlanStatic(1000, nil, objMap(testObj("a", 10)))
	if len(s.Chosen()) != 0 || s.Used() != 0 {
		t.Fatal("empty trace must choose nothing")
	}
}

func TestPlanStaticZeroCapacity(t *testing.T) {
	a := testObj("a", 10)
	trace := singleAccessTrace(Access{a.ID, 10}, Access{a.ID, 10}, Access{a.ID, 10})
	s := PlanStatic(0, trace, objMap(a))
	if len(s.Chosen()) != 0 {
		t.Fatal("zero-capacity cache must choose nothing")
	}
}

func TestStaticOptimalDecisions(t *testing.T) {
	a, b := testObj("a", 6), testObj("b", 20)
	trace := singleAccessTrace(
		Access{a.ID, 6}, Access{a.ID, 6}, Access{a.ID, 6}, Access{b.ID, 3},
	)
	s := PlanStatic(10, trace, objMap(a, b))
	if !s.Contains(a.ID) {
		t.Fatalf("a should be chosen, got %v", s.Chosen())
	}
	// Replay: first access to a loads, later ones hit; b bypasses.
	if d := s.Access(1, a, 6); d != Load {
		t.Fatalf("first access = %v, want load (lazy population)", d)
	}
	if d := s.Access(2, a, 6); d != Hit {
		t.Fatalf("second access = %v, want hit", d)
	}
	if d := s.Access(4, b, 3); d != Bypass {
		t.Fatalf("unchosen object = %v, want bypass", d)
	}
	if s.Evictions() != 0 {
		t.Fatal("static cache must never evict")
	}
}

func TestStaticOptimalResetKeepsPlan(t *testing.T) {
	a := testObj("a", 6)
	trace := singleAccessTrace(Access{a.ID, 6}, Access{a.ID, 6}, Access{a.ID, 6})
	s := PlanStatic(10, trace, objMap(a))
	s.Access(1, a, 6)
	s.Reset()
	if !s.Contains(a.ID) {
		t.Fatal("Reset must keep the plan")
	}
	if d := s.Access(1, a, 6); d != Load {
		t.Fatal("after Reset the first access loads again")
	}
}

func TestStaticOptimalNeverWorseThanNoCacheOnUniform(t *testing.T) {
	// By construction (only positive-savings objects chosen), the
	// static plan's WAN cost is at most the sequence cost.
	r := rand.New(rand.NewSource(17))
	objs := []Object{testObj("a", 100), testObj("b", 250), testObj("c", 40)}
	trace := randomTrace(r, objs, 2000, 1.0)
	m := objMap(objs...)
	run := func(p Policy) int64 {
		sim := &Simulator{Policy: p, Objects: m}
		res, err := sim.Run(trace)
		if err != nil {
			t.Fatal(err)
		}
		return res.Acct.WANBytes()
	}
	static := run(PlanStatic(300, trace, m))
	seq := run(NewNoCache())
	if static > seq {
		t.Fatalf("static cost %d exceeds sequence cost %d", static, seq)
	}
}

func TestPlanStaticDPBeatsGreedyWhenDensityMisleads(t *testing.T) {
	// Density-greedy picks the dense small object first and wastes
	// capacity; DP must find the exact optimum. Capacity 10:
	//   x: size 6, savings 12 (density 2.0)
	//   y: size 5, savings 9  (density 1.8)
	//   z: size 5, savings 9  (density 1.8)
	// Greedy takes x (used 6), cannot fit y or z → 12.
	// Optimum is {y, z} = 18.
	x, y, z := testObj("x", 6), testObj("y", 5), testObj("z", 5)
	var accs []Access
	// savings = total yield − fetch.
	add := func(o Object, totalYield int64) {
		for rem := totalYield; rem > 0; {
			step := o.Size
			if step > rem {
				step = rem
			}
			accs = append(accs, Access{o.ID, step})
			rem -= step
		}
	}
	add(x, 18) // 18 − 6 = 12
	add(y, 14) // 14 − 5 = 9
	add(z, 14)
	trace := singleAccessTrace(accs...)
	s := PlanStatic(10, trace, objMap(x, y, z))
	chosen := s.Chosen()
	if len(chosen) != 2 || chosen[0] != "y" || chosen[1] != "z" {
		t.Fatalf("chosen = %v, want [y z] (exact DP)", chosen)
	}
}
