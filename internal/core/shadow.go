package core

// Online counterfactual accounting: shadow policies fed the same
// access stream as the live policy, state-only (no I/O, no cache
// contents — just the Figure-1 flow arithmetic), answering "how much
// WAN traffic is the policy saving right now?" against the two
// baselines an operator would actually deploy instead:
//
//   - always-bypass: the no-cache configuration (the paper's sequence
//     cost D_seq) — every access ships its cost-scaled yield.
//   - lruk: in-line LRU-K (K=2) at the same capacity — the classic
//     "cache everything on miss" database buffer discipline.
//
// Alongside the baselines it maintains the ski-rental lower bound of
// Section 5.2: per object, no algorithm (even offline) can pay less
// than min(Σ bypass costs, f_i) while the cumulative demand stands,
// so Σ_i min(acc_i, f_i) lower-bounds OPT's WAN traffic and
// realizedWAN / bound is an online upper estimate of the competitive
// ratio. The bound ignores cache capacity, so the ratio is
// conservative (an actual capacity-constrained OPT may be worse than
// the bound, never better).
//
// ShadowSet is deliberately cheap: two map-backed policies and one
// accumulator map, a few microseconds per access, so it can run in
// production mediators, not just experiments.

// ShadowResult reports one baseline's counterfactual accounting.
type ShadowResult struct {
	// Name identifies the baseline ("always-bypass", "lruk").
	Name string `json:"name"`
	// Acct is the flow accounting the baseline would have produced.
	Acct Accounting `json:"acct"`
	// SavedBytes is the baseline's WAN traffic minus the realized WAN
	// traffic: positive when the live policy beats the baseline.
	SavedBytes int64 `json:"saved_bytes"`
}

type shadowEntry struct {
	name   string
	policy Policy
	acct   Accounting
}

// ShadowSet runs the counterfactual baselines and the ski-rental
// bound over the live request stream. Like the policies themselves it
// is single-goroutine (the mediator serializes accesses); a nil
// *ShadowSet is a valid no-op so call sites thread it
// unconditionally.
type ShadowSet struct {
	realized Accounting
	shadows  []*shadowEntry
	optAcc   map[ObjectID]int64 // per-object accumulated bypass cost
	optBound int64              // Σ_i min(optAcc[i], f_i)
	tel      *Telemetry

	// Last-published values: the savings gauges and competitive totals
	// are fed as deltas so several shadow sets (one per decision
	// partition) can share one telemetry and the gauges read the sum.
	pubVsBypass int64
	pubVsLRUK   int64
	pubWAN      int64
}

// NewShadowSet builds the baseline set for a live cache of the given
// capacity: always-bypass plus in-line LRU-K (K=2) at the same
// capacity.
func NewShadowSet(capacity int64) *ShadowSet {
	return &ShadowSet{
		shadows: []*shadowEntry{
			{name: "always-bypass", policy: NewNoCache()},
			{name: "lruk", policy: NewLRUK(capacity, 2)},
		},
		optAcc: make(map[ObjectID]int64),
	}
}

// SetTelemetry attaches a telemetry sink; every Access then publishes
// shadow traffic, the bound, the savings gauges, and the competitive
// ratios. Nil-safe on both sides.
func (s *ShadowSet) SetTelemetry(tel *Telemetry) {
	if s == nil {
		return
	}
	s.tel = tel
}

// Access feeds one decided access: d is the LIVE policy's decision
// (already made); the shadows replay the same (t, obj, yield) through
// their own state. Call after the live decision, once per access.
func (s *ShadowSet) Access(t int64, obj Object, yield int64, d Decision) {
	if s == nil {
		return
	}
	Account(&s.realized, obj, yield, d) //nolint:errcheck // d was validated by the live Account

	for _, e := range s.shadows {
		sd := e.policy.Access(t, obj, yield)
		Account(&e.acct, obj, yield, sd) //nolint:errcheck
		s.tel.RecordShadow(e.name, WANCost(obj, yield, sd))
	}

	// Ski-rental bound increment: min(acc+c, f) − min(acc, f).
	c := obj.BypassCost(yield)
	prev := s.optAcc[obj.ID]
	s.optAcc[obj.ID] = prev + c
	delta := minInt64(prev+c, obj.FetchCost) - minInt64(prev, obj.FetchCost)
	if delta > 0 {
		s.optBound += delta
		s.tel.RecordOptBound(delta)
	}

	if s.tel != nil {
		realizedWAN := s.realized.WANBytes()
		vsBypass := s.shadows[0].acct.WANBytes() - realizedWAN
		vsLRUK := s.shadows[1].acct.WANBytes() - realizedWAN
		s.tel.PublishSavings(vsBypass-s.pubVsBypass, vsLRUK-s.pubVsLRUK)
		s.tel.PublishCompetitive(realizedWAN-s.pubWAN, delta)
		s.pubVsBypass, s.pubVsLRUK, s.pubWAN = vsBypass, vsLRUK, realizedWAN
	}
}

// Realized returns the accounting of the live decisions as the shadow
// set observed them (zero value on a nil set).
func (s *ShadowSet) Realized() Accounting {
	if s == nil {
		return Accounting{}
	}
	return s.realized
}

// Baselines returns each baseline's counterfactual accounting and
// savings. Nil on a nil set.
func (s *ShadowSet) Baselines() []ShadowResult {
	if s == nil {
		return nil
	}
	realizedWAN := s.realized.WANBytes()
	out := make([]ShadowResult, 0, len(s.shadows))
	for _, e := range s.shadows {
		out = append(out, ShadowResult{
			Name:       e.name,
			Acct:       e.acct,
			SavedBytes: e.acct.WANBytes() - realizedWAN,
		})
	}
	return out
}

// SavedVs returns the bytes saved against one named baseline (0 for
// an unknown name or nil set).
func (s *ShadowSet) SavedVs(name string) int64 {
	for _, r := range s.Baselines() {
		if r.Name == name {
			return r.SavedBytes
		}
	}
	return 0
}

// OptBound returns the running ski-rental lower bound on any
// algorithm's WAN traffic for the observed stream.
func (s *ShadowSet) OptBound() int64 {
	if s == nil {
		return 0
	}
	return s.optBound
}

// CompetitiveRatio returns realized WAN / bound, the online upper
// estimate of the live policy's competitive ratio (0 until the bound
// is positive; always ≥ 1 afterwards, since the bound also
// lower-bounds the live policy).
func (s *ShadowSet) CompetitiveRatio() float64 {
	if s == nil || s.optBound == 0 {
		return 0
	}
	return float64(s.realized.WANBytes()) / float64(s.optBound)
}

// Reset clears all shadow state for a fresh run, retracting this
// set's contribution from the shared savings gauges and competitive
// totals.
func (s *ShadowSet) Reset() {
	if s == nil {
		return
	}
	if s.tel != nil {
		s.tel.PublishSavings(-s.pubVsBypass, -s.pubVsLRUK)
		s.tel.PublishCompetitive(-s.pubWAN, -s.optBound)
	}
	s.pubVsBypass, s.pubVsLRUK, s.pubWAN = 0, 0, 0
	s.realized = Accounting{}
	for _, e := range s.shadows {
		e.policy.Reset()
		e.acct = Accounting{}
	}
	s.optAcc = make(map[ObjectID]int64)
	s.optBound = 0
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
