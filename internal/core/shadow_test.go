package core

import (
	"math/rand"
	"testing"

	"bypassyield/internal/obs"
	"bypassyield/internal/obs/ledger"
)

func TestShadowNilIsNoOp(t *testing.T) {
	var s *ShadowSet
	s.Access(1, testObj("o1", 100), 10, Bypass) // must not panic
	s.SetTelemetry(nil)
	s.Reset()
	if s.OptBound() != 0 || s.CompetitiveRatio() != 0 || s.SavedVs("lruk") != 0 {
		t.Fatal("nil shadow set must read zero")
	}
	if s.Baselines() != nil {
		t.Fatal("nil shadow set Baselines must be nil")
	}
}

func TestShadowAlwaysBypassAccounting(t *testing.T) {
	// The always-bypass shadow's WAN must equal the sequence cost
	// (Σ cost-scaled yields) regardless of the live decisions.
	s := NewShadowSet(1000)
	o := testObj("o1", 1000)
	s.Access(1, o, 400, Bypass)
	s.Access(2, o, 600, Load)
	s.Access(3, o, 300, Hit)
	var seq int64 = 400 + 600 + 300
	b := s.Baselines()
	if b[0].Name != "always-bypass" {
		t.Fatalf("baseline[0] = %q, want always-bypass", b[0].Name)
	}
	if got := b[0].Acct.WANBytes(); got != seq {
		t.Fatalf("always-bypass WAN = %d, want sequence cost %d", got, seq)
	}
	// Savings identity: shadow WAN − realized WAN.
	realized := s.Realized().WANBytes() // 400 bypass + 1000 fetch
	if realized != 1400 {
		t.Fatalf("realized WAN = %d, want 1400", realized)
	}
	if got := s.SavedVs("always-bypass"); got != seq-realized {
		t.Fatalf("SavedVs(always-bypass) = %d, want %d", got, seq-realized)
	}
}

func TestShadowOptBoundAndRatio(t *testing.T) {
	s := NewShadowSet(10_000)
	o1 := testObj("o1", 1000)
	o2 := testObj("o2", 2000)
	// o1: bypass demand 700 < fetch → bound contribution 700.
	s.Access(1, o1, 700, Bypass)
	// o2: demand 1500+1500 = 3000 > fetch 2000 → contribution capped at 2000.
	s.Access(2, o2, 1500, Bypass)
	s.Access(3, o2, 1500, Bypass)
	if got := s.OptBound(); got != 700+2000 {
		t.Fatalf("OptBound = %d, want 2700", got)
	}
	// The bound never exceeds realized WAN, so the ratio is ≥ 1 for
	// any live decision stream (here all-bypass: realized 3700).
	if s.Realized().WANBytes() < s.OptBound() {
		t.Fatalf("bound %d exceeds realized %d", s.OptBound(), s.Realized().WANBytes())
	}
	if r := s.CompetitiveRatio(); r < 1 {
		t.Fatalf("competitive ratio = %f, want ≥ 1", r)
	}
}

func TestShadowRatioAtLeastOneUnderRandomStream(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	objs := []Object{testObj("a", 500), testObj("b", 2000), testObjCost("c", 1000, 3000)}
	live := NewRateProfile(RateProfileConfig{Capacity: 2500})
	s := NewShadowSet(2500)
	for i := 1; i <= 2000; i++ {
		o := objs[r.Intn(len(objs))]
		y := r.Int63n(o.Size + 1)
		d := live.Access(int64(i), o, y)
		s.Access(int64(i), o, y, d)
	}
	if s.OptBound() <= 0 {
		t.Fatal("bound never grew")
	}
	if got := s.CompetitiveRatio(); got < 1 {
		t.Fatalf("competitive ratio = %f, want ≥ 1", got)
	}
}

func TestShadowTelemetryGauges(t *testing.T) {
	reg := obs.NewRegistry()
	tel := NewTelemetry(reg)
	s := NewShadowSet(1000)
	s.SetTelemetry(tel)
	o := testObj("o1", 1000)
	s.Access(1, o, 400, Bypass)
	s.Access(2, o, 600, Load)
	snap := reg.Snapshot()
	wantSaved := s.SavedVs("always-bypass")
	if got := snap.GaugeValue("core.bytes_saved_vs_bypass"); got != wantSaved {
		t.Fatalf("gauge core.bytes_saved_vs_bypass = %d, want %d", got, wantSaved)
	}
	if got := snap.GaugeValue("core.bytes_saved_vs_lruk"); got != s.SavedVs("lruk") {
		t.Fatalf("gauge core.bytes_saved_vs_lruk = %d, want %d", got, s.SavedVs("lruk"))
	}
	if got := snap.CounterValue("core.optbound_bytes", ""); got != s.OptBound() {
		t.Fatalf("counter core.optbound_bytes = %d, want %d", got, s.OptBound())
	}
	if got := snap.CounterValue("core.shadow_wan_bytes", "always-bypass"); got != 1000 {
		t.Fatalf("shadow_wan_bytes{always-bypass} = %d, want 1000", got)
	}
	wantRatio := int64(s.CompetitiveRatio() * 1000)
	if got := snap.GaugeValue("core.competitive_ratio_milli"); got != wantRatio {
		t.Fatalf("competitive_ratio_milli = %d, want %d", got, wantRatio)
	}
}

func TestShadowReset(t *testing.T) {
	s := NewShadowSet(1000)
	s.Access(1, testObj("o1", 1000), 500, Bypass)
	s.Reset()
	if s.OptBound() != 0 || s.Realized().WANBytes() != 0 {
		t.Fatal("Reset did not clear shadow state")
	}
	for _, b := range s.Baselines() {
		if b.Acct.WANBytes() != 0 || b.SavedBytes != 0 {
			t.Fatalf("baseline %s not cleared: %+v", b.Name, b)
		}
	}
}

func TestSimulatorLedgerAndShadows(t *testing.T) {
	reg := obs.NewRegistry()
	led := ledger.New(1024)
	objs := []Object{testObj("a", 500), testObj("b", 2000)}
	r := rand.New(rand.NewSource(3))
	var reqs []Request
	for i := 1; i <= 300; i++ {
		o := objs[r.Intn(len(objs))]
		reqs = append(reqs, Request{Seq: int64(i), Accesses: []Access{{Object: o.ID, Yield: r.Int63n(o.Size)}}})
	}
	sim := &Simulator{
		Policy:    NewRateProfile(RateProfileConfig{Capacity: 2000}),
		Objects:   objMap(objs...),
		Telemetry: NewTelemetry(reg),
		Ledger:    led,
		Shadows:   NewShadowSet(2000),
	}
	res, err := sim.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	recs := led.Snapshot()
	if uint64(len(recs)) != uint64(res.Acct.Accesses) {
		t.Fatalf("ledger has %d records, want one per access (%d)", len(recs), res.Acct.Accesses)
	}
	// Per-decision realized yields sum to D_A (uniform network).
	var sumYield, sumWAN int64
	for _, rec := range recs {
		sumYield += rec.Yield
		sumWAN += rec.WANCost
		if rec.Policy != "rate-profile" || rec.Reason == "" {
			t.Fatalf("record missing explanation: %+v", rec)
		}
	}
	if sumYield != res.Acct.DeliveredBytes() {
		t.Fatalf("Σ ledger yields = %d, want D_A = %d", sumYield, res.Acct.DeliveredBytes())
	}
	if sumWAN != res.Acct.WANBytes() {
		t.Fatalf("Σ ledger WAN costs = %d, want %d", sumWAN, res.Acct.WANBytes())
	}
	// Shadow identity: always-bypass WAN − realized WAN == exported gauge.
	snap := reg.Snapshot()
	wantSaved := sim.Shadows.SavedVs("always-bypass")
	if got := snap.GaugeValue("core.bytes_saved_vs_bypass"); got != wantSaved {
		t.Fatalf("gauge = %d, want %d", got, wantSaved)
	}
	// The shadow set sees accesses, not queries or evictions; the flow
	// fields must agree exactly with the simulator's accounting.
	wantAcct := res.Acct
	wantAcct.Queries = 0
	wantAcct.Evictions = 0
	if sim.Shadows.Realized() != wantAcct {
		t.Fatalf("shadow realized accounting diverged:\n %+v\nvs %+v", sim.Shadows.Realized(), wantAcct)
	}
	// Decision latency histogram observed once per access.
	h, ok := snap.HistogramSnap("core.decide_seconds", "")
	if !ok || h.Count != res.Acct.Accesses {
		t.Fatalf("decide_seconds count = %+v (ok=%v), want %d observations", h, ok, res.Acct.Accesses)
	}
}

func TestRateProfileExplain(t *testing.T) {
	p := NewRateProfile(RateProfileConfig{Capacity: 1000})
	big := testObj("big", 5000)
	if d := p.Access(1, big, 100); d != Bypass {
		t.Fatalf("oversize access = %v, want Bypass", d)
	}
	if ex := p.LastExplain(); ex.Reason != ReasonOversize || ex.EpisodePhase != "open" {
		t.Fatalf("oversize explain = %+v", ex)
	}

	o := testObj("o1", 500)
	// First access: LAR ≤ 0 (load penalty not overcome) → bypass.
	if d := p.Access(2, o, 100); d != Bypass {
		t.Fatalf("cold access = %v, want Bypass", d)
	}
	if ex := p.LastExplain(); ex.Reason != ReasonLARNonpositive || ex.LAR > 0 {
		t.Fatalf("cold explain = %+v", ex)
	}
	// Hammer it until LAR turns positive, then it loads into free space.
	var loaded bool
	for i := int64(3); i <= 20; i++ {
		if p.Access(i, o, 500) == Load {
			loaded = true
			break
		}
	}
	if !loaded {
		t.Fatal("object never loaded")
	}
	if ex := p.LastExplain(); ex.Reason != ReasonFitsFree || ex.LAR <= 0 {
		t.Fatalf("load explain = %+v", ex)
	}
	// Next access is a hit with its RP.
	if d := p.Access(21, o, 100); d != Hit {
		t.Fatalf("post-load access = %v, want Hit", d)
	}
	if ex := p.LastExplain(); ex.Reason != ReasonInCache || ex.RP <= 0 {
		t.Fatalf("hit explain = %+v", ex)
	}

	// A competing object that would need an eviction but whose LAR
	// loses to the resident's RP: victims-save-more.
	o2 := testObj("o2", 600)
	if d := p.Access(22, o2, 1); d != Bypass {
		t.Fatalf("weak challenger = %v, want Bypass", d)
	}
	if ex := p.LastExplain(); ex.Reason != ReasonVictimsSaveMore || ex.VictimRP <= 0 {
		t.Fatalf("challenger explain = %+v", ex)
	}
}

func TestOnlineBYExplain(t *testing.T) {
	p := NewOnlineBY(NewLandlord(10_000))
	o := testObj("o1", 1000)
	if d := p.Access(1, o, 400); d != Bypass {
		t.Fatalf("first access = %v, want Bypass", d)
	}
	ex := p.LastExplain()
	if ex.Reason != ReasonAccumulating || !almostEqual(ex.BYU, 0.4) {
		t.Fatalf("accumulating explain = %+v", ex)
	}
	// Crossing: 400+700 = 1100 ≥ 1000 → present to A_obj, load.
	if d := p.Access(2, o, 700); d != Load {
		t.Fatalf("crossing access = %v, want Load", d)
	}
	ex = p.LastExplain()
	if ex.Reason != ReasonBYUCrossed || !almostEqual(ex.BYU, 0.1) {
		t.Fatalf("crossed explain = %+v", ex)
	}
	if d := p.Access(3, o, 100); d != Hit {
		t.Fatalf("cached access = %v, want Hit", d)
	}
	if ex = p.LastExplain(); ex.Reason != ReasonInCache {
		t.Fatalf("hit explain = %+v", ex)
	}
}

func TestDecisionRecordForNilPolicy(t *testing.T) {
	o := testObjCost("o1", 1000, 2000)
	rec := DecisionRecordFor(7, nil, "abcd", o, 500, Bypass)
	if rec.Policy != "" || rec.T != 7 || rec.Trace != "abcd" {
		t.Fatalf("record = %+v", rec)
	}
	if rec.WANCost != o.BypassCost(500) {
		t.Fatalf("WANCost = %d, want %d", rec.WANCost, o.BypassCost(500))
	}
	if WANCost(o, 500, Hit) != 0 || WANCost(o, 500, Load) != 2000 {
		t.Fatal("WANCost flow rules broken")
	}
}
