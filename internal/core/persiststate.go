package core

// Crash-safe state serialization for the cache policies (see
// internal/persist). Every factory-constructible policy implements
// StateSnapshotter with a compact versioned binary encoding: varint
// integers, fixed 8-byte floats, length-prefixed strings. The blobs
// are self-delimiting and strictly validated on decode — truncated,
// over-long, duplicated, or capacity-inconsistent input returns an
// error and leaves the receiver unchanged, never panics (the persist
// fuzz targets drive arbitrary bytes through RestoreState).
//
// A snapshot captures the policy's full decision state, so a restored
// policy replays the same deterministic decisions as the original
// (SpaceEffBY excepted: its random stream is not captured — see its
// method comments). Restore requires a receiver constructed with the
// same configuration (capacity, subroutine, K) as the snapshotted
// policy; mismatches are rejected rather than silently adopted so a
// changed CLI flag falls back to a cold start instead of a cache that
// violates its own bounds.

import (
	"encoding/binary"
	"fmt"
	"math"

	"bypassyield/internal/bheap"
)

// StateSnapshotter is implemented by policies (and bypass-object
// subroutines) whose full decision state can be serialized for
// crash-safe persistence and restored into a freshly constructed
// instance. SnapshotState returns nil when the instance cannot be
// snapshotted (e.g. OnlineBY over a foreign subroutine); RestoreState
// validates the blob completely before mutating the receiver.
type StateSnapshotter interface {
	SnapshotState() []byte
	RestoreState(data []byte) error
}

// Per-type blob versions. Bump on any encoding change; decoders
// reject versions they do not understand so an old binary never
// misreads a new blob.
const (
	rpStateVersion     = 1
	llStateVersion     = 1
	scmStateVersion    = 1
	onlineStateVersion = 1
	spaceStateVersion  = 1
	lruStateVersion    = 1
	lfuStateVersion    = 1
	gdsStateVersion    = 1
	gdspStateVersion   = 1
	lrukStateVersion   = 1
	noneStateVersion   = 1
)

// stateEnc builds a state blob.
type stateEnc struct{ b []byte }

func (e *stateEnc) u8(v uint8)    { e.b = append(e.b, v) }
func (e *stateEnc) i64(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *stateEnc) u64(v uint64)  { e.b = binary.AppendUvarint(e.b, v) }
func (e *stateEnc) f64(v float64) { e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v)) }
func (e *stateEnc) str(s string)  { e.u64(uint64(len(s))); e.b = append(e.b, s...) }
func (e *stateEnc) bytes(p []byte) {
	e.u64(uint64(len(p)))
	e.b = append(e.b, p...)
}
func (e *stateEnc) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *stateEnc) object(o Object) {
	e.str(string(o.ID))
	e.i64(o.Size)
	e.i64(o.FetchCost)
	e.str(o.Site)
}

// stateDec consumes a state blob with error latching: after the first
// failure every accessor returns the zero value and the error
// surfaces once through done().
type stateDec struct {
	b   []byte
	err error
}

func (d *stateDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *stateDec) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail("core: truncated state blob (u8)")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *stateDec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("core: truncated state blob (varint)")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *stateDec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("core: truncated state blob (uvarint)")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *stateDec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("core: truncated state blob (f64)")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *stateDec) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail("core: state string length %d exceeds remaining %d bytes", n, len(d.b))
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *stateDec) bytes() []byte {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail("core: state blob length %d exceeds remaining %d bytes", n, len(d.b))
		return nil
	}
	p := d.b[:n]
	d.b = d.b[n:]
	return p
}

func (d *stateDec) boolean() bool { return d.u8() != 0 }

func (d *stateDec) object() Object {
	return Object{
		ID:        ObjectID(d.str()),
		Size:      d.i64(),
		FetchCost: d.i64(),
		Site:      d.str(),
	}
}

// count reads a collection length, bounding it by the remaining bytes
// (every element costs at least one byte) so hostile lengths are
// rejected before allocation.
func (d *stateDec) count() int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)) {
		d.fail("core: state collection length %d exceeds remaining %d bytes", n, len(d.b))
		return 0
	}
	return int(n)
}

func (d *stateDec) version(want uint8, what string) {
	if v := d.u8(); d.err == nil && v != want {
		d.fail("core: %s state version %d, want %d", what, v, want)
	}
}

func (d *stateDec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("core: %d trailing bytes in state blob", len(d.b))
	}
	return nil
}

// validObject rejects malformed objects in hostile blobs; on failure
// the decoder is poisoned and the caller's done() surfaces the error.
func (d *stateDec) validObject() Object {
	obj := d.object()
	if d.err == nil {
		if err := obj.Validate(); err != nil {
			d.fail("core: invalid object in state blob: %v", err)
		}
	}
	return obj
}

// ---- Rate-Profile ----

// SnapshotState implements StateSnapshotter: the cached entries with
// their rate-profile accumulators, plus the full out-of-cache episode
// table (open-episode state and completed-episode LAR history).
func (r *RateProfile) SnapshotState() []byte {
	var e stateEnc
	e.u8(rpStateVersion)
	e.i64(r.cfg.Capacity)
	e.i64(r.evictions)
	e.u64(uint64(len(r.entries)))
	for _, ent := range r.entries {
		e.object(ent.obj)
		e.i64(ent.loadTime)
		e.i64(ent.sumYield)
	}
	e.u64(uint64(len(r.profiles.byID)))
	for id, p := range r.profiles.byID {
		e.str(string(id))
		e.boolean(p.open)
		e.boolean(p.started)
		e.i64(p.start)
		e.i64(p.sumYield)
		e.f64(p.maxLARP)
		e.i64(p.lastAccess)
		e.u64(uint64(len(p.past)))
		for _, v := range p.past {
			e.f64(v)
		}
	}
	return e.b
}

// RestoreState implements StateSnapshotter. The receiver must be
// configured with the snapshot's capacity.
func (r *RateProfile) RestoreState(data []byte) error {
	d := stateDec{b: data}
	d.version(rpStateVersion, "rate-profile")
	capacity := d.i64()
	if d.err == nil && capacity != r.cfg.Capacity {
		return fmt.Errorf("core: rate-profile snapshot capacity %d, configured %d", capacity, r.cfg.Capacity)
	}
	evictions := d.i64()
	entries := make(map[ObjectID]*rpEntry)
	var used int64
	for i, n := 0, d.count(); i < n && d.err == nil; i++ {
		obj := d.validObject()
		ent := &rpEntry{obj: obj, loadTime: d.i64(), sumYield: d.i64()}
		if d.err != nil {
			break
		}
		if _, dup := entries[obj.ID]; dup {
			return fmt.Errorf("core: duplicate cached object %s in rate-profile state", obj.ID)
		}
		entries[obj.ID] = ent
		used += obj.Size
	}
	byID := make(map[ObjectID]*profile)
	for i, n := 0, d.count(); i < n && d.err == nil; i++ {
		id := ObjectID(d.str())
		p := &profile{
			open:       d.boolean(),
			started:    d.boolean(),
			start:      d.i64(),
			sumYield:   d.i64(),
			maxLARP:    d.f64(),
			lastAccess: d.i64(),
		}
		m := d.count()
		for j := 0; j < m && d.err == nil; j++ {
			p.past = append(p.past, d.f64())
		}
		if d.err != nil {
			break
		}
		byID[id] = p
	}
	if err := d.done(); err != nil {
		return err
	}
	if used > r.cfg.Capacity {
		return fmt.Errorf("core: rate-profile snapshot uses %d bytes over capacity %d", used, r.cfg.Capacity)
	}
	r.entries = entries
	r.used = used
	r.evictions = evictions
	r.profiles.byID = byID
	r.last = Explain{}
	return nil
}

// ---- Landlord ----

// SnapshotState implements StateSnapshotter: the credit heap (as
// offset-absolute utilities) and the global offset, preserving every
// cached object's effective credit exactly.
func (l *Landlord) SnapshotState() []byte {
	var e stateEnc
	e.u8(llStateVersion)
	e.i64(l.cap)
	e.f64(l.offset)
	e.i64(l.evictions)
	items := l.heap.Items()
	e.u64(uint64(len(items)))
	for _, it := range items {
		e.object(it.Value.(Object))
		e.f64(it.Utility)
	}
	return e.b
}

// RestoreState implements StateSnapshotter.
func (l *Landlord) RestoreState(data []byte) error {
	d := stateDec{b: data}
	d.version(llStateVersion, "landlord")
	capacity := d.i64()
	if d.err == nil && capacity != l.cap {
		return fmt.Errorf("core: landlord snapshot capacity %d, configured %d", capacity, l.cap)
	}
	offset := d.f64()
	if d.err == nil && math.IsNaN(offset) {
		return fmt.Errorf("core: landlord snapshot has NaN offset")
	}
	evictions := d.i64()
	heap := bheap.New(64)
	var used int64
	for i, n := 0, d.count(); i < n && d.err == nil; i++ {
		obj := d.validObject()
		u := d.f64()
		if d.err != nil {
			break
		}
		if math.IsNaN(u) {
			return fmt.Errorf("core: landlord snapshot has NaN credit for %s", obj.ID)
		}
		if _, err := heap.Push(string(obj.ID), u, obj); err != nil {
			return fmt.Errorf("core: landlord snapshot: %v", err)
		}
		used += obj.Size
	}
	if err := d.done(); err != nil {
		return err
	}
	if used > l.cap {
		return fmt.Errorf("core: landlord snapshot uses %d bytes over capacity %d", used, l.cap)
	}
	l.heap = heap
	l.used = used
	l.offset = offset
	l.evictions = evictions
	return nil
}

// ---- SizeClassMarking ----

// SnapshotState implements StateSnapshotter: the cached entries with
// their marks plus the phase's refused-fetch accumulator (size classes
// are recomputed from object sizes).
func (m *SizeClassMarking) SnapshotState() []byte {
	var e stateEnc
	e.u8(scmStateVersion)
	e.i64(m.cap)
	e.i64(m.phaseBypass)
	e.i64(m.evictions)
	e.u64(uint64(len(m.entries)))
	for _, ent := range m.entries {
		e.object(ent.obj)
		e.boolean(ent.marked)
	}
	return e.b
}

// RestoreState implements StateSnapshotter.
func (m *SizeClassMarking) RestoreState(data []byte) error {
	d := stateDec{b: data}
	d.version(scmStateVersion, "size-class-marking")
	capacity := d.i64()
	if d.err == nil && capacity != m.cap {
		return fmt.Errorf("core: size-class-marking snapshot capacity %d, configured %d", capacity, m.cap)
	}
	phaseBypass := d.i64()
	evictions := d.i64()
	entries := make(map[ObjectID]*scmEntry)
	var used int64
	for i, n := 0, d.count(); i < n && d.err == nil; i++ {
		obj := d.validObject()
		marked := d.boolean()
		if d.err != nil {
			break
		}
		if _, dup := entries[obj.ID]; dup {
			return fmt.Errorf("core: duplicate cached object %s in size-class-marking state", obj.ID)
		}
		entries[obj.ID] = &scmEntry{obj: obj, marked: marked, class: sizeClass(obj.Size)}
		used += obj.Size
	}
	if err := d.done(); err != nil {
		return err
	}
	if used > m.cap {
		return fmt.Errorf("core: size-class-marking snapshot uses %d bytes over capacity %d", used, m.cap)
	}
	m.entries = entries
	m.used = used
	m.phaseBypass = phaseBypass
	m.evictions = evictions
	return nil
}

// ---- OnlineBY ----

// SnapshotState implements StateSnapshotter: the per-object BYU
// accumulators plus the subroutine's own state blob. Returns nil when
// the subroutine does not implement StateSnapshotter.
func (o *OnlineBY) SnapshotState() []byte {
	ss, ok := o.aobj.(StateSnapshotter)
	if !ok {
		return nil
	}
	sub := ss.SnapshotState()
	if sub == nil {
		return nil
	}
	var e stateEnc
	e.u8(onlineStateVersion)
	e.str(o.aobj.Name())
	e.bytes(sub)
	e.u64(uint64(len(o.acc)))
	for id, v := range o.acc {
		e.str(string(id))
		e.i64(v)
	}
	return e.b
}

// RestoreState implements StateSnapshotter. The receiver must run the
// same subroutine the snapshot was taken over.
func (o *OnlineBY) RestoreState(data []byte) error {
	ss, ok := o.aobj.(StateSnapshotter)
	if !ok {
		return fmt.Errorf("core: online-by subroutine %s cannot restore state", o.aobj.Name())
	}
	d := stateDec{b: data}
	d.version(onlineStateVersion, "online-by")
	name := d.str()
	if d.err == nil && name != o.aobj.Name() {
		return fmt.Errorf("core: online-by snapshot over subroutine %q, configured %q", name, o.aobj.Name())
	}
	sub := d.bytes()
	acc := make(map[ObjectID]int64)
	for i, n := 0, d.count(); i < n && d.err == nil; i++ {
		id := ObjectID(d.str())
		acc[id] = d.i64()
	}
	if err := d.done(); err != nil {
		return err
	}
	if err := ss.RestoreState(sub); err != nil {
		return err
	}
	o.acc = acc
	o.last = Explain{}
	return nil
}

// ---- SpaceEffBY ----

// SnapshotState implements StateSnapshotter for the randomized
// algorithm's deterministic part: the subroutine's cache state. The
// random stream is NOT captured — after a restore the policy draws
// from its current generator, so decisions are statistically
// equivalent but not bitwise identical to the uninterrupted run
// (persist counts any divergence during WAL replay).
func (s *SpaceEffBY) SnapshotState() []byte {
	ss, ok := s.aobj.(StateSnapshotter)
	if !ok {
		return nil
	}
	sub := ss.SnapshotState()
	if sub == nil {
		return nil
	}
	var e stateEnc
	e.u8(spaceStateVersion)
	e.str(s.aobj.Name())
	e.bytes(sub)
	return e.b
}

// RestoreState implements StateSnapshotter.
func (s *SpaceEffBY) RestoreState(data []byte) error {
	ss, ok := s.aobj.(StateSnapshotter)
	if !ok {
		return fmt.Errorf("core: space-eff-by subroutine %s cannot restore state", s.aobj.Name())
	}
	d := stateDec{b: data}
	d.version(spaceStateVersion, "space-eff-by")
	name := d.str()
	if d.err == nil && name != s.aobj.Name() {
		return fmt.Errorf("core: space-eff-by snapshot over subroutine %q, configured %q", name, s.aobj.Name())
	}
	sub := d.bytes()
	if err := d.done(); err != nil {
		return err
	}
	return ss.RestoreState(sub)
}

// ---- in-line policies (shared heap machinery) ----

// encodeState appends the shared in-line cache state (heap items with
// their priorities) to e.
func (c *inlineCache) encodeState(e *stateEnc) {
	e.i64(c.cap)
	e.i64(c.evictions)
	items := c.heap.Items()
	e.u64(uint64(len(items)))
	for _, it := range items {
		e.object(it.Value.(Object))
		e.f64(it.Utility)
	}
}

// decodeState replaces the shared in-line cache state from d (onEvict
// hooks are preserved). The caller finishes with d.done().
func (c *inlineCache) decodeState(d *stateDec) error {
	capacity := d.i64()
	if d.err == nil && capacity != c.cap {
		return fmt.Errorf("core: %s snapshot capacity %d, configured %d", c.name, capacity, c.cap)
	}
	evictions := d.i64()
	heap := bheap.New(64)
	var used int64
	for i, n := 0, d.count(); i < n && d.err == nil; i++ {
		obj := d.validObject()
		u := d.f64()
		if d.err != nil {
			break
		}
		if math.IsNaN(u) {
			return fmt.Errorf("core: %s snapshot has NaN priority for %s", c.name, obj.ID)
		}
		if _, err := heap.Push(string(obj.ID), u, obj); err != nil {
			return fmt.Errorf("core: %s snapshot: %v", c.name, err)
		}
		used += obj.Size
	}
	if d.err != nil {
		return d.err
	}
	if used > c.cap {
		return fmt.Errorf("core: %s snapshot uses %d bytes over capacity %d", c.name, used, c.cap)
	}
	c.heap = heap
	c.used = used
	c.evictions = evictions
	return nil
}

// SnapshotState implements StateSnapshotter.
func (l *LRU) SnapshotState() []byte {
	var e stateEnc
	e.u8(lruStateVersion)
	l.encodeState(&e)
	return e.b
}

// RestoreState implements StateSnapshotter.
func (l *LRU) RestoreState(data []byte) error {
	d := stateDec{b: data}
	d.version(lruStateVersion, "lru")
	if err := l.decodeState(&d); err != nil {
		return err
	}
	return d.done()
}

// SnapshotState implements StateSnapshotter.
func (l *LFU) SnapshotState() []byte {
	var e stateEnc
	e.u8(lfuStateVersion)
	l.encodeState(&e)
	e.u64(uint64(len(l.count)))
	for id, v := range l.count {
		e.str(string(id))
		e.i64(v)
	}
	return e.b
}

// RestoreState implements StateSnapshotter.
func (l *LFU) RestoreState(data []byte) error {
	d := stateDec{b: data}
	d.version(lfuStateVersion, "lfu")
	// Decode the heap into a scratch copy first so a failure later in
	// the blob leaves the receiver untouched.
	scratch := l.inlineCache
	if err := scratch.decodeState(&d); err != nil {
		return err
	}
	count := make(map[ObjectID]int64)
	for i, n := 0, d.count(); i < n && d.err == nil; i++ {
		id := ObjectID(d.str())
		count[id] = d.i64()
	}
	if err := d.done(); err != nil {
		return err
	}
	l.inlineCache = scratch
	l.count = count
	return nil
}

// SnapshotState implements StateSnapshotter.
func (g *GDS) SnapshotState() []byte {
	var e stateEnc
	e.u8(gdsStateVersion)
	g.encodeState(&e)
	e.f64(g.l)
	return e.b
}

// RestoreState implements StateSnapshotter.
func (g *GDS) RestoreState(data []byte) error {
	d := stateDec{b: data}
	d.version(gdsStateVersion, "gds")
	scratch := g.inlineCache
	if err := scratch.decodeState(&d); err != nil {
		return err
	}
	inflation := d.f64()
	if err := d.done(); err != nil {
		return err
	}
	if math.IsNaN(inflation) {
		return fmt.Errorf("core: gds snapshot has NaN inflation value")
	}
	g.inlineCache = scratch
	g.l = inflation
	return nil
}

// SnapshotState implements StateSnapshotter.
func (g *GDSP) SnapshotState() []byte {
	var e stateEnc
	e.u8(gdspStateVersion)
	g.encodeState(&e)
	e.f64(g.l)
	e.u64(uint64(len(g.freq)))
	for id, v := range g.freq {
		e.str(string(id))
		e.i64(v)
	}
	return e.b
}

// RestoreState implements StateSnapshotter.
func (g *GDSP) RestoreState(data []byte) error {
	d := stateDec{b: data}
	d.version(gdspStateVersion, "gdsp")
	scratch := g.inlineCache
	if err := scratch.decodeState(&d); err != nil {
		return err
	}
	inflation := d.f64()
	if d.err == nil && math.IsNaN(inflation) {
		return fmt.Errorf("core: gdsp snapshot has NaN inflation value")
	}
	freq := make(map[ObjectID]int64)
	for i, n := 0, d.count(); i < n && d.err == nil; i++ {
		id := ObjectID(d.str())
		freq[id] = d.i64()
	}
	if err := d.done(); err != nil {
		return err
	}
	g.inlineCache = scratch
	g.l = inflation
	g.freq = freq
	return nil
}

// SnapshotState implements StateSnapshotter: the heap plus the full
// per-object reference history (retained for uncached objects too, as
// LRU-K specifies).
func (l *LRUK) SnapshotState() []byte {
	var e stateEnc
	e.u8(lrukStateVersion)
	e.i64(int64(l.k))
	l.encodeState(&e)
	e.u64(uint64(len(l.hist)))
	for id, h := range l.hist {
		e.str(string(id))
		e.u64(uint64(len(h)))
		for _, t := range h {
			e.i64(t)
		}
	}
	return e.b
}

// RestoreState implements StateSnapshotter. The receiver must be
// configured with the snapshot's K.
func (l *LRUK) RestoreState(data []byte) error {
	d := stateDec{b: data}
	d.version(lrukStateVersion, "lru-k")
	k := d.i64()
	if d.err == nil && int(k) != l.k {
		return fmt.Errorf("core: lru-k snapshot K=%d, configured K=%d", k, l.k)
	}
	scratch := l.inlineCache
	if err := scratch.decodeState(&d); err != nil {
		return err
	}
	hist := make(map[ObjectID][]int64)
	for i, n := 0, d.count(); i < n && d.err == nil; i++ {
		id := ObjectID(d.str())
		m := d.count()
		if d.err == nil && m > l.k {
			return fmt.Errorf("core: lru-k snapshot history for %s has %d entries, K=%d", id, m, l.k)
		}
		h := make([]int64, 0, m)
		for j := 0; j < m && d.err == nil; j++ {
			h = append(h, d.i64())
		}
		if d.err != nil {
			break
		}
		hist[id] = h
	}
	if err := d.done(); err != nil {
		return err
	}
	l.inlineCache = scratch
	l.hist = hist
	return nil
}

// ---- NoCache ----

// SnapshotState implements StateSnapshotter (the baseline is
// stateless; the blob is just a version byte so warm restarts treat
// "none" uniformly).
func (NoCache) SnapshotState() []byte { return []byte{noneStateVersion} }

// RestoreState implements StateSnapshotter.
func (NoCache) RestoreState(data []byte) error {
	d := stateDec{b: data}
	d.version(noneStateVersion, "no-cache")
	return d.done()
}
