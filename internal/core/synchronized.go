package core

import "sync"

// Synchronized wraps a policy with a mutex so it can back a
// concurrent server (the proxy daemon serves one connection per
// goroutine). Policies themselves are single-threaded by contract;
// the wrapper serializes every call, including the read-only
// accessors, because policies like Rate-Profile mutate metadata on
// reads of the access path.
func Synchronized(p Policy) Policy {
	if _, ok := p.(*synchronized); ok {
		return p // already wrapped
	}
	return &synchronized{p: p}
}

type synchronized struct {
	mu sync.Mutex
	p  Policy
}

func (s *synchronized) Name() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.Name()
}

func (s *synchronized) Access(t int64, obj Object, yield int64) Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.Access(t, obj, yield)
}

func (s *synchronized) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.Used()
}

func (s *synchronized) Capacity() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.Capacity()
}

func (s *synchronized) Contains(id ObjectID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.Contains(id)
}

func (s *synchronized) Evictions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.Evictions()
}

func (s *synchronized) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.p.Reset()
}

// Contents implements ContentLister when the wrapped policy does.
func (s *synchronized) Contents() []ObjectID {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cl, ok := s.p.(ContentLister); ok {
		return cl.Contents()
	}
	return nil
}
