package wire

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/federation"
	"bypassyield/internal/obs"
)

// newSimProxy builds a proxy with no database nodes (pure simulation
// mode): decisions and accounting still work, node RPCs are skipped.
func newSimProxy(t *testing.T, nodeAddrs map[string]string) (*Proxy, *Client, func()) {
	t.Helper()
	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 100000})
	if err != nil {
		t.Fatal(err)
	}
	med, err := federation.New(federation.Config{
		Schema: s, Engine: db,
		Policy:      core.NewRateProfile(core.RateProfileConfig{Capacity: s.TotalBytes()}),
		Granularity: federation.Tables,
		Obs:         obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	p := NewProxy(med, federation.Tables, nodeAddrs)
	p.SetLogf(func(string, ...any) {})
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	return p, c, func() { c.Close(); p.Close() }
}

func TestProxySimulationMode(t *testing.T) {
	_, c, done := newSimProxy(t, nil)
	defer done()
	res, err := c.Query("select ra from photoobj where ra < 100")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows <= 0 {
		t.Fatal("no rows")
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.TransportTx != 0 || st.TransportRx != 0 {
		t.Fatal("simulation mode should not touch node transport")
	}
}

func TestProxySurvivesDeadNode(t *testing.T) {
	// A configured but unreachable node must not fail queries: the
	// mediation and accounting complete; only the RPC is lost (and
	// logged).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close() // nothing listens here anymore
	_, c, done := newSimProxy(t, map[string]string{catalog.SitePhoto: dead})
	defer done()
	res, err := c.Query("select ra from photoobj where ra < 100")
	if err != nil {
		t.Fatalf("query should survive a dead node: %v", err)
	}
	if res.Rows <= 0 {
		t.Fatal("no rows")
	}
}

func TestProxyRejectsUnknownFrame(t *testing.T) {
	_, c, done := newSimProxy(t, nil)
	defer done()
	// Send a fetch frame to the proxy (only nodes accept those).
	if _, err := WriteFrame(c.conn, MsgFetch, FetchMsg{Object: "edr/photoobj"}); err != nil {
		t.Fatal(err)
	}
	typ, body, _, err := ReadFrame(c.conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgError {
		t.Fatalf("type = %d, want error", typ)
	}
	var e ErrorMsg
	if err := Decode(body, &e); err != nil {
		t.Fatal(err)
	}
	// The connection still works afterwards.
	if _, err := c.Query("select ra from photoobj where ra < 10"); err != nil {
		t.Fatalf("connection broken: %v", err)
	}
}

func TestClientConcurrentConnections(t *testing.T) {
	_, c1, done := newSimProxy(t, nil)
	defer done()
	// Second client on the same proxy.
	st, err := c1.Stats()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Dial(pickAddr(t, c1))
	if err != nil {
		t.Skip("cannot re-derive address") // defensive; should not happen
	}
	defer c2.Close()
	if _, err := c2.Query("select z from specobj where z < 1"); err != nil {
		t.Fatal(err)
	}
	st2, err := c1.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Queries != st.Queries+1 {
		t.Fatalf("queries = %d, want %d", st2.Queries, st.Queries+1)
	}
}

func pickAddr(t *testing.T, c *Client) string {
	t.Helper()
	return c.conn.RemoteAddr().String()
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dialing a closed port should fail")
	}
}

func TestStatsCachedObjects(t *testing.T) {
	_, c, done := newSimProxy(t, nil)
	defer done()
	// Repeat a fat query until the table's cumulative yield justifies
	// loading it; then stats must list it.
	for i := 0; i < 40; i++ {
		if _, err := c.Query("select * from photoobj where ra between 0 and 350"); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range st.CachedObjects {
		if id == "edr/photoobj" {
			found = true
		}
	}
	if !found {
		t.Fatalf("cached objects = %v, want edr/photoobj", st.CachedObjects)
	}
	if len(st.CachedObjects) > MaxStatsCachedObjects {
		t.Fatalf("stats lists %d cached objects, cap is %d",
			len(st.CachedObjects), MaxStatsCachedObjects)
	}
}

// TestAdaptiveSizingFromMetrics drives one adaptive pass straight
// through the metric plane: synthetic pool_waits and rpc_latency_us
// observations land in the registry exactly as real traffic would,
// and adaptOnce must resize the site's pool and publish the new bound
// on wire.pool_size.
func TestAdaptiveSizingFromMetrics(t *testing.T) {
	p, _, done := newSimProxy(t, map[string]string{catalog.SitePhoto: "127.0.0.1:1"})
	defer done()
	p.SetPoolConfig(PoolConfig{MaxActive: 4, Adaptive: true})
	sp := p.pools[catalog.SitePhoto]

	prev := p.reg.Snapshot()
	// One simulated 2s interval: 50 RPCs/s at a 200ms mean with
	// blocked Gets → Little's law wants 50×0.2×1.5 = 15 connections.
	p.poolWaits.Add(catalog.SitePhoto, 7)
	for i := 0; i < 100; i++ {
		p.rpcLatency.Observe(catalog.SitePhoto, 200_000)
	}
	p.adaptOnce(prev, p.reg.Snapshot(), 2.0)
	if got := sp.MaxActive(); got != 15 {
		t.Fatalf("pool bound after loaded interval = %d, want 15", got)
	}
	if got := p.reg.Snapshot().GaugeLabeled("wire.pool_size", catalog.SitePhoto); got != 15 {
		t.Fatalf("wire.pool_size = %d, want 15", got)
	}

	// A quiet interval (no waits, no traffic) must decay the bound
	// halfway toward demand, not collapse it.
	prev = p.reg.Snapshot()
	p.adaptOnce(prev, p.reg.Snapshot(), 2.0)
	if got := sp.MaxActive(); got != 8 {
		t.Fatalf("pool bound after quiet interval = %d, want 8", got)
	}
}

// TestProxyConcurrentClients hammers the proxy from many client
// goroutines while others poll stats and metrics. Run under -race
// this exercises the mediation lock, the obs registry's atomics, and
// per-connection serving paths all at once.
func TestProxyConcurrentClients(t *testing.T) {
	p, c0, done := newSimProxy(t, nil)
	defer done()
	addr := c0.conn.RemoteAddr().String()

	const (
		clients          = 8
		queriesPerClient = 20
		pollers          = 2
	)
	sqls := []string{
		"select ra from photoobj where ra < 100",
		"select ra, dec from photoobj where ra between 0 and 350",
		"select z from specobj where z < 2",
	}

	var wgClients, wgPollers sync.WaitGroup
	errc := make(chan error, clients+pollers)
	stop := make(chan struct{})

	for i := 0; i < clients; i++ {
		wgClients.Add(1)
		go func(i int) {
			defer wgClients.Done()
			c, err := Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			for j := 0; j < queriesPerClient; j++ {
				res, err := c.Query(sqls[(i+j)%len(sqls)])
				if err != nil {
					errc <- err
					return
				}
				if res.Rows < 0 {
					errc <- fmt.Errorf("negative rows: %+v", res)
					return
				}
			}
		}(i)
	}
	for i := 0; i < pollers; i++ {
		wgPollers.Add(1)
		go func() {
			defer wgPollers.Done()
			c, err := Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Stats(); err != nil {
					errc <- err
					return
				}
				if _, err := c.Metrics(); err != nil {
					errc <- err
					return
				}
			}
		}()
	}

	wgClients.Wait()
	close(stop)
	wgPollers.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	st, err := c0.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != clients*queriesPerClient {
		t.Fatalf("queries = %d, want %d", st.Queries, clients*queriesPerClient)
	}
	snap := p.Obs().Snapshot()
	if got := snap.CounterValue("federation.queries", ""); got != clients*queriesPerClient {
		t.Fatalf("federation.queries = %d, want %d", got, clients*queriesPerClient)
	}
}
