package wire

import (
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bypassyield/internal/catalog"
	"bypassyield/internal/engine"
	"bypassyield/internal/faultnet"
	"bypassyield/internal/federation"
	"bypassyield/internal/obs"
)

// TestWriteFrameAllocs pins the frame encoder's allocation budget: the
// pooled encode buffer must hold steady-state frame writes to at most
// one allocation (the occasional buffer growth inside encoding/json).
func TestWriteFrameAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool is deliberately leaky under the race detector")
	}
	payload := &QueryMsg{SQL: "select ra, dec from photoobj where ra between 0 and 350"}
	if _, err := WriteFrame(io.Discard, MsgQuery, payload); err != nil {
		t.Fatal(err) // warm the pool outside the measured runs
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := WriteFrame(io.Discard, MsgQuery, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("WriteFrame allocates %.1f per frame, want ≤ 1", allocs)
	}
}

func BenchmarkWriteFrame(b *testing.B) {
	payload := &QueryMsg{SQL: "select ra, dec from photoobj where ra between 0 and 350"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := WriteFrame(io.Discard, MsgQuery, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSchema is a four-site release (one table per site) so the
// throughput benchmark exercises more WAN parallelism than EDR's three
// sites offer.
func benchSchema() *catalog.Schema {
	s := &catalog.Schema{Name: "bench"}
	for i := 0; i < 4; i++ {
		s.Tables = append(s.Tables, catalog.Table{
			Name: fmt.Sprintf("t%d", i),
			Columns: []catalog.Column{
				{Name: "id", Type: catalog.Int64, Max: 1_000_000, Key: true},
				{Name: "a", Type: catalog.Float64, Max: 360},
				{Name: "b", Type: catalog.Float64, Min: -90, Max: 90},
			},
			Rows: 1_000_000,
			Site: fmt.Sprintf("site%d.bench", i),
		})
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// benchFederation stands up the 4-site federation with ~2ms of
// injected latency per conn operation (the simulated WAN) and the
// given pipeline bounds.
func benchFederation(b *testing.B, maxInflight, maxLegs int) (addr string, shutdown func()) {
	b.Helper()
	s := benchSchema()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 10_000})
	if err != nil {
		b.Fatal(err)
	}
	quiet := func(string, ...any) {}

	var nodes []*DBNode
	addrs := map[string]string{}
	for i := range s.Tables {
		site := s.Tables[i].Site
		n := NewDBNode(site, db)
		n.SetLogf(quiet)
		naddr, err := n.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, n)
		addrs[site] = naddr
	}

	med, err := federation.New(federation.Config{
		Schema: s, Engine: db, Granularity: federation.Tables,
		Obs: obs.NewRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	proxy := NewProxy(med, federation.Tables, addrs)
	proxy.SetLogf(quiet)
	proxy.SetConcurrency(maxInflight, maxLegs)

	inj := faultnet.NewInjector(3)
	inj.Set(faultnet.Faults{Latency: 2 * time.Millisecond})
	proxy.SetDialer(func(_, a string) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", a, time.Second)
		if err != nil {
			return nil, err
		}
		return inj.Conn(c), nil
	})

	addr, err = proxy.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	return addr, func() {
		proxy.Close()
		for _, n := range nodes {
			n.Close()
		}
		inj.Stop()
	}
}

// runProxyBench drives b.N queries through the proxy from `clients`
// concurrent connections and reports queries/sec plus the client-side
// p50/p99 query latency. With no cache policy every access bypasses,
// so each query ships one sub-query leg over the simulated WAN — the
// leg, not local compute, dominates.
func runProxyBench(b *testing.B, addr string, clients int) {
	queries := []string{
		"select a, b from t0 where a between 0 and 300",
		"select a, b from t1 where a between 0 and 300",
		"select a, b from t2 where a between 0 and 300",
		"select a, b from t3 where a between 0 and 300",
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var latencies []int64 // microseconds, merged per client at exit
	b.ResetTimer()
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				b.Error(err)
				return
			}
			defer cl.Close()
			var lats []int64
			defer func() {
				mu.Lock()
				latencies = append(latencies, lats...)
				mu.Unlock()
			}()
			for {
				i := next.Add(1)
				if i > int64(b.N) {
					return
				}
				qStart := time.Now()
				if _, err := cl.Query(queries[int(i)%len(queries)]); err != nil {
					b.Error(err)
					return
				}
				lats = append(lats, time.Since(qStart).Microseconds())
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "queries/sec")
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		quantile := func(q float64) float64 {
			idx := int(q * float64(len(latencies)-1))
			return float64(latencies[idx])
		}
		b.ReportMetric(quantile(0.50), "p50-us")
		b.ReportMetric(quantile(0.99), "p99-us")
	}
}

// BenchmarkProxyThroughput measures the concurrent pipeline against
// the serial baseline: 8 clients over 4 sites with ~2ms simulated WAN
// latency per conn operation.
//
//	make bench-proxy    # distills both runs into BENCH_proxy.json
//
// serial pins the pipeline to one query at a time (the pre-pipeline
// proxy); concurrent8 uses the default bounds, so 8 client queries
// overlap end-to-end and their legs share the per-site pools.
func BenchmarkProxyThroughput(b *testing.B) {
	b.Run("serial", func(b *testing.B) {
		addr, shutdown := benchFederation(b, 1, 1)
		defer shutdown()
		runProxyBench(b, addr, 8)
	})
	b.Run("concurrent8", func(b *testing.B) {
		addr, shutdown := benchFederation(b, 0, 0) // defaults: 64 inflight, unbounded legs
		defer shutdown()
		runProxyBench(b, addr, 8)
	})
}
