package wire

import (
	"net"
	"strings"
	"testing"
	"time"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/faultnet"
	"bypassyield/internal/federation"
	"bypassyield/internal/obs"
	"bypassyield/internal/obs/ledger"
)

// pinned is a single-object cache: it loads exactly one object on
// first touch and bypasses everything else, so chaos tests know
// precisely which accesses hit cache and which need the network.
type pinned struct {
	id     core.ObjectID
	cached bool
	size   int64
}

func (p *pinned) Name() string { return "pinned" }
func (p *pinned) Access(t int64, obj core.Object, yield int64) core.Decision {
	if obj.ID != p.id {
		return core.Bypass
	}
	if p.cached {
		return core.Hit
	}
	p.cached = true
	p.size = obj.Size
	return core.Load
}
func (p *pinned) Used() int64 {
	if p.cached {
		return p.size
	}
	return 0
}
func (p *pinned) Capacity() int64                { return 1 << 62 }
func (p *pinned) Contains(id core.ObjectID) bool { return p.cached && id == p.id }
func (p *pinned) Evictions() int64               { return 0 }
func (p *pinned) Reset()                         { p.cached = false; p.size = 0 }

// TestChaosBreakerCycle is the fault-tolerance end-to-end: a real
// 3-site federation over TCP, one site black-holed mid-run. It drives
// the full breaker cycle closed → open → half-open → closed and checks
// every degraded-mode promise along the way: healthy sites keep
// serving, dead-site legs come back as partial results with site-error
// annotations, forced and failed decisions land in the ledger with
// reasons, and the accounting identity Σ ledger yields = D_A survives
// the outage.
func TestChaosBreakerCycle(t *testing.T) {
	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 50000})
	if err != nil {
		t.Fatal(err)
	}
	quiet := func(string, ...any) {}

	sites := map[string]bool{}
	for i := range s.Tables {
		sites[s.Tables[i].Site] = true
	}
	var nodes []*DBNode
	addrs := map[string]string{}
	for site := range sites {
		n := NewDBNode(site, db)
		n.SetLogf(quiet)
		addr, err := n.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes = append(nodes, n)
		addrs[site] = addr
	}
	if len(nodes) != 3 {
		t.Fatalf("EDR spans %d sites, want 3", len(nodes))
	}

	// The decision plane runs sharded: each partition owns a pinned
	// instance for the same id, but only the partition that owns
	// specobj.z under the routing hash will ever cache it — the chaos
	// invariants must hold per partition as well as globally.
	const chaosShards = 4
	pinID := federation.ColumnObjectID(s.Name, "specobj", "z")
	pols := make([]*pinned, chaosShards)
	led := ledger.New(4096)
	med, err := federation.New(federation.Config{
		Schema: s, Engine: db, Granularity: federation.Columns,
		NewPolicy: func(shard int, capacity int64) (core.Policy, error) {
			pols[shard] = &pinned{id: pinID}
			return pols[shard], nil
		},
		Capacity: s.TotalBytes(),
		Shards:   chaosShards,
		Obs:      obs.NewRegistry(), Ledger: led,
	})
	if err != nil {
		t.Fatal(err)
	}
	pol := pols[federation.ShardOf(pinID, chaosShards)]

	proxy := NewProxy(med, federation.Columns, addrs)
	proxy.SetLogf(quiet)
	proxy.SetRPCTimeout(150 * time.Millisecond)
	proxy.SetBreakerConfig(BreakerConfig{
		FailureThreshold: 2,
		BaseBackoff:      50 * time.Millisecond,
		MaxBackoff:       400 * time.Millisecond,
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     150 * time.Millisecond,
		RetryBudget:      1,
		RetryDelay:       time.Millisecond,
		Seed:             3,
	})
	// Every connection to the spec site passes through one injector;
	// flipping its faults mid-run black-holes pooled connections too.
	inj := faultnet.NewInjector(11)
	defer inj.Stop()
	proxy.SetDialer(func(site, addr string) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			return nil, err
		}
		if site == catalog.SiteSpec {
			return inj.Conn(c), nil
		}
		return c, nil
	})
	paddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	client, err := Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const qSpec = "select z, zerr from specobj where z < 3"
	const qPhoto = "select ra from photoobj where ra < 30"

	// Phase 1 — healthy. The first spec query loads specobj.z (a real
	// object fetch over TCP) and bypasses zerr (a shipped sub-query).
	res, err := client.Query(qSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || len(res.SiteErrors) != 0 {
		t.Fatalf("healthy result marked partial: %+v", res)
	}
	if !pol.cached {
		t.Fatal("warm-up did not load specobj.z")
	}
	if st := proxy.BreakerState(catalog.SiteSpec); st != BreakerClosed {
		t.Fatalf("breaker %v after healthy phase, want closed", st)
	}

	// Phase 2 — black-hole the spec site. Each bypass leg now hangs
	// until the RPC deadline; after FailureThreshold timeouts the
	// breaker opens.
	inj.Set(faultnet.Faults{BlackHole: true})
	deadline := time.Now().Add(10 * time.Second)
	for proxy.BreakerState(catalog.SiteSpec) == BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened")
		}
		// Queries still succeed while the breaker is closed: the local
		// engine delivered the data; only the protocol legs time out.
		if _, err := client.Query(qSpec); err != nil {
			t.Fatalf("transition-window query failed: %v", err)
		}
	}

	// Phase 3 — degraded. The cached column is forced to serve stale,
	// the uncached one fails, and the client sees an annotated partial
	// result. The healthy photo site is untouched.
	res, err = client.Query(qSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatalf("degraded result not partial: %+v", res)
	}
	var forced, failed *DecisionMsg
	for i := range res.Decisions {
		d := &res.Decisions[i]
		switch {
		case d.Forced:
			forced = d
		case d.Failed:
			failed = d
		}
	}
	if forced == nil || failed == nil {
		t.Fatalf("decisions = %+v, want one forced and one failed", res.Decisions)
	}
	if forced.Decision != "hit" || !strings.HasPrefix(forced.Reason, core.ReasonForcedCache+": breaker") {
		t.Fatalf("forced = %+v", forced)
	}
	if failed.Decision != "failed" || failed.Yield <= 0 {
		t.Fatalf("failed = %+v", failed)
	}
	if len(res.SiteErrors) != 1 || res.SiteErrors[0].Site != catalog.SiteSpec ||
		res.SiteErrors[0].LostBytes != failed.Yield {
		t.Fatalf("site errors = %+v", res.SiteErrors)
	}
	if res2, err := client.Query(qPhoto); err != nil || res2.Partial {
		t.Fatalf("healthy site degraded during outage: %+v, %v", res2, err)
	}

	// Conservation holds through the outage: Σ ledger yields = D_A
	// (failed legs record zero yield; nothing was charged for them).
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := client.Decisions(DecisionsMsg{})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	shardYield := make([]int64, chaosShards)
	for _, r := range dec.Records {
		sum += r.Yield
		shardYield[federation.ShardOf(core.ObjectID(r.Object), chaosShards)] += r.Yield
	}
	if sum != st.Acct.DeliveredBytes() {
		t.Fatalf("Σ ledger yields = %d, D_A = %d", sum, st.Acct.DeliveredBytes())
	}
	// The identity holds partition by partition through the outage too:
	// forced and failed legs land in the owning shard's accounting with
	// the same zero-charge rules as the global plane.
	if len(st.ShardAccts) != chaosShards {
		t.Fatalf("stats report %d shard accts, want %d", len(st.ShardAccts), chaosShards)
	}
	for k, sa := range st.ShardAccts {
		if shardYield[k] != sa.DeliveredBytes() {
			t.Fatalf("shard %d: Σ ledger yields = %d, want shard D_A = %d",
				k, shardYield[k], sa.DeliveredBytes())
		}
	}
	var sawForced, sawFailed bool
	for _, r := range dec.Records {
		if r.Stale && strings.HasPrefix(r.Reason, core.ReasonForcedCache) {
			sawForced = true
		}
		if r.Action == core.ReasonFailedLeg && r.Yield == 0 && r.WANCost == 0 {
			sawFailed = true
		}
	}
	if !sawForced || !sawFailed {
		t.Fatalf("ledger missing forced/failed records (forced=%v failed=%v)", sawForced, sawFailed)
	}

	// Phase 4 — heal. The prober's next half-open ping succeeds and
	// the breaker closes; full service resumes.
	inj.Set(faultnet.Faults{})
	deadline = time.Now().Add(10 * time.Second)
	for proxy.BreakerState(catalog.SiteSpec) != BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after heal (state %v)", proxy.BreakerState(catalog.SiteSpec))
		}
		time.Sleep(10 * time.Millisecond)
	}
	res, err = client.Query(qSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || len(res.SiteErrors) != 0 {
		t.Fatalf("post-heal result still partial: %+v", res)
	}

	// The metrics plane saw the whole cycle.
	m, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot
	for _, state := range []string{"open", "half-open", "closed"} {
		if snap.CounterValue("wire.breaker_transitions", catalog.SiteSpec+"/"+state) < 1 {
			t.Fatalf("no %s transition recorded", state)
		}
	}
	if snap.CounterValue("core.forced_decisions", catalog.SiteSpec) < 1 {
		t.Fatal("core.forced_decisions not counted")
	}
	if snap.CounterValue("core.failed_legs", catalog.SiteSpec) < 1 {
		t.Fatal("core.failed_legs not counted")
	}
	if snap.CounterValue("core.degraded_queries", "") < 1 {
		t.Fatal("core.degraded_queries not counted")
	}
	if snap.CounterValue("wire.probes", catalog.SiteSpec+"/ok") < 1 {
		t.Fatal("no successful probe recorded")
	}
}
