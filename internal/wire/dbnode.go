package wire

import (
	"errors"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"

	"bypassyield/internal/catalog"
	"bypassyield/internal/engine"
	"bypassyield/internal/obs"
	"bypassyield/internal/obs/flightrec"
	"bypassyield/internal/sqlparse"
)

// DBNode is a federation member database: it owns the tables of one
// site and answers sub-queries and object fetches over TCP.
//
// Each node carries its own obs registry (served over MsgMetrics):
// dbnode.queries / dbnode.fetches / dbnode.errors counters,
// dbnode.tx_bytes / dbnode.rx_bytes transport totals, runtime.*
// self-observation gauges, and — because the registry is shared with
// the node's engine — the engine.rows_scanned / engine.yield_bytes
// counters. A node-side flight recorder (served over MsgExemplars)
// captures slow and failing sub-query executions; its exemplars carry
// the trace id the proxy forwarded, so a federation-wide scrape can
// merge proxy and node views of the same query.
type DBNode struct {
	// Site names the site this node serves; queries for tables owned
	// by other sites are rejected.
	Site string

	db       *engine.DB
	ln       net.Listener
	logf     func(format string, args ...any)
	tracer   *obs.Tracer
	wrapConn func(net.Conn) net.Conn
	wg       sync.WaitGroup
	mu       sync.Mutex
	closed   bool

	reg     *obs.Registry
	queries *obs.Counter
	fetches *obs.Counter
	errs    *obs.Counter
	txBytes *obs.Counter
	rxBytes *obs.Counter
	flight  *flightrec.Recorder
}

// NewDBNode builds a node serving the given site of a release. The
// engine holds the full release; ownership is enforced per query. The
// node creates its own obs registry and attaches the engine to it.
func NewDBNode(site string, db *engine.DB) *DBNode {
	reg := obs.NewRegistry()
	db.SetObs(reg)
	obs.EnableRuntimeStats(reg)
	return &DBNode{
		Site:    site,
		db:      db,
		logf:    log.Printf,
		reg:     reg,
		queries: reg.Counter("dbnode.queries"),
		fetches: reg.Counter("dbnode.fetches"),
		errs:    reg.Counter("dbnode.errors"),
		txBytes: reg.Counter("dbnode.tx_bytes"),
		rxBytes: reg.Counter("dbnode.rx_bytes"),
		flight:  flightrec.New(flightrec.DefaultConfig(), reg),
	}
}

// SetFlightConfig replaces the node's flight-recorder tuning. Call
// before Listen.
func (n *DBNode) SetFlightConfig(cfg flightrec.Config) {
	n.flight = flightrec.New(cfg, n.reg)
}

// Flight returns the node's flight recorder.
func (n *DBNode) Flight() *flightrec.Recorder { return n.flight }

// Obs returns the node's registry.
func (n *DBNode) Obs() *obs.Registry { return n.reg }

// SetLogf replaces the node's logger (tests silence it).
func (n *DBNode) SetLogf(f func(string, ...any)) { n.logf = f }

// SetTracer attaches a span tracer. Frames carrying a trace context
// get dbnode.execute / dbnode.fetch spans joined to the remote trace;
// untraced frames emit nothing. Nil detaches.
func (n *DBNode) SetTracer(t *obs.Tracer) { n.tracer = t }

// SetConnWrapper interposes w on every accepted connection — the
// chaos hook (bydbd -chaos wraps conns in a faultnet injector). Call
// before Listen; nil disables.
func (n *DBNode) SetConnWrapper(w func(net.Conn) net.Conn) { n.wrapConn = w }

// Listen starts accepting on addr ("host:port"; ":0" picks a free
// port) and returns the bound address.
func (n *DBNode) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	n.ln = ln
	n.wg.Add(1)
	go n.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the listener and waits for in-flight connections.
func (n *DBNode) Close() error {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	var err error
	if n.ln != nil {
		err = n.ln.Close()
	}
	n.wg.Wait()
	return err
}

func (n *DBNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			n.mu.Lock()
			closed := n.closed
			n.mu.Unlock()
			if !closed && !errors.Is(err, net.ErrClosed) {
				n.logf("dbnode %s: accept: %v", n.Site, err)
			}
			return
		}
		if n.wrapConn != nil {
			conn = n.wrapConn(conn)
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer conn.Close()
			n.serveConn(conn)
		}()
	}
}

func (n *DBNode) serveConn(conn net.Conn) {
	for {
		t, body, rn, err := ReadFrame(conn)
		if err != nil {
			return // peer closed or protocol failure; drop the conn
		}
		n.rxBytes.Add(int64(rn))
		switch t {
		case MsgQuery:
			var q QueryMsg
			if err := Decode(body, &q); err != nil {
				n.sendErr(conn, err)
				continue
			}
			span := n.continueSpan(q.TraceContext(), "dbnode.execute")
			fc := n.flight.Begin()
			fc.SetQuery(q.SQL, q.TraceContext().TraceID)
			execStart := fc.Now()
			res, err := n.execute(q.SQL)
			fc.SetMediation(fc.Now()-execStart, 0, 0)
			if err != nil {
				span.End(obs.A("error", err.Error()))
				n.sendErr(conn, err)
				n.flight.Finish(fc, err)
				continue
			}
			n.queries.Add(1)
			// End before replying: once the proxy sees the result, the
			// node's span log line is already flushed.
			span.End(obs.A("bytes", strconv.FormatInt(res.Bytes, 10)),
				obs.A("rows", strconv.FormatInt(res.Rows, 10)))
			encStart := fc.Now()
			n.send(conn, MsgResult, res)
			fc.SetEncodeUS(fc.Now() - encStart)
			n.flight.Finish(fc, nil)
		case MsgFetch:
			var f FetchMsg
			if err := Decode(body, &f); err != nil {
				n.sendErr(conn, err)
				continue
			}
			span := n.continueSpan(f.TraceContext(), "dbnode.fetch",
				obs.A("object", f.Object))
			size, err := n.objectSize(f.Object)
			if err != nil {
				span.End(obs.A("error", err.Error()))
				n.sendErr(conn, err)
				continue
			}
			n.fetches.Add(1)
			span.End(obs.A("size", strconv.FormatInt(size, 10)))
			n.send(conn, MsgFetchAck, FetchAckMsg{Object: f.Object, Size: size})
		case MsgMetrics:
			n.send(conn, MsgMetricsResult, MetricsResultMsg{
				Source:   "bydbd:" + n.Site,
				Snapshot: n.reg.Snapshot(),
			})
		case MsgExemplars:
			var q ExemplarsMsg
			if err := Decode(body, &q); err != nil {
				n.sendErr(conn, err)
				continue
			}
			n.send(conn, MsgExemplarsResult, serveExemplars("bydbd:"+n.Site, n.flight, q))
		case MsgPing:
			n.send(conn, MsgPong, PongMsg{Site: n.Site})
		default:
			n.sendErr(conn, fmt.Errorf("dbnode: unexpected message type %s", t))
		}
	}
}

// continueSpan joins an incoming frame's trace, tagging the span with
// this node's site. Untraced frames yield a no-op span — the node
// does not start local root traces of its own.
func (n *DBNode) continueSpan(ctx obs.TraceContext, name string, attrs ...obs.Attr) obs.Span {
	if n.tracer == nil || !ctx.Valid() {
		return obs.Span{}
	}
	attrs = append(attrs, obs.A("site", n.Site))
	return n.tracer.Child(ctx, name, attrs...)
}

// send writes one frame, counting transport bytes.
func (n *DBNode) send(conn net.Conn, t MsgType, payload any) {
	wn, err := WriteFrame(conn, t, payload)
	if err != nil {
		return
	}
	n.txBytes.Add(int64(wn))
}

// sendErr writes an error frame, counting it.
func (n *DBNode) sendErr(conn net.Conn, err error) {
	n.errs.Add(1)
	n.send(conn, MsgError, ErrorMsg{Message: err.Error()})
}

// execute runs a sub-query after checking that every referenced table
// belongs to this node's site.
func (n *DBNode) execute(sql string) (*ResultMsg, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	b, err := engine.Bind(n.db.Schema(), stmt)
	if err != nil {
		return nil, err
	}
	for _, t := range b.Tables {
		if t.Site != n.Site {
			return nil, fmt.Errorf("dbnode %s: table %s is owned by %s", n.Site, t.Name, t.Site)
		}
	}
	res, err := n.db.Execute(stmt)
	if err != nil {
		return nil, err
	}
	return &ResultMsg{Columns: res.Columns, Rows: res.Rows, Bytes: res.Bytes, Tuples: res.Tuples}, nil
}

// objectSize resolves an object id ("release/table[.column]") owned
// by this site to its logical size.
func (n *DBNode) objectSize(object string) (int64, error) {
	s := n.db.Schema()
	rest := object
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		if rest[:i] != s.Name {
			return 0, fmt.Errorf("dbnode: object %s is not in release %s", object, s.Name)
		}
		rest = rest[i+1:]
	}
	if name, ok := strings.CutPrefix(rest, "view:"); ok {
		for _, v := range catalog.StandardViews(s) {
			if v.Name != name {
				continue
			}
			t := s.Table(v.Table)
			if t == nil {
				break
			}
			if t.Site != n.Site {
				return 0, fmt.Errorf("dbnode %s: object %s is owned by %s", n.Site, object, t.Site)
			}
			return v.Bytes(t), nil
		}
		return 0, fmt.Errorf("dbnode: unknown view in object %s", object)
	}
	tableName, colName := rest, ""
	if i := strings.IndexByte(rest, '.'); i >= 0 {
		tableName, colName = rest[:i], rest[i+1:]
	}
	t := s.Table(tableName)
	if t == nil {
		return 0, fmt.Errorf("dbnode: unknown table in object %s", object)
	}
	if t.Site != n.Site {
		return 0, fmt.Errorf("dbnode %s: object %s is owned by %s", n.Site, object, t.Site)
	}
	if colName == "" {
		return t.Bytes(), nil
	}
	c := t.Column(colName)
	if c == nil {
		return 0, fmt.Errorf("dbnode: unknown column in object %s", object)
	}
	return c.Width() * t.Rows, nil
}

// SiteOf returns the owning site of a schema table, for wiring
// proxies to nodes.
func SiteOf(s *catalog.Schema, table string) (string, error) {
	t := s.Table(table)
	if t == nil {
		return "", fmt.Errorf("wire: unknown table %s", table)
	}
	return t.Site, nil
}
