package wire

import (
	"testing"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/federation"
	"bypassyield/internal/obs"
	"bypassyield/internal/obs/ledger"
)

// testLedgerFederation is testFederation with a decision ledger and
// shadow counterfactual accounting wired into the mediator.
func testLedgerFederation(t *testing.T, policy core.Policy, gran federation.Granularity) (*Client, func()) {
	t.Helper()
	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 50000})
	if err != nil {
		t.Fatal(err)
	}
	quiet := func(string, ...any) {}

	sites := map[string]bool{}
	for i := range s.Tables {
		sites[s.Tables[i].Site] = true
	}
	var nodes []*DBNode
	addrs := map[string]string{}
	for site := range sites {
		n := NewDBNode(site, db)
		n.SetLogf(quiet)
		addr, err := n.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		addrs[site] = addr
	}

	med, err := federation.New(federation.Config{
		Schema: s, Engine: db, Policy: policy, Granularity: gran,
		Obs:     obs.NewRegistry(),
		Ledger:  ledger.New(4096),
		Shadows: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy := NewProxy(med, gran, addrs)
	proxy.SetLogf(quiet)
	paddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	return client, func() {
		client.Close()
		proxy.Close()
		for _, n := range nodes {
			n.Close()
		}
	}
}

// TestEndToEndLedgerReconcile is the acceptance test of the decision
// ledger and counterfactual accounting: replaying a workload through
// proxy+nodes must yield (1) a ledger whose per-decision realized
// yields sum to D_A and whose WAN charges sum to D_S + D_L, and
// (2) a shadow always-bypass counterfactual whose total traffic minus
// realized traffic equals the exported core.bytes_saved_vs_bypass
// gauge.
func TestEndToEndLedgerReconcile(t *testing.T) {
	cap := catalog.EDR().TotalBytes()
	client, shutdown := testLedgerFederation(t,
		core.NewRateProfile(core.RateProfileConfig{Capacity: cap}), federation.Columns)
	defer shutdown()

	// Mixed workload: repeats of a fat query drive bypass → load →
	// hit; a second query touches the other site.
	for i := 0; i < 8; i++ {
		if _, err := client.Query("select ra, dec from photoobj where ra between 0 and 350"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Query("select z from specobj where z < 3"); err != nil {
		t.Fatal(err)
	}

	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := client.Decisions(DecisionsMsg{Limit: 4096})
	if err != nil {
		t.Fatal(err)
	}
	acct := st.Acct

	if dec.Total != uint64(acct.Accesses) {
		t.Fatalf("ledger total = %d, want one record per access (%d)", dec.Total, acct.Accesses)
	}
	if len(dec.Records) != int(acct.Accesses) {
		t.Fatalf("ledger returned %d records, want %d", len(dec.Records), acct.Accesses)
	}

	// (1) Ledger reconciliation: Σ yields = D_A, Σ WAN costs = D_S+D_L.
	var sumYield, sumWAN int64
	actions := map[string]int64{}
	for _, r := range dec.Records {
		sumYield += r.Yield
		sumWAN += r.WANCost
		actions[r.Action]++
		if r.Policy != "rate-profile" {
			t.Fatalf("record policy = %q: %+v", r.Policy, r)
		}
		if r.Reason == "" {
			t.Fatalf("record carries no reason: %+v", r)
		}
	}
	if sumYield != acct.DeliveredBytes() {
		t.Fatalf("Σ ledger yields = %d, want D_A = %d", sumYield, acct.DeliveredBytes())
	}
	if sumWAN != acct.WANBytes() {
		t.Fatalf("Σ ledger WAN = %d, want D_S+D_L = %d", sumWAN, acct.WANBytes())
	}
	if actions["hit"] != acct.Hits || actions["bypass"] != acct.Bypasses || actions["load"] != acct.Loads {
		t.Fatalf("ledger action counts %v, want hits=%d bypasses=%d loads=%d",
			actions, acct.Hits, acct.Bypasses, acct.Loads)
	}

	// (2) Shadow identity: always-bypass traffic − realized traffic ==
	// exported core.bytes_saved_vs_bypass. The always-bypass shadow's
	// WAN is the raw yield total (uniform network), so the identity is
	// checkable from first principles too.
	m, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	var bypassShadow *core.ShadowResult
	for i := range dec.Baselines {
		if dec.Baselines[i].Name == "always-bypass" {
			bypassShadow = &dec.Baselines[i]
		}
	}
	if bypassShadow == nil {
		t.Fatalf("no always-bypass baseline in %+v", dec.Baselines)
	}
	if got := bypassShadow.Acct.WANBytes(); got != acct.YieldBytes {
		t.Fatalf("always-bypass shadow WAN = %d, want sequence cost %d", got, acct.YieldBytes)
	}
	wantSaved := bypassShadow.Acct.WANBytes() - acct.WANBytes()
	if bypassShadow.SavedBytes != wantSaved {
		t.Fatalf("baseline SavedBytes = %d, want %d", bypassShadow.SavedBytes, wantSaved)
	}
	if got := m.Snapshot.GaugeValue("core.bytes_saved_vs_bypass"); got != wantSaved {
		t.Fatalf("core.bytes_saved_vs_bypass = %d, want %d", got, wantSaved)
	}
	// The workload re-reads the same columns, so caching must have won.
	if wantSaved <= 0 {
		t.Fatalf("bytes saved vs bypass = %d, want positive for a hit-heavy workload", wantSaved)
	}

	// Ski-rental bound sanity: 0 < bound ≤ realized WAN, ratio ≥ 1.
	if dec.OptBoundBytes <= 0 || dec.OptBoundBytes > acct.WANBytes() {
		t.Fatalf("optbound = %d, want in (0, %d]", dec.OptBoundBytes, acct.WANBytes())
	}
	if dec.CompetitiveRatioMilli < 1000 {
		t.Fatalf("competitive ratio = %d milli, want ≥ 1000", dec.CompetitiveRatioMilli)
	}
	if got := m.Snapshot.CounterValue("core.optbound_bytes", ""); got != dec.OptBoundBytes {
		t.Fatalf("core.optbound_bytes = %d, want %d", got, dec.OptBoundBytes)
	}

	// Decision latency histogram: one observation per access.
	h, ok := m.Snapshot.HistogramSnap("core.decide_seconds", "")
	if !ok || h.Count != acct.Accesses {
		t.Fatalf("core.decide_seconds count = %d (ok=%v), want %d", h.Count, ok, acct.Accesses)
	}
}

// TestLedgerFilterAndTraceCorrelation exercises the MsgDecisions
// filters: action filters must agree with the accounting, and records
// for a traced query must carry its trace id.
func TestLedgerFilterAndTraceCorrelation(t *testing.T) {
	cap := catalog.EDR().TotalBytes()
	client, shutdown := testLedgerFederation(t,
		core.NewRateProfile(core.RateProfileConfig{Capacity: cap}), federation.Columns)
	defer shutdown()

	for i := 0; i < 5; i++ {
		if _, err := client.Query("select ra from photoobj where ra between 0 and 350"); err != nil {
			t.Fatal(err)
		}
	}
	// One traced query: its ledger records must carry the trace id.
	ctx := obs.TraceContext{TraceID: obs.NewID(), SpanID: obs.NewID()}
	if _, err := client.QueryTraced("select ra from photoobj where ra between 0 and 350", ctx); err != nil {
		t.Fatal(err)
	}

	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	loads, err := client.Decisions(DecisionsMsg{Action: "load"})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(loads.Records)) != st.Acct.Loads {
		t.Fatalf("action=load filter returned %d records, want %d", len(loads.Records), st.Acct.Loads)
	}

	byObj, err := client.Decisions(DecisionsMsg{Object: "edr/photoobj.ra"})
	if err != nil {
		t.Fatal(err)
	}
	if len(byObj.Records) != 6 {
		t.Fatalf("object filter returned %d records, want 6", len(byObj.Records))
	}

	traced, err := client.Decisions(DecisionsMsg{Trace: obs.FormatID(ctx.TraceID)})
	if err != nil {
		t.Fatal(err)
	}
	if len(traced.Records) != 1 {
		t.Fatalf("trace filter returned %d records, want 1", len(traced.Records))
	}
	if traced.Records[0].Object != "edr/photoobj.ra" || traced.Records[0].Action != "hit" {
		t.Fatalf("traced record = %+v", traced.Records[0])
	}
	// Untraced queries' records carry no trace id.
	all, err := client.Decisions(DecisionsMsg{})
	if err != nil {
		t.Fatal(err)
	}
	var marked int
	for _, r := range all.Records {
		if r.Trace != "" {
			marked++
		}
	}
	if marked != 1 {
		t.Fatalf("%d records carry a trace id, want exactly 1", marked)
	}
}
