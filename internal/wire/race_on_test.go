//go:build race

package wire

// raceEnabled reports whether the race detector is compiled in; the
// allocation assertions skip under it because sync.Pool deliberately
// drops items in race mode.
const raceEnabled = true
