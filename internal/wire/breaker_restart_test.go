package wire

import (
	"testing"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/federation"
	"bypassyield/internal/obs"
)

// TestBreakerRestartCycle pins the restart contract for breaker state:
// breakers are process state, deliberately NOT persisted by
// internal/persist. A proxy that dies with a site's breaker open and a
// deeply doubled backoff must come back with every breaker closed and
// the backoff zeroed — the new process re-learns site health from
// scratch instead of inheriting a stale open window that would keep a
// recovered site needlessly degraded.
func TestBreakerRestartCycle(t *testing.T) {
	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 50000})
	if err != nil {
		t.Fatal(err)
	}
	quiet := func(string, ...any) {}
	sites := map[string]bool{}
	for i := range s.Tables {
		sites[s.Tables[i].Site] = true
	}
	var nodes []*DBNode
	addrs := map[string]string{}
	for site := range sites {
		n := NewDBNode(site, db)
		n.SetLogf(quiet)
		addr, err := n.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes = append(nodes, n)
		addrs[site] = addr
	}
	newMediatorProxy := func() (*federation.Mediator, *Proxy) {
		pol, err := core.NewPolicyByName("lru", s.TotalBytes()/2, 1)
		if err != nil {
			t.Fatal(err)
		}
		med, err := federation.New(federation.Config{
			Schema: s, Engine: db, Policy: pol,
			Granularity: federation.Tables, Obs: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		p := NewProxy(med, federation.Tables, addrs)
		p.SetLogf(quiet)
		return med, p
	}

	// First life: drive the spec site's breaker open, then deep into
	// doubled backoff via repeated failed probes.
	_, p1 := newMediatorProxy()
	br := p1.breakers[catalog.SiteSpec]
	clock := newFakeClock()
	attach(br, clock)
	for i := 0; i < br.cfg.FailureThreshold; i++ {
		br.RecordFailure()
	}
	for i := 0; i < 4; i++ {
		clock.advance(2 * br.cfg.MaxBackoff)
		br.TryProbe()
		br.RecordFailure()
	}
	if br.State() != BreakerOpen {
		t.Fatalf("state = %v, want open before restart", br.State())
	}
	br.mu.Lock()
	grown := br.backoff
	br.mu.Unlock()
	if grown <= br.cfg.BaseBackoff {
		t.Fatalf("backoff = %v, want > base %v before restart", grown, br.cfg.BaseBackoff)
	}
	if ok, _ := p1.SiteAvailable(catalog.SiteSpec); ok {
		t.Fatal("open breaker reported available")
	}

	// Restart: a fresh proxy over the same node addresses. Every
	// breaker starts closed with a zeroed failure streak and backoff —
	// nothing of the first life's open window survives.
	med2, p2 := newMediatorProxy()
	for site := range addrs {
		if got := p2.BreakerState(site); got != BreakerClosed {
			t.Fatalf("site %s restarted %v, want closed", site, got)
		}
		b2 := p2.breakers[site]
		b2.mu.Lock()
		fails, backoff, until := b2.fails, b2.backoff, b2.until
		b2.mu.Unlock()
		if fails != 0 || backoff != 0 || !until.IsZero() {
			t.Fatalf("site %s restarted with fails=%d backoff=%v until=%v, want zeroed", site, fails, backoff, until)
		}
		if ok, reason := p2.SiteAvailable(site); !ok {
			t.Fatalf("site %s unavailable after restart: %s", site, reason)
		}
	}

	// And traffic to the previously-broken site flows immediately —
	// no inherited open window to wait out.
	paddr, err := p2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	c, err := Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query("select z, zConf from specobj where z < 0.4")
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("first post-restart query degraded: %+v", res.SiteErrors)
	}
	if med2.Accounting().Queries != 1 {
		t.Fatal("query not accounted on the restarted mediator")
	}
}
