// Package wire implements the federation's TCP protocol and the two
// daemon roles of the paper's prototype: database nodes (bydbd) that
// serve per-site sub-queries and object fetches, and the proxy
// (byproxyd) that collocates the mediator with a bypass-yield cache.
//
// Framing is length-prefixed: a 4-byte big-endian payload length, a
// 1-byte message type, then a JSON payload. Result tuples are bounded
// (engine.Config.MaxResultRows), so frames stay small; the paper's
// gigabyte-scale flows are accounted logically (see the Proxy type).
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// MsgType identifies a frame's payload.
type MsgType uint8

// Protocol message types.
const (
	// MsgQuery carries SQL from client to proxy, or a sub-query from
	// proxy to a database node.
	MsgQuery MsgType = 1
	// MsgResult returns an execution result.
	MsgResult MsgType = 2
	// MsgError returns a failure.
	MsgError MsgType = 3
	// MsgFetch asks a database node for a whole object (a cache
	// load).
	MsgFetch MsgType = 4
	// MsgFetchAck acknowledges an object fetch with its logical size.
	MsgFetchAck MsgType = 5
	// MsgStats asks the proxy for its accounting.
	MsgStats MsgType = 6
	// MsgStatsResult returns the proxy accounting.
	MsgStatsResult MsgType = 7
	// MsgMetrics asks a daemon (proxy or database node) for its full
	// observability snapshot.
	MsgMetrics MsgType = 8
	// MsgMetricsResult returns the snapshot.
	MsgMetricsResult MsgType = 9
	// MsgDecisions asks the proxy for recent decision-ledger records,
	// optionally filtered by object, action, or trace id.
	MsgDecisions MsgType = 10
	// MsgDecisionsResult returns the matching ledger records.
	MsgDecisionsResult MsgType = 11
)

// String names a message type for metric labels and diagnostics.
func (t MsgType) String() string {
	switch t {
	case MsgQuery:
		return "query"
	case MsgResult:
		return "result"
	case MsgError:
		return "error"
	case MsgFetch:
		return "fetch"
	case MsgFetchAck:
		return "fetch_ack"
	case MsgStats:
		return "stats"
	case MsgStatsResult:
		return "stats_result"
	case MsgMetrics:
		return "metrics"
	case MsgMetricsResult:
		return "metrics_result"
	case MsgDecisions:
		return "decisions"
	case MsgDecisionsResult:
		return "decisions_result"
	default:
		return "unknown"
	}
}

// MaxFrame bounds accepted payloads (defense against corrupt length
// prefixes).
const MaxFrame = 16 << 20

// WriteFrame writes one frame and returns the bytes put on the wire.
func WriteFrame(w io.Writer, t MsgType, payload any) (int, error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return 0, fmt.Errorf("wire: marshal: %w", err)
	}
	if len(body) > MaxFrame {
		return 0, fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(body); err != nil {
		return 0, err
	}
	return len(hdr) + len(body), nil
}

// ReadFrame reads one frame, unmarshalling the payload into dst if
// dst is non-nil after the caller has inspected the returned type via
// the two-step ReadHeader/DecodeBody path; most callers use
// ReadInto.
func ReadFrame(r io.Reader) (MsgType, []byte, int, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return 0, nil, 0, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, 0, err
	}
	return MsgType(hdr[4]), body, len(hdr) + int(n), nil
}

// Decode unmarshals a frame body.
func Decode(body []byte, dst any) error {
	if err := json.Unmarshal(body, dst); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}
