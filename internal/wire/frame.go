// Package wire implements the federation's TCP protocol and the two
// daemon roles of the paper's prototype: database nodes (bydbd) that
// serve per-site sub-queries and object fetches, and the proxy
// (byproxyd) that collocates the mediator with a bypass-yield cache.
//
// Framing is length-prefixed: a 4-byte big-endian payload length, a
// 1-byte message type, then a JSON payload. Result tuples are bounded
// (engine.Config.MaxResultRows), so frames stay small; the paper's
// gigabyte-scale flows are accounted logically (see the Proxy type).
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// MsgType identifies a frame's payload.
type MsgType uint8

// Protocol message types.
const (
	// MsgQuery carries SQL from client to proxy, or a sub-query from
	// proxy to a database node.
	MsgQuery MsgType = 1
	// MsgResult returns an execution result.
	MsgResult MsgType = 2
	// MsgError returns a failure.
	MsgError MsgType = 3
	// MsgFetch asks a database node for a whole object (a cache
	// load).
	MsgFetch MsgType = 4
	// MsgFetchAck acknowledges an object fetch with its logical size.
	MsgFetchAck MsgType = 5
	// MsgStats asks the proxy for its accounting.
	MsgStats MsgType = 6
	// MsgStatsResult returns the proxy accounting.
	MsgStatsResult MsgType = 7
	// MsgMetrics asks a daemon (proxy or database node) for its full
	// observability snapshot.
	MsgMetrics MsgType = 8
	// MsgMetricsResult returns the snapshot.
	MsgMetricsResult MsgType = 9
	// MsgDecisions asks the proxy for recent decision-ledger records,
	// optionally filtered by object, action, or trace id.
	MsgDecisions MsgType = 10
	// MsgDecisionsResult returns the matching ledger records.
	MsgDecisionsResult MsgType = 11
	// MsgPing is a health probe (proxy → node); half-open circuit
	// breakers use it to test a site before readmitting traffic.
	MsgPing MsgType = 12
	// MsgPong answers a ping.
	MsgPong MsgType = 13
	// MsgExemplars asks a daemon for its flight-recorder exemplars,
	// optionally filtered by outcome or minimum duration.
	MsgExemplars MsgType = 14
	// MsgExemplarsResult returns the matching exemplars.
	MsgExemplarsResult MsgType = 15

	// maxMsgType is the highest assigned message type; ReadFrame
	// rejects anything beyond it.
	maxMsgType = MsgExemplarsResult
)

// String names a message type for metric labels and diagnostics.
func (t MsgType) String() string {
	switch t {
	case MsgQuery:
		return "query"
	case MsgResult:
		return "result"
	case MsgError:
		return "error"
	case MsgFetch:
		return "fetch"
	case MsgFetchAck:
		return "fetch_ack"
	case MsgStats:
		return "stats"
	case MsgStatsResult:
		return "stats_result"
	case MsgMetrics:
		return "metrics"
	case MsgMetricsResult:
		return "metrics_result"
	case MsgDecisions:
		return "decisions"
	case MsgDecisionsResult:
		return "decisions_result"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	case MsgExemplars:
		return "exemplars"
	case MsgExemplarsResult:
		return "exemplars_result"
	default:
		return "unknown"
	}
}

// MaxFrame bounds accepted payloads (defense against corrupt length
// prefixes).
const MaxFrame = 16 << 20

// frameBuf is a reusable encode buffer: the buffer accumulates header
// and payload so a frame hits the socket in one Write, and the encoder
// is bound to the buffer once so steady-state encoding reuses its
// scratch space instead of reallocating per frame.
type frameBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

// frameBufMaxCap bounds buffers returned to the pool; an occasional
// giant frame must not pin megabytes of scratch forever.
const frameBufMaxCap = 1 << 20

var framePool = sync.Pool{
	New: func() any {
		fb := &frameBuf{}
		fb.enc = json.NewEncoder(&fb.buf)
		return fb
	},
}

// WriteFrame writes one frame and returns the bytes put on the wire.
// Encode buffers are pooled (≤ 1 allocation per frame steady-state —
// see BenchmarkWriteFrame) and each frame reaches w in a single Write.
func WriteFrame(w io.Writer, t MsgType, payload any) (int, error) {
	fb := framePool.Get().(*frameBuf)
	defer func() {
		if fb.buf.Cap() <= frameBufMaxCap {
			framePool.Put(fb)
		}
	}()
	fb.buf.Reset()
	var hdr [5]byte // length+type placeholder, patched below
	fb.buf.Write(hdr[:])
	if err := fb.enc.Encode(payload); err != nil {
		return 0, fmt.Errorf("wire: marshal: %w", err)
	}
	frame := fb.buf.Bytes()
	body := len(frame) - len(hdr) - 1 // Encode appends a trailing newline
	frame = frame[:len(hdr)+body]
	if body > MaxFrame {
		return 0, fmt.Errorf("wire: frame of %d bytes exceeds limit", body)
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(body))
	frame[4] = byte(t)
	if _, err := w.Write(frame); err != nil {
		return 0, err
	}
	return len(frame), nil
}

// readChunk bounds each body allocation: a corrupt length prefix
// claiming megabytes that never arrive must not allocate megabytes up
// front. Bodies grow chunk by chunk as bytes actually appear.
const readChunk = 64 << 10

// ReadFrame reads one frame and returns its type, body, and total
// bytes consumed. Frames with an unassigned type byte or a length
// prefix beyond MaxFrame are rejected before the body is read — a
// corrupt or adversarial header cannot make the reader allocate or
// block for a payload that will never parse.
func ReadFrame(r io.Reader) (MsgType, []byte, int, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return 0, nil, 0, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	t := MsgType(hdr[4])
	if t == 0 || t > maxMsgType {
		return 0, nil, 0, fmt.Errorf("wire: unknown message type %d", hdr[4])
	}
	// Small frames (the common case) allocate once; larger claims grow
	// incrementally so a truncated body wastes at most one chunk.
	size := int(n)
	alloc := size
	if alloc > readChunk {
		alloc = readChunk
	}
	body := make([]byte, 0, alloc)
	for len(body) < size {
		next := len(body) + readChunk
		if next > size {
			next = size
		}
		if cap(body) < next {
			grown := make([]byte, len(body), next)
			copy(grown, body)
			body = grown
		}
		m, err := io.ReadFull(r, body[len(body):next])
		body = body[:len(body)+m]
		if err != nil {
			return 0, nil, 0, err
		}
	}
	return t, body, len(hdr) + size, nil
}

// Decode unmarshals a frame body.
func Decode(body []byte, dst any) error {
	if err := json.Unmarshal(body, dst); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}
