// Package wire implements the federation's TCP protocol and the two
// daemon roles of the paper's prototype: database nodes (bydbd) that
// serve per-site sub-queries and object fetches, and the proxy
// (byproxyd) that collocates the mediator with a bypass-yield cache.
//
// Framing is length-prefixed: a 4-byte big-endian payload length, a
// 1-byte message type, then a JSON payload. Result tuples are bounded
// (engine.Config.MaxResultRows), so frames stay small; the paper's
// gigabyte-scale flows are accounted logically (see the Proxy type).
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// MsgType identifies a frame's payload.
type MsgType uint8

// Protocol message types.
const (
	// MsgQuery carries SQL from client to proxy, or a sub-query from
	// proxy to a database node.
	MsgQuery MsgType = 1
	// MsgResult returns an execution result.
	MsgResult MsgType = 2
	// MsgError returns a failure.
	MsgError MsgType = 3
	// MsgFetch asks a database node for a whole object (a cache
	// load).
	MsgFetch MsgType = 4
	// MsgFetchAck acknowledges an object fetch with its logical size.
	MsgFetchAck MsgType = 5
	// MsgStats asks the proxy for its accounting.
	MsgStats MsgType = 6
	// MsgStatsResult returns the proxy accounting.
	MsgStatsResult MsgType = 7
	// MsgMetrics asks a daemon (proxy or database node) for its full
	// observability snapshot.
	MsgMetrics MsgType = 8
	// MsgMetricsResult returns the snapshot.
	MsgMetricsResult MsgType = 9
	// MsgDecisions asks the proxy for recent decision-ledger records,
	// optionally filtered by object, action, or trace id.
	MsgDecisions MsgType = 10
	// MsgDecisionsResult returns the matching ledger records.
	MsgDecisionsResult MsgType = 11
	// MsgPing is a health probe (proxy → node); half-open circuit
	// breakers use it to test a site before readmitting traffic.
	MsgPing MsgType = 12
	// MsgPong answers a ping.
	MsgPong MsgType = 13

	// maxMsgType is the highest assigned message type; ReadFrame
	// rejects anything beyond it.
	maxMsgType = MsgPong
)

// String names a message type for metric labels and diagnostics.
func (t MsgType) String() string {
	switch t {
	case MsgQuery:
		return "query"
	case MsgResult:
		return "result"
	case MsgError:
		return "error"
	case MsgFetch:
		return "fetch"
	case MsgFetchAck:
		return "fetch_ack"
	case MsgStats:
		return "stats"
	case MsgStatsResult:
		return "stats_result"
	case MsgMetrics:
		return "metrics"
	case MsgMetricsResult:
		return "metrics_result"
	case MsgDecisions:
		return "decisions"
	case MsgDecisionsResult:
		return "decisions_result"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	default:
		return "unknown"
	}
}

// MaxFrame bounds accepted payloads (defense against corrupt length
// prefixes).
const MaxFrame = 16 << 20

// WriteFrame writes one frame and returns the bytes put on the wire.
func WriteFrame(w io.Writer, t MsgType, payload any) (int, error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return 0, fmt.Errorf("wire: marshal: %w", err)
	}
	if len(body) > MaxFrame {
		return 0, fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(body); err != nil {
		return 0, err
	}
	return len(hdr) + len(body), nil
}

// readChunk bounds each body allocation: a corrupt length prefix
// claiming megabytes that never arrive must not allocate megabytes up
// front. Bodies grow chunk by chunk as bytes actually appear.
const readChunk = 64 << 10

// ReadFrame reads one frame and returns its type, body, and total
// bytes consumed. Frames with an unassigned type byte or a length
// prefix beyond MaxFrame are rejected before the body is read — a
// corrupt or adversarial header cannot make the reader allocate or
// block for a payload that will never parse.
func ReadFrame(r io.Reader) (MsgType, []byte, int, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return 0, nil, 0, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	t := MsgType(hdr[4])
	if t == 0 || t > maxMsgType {
		return 0, nil, 0, fmt.Errorf("wire: unknown message type %d", hdr[4])
	}
	// Small frames (the common case) allocate once; larger claims grow
	// incrementally so a truncated body wastes at most one chunk.
	size := int(n)
	alloc := size
	if alloc > readChunk {
		alloc = readChunk
	}
	body := make([]byte, 0, alloc)
	for len(body) < size {
		next := len(body) + readChunk
		if next > size {
			next = size
		}
		if cap(body) < next {
			grown := make([]byte, len(body), next)
			copy(grown, body)
			body = grown
		}
		m, err := io.ReadFull(r, body[len(body):next])
		body = body[:len(body)+m]
		if err != nil {
			return 0, nil, 0, err
		}
	}
	return t, body, len(hdr) + size, nil
}

// Decode unmarshals a frame body.
func Decode(body []byte, dst any) error {
	if err := json.Unmarshal(body, dst); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}
