package wire

import "sync"

// flightGroup coalesces concurrent calls with the same key into one
// execution — the proxy keys it by object id so M concurrent Load
// decisions for the same object issue exactly one WAN fetch. Unlike a
// cache, nothing is remembered once the call returns: a later Load of
// the same object (evict-and-reload) fetches again.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// flightCall is one in-flight execution and its waiters.
type flightCall struct {
	done chan struct{}
	err  error
	dups int64
}

// Do executes fn for key, unless a call for key is already in flight,
// in which case it waits for that call and shares its error. shared
// reports whether this caller piggybacked on another's execution.
func (g *flightGroup) Do(key string, fn func() error) (err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		c.dups++
		g.mu.Unlock()
		<-c.done
		return c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.err, false
}
