package wire

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"sync"
	"testing"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/federation"
	"bypassyield/internal/obs"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the daemons' JSONL
// sinks write from serving goroutines while the test reads after the
// fact.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) Reader() io.Reader {
	s.mu.Lock()
	defer s.mu.Unlock()
	return bytes.NewReader(append([]byte(nil), s.b.Bytes()...))
}

// tracedFederation is testFederation with a JSONL span sink per
// daemon, as byproxyd/bydbd -trace-out produce.
func tracedFederation(t *testing.T, policy core.Policy, gran federation.Granularity) (*Client, *Proxy, map[string]*syncBuffer, func()) {
	t.Helper()
	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 50000})
	if err != nil {
		t.Fatal(err)
	}
	quiet := func(string, ...any) {}

	sites := map[string]bool{}
	for i := range s.Tables {
		sites[s.Tables[i].Site] = true
	}
	logs := map[string]*syncBuffer{"proxy": {}}
	var nodes []*DBNode
	addrs := map[string]string{}
	for site := range sites {
		n := NewDBNode(site, db)
		n.SetLogf(quiet)
		buf := &syncBuffer{}
		logs[site] = buf
		n.SetTracer(obs.NewTracer(obs.NewJSONL(buf)))
		addr, err := n.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		addrs[site] = addr
	}

	med, err := federation.New(federation.Config{
		Schema: s, Engine: db, Policy: policy, Granularity: gran,
		Obs: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy := NewProxy(med, gran, addrs)
	proxy.SetLogf(quiet)
	proxy.SetTracer(obs.NewTracer(obs.NewJSONL(logs["proxy"])))
	paddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	return client, proxy, logs, func() {
		client.Close()
		proxy.Close()
		for _, n := range nodes {
			n.Close()
		}
	}
}

// TestEndToEndTraceTree is the tracing acceptance test: a traced
// workload against a proxy and two database nodes must leave span
// logs that, merged across all three daemons, reconstruct into one
// connected tree per client query — rooted at proxy.query, no
// orphans, with the nodes' execute/fetch spans attached under the
// proxy's RPC legs — and the per-trace decide yields must sum to the
// proxy's delivered-byte accounting (D_A = D_S + D_C, uniform net).
func TestEndToEndTraceTree(t *testing.T) {
	cap := catalog.EDR().TotalBytes()
	client, _, logs, shutdown := tracedFederation(t,
		core.NewRateProfile(core.RateProfileConfig{Capacity: cap}), federation.Columns)
	defer shutdown()

	// A fat repeated query drives bypass → load → hit (exercising the
	// fetch leg), plus a cross-site join touching both nodes.
	queries := 0
	for i := 0; i < 6; i++ {
		if _, err := client.Query("select ra, dec from photoobj where ra between 0 and 350"); err != nil {
			t.Fatal(err)
		}
		queries++
	}
	if _, err := client.Query(`select p.objid, s.z from specobj s, photoobj p
		where p.objid = s.objid and s.z < 3`); err != nil {
		t.Fatal(err)
	}
	queries++
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}

	// Merge the three daemons' span logs, tagging provenance.
	var merged []obs.Event
	nodeSpans := map[string]map[string]int{} // source buffer → span name → count
	for source, buf := range logs {
		evs, err := obs.ReadEvents(buf.Reader())
		if err != nil {
			t.Fatalf("reading %s span log: %v", source, err)
		}
		counts := map[string]int{}
		for _, e := range evs {
			counts[e.Name]++
		}
		nodeSpans[source] = counts
		merged = append(merged, evs...)
	}
	for _, site := range []string{catalog.SitePhoto, catalog.SiteSpec} {
		if nodeSpans[site]["dbnode.execute"] == 0 {
			t.Fatalf("node %s logged no dbnode.execute spans: %v", site, nodeSpans[site])
		}
	}
	if nodeSpans[catalog.SitePhoto]["dbnode.fetch"] == 0 {
		t.Fatalf("load decisions should produce dbnode.fetch spans: %v", nodeSpans[catalog.SitePhoto])
	}

	trees := obs.BuildTraces(merged)
	if len(trees) != queries {
		t.Fatalf("traces = %d, want %d (one per client query)", len(trees), queries)
	}
	var yieldSum int64
	remoteLegs := 0
	for _, tree := range trees {
		if len(tree.Roots) != 1 || tree.Orphans != 0 {
			t.Fatalf("trace %s is not a single connected tree: roots=%d orphans=%d",
				tree.ID, len(tree.Roots), tree.Orphans)
		}
		root := tree.Roots[0]
		if root.Name != "proxy.query" {
			t.Fatalf("trace %s rooted at %q, want proxy.query", tree.ID, root.Name)
		}
		tree.Walk(func(n *obs.SpanNode, depth int) {
			switch n.Name {
			case "proxy.decide":
				y, err := strconv.ParseInt(n.AttrValue("yield"), 10, 64)
				if err != nil {
					t.Fatalf("decide span without parseable yield: %+v", n.Event)
				}
				yieldSum += y
			case "dbnode.execute", "dbnode.fetch":
				// Remote spans must be children of the proxy's RPC legs,
				// i.e. nested at depth ≥ 2 under the root.
				if depth < 2 {
					t.Fatalf("remote span %s at depth %d", n.Name, depth)
				}
				remoteLegs++
			}
		})
	}
	if remoteLegs == 0 {
		t.Fatal("no remote spans joined the proxy's traces")
	}
	// Per-leg yields reconcile with the flow accounting: under uniform
	// network costs every access's yield is delivered either by bypass
	// (D_S) or from the cache (D_C), so the trace-derived sum equals
	// D_A exactly.
	if da := st.Acct.DeliveredBytes(); yieldSum != da {
		t.Fatalf("sum of decide yields = %d, accounting D_A = %d", yieldSum, da)
	}
}

// TestTracedFederationMetricsEndpoint serves the proxy's registry over
// the HTTP telemetry plane after a workload and checks the exposition
// is well-formed Prometheus text carrying the windowed flow rates.
func TestTracedFederationMetricsEndpoint(t *testing.T) {
	cap := catalog.EDR().TotalBytes()
	client, proxy, _, shutdown := tracedFederation(t,
		core.NewRateProfile(core.RateProfileConfig{Capacity: cap}), federation.Columns)
	defer shutdown()

	for i := 0; i < 4; i++ {
		if _, err := client.Query("select ra, dec from photoobj where ra between 0 and 350"); err != nil {
			t.Fatal(err)
		}
	}

	srv, err := obs.StartHTTP("127.0.0.1:0", obs.NewHTTPHandler(proxy.Obs().Snapshot))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	out := string(body)

	// Well-formed exposition: every non-comment line is a sample;
	// every sample belongs to a # TYPE'd family.
	sampleRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9.e+-]+$`)
	typed := map[string]bool{}
	typeRe := regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	nameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*`)
	for _, line := range bytes.Split(body, []byte("\n")) {
		l := string(line)
		if l == "" {
			continue
		}
		if m := typeRe.FindStringSubmatch(l); m != nil {
			typed[m[1]] = true
			continue
		}
		if !sampleRe.MatchString(l) {
			t.Fatalf("malformed exposition line: %q", l)
		}
		name := nameRe.FindString(l)
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if cut, ok := bytes.CutSuffix([]byte(name), []byte(suf)); ok {
				base = string(cut)
				break
			}
		}
		if !typed[name] && !typed[base] {
			t.Fatalf("sample %q has no preceding # TYPE", name)
		}
	}

	// The windowed D_S/D_L/D_C and query rates must be exported — the
	// workload just ran, so the window is live (values may be 0 for
	// flows the policy did not exercise, but the families must exist).
	for _, rate := range []string{
		"core_bypass_bytes_rate", "core_fetch_bytes_rate",
		"core_cache_bytes_rate", "core_query_rate",
	} {
		if !typed[rate] {
			t.Fatalf("/metrics missing windowed rate %s", rate)
		}
	}
	// The query rate in particular is strictly positive right after a
	// burst of queries.
	qr := regexp.MustCompile(`(?m)^core_query_rate ([0-9.e+-]+)$`).FindStringSubmatch(out)
	if qr == nil {
		t.Fatal("core_query_rate sample missing")
	}
	if v, _ := strconv.ParseFloat(qr[1], 64); v <= 0 {
		t.Fatalf("core_query_rate = %s, want > 0", qr[1])
	}
}
