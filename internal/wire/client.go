package wire

import (
	"context"
	"fmt"
	"net"
	"time"

	"bypassyield/internal/obs"
)

// DefaultDialTimeout bounds connection establishment. A black-holed
// listener must fail a client in seconds, not leave it hanging on the
// kernel's multi-minute TCP handshake timeout.
const DefaultDialTimeout = 5 * time.Second

// Client is a synchronous connection to a proxy (or directly to a
// database node for diagnostics).
type Client struct {
	conn net.Conn
}

// Dial connects to a proxy at addr, bounded by DefaultDialTimeout.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, DefaultDialTimeout)
}

// DialTimeout connects to a proxy at addr, giving up after timeout
// (≤ 0 means no bound).
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// NewClient wraps an established connection (a custom dialer, a
// fault-injected conn in tests) in a Client. The Client owns the conn
// and closes it.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn}
}

// DialContext connects to a proxy at addr under ctx's deadline and
// cancellation.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Query sends SQL and returns the result.
func (c *Client) Query(sql string) (*ResultMsg, error) {
	return c.QueryTraced(sql, obs.TraceContext{})
}

// QueryTraced is Query with a client-side trace context: the proxy
// continues the caller's trace instead of minting a fresh root, so a
// driver program's own spans and the federation's spans merge into
// one tree. A zero ctx is equivalent to Query.
func (c *Client) QueryTraced(sql string, ctx obs.TraceContext) (*ResultMsg, error) {
	q := QueryMsg{
		SQL:        sql,
		TraceID:    obs.FormatID(ctx.TraceID),
		ParentSpan: obs.FormatID(ctx.SpanID),
	}
	if _, err := WriteFrame(c.conn, MsgQuery, q); err != nil {
		return nil, err
	}
	t, body, _, err := ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	switch t {
	case MsgResult:
		var res ResultMsg
		if err := Decode(body, &res); err != nil {
			return nil, err
		}
		return &res, nil
	case MsgError:
		var e ErrorMsg
		if err := Decode(body, &e); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("wire: server: %s", e.Message)
	default:
		return nil, fmt.Errorf("wire: unexpected response type %s", t)
	}
}

// roundTrip sends one request frame and decodes the expected
// response type into dst, unwrapping server errors.
func (c *Client) roundTrip(req MsgType, payload any, want MsgType, dst any) error {
	if _, err := WriteFrame(c.conn, req, payload); err != nil {
		return err
	}
	t, body, _, err := ReadFrame(c.conn)
	if err != nil {
		return err
	}
	switch t {
	case want:
		return Decode(body, dst)
	case MsgError:
		var e ErrorMsg
		if err := Decode(body, &e); err != nil {
			return err
		}
		return fmt.Errorf("wire: server: %s", e.Message)
	default:
		return fmt.Errorf("wire: unexpected response type %s", t)
	}
}

// Stats fetches the proxy's accounting snapshot.
func (c *Client) Stats() (*StatsResultMsg, error) {
	var res StatsResultMsg
	if err := c.roundTrip(MsgStats, StatsMsg{}, MsgStatsResult, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Decisions fetches recent decision-ledger records from the proxy,
// filtered by the query's object/action/trace fields, plus the shadow
// counterfactual accounting.
func (c *Client) Decisions(q DecisionsMsg) (*DecisionsResultMsg, error) {
	var res DecisionsResultMsg
	if err := c.roundTrip(MsgDecisions, q, MsgDecisionsResult, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Ping round-trips a health probe (proxies and database nodes both
// answer).
func (c *Client) Ping() (*PongMsg, error) {
	var res PongMsg
	if err := c.roundTrip(MsgPing, PingMsg{}, MsgPong, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Exemplars fetches a daemon's flight-recorder exemplars (proxies
// and database nodes both answer), filtered by the query's
// outcome/min-duration fields.
func (c *Client) Exemplars(q ExemplarsMsg) (*ExemplarsResultMsg, error) {
	var res ExemplarsResultMsg
	if err := c.roundTrip(MsgExemplars, q, MsgExemplarsResult, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Metrics fetches a daemon's observability snapshot (proxies and
// database nodes both answer).
func (c *Client) Metrics() (*MetricsResultMsg, error) {
	var res MetricsResultMsg
	if err := c.roundTrip(MsgMetrics, MetricsMsg{}, MsgMetricsResult, &res); err != nil {
		return nil, err
	}
	return &res, nil
}
