package wire

import (
	"fmt"
	"net"
)

// Client is a synchronous connection to a proxy (or directly to a
// database node for diagnostics).
type Client struct {
	conn net.Conn
}

// Dial connects to a proxy at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Query sends SQL and returns the result.
func (c *Client) Query(sql string) (*ResultMsg, error) {
	if _, err := WriteFrame(c.conn, MsgQuery, QueryMsg{SQL: sql}); err != nil {
		return nil, err
	}
	t, body, _, err := ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	switch t {
	case MsgResult:
		var res ResultMsg
		if err := Decode(body, &res); err != nil {
			return nil, err
		}
		return &res, nil
	case MsgError:
		var e ErrorMsg
		if err := Decode(body, &e); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("wire: server: %s", e.Message)
	default:
		return nil, fmt.Errorf("wire: unexpected response type %d", t)
	}
}

// Stats fetches the proxy's accounting snapshot.
func (c *Client) Stats() (*StatsResultMsg, error) {
	if _, err := WriteFrame(c.conn, MsgStats, StatsMsg{}); err != nil {
		return nil, err
	}
	t, body, _, err := ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	switch t {
	case MsgStatsResult:
		var res StatsResultMsg
		if err := Decode(body, &res); err != nil {
			return nil, err
		}
		return &res, nil
	case MsgError:
		var e ErrorMsg
		if err := Decode(body, &e); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("wire: server: %s", e.Message)
	default:
		return nil, fmt.Errorf("wire: unexpected response type %d", t)
	}
}
