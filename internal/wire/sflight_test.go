package wire

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightGroupCoalesces proves the single-flight contract: M
// concurrent calls for one key execute fn exactly once, with M-1
// callers reporting shared=true and all sharing the leader's error.
func TestFlightGroupCoalesces(t *testing.T) {
	const m = 16
	var (
		g       flightGroup
		execs   atomic.Int64
		shared  atomic.Int64
		release = make(chan struct{})
		entered = make(chan struct{}, m)
		wg      sync.WaitGroup
	)
	sentinel := errors.New("fetch failed")
	fn := func() error {
		execs.Add(1)
		<-release // block so every caller piles onto this flight
		return sentinel
	}
	wg.Add(m)
	for i := 0; i < m; i++ {
		go func() {
			defer wg.Done()
			entered <- struct{}{}
			err, sh := g.Do("edr/photoobj", fn)
			if !errors.Is(err, sentinel) {
				t.Errorf("err = %v, want sentinel", err)
			}
			if sh {
				shared.Add(1)
			}
		}()
	}
	for i := 0; i < m; i++ {
		<-entered
	}
	// All m goroutines are at or past Do; wait until the followers are
	// parked on the leader before releasing it.
	for {
		g.mu.Lock()
		c := g.m["edr/photoobj"]
		var dups int64
		if c != nil {
			dups = c.dups
		}
		g.mu.Unlock()
		if dups == m-1 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	wg.Wait()
	if n := execs.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1", n)
	}
	if n := shared.Load(); n != m-1 {
		t.Fatalf("%d shared callers, want %d", n, m-1)
	}
}

// Distinct keys must not coalesce.
func TestFlightGroupDistinctKeys(t *testing.T) {
	var g flightGroup
	var execs atomic.Int64
	var wg sync.WaitGroup
	for _, key := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			g.Do(k, func() error { execs.Add(1); return nil })
		}(key)
	}
	wg.Wait()
	if n := execs.Load(); n != 3 {
		t.Fatalf("fn executed %d times, want 3", n)
	}
}

// A completed flight must not be remembered: single-flight is not a
// cache, so evict-and-reload fetches the object again.
func TestFlightGroupRerunsAfterCompletion(t *testing.T) {
	var g flightGroup
	var execs int
	for i := 0; i < 3; i++ {
		err, shared := g.Do("k", func() error { execs++; return nil })
		if err != nil || shared {
			t.Fatalf("call %d: err=%v shared=%v", i, err, shared)
		}
	}
	if execs != 3 {
		t.Fatalf("fn executed %d times, want 3", execs)
	}
}
