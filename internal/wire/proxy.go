package wire

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/federation"
	"bypassyield/internal/obs"
	"bypassyield/internal/obs/flightrec"
	"bypassyield/internal/obs/ledger"
	"bypassyield/internal/sqlparse"
)

// DefaultRPCTimeout bounds each node RPC exchange (write + read). A
// hung node must not hold the proxy's mediation lock forever; see
// SetRPCTimeout.
const DefaultRPCTimeout = 10 * time.Second

// MaxStatsCachedObjects bounds the cached-object ids listed in a
// stats response; larger caches report a prefix (sorted by id).
const MaxStatsCachedObjects = 64

// DefaultMaxInflight bounds concurrently pipelined client queries;
// see Proxy.SetConcurrency and byproxyd -max-inflight.
const DefaultMaxInflight = 64

// Proxy is the paper's mediator-collocated bypass-yield cache as a
// network daemon. Clients send SQL; the proxy mediates the query,
// drives the cache policy, and exchanges sub-queries and object
// fetches with the per-site database nodes for every bypassed or
// loaded object.
//
// The query pipeline is concurrent: mediation's decision phase is a
// short critical section inside the mediator (sequential, preserving
// query ordering and exact Σ-yield = D_A accounting), while each
// query's WAN legs — object fetches and bypass sub-queries — fan out
// in parallel across sites over bounded per-site connection pools, and
// whole queries overlap end-to-end up to the inflight bound.
// Concurrent Load decisions for the same object are single-flighted:
// one WAN fetch serves every waiter.
//
// Byte economics are logical (the mediator's Figure-1 accounting over
// logical result sizes); the node RPCs carry bounded tuple samples,
// and their physical frame bytes are tracked separately as transport
// counters.
//
// Observability: the proxy publishes into an obs.Registry — the
// mediator's, when the mediator was built with one (so core and
// federation families appear in the same snapshot), otherwise its
// own. The registry is served over MsgMetrics. Metric families:
//
//	wire.frames_rx / wire.frames_tx    client frames per message type
//	wire.bytes_rx / wire.bytes_tx      client frame bytes per message type
//	wire.node_tx_bytes / node_rx_bytes node RPC transport byte totals
//	wire.rpc_latency_us                node RPC latency histogram per site
//	wire.rpc_errors                    failed node RPCs per site
//	wire.rpc_timeouts                  node RPCs hitting the deadline, per site
//	wire.rpc_retries                   reconnect/backoff retries per site
//	wire.node_dials                    node connections dialed, per site
//	wire.node_conn_drops               node connections dropped, per site
//	wire.client_conns_opened/_closed   client connection churn
//	wire.breaker_state                 per-site breaker position (0 closed,
//	                                   1 open, 2 half-open)
//	wire.breaker_transitions           breaker transitions per site/state
//	wire.retry_backoff_seconds         backoff slept before RPC retries (ns)
//	wire.probes                        half-open probe RPCs per site/outcome
//	wire.pool_active                   per-site node conns checked out
//	wire.pool_idle                     per-site node conns parked for reuse
//	wire.pool_waits                    per-site pool Gets that had to block
//	wire.pool_wait_us                  per-site histogram of time blocked
//	                                   waiting for a pool slot
//	wire.pool_size                     per-site checked-out bound (moves
//	                                   under adaptive sizing)
//	wire.fetch_coalesced               object fetches served by another
//	                                   in-flight fetch (single-flight dedup)
//
// The proxy also runs an always-on flight recorder (see
// internal/obs/flightrec): every query that errors, is served
// degraded, or breaches the recorder's latency threshold publishes a
// full exemplar — mediation phase timings, per-leg wire timings,
// decision record, breaker states, runtime snapshot, and a computed
// critical-path attribution — served over MsgExemplars and exported
// as obs.exemplars / obs.tail_cause / obs.tail_cause_us counters.
// The registry additionally carries runtime.* self-observation gauges
// refreshed at every Snapshot.
type Proxy struct {
	mu         sync.Mutex // guards closed
	med        *federation.Mediator
	gran       federation.Granularity
	nodeAddrs  map[string]string // site → address
	pools      map[string]*pool  // read-only after construction
	pcfg       PoolConfig
	rpcTimeout time.Duration

	// querySem bounds concurrently pipelined queries; legSem (nil =
	// unbounded) bounds concurrently executing WAN legs across queries.
	querySem    chan struct{}
	legSem      chan struct{}
	fetchFlight flightGroup

	// dialer opens node connections; tests and -chaos replace it to
	// interpose fault injectors.
	dialer      func(site, addr string) (net.Conn, error)
	dialTimeout time.Duration
	bcfg        BreakerConfig
	breakers    map[string]*breaker // read-only after construction
	proberStop  chan struct{}
	adaptStop   chan struct{}
	adaptEvery  time.Duration

	ln     net.Listener
	logf   func(format string, args ...any)
	tracer *obs.Tracer
	wg     sync.WaitGroup
	closed bool

	reg          *obs.Registry
	framesRx     *obs.CounterFamily
	framesTx     *obs.CounterFamily
	bytesRx      *obs.CounterFamily
	bytesTx      *obs.CounterFamily
	nodeTx       *obs.Counter
	nodeRx       *obs.Counter
	rpcLatency   *obs.HistogramFamily
	rpcErrors    *obs.CounterFamily
	rpcTimeouts  *obs.CounterFamily
	rpcRetries   *obs.CounterFamily
	nodeDials    *obs.CounterFamily
	nodeDrops    *obs.CounterFamily
	connsOpened  *obs.Counter
	connsClosed  *obs.Counter
	breakerState *obs.GaugeFamily
	breakerTrans *obs.CounterFamily
	retryBackoff *obs.Histogram
	probes       *obs.CounterFamily
	poolActive   *obs.GaugeFamily
	poolIdle     *obs.GaugeFamily
	poolWaits    *obs.CounterFamily
	poolWaitDur  *obs.HistogramFamily
	poolSize     *obs.GaugeFamily
	coalesced    *obs.CounterFamily

	flight *flightrec.Recorder
}

// NewProxy builds a proxy around a mediator. nodeAddrs maps each site
// to its database node's TCP address; sites absent from the map are
// served without node RPCs (pure simulation mode). The proxy adopts
// the mediator's obs registry when it has one, so one MsgMetrics
// snapshot covers every layer.
func NewProxy(med *federation.Mediator, gran federation.Granularity, nodeAddrs map[string]string) *Proxy {
	reg := med.Obs()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	p := &Proxy{
		med:         med,
		gran:        gran,
		nodeAddrs:   nodeAddrs,
		rpcTimeout:  DefaultRPCTimeout,
		dialTimeout: DefaultDialTimeout,
		bcfg:        DefaultBreakerConfig(),
		pcfg:        PoolConfig{}.sanitize(),
		querySem:    make(chan struct{}, DefaultMaxInflight),
		logf:        log.Printf,
		reg:         reg,
	}
	p.dialer = func(_, addr string) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, p.dialTimeout)
	}
	p.framesRx = reg.CounterFamily("wire.frames_rx")
	p.framesTx = reg.CounterFamily("wire.frames_tx")
	p.bytesRx = reg.CounterFamily("wire.bytes_rx")
	p.bytesTx = reg.CounterFamily("wire.bytes_tx")
	p.nodeTx = reg.Counter("wire.node_tx_bytes")
	p.nodeRx = reg.Counter("wire.node_rx_bytes")
	p.rpcLatency = reg.HistogramFamily("wire.rpc_latency_us", obs.DefaultLatencyBuckets())
	p.rpcErrors = reg.CounterFamily("wire.rpc_errors")
	p.rpcTimeouts = reg.CounterFamily("wire.rpc_timeouts")
	p.rpcRetries = reg.CounterFamily("wire.rpc_retries")
	p.nodeDials = reg.CounterFamily("wire.node_dials")
	p.nodeDrops = reg.CounterFamily("wire.node_conn_drops")
	p.connsOpened = reg.Counter("wire.client_conns_opened")
	p.connsClosed = reg.Counter("wire.client_conns_closed")
	p.breakerState = reg.GaugeFamily("wire.breaker_state")
	p.breakerTrans = reg.CounterFamily("wire.breaker_transitions")
	// Backoff pauses in nanoseconds, 1ms..16s exponential.
	p.retryBackoff = reg.Histogram("wire.retry_backoff_seconds", obs.ExpBuckets(1_000_000, 4, 8))
	p.probes = reg.CounterFamily("wire.probes")
	p.poolActive = reg.GaugeFamily("wire.pool_active")
	p.poolIdle = reg.GaugeFamily("wire.pool_idle")
	p.poolWaits = reg.CounterFamily("wire.pool_waits")
	p.poolWaitDur = reg.HistogramFamily("wire.pool_wait_us", obs.DefaultLatencyBuckets())
	p.poolSize = reg.GaugeFamily("wire.pool_size")
	p.coalesced = reg.CounterFamily("wire.fetch_coalesced")
	p.adaptEvery = DefaultAdaptInterval
	obs.EnableRuntimeStats(reg)
	p.buildFlight(flightrec.DefaultConfig())
	p.buildBreakers()
	p.buildPools()
	med.SetHealth(p)
	return p
}

// buildFlight (re)creates the flight recorder; the annotate hook
// stamps every exemplar with the per-site breaker positions so a tail
// inspection sees the federation's health at capture time.
func (p *Proxy) buildFlight(cfg flightrec.Config) {
	p.flight = flightrec.New(cfg, p.reg)
	p.flight.SetAnnotate(func(e *flightrec.Exemplar) {
		for site, br := range p.breakers {
			e.Breakers = append(e.Breakers, flightrec.BreakerRec{Site: site, State: br.State().String()})
		}
		sort.Slice(e.Breakers, func(i, j int) bool { return e.Breakers[i].Site < e.Breakers[j].Site })
	})
}

// SetFlightConfig replaces the flight recorder's capture tuning
// (threshold, ring capacity, reservoir). Call before Listen.
func (p *Proxy) SetFlightConfig(cfg flightrec.Config) { p.buildFlight(cfg) }

// SetExemplarSink attaches a sink receiving every published exemplar
// (byproxyd -exemplar-out). Call before Listen.
func (p *Proxy) SetExemplarSink(s flightrec.Sink) { p.flight.SetSink(s) }

// Flight returns the proxy's flight recorder.
func (p *Proxy) Flight() *flightrec.Recorder { return p.flight }

// buildPools creates one bounded connection pool per configured node
// site. The map is never mutated afterwards, so lock-free reads are
// safe; each pool has its own lock.
func (p *Proxy) buildPools() {
	p.pools = make(map[string]*pool, len(p.nodeAddrs))
	m := poolMetrics{
		active:  p.poolActive,
		idle:    p.poolIdle,
		waits:   p.poolWaits,
		waitDur: p.poolWaitDur,
		dials:   p.nodeDials,
		drops:   p.nodeDrops,
	}
	dial := func(site, addr string) (net.Conn, error) { return p.dialer(site, addr) }
	for site, addr := range p.nodeAddrs {
		p.pools[site] = newPool(site, addr, p.pcfg, dial, m)
		p.poolSize.Set(site, int64(p.pools[site].MaxActive()))
	}
}

// buildBreakers creates one breaker per configured node site. The map
// is never mutated afterwards, so lock-free reads are safe.
func (p *Proxy) buildBreakers() {
	p.breakers = make(map[string]*breaker, len(p.nodeAddrs))
	onTransition := func(site string, from, to BreakerState) {
		p.breakerState.Set(site, int64(to))
		p.breakerTrans.Add(site+"/"+to.String(), 1)
		if to == BreakerOpen {
			// Pooled idle connections to a tripped site are presumed
			// dead; drop them so recovery starts from fresh dials.
			if sp := p.pools[site]; sp != nil {
				sp.DropIdle()
			}
		}
		p.tracer.Event("proxy.breaker_transition",
			obs.A("site", site), obs.A("from", from.String()), obs.A("to", to.String()))
		p.logf("proxy: breaker %s: %s -> %s", site, from, to)
	}
	for site := range p.nodeAddrs {
		p.breakers[site] = newBreaker(site, p.bcfg, onTransition)
		p.breakerState.Set(site, int64(BreakerClosed))
	}
}

// SetLogf replaces the proxy's logger.
func (p *Proxy) SetLogf(f func(string, ...any)) { p.logf = f }

// SetTracer attaches a span/event tracer (per-query spans, node RPC
// failures). Nil detaches.
func (p *Proxy) SetTracer(t *obs.Tracer) { p.tracer = t }

// SetRPCTimeout replaces the per-RPC deadline applied to node
// exchanges; d ≤ 0 disables deadlines. Call before Listen.
func (p *Proxy) SetRPCTimeout(d time.Duration) { p.rpcTimeout = d }

// SetDialTimeout bounds node connection establishment (default
// DefaultDialTimeout). Call before Listen.
func (p *Proxy) SetDialTimeout(d time.Duration) { p.dialTimeout = d }

// SetDialer replaces how node connections are opened — tests and the
// -chaos flag interpose fault injectors here. Call before Listen.
func (p *Proxy) SetDialer(f func(site, addr string) (net.Conn, error)) {
	if f != nil {
		p.dialer = f
	}
}

// SetBreakerConfig replaces the circuit-breaker and retry tuning,
// rebuilding the per-site breakers. Call before Listen.
func (p *Proxy) SetBreakerConfig(cfg BreakerConfig) {
	p.bcfg = cfg.sanitize()
	p.buildBreakers()
}

// SetPoolConfig replaces the per-site connection-pool bounds,
// rebuilding the pools. With cfg.Adaptive the proxy re-derives each
// site's bound every DefaultAdaptInterval from the interval's
// wire.pool_waits and wire.rpc_latency_us deltas (see AdaptPoolSize);
// MaxActive then only seeds the starting size. Call before Listen.
func (p *Proxy) SetPoolConfig(cfg PoolConfig) {
	p.pcfg = cfg.sanitize()
	p.pcfg.Adaptive = cfg.Adaptive
	p.buildPools()
}

// SetConcurrency tunes the pipeline: maxInflight bounds concurrently
// pipelined client queries (≤ 0 restores DefaultMaxInflight;
// 1 serializes queries end-to-end — the pre-pipeline behaviour);
// maxLegs bounds WAN legs executing at once across all queries (≤ 0
// means unbounded; per-site pressure is already capped by the pools).
// Call before Listen.
func (p *Proxy) SetConcurrency(maxInflight, maxLegs int) {
	if maxInflight <= 0 {
		maxInflight = DefaultMaxInflight
	}
	p.querySem = make(chan struct{}, maxInflight)
	if maxLegs > 0 {
		p.legSem = make(chan struct{}, maxLegs)
	} else {
		p.legSem = nil
	}
}

// BreakerState reports a site's breaker position (closed for sites
// without a configured node).
func (p *Proxy) BreakerState(site string) BreakerState {
	return p.breakers[site].State()
}

// SiteAvailable implements federation.SiteHealth: the mediator asks
// it before charging a bypass or load whether the site can serve at
// all. Sites without a configured node are simulation-mode and always
// available; otherwise only a closed breaker admits traffic.
func (p *Proxy) SiteAvailable(site string) (bool, string) {
	br, ok := p.breakers[site]
	if !ok {
		return true, ""
	}
	state, retryIn := br.Snapshot()
	if state == BreakerClosed {
		return true, ""
	}
	reason := fmt.Sprintf("breaker %s site=%s", state, site)
	if retryIn > 0 {
		reason += fmt.Sprintf(" retry-in=%s", retryIn.Round(time.Millisecond))
	}
	return false, reason
}

// Obs returns the registry the proxy publishes into.
func (p *Proxy) Obs() *obs.Registry { return p.reg }

// Listen starts accepting clients on addr and returns the bound
// address.
func (p *Proxy) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	p.ln = ln
	p.wg.Add(1)
	go p.acceptLoop()
	if len(p.breakers) > 0 {
		p.proberStop = make(chan struct{})
		p.wg.Add(1)
		go p.probeLoop()
	}
	if p.pcfg.Adaptive && len(p.pools) > 0 {
		p.adaptStop = make(chan struct{})
		p.wg.Add(1)
		go p.adaptLoop()
	}
	return ln.Addr().String(), nil
}

// Close stops the listener and prober, drains the connection pools,
// and waits for in-flight connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	alreadyClosed := p.closed
	p.closed = true
	p.mu.Unlock()
	if p.proberStop != nil && !alreadyClosed {
		close(p.proberStop)
	}
	if p.adaptStop != nil && !alreadyClosed {
		close(p.adaptStop)
	}
	var err error
	if p.ln != nil {
		err = p.ln.Close()
	}
	p.wg.Wait()
	for _, sp := range p.pools {
		sp.Close()
	}
	return err
}

// probeLoop drives half-open probing: every ProbeInterval it asks
// each breaker whether a probe is due (open + backoff elapsed, or
// already half-open) and round-trips a ping to the site on a fresh
// connection. Probes run outside the mediation lock, so a recovering
// site is readmitted even while queries are flowing.
func (p *Proxy) probeLoop() {
	defer p.wg.Done()
	tick := time.NewTicker(p.bcfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-p.proberStop:
			return
		case <-tick.C:
			for site, br := range p.breakers {
				if br.TryProbe() {
					p.probe(site, br)
				}
			}
		}
	}
}

// probe round-trips one MsgPing to a site and feeds the outcome to
// its breaker.
func (p *Proxy) probe(site string, br *breaker) {
	ok := p.probeOnce(site)
	if ok {
		p.probes.Add(site+"/ok", 1)
		br.RecordSuccess()
		return
	}
	p.probes.Add(site+"/fail", 1)
	br.RecordFailure()
}

// adaptLoop re-derives each site's pool bound every adaptEvery from
// the interval's observed demand: the wire.pool_waits delta (Gets that
// blocked) and the RPC rate and mean latency from the
// wire.rpc_latency_us histogram delta. See AdaptPoolSize for the
// sizing rule. The loop reads registry snapshots rather than pool
// internals so the signal is exactly what an operator watching the
// metrics would see.
func (p *Proxy) adaptLoop() {
	defer p.wg.Done()
	tick := time.NewTicker(p.adaptEvery)
	defer tick.Stop()
	prev := p.reg.Snapshot()
	prevT := time.Now()
	for {
		select {
		case <-p.adaptStop:
			return
		case <-tick.C:
			snap := p.reg.Snapshot()
			now := time.Now()
			dt := now.Sub(prevT).Seconds()
			if dt > 0 {
				p.adaptOnce(prev, snap, dt)
			}
			prev, prevT = snap, now
		}
	}
}

// adaptOnce applies one adaptive-sizing pass over every site pool
// given consecutive registry snapshots dt seconds apart.
func (p *Proxy) adaptOnce(prev, snap obs.Snapshot, dt float64) {
	for site, sp := range p.pools {
		waits := snap.CounterValue("wire.pool_waits", site) -
			prev.CounterValue("wire.pool_waits", site)
		var legsPerSec, meanSec float64
		if h, ok := snap.HistogramSnap("wire.rpc_latency_us", site); ok {
			if ph, ok := prev.HistogramSnap("wire.rpc_latency_us", site); ok {
				h = h.Sub(ph)
			}
			if h.Count > 0 {
				legsPerSec = float64(h.Count) / dt
				meanSec = float64(h.Sum) / float64(h.Count) / 1e6
			}
		}
		cur := sp.MaxActive()
		next := AdaptPoolSize(cur, waits, legsPerSec, meanSec)
		if next != cur {
			sp.Resize(next)
			p.poolSize.Set(site, int64(next))
			p.logf("proxy: pool %s: adaptive resize %d -> %d (waits=%d rate=%.1f/s latency=%.1fms)",
				site, cur, next, waits, legsPerSec, meanSec*1e3)
		}
	}
}

func (p *Proxy) probeOnce(site string) bool {
	conn, err := p.dialer(site, p.nodeAddrs[site])
	if err != nil {
		return false
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(p.bcfg.ProbeTimeout)); err != nil {
		return false
	}
	if _, err := WriteFrame(conn, MsgPing, PingMsg{}); err != nil {
		return false
	}
	t, _, _, err := ReadFrame(conn)
	return err == nil && t == MsgPong
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if !closed && !errors.Is(err, net.ErrClosed) {
				p.logf("proxy: accept: %v", err)
			}
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer conn.Close()
			p.connsOpened.Add(1)
			defer p.connsClosed.Add(1)
			p.serveConn(conn)
		}()
	}
}

// send writes one frame to a client, counting it.
func (p *Proxy) send(conn net.Conn, t MsgType, payload any) {
	n, err := WriteFrame(conn, t, payload)
	if err != nil {
		return
	}
	label := t.String()
	p.framesTx.Add(label, 1)
	p.bytesTx.Add(label, int64(n))
}

func (p *Proxy) serveConn(conn net.Conn) {
	for {
		t, body, rn, err := ReadFrame(conn)
		if err != nil {
			return
		}
		label := t.String()
		p.framesRx.Add(label, 1)
		p.bytesRx.Add(label, int64(rn))
		switch t {
		case MsgQuery:
			var q QueryMsg
			if err := Decode(body, &q); err != nil {
				p.send(conn, MsgError, ErrorMsg{Message: err.Error()})
				continue
			}
			// Root span per client query — or a continuation when the
			// client shipped its own trace context (Child degrades to
			// Root on a zero parent).
			span := p.tracer.Child(q.TraceContext(), "proxy.query")
			ctx := span.Context()
			if ctx.TraceID == 0 {
				// Tracing disabled: still propagate the client's trace
				// id so ledger records stay correlated.
				ctx.TraceID = q.TraceContext().TraceID
			}
			fc := p.flight.Begin()
			fc.SetQuery(q.SQL, ctx.TraceID)
			res, err := p.handleQuery(q.SQL, ctx, fc)
			if err != nil {
				span.End(obs.A("error", err.Error()))
				p.send(conn, MsgError, ErrorMsg{Message: err.Error()})
				p.flight.Finish(fc, err)
				continue
			}
			// End before sending so span logs are complete once the
			// client observes the result.
			span.End(obs.A("decisions", strconv.Itoa(len(res.Decisions))),
				obs.A("yield", strconv.FormatInt(res.Bytes, 10)))
			encStart := fc.Now()
			p.send(conn, MsgResult, res)
			fc.SetEncodeUS(fc.Now() - encStart)
			p.flight.Finish(fc, nil)
		case MsgStats:
			p.send(conn, MsgStatsResult, p.stats())
		case MsgDecisions:
			var q DecisionsMsg
			if err := Decode(body, &q); err != nil {
				p.send(conn, MsgError, ErrorMsg{Message: err.Error()})
				continue
			}
			p.send(conn, MsgDecisionsResult, p.decisions(q))
		case MsgMetrics:
			p.send(conn, MsgMetricsResult, MetricsResultMsg{
				Source:   "byproxyd",
				Snapshot: p.reg.Snapshot(),
			})
		case MsgExemplars:
			var q ExemplarsMsg
			if err := Decode(body, &q); err != nil {
				p.send(conn, MsgError, ErrorMsg{Message: err.Error()})
				continue
			}
			p.send(conn, MsgExemplarsResult, serveExemplars("byproxyd", p.flight, q))
		case MsgPing:
			p.send(conn, MsgPong, PongMsg{Site: "byproxyd"})
		default:
			p.send(conn, MsgError, ErrorMsg{Message: fmt.Sprintf("proxy: unexpected message type %s", t)})
		}
	}
}

// leg is one unit of deferred WAN work decided during mediation: an
// object fetch (load) or a bypass sub-query.
type leg struct {
	site   string
	object string // fetch legs; "" for sub-queries
	sql    string // sub-query legs; "" for fetches
}

// handleQuery mediates one client statement. ctx is the enclosing
// proxy.query span's trace context (zero when tracing is off); every
// leg — mediation, per-object decisions, fetches, sub-queries — is
// emitted as a child span, and node RPC frames carry the leg's
// context so the remote node's spans join the same tree.
//
// The pipeline is decide-then-execute: mediation (whose decision
// phase the mediator serializes internally) produces the per-object
// verdicts, then every WAN leg fans out concurrently across sites.
// The result frame is sent only after all legs settle, so a client's
// response still reflects its query's complete protocol exchange.
func (p *Proxy) handleQuery(sql string, ctx obs.TraceContext, fc *flightrec.Capture) (*ResultMsg, error) {
	p.querySem <- struct{}{}
	defer func() { <-p.querySem }()
	tel := p.med.Telemetry()
	tel.QueryInflight(1)
	defer tel.QueryInflight(-1)

	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	mspan := p.tracer.Child(ctx, "proxy.mediate")
	// The trace id rides into the mediator so decision-ledger records
	// carry it; FormatID(0) is "" so untraced queries stay unmarked.
	rep, err := p.med.QueryStmtTraced(sql, stmt, obs.FormatID(ctx.TraceID))
	if err != nil {
		mspan.End(obs.A("error", err.Error()))
		return nil, err
	}
	mspan.End(obs.A("yield", strconv.FormatInt(rep.Result.Bytes, 10)),
		obs.A("rows", strconv.FormatInt(rep.Result.Rows, 10)))
	fc.SetMediation(rep.ExecUS, rep.LockWaitUS, rep.DecideUS)
	for _, w := range rep.ShardWaits {
		fc.ShardWait(w.Shard, w.WaitUS)
	}
	fc.SetDegraded(rep.Degraded)
	res := &ResultMsg{
		Columns: rep.Result.Columns,
		Rows:    rep.Result.Rows,
		Bytes:   rep.Result.Bytes,
		Tuples:  rep.Result.Tuples,
		Partial: rep.Degraded,
	}
	for _, se := range rep.SiteErrors {
		res.SiteErrors = append(res.SiteErrors, SiteErrorMsg{
			Site:      se.Site,
			Error:     se.Reason,
			LostBytes: se.LostBytes,
		})
	}
	// Per-site protocol traffic: ship sub-queries for tables with any
	// bypassed object, and object fetches for every load. Forced and
	// failed legs never reach the network — their sites are known
	// unavailable.
	var legs []leg
	bypassedTables := map[string]bool{} // table name → has bypassed object
	for _, d := range rep.Decisions {
		verdict := d.Decision.String()
		if d.Failed {
			verdict = "failed"
		}
		res.Decisions = append(res.Decisions, DecisionMsg{
			Object:   string(d.Object),
			Site:     d.Site,
			Yield:    d.Yield,
			Decision: verdict,
			Forced:   d.Forced,
			Failed:   d.Failed,
			Reason:   d.Reason,
		})
		fc.Decision(string(d.Object), d.Site, verdict, d.Reason, d.Yield)
		// One proxy.decide span per object access: summing the yield
		// attrs over a trace reproduces the query's D_A contribution
		// (uniform net costs).
		attrs := []obs.Attr{
			obs.A("object", string(d.Object)),
			obs.A("site", d.Site),
			obs.A("yield", strconv.FormatInt(d.Yield, 10)),
			obs.A("decision", verdict),
		}
		if d.Forced || d.Failed {
			attrs = append(attrs, obs.A("degraded", d.Reason))
		}
		p.tracer.Child(ctx, "proxy.decide", attrs...).End()
		if d.Forced || d.Failed {
			continue
		}
		switch d.Decision {
		case core.Bypass:
			bypassedTables[tableOfObject(string(d.Object))] = true
		case core.Load:
			legs = append(legs, leg{site: d.Site, object: string(d.Object)})
		}
	}
	if len(bypassedTables) > 0 {
		bound, err := engine.Bind(p.med.Schema(), stmt)
		if err == nil {
			for i, sub := range federation.Subqueries(bound) {
				t := bound.Tables[i]
				if !bypassedTables[t.Name] {
					continue
				}
				legs = append(legs, leg{site: t.Site, sql: sub.String()})
			}
		}
	}
	p.runLegs(legs, ctx, res, fc)
	return res, nil
}

// runLegs executes a query's WAN legs concurrently, one goroutine per
// leg (globally throttled by legSem when configured, and per site by
// the connection pools). Leg failures do not fail the query — the
// mediator already accounted the decisions over logical sizes — but
// they are logged and annotated on the result as transport errors.
func (p *Proxy) runLegs(legs []leg, ctx obs.TraceContext, res *ResultMsg, fc *flightrec.Capture) {
	if len(legs) == 0 {
		return
	}
	tel := p.med.Telemetry()
	var (
		wg  sync.WaitGroup
		emu sync.Mutex // guards res.TransportErrors
	)
	run := func(l leg) {
		defer wg.Done()
		if p.legSem != nil {
			p.legSem <- struct{}{}
			defer func() { <-p.legSem }()
		}
		tel.LegInflight(1)
		defer tel.LegInflight(-1)
		var (
			err  error
			lt   legTiming
			kind = "subquery"
		)
		startUS := fc.Now()
		legStart := time.Now()
		if l.object != "" {
			kind = "fetch"
			err = p.fetchObject(l.object, l.site, ctx, &lt)
			if err != nil {
				p.logf("proxy: fetch %s: %v", l.object, err)
			}
		} else {
			err = p.shipSubquery(l.sql, l.site, ctx, &lt)
			if err != nil {
				p.logf("proxy: subquery to %s: %v", l.site, err)
			}
		}
		// Coalesced fetches leave lt zero (another goroutine ran the
		// wire exchange); wall time still bounds the leg's cost.
		fc.Leg(l.site, kind, l.object, startUS, lt.poolWaitUS, lt.rpcUS,
			time.Since(legStart).Microseconds(), err)
		if err != nil {
			emu.Lock()
			res.TransportErrors = append(res.TransportErrors, SiteErrorMsg{Site: l.site, Error: err.Error()})
			emu.Unlock()
		}
	}
	wg.Add(len(legs))
	if len(legs) == 1 {
		run(legs[0]) // no goroutine churn for the common single-leg query
		return
	}
	for _, l := range legs {
		go run(l)
	}
	wg.Wait()
}

// tableOfObject extracts the table name from an object id
// ("release/table[.column]").
func tableOfObject(object string) string {
	rest := object
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[i+1:]
	}
	if i := strings.IndexByte(rest, '.'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// failConn records an RPC failure: the checked-out connection is
// discarded back to its pool and deadline expiries are counted
// separately.
func (p *Proxy) failConn(sp *pool, conn net.Conn, site string, err error) {
	sp.Discard(conn)
	if isTimeout(err) {
		p.rpcTimeouts.Add(site, 1)
	}
	p.rpcErrors.Add(site, 1)
	p.tracer.Event("proxy.node_rpc_error", obs.A("site", site), obs.A("error", err.Error()))
}

// isTimeout reports whether err is a network timeout.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// nodeRPC performs one request/response exchange with a site's node,
// gated by the site's circuit breaker and retried under a bounded
// budget with exponential backoff. Returns (0, nil, nil) when the
// site has no node (simulation mode), and a *SiteUnavailableError —
// without touching the network — when the breaker is not closed.
//
// Retry rules: a pooled (possibly stale) connection failing with a
// non-timeout error is retried immediately over a fresh dial without
// charging the breaker — idle-closed connections are normal, not site
// failures. Genuine failures charge the breaker and retry after a
// jittered exponential pause, up to RetryBudget extra attempts.
// Timeouts never retry: the node is hung, and another attempt would
// hold the leg's pool slot through another full deadline.
func (p *Proxy) nodeRPC(site string, t MsgType, payload any, lt *legTiming) (MsgType, []byte, error) {
	if _, hasNode := p.nodeAddrs[site]; !hasNode {
		return 0, nil, nil
	}
	br := p.breakers[site]
	if !br.Allow() {
		state, retryIn := br.Snapshot()
		return 0, nil, &SiteUnavailableError{Site: site, State: state, RetryIn: retryIn}
	}
	delay := p.bcfg.RetryDelay
	for attempt := 0; ; attempt++ {
		rt, body, reused, err := p.tryNodeRPC(site, t, payload, false, lt)
		if err == nil {
			br.RecordSuccess()
			return rt, body, nil
		}
		if reused && !isTimeout(err) {
			// Stale pooled connection; not a site failure. Retry over a
			// fresh dial (draining sibling idle conns, presumed equally
			// stale).
			p.rpcRetries.Add(site, 1)
			rt, body, _, err = p.tryNodeRPC(site, t, payload, true, lt)
			if err == nil {
				br.RecordSuccess()
				return rt, body, nil
			}
		}
		br.RecordFailure()
		if isTimeout(err) || attempt >= p.bcfg.RetryBudget || !br.Allow() {
			return 0, nil, err
		}
		p.rpcRetries.Add(site, 1)
		pause := delay + time.Duration(int64(float64(delay)*0.5*float64(attempt+1)))
		p.retryBackoff.Observe(int64(pause))
		time.Sleep(pause)
		delay *= 2
	}
}

// tryNodeRPC is one attempt of nodeRPC over a pooled connection;
// reused reports whether the attempt ran over a pooled (rather than
// freshly dialed) connection. fresh forces a fresh dial, discarding
// pooled idle connections.
func (p *Proxy) tryNodeRPC(site string, t MsgType, payload any, fresh bool, lt *legTiming) (MsgType, []byte, bool, error) {
	sp := p.pools[site]
	acquireStart := time.Now()
	conn, reused, err := sp.Get(fresh)
	if err != nil {
		return 0, nil, false, err
	}
	start := time.Now()
	if lt != nil {
		// Accumulated across retries: every pool acquisition is time the
		// leg spent not talking to the network.
		lt.poolWaitUS += start.Sub(acquireStart).Microseconds()
	}
	if p.rpcTimeout > 0 {
		if err := conn.SetDeadline(start.Add(p.rpcTimeout)); err != nil {
			p.failConn(sp, conn, site, err)
			return 0, nil, reused, err
		}
	}
	n, err := WriteFrame(conn, t, payload)
	if err != nil {
		p.failConn(sp, conn, site, err)
		return 0, nil, reused, err
	}
	p.nodeTx.Add(int64(n))
	rt, body, rn, err := ReadFrame(conn)
	if err != nil {
		p.failConn(sp, conn, site, err)
		return 0, nil, reused, err
	}
	if p.rpcTimeout > 0 && conn.SetDeadline(time.Time{}) != nil {
		// The exchange succeeded but the connection is broken for
		// reuse; discard it so the next checkout dials fresh.
		sp.Discard(conn)
	} else {
		sp.Put(conn)
	}
	p.nodeRx.Add(int64(rn))
	rpcUS := time.Since(start).Microseconds()
	p.rpcLatency.Observe(site, rpcUS)
	if lt != nil {
		lt.rpcUS = rpcUS // the successful attempt's round trip
	}
	return rt, body, reused, nil
}

// legTiming carries one WAN leg's pool-acquire and round-trip
// durations out of the RPC plumbing and into the flight recorder.
type legTiming struct {
	poolWaitUS int64 // accumulated pool.Get time across attempts
	rpcUS      int64 // successful attempt's write+read round trip
}

// shipSubquery sends a sub-query to the owning node and drains the
// response, under a proxy.subquery span whose context rides in the
// frame so the node's dbnode.execute span nests beneath it.
func (p *Proxy) shipSubquery(sql, site string, ctx obs.TraceContext, lt *legTiming) (err error) {
	span := p.tracer.Child(ctx, "proxy.subquery", obs.A("site", site))
	defer func() { endSpan(span, err) }()
	sctx := span.Context()
	if sctx.TraceID == 0 {
		// Tracing disabled: still forward the client's trace id so the
		// node's flight-recorder exemplars merge with the proxy's.
		sctx = ctx
	}
	t, body, err := p.nodeRPC(site, MsgQuery, QueryMsg{
		SQL:        sql,
		TraceID:    obs.FormatID(sctx.TraceID),
		ParentSpan: obs.FormatID(sctx.SpanID),
	}, lt)
	if err != nil || body == nil {
		return err
	}
	if t == MsgError {
		var e ErrorMsg
		if err := Decode(body, &e); err != nil {
			return err
		}
		return fmt.Errorf("node %s: %s", site, e.Message)
	}
	return nil
}

// fetchObject performs an object-fetch RPC for a load decision, under
// a proxy.fetch span propagated to the node. Concurrent fetches of the
// same object are single-flighted: one RPC serves every waiter
// (counted in wire.fetch_coalesced), since a load's WAN transfer is
// object-identical no matter which query triggered it.
func (p *Proxy) fetchObject(object, site string, ctx obs.TraceContext, lt *legTiming) (err error) {
	span := p.tracer.Child(ctx, "proxy.fetch",
		obs.A("object", object), obs.A("site", site))
	defer func() { endSpan(span, err) }()
	sctx := span.Context()
	if sctx.TraceID == 0 {
		sctx = ctx // forward the client's trace id even untraced
	}
	err, shared := p.fetchFlight.Do(object, func() error {
		return p.fetchObjectRPC(object, site, sctx, lt)
	})
	if shared {
		p.coalesced.Add(site, 1)
	}
	return err
}

// fetchObjectRPC is the wire leg of fetchObject, run once per
// single-flight group.
func (p *Proxy) fetchObjectRPC(object, site string, sctx obs.TraceContext, lt *legTiming) error {
	t, body, err := p.nodeRPC(site, MsgFetch, FetchMsg{
		Object:     object,
		TraceID:    obs.FormatID(sctx.TraceID),
		ParentSpan: obs.FormatID(sctx.SpanID),
	}, lt)
	if err != nil || body == nil {
		return err
	}
	if t == MsgError {
		var e ErrorMsg
		if err := Decode(body, &e); err != nil {
			return err
		}
		return fmt.Errorf("node %s: %s", site, e.Message)
	}
	return nil
}

// endSpan ends a leg span, tagging the error when the leg failed.
func endSpan(span obs.Span, err error) {
	if err != nil {
		span.End(obs.A("error", err.Error()))
		return
	}
	span.End()
}

// Decision-ledger serving bounds: a filterless scrape returns the
// most recent DefaultDecisionLimit records; explicit limits are capped
// at MaxDecisionLimit to keep response frames under MaxFrame.
const (
	DefaultDecisionLimit = 256
	MaxDecisionLimit     = 4096
)

// Exemplar serving bounds: a filterless scrape returns the most
// recent DefaultExemplarLimit exemplars; explicit limits are capped
// at MaxExemplarLimit (exemplars are much larger than ledger records).
const (
	DefaultExemplarLimit = 64
	MaxExemplarLimit     = 512
)

// serveExemplars answers one MsgExemplars scrape from a daemon's
// flight recorder (shared by proxy and node). A nil recorder yields
// an empty result, not an error.
func serveExemplars(source string, rec *flightrec.Recorder, q ExemplarsMsg) ExemplarsResultMsg {
	limit := q.Limit
	if limit <= 0 {
		limit = DefaultExemplarLimit
	}
	if limit > MaxExemplarLimit {
		limit = MaxExemplarLimit
	}
	return ExemplarsResultMsg{
		Source:      source,
		Observed:    rec.Observed(),
		Published:   rec.Published(),
		ThresholdUS: rec.ThresholdUS(),
		Exemplars:   flightrec.Filter(rec.Snapshot(), q.Outcome, q.MinUS, limit),
	}
}

// decisions serves a ledger scrape: snapshot the ring (lock-free with
// respect to recording), apply the filter, and attach the shadow
// counterfactuals. An unconfigured ledger yields an empty result, not
// an error, so byinspect degrades gracefully.
func (p *Proxy) decisions(q DecisionsMsg) DecisionsResultMsg {
	led := p.med.Ledger()
	ss := p.med.ShadowStats() // snapshot under the mediator's decision lock
	msg := DecisionsResultMsg{
		Total:                 led.Count(),
		Baselines:             ss.Baselines,
		OptBoundBytes:         ss.OptBoundBytes,
		CompetitiveRatioMilli: ss.CompetitiveRatioMilli,
	}

	limit := q.Limit
	if limit <= 0 {
		limit = DefaultDecisionLimit
	}
	if limit > MaxDecisionLimit {
		limit = MaxDecisionLimit
	}
	msg.Records = ledger.Filter(led.Snapshot(), ledger.Query{
		Object: q.Object,
		Action: q.Action,
		Trace:  q.Trace,
		Limit:  limit,
	})
	return msg
}

// stats snapshots the proxy state. Mediator state is read through
// decision-lock snapshots, so a stats scrape never observes the cache
// mid-decision.
func (p *Proxy) stats() StatsResultMsg {
	msg := StatsResultMsg{
		Granularity:    p.gran.String(),
		Acct:           p.med.Accounting(),
		TransportTx:    p.nodeTx.Value(),
		TransportRx:    p.nodeRx.Value(),
		Queries:        p.med.Clock(),
		DecisionShards: p.med.ShardCount(),
		ShardAccts:     p.med.ShardAccountings(),
	}
	if ps, ok := p.med.PolicyStats(); ok {
		msg.Policy = ps.Name
		msg.CacheUsed = ps.Used
		msg.CacheCapacity = ps.Capacity
		ids := ps.Contents
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		if len(ids) > MaxStatsCachedObjects {
			ids = ids[:MaxStatsCachedObjects]
		}
		for _, id := range ids {
			msg.CachedObjects = append(msg.CachedObjects, string(id))
		}
	} else {
		msg.Policy = "none"
	}
	return msg
}
