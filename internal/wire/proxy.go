package wire

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"strings"
	"sync"

	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/federation"
	"bypassyield/internal/sqlparse"
)

// Proxy is the paper's mediator-collocated bypass-yield cache as a
// network daemon. Clients send SQL; the proxy mediates the query,
// drives the cache policy, and exchanges sub-queries and object
// fetches with the per-site database nodes for every bypassed or
// loaded object.
//
// Byte economics are logical (the mediator's Figure-1 accounting over
// logical result sizes); the node RPCs carry bounded tuple samples,
// and their physical frame bytes are tracked separately as transport
// counters. This keeps the prototype runnable on one machine while
// preserving the paper's cost model exactly.
type Proxy struct {
	mu        sync.Mutex
	med       *federation.Mediator
	gran      federation.Granularity
	nodeAddrs map[string]string // site → address
	nodeConns map[string]net.Conn
	tx, rx    int64

	ln     net.Listener
	logf   func(format string, args ...any)
	wg     sync.WaitGroup
	closed bool
}

// NewProxy builds a proxy around a mediator. nodeAddrs maps each site
// to its database node's TCP address; sites absent from the map are
// served without node RPCs (pure simulation mode).
func NewProxy(med *federation.Mediator, gran federation.Granularity, nodeAddrs map[string]string) *Proxy {
	return &Proxy{
		med:       med,
		gran:      gran,
		nodeAddrs: nodeAddrs,
		nodeConns: make(map[string]net.Conn),
		logf:      log.Printf,
	}
}

// SetLogf replaces the proxy's logger.
func (p *Proxy) SetLogf(f func(string, ...any)) { p.logf = f }

// Listen starts accepting clients on addr and returns the bound
// address.
func (p *Proxy) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	p.ln = ln
	p.wg.Add(1)
	go p.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the listener, closes node connections, and waits.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for _, c := range p.nodeConns {
		c.Close()
	}
	p.nodeConns = make(map[string]net.Conn)
	p.mu.Unlock()
	var err error
	if p.ln != nil {
		err = p.ln.Close()
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if !closed && !errors.Is(err, net.ErrClosed) {
				p.logf("proxy: accept: %v", err)
			}
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer conn.Close()
			p.serveConn(conn)
		}()
	}
}

func (p *Proxy) serveConn(conn net.Conn) {
	for {
		t, body, _, err := ReadFrame(conn)
		if err != nil {
			return
		}
		switch t {
		case MsgQuery:
			var q QueryMsg
			if err := Decode(body, &q); err != nil {
				writeErr(conn, err)
				continue
			}
			res, err := p.handleQuery(q.SQL)
			if err != nil {
				writeErr(conn, err)
				continue
			}
			WriteFrame(conn, MsgResult, res)
		case MsgStats:
			WriteFrame(conn, MsgStatsResult, p.stats())
		default:
			writeErr(conn, fmt.Errorf("proxy: unexpected message type %d", t))
		}
	}
}

// handleQuery mediates one client statement.
func (p *Proxy) handleQuery(sql string) (*ResultMsg, error) {
	p.mu.Lock()
	defer p.mu.Unlock()

	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	rep, err := p.med.QueryStmt(sql, stmt)
	if err != nil {
		return nil, err
	}
	res := &ResultMsg{
		Columns: rep.Result.Columns,
		Rows:    rep.Result.Rows,
		Bytes:   rep.Result.Bytes,
		Tuples:  rep.Result.Tuples,
	}
	// Per-site protocol traffic: ship sub-queries for tables with any
	// bypassed object, and object fetches for every load.
	bypassedTables := map[string]bool{} // table name → has bypassed object
	for _, d := range rep.Decisions {
		res.Decisions = append(res.Decisions, DecisionMsg{
			Object:   string(d.Object),
			Site:     d.Site,
			Yield:    d.Yield,
			Decision: d.Decision.String(),
		})
		switch d.Decision {
		case core.Bypass:
			bypassedTables[tableOfObject(string(d.Object))] = true
		case core.Load:
			if err := p.fetchObject(string(d.Object), d.Site); err != nil {
				p.logf("proxy: fetch %s: %v", d.Object, err)
			}
		}
	}
	if len(bypassedTables) > 0 {
		bound, err := engine.Bind(p.med.Schema(), stmt)
		if err == nil {
			for i, sub := range federation.Subqueries(bound) {
				t := bound.Tables[i]
				if !bypassedTables[t.Name] {
					continue
				}
				if err := p.shipSubquery(sub.String(), t.Site); err != nil {
					p.logf("proxy: subquery to %s: %v", t.Site, err)
				}
			}
		}
	}
	return res, nil
}

// tableOfObject extracts the table name from an object id
// ("release/table[.column]").
func tableOfObject(object string) string {
	rest := object
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[i+1:]
	}
	if i := strings.IndexByte(rest, '.'); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// nodeConn returns a (cached) connection to the site's node, or nil
// when the site has no configured node (simulation mode).
func (p *Proxy) nodeConn(site string) (net.Conn, error) {
	if c, ok := p.nodeConns[site]; ok {
		return c, nil
	}
	addr, ok := p.nodeAddrs[site]
	if !ok {
		return nil, nil
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	p.nodeConns[site] = c
	return c, nil
}

// dropConn closes and forgets a node connection after a failure.
func (p *Proxy) dropConn(site string) {
	if c, ok := p.nodeConns[site]; ok {
		c.Close()
		delete(p.nodeConns, site)
	}
}

// shipSubquery sends a sub-query to the owning node and drains the
// response, counting transport bytes.
func (p *Proxy) shipSubquery(sql, site string) error {
	conn, err := p.nodeConn(site)
	if err != nil || conn == nil {
		return err
	}
	n, err := WriteFrame(conn, MsgQuery, QueryMsg{SQL: sql})
	if err != nil {
		p.dropConn(site)
		return err
	}
	p.tx += int64(n)
	t, body, rn, err := ReadFrame(conn)
	if err != nil {
		p.dropConn(site)
		return err
	}
	p.rx += int64(rn)
	if t == MsgError {
		var e ErrorMsg
		if err := Decode(body, &e); err != nil {
			return err
		}
		return fmt.Errorf("node %s: %s", site, e.Message)
	}
	return nil
}

// fetchObject performs an object-fetch RPC for a load decision.
func (p *Proxy) fetchObject(object, site string) error {
	conn, err := p.nodeConn(site)
	if err != nil || conn == nil {
		return err
	}
	n, err := WriteFrame(conn, MsgFetch, FetchMsg{Object: object})
	if err != nil {
		p.dropConn(site)
		return err
	}
	p.tx += int64(n)
	t, body, rn, err := ReadFrame(conn)
	if err != nil {
		p.dropConn(site)
		return err
	}
	p.rx += int64(rn)
	if t == MsgError {
		var e ErrorMsg
		if err := Decode(body, &e); err != nil {
			return err
		}
		return fmt.Errorf("node %s: %s", site, e.Message)
	}
	return nil
}

// stats snapshots the proxy state.
func (p *Proxy) stats() StatsResultMsg {
	p.mu.Lock()
	defer p.mu.Unlock()
	msg := StatsResultMsg{
		Granularity: p.gran.String(),
		Acct:        p.med.Accounting(),
		TransportTx: p.tx,
		TransportRx: p.rx,
		Queries:     p.med.Clock(),
	}
	if pol := p.med.Policy(); pol != nil {
		msg.Policy = pol.Name()
		msg.CacheUsed = pol.Used()
		msg.CacheCapacity = pol.Capacity()
		if cl, ok := pol.(core.ContentLister); ok {
			ids := cl.Contents()
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			const cap = 64
			if len(ids) > cap {
				ids = ids[:cap]
			}
			for _, id := range ids {
				msg.CachedObjects = append(msg.CachedObjects, string(id))
			}
		}
	} else {
		msg.Policy = "none"
	}
	return msg
}
