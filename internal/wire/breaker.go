package wire

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// BreakerState is one position of a site's circuit breaker.
type BreakerState int32

const (
	// BreakerClosed: the site is healthy; RPCs flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the site failed repeatedly; RPCs are rejected
	// without touching the network until the backoff window elapses.
	BreakerOpen
	// BreakerHalfOpen: the backoff elapsed; a probe RPC is testing the
	// site. Regular traffic stays rejected until the probe succeeds.
	BreakerHalfOpen
)

// String names the state for metrics labels and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes the per-site circuit breakers and the retry
// budget of node RPCs.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that trips a
	// closed breaker open.
	FailureThreshold int
	// BaseBackoff is the first open window; each failed probe doubles
	// it (plus jitter) up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the open window.
	MaxBackoff time.Duration
	// ProbeInterval is the prober's polling cadence — how often
	// non-closed breakers are checked for a due probe.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe RPC.
	ProbeTimeout time.Duration
	// RetryBudget is how many extra attempts a failed node RPC gets
	// (beyond the first) while the breaker stays closed. Timeouts are
	// never retried: the node is hung, not stale, and a retry would
	// hold the mediation lock through another full deadline.
	RetryBudget int
	// RetryDelay is the base pause before a retry attempt; it doubles
	// per attempt with jitter.
	RetryDelay time.Duration
	// Seed makes backoff jitter reproducible. 0 means seed 1.
	Seed int64
}

// DefaultBreakerConfig returns the daemon defaults.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		FailureThreshold: 3,
		BaseBackoff:      200 * time.Millisecond,
		MaxBackoff:       30 * time.Second,
		ProbeInterval:    250 * time.Millisecond,
		ProbeTimeout:     2 * time.Second,
		RetryBudget:      1,
		RetryDelay:       10 * time.Millisecond,
	}
}

// sanitize fills zero fields with defaults so a partially-specified
// config behaves sanely.
func (c BreakerConfig) sanitize() BreakerConfig {
	d := DefaultBreakerConfig()
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = d.FailureThreshold
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = d.BaseBackoff
	}
	if c.MaxBackoff < c.BaseBackoff {
		c.MaxBackoff = d.MaxBackoff
	}
	if c.MaxBackoff < c.BaseBackoff {
		c.MaxBackoff = c.BaseBackoff
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = d.ProbeInterval
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = d.ProbeTimeout
	}
	if c.RetryBudget < 0 {
		c.RetryBudget = 0
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = d.RetryDelay
	}
	return c
}

// SiteUnavailableError reports an RPC rejected locally because the
// site's breaker is not closed — the proxy never touched the network.
type SiteUnavailableError struct {
	Site    string
	State   BreakerState
	RetryIn time.Duration
}

func (e *SiteUnavailableError) Error() string {
	if e.RetryIn > 0 {
		return fmt.Sprintf("wire: site %s unavailable (breaker %s, retry in %s)",
			e.Site, e.State, e.RetryIn.Round(time.Millisecond))
	}
	return fmt.Sprintf("wire: site %s unavailable (breaker %s)", e.Site, e.State)
}

// breaker is one site's circuit breaker. It has its own lock so the
// mediator can consult it (via Proxy.SiteAvailable) while the proxy's
// mediation lock is held.
type breaker struct {
	mu      sync.Mutex
	site    string
	cfg     BreakerConfig
	state   BreakerState
	fails   int           // consecutive failures while closed
	backoff time.Duration // current open window
	until   time.Time     // when an open breaker may probe
	rng     *rand.Rand
	now     func() time.Time
	// onTransition fires outside critical decisions but under mu;
	// keep it cheap (metric updates, one log line).
	onTransition func(site string, from, to BreakerState)
}

func newBreaker(site string, cfg BreakerConfig, onTransition func(string, BreakerState, BreakerState)) *breaker {
	cfg = cfg.sanitize()
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	// Distinct per-site jitter streams from one seed.
	for _, ch := range site {
		seed = seed*131 + int64(ch)
	}
	return &breaker{
		site:         site,
		cfg:          cfg,
		rng:          rand.New(rand.NewSource(seed)),
		now:          time.Now,
		onTransition: onTransition,
	}
}

// transition moves the state machine, firing the hook. Caller holds mu.
func (b *breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.onTransition != nil {
		b.onTransition(b.site, from, to)
	}
}

// jittered returns d plus a seeded-random extra in [0, d/2).
func (b *breaker) jittered(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d + time.Duration(b.rng.Int63n(int64(d)/2+1))
}

// open trips the breaker for the current backoff window. Caller holds
// mu; backoff must already be set.
func (b *breaker) open() {
	b.until = b.now().Add(b.jittered(b.backoff))
	b.transition(BreakerOpen)
}

// Allow reports whether a regular RPC may proceed. Only a closed
// breaker admits traffic; open and half-open sites are served in
// degraded mode until a probe closes the breaker.
func (b *breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == BreakerClosed
}

// State returns the current state (closed on nil).
func (b *breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Snapshot returns state plus time until the next probe is due (0
// when closed or already due).
func (b *breaker) Snapshot() (BreakerState, time.Duration) {
	if b == nil {
		return BreakerClosed, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerClosed {
		return b.state, 0
	}
	d := b.until.Sub(b.now())
	if d < 0 {
		d = 0
	}
	return b.state, d
}

// TryProbe reports whether a probe should run now: an open breaker
// whose backoff elapsed moves to half-open and probes; a half-open
// breaker re-probes (the prober is single-threaded per proxy, so
// probes never overlap). Closed breakers do not probe.
func (b *breaker) TryProbe() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if b.now().Before(b.until) {
			return false
		}
		b.transition(BreakerHalfOpen)
		return true
	case BreakerHalfOpen:
		return true
	default:
		return false
	}
}

// RecordSuccess resets the failure streak and closes the breaker.
func (b *breaker) RecordSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.backoff = 0
	b.transition(BreakerClosed)
}

// RecordFailure advances the state machine after a failed RPC or
// probe: a closed breaker trips at the failure threshold; a half-open
// breaker re-opens with a doubled backoff.
func (b *breaker) RecordFailure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.backoff = b.cfg.BaseBackoff
			b.open()
		}
	case BreakerHalfOpen:
		b.backoff *= 2
		if b.backoff > b.cfg.MaxBackoff {
			b.backoff = b.cfg.MaxBackoff
		}
		b.open()
	case BreakerOpen:
		// A straggler failure from an RPC in flight when the breaker
		// tripped; the window is already set.
	}
}
