package wire

import (
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"bypassyield/internal/obs"
)

// DefaultPoolSize is the per-site bound on concurrently checked-out
// node connections (and on idle connections kept for reuse).
const DefaultPoolSize = 8

// Adaptive-sizing bounds and tuning (see AdaptPoolSize).
const (
	// MinAdaptivePoolSize floors the adaptive bound so a quiet site
	// keeps enough connections to absorb a burst's first legs.
	MinAdaptivePoolSize = 2
	// MaxAdaptivePoolSize caps the adaptive bound: beyond this,
	// per-site fan-in stops helping and only multiplies node load.
	MaxAdaptivePoolSize = 64
	// adaptHeadroom pads the Little's-law demand estimate so Poisson
	// arrival bursts don't immediately block.
	adaptHeadroom = 1.5
	// DefaultAdaptInterval is how often the proxy re-derives adaptive
	// pool sizes from the interval's wire.pool_waits and
	// wire.rpc_latency_us deltas.
	DefaultAdaptInterval = 2 * time.Second
)

// PoolConfig tunes one site's connection pool.
type PoolConfig struct {
	// MaxActive bounds connections checked out at once; a Get beyond
	// the bound blocks until a connection is returned. ≤ 0 means
	// DefaultPoolSize.
	MaxActive int
	// MaxIdle bounds connections parked for reuse; returns beyond the
	// bound close the connection. ≤ 0 means MaxActive.
	MaxIdle int
	// Adaptive lets the proxy resize each site's bound at runtime from
	// observed demand — wire.pool_waits (Gets that blocked) and the
	// site's RPC latency — instead of holding MaxActive fixed.
	// MaxActive then only seeds the starting size.
	Adaptive bool
}

func (c PoolConfig) sanitize() PoolConfig {
	if c.MaxActive <= 0 {
		c.MaxActive = DefaultPoolSize
	}
	if c.MaxIdle <= 0 {
		c.MaxIdle = c.MaxActive
	}
	return c
}

// poolMetrics carries the registry handles shared by every site's
// pool; labels are site names.
type poolMetrics struct {
	active  *obs.GaugeFamily     // wire.pool_active: checked-out conns
	idle    *obs.GaugeFamily     // wire.pool_idle: parked conns
	waits   *obs.CounterFamily   // wire.pool_waits: Gets that blocked on MaxActive
	waitDur *obs.HistogramFamily // wire.pool_wait_us: time blocked per Get
	dials   *obs.CounterFamily   // wire.node_dials
	drops   *obs.CounterFamily   // wire.node_conn_drops
}

// pool is a bounded per-site connection pool. Reuse is MRU — the most
// recently returned connection is handed out first, keeping the
// working set small and idle connections cold enough to notice
// staleness early. Concurrent Gets beyond MaxActive block (counted in
// wire.pool_waits) until a connection is returned or discarded, so a
// site's legs self-limit without a global lock.
type pool struct {
	site string
	addr string
	dial func(site, addr string) (net.Conn, error)
	cfg  PoolConfig
	m    poolMetrics

	mu     sync.Mutex
	cond   *sync.Cond
	idle   []net.Conn // MRU stack: append on Put, pop from the end on Get
	active int        // checked-out connections
	closed bool
}

func newPool(site, addr string, cfg PoolConfig, dial func(site, addr string) (net.Conn, error), m poolMetrics) *pool {
	p := &pool{site: site, addr: addr, dial: dial, cfg: cfg.sanitize(), m: m}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Get checks out a connection, reporting whether it was reused from
// the idle stack. fresh skips — and discards — idle connections: the
// caller just saw a pooled connection fail, so its siblings are
// presumed stale too and the attempt must dial. Blocks while MaxActive
// connections are checked out.
func (p *pool) Get(fresh bool) (conn net.Conn, reused bool, err error) {
	p.mu.Lock()
	if p.active >= p.cfg.MaxActive && !p.closed {
		start := time.Now()
		for p.active >= p.cfg.MaxActive && !p.closed {
			p.m.waits.Add(p.site, 1)
			p.cond.Wait()
		}
		p.m.waitDur.Observe(p.site, time.Since(start).Microseconds())
	}
	if p.closed {
		p.mu.Unlock()
		return nil, false, fmt.Errorf("wire: pool %s closed", p.site)
	}
	if fresh {
		p.dropIdleLocked()
	}
	if n := len(p.idle); n > 0 {
		conn = p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.m.idle.Set(p.site, int64(len(p.idle)))
		p.checkoutLocked()
		p.mu.Unlock()
		return conn, true, nil
	}
	// Reserve the slot before dialing so concurrent Gets cannot
	// overshoot MaxActive while the dial is in flight.
	p.checkoutLocked()
	p.mu.Unlock()
	conn, err = p.dial(p.site, p.addr)
	if err != nil {
		p.release()
		return nil, false, err
	}
	p.m.dials.Add(p.site, 1)
	return conn, false, nil
}

// checkoutLocked claims one active slot. Caller holds mu.
func (p *pool) checkoutLocked() {
	p.active++
	p.m.active.Set(p.site, int64(p.active))
}

// release frees one active slot and wakes a waiter.
func (p *pool) release() {
	p.mu.Lock()
	p.active--
	p.m.active.Set(p.site, int64(p.active))
	p.cond.Signal()
	p.mu.Unlock()
}

// Put returns a healthy connection for reuse. Beyond MaxIdle (or
// after Close) the connection is closed instead of parked.
func (p *pool) Put(conn net.Conn) {
	p.mu.Lock()
	if p.closed || len(p.idle) >= p.cfg.MaxIdle {
		p.active--
		p.m.active.Set(p.site, int64(p.active))
		p.cond.Signal()
		p.mu.Unlock()
		conn.Close()
		return
	}
	p.idle = append(p.idle, conn)
	p.m.idle.Set(p.site, int64(len(p.idle)))
	p.active--
	p.m.active.Set(p.site, int64(p.active))
	p.cond.Signal()
	p.mu.Unlock()
}

// Discard closes a checked-out connection after a failure and frees
// its slot.
func (p *pool) Discard(conn net.Conn) {
	conn.Close()
	p.m.drops.Add(p.site, 1)
	p.release()
}

// dropIdleLocked closes every parked connection. Caller holds mu.
func (p *pool) dropIdleLocked() {
	for _, c := range p.idle {
		c.Close()
		p.m.drops.Add(p.site, 1)
	}
	p.idle = p.idle[:0]
	p.m.idle.Set(p.site, 0)
}

// DropIdle closes every parked connection — the breaker calls it when
// a site trips open, so a recovered site starts from fresh dials
// instead of replaying RPCs into half-dead sockets.
func (p *pool) DropIdle() {
	p.mu.Lock()
	p.dropIdleLocked()
	p.mu.Unlock()
}

// Close drops idle connections and fails all current and future Gets.
// Checked-out connections are closed by their holders via Put/Discard.
func (p *pool) Close() {
	p.mu.Lock()
	p.closed = true
	for _, c := range p.idle {
		c.Close()
	}
	p.idle = nil
	p.m.idle.Set(p.site, 0)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Stats reports checked-out and idle connection counts (tests and
// diagnostics).
func (p *pool) Stats() (active, idle int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active, len(p.idle)
}

// MaxActive reports the current checked-out bound.
func (p *pool) MaxActive() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cfg.MaxActive
}

// Resize replaces the checked-out bound (and the idle bound with it).
// Growing wakes blocked Gets; shrinking closes surplus parked
// connections immediately, while already-checked-out connections
// above the new bound drain naturally as they are returned.
func (p *pool) Resize(maxActive int) {
	if maxActive < 1 {
		maxActive = 1
	}
	p.mu.Lock()
	p.cfg.MaxActive = maxActive
	p.cfg.MaxIdle = maxActive
	for len(p.idle) > maxActive {
		n := len(p.idle)
		p.idle[n-1].Close()
		p.idle = p.idle[:n-1]
		p.m.drops.Add(p.site, 1)
	}
	p.m.idle.Set(p.site, int64(len(p.idle)))
	p.cond.Broadcast()
	p.mu.Unlock()
}

// AdaptPoolSize derives a site's next checked-out bound from one
// observation interval: waits is the wire.pool_waits delta (Gets that
// blocked on the bound), legsPerSec the site's RPC arrival rate, and
// rpcLatencySec its mean RPC latency over the interval. Little's law
// (concurrency = rate × latency) plus headroom sets the demand
// baseline; observed blocking grows the pool even when the estimate
// lags it — latency measured under a too-small pool hides the
// queueing the extra connections would absorb — and a quiet interval
// decays the bound halfway back toward demand, so a burst's oversized
// pool drains over a few intervals instead of collapsing at once.
// The result is clamped to [MinAdaptivePoolSize, MaxAdaptivePoolSize].
func AdaptPoolSize(cur int, waits int64, legsPerSec, rpcLatencySec float64) int {
	if cur < 1 {
		cur = 1
	}
	need := int(math.Ceil(legsPerSec * rpcLatencySec * adaptHeadroom))
	next := cur
	switch {
	case waits > 0:
		// Blocked Gets are direct evidence the bound is too small: grow
		// to demand, but by at least half the current size so repeated
		// undersized intervals escape quickly.
		next = max(need, cur+max(cur/2, 1))
	case need < cur:
		next = cur - max((cur-need)/2, 1)
	}
	return min(max(next, MinAdaptivePoolSize), MaxAdaptivePoolSize)
}
