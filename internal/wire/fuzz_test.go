package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func TestReadFrameRejectsUnknownType(t *testing.T) {
	frame := func(typ byte, body []byte) []byte {
		var hdr [5]byte
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)))
		hdr[4] = typ
		return append(hdr[:], body...)
	}
	for _, typ := range []byte{0, byte(maxMsgType) + 1, 200, 255} {
		_, _, _, err := ReadFrame(bytes.NewReader(frame(typ, []byte("{}"))))
		if err == nil || !strings.Contains(err.Error(), "unknown message type") {
			t.Fatalf("type %d: err = %v, want unknown-type rejection", typ, err)
		}
	}
	// Every assigned type still reads.
	for typ := MsgQuery; typ <= maxMsgType; typ++ {
		got, body, n, err := ReadFrame(bytes.NewReader(frame(byte(typ), []byte("{}"))))
		if err != nil || got != typ || string(body) != "{}" || n != 7 {
			t.Fatalf("type %d: got (%v, %q, %d, %v)", typ, got, body, n, err)
		}
	}
}

func TestReadFrameRejectsOversizeLength(t *testing.T) {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], MaxFrame+1)
	hdr[4] = byte(MsgQuery)
	_, _, _, err := ReadFrame(bytes.NewReader(hdr[:]))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("err = %v, want oversize rejection", err)
	}
}

func TestReadFrameTruncatedBodyNoOverAllocation(t *testing.T) {
	// A header claiming 8 MB followed by silence must fail without
	// ever holding more than one chunk of garbage.
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], 8<<20)
	hdr[4] = byte(MsgQuery)
	payload := append(hdr[:], bytes.Repeat([]byte{'x'}, 3*readChunk/2)...)
	_, _, _, err := ReadFrame(bytes.NewReader(payload))
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want %v", err, io.ErrUnexpectedEOF)
	}
}

func TestReadFrameLargeBodyRoundTrip(t *testing.T) {
	// A genuine multi-chunk body survives the incremental read intact.
	body := bytes.Repeat([]byte{0xab}, 3*readChunk+17)
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)))
	hdr[4] = byte(MsgResult)
	typ, got, n, err := ReadFrame(bytes.NewReader(append(hdr[:], body...)))
	if err != nil || typ != MsgResult || n != 5+len(body) {
		t.Fatalf("(%v, _, %d, %v)", typ, n, err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("multi-chunk body corrupted in transit")
	}
}

// FuzzReadFrame feeds arbitrary bytes to the frame reader: it must
// never panic, never allocate beyond the claimed (bounded) size, and
// on success must report a type/length consistent with the input.
func FuzzReadFrame(f *testing.F) {
	seed := func(typ byte, body []byte) []byte {
		var hdr [5]byte
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)))
		hdr[4] = typ
		return append(hdr[:], body...)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add(seed(byte(MsgQuery), []byte(`{"sql":"select 1"}`)))
	f.Add(seed(byte(MsgPong), []byte(`{}`)))
	f.Add(seed(0, []byte(`{}`)))
	f.Add(seed(255, []byte(`{}`)))
	f.Add(seed(byte(MsgResult), bytes.Repeat([]byte{'a'}, 2*readChunk)))
	var huge [5]byte
	binary.BigEndian.PutUint32(huge[:4], MaxFrame+1)
	f.Add(huge[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, body, n, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if typ == 0 || typ > maxMsgType {
			t.Fatalf("accepted unknown type %d", typ)
		}
		if len(body) > MaxFrame {
			t.Fatalf("body of %d bytes exceeds MaxFrame", len(body))
		}
		if n != 5+len(body) || n > len(data) {
			t.Fatalf("consumed %d bytes of %d with body %d", n, len(data), len(body))
		}
		if want := binary.BigEndian.Uint32(data[:4]); int(want) != len(body) {
			t.Fatalf("length prefix %d, body %d", want, len(body))
		}
	})
}
