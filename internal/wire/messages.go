package wire

import (
	"bypassyield/internal/core"
	"bypassyield/internal/obs"
	"bypassyield/internal/obs/flightrec"
	"bypassyield/internal/obs/ledger"
)

// QueryMsg carries a SQL statement. TraceID/ParentSpan propagate the
// distributed trace context (16-hex-digit obs ids); both empty means
// untraced, which keeps the frame byte-identical to the pre-tracing
// protocol — old clients and nodes interoperate unchanged.
type QueryMsg struct {
	SQL        string `json:"sql"`
	TraceID    string `json:"trace_id,omitempty"`
	ParentSpan string `json:"parent_span,omitempty"`
}

// TraceContext decodes the frame's trace fields (zero when untraced
// or malformed).
func (q QueryMsg) TraceContext() obs.TraceContext {
	return obs.TraceContext{TraceID: obs.ParseID(q.TraceID), SpanID: obs.ParseID(q.ParentSpan)}
}

// ResultMsg returns an execution result plus, from the proxy, the
// cache decisions the query triggered.
type ResultMsg struct {
	// Columns names the output columns.
	Columns []string `json:"columns"`
	// Rows is the logical result cardinality.
	Rows int64 `json:"rows"`
	// Bytes is the logical result size (yield).
	Bytes int64 `json:"bytes"`
	// Tuples holds a bounded sample of result rows.
	Tuples [][]float64 `json:"tuples,omitempty"`
	// Decisions lists per-object cache handling (proxy responses
	// only).
	Decisions []DecisionMsg `json:"decisions,omitempty"`
	// Partial marks a degraded result: one or more sites were
	// unavailable, so their legs were served from cache (possibly
	// stale) or dropped. SiteErrors carries the per-site detail.
	Partial    bool           `json:"partial,omitempty"`
	SiteErrors []SiteErrorMsg `json:"site_errors,omitempty"`
	// TransportErrors lists WAN legs (fetches, sub-queries) that
	// failed at the transport layer after mediation decided and
	// accounted them. The logical result is unaffected — accounting is
	// over logical sizes — but clients can see which sites misbehaved.
	TransportErrors []SiteErrorMsg `json:"transport_errors,omitempty"`
}

// SiteErrorMsg annotates one unavailable site's contribution to a
// partial result.
type SiteErrorMsg struct {
	// Site is the unavailable federation member.
	Site string `json:"site"`
	// Error explains why (breaker state, backoff remaining).
	Error string `json:"error"`
	// LostBytes is the yield dropped from the result because the
	// site's uncached objects could not be served.
	LostBytes int64 `json:"lost_bytes,omitempty"`
}

// DecisionMsg is one per-object cache decision.
type DecisionMsg struct {
	Object   string `json:"object"`
	Site     string `json:"site"`
	Yield    int64  `json:"yield"`
	Decision string `json:"decision"`
	// Forced marks a decision the policy did not choose freely: the
	// site was unavailable, so the mediator forced serve-from-cache.
	Forced bool `json:"forced,omitempty"`
	// Failed marks a leg that could not be served at all (site down,
	// object not cached). Yield is what the leg would have delivered;
	// nothing was charged for it.
	Failed bool `json:"failed,omitempty"`
	// Reason explains a forced or failed decision.
	Reason string `json:"reason,omitempty"`
}

// ErrorMsg returns a failure message.
type ErrorMsg struct {
	Message string `json:"message"`
}

// FetchMsg asks a node for a whole object. The trace fields follow
// QueryMsg's convention (empty = untraced).
type FetchMsg struct {
	Object     string `json:"object"`
	TraceID    string `json:"trace_id,omitempty"`
	ParentSpan string `json:"parent_span,omitempty"`
}

// TraceContext decodes the frame's trace fields (zero when untraced
// or malformed).
func (f FetchMsg) TraceContext() obs.TraceContext {
	return obs.TraceContext{TraceID: obs.ParseID(f.TraceID), SpanID: obs.ParseID(f.ParentSpan)}
}

// FetchAckMsg acknowledges a fetch with the object's logical size —
// the WAN bytes the transfer represents.
type FetchAckMsg struct {
	Object string `json:"object"`
	Size   int64  `json:"size"`
}

// StatsMsg requests proxy statistics (empty payload).
type StatsMsg struct{}

// PingMsg is a health probe (empty payload).
type PingMsg struct{}

// PongMsg answers a probe with the responder's identity.
type PongMsg struct {
	// Site names the answering node.
	Site string `json:"site,omitempty"`
}

// MetricsMsg requests a daemon's observability snapshot (empty
// payload).
type MetricsMsg struct{}

// MetricsResultMsg returns a daemon's metrics: every counter, gauge,
// and histogram its registry holds, deterministically ordered.
type MetricsResultMsg struct {
	// Source identifies the answering daemon ("byproxyd" or
	// "bydbd:<site>").
	Source string `json:"source"`
	// Snapshot is the registry contents.
	Snapshot obs.Snapshot `json:"snapshot"`
}

// DecisionsMsg requests recent decision-ledger records. Empty filter
// fields match everything; Limit ≤ 0 selects the server default.
type DecisionsMsg struct {
	// Object filters by exact object id.
	Object string `json:"object,omitempty"`
	// Action filters by decision ("hit", "bypass", "load").
	Action string `json:"action,omitempty"`
	// Trace filters by the 16-hex-digit trace id.
	Trace string `json:"trace,omitempty"`
	// Limit caps the returned records (most recent kept).
	Limit int `json:"limit,omitempty"`
}

// DecisionsResultMsg returns matching ledger records plus shadow
// counterfactual accounting for audits.
type DecisionsResultMsg struct {
	// Total is the number of decisions ever recorded (records older
	// than the ring capacity have been overwritten).
	Total uint64 `json:"total"`
	// Records are the matching records, oldest first.
	Records []ledger.DecisionRecord `json:"records"`
	// Baselines carries the online counterfactual results (empty when
	// shadow accounting is disabled).
	Baselines []core.ShadowResult `json:"baselines,omitempty"`
	// OptBoundBytes is the running ski-rental lower bound on WAN
	// traffic (0 when shadow accounting is disabled).
	OptBoundBytes int64 `json:"optbound_bytes,omitempty"`
	// CompetitiveRatioMilli is 1000 · realized WAN / bound.
	CompetitiveRatioMilli int64 `json:"competitive_ratio_milli,omitempty"`
}

// ExemplarsMsg requests flight-recorder exemplars. Empty filter
// fields match everything; Limit ≤ 0 selects the server default.
type ExemplarsMsg struct {
	// Outcome filters by "slow", "error", "degraded", or "normal".
	Outcome string `json:"outcome,omitempty"`
	// MinUS keeps only exemplars at least this slow (microseconds).
	MinUS int64 `json:"min_us,omitempty"`
	// Limit caps the returned exemplars (most recent kept).
	Limit int `json:"limit,omitempty"`
}

// ExemplarsResultMsg returns matching exemplars plus the recorder's
// capture statistics.
type ExemplarsResultMsg struct {
	// Source identifies the answering daemon ("byproxyd" or
	// "bydbd:<site>").
	Source string `json:"source"`
	// Observed counts every finished query the recorder saw.
	Observed uint64 `json:"observed"`
	// Published counts exemplars ever published (records older than
	// the ring capacity have been overwritten).
	Published uint64 `json:"published"`
	// ThresholdUS is the recorder's slow-capture threshold.
	ThresholdUS int64 `json:"threshold_us"`
	// Exemplars are the matching records, oldest first.
	Exemplars []flightrec.Exemplar `json:"exemplars"`
}

// StatsResultMsg returns the proxy's state: the paper's flow
// accounting plus physical transport counters for the prototype's own
// frames.
type StatsResultMsg struct {
	// Policy names the active cache policy.
	Policy string `json:"policy"`
	// Granularity is "tables" or "columns".
	Granularity string `json:"granularity"`
	// Acct is the logical flow accounting (Figure 1).
	Acct core.Accounting `json:"acct"`
	// CacheUsed and CacheCapacity describe the cache in bytes.
	CacheUsed     int64 `json:"cache_used"`
	CacheCapacity int64 `json:"cache_capacity"`
	// TransportTx/Rx count physical frame bytes the proxy exchanged
	// with database nodes.
	TransportTx int64 `json:"transport_tx"`
	TransportRx int64 `json:"transport_rx"`
	// Queries is the number of client queries served.
	Queries int64 `json:"queries"`
	// CachedObjects lists currently cached object ids (bounded; only
	// populated when the policy exposes its contents).
	CachedObjects []string `json:"cached_objects,omitempty"`
	// DecisionShards is the decision-plane partition count; ShardAccts
	// is each partition's own flow accounting (Σ a partition's
	// decision yields = its delivered bytes, independently). Absent
	// from pre-sharding daemons' responses.
	DecisionShards int               `json:"decision_shards,omitempty"`
	ShardAccts     []core.Accounting `json:"shard_accts,omitempty"`
}
