package wire

import (
	"bytes"
	"strings"
	"testing"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/federation"
	"bypassyield/internal/obs"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msg := QueryMsg{SQL: "select ra from photoobj"}
	n, err := WriteFrame(&buf, MsgQuery, msg)
	if err != nil {
		t.Fatal(err)
	}
	if n != buf.Len() {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	typ, body, rn, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgQuery || rn != n {
		t.Fatalf("type %d len %d, want %d/%d", typ, rn, MsgQuery, n)
	}
	var got QueryMsg
	if err := Decode(body, &got); err != nil {
		t.Fatal(err)
	}
	if got != msg {
		t.Fatalf("got %+v", got)
	}
}

func TestFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	if _, _, _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized frame should be rejected")
	}
}

func TestFrameShortRead(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10, 1, 'x'})
	if _, _, _, err := ReadFrame(&buf); err == nil {
		t.Fatal("truncated frame should error")
	}
}

func TestTableOfObject(t *testing.T) {
	cases := map[string]string{
		"edr/photoobj":    "photoobj",
		"edr/photoobj.ra": "photoobj",
		"photoobj.ra":     "photoobj",
		"photoobj":        "photoobj",
	}
	for in, want := range cases {
		if got := tableOfObject(in); got != want {
			t.Fatalf("tableOfObject(%q) = %q, want %q", in, got, want)
		}
	}
}

// testFederation starts nodes for every site of EDR plus a proxy with
// the given policy, returning a connected client and a shutdown func.
func testFederation(t *testing.T, policy core.Policy, gran federation.Granularity) (*Client, func()) {
	t.Helper()
	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 50000})
	if err != nil {
		t.Fatal(err)
	}
	quiet := func(string, ...any) {}

	sites := map[string]bool{}
	for i := range s.Tables {
		sites[s.Tables[i].Site] = true
	}
	var nodes []*DBNode
	addrs := map[string]string{}
	for site := range sites {
		n := NewDBNode(site, db)
		n.SetLogf(quiet)
		addr, err := n.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		addrs[site] = addr
	}

	med, err := federation.New(federation.Config{
		Schema: s, Engine: db, Policy: policy, Granularity: gran,
		Obs: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy := NewProxy(med, gran, addrs)
	proxy.SetLogf(quiet)
	paddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	return client, func() {
		client.Close()
		proxy.Close()
		for _, n := range nodes {
			n.Close()
		}
	}
}

func TestEndToEndQuery(t *testing.T) {
	cap := catalog.EDR().TotalBytes() / 2
	client, shutdown := testFederation(t,
		core.NewRateProfile(core.RateProfileConfig{Capacity: cap}), federation.Columns)
	defer shutdown()

	res, err := client.Query("select ra, dec from photoobj where ra between 100 and 140")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows <= 0 || res.Bytes <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Decisions) != 2 {
		t.Fatalf("decisions = %d, want 2 (ra, dec)", len(res.Decisions))
	}
	for _, d := range res.Decisions {
		if d.Decision != "bypass" {
			t.Fatalf("first-touch decision = %s, want bypass", d.Decision)
		}
	}
}

func TestEndToEndCachingTransitions(t *testing.T) {
	cap := catalog.EDR().TotalBytes()
	client, shutdown := testFederation(t,
		core.NewRateProfile(core.RateProfileConfig{Capacity: cap}), federation.Columns)
	defer shutdown()

	sql := "select ra, dec from photoobj where ra between 0 and 350"
	seen := map[string]bool{}
	for i := 0; i < 6; i++ {
		res, err := client.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range res.Decisions {
			seen[d.Decision] = true
		}
	}
	// Over repeats of a fat query the cache must transition from
	// bypass through load to hit.
	for _, want := range []string{"bypass", "load", "hit"} {
		if !seen[want] {
			t.Fatalf("decision %q never observed; saw %v", want, seen)
		}
	}
}

func TestEndToEndStats(t *testing.T) {
	cap := catalog.EDR().TotalBytes()
	client, shutdown := testFederation(t,
		core.NewRateProfile(core.RateProfileConfig{Capacity: cap}), federation.Tables)
	defer shutdown()

	for i := 0; i < 3; i++ {
		if _, err := client.Query("select z, zconf from specobj where z < 3"); err != nil {
			t.Fatal(err)
		}
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != 3 {
		t.Fatalf("queries = %d, want 3", st.Queries)
	}
	if st.Policy != "rate-profile" || st.Granularity != "tables" {
		t.Fatalf("stats = %+v", st)
	}
	if st.Acct.DeliveredBytes() != st.Acct.YieldBytes {
		t.Fatal("flow conservation violated in proxy accounting")
	}
	if st.TransportTx == 0 || st.TransportRx == 0 {
		t.Fatal("node RPC transport counters should be nonzero (bypasses occurred)")
	}
}

func TestEndToEndJoinAcrossSites(t *testing.T) {
	client, shutdown := testFederation(t, nil, federation.Tables)
	defer shutdown()

	res, err := client.Query(`select p.objid, s.z from specobj s, photoobj p
		where p.objid = s.objid and s.z < 3`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows <= 0 {
		t.Fatal("join should produce rows")
	}
	sites := map[string]bool{}
	for _, d := range res.Decisions {
		sites[d.Site] = true
	}
	if !sites[catalog.SitePhoto] || !sites[catalog.SiteSpec] {
		t.Fatalf("join should touch both sites, got %v", sites)
	}
}

func TestEndToEndErrors(t *testing.T) {
	client, shutdown := testFederation(t, nil, federation.Tables)
	defer shutdown()

	if _, err := client.Query("not sql at all"); err == nil {
		t.Fatal("parse error should propagate to client")
	}
	if _, err := client.Query("select ghost from photoobj"); err == nil {
		t.Fatal("bind error should propagate to client")
	}
	// The connection must survive errors.
	if _, err := client.Query("select ra from photoobj where ra < 10"); err != nil {
		t.Fatalf("connection broken after error: %v", err)
	}
}

func TestDBNodeRejectsForeignTables(t *testing.T) {
	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 100000})
	if err != nil {
		t.Fatal(err)
	}
	n := NewDBNode(catalog.SiteSpec, db)
	n.SetLogf(func(string, ...any) {})
	addr, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("select ra from photoobj where ra < 10"); err == nil {
		t.Fatal("node must reject tables of other sites")
	}
	if !strings.Contains(errString(c.Query("select ra from photoobj where ra < 10")), "owned by") {
		t.Fatal("rejection should name the owner")
	}
	if _, err := c.Query("select z from specobj where z < 1"); err != nil {
		t.Fatalf("own table should work: %v", err)
	}
}

func errString(res *ResultMsg, err error) string {
	if err != nil {
		return err.Error()
	}
	return ""
}

func TestDBNodeObjectSize(t *testing.T) {
	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 100000})
	if err != nil {
		t.Fatal(err)
	}
	n := NewDBNode(catalog.SitePhoto, db)
	cases := []struct {
		object  string
		want    int64
		wantErr bool
	}{
		{"edr/photoobj", s.Table("photoobj").Bytes(), false},
		{"edr/photoobj.ra", 8 * s.Table("photoobj").Rows, false},
		{"edr/specobj", 0, true},    // foreign site
		{"dr1/photoobj", 0, true},   // wrong release
		{"edr/ghost", 0, true},      // unknown table
		{"edr/photoobj.x", 0, true}, // unknown column
	}
	for _, tc := range cases {
		got, err := n.objectSize(tc.object)
		if (err != nil) != tc.wantErr {
			t.Fatalf("%s: err = %v, wantErr = %v", tc.object, err, tc.wantErr)
		}
		if err == nil && got != tc.want {
			t.Fatalf("%s: size = %d, want %d", tc.object, got, tc.want)
		}
	}
}

func TestSiteOf(t *testing.T) {
	s := catalog.EDR()
	site, err := SiteOf(s, "photoobj")
	if err != nil || site != catalog.SitePhoto {
		t.Fatalf("SiteOf = %q, %v", site, err)
	}
	if _, err := SiteOf(s, "ghost"); err == nil {
		t.Fatal("unknown table should error")
	}
}
