package wire

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/faultnet"
	"bypassyield/internal/federation"
	"bypassyield/internal/obs"
	"bypassyield/internal/obs/ledger"
)

// concurrentFederation is testLedgerFederation exposing the proxy and
// nodes so concurrency tests can read their registries directly. The
// optional mutators adjust the mediator config before construction
// (e.g. to swap the single Policy for a sharded NewPolicy factory).
func concurrentFederation(t *testing.T, policy core.Policy, opts ...func(*federation.Config)) (addr string, proxy *Proxy, nodes map[string]*DBNode, shutdown func()) {
	t.Helper()
	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 50000})
	if err != nil {
		t.Fatal(err)
	}
	quiet := func(string, ...any) {}

	sites := map[string]bool{}
	for i := range s.Tables {
		sites[s.Tables[i].Site] = true
	}
	nodes = map[string]*DBNode{}
	addrs := map[string]string{}
	for site := range sites {
		n := NewDBNode(site, db)
		n.SetLogf(quiet)
		naddr, err := n.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[site] = n
		addrs[site] = naddr
	}

	cfg := federation.Config{
		Schema: s, Engine: db, Policy: policy, Granularity: federation.Columns,
		Obs:     obs.NewRegistry(),
		Ledger:  ledger.New(4096),
		Shadows: true,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	med, err := federation.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	proxy = NewProxy(med, federation.Columns, addrs)
	proxy.SetLogf(quiet)
	addr, err = proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return addr, proxy, nodes, func() {
		proxy.Close()
		for _, n := range nodes {
			n.Close()
		}
	}
}

// TestConcurrentQueriesReconcileExactly is the pipeline's accounting
// acceptance test (run it with -race): 8 concurrent clients hammer all
// three EDR sites through a sharded decision plane, and afterwards
// every sequential-era invariant must still hold exactly — one ledger
// record per access, Σ ledger yields = D_A, Σ WAN charges = D_S + D_L,
// Σ client-observed result bytes = D_A, the shadow-savings gauge
// equals the baseline identity, and the inflight gauges have drained
// to zero. With the decision plane partitioned the identity must also
// hold shard by shard: each partition's ledger slice reconciles
// against that partition's own accounting, and the partitions sum to
// the global accounting.
func TestConcurrentQueriesReconcileExactly(t *testing.T) {
	const shards = 8
	capBytes := catalog.EDR().TotalBytes()
	addr, proxy, _, shutdown := concurrentFederation(t, nil,
		func(cfg *federation.Config) {
			cfg.Policy = nil
			cfg.NewPolicy = func(shard int, capacity int64) (core.Policy, error) {
				return core.NewRateProfile(core.RateProfileConfig{Capacity: capacity}), nil
			}
			cfg.Capacity = capBytes
			cfg.Shards = shards
		})
	defer shutdown()

	queries := []string{
		"select ra, dec from photoobj where ra between 0 and 350",
		"select z from specobj where z < 3",
		"select ra from photoobj",
		"select z, zconf from specobj",
	}
	const clients = 8
	const perClient = 10
	var delivered atomic.Int64 // Σ result bytes observed by clients
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < perClient; i++ {
				res, err := cl.Query(queries[(c+i)%len(queries)])
				if err != nil {
					errs <- err
					return
				}
				if res.Partial || len(res.TransportErrors) > 0 {
					t.Errorf("client %d query %d degraded: partial=%v transport=%v",
						c, i, res.Partial, res.TransportErrors)
				}
				delivered.Add(res.Bytes)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := cl.Decisions(DecisionsMsg{Limit: 4096})
	if err != nil {
		t.Fatal(err)
	}
	acct := st.Acct

	if st.Queries != clients*perClient {
		t.Fatalf("mediated %d queries, want %d", st.Queries, clients*perClient)
	}
	// Clients collectively received exactly what the mediator charged.
	if got := delivered.Load(); got != acct.DeliveredBytes() {
		t.Fatalf("Σ client result bytes = %d, want D_A = %d", got, acct.DeliveredBytes())
	}
	if dec.Total != uint64(acct.Accesses) {
		t.Fatalf("ledger total = %d, want one record per access (%d)", dec.Total, acct.Accesses)
	}
	var sumYield, sumWAN int64
	actions := map[string]int64{}
	for _, r := range dec.Records {
		sumYield += r.Yield
		sumWAN += r.WANCost
		actions[r.Action]++
	}
	if sumYield != acct.DeliveredBytes() {
		t.Fatalf("Σ ledger yields = %d, want D_A = %d", sumYield, acct.DeliveredBytes())
	}
	if sumWAN != acct.WANBytes() {
		t.Fatalf("Σ ledger WAN = %d, want D_S+D_L = %d", sumWAN, acct.WANBytes())
	}
	if actions["hit"] != acct.Hits || actions["bypass"] != acct.Bypasses || actions["load"] != acct.Loads {
		t.Fatalf("ledger action counts %v, want hits=%d bypasses=%d loads=%d",
			actions, acct.Hits, acct.Bypasses, acct.Loads)
	}

	// Per-partition reconciliation: every decision shard's own ledger
	// slice (grouped by the same hash the mediator routes with) must
	// reconcile against that shard's accounting, and the shard
	// accountings must sum to the global accounting.
	if st.DecisionShards != shards || len(st.ShardAccts) != shards {
		t.Fatalf("stats report %d shards / %d shard accts, want %d",
			st.DecisionShards, len(st.ShardAccts), shards)
	}
	shardYield := make([]int64, shards)
	shardWAN := make([]int64, shards)
	for _, r := range dec.Records {
		k := federation.ShardOf(core.ObjectID(r.Object), shards)
		shardYield[k] += r.Yield
		shardWAN[k] += r.WANCost
	}
	var sumAcct core.Accounting
	for k, sa := range st.ShardAccts {
		if shardYield[k] != sa.DeliveredBytes() {
			t.Fatalf("shard %d: Σ ledger yields = %d, want shard D_A = %d",
				k, shardYield[k], sa.DeliveredBytes())
		}
		if shardWAN[k] != sa.WANBytes() {
			t.Fatalf("shard %d: Σ ledger WAN = %d, want shard D_S+D_L = %d",
				k, shardWAN[k], sa.WANBytes())
		}
		sumAcct.Add(sa)
	}
	sumAcct.Queries = acct.Queries // queries span shards; only flows are disjoint
	if sumAcct != acct {
		t.Fatalf("Σ shard accountings = %+v, want global %+v", sumAcct, acct)
	}

	// Shadow identity survives interleaving: always-bypass WAN is the
	// raw yield total, and the exported savings gauge matches it.
	m, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	var bypassShadow *core.ShadowResult
	for i := range dec.Baselines {
		if dec.Baselines[i].Name == "always-bypass" {
			bypassShadow = &dec.Baselines[i]
		}
	}
	if bypassShadow == nil {
		t.Fatalf("no always-bypass baseline in %+v", dec.Baselines)
	}
	if got := bypassShadow.Acct.WANBytes(); got != acct.YieldBytes {
		t.Fatalf("always-bypass shadow WAN = %d, want sequence cost %d", got, acct.YieldBytes)
	}
	wantSaved := bypassShadow.Acct.WANBytes() - acct.WANBytes()
	if got := m.Snapshot.GaugeValue("core.bytes_saved_vs_bypass"); got != wantSaved {
		t.Fatalf("core.bytes_saved_vs_bypass = %d, want %d", got, wantSaved)
	}

	// Quiescence: with no query in flight the pipeline gauges and every
	// per-site pool-active gauge must be back at zero.
	snap := proxy.Obs().Snapshot()
	if got := snap.GaugeValue("core.query_concurrency"); got != 0 {
		t.Fatalf("core.query_concurrency = %d after drain, want 0", got)
	}
	if got := snap.GaugeValue("core.legs_inflight"); got != 0 {
		t.Fatalf("core.legs_inflight = %d after drain, want 0", got)
	}
	for site, sp := range proxy.pools {
		if active, _ := sp.Stats(); active != 0 {
			t.Fatalf("pool %s still has %d active conns after drain", site, active)
		}
	}
}

// alwaysLoad is a degenerate policy that loads on every access and
// never admits the object — so concurrent queries for one object all
// decide Load, the worst case the single-flight group must absorb.
type alwaysLoad struct{}

func (alwaysLoad) Name() string                                   { return "always-load" }
func (alwaysLoad) Access(int64, core.Object, int64) core.Decision { return core.Load }
func (alwaysLoad) Used() int64                                    { return 0 }
func (alwaysLoad) Capacity() int64                                { return 1 << 40 }
func (alwaysLoad) Contains(core.ObjectID) bool                    { return false }
func (alwaysLoad) Evictions() int64                               { return 0 }
func (alwaysLoad) Reset()                                         {}

// TestConcurrentLoadsSingleFlight proves the dedup end to end: M
// clients concurrently trigger Load decisions for the same object over
// a slow WAN, and the node must see fetch RPCs only for the flights
// that could not piggyback — fetches + coalesced = loads, with at
// least one coalesced under this much overlap.
func TestConcurrentLoadsSingleFlight(t *testing.T) {
	addr, proxy, nodes, shutdown := concurrentFederation(t, alwaysLoad{})
	defer shutdown()

	// ~25ms per conn operation makes each fetch slow enough that the
	// other clients' legs arrive while the leader's RPC is in flight.
	inj := faultnet.NewInjector(7)
	defer inj.Stop()
	inj.Set(faultnet.Faults{Latency: 25 * time.Millisecond})
	proxy.SetDialer(func(_, a string) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", a, time.Second)
		if err != nil {
			return nil, err
		}
		return inj.Conn(c), nil
	})

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			if _, err := cl.Query("select ra from photoobj"); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Acct.Loads != clients {
		t.Fatalf("loads = %d, want %d (one per query)", st.Acct.Loads, clients)
	}
	fetches := nodes[catalog.SitePhoto].Obs().Snapshot().CounterValue("dbnode.fetches", "")
	coalesced := proxy.Obs().Snapshot().CounterTotal("wire.fetch_coalesced")
	if fetches+coalesced != st.Acct.Loads {
		t.Fatalf("fetch RPCs (%d) + coalesced (%d) = %d, want loads = %d",
			fetches, coalesced, fetches+coalesced, st.Acct.Loads)
	}
	if coalesced == 0 {
		t.Fatal("no fetch was coalesced despite 8 concurrent loads of one object")
	}
}
