package wire

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// fakeClock drives a breaker's time by hand.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time            { return c.t }
func (c *fakeClock) advance(d time.Duration)   { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                 { return &fakeClock{t: time.Unix(1000, 0)} }
func attach(b *breaker, c *fakeClock) *breaker { b.now = c.now; return b }

func testBreakerConfig() BreakerConfig {
	return BreakerConfig{
		FailureThreshold: 3,
		BaseBackoff:      100 * time.Millisecond,
		MaxBackoff:       1 * time.Second,
		RetryBudget:      1,
		RetryDelay:       time.Millisecond,
		Seed:             7,
	}
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	var transitions []string
	b := newBreaker("siteA", testBreakerConfig(), func(site string, from, to BreakerState) {
		transitions = append(transitions, from.String()+"->"+to.String())
	})
	attach(b, newFakeClock())
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("fresh breaker not closed")
	}
	b.RecordFailure()
	b.RecordFailure()
	if !b.Allow() {
		t.Fatal("breaker tripped before threshold")
	}
	b.RecordFailure() // third: threshold reached
	if b.Allow() || b.State() != BreakerOpen {
		t.Fatalf("state = %v after threshold, want open", b.State())
	}
	if len(transitions) != 1 || transitions[0] != "closed->open" {
		t.Fatalf("transitions = %v", transitions)
	}
	// Intervening success resets the streak.
	b2 := attach(newBreaker("siteB", testBreakerConfig(), nil), newFakeClock())
	b2.RecordFailure()
	b2.RecordFailure()
	b2.RecordSuccess()
	b2.RecordFailure()
	b2.RecordFailure()
	if !b2.Allow() {
		t.Fatal("success did not reset the failure streak")
	}
}

func TestBreakerFullCycle(t *testing.T) {
	clock := newFakeClock()
	var transitions []string
	b := attach(newBreaker("siteA", testBreakerConfig(), func(site string, from, to BreakerState) {
		transitions = append(transitions, to.String())
	}), clock)

	for i := 0; i < 3; i++ {
		b.RecordFailure()
	}
	if b.State() != BreakerOpen {
		t.Fatal("not open after threshold")
	}
	// Backoff not elapsed: no probe yet. Jitter caps the window at
	// 1.5 × base.
	if b.TryProbe() {
		t.Fatal("probe admitted before backoff elapsed")
	}
	clock.advance(150*time.Millisecond + 1)
	if !b.TryProbe() {
		t.Fatal("probe not admitted after backoff")
	}
	if b.State() != BreakerHalfOpen || b.Allow() {
		t.Fatalf("state = %v, want half-open rejecting regular traffic", b.State())
	}
	// Failed probe: reopen with doubled backoff.
	b.RecordFailure()
	if b.State() != BreakerOpen {
		t.Fatal("failed probe did not reopen")
	}
	if b.TryProbe() {
		t.Fatal("probe admitted immediately after reopen")
	}
	clock.advance(300*time.Millisecond + 1) // 2× base, plus jitter headroom
	if !b.TryProbe() {
		t.Fatal("probe not admitted after doubled backoff")
	}
	// Successful probe closes.
	b.RecordSuccess()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatalf("state = %v after probe success, want closed", b.State())
	}
	want := "open half-open open half-open closed"
	if got := strings.Join(transitions, " "); got != want {
		t.Fatalf("transitions = %q, want %q", got, want)
	}
}

func TestBreakerBackoffCapped(t *testing.T) {
	clock := newFakeClock()
	b := attach(newBreaker("siteA", testBreakerConfig(), nil), clock)
	for i := 0; i < 3; i++ {
		b.RecordFailure()
	}
	// Many failed probes: backoff doubles 100ms → ... → capped at 1s.
	for i := 0; i < 10; i++ {
		clock.advance(2 * time.Second)
		if !b.TryProbe() {
			t.Fatalf("probe %d not admitted", i)
		}
		b.RecordFailure()
	}
	b.mu.Lock()
	backoff := b.backoff
	b.mu.Unlock()
	if backoff != time.Second {
		t.Fatalf("backoff = %v, want capped at 1s", backoff)
	}
	// Even capped, the jittered window stays ≤ 1.5 × cap.
	_, retryIn := b.Snapshot()
	if retryIn > 1500*time.Millisecond {
		t.Fatalf("retry window %v exceeds jittered cap", retryIn)
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var b *breaker
	if !b.Allow() || b.State() != BreakerClosed || b.TryProbe() {
		t.Fatal("nil breaker should behave closed and never probe")
	}
	b.RecordSuccess()
	b.RecordFailure()
	if st, d := b.Snapshot(); st != BreakerClosed || d != 0 {
		t.Fatal("nil breaker snapshot not closed/0")
	}
}

func TestBreakerConfigSanitize(t *testing.T) {
	c := BreakerConfig{}.sanitize()
	d := DefaultBreakerConfig()
	if c.FailureThreshold != d.FailureThreshold || c.BaseBackoff != d.BaseBackoff ||
		c.MaxBackoff != d.MaxBackoff || c.ProbeInterval != d.ProbeInterval ||
		c.ProbeTimeout != d.ProbeTimeout || c.RetryDelay != d.RetryDelay {
		t.Fatalf("sanitized zero config = %+v, want defaults %+v", c, d)
	}
	// MaxBackoff below BaseBackoff is lifted to at least BaseBackoff.
	c = BreakerConfig{BaseBackoff: time.Minute, MaxBackoff: time.Second}.sanitize()
	if c.MaxBackoff < c.BaseBackoff {
		t.Fatalf("MaxBackoff %v below BaseBackoff %v", c.MaxBackoff, c.BaseBackoff)
	}
}

func TestSiteUnavailableError(t *testing.T) {
	err := error(&SiteUnavailableError{Site: "spec.sdss.org", State: BreakerOpen, RetryIn: 2 * time.Second})
	if !strings.Contains(err.Error(), "spec.sdss.org") || !strings.Contains(err.Error(), "open") {
		t.Fatalf("error text = %q", err)
	}
	var su *SiteUnavailableError
	if !errors.As(err, &su) || su.State != BreakerOpen {
		t.Fatal("errors.As failed to recover SiteUnavailableError")
	}
	short := &SiteUnavailableError{Site: "x", State: BreakerHalfOpen}
	if !strings.Contains(short.Error(), "half-open") {
		t.Fatalf("error text = %q", short.Error())
	}
}

func TestBreakerStateString(t *testing.T) {
	cases := map[BreakerState]string{
		BreakerClosed:    "closed",
		BreakerOpen:      "open",
		BreakerHalfOpen:  "half-open",
		BreakerState(99): "unknown",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
