package wire

import (
	"net"
	"sync"
	"testing"
	"time"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/federation"
	"bypassyield/internal/obs"
)

// TestEndToEndMetricsReconcile is the acceptance test of the obs
// subsystem: after a mixed workload against a live federation, the
// MsgMetrics snapshot must carry per-site RPC latency histograms and
// per-policy decision counts, and the core byte counters must
// reconcile with the mediator's Figure-1 accounting — in particular
// the conservation law D_A = D_S + D_C.
func TestEndToEndMetricsReconcile(t *testing.T) {
	cap := catalog.EDR().TotalBytes()
	client, shutdown := testFederation(t,
		core.NewRateProfile(core.RateProfileConfig{Capacity: cap}), federation.Columns)
	defer shutdown()

	// Enough repeats of a fat query to drive bypass → load → hit.
	for i := 0; i < 8; i++ {
		if _, err := client.Query("select ra, dec from photoobj where ra between 0 and 350"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Query("select z from specobj where z < 3"); err != nil {
		t.Fatal(err)
	}

	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	m, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Source != "byproxyd" {
		t.Fatalf("source = %q", m.Source)
	}
	snap := m.Snapshot

	// Per-site node RPC latency histograms.
	for _, site := range []string{catalog.SitePhoto, catalog.SiteSpec} {
		h, ok := snap.HistogramSnap("wire.rpc_latency_us", site)
		if !ok || h.Count == 0 {
			t.Fatalf("no RPC latency histogram for site %s (ok=%v)", site, ok)
		}
	}

	// Per-policy decision counts must equal the accounting's.
	acct := st.Acct
	for verdict, want := range map[string]int64{
		"hit": acct.Hits, "bypass": acct.Bypasses, "load": acct.Loads,
	} {
		if got := snap.CounterValue("core.decisions", "rate-profile/"+verdict); got != want {
			t.Fatalf("decisions[%s] = %d, accounting says %d", verdict, got, want)
		}
	}

	// Figure-1 byte flows, including D_A = D_S + D_C.
	ds := snap.CounterValue("core.bypass_bytes", "")
	dl := snap.CounterValue("core.fetch_bytes", "")
	dc := snap.CounterValue("core.cache_bytes", "")
	if ds != acct.BypassBytes || dl != acct.FetchBytes || dc != acct.CacheBytes {
		t.Fatalf("flows (D_S,D_L,D_C) = (%d,%d,%d), accounting = (%d,%d,%d)",
			ds, dl, dc, acct.BypassBytes, acct.FetchBytes, acct.CacheBytes)
	}
	if ds+dc != acct.DeliveredBytes() {
		t.Fatalf("D_A violated: %d + %d != %d", ds, dc, acct.DeliveredBytes())
	}
	if got := snap.CounterValue("core.yield_bytes", ""); got != acct.YieldBytes {
		t.Fatalf("yield_bytes = %d, want %d", got, acct.YieldBytes)
	}

	// Federation layer: query counts and mediation latency.
	if got := snap.CounterValue("federation.queries", ""); got != st.Queries {
		t.Fatalf("federation.queries = %d, want %d", got, st.Queries)
	}
	if h, ok := snap.HistogramSnap("federation.query_latency_us", ""); !ok || h.Count != st.Queries {
		t.Fatalf("query latency count = %+v, want %d observations", h, st.Queries)
	}
	if got := snap.CounterValue("federation.objects_touched", ""); got != acct.Accesses {
		t.Fatalf("objects_touched = %d, want %d accesses", got, acct.Accesses)
	}

	// Wire layer: the transport counters in stats come from the same
	// registry, and client frames were counted per message type.
	if snap.CounterValue("wire.node_tx_bytes", "") != st.TransportTx {
		t.Fatal("stats TransportTx diverges from registry")
	}
	if got := snap.CounterValue("wire.frames_rx", "query"); got != st.Queries {
		t.Fatalf("frames_rx[query] = %d, want %d", got, st.Queries)
	}
	if snap.CounterValue("wire.client_conns_opened", "") == 0 {
		t.Fatal("client connection churn not counted")
	}
}

// TestDBNodeMetrics asserts a database node answers MsgMetrics with
// its own registry, including the engine's scan counters.
func TestDBNodeMetrics(t *testing.T) {
	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 100000})
	if err != nil {
		t.Fatal(err)
	}
	n := NewDBNode(catalog.SiteSpec, db)
	n.SetLogf(func(string, ...any) {})
	addr, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("select z from specobj where z < 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("select ra from photoobj where ra < 10"); err == nil {
		t.Fatal("foreign table should error")
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Source != "bydbd:"+catalog.SiteSpec {
		t.Fatalf("source = %q", m.Source)
	}
	snap := m.Snapshot
	if snap.CounterValue("dbnode.queries", "") != 1 {
		t.Fatalf("dbnode.queries = %d, want 1", snap.CounterValue("dbnode.queries", ""))
	}
	if snap.CounterValue("dbnode.errors", "") != 1 {
		t.Fatalf("dbnode.errors = %d, want 1", snap.CounterValue("dbnode.errors", ""))
	}
	if snap.CounterValue("engine.rows_scanned", "") == 0 {
		t.Fatal("engine scan counters not shared with the node registry")
	}
	if snap.CounterValue("dbnode.tx_bytes", "") == 0 || snap.CounterValue("dbnode.rx_bytes", "") == 0 {
		t.Fatal("transport byte counters empty")
	}
}

// TestProxyRPCTimeout starts a "node" that accepts connections and
// never answers: the proxy's RPC deadline must fire, the query must
// still succeed (the RPC loss is logged, not fatal), and the timeout
// must be counted.
func TestProxyRPCTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold open, never respond
		}
	}()

	p, c, done := newSimProxy(t, map[string]string{catalog.SitePhoto: ln.Addr().String()})
	defer done()
	p.SetRPCTimeout(100 * time.Millisecond)

	start := time.Now()
	res, err := c.Query("select ra from photoobj where ra < 100") // bypass → subquery RPC
	if err != nil {
		t.Fatalf("query should survive a hung node: %v", err)
	}
	if res.Rows <= 0 {
		t.Fatal("no rows")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("query blocked %v on a hung node", elapsed)
	}
	snap := p.Obs().Snapshot()
	if snap.CounterValue("wire.rpc_timeouts", catalog.SitePhoto) == 0 {
		t.Fatalf("timeout not counted: %+v", snap.Counters)
	}
	if snap.CounterValue("wire.rpc_retries", catalog.SitePhoto) != 0 {
		t.Fatal("a timed-out RPC must not be retried")
	}
}

// TestProxyReconnectRetry serves a node whose first connection dies
// after one request: the proxy must retry once over a fresh
// connection and succeed.
func TestProxyReconnectRetry(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var nconns int
	var mu sync.Mutex
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			nconns++
			first := nconns == 1
			mu.Unlock()
			go func(conn net.Conn, first bool) {
				defer conn.Close()
				served := 0
				for {
					_, _, _, err := ReadFrame(conn)
					if err != nil {
						return
					}
					if first && served >= 1 {
						return // kill the cached connection mid-RPC
					}
					WriteFrame(conn, MsgResult, &ResultMsg{})
					served++
				}
			}(conn, first)
		}
	}()

	p, _, done := newSimProxy(t, map[string]string{catalog.SitePhoto: ln.Addr().String()})
	defer done()
	p.SetRPCTimeout(2 * time.Second)

	// RPC 1 dials and succeeds, leaving the connection cached. The
	// fake node then kills conn 1 on its next request, so RPC 2 fails
	// the read on a cached connection, retries over a fresh dial, and
	// succeeds.
	if err := p.shipSubquery("select ra from photoobj", catalog.SitePhoto, obs.TraceContext{}, nil); err != nil {
		t.Fatalf("first ship failed: %v", err)
	}
	if err := p.shipSubquery("select ra from photoobj", catalog.SitePhoto, obs.TraceContext{}, nil); err != nil {
		t.Fatalf("retry should have recovered: %v", err)
	}
	snap := p.Obs().Snapshot()
	if snap.CounterValue("wire.rpc_retries", catalog.SitePhoto) != 1 {
		t.Fatalf("retries = %d, want 1", snap.CounterValue("wire.rpc_retries", catalog.SitePhoto))
	}
	if snap.CounterValue("wire.node_dials", catalog.SitePhoto) != 2 {
		t.Fatalf("dials = %d, want 2", snap.CounterValue("wire.node_dials", catalog.SitePhoto))
	}
	// The recovered connection stays cached: another RPC, no new dial.
	if err := p.shipSubquery("select ra from photoobj", catalog.SitePhoto, obs.TraceContext{}, nil); err != nil {
		t.Fatal(err)
	}
	if got := p.Obs().Snapshot().CounterValue("wire.node_dials", catalog.SitePhoto); got != 2 {
		t.Fatalf("dials after steady RPC = %d, want 2", got)
	}
}

// TestProxyQuerySpans checks the proxy emits per-query spans when a
// tracer is attached.
func TestProxyQuerySpans(t *testing.T) {
	ring := obs.NewRing(16)
	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 100000})
	if err != nil {
		t.Fatal(err)
	}
	med, err := federation.New(federation.Config{
		Schema: s, Engine: db, Granularity: federation.Tables,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := NewProxy(med, federation.Tables, nil)
	p.SetLogf(func(string, ...any) {})
	p.SetTracer(obs.NewTracer(ring))
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("select ra from photoobj where ra < 100"); err != nil {
		t.Fatal(err)
	}
	c.Query("not sql") //nolint:errcheck // error path should emit a span too

	trees := obs.BuildTraces(ring.Events())
	if len(trees) != 2 {
		t.Fatalf("traces = %d, want 2 (one per client query)", len(trees))
	}
	for _, tree := range trees {
		if tree.Orphans != 0 || len(tree.Roots) != 1 {
			t.Fatalf("tree %s: orphans=%d roots=%d", tree.ID, tree.Orphans, len(tree.Roots))
		}
		if root := tree.Roots[0]; root.Name != "proxy.query" || root.Duration <= 0 {
			t.Fatalf("root span = %+v", root.Event)
		}
	}
	// The successful query's trace carries the mediation legs as
	// children of the root; the parse failure's trace is a bare root
	// with an error attr.
	legs := map[string]int{}
	var bare *obs.SpanNode
	for _, tree := range trees {
		if len(tree.Roots[0].Children) == 0 {
			bare = tree.Roots[0]
			continue
		}
		for _, ch := range tree.Roots[0].Children {
			legs[ch.Name]++
			if ch.Parent != tree.Roots[0].Span {
				t.Fatalf("leg %s has parent %q, want root %q", ch.Name, ch.Parent, tree.Roots[0].Span)
			}
		}
	}
	if bare == nil || bare.AttrValue("error") == "" {
		t.Fatalf("parse failure should leave a bare root with an error attr, got %+v", bare)
	}
	// Tables granularity over one table: mediate once, decide once
	// (bypass), and one subquery leg for the bypassed table.
	for leg, want := range map[string]int{"proxy.mediate": 1, "proxy.decide": 1, "proxy.subquery": 1} {
		if legs[leg] != want {
			t.Fatalf("legs = %v, want %d %s", legs, want, leg)
		}
	}
}
