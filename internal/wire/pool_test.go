package wire

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"bypassyield/internal/obs"
)

// testPoolMetrics builds a metrics bundle on a private registry.
func testPoolMetrics() poolMetrics {
	r := obs.NewRegistry()
	return poolMetrics{
		active: r.GaugeFamily("wire.pool_active"),
		idle:   r.GaugeFamily("wire.pool_idle"),
		waits:  r.CounterFamily("wire.pool_waits"),
		dials:  r.CounterFamily("wire.node_dials"),
		drops:  r.CounterFamily("wire.node_conn_drops"),
	}
}

// pipeDialer fabricates connections without a network: each dial
// returns the client half of a net.Pipe and counts.
func pipeDialer() (dial func(site, addr string) (net.Conn, error), dials *atomic.Int64) {
	dials = &atomic.Int64{}
	dial = func(_, _ string) (net.Conn, error) {
		dials.Add(1)
		c, s := net.Pipe()
		go func() { // keep the server half from blocking writes
			buf := make([]byte, 1024)
			for {
				if _, err := s.Read(buf); err != nil {
					return
				}
			}
		}()
		return c, nil
	}
	return dial, dials
}

func TestPoolReusesMRU(t *testing.T) {
	dial, dials := pipeDialer()
	p := newPool("photo", "x", PoolConfig{MaxActive: 4}, dial, testPoolMetrics())
	defer p.Close()

	c1, reused, err := p.Get(false)
	if err != nil || reused {
		t.Fatalf("first Get: reused=%v err=%v", reused, err)
	}
	p.Put(c1)
	c2, reused, err := p.Get(false)
	if err != nil || !reused {
		t.Fatalf("second Get: reused=%v err=%v", reused, err)
	}
	if c2 != c1 {
		t.Fatal("expected the parked connection back")
	}
	if n := dials.Load(); n != 1 {
		t.Fatalf("%d dials, want 1", n)
	}
	p.Put(c2)
	if active, idle := p.Stats(); active != 0 || idle != 1 {
		t.Fatalf("stats = (%d active, %d idle), want (0, 1)", active, idle)
	}
}

func TestPoolBlocksAtMaxActive(t *testing.T) {
	dial, _ := pipeDialer()
	p := newPool("photo", "x", PoolConfig{MaxActive: 1}, dial, testPoolMetrics())
	defer p.Close()

	c1, _, err := p.Get(false)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan net.Conn, 1)
	go func() {
		c, _, err := p.Get(false)
		if err != nil {
			t.Error(err)
		}
		got <- c
	}()
	select {
	case <-got:
		t.Fatal("second Get should block while MaxActive is checked out")
	case <-time.After(50 * time.Millisecond):
	}
	p.Put(c1)
	select {
	case c := <-got:
		p.Put(c)
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Get never woke after Put")
	}
}

func TestPoolFreshDrainsIdle(t *testing.T) {
	dial, dials := pipeDialer()
	p := newPool("photo", "x", PoolConfig{MaxActive: 4}, dial, testPoolMetrics())
	defer p.Close()

	c1, _, _ := p.Get(false)
	p.Put(c1)
	c2, reused, err := p.Get(true) // fresh: presume the parked conn stale
	if err != nil || reused {
		t.Fatalf("fresh Get: reused=%v err=%v", reused, err)
	}
	if c2 == c1 {
		t.Fatal("fresh Get returned the stale parked connection")
	}
	if n := dials.Load(); n != 2 {
		t.Fatalf("%d dials, want 2", n)
	}
	// The drained conn must be closed: reads on its pair would fail,
	// and a write on the closed conn errors.
	if _, err := c1.Write([]byte("x")); err == nil {
		t.Fatal("drained idle connection should be closed")
	}
	p.Put(c2)
}

func TestPoolMaxIdleOverflowCloses(t *testing.T) {
	dial, _ := pipeDialer()
	p := newPool("photo", "x", PoolConfig{MaxActive: 2, MaxIdle: 1}, dial, testPoolMetrics())
	defer p.Close()

	c1, _, _ := p.Get(false)
	c2, _, _ := p.Get(false)
	p.Put(c1)
	p.Put(c2) // beyond MaxIdle: closed, not parked
	if _, idle := p.Stats(); idle != 1 {
		t.Fatalf("%d idle, want 1", idle)
	}
	if _, err := c2.Write([]byte("x")); err == nil {
		t.Fatal("overflow return should close the connection")
	}
}

func TestPoolCloseFailsGets(t *testing.T) {
	dial, _ := pipeDialer()
	p := newPool("photo", "x", PoolConfig{MaxActive: 1}, dial, testPoolMetrics())
	c1, _, err := p.Get(false)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, _, err := p.Get(false) // blocked on MaxActive
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	p.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("blocked Get should fail when the pool closes")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Get never woke on Close")
	}
	if _, _, err := p.Get(false); err == nil {
		t.Fatal("Get after Close should fail")
	}
	p.Discard(c1)
}
