package wire

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"bypassyield/internal/obs"
)

// testPoolMetrics builds a metrics bundle on a private registry.
func testPoolMetrics() poolMetrics {
	r := obs.NewRegistry()
	return poolMetrics{
		active:  r.GaugeFamily("wire.pool_active"),
		idle:    r.GaugeFamily("wire.pool_idle"),
		waits:   r.CounterFamily("wire.pool_waits"),
		waitDur: r.HistogramFamily("wire.pool_wait_us", obs.DefaultLatencyBuckets()),
		dials:   r.CounterFamily("wire.node_dials"),
		drops:   r.CounterFamily("wire.node_conn_drops"),
	}
}

// pipeDialer fabricates connections without a network: each dial
// returns the client half of a net.Pipe and counts.
func pipeDialer() (dial func(site, addr string) (net.Conn, error), dials *atomic.Int64) {
	dials = &atomic.Int64{}
	dial = func(_, _ string) (net.Conn, error) {
		dials.Add(1)
		c, s := net.Pipe()
		go func() { // keep the server half from blocking writes
			buf := make([]byte, 1024)
			for {
				if _, err := s.Read(buf); err != nil {
					return
				}
			}
		}()
		return c, nil
	}
	return dial, dials
}

func TestPoolReusesMRU(t *testing.T) {
	dial, dials := pipeDialer()
	p := newPool("photo", "x", PoolConfig{MaxActive: 4}, dial, testPoolMetrics())
	defer p.Close()

	c1, reused, err := p.Get(false)
	if err != nil || reused {
		t.Fatalf("first Get: reused=%v err=%v", reused, err)
	}
	p.Put(c1)
	c2, reused, err := p.Get(false)
	if err != nil || !reused {
		t.Fatalf("second Get: reused=%v err=%v", reused, err)
	}
	if c2 != c1 {
		t.Fatal("expected the parked connection back")
	}
	if n := dials.Load(); n != 1 {
		t.Fatalf("%d dials, want 1", n)
	}
	p.Put(c2)
	if active, idle := p.Stats(); active != 0 || idle != 1 {
		t.Fatalf("stats = (%d active, %d idle), want (0, 1)", active, idle)
	}
}

func TestPoolBlocksAtMaxActive(t *testing.T) {
	dial, _ := pipeDialer()
	p := newPool("photo", "x", PoolConfig{MaxActive: 1}, dial, testPoolMetrics())
	defer p.Close()

	c1, _, err := p.Get(false)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan net.Conn, 1)
	go func() {
		c, _, err := p.Get(false)
		if err != nil {
			t.Error(err)
		}
		got <- c
	}()
	select {
	case <-got:
		t.Fatal("second Get should block while MaxActive is checked out")
	case <-time.After(50 * time.Millisecond):
	}
	p.Put(c1)
	select {
	case c := <-got:
		p.Put(c)
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Get never woke after Put")
	}
}

func TestPoolFreshDrainsIdle(t *testing.T) {
	dial, dials := pipeDialer()
	p := newPool("photo", "x", PoolConfig{MaxActive: 4}, dial, testPoolMetrics())
	defer p.Close()

	c1, _, _ := p.Get(false)
	p.Put(c1)
	c2, reused, err := p.Get(true) // fresh: presume the parked conn stale
	if err != nil || reused {
		t.Fatalf("fresh Get: reused=%v err=%v", reused, err)
	}
	if c2 == c1 {
		t.Fatal("fresh Get returned the stale parked connection")
	}
	if n := dials.Load(); n != 2 {
		t.Fatalf("%d dials, want 2", n)
	}
	// The drained conn must be closed: reads on its pair would fail,
	// and a write on the closed conn errors.
	if _, err := c1.Write([]byte("x")); err == nil {
		t.Fatal("drained idle connection should be closed")
	}
	p.Put(c2)
}

func TestPoolMaxIdleOverflowCloses(t *testing.T) {
	dial, _ := pipeDialer()
	p := newPool("photo", "x", PoolConfig{MaxActive: 2, MaxIdle: 1}, dial, testPoolMetrics())
	defer p.Close()

	c1, _, _ := p.Get(false)
	c2, _, _ := p.Get(false)
	p.Put(c1)
	p.Put(c2) // beyond MaxIdle: closed, not parked
	if _, idle := p.Stats(); idle != 1 {
		t.Fatalf("%d idle, want 1", idle)
	}
	if _, err := c2.Write([]byte("x")); err == nil {
		t.Fatal("overflow return should close the connection")
	}
}

func TestPoolCloseFailsGets(t *testing.T) {
	dial, _ := pipeDialer()
	p := newPool("photo", "x", PoolConfig{MaxActive: 1}, dial, testPoolMetrics())
	c1, _, err := p.Get(false)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, _, err := p.Get(false) // blocked on MaxActive
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	p.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("blocked Get should fail when the pool closes")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Get never woke on Close")
	}
	if _, _, err := p.Get(false); err == nil {
		t.Fatal("Get after Close should fail")
	}
	p.Discard(c1)
}

func TestAdaptPoolSize(t *testing.T) {
	cases := []struct {
		name    string
		cur     int
		waits   int64
		rate    float64 // legs/sec
		latency float64 // seconds
		want    int
	}{
		// Little's law: 100 legs/s × 200ms × 1.5 headroom = 30 > the
		// +50% floor (12), so demand wins.
		{"waits grow to demand", 8, 5, 100, 0.2, 30},
		// Demand estimate (3) lags the +50% floor when latency was
		// measured under a starved pool; the floor wins.
		{"waits grow at least half", 8, 1, 10, 0.2, 12},
		{"quiet at demand holds", 8, 0, 40, 0.2, 8}, // need=12 ≥ cur is no shrink
		// Quiet and oversized: decay halfway toward demand (need=3,
		// cur=16 → 16−6=10), not a collapse.
		{"quiet oversized decays halfway", 16, 0, 10, 0.2, 10},
		{"idle site decays", 16, 0, 0, 0, 8},
		{"floor", 2, 0, 0, 0, MinAdaptivePoolSize},
		{"ceiling", 60, 100, 10_000, 0.1, MaxAdaptivePoolSize},
		{"zero cur treated as one", 0, 0, 0, 0, MinAdaptivePoolSize},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := AdaptPoolSize(tc.cur, tc.waits, tc.rate, tc.latency); got != tc.want {
				t.Fatalf("AdaptPoolSize(%d, %d, %v, %v) = %d, want %d",
					tc.cur, tc.waits, tc.rate, tc.latency, got, tc.want)
			}
		})
	}
}

func TestPoolResizeGrowUnblocksAndShrinkTrimsIdle(t *testing.T) {
	dial, _ := pipeDialer()
	p := newPool("photo", "x", PoolConfig{MaxActive: 1}, dial, testPoolMetrics())
	defer p.Close()

	c1, _, err := p.Get(false)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan net.Conn, 1)
	go func() {
		c, _, err := p.Get(false) // blocked at MaxActive=1
		if err != nil {
			t.Error(err)
		}
		got <- c
	}()
	time.Sleep(20 * time.Millisecond)
	p.Resize(2) // growing must wake the blocked Get without a Put
	var c2 net.Conn
	select {
	case c2 = <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Get never woke after Resize grew the bound")
	}
	if p.MaxActive() != 2 {
		t.Fatalf("MaxActive = %d, want 2", p.MaxActive())
	}

	// Park both, then shrink to 1: the surplus idle conn must close.
	p.Put(c1)
	p.Put(c2)
	if _, idle := p.Stats(); idle != 2 {
		t.Fatalf("%d idle before shrink, want 2", idle)
	}
	p.Resize(1)
	if _, idle := p.Stats(); idle != 1 {
		t.Fatalf("%d idle after shrink, want 1", idle)
	}
	if _, err := c2.Write([]byte("x")); err == nil {
		t.Fatal("surplus idle connection should be closed by shrink")
	}
}
