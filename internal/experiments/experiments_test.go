package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"bypassyield/internal/obs"
	"bypassyield/internal/obs/ledger"
)

// suite is shared across tests: trace generation dominates runtime,
// and the Suite caches traces, so building it once keeps the package
// fast.
var shared = NewSuite(30)

func runExp(t *testing.T, id string) *Table {
	t.Helper()
	tab, err := shared.Run(id)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if tab.ID != id {
		t.Fatalf("table ID = %q, want %q", tab.ID, id)
	}
	return tab
}

func cellFloat(t *testing.T, tab *Table, row int, col string) float64 {
	t.Helper()
	for i, c := range tab.Columns {
		if c == col {
			v, err := strconv.ParseFloat(tab.Rows[row][i], 64)
			if err != nil {
				t.Fatalf("cell %d/%s = %q: %v", row, col, tab.Rows[row][i], err)
			}
			return v
		}
	}
	t.Fatalf("no column %q in %v", col, tab.Columns)
	return 0
}

func TestSuiteObsAttach(t *testing.T) {
	s := NewSuite(30)
	s.Obs = obs.NewRegistry()
	if _, err := s.Run("fig7"); err != nil {
		t.Fatal(err)
	}
	snap := s.Obs.Snapshot()
	if snap.CounterTotal("core.decisions") == 0 {
		t.Fatal("suite with Obs attached recorded no decisions")
	}
	// Conservation across everything the suite simulated: delivered
	// bytes arrive either by bypass or out of the cache.
	ds := snap.CounterValue("core.bypass_bytes", "")
	dc := snap.CounterValue("core.cache_bytes", "")
	dy := snap.CounterValue("core.yield_bytes", "")
	if ds+dc != dy {
		t.Fatalf("D_A violated across suite: %d + %d != %d", ds, dc, dy)
	}
}

func TestSuiteLedgerAndShadowAttach(t *testing.T) {
	s := NewSuite(30)
	s.Obs = obs.NewRegistry()
	s.Ledger = ledger.New(1 << 16)
	s.Shadow = true
	if _, err := s.Run("fig7"); err != nil {
		t.Fatal(err)
	}
	snap := s.Obs.Snapshot()
	decisions := snap.CounterTotal("core.decisions")
	if decisions == 0 {
		t.Fatal("suite recorded no decisions")
	}
	if got := s.Ledger.Count(); got != uint64(decisions) {
		t.Fatalf("ledger count = %d, want one record per decision (%d)", got, decisions)
	}
	// Shadow accounting published through the registry: the
	// always-bypass counterfactual's WAN is every simulation's yield
	// total, so its counter must match core.yield_bytes.
	shadowWAN := snap.CounterValue("core.shadow_wan_bytes", "always-bypass")
	if dy := snap.CounterValue("core.yield_bytes", ""); shadowWAN != dy {
		t.Fatalf("always-bypass shadow WAN = %d, want Σ yields = %d", shadowWAN, dy)
	}
	if snap.CounterValue("core.optbound_bytes", "") <= 0 {
		t.Fatal("ski-rental bound not published")
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := shared.Run("fig99"); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestIDsAllRunnable(t *testing.T) {
	for _, id := range IDs() {
		if _, err := shared.Run(id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	tab := runExp(t, "fig4")
	if len(tab.Rows) == 0 || len(tab.Rows) > 50 {
		t.Fatalf("rows = %d, want 1..50 (the paper's window)", len(tab.Rows))
	}
	// Low containment: few rows flagged reused.
	reused := 0
	for _, row := range tab.Rows {
		if row[3] == "true" {
			reused++
		}
	}
	if reused > len(tab.Rows)/4 {
		t.Fatalf("%d of %d identity queries reused an id; want sparse", reused, len(tab.Rows))
	}
}

func TestFig5and6Shape(t *testing.T) {
	for _, id := range []string{"fig5", "fig6"} {
		tab := runExp(t, id)
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: no rows", id)
		}
		// Rows are sorted by reference count, and the top item shows a
		// long-lasting band (span a large part of the trace).
		top := cellFloat(t, tab, 0, "references")
		span := cellFloat(t, tab, 0, "span")
		if top <= 1 {
			t.Fatalf("%s: top item has %v references", id, top)
		}
		if span <= 0 {
			t.Fatalf("%s: top item has no reuse span", id)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	tab := runExp(t, "fig7")
	last := len(tab.Rows) - 1
	rp := cellFloat(t, tab, last, "Rate-Profile(GB)")
	gds := cellFloat(t, tab, last, "GDS(GB)")
	static := cellFloat(t, tab, last, "Static(GB)")
	noCache := cellFloat(t, tab, last, "No-Cache(GB)")
	// Paper shape: bypass-yield ≈ static, well below GDS and no-cache.
	if rp > 1.5*static {
		t.Fatalf("Rate-Profile %v not ≈ static %v", rp, static)
	}
	if gds < 2*rp {
		t.Fatalf("GDS %v should be well above Rate-Profile %v", gds, rp)
	}
	if noCache < 4*rp {
		t.Fatalf("no-cache %v should dwarf Rate-Profile %v", noCache, rp)
	}
	// Curves are cumulative: nondecreasing.
	for _, col := range []string{"Rate-Profile(GB)", "GDS(GB)", "No-Cache(GB)"} {
		prev := -1.0
		for i := range tab.Rows {
			v := cellFloat(t, tab, i, col)
			if v < prev {
				t.Fatalf("%s decreases at row %d", col, i)
			}
			prev = v
		}
	}
}

func TestFig8Shape(t *testing.T) {
	tab := runExp(t, "fig8")
	last := len(tab.Rows) - 1
	rp := cellFloat(t, tab, last, "Rate-Profile(GB)")
	gds := cellFloat(t, tab, last, "GDS(GB)")
	static := cellFloat(t, tab, last, "Static(GB)")
	noCache := cellFloat(t, tab, last, "No-Cache(GB)")
	if rp > 1.5*static {
		t.Fatalf("Rate-Profile %v not ≈ static %v", rp, static)
	}
	if gds <= rp {
		t.Fatalf("GDS %v should exceed Rate-Profile %v", gds, rp)
	}
	if noCache < 5*rp {
		t.Fatalf("no-cache %v should dwarf Rate-Profile %v", noCache, rp)
	}
}

func TestFig9Shape(t *testing.T) {
	tab := runExp(t, "fig9")
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 cache sizes", len(tab.Rows))
	}
	// Bypass caches become effective only past the hot-set size: the
	// cost at 10% is many times the cost at 40%.
	rp10 := cellFloat(t, tab, 0, "Rate-Profile(GB)")
	rp40 := cellFloat(t, tab, 3, "Rate-Profile(GB)")
	if rp10 < 3*rp40 {
		t.Fatalf("Rate-Profile at 10%% (%v) should be ≫ at 40%% (%v)", rp10, rp40)
	}
	// GDS stays high through the mid-range.
	gds40 := cellFloat(t, tab, 3, "GDS(GB)")
	if gds40 < 2*rp40 {
		t.Fatalf("GDS at 40%% (%v) should be well above Rate-Profile (%v)", gds40, rp40)
	}
	// Static is a lower envelope for Rate-Profile at every size.
	for i := range tab.Rows {
		st := cellFloat(t, tab, i, "Static(GB)")
		rp := cellFloat(t, tab, i, "Rate-Profile(GB)")
		if st > rp*1.05+0.2 {
			t.Fatalf("row %d: static %v above Rate-Profile %v", i, st, rp)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	tab := runExp(t, "fig10")
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 cache sizes", len(tab.Rows))
	}
	// Cost declines (weakly) with cache size for Rate-Profile between
	// the extremes.
	rp10 := cellFloat(t, tab, 0, "Rate-Profile(GB)")
	rp100 := cellFloat(t, tab, 9, "Rate-Profile(GB)")
	if rp100 > rp10/3 {
		t.Fatalf("Rate-Profile at 100%% (%v) should be ≪ at 10%% (%v)", rp100, rp10)
	}
	// At tiny caches the randomized algorithm is not better than the
	// workload-driven one by much; mostly they are all bad.
	se10 := cellFloat(t, tab, 0, "SpaceEffBY(GB)")
	if se10 < rp100 {
		t.Fatalf("SpaceEffBY at 10%% (%v) suspiciously low", se10)
	}
}

func TestTab1Shape(t *testing.T) {
	tab := runExp(t, "tab1")
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (2 releases × 3 algorithms)", len(tab.Rows))
	}
	for i := range tab.Rows {
		bypass := cellFloat(t, tab, i, "bypass(GB)")
		fetch := cellFloat(t, tab, i, "fetch(GB)")
		total := cellFloat(t, tab, i, "total(GB)")
		if v := bypass + fetch; v < total-0.02 || v > total+0.02 {
			t.Fatalf("row %d: bypass %v + fetch %v != total %v", i, bypass, fetch, total)
		}
		seq := cellFloat(t, tab, i, "seq-cost(GB)")
		if total > seq/3 {
			t.Fatalf("row %d: total %v not well below sequence cost %v", i, total, seq)
		}
	}
}

func TestTab2Shape(t *testing.T) {
	tab := runExp(t, "tab2")
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	for i := range tab.Rows {
		total := cellFloat(t, tab, i, "total(GB)")
		seq := cellFloat(t, tab, i, "seq-cost(GB)")
		if total > seq/2 {
			t.Fatalf("row %d: total %v not below half the sequence cost %v", i, total, seq)
		}
	}
}

func TestTableWriteText(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "demo",
		Columns: []string{"a", "long-header"},
		Rows:    [][]string{{"1", "2"}},
	}
	tab.AddNote("note %d", 7)
	var buf bytes.Buffer
	if err := tab.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "long-header", "# note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestTableWriteCSV(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "4"}},
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,4\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a, err := NewSuite(60).Run("tab1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSuite(60).Run("tab1")
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("non-deterministic cell [%d][%d]: %q vs %q", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}

func TestExtensionIDsAllRunnable(t *testing.T) {
	for _, id := range ExtensionIDs() {
		if _, err := shared.Run(id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}

func TestXSemShape(t *testing.T) {
	tab, err := shared.Run("xsem")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 cache sizes", len(tab.Rows))
	}
	// At every cache size the semantic cache must trail Rate-Profile
	// except possibly at the smallest size, and always at 40%+.
	for i := 1; i < len(tab.Rows); i++ {
		sem := cellFloat(t, tab, i, "sem-WAN(GB)")
		rp := cellFloat(t, tab, i, "rate-profile-WAN(GB)")
		if sem < 2*rp {
			t.Fatalf("row %d: semantic cache %v not well above rate-profile %v", i, sem, rp)
		}
	}
}

func TestXNetShape(t *testing.T) {
	tab, err := shared.Run("xnet")
	if err != nil {
		t.Fatal(err)
	}
	// No-cache must be the worst row by far.
	var noCache, best float64
	best = 1e18
	for i := range tab.Rows {
		v := cellFloat(t, tab, i, "WAN-cost(GB)")
		if tab.Rows[i][0] == "no-cache" {
			noCache = v
		} else if v < best {
			best = v
		}
	}
	if noCache < 3*best {
		t.Fatalf("no-cache %v should dwarf the best policy %v", noCache, best)
	}
}

func TestXAvailShape(t *testing.T) {
	tab, err := shared.Run("xavail")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 4 outage levels × 2 policies", len(tab.Rows))
	}
	// Rows alternate rate-profile / no-cache per outage level.
	for i := 0; i < len(tab.Rows); i += 2 {
		outage := tab.Rows[i][0]
		rp := cellFloat(t, tab, i, "availability")
		nc := cellFloat(t, tab, i+1, "availability")
		if outage == "0" {
			if rp != 1 || nc != 1 {
				t.Fatalf("availability at 0%% outage = %v/%v, want 1/1", rp, nc)
			}
			continue
		}
		// The cache masks part of every outage: strictly higher
		// availability and some stale-served bytes.
		if rp <= nc {
			t.Fatalf("outage %s%%: rate-profile availability %v not above no-cache %v", outage, rp, nc)
		}
		if cellFloat(t, tab, i, "stale-served(GB)") <= 0 {
			t.Fatalf("outage %s%%: no stale bytes served from cache", outage)
		}
		if cellFloat(t, tab, i+1, "stale-served(GB)") != 0 {
			t.Fatalf("outage %s%%: no-cache served stale bytes", outage)
		}
	}
}

func TestXCompRatiosBounded(t *testing.T) {
	tab, err := shared.Run("xcomp")
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		max := cellFloat(t, tab, i, "max-ratio")
		if max <= 0 || max > 40 {
			t.Fatalf("row %d: max ratio %v outside sane competitive band", i, max)
		}
	}
}

func TestXHierShape(t *testing.T) {
	tab, err := shared.Run("xhier")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 configurations", len(tab.Rows))
	}
	// Costs must strictly improve down the configurations: no caching
	// → mediator only → +client 10% → +client 20%.
	prev := 1e18
	for i := range tab.Rows {
		v := cellFloat(t, tab, i, "total-cost(GB)")
		if v >= prev {
			t.Fatalf("row %d (%s): cost %v not below previous %v", i, tab.Rows[i][0], v, prev)
		}
		prev = v
	}
	// The client tier serves hits once present.
	if cellFloat(t, tab, 2, "client-hits") <= 0 {
		t.Fatal("client tier should serve hits")
	}
}

func TestXViewShape(t *testing.T) {
	tab, err := shared.Run("xview")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 (4 cache sizes × 3 granularities)", len(tab.Rows))
	}
	// Columns dominate at every cache size (the paper's implicit
	// conclusion from evaluating columns most favourably).
	byKey := map[string]float64{}
	for i := range tab.Rows {
		byKey[tab.Rows[i][0]+"/"+tab.Rows[i][1]] = cellFloat(t, tab, i, "WAN(GB)")
	}
	for _, pct := range []string{"10", "20", "40"} {
		if byKey[pct+"/columns"] > byKey[pct+"/tables"] {
			t.Fatalf("at %s%%: columns %v should beat tables %v",
				pct, byKey[pct+"/columns"], byKey[pct+"/tables"])
		}
	}
	// Mid-range: views at least match tables.
	if byKey["20/views"] > byKey["20/tables"]*1.02 {
		t.Fatalf("at 20%%: views %v should not trail tables %v", byKey["20/views"], byKey["20/tables"])
	}
}

func TestXScaleShape(t *testing.T) {
	tab, err := shared.Run("xscale")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	// Bypass-yield never exceeds the sequence cost (graceful
	// degradation); in-line GDS eventually does (caching everything
	// is worse than caching nothing once the cache is overwhelmed).
	last := len(tab.Rows) - 1
	seq := cellFloat(t, tab, last, "seq-cost(GB)")
	rp := cellFloat(t, tab, last, "rate-profile(GB)")
	gds := cellFloat(t, tab, last, "gds(GB)")
	if rp > seq {
		t.Fatalf("rate-profile %v exceeds sequence cost %v at max scale", rp, seq)
	}
	if gds < seq {
		t.Fatalf("GDS %v should exceed sequence cost %v when overwhelmed", gds, seq)
	}
	// Savings shrink monotonically as the federation grows.
	prev := 1e18
	for i := range tab.Rows {
		r := cellFloat(t, tab, i, "rate-profile(GB)") / cellFloat(t, tab, i, "seq-cost(GB)")
		if 1/r > prev*1.05 {
			t.Fatalf("row %d: savings factor grew with federation size", i)
		}
		prev = 1 / r
	}
}

func TestTableWriteMarkdown(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
	}
	tab.AddNote("hello")
	var buf bytes.Buffer
	if err := tab.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### x — demo", "| a | b |", "|---|---|", "| 1 | 2 |", "- hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}
