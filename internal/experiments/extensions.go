package experiments

import (
	"fmt"
	"math/rand"

	"bypassyield/internal/core"
	"bypassyield/internal/federation"
	"bypassyield/internal/hierarchy"
	"bypassyield/internal/netcost"
	"bypassyield/internal/semcache"
	"bypassyield/internal/sqlparse"
)

// Extension experiments beyond the paper's figures: the semantic-
// caching comparison Section 6.1 argues qualitatively (xsem), the
// non-uniform-network/BYHR generalization Section 3 defines but never
// evaluates (xnet), and an empirical check of OnlineBY's competitive
// behaviour (xcomp).

// ExtensionIDs lists the extension experiment identifiers.
func ExtensionIDs() []string {
	return []string{"xsem", "xnet", "xcomp", "xhier", "xview", "xscale", "xavail"}
}

// runExtension dispatches extension ids; ok is false for unknown ids.
func (s *Suite) runExtension(id string) (*Table, bool, error) {
	switch id {
	case "xsem":
		t, err := s.XSem()
		return t, true, err
	case "xnet":
		t, err := s.XNet()
		return t, true, err
	case "xcomp":
		t, err := s.XComp()
		return t, true, err
	case "xhier":
		t, err := s.XHier()
		return t, true, err
	case "xview":
		t, err := s.XView()
		return t, true, err
	case "xscale":
		t, err := s.XScale()
		return t, true, err
	case "xavail":
		t, err := s.XAvail()
		return t, true, err
	default:
		return nil, false, nil
	}
}

// XScale probes the paper's motivating scalability crisis ("we expect
// the federation to expand to more than 120 sites"): k archives with
// independent EDR-like workloads share one mediator cache sized for a
// single archive. Each archive's trace is the EDR trace with objects
// renamed per archive; streams interleave round-robin. A bypass-yield
// cache degrades gracefully — it concentrates on the most valuable
// objects across archives and bypasses the rest — while in-line GDS
// thrashes.
func (s *Suite) XScale() (*Table, error) {
	baseReqs, err := s.requests("edr", federation.Columns)
	if err != nil {
		return nil, err
	}
	baseObjs, dbBytes, err := s.objects("edr", federation.Columns)
	if err != nil {
		return nil, err
	}
	capacity := int64(s.CachePct * float64(dbBytes)) // sized for ONE archive
	episodes := core.EpisodeConfig{K: 60}

	t := &Table{
		ID:    "xscale",
		Title: "Federation growth: k archives, one cache sized for one archive (EDR, columns)",
		Columns: []string{"archives", "seq-cost(GB)", "rate-profile(GB)", "online-by(GB)",
			"gds(GB)", "rate-profile-savings"},
	}
	for _, k := range []int{1, 2, 4, 8} {
		reqs, objs := cloneFederation(baseReqs, baseObjs, k)
		var seq int64
		for _, r := range reqs {
			for _, a := range r.Accesses {
				seq += a.Yield
			}
		}
		results := make(map[string]int64)
		for _, ps := range []struct {
			name string
			p    core.Policy
		}{
			{"rp", core.NewRateProfile(core.RateProfileConfig{Capacity: capacity, Episodes: episodes})},
			{"ob", core.NewOnlineBY(core.NewLandlord(capacity))},
			{"gds", core.NewGDS(capacity)},
		} {
			res, err := s.simulate(ps.p, reqs, objs, 0)
			if err != nil {
				return nil, err
			}
			results[ps.name] = res.Acct.WANBytes()
		}
		t.AddRow(
			fmt.Sprintf("%d", k),
			gbf(seq),
			gbf(results["rp"]),
			gbf(results["ob"]),
			gbf(results["gds"]),
			fmt.Sprintf("%.1fx", float64(seq)/float64(results["rp"])),
		)
	}
	t.AddNote("cache fixed at %.0f%% of ONE archive while the federation grows k-fold", s.CachePct*100)
	t.AddNote("paper motivation: \"The WWT faces an impending scalability crisis... We expect the federation to expand to more than 120 sites\"")
	return t, nil
}

// cloneFederation builds a k-archive federation: object universes and
// request streams replicated with per-archive prefixes, interleaved
// round-robin with fresh sequence numbers.
func cloneFederation(reqs []core.Request, objs map[core.ObjectID]core.Object, k int) ([]core.Request, map[core.ObjectID]core.Object) {
	outObjs := make(map[core.ObjectID]core.Object, len(objs)*k)
	prefix := func(i int, id core.ObjectID) core.ObjectID {
		if i == 0 {
			return id
		}
		return core.ObjectID(fmt.Sprintf("a%d:%s", i, id))
	}
	for i := 0; i < k; i++ {
		for id, o := range objs {
			nid := prefix(i, id)
			o.ID = nid
			outObjs[nid] = o
		}
	}
	out := make([]core.Request, 0, len(reqs)*k)
	seq := int64(0)
	for _, r := range reqs {
		for i := 0; i < k; i++ {
			seq++
			nr := core.Request{Seq: seq, Accesses: make([]core.Access, len(r.Accesses))}
			for j, a := range r.Accesses {
				nr.Accesses[j] = core.Access{Object: prefix(i, a.Object), Yield: a.Yield}
			}
			out = append(out, nr)
		}
	}
	return out, outObjs
}

// XView evaluates the third object class the paper names but never
// measures — materialized views — against tables and columns. Views
// combine coarse-grained loading with the filtering benefit of
// predicate-defined slices: a Galaxy view is a tenth of the
// photometric table, so class-restricted scans become cacheable at a
// fraction of the table's fetch cost.
func (s *Suite) XView() (*Table, error) {
	t := &Table{
		ID:    "xview",
		Title: "Object granularity: tables vs columns vs materialized views (EDR, Rate-Profile)",
		Columns: []string{"cache%", "granularity", "WAN(GB)", "loads", "evictions",
			"byte-hit-rate"},
	}
	episodes := core.EpisodeConfig{K: 60}
	for _, pct := range []int{5, 10, 20, 40} {
		for _, g := range []federation.Granularity{federation.Tables, federation.Columns, federation.Views} {
			reqs, err := s.requests("edr", g)
			if err != nil {
				return nil, err
			}
			objs, dbBytes, err := s.objects("edr", g)
			if err != nil {
				return nil, err
			}
			capacity := dbBytes * int64(pct) / 100
			p := core.NewRateProfile(core.RateProfileConfig{Capacity: capacity, Episodes: episodes})
			res, err := s.simulate(p, reqs, objs, 0)
			if err != nil {
				return nil, err
			}
			t.AddRow(
				fmt.Sprintf("%d", pct),
				g.String(),
				gbf(res.Acct.WANBytes()),
				fmt.Sprintf("%d", res.Acct.Loads),
				fmt.Sprintf("%d", res.Acct.Evictions),
				fmt.Sprintf("%.2f", res.Acct.ByteHitRate()),
			)
		}
	}
	t.AddNote("views universe = standard views (galaxy, star, brightgalaxy, lowzspec) + base tables as fallback")
	t.AddNote("three regimes: at tiny caches churn eats the view advantage; in the mid-range views beat tables (a Galaxy slice fits where the whole photometric table cannot); at large caches views LOSE to tables — view-attributed traffic no longer credits the base table, so view and table both get cached and the redundancy costs fetches")
	t.AddNote("the paper names \"relations, attributes, and materialized views\" as object classes but evaluates only the first two; columns dominate throughout, consistent with its choice")
	return t, nil
}

// XSem quantifies the paper's negative result on semantic caching: a
// query-result cache with containment matching barely dents the
// sequence cost, because astronomy workloads exhibit schema locality
// but not query locality.
func (s *Suite) XSem() (*Table, error) {
	recs, err := s.records("edr", federation.Columns)
	if err != nil {
		return nil, err
	}
	p, err := s.profile("edr")
	if err != nil {
		return nil, err
	}
	reqs, err := s.requests("edr", federation.Columns)
	if err != nil {
		return nil, err
	}
	objs, dbBytes, err := s.objects("edr", federation.Columns)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "xsem",
		Title: "Semantic (query) caching vs bypass-yield (EDR)",
		Columns: []string{"cache%", "sem-hits", "hit-rate", "hit-rate-dumps",
			"hit-rate-science", "sem-WAN(GB)", "rate-profile-WAN(GB)"},
	}
	// Dumps (bulk extracts and campaign bursts) repeat near-identical
	// statements and are the only place query reuse exists; the
	// selective science classes are where the paper's "no query
	// containment" claim lives.
	isDump := func(class string) bool {
		return class == "bulk" || class == "campaign"
	}
	for _, pct := range []int{10, 40, 70, 100} {
		capacity := dbBytes * int64(pct) / 100
		sc := semcache.New(p.Schema, capacity)
		var wan int64
		var hits, total, dumpHits, dumpTotal, sciHits, sciTotal int64
		for _, rec := range recs {
			stmt, err := sqlparse.Parse(rec.SQL)
			if err != nil {
				continue
			}
			total++
			hit := sc.Query(rec.Seq, stmt, rec.Yield) == core.Hit
			if hit {
				hits++
			} else {
				wan += rec.Yield
			}
			if isDump(rec.Class) {
				dumpTotal++
				if hit {
					dumpHits++
				}
			} else {
				sciTotal++
				if hit {
					sciHits++
				}
			}
		}
		res, err := s.simulate(core.NewRateProfile(core.RateProfileConfig{
			Capacity: capacity, Episodes: core.EpisodeConfig{K: 60},
		}), reqs, objs, 0)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", pct),
			fmt.Sprintf("%d", hits),
			fmt.Sprintf("%.3f", rate(hits, total)),
			fmt.Sprintf("%.3f", rate(dumpHits, dumpTotal)),
			fmt.Sprintf("%.3f", rate(sciHits, sciTotal)),
			gbf(wan),
			gbf(res.Acct.WANBytes()),
		)
	}
	t.AddNote("sequence cost = %s GB; semantic cache uses exact + containment matching over the SQL subset", gbf(s.seqs["edr/columns"]))
	t.AddNote("reuse concentrates in repeated whole-chunk dumps (synthetic near-duplicates); even granting the semantic cache generous containment matching, its WAN cost stays 5-8x above bypass-yield at practical sizes — partial-match misses ship whole results and large cached results churn")
	return t, nil
}

func rate(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// XHier explores the paper's deferred future work — cache
// hierarchies: a small client-side bypass-yield tier in front of the
// mediator cache, with equal-weight WAN links client↔mediator and
// mediator↔servers. The comparison includes the client link for every
// configuration, so the paper's single mediator cache appears as a
// no-cache client tier.
func (s *Suite) XHier() (*Table, error) {
	reqs, err := s.requests("edr", federation.Columns)
	if err != nil {
		return nil, err
	}
	objs, dbBytes, err := s.objects("edr", federation.Columns)
	if err != nil {
		return nil, err
	}
	medCap := int64(s.CachePct * float64(dbBytes))
	episodes := core.EpisodeConfig{K: 60}
	mkRP := func(c int64) core.Policy {
		return core.NewRateProfile(core.RateProfileConfig{Capacity: c, Episodes: episodes})
	}

	t := &Table{
		ID:    "xhier",
		Title: "Cache hierarchies: client tier in front of the mediator (EDR, columns)",
		Columns: []string{"configuration", "total-cost(GB)", "client-link(GB)",
			"server-link(GB)", "client-hits", "mediator-hits"},
	}
	configs := []struct {
		name     string
		policies []core.Policy
	}{
		{"no caching", []core.Policy{core.NewNoCache(), core.NewNoCache()}},
		{"mediator only (paper)", []core.Policy{core.NewNoCache(), mkRP(medCap)}},
		{"client 10% + mediator", []core.Policy{mkRP(dbBytes / 10), mkRP(medCap)}},
		{"client 20% + mediator", []core.Policy{mkRP(dbBytes / 5), mkRP(medCap)}},
	}
	for _, cfg := range configs {
		h, err := hierarchy.New(hierarchy.Config{
			Policies:    cfg.policies,
			LinkWeights: []float64{1, 1},
			Objects:     objs,
		})
		if err != nil {
			return nil, err
		}
		res, err := h.Run(reqs)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			cfg.name,
			fmt.Sprintf("%.2f", res.Cost/1e9),
			gbf(res.LinkBytes[0]),
			gbf(res.LinkBytes[1]),
			fmt.Sprintf("%d", res.TierAccts[0].Hits),
			fmt.Sprintf("%d", res.TierAccts[1].Hits),
		)
	}
	t.AddNote("links weighted 1:1 (client↔mediator, mediator↔servers); mediator cache = %.0f%% of DB", s.CachePct*100)
	t.AddNote("paper future work: \"we do not consider hierarchies of caches\"; a client tier saves the client link on its hits")
	return t, nil
}

// costBlind wraps a policy so it sees every object with a uniform
// fetch cost (FetchCost = Size) while the simulator still accounts
// real, per-site transfer costs — the ablation isolating what the
// BYHR cost term buys on non-uniform networks.
type costBlind struct {
	core.Policy
}

func (c costBlind) Name() string { return c.Policy.Name() + "-cost-blind" }

func (c costBlind) Access(t int64, obj core.Object, yield int64) core.Decision {
	obj.FetchCost = obj.Size
	return c.Policy.Access(t, obj, yield)
}

// XNet evaluates the BYHR generalization on a non-uniform network:
// the spectroscopic site is 3× as expensive per byte and the metadata
// site 2×. Cost-aware policies (BYHR semantics) are compared with
// cost-blind variants (BYU semantics) under true-cost accounting.
func (s *Suite) XNet() (*Table, error) {
	reqs, err := s.requests("edr", federation.Columns)
	if err != nil {
		return nil, err
	}
	p, err := s.profile("edr")
	if err != nil {
		return nil, err
	}
	dbBytes := p.Schema.TotalBytes()
	capacity := int64(s.CachePct * float64(dbBytes))

	nm := &netcost.Model{PerSite: map[string]float64{
		"spec.sdss.org": 3,
		"meta.sdss.org": 2,
	}}
	objs := federation.Objects(p.Schema, federation.Columns, nm)

	t := &Table{
		ID:      "xnet",
		Title:   "Non-uniform network (spec 3x, meta 2x): BYHR vs cost-blind BYU",
		Columns: []string{"policy", "WAN-cost(GB)", "bypass(GB)", "fetch(GB)"},
	}
	episodes := core.EpisodeConfig{K: 60}
	mk := []struct {
		name string
		p    core.Policy
	}{
		{"rate-profile (BYHR)", core.NewRateProfile(core.RateProfileConfig{Capacity: capacity, Episodes: episodes})},
		{"rate-profile (cost-blind)", costBlind{core.NewRateProfile(core.RateProfileConfig{Capacity: capacity, Episodes: episodes})}},
		{"online-by (BYHR)", core.NewOnlineBY(core.NewLandlord(capacity))},
		{"online-by (cost-blind)", costBlind{core.NewOnlineBY(core.NewLandlord(capacity))}},
		{"gds", core.NewGDS(capacity)},
		{"no-cache", core.NewNoCache()},
	}
	for _, m := range mk {
		res, err := s.simulate(m.p, reqs, objs, 0)
		if err != nil {
			return nil, err
		}
		t.AddRow(m.name, gbf(res.Acct.WANBytes()), gbf(res.Acct.BypassBytes), gbf(res.Acct.FetchBytes))
	}
	t.AddNote("cache = %.0f%% of DB; costs are per-byte-scaled by site (BYHR's f_i/s_i term)", s.CachePct*100)
	t.AddNote("cost-awareness moves the bypass/fetch balance rather than uniformly winning: the BYHR-aware Rate-Profile holds a higher bar against loading expensive-site objects (less fetch, more bypass); on workloads where those loads would have paid off the blind variant can come out ahead")
	return t, nil
}

// XComp empirically probes OnlineBY's competitive behaviour: over
// random traces with adversarially mixed object sizes, its cost is
// compared against the static-optimal offline plan. The theory
// (Theorem 5.1 with a k-competitive A_obj) bounds the ratio to the
// true offline optimum; static-optimal is a (weaker) stand-in, so the
// observed ratios are upper estimates.
func (s *Suite) XComp() (*Table, error) {
	t := &Table{
		ID:      "xcomp",
		Title:   "Empirical competitive ratios vs offline stand-ins (random traces)",
		Columns: []string{"trace-family", "policy", "max-ratio", "mean-ratio"},
	}
	families := []struct {
		name     string
		maxYield float64
	}{
		{"partial yields (y ≤ s/4)", 0.25},
		{"full-object yields", 1.0},
		{"oversubscribed (y ≤ 2s)", 2.0},
	}
	mkPolicies := func(capacity int64) []core.Policy {
		return []core.Policy{
			core.NewOnlineBY(core.NewLandlord(capacity)),
			core.NewOnlineBY(core.NewSizeClassMarking(capacity)),
			core.NewSpaceEffBY(core.NewLandlord(capacity), rand.NewSource(3)),
		}
	}
	const trials = 12
	for _, fam := range families {
		type agg struct {
			max, sum float64
			n        int
		}
		ratios := map[string]*agg{}
		order := []string{}
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			objs := map[core.ObjectID]core.Object{}
			var list []core.Object
			for i := 0; i < 10; i++ {
				size := int64(1<<uint(10+rng.Intn(8))) + int64(rng.Intn(512))
				o := core.Object{
					ID:        core.ObjectID(fmt.Sprintf("o%d", i)),
					Size:      size,
					FetchCost: size,
				}
				objs[o.ID] = o
				list = append(list, o)
			}
			var reqs []core.Request
			for q := int64(1); q <= 3000; q++ {
				o := list[rng.Intn(len(list))]
				y := int64(rng.Float64() * fam.maxYield * float64(o.Size))
				reqs = append(reqs, core.Request{Seq: q, Accesses: []core.Access{{Object: o.ID, Yield: y}}})
			}
			capacity := int64(200 << 10)
			staticRes, err := s.simulate(core.PlanStatic(capacity, reqs, objs), reqs, objs, 0)
			if err != nil {
				return nil, err
			}
			// The offline stand-in is the better of the static plan
			// and the clairvoyant lookahead heuristic.
			lookRes, err := s.simulate(core.NewLookahead(capacity, reqs, 0), reqs, objs, 0)
			if err != nil {
				return nil, err
			}
			opt := float64(staticRes.Acct.WANBytes())
			if v := float64(lookRes.Acct.WANBytes()); v > 0 && v < opt {
				opt = v
			}
			if opt <= 0 {
				continue
			}
			for _, p := range mkPolicies(capacity) {
				res, err := s.simulate(p, reqs, objs, 0)
				if err != nil {
					return nil, err
				}
				r := float64(res.Acct.WANBytes()) / opt
				key := p.Name()
				a := ratios[key]
				if a == nil {
					a = &agg{}
					ratios[key] = a
					order = append(order, key)
				}
				if r > a.max {
					a.max = r
				}
				a.sum += r
				a.n++
			}
		}
		for _, key := range order {
			a := ratios[key]
			t.AddRow(fam.name, key,
				fmt.Sprintf("%.2f", a.max),
				fmt.Sprintf("%.2f", a.sum/float64(a.n)))
		}
	}
	t.AddNote("%d random traces per family, 10 objects, 3000 queries, 200 KiB cache", trials)
	t.AddNote("Theorem 5.1: (4α+2)-competitive for an α-competitive A_obj; ratios here are vs min(static-optimal, clairvoyant lookahead), an upper estimate of the true ratio")
	return t, nil
}
