// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 6): the workload characterization
// scatter plots (Figures 4–6), the cumulative network-cost curves
// (Figures 7–8), the cache-size sweeps (Figures 9–10), and the cost
// breakdown tables (Tables 1–2). Each experiment produces a Table —
// rows of the same series the paper plots — renderable as aligned
// text or CSV.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: the rows behind a paper figure or
// table.
type Table struct {
	// ID is the experiment identifier ("fig7", "tab1", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Columns names the output columns.
	Columns []string
	// Rows holds the data, already formatted.
	Rows [][]string
	// Notes carries summary lines printed under the table.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a summary note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteMarkdown renders the table as a GitHub-flavoured Markdown
// table with the notes as a trailing list.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (notes become # comment rows).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// gbf formats bytes as decimal gigabytes.
func gbf(b int64) string { return fmt.Sprintf("%.2f", float64(b)/1e9) }
