package experiments

import (
	"fmt"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/federation"
)

// XAvail measures degraded-mode availability: the spectroscopic site
// goes dark for a fraction of the trace (spread over several outage
// windows) and the mediator applies the fault-tolerant decision rules
// — accesses to the dead site are forced to serve from cache when the
// object is resident (stale hits) and dropped otherwise (failed legs,
// charged nothing). A bypass-yield cache thus masks part of every
// outage; without a cache, all of the dead site's yield is lost.
func (s *Suite) XAvail() (*Table, error) {
	reqs, err := s.requests("edr", federation.Columns)
	if err != nil {
		return nil, err
	}
	objs, dbBytes, err := s.objects("edr", federation.Columns)
	if err != nil {
		return nil, err
	}
	capacity := int64(s.CachePct * float64(dbBytes))
	episodes := core.EpisodeConfig{K: 60}
	const downSite = catalog.SiteSpec
	const windows = 4

	t := &Table{
		ID:    "xavail",
		Title: fmt.Sprintf("Degraded-mode availability: %s dark for a fraction of the trace (EDR, columns)", downSite),
		Columns: []string{"outage%", "policy", "availability", "stale-served(GB)",
			"lost(GB)", "failed-legs", "WAN(GB)"},
	}
	n := int64(len(reqs))
	for _, downPct := range []int{0, 10, 25, 50} {
		// The outage total is split into `windows` evenly spaced blackouts
		// so the cache sees both cold and warmed outage entries.
		span := n * int64(downPct) / 100 / windows
		down := func(seq int64) bool {
			if span == 0 {
				return false
			}
			pos := seq % (n / windows)
			return pos < span
		}
		for _, ps := range []struct {
			name string
			p    core.Policy
		}{
			{"rate-profile", core.NewRateProfile(core.RateProfileConfig{Capacity: capacity, Episodes: episodes})},
			{"no-cache", core.NewNoCache()},
		} {
			var acct core.Accounting
			var requested, stale, lost, failedLegs int64
			for _, r := range reqs {
				acct.Queries++
				for _, a := range r.Accesses {
					obj, ok := objs[a.Object]
					if !ok {
						continue
					}
					requested += a.Yield
					// Mirror the mediator's degraded path: the policy is not
					// consulted while its site is dark.
					if down(r.Seq) && obj.Site == downSite {
						if ps.p.Contains(obj.ID) {
							if err := core.Account(&acct, obj, a.Yield, core.Hit); err != nil {
								return nil, err
							}
							stale += a.Yield
						} else {
							lost += a.Yield
							failedLegs++
						}
						continue
					}
					d := ps.p.Access(r.Seq, obj, a.Yield)
					if err := core.Account(&acct, obj, a.Yield, d); err != nil {
						return nil, err
					}
				}
			}
			t.AddRow(
				fmt.Sprintf("%d", downPct),
				ps.name,
				fmt.Sprintf("%.3f", rate(acct.DeliveredBytes(), requested)),
				gbf(stale),
				gbf(lost),
				fmt.Sprintf("%d", failedLegs),
				gbf(acct.WANBytes()),
			)
		}
	}
	t.AddNote("cache = %.0f%% of DB; outage split into %d evenly spaced windows; availability = delivered bytes / requested bytes", s.CachePct*100, windows)
	t.AddNote("forced stale hits charge D_C (the copy is local), failed legs charge nothing — Σ delivered = D_A exactly as in the live mediator's degraded mode")
	return t, nil
}
