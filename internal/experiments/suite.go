package experiments

import (
	"fmt"
	"math/rand"

	"bypassyield/internal/core"
	"bypassyield/internal/federation"
	"bypassyield/internal/obs"
	"bypassyield/internal/obs/ledger"
	"bypassyield/internal/trace"
	"bypassyield/internal/workload"
)

// Suite runs the paper's experiments over synthesized EDR and DR1
// traces. Traces are generated once per (release, granularity) and
// cached across experiments; all randomness is seeded, so a Suite is
// fully reproducible.
type Suite struct {
	// Scale divides trace length and sequence-cost targets for fast
	// runs; 1 reproduces the paper's full workload sizes.
	Scale int
	// CachePct is the cache size as a fraction of the database for
	// the fixed-size experiments (Figures 7–8, Tables 1–2). The paper
	// does not state the cache size used for those; we default to
	// 0.4, comfortably past the 20–30% effectiveness threshold its
	// cache-size sweep establishes (Figures 9–10 regenerate that
	// sweep).
	CachePct float64
	// Obs, when set, collects per-policy decision and byte-flow
	// counters from every simulation the suite runs. Nil (the
	// default) keeps simulation unobserved and allocation-free.
	Obs *obs.Registry
	// Ledger, when set, receives one DecisionRecord per simulated
	// access, across every simulation the suite runs. Simulations
	// share the ring; attach a ledger.Sink to separate or persist
	// them.
	Ledger *ledger.Ledger
	// Shadow, when true, runs the online counterfactual baselines
	// (always-bypass, LRU-K) alongside every simulation. Shadow
	// savings and competitive-ratio gauges publish through Obs when
	// both are set.
	Shadow bool

	traces map[string][]core.Request
	raw    map[string][]trace.Record
	seqs   map[string]int64
}

// NewSuite builds a suite at the given scale (≤ 1 means full scale).
func NewSuite(scale int) *Suite {
	if scale < 1 {
		scale = 1
	}
	return &Suite{
		Scale:    scale,
		CachePct: 0.4,
		traces:   make(map[string][]core.Request),
		raw:      make(map[string][]trace.Record),
		seqs:     make(map[string]int64),
	}
}

// IDs lists the experiment identifiers in paper order.
func IDs() []string {
	return []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "tab1", "tab2"}
}

// Run dispatches one experiment by id.
func (s *Suite) Run(id string) (*Table, error) {
	switch id {
	case "fig4":
		return s.Fig4()
	case "fig5":
		return s.Fig5()
	case "fig6":
		return s.Fig6()
	case "fig7":
		return s.Fig7()
	case "fig8":
		return s.Fig8()
	case "fig9":
		return s.Fig9()
	case "fig10":
		return s.Fig10()
	case "tab1":
		return s.Tab1()
	case "tab2":
		return s.Tab2()
	default:
		if t, ok, err := s.runExtension(id); ok {
			return t, err
		}
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v and extensions %v)",
			id, IDs(), ExtensionIDs())
	}
}

// profile returns the scaled workload profile for a release.
func (s *Suite) profile(release string) (workload.Profile, error) {
	var p workload.Profile
	switch release {
	case "edr":
		p = workload.EDRProfile()
	case "dr1":
		p = workload.DR1Profile()
	default:
		return p, fmt.Errorf("experiments: unknown release %q", release)
	}
	return workload.ScaledProfile(p, s.Scale), nil
}

// records returns the preprocessed trace records for a release at a
// granularity, generating and caching them on first use.
func (s *Suite) records(release string, g federation.Granularity) ([]trace.Record, error) {
	key := release + "/" + g.String()
	if recs, ok := s.raw[key]; ok {
		return recs, nil
	}
	p, err := s.profile(release)
	if err != nil {
		return nil, err
	}
	recs, err := workload.Generate(p, g)
	if err != nil {
		return nil, err
	}
	recs = trace.Preprocess(recs)
	s.raw[key] = recs
	s.seqs[key] = trace.SequenceCost(recs)
	return recs, nil
}

// requests returns simulator requests for a release/granularity.
func (s *Suite) requests(release string, g federation.Granularity) ([]core.Request, error) {
	key := release + "/" + g.String()
	if reqs, ok := s.traces[key]; ok {
		return reqs, nil
	}
	recs, err := s.records(release, g)
	if err != nil {
		return nil, err
	}
	reqs := trace.Requests(recs)
	s.traces[key] = reqs
	return reqs, nil
}

// objects returns the cacheable-object universe for a release.
func (s *Suite) objects(release string, g federation.Granularity) (map[core.ObjectID]core.Object, int64, error) {
	p, err := s.profile(release)
	if err != nil {
		return nil, 0, err
	}
	return federation.Objects(p.Schema, g, nil), p.Schema.TotalBytes(), nil
}

// policySet names the algorithms of the performance experiments.
type policySet struct {
	name string
	mk   func(capacity int64, reqs []core.Request, objs map[core.ObjectID]core.Object) core.Policy
}

// bypassYieldPolicies are the paper's three algorithms.
//
// Rate-Profile runs with episode idle horizon k = 60 rather than the
// paper's 1000: k must sit below the workload's burst cadence to
// separate episodes (the paper notes its parameters "have not been
// tuned carefully" and that results are robust to parameterization;
// its k = 1000 reflects its own trace's gaps). examples/policylab
// ablates k.
func bypassYieldPolicies() []policySet {
	episodes := core.EpisodeConfig{K: 60}
	return []policySet{
		{"Rate-Profile", func(c int64, _ []core.Request, _ map[core.ObjectID]core.Object) core.Policy {
			return core.NewRateProfile(core.RateProfileConfig{Capacity: c, Episodes: episodes})
		}},
		{"OnlineBY", func(c int64, _ []core.Request, _ map[core.ObjectID]core.Object) core.Policy {
			return core.NewOnlineBY(core.NewLandlord(c))
		}},
		{"SpaceEffBY", func(c int64, _ []core.Request, _ map[core.ObjectID]core.Object) core.Policy {
			return core.NewSpaceEffBY(core.NewLandlord(c), rand.NewSource(42))
		}},
	}
}

// comparatorPolicies are GDS (in-line) and static-optimal caching.
func comparatorPolicies() []policySet {
	return []policySet{
		{"GDS", func(c int64, _ []core.Request, _ map[core.ObjectID]core.Object) core.Policy {
			return core.NewGDS(c)
		}},
		{"Static", func(c int64, reqs []core.Request, objs map[core.ObjectID]core.Object) core.Policy {
			return core.PlanStatic(c, reqs, objs)
		}},
	}
}

// simulate runs one policy over a trace, recording into the suite's
// registry when one is attached.
func (s *Suite) simulate(p core.Policy, reqs []core.Request, objs map[core.ObjectID]core.Object, stride int64) (*core.Result, error) {
	sim := &core.Simulator{
		Policy: p, Objects: objs, CurveStride: stride,
		Telemetry: core.NewTelemetry(s.Obs),
		Ledger:    s.Ledger,
	}
	if s.Shadow {
		sim.Shadows = core.NewShadowSet(p.Capacity())
	}
	return sim.Run(reqs)
}
