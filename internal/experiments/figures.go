package experiments

import (
	"fmt"
	"sort"

	"bypassyield/internal/core"
	"bypassyield/internal/federation"
	"bypassyield/internal/workload"
)

// Fig4 reproduces Figure 4: query containment over a window of
// identity queries. Points on the same horizontal line (repeated
// object id) would be hits in a semantic/query cache; the paper finds
// almost none.
func (s *Suite) Fig4() (*Table, error) {
	recs, err := s.records("edr", federation.Tables)
	if err != nil {
		return nil, err
	}
	rep := workload.QueryContainment(recs)
	t := &Table{
		ID:      "fig4",
		Title:   "Query containment: object-id reuse across identity queries (EDR)",
		Columns: []string{"identity-query#", "trace-seq", "object-id", "reused"},
	}
	window := 50
	if len(rep.Points) < window {
		window = len(rep.Points)
	}
	seen := map[int64]bool{}
	// Walk all points to keep reuse flags correct, print the first
	// window (the paper plots a 50-query window; larger windows are
	// similar).
	for i, pt := range rep.Points {
		reused := seen[pt.ObjectID]
		seen[pt.ObjectID] = true
		if i < window {
			t.AddRow(
				fmt.Sprintf("%d", i+1),
				fmt.Sprintf("%d", pt.Query),
				fmt.Sprintf("%d", pt.ObjectID),
				fmt.Sprintf("%v", reused),
			)
		}
	}
	t.AddNote("identity queries analyzed: %d; distinct object ids: %d; reuse rate: %.3f",
		len(rep.Points), rep.Distinct, rep.ReuseRate())
	t.AddNote("paper shape: few objects experience reuse over a large universe → query caching unattractive")
	return t, nil
}

// localityTable renders a locality scatter as per-item reuse bands:
// reference count and first/last query of each of the most-referenced
// items, plus coverage statistics.
func localityTable(id, title string, pts []workload.LocalityPoint) *Table {
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"item", "references", "first-query", "last-query", "span"},
	}
	type band struct {
		item        string
		refs        int
		first, last int64
	}
	byItem := map[string]*band{}
	for _, p := range pts {
		b := byItem[p.Item]
		if b == nil {
			b = &band{item: p.Item, first: p.Query, last: p.Query}
			byItem[p.Item] = b
		}
		b.refs++
		if p.Query < b.first {
			b.first = p.Query
		}
		if p.Query > b.last {
			b.last = p.Query
		}
	}
	bands := make([]*band, 0, len(byItem))
	for _, b := range byItem {
		bands = append(bands, b)
	}
	sort.Slice(bands, func(i, j int) bool {
		if bands[i].refs != bands[j].refs {
			return bands[i].refs > bands[j].refs
		}
		return bands[i].item < bands[j].item
	})
	limit := 25
	if len(bands) < limit {
		limit = len(bands)
	}
	for _, b := range bands[:limit] {
		t.AddRow(b.item,
			fmt.Sprintf("%d", b.refs),
			fmt.Sprintf("%d", b.first),
			fmt.Sprintf("%d", b.last),
			fmt.Sprintf("%d", b.last-b.first),
		)
	}
	sum := workload.SummarizeLocality(pts)
	t.AddNote("distinct items: %d; references: %d; items covering 90%% of references: %d (%.0f%%)",
		sum.Items, sum.References, sum.Top90, sum.Top90Frac*100)
	t.AddNote("paper shape: heavy, long-lasting reuse localized to a small fraction of items")
	return t
}

// Fig5 reproduces Figure 5: column locality over the EDR trace.
func (s *Suite) Fig5() (*Table, error) {
	recs, err := s.records("edr", federation.Columns)
	if err != nil {
		return nil, err
	}
	return localityTable("fig5", "Column locality (EDR)", workload.ColumnLocality(recs)), nil
}

// Fig6 reproduces Figure 6: table locality over the EDR trace.
func (s *Suite) Fig6() (*Table, error) {
	recs, err := s.records("edr", federation.Tables)
	if err != nil {
		return nil, err
	}
	return localityTable("fig6", "Table locality (EDR)", workload.TableLocality(recs)), nil
}

// curves runs the Figure 7/8 experiment: cumulative network cost over
// the query sequence for Rate-Profile, GDS, static caching, and no
// caching, at CachePct of the database.
func (s *Suite) curves(id, title, release string, g federation.Granularity) (*Table, error) {
	reqs, err := s.requests(release, g)
	if err != nil {
		return nil, err
	}
	objs, dbBytes, err := s.objects(release, g)
	if err != nil {
		return nil, err
	}
	capacity := int64(s.CachePct * float64(dbBytes))
	stride := int64(len(reqs) / 12)
	if stride < 1 {
		stride = 1
	}

	sets := append(bypassYieldPolicies()[:1:1], comparatorPolicies()...)
	sets = append(sets, policySet{"No-Cache", func(int64, []core.Request, map[core.ObjectID]core.Object) core.Policy {
		return core.NewNoCache()
	}})
	curvesByName := map[string][]int64{}
	order := make([]string, 0, len(sets))
	for _, ps := range sets {
		res, err := s.simulate(ps.mk(capacity, reqs, objs), reqs, objs, stride)
		if err != nil {
			return nil, err
		}
		curvesByName[ps.name] = res.Curve
		order = append(order, ps.name)
	}
	t := &Table{ID: id, Title: title, Columns: append([]string{"query#"}, gbCols(order)...)}
	n := len(curvesByName[order[0]])
	for i := 0; i < n; i++ {
		q := (int64(i) + 1) * stride
		if q > int64(len(reqs)) {
			q = int64(len(reqs))
		}
		row := []string{fmt.Sprintf("%d", q)}
		for _, name := range order {
			c := curvesByName[name]
			v := c[len(c)-1]
			if i < len(c) {
				v = c[i]
			}
			row = append(row, gbf(v))
		}
		t.AddRow(row...)
	}
	t.AddNote("cache = %.0f%% of DB (%s); sequence cost = %s GB",
		s.CachePct*100, g, gbf(s.seqs[release+"/"+g.String()]))
	t.AddNote("paper shape: bypass-yield ≈ static caching, 5-10x below GDS and no-cache")
	return t, nil
}

func gbCols(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = n + "(GB)"
	}
	return out
}

// Fig7 reproduces Figure 7: network cost curves for table caching.
func (s *Suite) Fig7() (*Table, error) {
	return s.curves("fig7", "Cumulative network cost, table caching (EDR)", "edr", federation.Tables)
}

// Fig8 reproduces Figure 8: network cost curves for column caching.
func (s *Suite) Fig8() (*Table, error) {
	return s.curves("fig8", "Cumulative network cost, column caching (EDR)", "edr", federation.Columns)
}

// sweep runs the Figure 9/10 experiment: total cost vs cache size
// from 10% to 100% of the database for all five algorithms.
func (s *Suite) sweep(id, title string, g federation.Granularity) (*Table, error) {
	reqs, err := s.requests("edr", g)
	if err != nil {
		return nil, err
	}
	objs, dbBytes, err := s.objects("edr", g)
	if err != nil {
		return nil, err
	}
	sets := append(bypassYieldPolicies(), comparatorPolicies()...)
	names := make([]string, len(sets))
	for i, ps := range sets {
		names[i] = ps.name
	}
	t := &Table{ID: id, Title: title, Columns: append([]string{"cache%"}, gbCols(names)...)}
	for pct := 10; pct <= 100; pct += 10 {
		capacity := dbBytes * int64(pct) / 100
		row := []string{fmt.Sprintf("%d", pct)}
		for _, ps := range sets {
			res, err := s.simulate(ps.mk(capacity, reqs, objs), reqs, objs, 0)
			if err != nil {
				return nil, err
			}
			row = append(row, gbf(res.Acct.WANBytes()))
		}
		t.AddRow(row...)
	}
	t.AddNote("granularity = %s; sequence cost = %s GB", g, gbf(s.seqs["edr/"+g.String()]))
	t.AddNote("paper shape: Rate-Profile poor at very small caches; bypass caches effective from ~20-30%% of DB; GDS flat and high")
	return t, nil
}

// Fig9 reproduces Figure 9: cost vs cache size, table caching.
func (s *Suite) Fig9() (*Table, error) {
	return s.sweep("fig9", "Total cost vs cache size, table caching (EDR)", federation.Tables)
}

// Fig10 reproduces Figure 10: cost vs cache size, column caching.
func (s *Suite) Fig10() (*Table, error) {
	return s.sweep("fig10", "Total cost vs cache size, column caching (EDR)", federation.Columns)
}

// breakdown runs the Table 1/2 experiment: bypass/fetch/total cost for
// the three bypass-yield algorithms over both releases.
func (s *Suite) breakdown(id, title string, g federation.Granularity) (*Table, error) {
	t := &Table{
		ID:    id,
		Title: title,
		Columns: []string{"data-set", "release", "queries", "seq-cost(GB)",
			"algorithm", "bypass(GB)", "fetch(GB)", "total(GB)"},
	}
	for i, release := range []string{"edr", "dr1"} {
		reqs, err := s.requests(release, g)
		if err != nil {
			return nil, err
		}
		objs, dbBytes, err := s.objects(release, g)
		if err != nil {
			return nil, err
		}
		capacity := int64(s.CachePct * float64(dbBytes))
		for _, ps := range bypassYieldPolicies() {
			res, err := s.simulate(ps.mk(capacity, reqs, objs), reqs, objs, 0)
			if err != nil {
				return nil, err
			}
			t.AddRow(
				fmt.Sprintf("Set %d", i+1),
				release,
				fmt.Sprintf("%d", len(reqs)),
				gbf(s.seqs[release+"/"+g.String()]),
				ps.name,
				gbf(res.Acct.BypassBytes),
				gbf(res.Acct.FetchBytes),
				gbf(res.Acct.WANBytes()),
			)
		}
	}
	t.AddNote("cache = %.0f%% of DB; granularity = %s", s.CachePct*100, g)
	t.AddNote("paper shape: Rate-Profile ≤ OnlineBY ≤ SpaceEffBY; totals 5-15x below sequence cost")
	return t, nil
}

// Tab1 reproduces Table 1: cost breakdown for column caching.
func (s *Suite) Tab1() (*Table, error) {
	return s.breakdown("tab1", "Cost breakdown, column caching (EDR & DR1)", federation.Columns)
}

// Tab2 reproduces Table 2: cost breakdown for table caching.
func (s *Suite) Tab2() (*Table, error) {
	return s.breakdown("tab2", "Cost breakdown, table caching (EDR & DR1)", federation.Tables)
}
