package persist

// On-disk encodings. Two file kinds live in the state directory:
//
//	snap-<clock>.bys   one checksummed snapshot frame (atomic rename)
//	wal-<clock>.byw    magic + append-only CRC-framed journal records
//
// The snapshot frame is
//
//	[8-byte magic "BYSNAP1\n"][u32 LE payload len][u32 LE CRC-32C][payload]
//
// and each WAL record is
//
//	[u32 LE payload len][u32 LE CRC-32C][payload]
//
// after the file's 8-byte magic "BYWAL1\n\x00". Payloads use the same
// compact primitives as the core policy blobs: varint integers and
// length-prefixed strings, with a leading version byte so future
// encodings are detected rather than misread. All decoders are
// strict: truncated, oversized, or checksum-failing input is reported
// as invalid (snapshots) or a torn tail (WAL records) — never a panic
// and never a partial application (the fuzz targets drive arbitrary
// bytes through both).

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"bypassyield/internal/core"
	"bypassyield/internal/federation"
)

const (
	snapMagic = "BYSNAP1\n"
	walMagic  = "BYWAL1\n\x00"

	// snapVersion 2 added per-decision-partition sections (clock,
	// accounting, policy blob per shard); version-1 snapshots decode
	// into the single-section form and restore through the mediator's
	// rehash path. recVersion 2 added the owning partition's clock
	// (ShardT); version-1 records decode with ShardT = T, which is
	// exact for the single-partition plane that wrote them.
	snapVersion = 2
	recVersion  = 2

	// maxWALRecord bounds one journal record's payload; anything
	// larger is corruption, not data.
	maxWALRecord = 1 << 20
	// maxSnapshotPayload bounds a snapshot payload (the policy blob
	// dominates; even a fully populated cache is far below this).
	maxSnapshotPayload = 1 << 30
)

// castagnoli is the CRC-32C table used for every frame checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcSum checksums one frame payload.
func crcSum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// enc builds a payload.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) i64(v int64)  { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) str(s string) { e.u64(uint64(len(s))); e.b = append(e.b, s...) }
func (e *enc) bytes(p []byte) {
	e.u64(uint64(len(p)))
	e.b = append(e.b, p...)
}

// dec consumes a payload with error latching.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail("persist: truncated payload (u8)")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("persist: truncated payload (varint)")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("persist: truncated payload (uvarint)")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail("persist: string length %d exceeds remaining %d bytes", n, len(d.b))
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) bytes() []byte {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail("persist: blob length %d exceeds remaining %d bytes", n, len(d.b))
		return nil
	}
	p := d.b[:n]
	d.b = d.b[n:]
	return p
}

func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("persist: %d trailing bytes in payload", len(d.b))
	}
	return nil
}

// maxSnapshotShards bounds the per-partition section count; anything
// larger is corruption, not data.
const maxSnapshotShards = 1 << 16

// encodeAcct serializes one accounting block.
func (e *enc) acct(a core.Accounting) {
	e.i64(a.Queries)
	e.i64(a.Accesses)
	e.i64(a.Hits)
	e.i64(a.Bypasses)
	e.i64(a.Loads)
	e.i64(a.Evictions)
	e.i64(a.BypassBytes)
	e.i64(a.FetchBytes)
	e.i64(a.CacheBytes)
	e.i64(a.YieldBytes)
}

// decodeAcct parses one accounting block.
func (d *dec) acct() core.Accounting {
	return core.Accounting{
		Queries:     d.i64(),
		Accesses:    d.i64(),
		Hits:        d.i64(),
		Bypasses:    d.i64(),
		Loads:       d.i64(),
		Evictions:   d.i64(),
		BypassBytes: d.i64(),
		FetchBytes:  d.i64(),
		CacheBytes:  d.i64(),
		YieldBytes:  d.i64(),
	}
}

// encodeSnapshot serializes a mediator State (plus the wall-clock
// creation time) into a snapshot payload: the global header followed
// by one section per decision partition.
func encodeSnapshot(st federation.State, createdUnix int64) []byte {
	var e enc
	e.u8(snapVersion)
	e.i64(createdUnix)
	e.i64(st.Clock)
	e.str(st.Schema)
	e.u8(uint8(st.Granularity))
	e.str(st.PolicyName)
	e.i64(st.Capacity)
	e.acct(st.Acct)
	sections := st.Shards
	if sections == nil {
		sections = []federation.ShardState{{Clock: st.Clock, Acct: st.Acct, PolicyBlob: st.PolicyBlob}}
	}
	e.u64(uint64(len(sections)))
	for _, sec := range sections {
		e.i64(sec.Clock)
		e.acct(sec.Acct)
		e.bytes(sec.PolicyBlob)
	}
	return e.b
}

// decodeSnapshot parses a snapshot payload, either version: a
// version-1 payload decodes into the single-section legacy form
// (Shards nil, PolicyBlob set) that RestoreState lifts into one
// implicit section. It validates structure only; semantic guards
// (schema, policy, capacity) belong to Mediator.RestoreState.
func decodeSnapshot(payload []byte) (federation.State, int64, error) {
	d := dec{b: payload}
	v := d.u8()
	if d.err == nil && v != 1 && v != snapVersion {
		return federation.State{}, 0, fmt.Errorf("persist: snapshot version %d, want 1 or %d", v, snapVersion)
	}
	created := d.i64()
	var st federation.State
	st.Clock = d.i64()
	st.Schema = d.str()
	st.Granularity = federation.Granularity(d.u8())
	st.PolicyName = d.str()
	st.Capacity = d.i64()
	st.Acct = d.acct()
	if v == 1 {
		if blob := d.bytes(); len(blob) > 0 {
			st.PolicyBlob = append([]byte(nil), blob...)
		}
	} else {
		n := d.u64()
		if d.err == nil && n > maxSnapshotShards {
			return federation.State{}, 0, fmt.Errorf("persist: snapshot carries %d shard sections", n)
		}
		if d.err == nil {
			st.Shards = make([]federation.ShardState, 0, n)
			for i := uint64(0); i < n && d.err == nil; i++ {
				sec := federation.ShardState{Clock: d.i64(), Acct: d.acct()}
				if blob := d.bytes(); len(blob) > 0 {
					sec.PolicyBlob = append([]byte(nil), blob...)
				}
				st.Shards = append(st.Shards, sec)
			}
		}
	}
	if err := d.done(); err != nil {
		return federation.State{}, 0, err
	}
	return st, created, nil
}

// decodeSnapshotFrame parses a whole snapshot file: magic, length,
// checksum, payload.
func decodeSnapshotFrame(data []byte) (federation.State, int64, error) {
	if len(data) < len(snapMagic)+8 {
		return federation.State{}, 0, fmt.Errorf("persist: snapshot file too short (%d bytes)", len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return federation.State{}, 0, fmt.Errorf("persist: bad snapshot magic")
	}
	rest := data[len(snapMagic):]
	n := binary.LittleEndian.Uint32(rest[0:4])
	sum := binary.LittleEndian.Uint32(rest[4:8])
	if n > maxSnapshotPayload || uint64(n) != uint64(len(rest)-8) {
		return federation.State{}, 0, fmt.Errorf("persist: snapshot payload length %d, file carries %d", n, len(rest)-8)
	}
	payload := rest[8:]
	if crc32.Checksum(payload, castagnoli) != sum {
		return federation.State{}, 0, fmt.Errorf("persist: snapshot checksum mismatch")
	}
	return decodeSnapshot(payload)
}

// encodeSnapshotFrame builds the full snapshot file contents.
func encodeSnapshotFrame(st federation.State, createdUnix int64) []byte {
	payload := encodeSnapshot(st, createdUnix)
	out := make([]byte, 0, len(snapMagic)+8+len(payload))
	out = append(out, snapMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	return append(out, payload...)
}

// encodeRecord serializes one journal record payload.
func encodeRecord(rec federation.JournalRecord) []byte {
	var e enc
	e.u8(recVersion)
	e.u8(uint8(rec.Kind))
	e.i64(rec.T)
	e.i64(rec.ShardT)
	e.u8(uint8(rec.Decision))
	e.str(string(rec.Object))
	e.i64(rec.Yield)
	return e.b
}

// decodeRecord parses one journal record payload, either version. A
// version-1 record (written by the single-partition plane) decodes
// with ShardT = T, which was its partition clock.
func decodeRecord(payload []byte) (federation.JournalRecord, error) {
	d := dec{b: payload}
	v := d.u8()
	if d.err == nil && v != 1 && v != recVersion {
		return federation.JournalRecord{}, fmt.Errorf("persist: wal record version %d, want 1 or %d", v, recVersion)
	}
	rec := federation.JournalRecord{
		Kind: federation.JournalKind(d.u8()),
		T:    d.i64(),
	}
	if v == 1 {
		rec.ShardT = rec.T
	} else {
		rec.ShardT = d.i64()
	}
	rec.Decision = core.Decision(d.u8())
	rec.Object = core.ObjectID(d.str())
	rec.Yield = d.i64()
	if err := d.done(); err != nil {
		return federation.JournalRecord{}, err
	}
	switch rec.Kind {
	case federation.JournalAccess, federation.JournalForced, federation.JournalFailed:
	default:
		return federation.JournalRecord{}, fmt.Errorf("persist: unknown wal record kind %d", rec.Kind)
	}
	if rec.T < 0 || rec.ShardT < 0 || rec.Yield < 0 || rec.Yield > math.MaxInt64/2 {
		return federation.JournalRecord{}, fmt.Errorf("persist: wal record out of range (t=%d shardT=%d yield=%d)", rec.T, rec.ShardT, rec.Yield)
	}
	return rec, nil
}

// walkWAL iterates the records of a WAL image (everything after the
// file magic is CRC-framed records). It stops at the first torn or
// corrupt frame — the records before it are a consistent prefix —
// and reports how the tail ended. A missing or short magic means the
// file died during creation: zero records, torn. fn errors abort the
// walk and surface as err.
func walkWAL(data []byte, fn func(rec federation.JournalRecord) error) (n int, torn bool, tornDetail string, err error) {
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return 0, true, "missing wal magic (torn creation)", nil
	}
	b := data[len(walMagic):]
	for len(b) > 0 {
		if len(b) < 8 {
			return n, true, fmt.Sprintf("torn record header (%d trailing bytes)", len(b)), nil
		}
		plen := binary.LittleEndian.Uint32(b[0:4])
		sum := binary.LittleEndian.Uint32(b[4:8])
		if plen > maxWALRecord {
			return n, true, fmt.Sprintf("record length %d exceeds bound", plen), nil
		}
		if uint64(len(b)-8) < uint64(plen) {
			return n, true, fmt.Sprintf("torn record payload (%d of %d bytes)", len(b)-8, plen), nil
		}
		payload := b[8 : 8+plen]
		if crc32.Checksum(payload, castagnoli) != sum {
			return n, true, "record checksum mismatch", nil
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return n, true, derr.Error(), nil
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return n, false, "", err
			}
		}
		n++
		b = b[8+plen:]
	}
	return n, false, "", nil
}
