package persist

// Deterministic fault points inside the persistence writers, in the
// spirit of internal/faultnet's seeded network faults: the crash
// harness arms a named point with a countdown, and the Nth time the
// writer passes it the process flushes its buffered bytes and dies.
// That turns "SIGKILL mid-write" from a race the test hopes to win
// into a reproducible torn-tail scenario — the WAL ends exactly
// after a header, or mid-payload, or the snapshot temp file is left
// full-but-unrenamed.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
)

// Fault point names, placed at the torn-state boundaries the recovery
// path must tolerate.
const (
	// FaultWALAfterHeader crashes after a record's length+CRC header
	// reached the file but before any payload byte.
	FaultWALAfterHeader = "wal.append.after-header"
	// FaultWALMidRecord crashes with roughly half the record payload
	// written — a torn payload under the full header.
	FaultWALMidRecord = "wal.append.mid-record"
	// FaultWALPreSync crashes after the full record is written but
	// before the per-record fsync (-wal-sync) runs.
	FaultWALPreSync = "wal.append.pre-sync"
	// FaultSnapMidWrite crashes with half the snapshot frame in the
	// temp file.
	FaultSnapMidWrite = "snapshot.mid-write"
	// FaultSnapPreRename crashes with the temp file complete and
	// synced but never renamed into place.
	FaultSnapPreRename = "snapshot.pre-rename"
)

// faultExitCode is the crash harness's marker exit status.
const faultExitCode = 137

// FaultPoints arms deterministic crash points. The zero value and nil
// are both inert; Hit on an unarmed point costs one map lookup under
// a mutex (the persistence writers already serialize).
type FaultPoints struct {
	mu     sync.Mutex
	points map[string]int // remaining passes before firing

	// CrashFn replaces the default crash (os.Exit(137)) — tests that
	// cannot lose the process substitute a panic or a flag.
	CrashFn func(point string)
}

// ParseFaults parses a fault spec: comma-separated "point:after=N"
// clauses, e.g. "wal.append.mid-record:after=120". after=N fires on
// the Nth pass (N ≥ 1). An empty spec returns nil (disabled).
func ParseFaults(spec string) (*FaultPoints, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	known := map[string]bool{
		FaultWALAfterHeader: true,
		FaultWALMidRecord:   true,
		FaultWALPreSync:     true,
		FaultSnapMidWrite:   true,
		FaultSnapPreRename:  true,
	}
	f := &FaultPoints{points: make(map[string]int)}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		point, arg, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("persist: fault clause %q: want point:after=N", clause)
		}
		if !known[point] {
			return nil, fmt.Errorf("persist: unknown fault point %q", point)
		}
		val, ok := strings.CutPrefix(arg, "after=")
		if !ok {
			return nil, fmt.Errorf("persist: fault clause %q: want point:after=N", clause)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("persist: fault clause %q: after must be a positive integer", clause)
		}
		f.points[point] = n
	}
	return f, nil
}

// Hit passes the named point: an armed countdown decrements, and on
// reaching zero flush (if non-nil) pushes buffered bytes to the OS —
// so the torn state is really on disk — before the process crashes.
func (f *FaultPoints) Hit(point string, flush func()) {
	if f == nil {
		return
	}
	f.mu.Lock()
	n, armed := f.points[point]
	if armed {
		n--
		if n > 0 {
			f.points[point] = n
		} else {
			delete(f.points, point)
		}
	}
	f.mu.Unlock()
	if !armed || n > 0 {
		return
	}
	if flush != nil {
		flush()
	}
	if f.CrashFn != nil {
		f.CrashFn(point)
		return
	}
	fmt.Fprintf(os.Stderr, "persist: fault point %s fired, crashing\n", point)
	os.Exit(faultExitCode)
}
