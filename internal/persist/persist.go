// Package persist is byproxyd's crash-safe persistence layer: the
// proxy's learned state — cache policy decision state, flow
// accounting, the query clock — survives process death, so a restart
// warm-starts the federation instead of re-earning every caching
// decision over the WAN.
//
// Mechanism: periodic checksummed snapshots of the mediator's State
// (written to a temp file, fsynced, atomically renamed) plus an
// append-only write-ahead log of per-access journal records between
// snapshots, CRC-framed with torn-tail truncation on replay. The
// snapshot is captured under the mediator's decision lock at a
// consistent Σ decision yields = D_A boundary, and the WAL is rotated
// inside the same critical section, so snapshot + WAL always form an
// exact prefix of the access stream. Recovery takes the newest valid
// snapshot (falling back to the previous one when the newest is
// corrupt, and to a cold start when none decode), replays the WAL
// chain over it, truncating at the first torn or corrupt frame, and
// then writes a fresh post-recovery snapshot — the proxy never
// appends to a WAL that may itself have a torn tail.
//
// Metrics (in the shared obs registry, surfaced by byinspect):
//
//	persist.snapshots            counter: snapshots written
//	persist.snapshot_errors      counter: failed snapshot attempts
//	persist.snapshot_bytes       counter: snapshot bytes written
//	persist.last_snapshot_unix   gauge: wall clock of the last snapshot
//	persist.snapshot_clock       gauge: query clock of the last snapshot
//	persist.wal_records          counter: journal records appended
//	persist.wal_bytes            counter: WAL bytes appended
//	persist.wal_syncs            counter: per-record fsyncs (-wal-sync)
//	persist.wal_errors           counter: failed appends (degrades to
//	                             snapshot-only durability, never blocks
//	                             the decision path permanently)
//	persist.recovery_ms          gauge: startup recovery duration
//	persist.warm_start           gauge: 1 = state recovered, 0 = cold
//	persist.recovered_records    gauge: WAL records replayed at startup
//	persist.replay_divergence    counter: replayed decisions that
//	                             disagreed with the recorded ones
//	persist.wal_torn_tails       counter: torn/corrupt WAL tails truncated
//	persist.snapshot_fallbacks   counter: snapshots skipped as invalid
package persist

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bypassyield/internal/core"
	"bypassyield/internal/federation"
	"bypassyield/internal/obs"
)

// DefaultSnapshotInterval is the periodic snapshot cadence when the
// config leaves it zero.
const DefaultSnapshotInterval = 30 * time.Second

// keepSnapshots is how many snapshot generations survive GC: the
// newest plus one fallback (with their WALs).
const keepSnapshots = 2

const (
	snapSuffix = ".bys"
	walSuffix  = ".byw"
)

// Config parameterizes a Manager.
type Config struct {
	// Dir is the state directory (created if missing).
	Dir string
	// SnapshotInterval is the periodic snapshot cadence; zero selects
	// DefaultSnapshotInterval.
	SnapshotInterval time.Duration
	// SyncEveryRecord fsyncs the WAL after every record (-wal-sync):
	// an access is then durable before its query result reaches the
	// client, at the cost of one fsync per access.
	SyncEveryRecord bool
	// Obs, when non-nil, receives the persist.* metrics.
	Obs *obs.Registry
	// Logf logs recovery and degradation events (nil = silent).
	Logf func(format string, args ...any)
	// Faults arms deterministic crash points in the writers (tests
	// only; nil = disabled).
	Faults *FaultPoints
}

// RecoveryReport describes what Open recovered.
type RecoveryReport struct {
	// Warm reports whether any snapshot was restored (false = cold
	// start: nothing on disk, nothing valid, or configuration
	// mismatch).
	Warm bool
	// SnapshotClock is the restored snapshot's query clock.
	SnapshotClock int64
	// SnapshotPath is the restored snapshot file.
	SnapshotPath string
	// Fallbacks counts snapshots skipped as invalid before one
	// restored (0 = the newest was good).
	Fallbacks int
	// WALFiles counts WAL files replayed (possibly partially).
	WALFiles int
	// Replayed counts journal records reapplied.
	Replayed int
	// Diverged counts replayed decisions that disagreed with the
	// recorded ones (randomized policies only).
	Diverged int
	// TornTail reports a torn or corrupt WAL tail was truncated.
	TornTail bool
	// TornDetail explains the truncation.
	TornDetail string
	// ReplayError is a non-empty application error that stopped
	// replay early (unknown object after a schema change, ...); the
	// state recovered is the consistent prefix before it.
	ReplayError string
	// DurationMS is the wall time recovery took.
	DurationMS int64
	// Acct is the accounting after recovery.
	Acct core.Accounting
}

// String renders the report as one log line.
func (r RecoveryReport) String() string {
	if !r.Warm {
		return fmt.Sprintf("cold start (fallbacks=%d) in %dms", r.Fallbacks, r.DurationMS)
	}
	s := fmt.Sprintf("warm start from %s (clock=%d fallbacks=%d): replayed %d records from %d wal(s), diverged=%d",
		filepath.Base(r.SnapshotPath), r.SnapshotClock, r.Fallbacks, r.Replayed, r.WALFiles, r.Diverged)
	if r.TornTail {
		s += fmt.Sprintf(", torn tail truncated (%s)", r.TornDetail)
	}
	if r.ReplayError != "" {
		s += fmt.Sprintf(", replay stopped early (%s)", r.ReplayError)
	}
	s += fmt.Sprintf("; D_A=%d yield=%d queries=%d in %dms",
		r.Acct.DeliveredBytes(), r.Acct.YieldBytes, r.Acct.Queries, r.DurationMS)
	return s
}

// Manager owns the state directory for one mediator: it journals
// every access, snapshots periodically, and recovers on Open.
type Manager struct {
	cfg Config
	med *federation.Mediator

	// mu guards the WAL writer and serializes appends arriving from
	// different decision partitions. Lock order: a mediator partition
	// lock (or the all-partitions barrier) is always taken first
	// (appends arrive under a partition lock; rotation happens inside
	// SnapshotState's barrier) — nothing under mu ever calls back into
	// the mediator.
	mu           sync.Mutex
	wal          *walWriter
	closed       bool
	walErrLogged bool

	stop chan struct{}
	done chan struct{}

	recovery RecoveryReport

	mSnapshots  *obs.Counter
	mSnapErrors *obs.Counter
	mSnapBytes  *obs.Counter
	mWALRecords *obs.Counter
	mWALBytes   *obs.Counter
	mWALSyncs   *obs.Counter
	mWALErrors  *obs.Counter
	mTornTails  *obs.Counter
	mFallbacks  *obs.Counter
	mDivergence *obs.Counter

	gLastSnapUnix *obs.Gauge
	gSnapClock    *obs.Gauge
	gRecoveryMS   *obs.Gauge
	gWarmStart    *obs.Gauge
	gRecovered    *obs.Gauge
}

// Open recovers state from cfg.Dir into med, writes a fresh
// post-recovery snapshot, attaches the journal, and starts the
// periodic snapshot loop. Call before serving traffic. The returned
// manager's Recovery() reports what was restored.
func Open(cfg Config, med *federation.Mediator) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("persist: state directory is required")
	}
	if med == nil {
		return nil, fmt.Errorf("persist: mediator is required")
	}
	if cfg.SnapshotInterval <= 0 {
		cfg.SnapshotInterval = DefaultSnapshotInterval
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %v", err)
	}
	m := &Manager{cfg: cfg, med: med, stop: make(chan struct{}), done: make(chan struct{})}
	m.registerMetrics(cfg.Obs)

	start := time.Now()
	m.recover()
	m.recovery.DurationMS = time.Since(start).Milliseconds()
	m.gRecoveryMS.Set(m.recovery.DurationMS)
	if m.recovery.Warm {
		m.gWarmStart.Set(1)
	} else {
		m.gWarmStart.Set(0)
	}
	m.gRecovered.Set(int64(m.recovery.Replayed))
	m.mDivergence.Add(int64(m.recovery.Diverged))
	m.cfg.Logf("persist: %s", m.recovery)

	// Post-recovery boundary: a fresh snapshot and a fresh WAL. The
	// old chain (possibly torn) stays on disk only as GC'd history;
	// nothing is ever appended after a truncated tail.
	if err := m.snapshot(); err != nil {
		return nil, fmt.Errorf("persist: post-recovery snapshot: %v", err)
	}
	med.SetJournal(m)
	go m.loop()
	return m, nil
}

// Recovery returns what Open restored.
func (m *Manager) Recovery() RecoveryReport { return m.recovery }

// Close detaches the journal and flushes a final snapshot — the
// graceful-shutdown path: a SIGTERM drain ends with the complete
// state on disk, so the next start replays nothing.
func (m *Manager) Close() error {
	close(m.stop)
	<-m.done
	err := m.snapshot()
	m.med.SetJournal(nil)
	m.mu.Lock()
	m.closed = true
	if m.wal != nil {
		if werr := m.wal.close(); err == nil {
			err = werr
		}
		m.wal = nil
	}
	m.mu.Unlock()
	return err
}

func (m *Manager) registerMetrics(r *obs.Registry) {
	m.mSnapshots = r.Counter("persist.snapshots")
	m.mSnapErrors = r.Counter("persist.snapshot_errors")
	m.mSnapBytes = r.Counter("persist.snapshot_bytes")
	m.mWALRecords = r.Counter("persist.wal_records")
	m.mWALBytes = r.Counter("persist.wal_bytes")
	m.mWALSyncs = r.Counter("persist.wal_syncs")
	m.mWALErrors = r.Counter("persist.wal_errors")
	m.mTornTails = r.Counter("persist.wal_torn_tails")
	m.mFallbacks = r.Counter("persist.snapshot_fallbacks")
	m.mDivergence = r.Counter("persist.replay_divergence")
	m.gLastSnapUnix = r.Gauge("persist.last_snapshot_unix")
	m.gSnapClock = r.Gauge("persist.snapshot_clock")
	m.gRecoveryMS = r.Gauge("persist.recovery_ms")
	m.gWarmStart = r.Gauge("persist.warm_start")
	m.gRecovered = r.Gauge("persist.recovered_records")
}

// JournalAccess implements federation.Journal: append one record to
// the active WAL. Called under the owning decision partition's lock —
// with SyncEveryRecord the record is durable before the query result
// frame leaves the proxy. Append failures degrade to snapshot-only
// durability (counted, logged once) rather than failing queries.
func (m *Manager) JournalAccess(rec federation.JournalRecord) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.wal == nil || m.closed {
		return
	}
	n, synced, err := m.wal.append(rec, m.cfg.SyncEveryRecord, m.cfg.Faults)
	if err != nil {
		m.mWALErrors.Add(1)
		if !m.walErrLogged {
			m.walErrLogged = true
			m.cfg.Logf("persist: wal append failed (snapshot-only durability until recovery): %v", err)
		}
		return
	}
	m.mWALRecords.Add(1)
	m.mWALBytes.Add(int64(n))
	if synced {
		m.mWALSyncs.Add(1)
	}
}

func (m *Manager) loop() {
	defer close(m.done)
	t := time.NewTicker(m.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			if err := m.snapshot(); err != nil {
				m.cfg.Logf("persist: periodic snapshot: %v", err)
			}
		}
	}
}

// snapshot captures the mediator's state at a consistent boundary and
// makes it durable: WAL rotation happens inside the mediator's
// decision lock (the barrier), the frame write outside it.
func (m *Manager) snapshot() error {
	st, err := m.med.SnapshotState(func(st federation.State) error {
		return m.rotateWAL(st.Clock)
	})
	if err != nil {
		m.mSnapErrors.Add(1)
		return err
	}
	n, err := m.writeSnapshot(st)
	if err != nil {
		m.mSnapErrors.Add(1)
		return err
	}
	m.mSnapshots.Add(1)
	m.mSnapBytes.Add(int64(n))
	m.gLastSnapUnix.Set(time.Now().Unix())
	m.gSnapClock.Set(st.Clock)
	m.gc(st.Clock)
	return nil
}

// rotateWAL closes the active WAL and opens wal-<clock>. Runs inside
// the mediator's all-partitions barrier, so the rotation point is
// exactly the snapshot's consistency boundary on every partition.
func (m *Manager) rotateWAL(clock int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("persist: manager closed")
	}
	if m.wal != nil {
		if err := m.wal.close(); err != nil {
			m.cfg.Logf("persist: closing rotated wal: %v", err)
		}
		m.wal = nil
	}
	w, err := newWALWriter(filepath.Join(m.cfg.Dir, walName(clock)))
	if err != nil {
		return err
	}
	m.wal = w
	m.walErrLogged = false
	return nil
}

// writeSnapshot writes snap-<clock> atomically: temp file, fsync,
// rename, directory fsync.
func (m *Manager) writeSnapshot(st federation.State) (int, error) {
	frame := encodeSnapshotFrame(st, time.Now().Unix())
	final := filepath.Join(m.cfg.Dir, snapName(st.Clock))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	half := len(frame) / 2
	if _, err := f.Write(frame[:half]); err != nil {
		f.Close()
		return 0, err
	}
	m.cfg.Faults.Hit(FaultSnapMidWrite, func() { f.Sync() })
	if _, err := f.Write(frame[half:]); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	m.cfg.Faults.Hit(FaultSnapPreRename, nil)
	if err := os.Rename(tmp, final); err != nil {
		return 0, err
	}
	syncDir(m.cfg.Dir)
	return len(frame), nil
}

// recover restores the newest valid snapshot and replays its WAL
// chain. Invalid snapshots fall back to older ones; with none valid
// the mediator starts cold. Fills m.recovery.
func (m *Manager) recover() {
	rep := &m.recovery
	snaps := m.listClocks(snapSuffix)
	// Newest first: the most recent consistent boundary wins.
	for i := len(snaps) - 1; i >= 0; i-- {
		clock := snaps[i]
		path := filepath.Join(m.cfg.Dir, snapName(clock))
		data, err := os.ReadFile(path)
		var st federation.State
		if err == nil {
			st, _, err = decodeSnapshotFrame(data)
		}
		if err == nil {
			err = m.med.RestoreState(st)
		}
		if err != nil {
			m.cfg.Logf("persist: skipping snapshot %s: %v", filepath.Base(path), err)
			rep.Fallbacks++
			m.mFallbacks.Add(1)
			continue
		}
		rep.Warm = true
		rep.SnapshotClock = st.Clock
		rep.SnapshotPath = path
		m.replayChain(st.Clock, rep)
		rep.Acct = m.med.Accounting()
		return
	}
}

// replayChain replays, in ascending order, every WAL whose start
// clock is at or after the restored snapshot's clock. The chain stops
// at the first torn frame or application error: everything applied is
// a consistent prefix of the pre-crash access stream.
func (m *Manager) replayChain(snapClock int64, rep *RecoveryReport) {
	for _, clock := range m.listClocks(walSuffix) {
		if clock < snapClock {
			continue
		}
		path := filepath.Join(m.cfg.Dir, walName(clock))
		data, err := os.ReadFile(path)
		if err != nil {
			rep.ReplayError = err.Error()
			return
		}
		rep.WALFiles++
		n, torn, detail, err := walkWAL(data, func(rec federation.JournalRecord) error {
			// The mediator owns the skip rule (per-partition clocks
			// against the restored snapshot boundary, or the global
			// sequence across a partition-layout change): applied is
			// false for records already inside the snapshot.
			applied, diverged, err := m.med.ReplayJournal(rec)
			if err != nil {
				return err
			}
			if !applied {
				return nil
			}
			if diverged {
				rep.Diverged++
			}
			rep.Replayed++
			return nil
		})
		_ = n
		if err != nil {
			m.cfg.Logf("persist: replay of %s stopped: %v", filepath.Base(path), err)
			rep.ReplayError = err.Error()
			return
		}
		if torn {
			m.cfg.Logf("persist: %s: %s (truncating)", filepath.Base(path), detail)
			rep.TornTail = true
			rep.TornDetail = detail
			m.mTornTails.Add(1)
			return
		}
	}
}

// gc keeps the newest keepSnapshots snapshot generations (and the
// WALs covering them) and removes everything older, plus stray temp
// files from interrupted snapshot writes.
func (m *Manager) gc(currentClock int64) {
	snaps := m.listClocks(snapSuffix)
	if len(snaps) > keepSnapshots {
		oldest := snaps[len(snaps)-keepSnapshots]
		for _, clock := range snaps {
			if clock < oldest {
				os.Remove(filepath.Join(m.cfg.Dir, snapName(clock)))
			}
		}
		for _, clock := range m.listClocks(walSuffix) {
			if clock < oldest {
				os.Remove(filepath.Join(m.cfg.Dir, walName(clock)))
			}
		}
	}
	ents, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		return
	}
	for _, ent := range ents {
		name := ent.Name()
		if strings.HasSuffix(name, ".tmp") && name != snapName(currentClock)+".tmp" {
			os.Remove(filepath.Join(m.cfg.Dir, name))
		}
	}
}

// listClocks returns the clocks of all state files with the given
// suffix, ascending.
func (m *Manager) listClocks(suffix string) []int64 {
	ents, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		return nil
	}
	prefix := "snap-"
	if suffix == walSuffix {
		prefix = "wal-"
	}
	var clocks []int64
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
		clock, err := strconv.ParseInt(num, 10, 64)
		if err != nil || clock < 0 {
			continue
		}
		clocks = append(clocks, clock)
	}
	sort.Slice(clocks, func(i, j int) bool { return clocks[i] < clocks[j] })
	return clocks
}

func snapName(clock int64) string { return fmt.Sprintf("snap-%016d%s", clock, snapSuffix) }
func walName(clock int64) string  { return fmt.Sprintf("wal-%016d%s", clock, walSuffix) }

// syncDir fsyncs a directory so a rename survives power loss; errors
// are ignored (best effort — some filesystems refuse directory
// fsync).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// walWriter appends CRC-framed records to one WAL file.
type walWriter struct {
	f  *os.File
	bw *bufio.Writer
}

// newWALWriter creates (or truncates) a WAL file and writes its
// magic. Truncation is safe: rotation happens at a snapshot boundary,
// so a same-clock WAL can only be an empty leftover of the previous
// rotation at this clock.
func newWALWriter(path string) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.WriteString(walMagic); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{f: f, bw: bufio.NewWriterSize(f, 1<<15)}, nil
}

// append writes one framed record, threading the crash fault points;
// with sync the record is fsynced before returning.
func (w *walWriter) append(rec federation.JournalRecord, sync bool, faults *FaultPoints) (n int, synced bool, err error) {
	payload := encodeRecord(rec)
	var hdr [8]byte
	putU32 := func(b []byte, v uint32) {
		b[0] = byte(v)
		b[1] = byte(v >> 8)
		b[2] = byte(v >> 16)
		b[3] = byte(v >> 24)
	}
	putU32(hdr[0:4], uint32(len(payload)))
	putU32(hdr[4:8], crcSum(payload))
	flush := func() { w.bw.Flush() }
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return 0, false, err
	}
	faults.Hit(FaultWALAfterHeader, flush)
	half := len(payload) / 2
	if _, err := w.bw.Write(payload[:half]); err != nil {
		return 0, false, err
	}
	faults.Hit(FaultWALMidRecord, flush)
	if _, err := w.bw.Write(payload[half:]); err != nil {
		return 0, false, err
	}
	faults.Hit(FaultWALPreSync, flush)
	if err := w.bw.Flush(); err != nil {
		return 0, false, err
	}
	if sync {
		if err := w.f.Sync(); err != nil {
			return 0, false, err
		}
	}
	return 8 + len(payload), sync, nil
}

// close flushes, fsyncs, and closes the WAL file.
func (w *walWriter) close() error {
	err := w.bw.Flush()
	if serr := w.f.Sync(); err == nil {
		err = serr
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}
