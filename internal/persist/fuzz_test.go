package persist

import (
	"testing"
	"time"

	"bypassyield/internal/core"
	"bypassyield/internal/federation"
)

// fuzzPolicies are the stateful policies whose RestoreState decoders
// the snapshot fuzzer drives; every factory name with a blob codec.
var fuzzPolicies = []string{
	"rate-profile", "online-by", "online-by-marking", "space-eff-by",
	"lru", "lfu", "gds", "gdsp", "lru-k", "none",
}

// validWALImage builds a well-formed WAL file image carrying the given
// records — the fuzzer's structured seed.
func validWALImage(recs ...federation.JournalRecord) []byte {
	b := []byte(walMagic)
	for _, rec := range recs {
		payload := encodeRecord(rec)
		b = appendU32(b, uint32(len(payload)))
		b = appendU32(b, crcSum(payload))
		b = append(b, payload...)
	}
	return b
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// FuzzWALReplay feeds arbitrary bytes to the WAL walker: it must never
// panic, every record it yields must survive decodeRecord's range
// guards, and a torn tail must never also report records beyond the
// tear (prefix property).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(walMagic))
	f.Add([]byte("BYWAL1\n\x00garbage"))
	f.Add(validWALImage(
		federation.JournalRecord{Kind: federation.JournalAccess, T: 1, Object: "photo/photoobj", Yield: 4096, Decision: core.Load},
		federation.JournalRecord{Kind: federation.JournalForced, T: 2, Object: "spec/specobj", Yield: 128, Decision: core.Hit},
		federation.JournalRecord{Kind: federation.JournalFailed, T: 3, Object: "meta/frame", Yield: 0},
	))
	// A valid prefix with a torn header appended.
	torn := validWALImage(federation.JournalRecord{Kind: federation.JournalAccess, T: 9, Object: "x", Yield: 1, Decision: core.Bypass})
	f.Add(append(torn, 0xFF, 0x00, 0x00))
	// Header promising more payload than follows.
	f.Add(append(append([]byte(walMagic), 64, 0, 0, 0, 1, 2, 3, 4), []byte("short")...))

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []federation.JournalRecord
		n, tornTail, detail, err := walkWAL(data, func(rec federation.JournalRecord) error {
			recs = append(recs, rec)
			return nil
		})
		if err != nil {
			t.Fatalf("callback returned nil errors only, walkWAL err = %v", err)
		}
		if n != len(recs) {
			t.Fatalf("reported %d records, delivered %d", n, len(recs))
		}
		if tornTail && detail == "" {
			t.Fatal("torn tail without detail")
		}
		for i, rec := range recs {
			switch rec.Kind {
			case federation.JournalAccess, federation.JournalForced, federation.JournalFailed:
			default:
				t.Fatalf("record %d: invalid kind %d escaped decode", i, rec.Kind)
			}
			if rec.T < 0 || rec.Yield < 0 {
				t.Fatalf("record %d: out-of-range fields escaped decode: %+v", i, rec)
			}
		}
		// Round-trip: a delivered record must re-encode decodable.
		for _, rec := range recs {
			if _, err := decodeRecord(encodeRecord(rec)); err != nil {
				t.Fatalf("record %+v does not round-trip: %v", rec, err)
			}
		}
	})
}

// FuzzSnapshotDecode feeds arbitrary bytes through the snapshot frame
// decoder and then pushes any surviving policy blob into every policy
// decoder: corrupt input must error, never panic, and never leave a
// policy unusable.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(snapMagic))
	f.Add([]byte("BYSNAP1\ngarbage after magic"))
	// A genuine snapshot of a populated rate-profile cache.
	pol, err := core.NewPolicyByName("rate-profile", 1<<20, 1)
	if err != nil {
		f.Fatal(err)
	}
	objs := map[core.ObjectID]core.Object{}
	for i, id := range []core.ObjectID{"a", "b", "c", "d"} {
		o := core.Object{ID: id, Size: int64(1000 * (i + 1)), FetchCost: 1500 * int64(i+1), Site: "s"}
		objs[id] = o
		pol.Access(int64(i+1), o, o.Size/2)
	}
	blob := pol.(core.StateSnapshotter).SnapshotState()
	st := federation.State{
		Clock: 4, Schema: "edr", Granularity: federation.Tables,
		PolicyName: "rate-profile", Capacity: 1 << 20,
		Acct:       core.Accounting{Queries: 4, Accesses: 4, Loads: 4, FetchBytes: 10000, CacheBytes: 0, YieldBytes: 5000},
		PolicyBlob: blob,
	}
	frame := encodeSnapshotFrame(st, time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).Unix())
	f.Add(frame)
	// The same frame with a flipped payload byte (checksum must catch).
	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)-3] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		st, _, err := decodeSnapshotFrame(data)
		if err != nil {
			return
		}
		// Structurally valid frame: the accounting identity the ledger
		// relies on must still be checkable without overflow panics.
		_ = st.Acct.DeliveredBytes()
		// Any blob that decoded is fed to every policy decoder; each
		// must either accept it or reject it cleanly — and stay usable
		// either way.
		for _, name := range fuzzPolicies {
			p, err := core.NewPolicyByName(name, 1<<20, 2)
			if err != nil {
				t.Fatal(err)
			}
			ss, ok := p.(core.StateSnapshotter)
			if !ok {
				t.Fatalf("policy %s lost its StateSnapshotter", name)
			}
			_ = ss.RestoreState(st.PolicyBlob)
			o := core.Object{ID: "probe", Size: 100, FetchCost: 300, Site: "s"}
			if d := p.Access(1, o, 50); d < core.Hit || d > core.Load {
				t.Fatalf("policy %s returned invalid decision %d after restore attempt", name, d)
			}
		}
	})
}
