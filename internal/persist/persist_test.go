package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/federation"
	"bypassyield/internal/obs"
)

// newTestMediator builds a mediator over the EDR release with the
// named policy and its own registry.
func newTestMediator(t *testing.T, policy string, capacity int64) (*federation.Mediator, *obs.Registry) {
	t.Helper()
	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 20000})
	if err != nil {
		t.Fatal(err)
	}
	var pol core.Policy
	if policy != "" {
		pol, err = core.NewPolicyByName(policy, capacity, 1)
		if err != nil {
			t.Fatal(err)
		}
	}
	reg := obs.NewRegistry()
	med, err := federation.New(federation.Config{
		Schema: s, Engine: db, Policy: pol, Granularity: federation.Tables, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return med, reg
}

// driveQueries runs a deterministic mixed workload: single-site scans
// over both photo and spec plus the cross-site join, so all three EDR
// sites contribute accesses.
func driveQueries(t *testing.T, med *federation.Mediator, n int) {
	t.Helper()
	stmts := []string{
		"select ra, dec from photoobj where ra < 120",
		"select z, zConf from specobj where z < 0.4",
		"select p.objID, s.z from SpecObj s, PhotoObj p where p.ObjID = s.ObjID and s.z < 0.2",
		"select frameid, fieldid from frame where zoom < 5",
	}
	for i := 0; i < n; i++ {
		if _, err := med.Query(stmts[i%len(stmts)]); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
}

// checkInvariant asserts the byinspect reconciliation invariant on a
// uniform network: core.yield_bytes = Acct.YieldBytes = D_A.
func checkInvariant(t *testing.T, med *federation.Mediator, reg *obs.Registry) {
	t.Helper()
	acct := med.Accounting()
	counter := reg.Snapshot().CounterValue("core.yield_bytes", "")
	if counter != acct.YieldBytes {
		t.Fatalf("core.yield_bytes = %d, Acct.YieldBytes = %d", counter, acct.YieldBytes)
	}
	if acct.YieldBytes != acct.DeliveredBytes() {
		t.Fatalf("YieldBytes = %d, DeliveredBytes = %d (uniform net: must agree)", acct.YieldBytes, acct.DeliveredBytes())
	}
}

func testConfig(dir string, reg *obs.Registry) Config {
	return Config{
		Dir:              dir,
		SnapshotInterval: time.Hour, // tests snapshot explicitly
		SyncEveryRecord:  true,
		Obs:              reg,
		Logf:             func(string, ...any) {},
	}
}

func TestGracefulRestartRestoresEverything(t *testing.T) {
	dir := t.TempDir()
	capacity := catalog.EDR().TotalBytes() / 2

	med1, reg1 := newTestMediator(t, "rate-profile", capacity)
	m1, err := Open(testConfig(dir, reg1), med1)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Recovery().Warm {
		t.Fatal("first open of an empty dir must be a cold start")
	}
	driveQueries(t, med1, 40)
	want := med1.Accounting()
	wantStats, _ := med1.PolicyStats()
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	if want.Queries != 40 || want.YieldBytes == 0 {
		t.Fatalf("workload accounting implausible: %+v", want)
	}

	med2, reg2 := newTestMediator(t, "rate-profile", capacity)
	m2, err := Open(testConfig(dir, reg2), med2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	rep := m2.Recovery()
	if !rep.Warm {
		t.Fatalf("expected warm start, got %s", rep)
	}
	if rep.Replayed != 0 {
		t.Fatalf("graceful shutdown should leave nothing to replay, got %d records", rep.Replayed)
	}
	if got := med2.Accounting(); got != want {
		t.Fatalf("restored accounting %+v, want %+v", got, want)
	}
	if med2.Clock() != 40 {
		t.Fatalf("restored clock = %d, want 40", med2.Clock())
	}
	gotStats, _ := med2.PolicyStats()
	if gotStats.Used != wantStats.Used || len(gotStats.Contents) != len(wantStats.Contents) {
		t.Fatalf("restored cache %+v, want %+v", gotStats, wantStats)
	}
	checkInvariant(t, med2, reg2)
	snap := reg2.Snapshot()
	if snap.GaugeValue("persist.warm_start") != 1 {
		t.Fatal("persist.warm_start gauge not 1")
	}
	if snap.GaugeValue("persist.recovery_ms") < 0 {
		t.Fatal("persist.recovery_ms missing")
	}
}

func TestCrashRecoveryReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	capacity := catalog.EDR().TotalBytes() / 2

	med1, reg1 := newTestMediator(t, "rate-profile", capacity)
	if _, err := Open(testConfig(dir, reg1), med1); err != nil {
		t.Fatal(err)
	}
	driveQueries(t, med1, 30)
	want := med1.Accounting()
	// Crash: no Close, no final snapshot — everything past the Open
	// snapshot lives only in the synced WAL.

	med2, reg2 := newTestMediator(t, "rate-profile", capacity)
	m2, err := Open(testConfig(dir, reg2), med2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	rep := m2.Recovery()
	if !rep.Warm || rep.Replayed == 0 {
		t.Fatalf("expected warm start with WAL replay, got %s", rep)
	}
	if rep.Diverged != 0 {
		t.Fatalf("deterministic policy diverged %d times on replay", rep.Diverged)
	}
	if got := med2.Accounting(); got != want {
		t.Fatalf("recovered accounting %+v, want %+v", got, want)
	}
	checkInvariant(t, med2, reg2)
	// The recovered cache serves the same objects without re-fetching:
	// contents must match exactly.
	s1, _ := med1.PolicyStats()
	s2, _ := med2.PolicyStats()
	if s1.Used != s2.Used || len(s1.Contents) != len(s2.Contents) {
		t.Fatalf("recovered cache %+v, want %+v", s2, s1)
	}
}

func TestTornWALTailTruncated(t *testing.T) {
	dir := t.TempDir()
	capacity := catalog.EDR().TotalBytes() / 2

	med1, reg1 := newTestMediator(t, "online-by", capacity)
	if _, err := Open(testConfig(dir, reg1), med1); err != nil {
		t.Fatal(err)
	}
	driveQueries(t, med1, 25)
	want := med1.Accounting()

	// Tear the WAL tail: a record header promising 64 payload bytes,
	// followed by only 5 — exactly what a crash mid-write leaves.
	wals, err := filepath.Glob(filepath.Join(dir, "wal-*"))
	if err != nil || len(wals) == 0 {
		t.Fatalf("no wal files: %v", err)
	}
	f, err := os.OpenFile(wals[len(wals)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{64, 0, 0, 0, 0xAA, 0xBB, 0xCC, 0xDD, 1, 2, 3, 4, 5}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	med2, reg2 := newTestMediator(t, "online-by", capacity)
	m2, err := Open(testConfig(dir, reg2), med2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	rep := m2.Recovery()
	if !rep.Warm || !rep.TornTail {
		t.Fatalf("expected warm start with truncated torn tail, got %s", rep)
	}
	// Every complete record precedes the tear: nothing is lost.
	if got := med2.Accounting(); got != want {
		t.Fatalf("recovered accounting %+v, want %+v", got, want)
	}
	checkInvariant(t, med2, reg2)
	if reg2.Snapshot().CounterValue("persist.wal_torn_tails", "") != 1 {
		t.Fatal("persist.wal_torn_tails not counted")
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	capacity := catalog.EDR().TotalBytes() / 2

	// Two generations: snap@20 (first Close), snap@30 (second Close).
	med1, reg1 := newTestMediator(t, "rate-profile", capacity)
	m1, err := Open(testConfig(dir, reg1), med1)
	if err != nil {
		t.Fatal(err)
	}
	driveQueries(t, med1, 20)
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	med2, reg2 := newTestMediator(t, "rate-profile", capacity)
	m2, err := Open(testConfig(dir, reg2), med2)
	if err != nil {
		t.Fatal(err)
	}
	driveQueries(t, med2, 10)
	want := med2.Accounting()
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest snapshot's payload: its CRC must reject it
	// and recovery must fall back to the previous generation plus the
	// WAL records between the two boundaries.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*"))
	if len(snaps) < 2 {
		t.Fatalf("want 2 snapshot generations, have %v", snaps)
	}
	newest := snaps[len(snaps)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	med3, reg3 := newTestMediator(t, "rate-profile", capacity)
	m3, err := Open(testConfig(dir, reg3), med3)
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	rep := m3.Recovery()
	if !rep.Warm {
		t.Fatalf("expected warm start via fallback, got %s", rep)
	}
	if rep.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1 (%s)", rep.Fallbacks, rep)
	}
	if got := med3.Accounting(); got != want {
		t.Fatalf("fallback recovery %+v, want %+v", got, want)
	}
	checkInvariant(t, med3, reg3)
	if reg3.Snapshot().CounterValue("persist.snapshot_fallbacks", "") != 1 {
		t.Fatal("persist.snapshot_fallbacks not counted")
	}
}

func TestAllSnapshotsCorruptFallsBackCold(t *testing.T) {
	dir := t.TempDir()
	capacity := catalog.EDR().TotalBytes() / 2

	med1, reg1 := newTestMediator(t, "rate-profile", capacity)
	m1, err := Open(testConfig(dir, reg1), med1)
	if err != nil {
		t.Fatal(err)
	}
	driveQueries(t, med1, 10)
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*"))
	for _, s := range snaps {
		if err := os.WriteFile(s, []byte("not a snapshot at all"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	med2, reg2 := newTestMediator(t, "rate-profile", capacity)
	m2, err := Open(testConfig(dir, reg2), med2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Recovery().Warm {
		t.Fatal("corrupt snapshots must cold start, not adopt garbage")
	}
	// Cold but alive: the proxy still serves.
	driveQueries(t, med2, 3)
	checkInvariant(t, med2, reg2)
}

func TestPolicyChangeColdStarts(t *testing.T) {
	dir := t.TempDir()
	capacity := catalog.EDR().TotalBytes() / 2

	med1, reg1 := newTestMediator(t, "rate-profile", capacity)
	m1, err := Open(testConfig(dir, reg1), med1)
	if err != nil {
		t.Fatal(err)
	}
	driveQueries(t, med1, 10)
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	med2, reg2 := newTestMediator(t, "lru", capacity)
	m2, err := Open(testConfig(dir, reg2), med2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Recovery().Warm {
		t.Fatal("policy change must reject the snapshot and cold start")
	}
	driveQueries(t, med2, 3)
	checkInvariant(t, med2, reg2)
}

func TestGCKeepsTwoGenerations(t *testing.T) {
	dir := t.TempDir()
	capacity := catalog.EDR().TotalBytes() / 2
	med, reg := newTestMediator(t, "lru", capacity)
	m, err := Open(testConfig(dir, reg), med)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 5; i++ {
		driveQueries(t, med, 4)
		if err := m.snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*"))
	if len(snaps) > keepSnapshots {
		t.Fatalf("gc kept %d snapshots: %v", len(snaps), snaps)
	}
	wals, _ := filepath.Glob(filepath.Join(dir, "wal-*"))
	if len(wals) > keepSnapshots+1 {
		t.Fatalf("gc kept %d wals: %v", len(wals), wals)
	}
}

func TestFaultPointTornRecordRecovers(t *testing.T) {
	dir := t.TempDir()
	capacity := catalog.EDR().TotalBytes() / 2

	med1, reg1 := newTestMediator(t, "rate-profile", capacity)
	cfg := testConfig(dir, reg1)
	faults, err := ParseFaults(FaultWALMidRecord + ":after=12")
	if err != nil {
		t.Fatal(err)
	}
	type crashed struct{ point string }
	faults.CrashFn = func(point string) { panic(crashed{point}) }
	cfg.Faults = faults
	if _, err := Open(cfg, med1); err != nil {
		t.Fatal(err)
	}

	// Drive until the armed fault point kills the 12th append
	// mid-payload; the panic stands in for the process dying with the
	// half-written record flushed to disk.
	var acked core.Accounting
	func() {
		defer func() {
			r := recover()
			if c, ok := r.(crashed); !ok || c.point != FaultWALMidRecord {
				t.Fatalf("unexpected recover value %v", r)
			}
		}()
		for i := 0; i < 100; i++ {
			acked = med1.Accounting()
			driveQueries(t, med1, 1)
		}
		t.Fatal("fault point never fired")
	}()

	med2, reg2 := newTestMediator(t, "rate-profile", capacity)
	m2, err := Open(testConfig(dir, reg2), med2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	rep := m2.Recovery()
	if !rep.Warm || !rep.TornTail {
		t.Fatalf("expected warm start with torn tail, got %s", rep)
	}
	// Everything acknowledged before the crashed record survives.
	got := med2.Accounting()
	if got.YieldBytes < acked.YieldBytes || got.Queries < acked.Queries {
		t.Fatalf("recovered %+v behind acknowledged %+v", got, acked)
	}
	checkInvariant(t, med2, reg2)
}

func TestParseFaults(t *testing.T) {
	f, err := ParseFaults("wal.append.mid-record:after=3, snapshot.pre-rename:after=1")
	if err != nil || f == nil {
		t.Fatalf("ParseFaults: %v", err)
	}
	if f2, err := ParseFaults(""); err != nil || f2 != nil {
		t.Fatalf("empty spec: %v %v", f2, err)
	}
	for _, bad := range []string{"nope:after=1", "wal.append.mid-record", "wal.append.mid-record:after=0", "wal.append.mid-record:after=x"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
	var fired []string
	f3, _ := ParseFaults("wal.append.pre-sync:after=2")
	f3.CrashFn = func(p string) { fired = append(fired, p) }
	f3.Hit(FaultWALPreSync, nil)
	if len(fired) != 0 {
		t.Fatal("fired on first pass with after=2")
	}
	f3.Hit(FaultWALPreSync, nil)
	if len(fired) != 1 {
		t.Fatal("did not fire on second pass")
	}
	f3.Hit(FaultWALPreSync, nil)
	if len(fired) != 1 {
		t.Fatal("fired again after disarming")
	}
	var nilFaults *FaultPoints
	nilFaults.Hit(FaultWALPreSync, nil) // must be a no-op
}

func TestRecoveryReportString(t *testing.T) {
	r := RecoveryReport{Warm: true, SnapshotPath: "/x/snap-1.bys", SnapshotClock: 7, Replayed: 3, WALFiles: 1, TornTail: true, TornDetail: "torn record header (3 trailing bytes)"}
	s := r.String()
	for _, want := range []string{"warm start", "replayed 3", "torn tail"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
	if !strings.Contains(fmt.Sprint(RecoveryReport{}), "cold start") {
		t.Fatal("cold report")
	}
}
