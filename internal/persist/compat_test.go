package persist

// Snapshot format compatibility across the sharded decision plane.
// Two directions must keep working forever:
//
//   - backward: a version-1 snapshot (single-section, written by
//     builds before sharding) restores into a sharded mediator through
//     the rehash path, with accounting and cache contents intact;
//   - forward: version-2 sharded snapshots round-trip exactly at every
//     partition count, and survive a -decision-shards change between
//     runs (the cross-layout rehash).
//
// These run in `make crash` alongside the kill-recovery suite.

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/federation"
	"bypassyield/internal/obs"
)

// newShardedMediator builds a mediator with n decision partitions, one
// rate-profile policy instance per partition (capacity split exactly).
func newShardedMediator(t *testing.T, shards int, capacity int64) (*federation.Mediator, *obs.Registry) {
	t.Helper()
	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 20000})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	med, err := federation.New(federation.Config{
		Schema: s, Engine: db,
		NewPolicy: func(_ int, cap int64) (core.Policy, error) {
			return core.NewPolicyByName("rate-profile", cap, 1)
		},
		Capacity: capacity, Shards: shards,
		Granularity: federation.Tables, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return med, reg
}

// TestShardedSnapshotRoundTrip closes and reopens a sharded plane at
// several partition counts: the graceful-shutdown snapshot must
// restore every partition's section exactly — clock, accounting, and
// cache contents per shard, nothing to replay.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	capacity := catalog.EDR().TotalBytes() / 2
	for _, shards := range []int{1, 2, 8} {
		t.Run(shardName(shards), func(t *testing.T) {
			dir := t.TempDir()
			med1, reg1 := newShardedMediator(t, shards, capacity)
			m1, err := Open(testConfig(dir, reg1), med1)
			if err != nil {
				t.Fatal(err)
			}
			driveQueries(t, med1, 40)
			want := med1.Accounting()
			wantShards := med1.ShardAccountings()
			wantStats, _ := med1.PolicyStats()
			if err := m1.Close(); err != nil {
				t.Fatal(err)
			}

			med2, reg2 := newShardedMediator(t, shards, capacity)
			m2, err := Open(testConfig(dir, reg2), med2)
			if err != nil {
				t.Fatal(err)
			}
			defer m2.Close()
			rep := m2.Recovery()
			if !rep.Warm || rep.Fallbacks != 0 {
				t.Fatalf("expected clean warm start, got %s", rep)
			}
			if rep.Replayed != 0 {
				t.Fatalf("graceful round trip replayed %d records", rep.Replayed)
			}
			if got := med2.Accounting(); got != want {
				t.Fatalf("restored accounting %+v, want %+v", got, want)
			}
			gotShards := med2.ShardAccountings()
			if len(gotShards) != shards {
				t.Fatalf("%d restored shard sections, want %d", len(gotShards), shards)
			}
			for i := range gotShards {
				if gotShards[i] != wantShards[i] {
					t.Fatalf("shard %d restored %+v, want %+v", i, gotShards[i], wantShards[i])
				}
			}
			gotStats, _ := med2.PolicyStats()
			if gotStats.Used != wantStats.Used || len(gotStats.Contents) != len(wantStats.Contents) {
				t.Fatalf("restored cache %+v, want %+v", gotStats, wantStats)
			}
			checkInvariant(t, med2, reg2)
		})
	}
}

// TestShardLayoutChangeRestores restarts with a different
// -decision-shards than the snapshot was taken under: the rehash path
// must preserve the global accounting, clock, and cache contents even
// though per-partition attribution is not recoverable.
func TestShardLayoutChangeRestores(t *testing.T) {
	capacity := catalog.EDR().TotalBytes() / 2
	cases := []struct{ from, to int }{{8, 2}, {2, 8}, {4, 1}}
	for _, tc := range cases {
		t.Run(shardName(tc.from)+"-to-"+shardName(tc.to), func(t *testing.T) {
			dir := t.TempDir()
			med1, reg1 := newShardedMediator(t, tc.from, capacity)
			m1, err := Open(testConfig(dir, reg1), med1)
			if err != nil {
				t.Fatal(err)
			}
			driveQueries(t, med1, 40)
			want := med1.Accounting()
			wantClock := med1.Clock()
			wantStats, _ := med1.PolicyStats()
			if err := m1.Close(); err != nil {
				t.Fatal(err)
			}

			med2, reg2 := newShardedMediator(t, tc.to, capacity)
			m2, err := Open(testConfig(dir, reg2), med2)
			if err != nil {
				t.Fatal(err)
			}
			defer m2.Close()
			rep := m2.Recovery()
			if !rep.Warm || rep.Fallbacks != 0 {
				t.Fatalf("expected warm start across layout change, got %s", rep)
			}
			if got := med2.Accounting(); got != want {
				t.Fatalf("rehashed accounting %+v, want %+v", got, want)
			}
			if med2.Clock() != wantClock {
				t.Fatalf("rehashed clock = %d, want %d", med2.Clock(), wantClock)
			}
			gotStats, _ := med2.PolicyStats()
			if gotStats.Used != wantStats.Used || len(gotStats.Contents) != len(wantStats.Contents) {
				t.Fatalf("rehashed cache %+v, want %+v", gotStats, wantStats)
			}
			checkInvariant(t, med2, reg2)
			// The rehashed plane keeps accounting correctly afterwards.
			driveQueries(t, med2, 8)
			checkInvariant(t, med2, reg2)
		})
	}
}

// encodeV1Snapshot serializes a State exactly as pre-sharding builds
// did: one implicit section, the policy blob trailing the header.
func encodeV1Snapshot(st federation.State, createdUnix int64) []byte {
	var e enc
	e.u8(1)
	e.i64(createdUnix)
	e.i64(st.Clock)
	e.str(st.Schema)
	e.u8(uint8(st.Granularity))
	e.str(st.PolicyName)
	e.i64(st.Capacity)
	e.acct(st.Acct)
	var blob []byte
	if len(st.Shards) == 1 {
		blob = st.Shards[0].PolicyBlob
	}
	e.bytes(blob)
	payload := e.b
	out := make([]byte, 0, len(snapMagic)+8+len(payload))
	out = append(out, snapMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	return append(out, payload...)
}

// TestV1SnapshotRestoresIntoShardedPlane writes a hand-framed
// version-1 snapshot — what a pre-sharding byproxyd left on disk — and
// opens a 4-partition plane over it. Recovery must take the rehash
// path: global accounting and cache contents restored, the plane
// consistent and accounting correctly for new traffic.
func TestV1SnapshotRestoresIntoShardedPlane(t *testing.T) {
	capacity := catalog.EDR().TotalBytes() / 2

	// Source of truth: a real single-partition run (the layout every
	// v1 snapshot was taken under).
	med1, _ := newTestMediator(t, "rate-profile", capacity)
	driveQueries(t, med1, 40)
	st, err := med1.SnapshotState(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 1 {
		t.Fatalf("single-partition snapshot carries %d sections", len(st.Shards))
	}
	want := med1.Accounting()
	wantStats, _ := med1.PolicyStats()

	dir := t.TempDir()
	frame := encodeV1Snapshot(st, time.Now().Unix())
	if err := os.WriteFile(filepath.Join(dir, snapName(st.Clock)), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	// Sanity: the hand-built frame decodes as the legacy single-section
	// form before the mediator ever sees it.
	dec, _, err := decodeSnapshotFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Shards != nil || len(dec.PolicyBlob) == 0 {
		t.Fatalf("v1 decode: Shards=%v blob=%d bytes, want legacy form", dec.Shards, len(dec.PolicyBlob))
	}

	med2, reg2 := newShardedMediator(t, 4, capacity)
	m2, err := Open(testConfig(dir, reg2), med2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	rep := m2.Recovery()
	if !rep.Warm || rep.Fallbacks != 0 {
		t.Fatalf("v1 snapshot should warm-start a sharded plane, got %s", rep)
	}
	if got := med2.Accounting(); got != want {
		t.Fatalf("restored accounting %+v, want %+v", got, want)
	}
	if med2.Clock() != st.Clock {
		t.Fatalf("restored clock = %d, want %d", med2.Clock(), st.Clock)
	}
	gotStats, _ := med2.PolicyStats()
	if gotStats.Used != wantStats.Used || len(gotStats.Contents) != len(wantStats.Contents) {
		t.Fatalf("restored cache %+v, want %+v", gotStats, wantStats)
	}
	checkInvariant(t, med2, reg2)
	driveQueries(t, med2, 8)
	checkInvariant(t, med2, reg2)
}

func shardName(n int) string {
	return "shards-" + strconv.Itoa(n)
}
