package obs

import (
	"math"
	"sort"
)

// Snapshot is a point-in-time, JSON-serializable view of a registry.
// Entries are sorted by (name, label), so two snapshots of the same
// registry diff cleanly and render deterministically.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters,omitempty"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
	Rates      []RateSnap      `json:"rates,omitempty"`
}

// CounterSnap is one counter's value. Family members carry their
// label; plain counters have an empty label.
type CounterSnap struct {
	Name  string `json:"name"`
	Label string `json:"label,omitempty"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge's value.
type GaugeSnap struct {
	Name  string `json:"name"`
	Label string `json:"label,omitempty"`
	Value int64  `json:"value"`
}

// RateSnap is one sliding-window rate at snapshot time.
type RateSnap struct {
	Name string `json:"name"`
	// PerSecond is the windowed rate (units per second).
	PerSecond float64 `json:"per_second"`
	// WindowSeconds is the full window the tracker covers.
	WindowSeconds float64 `json:"window_seconds"`
}

// HistogramSnap is one histogram's buckets. Counts has one entry per
// bound plus a final overflow bucket.
type HistogramSnap struct {
	Name   string  `json:"name"`
	Label  string  `json:"label,omitempty"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// Mean returns the average observation, or 0 with no observations.
func (h HistogramSnap) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0, 1]): the bound of the bucket containing the q·Count-th
// observation. Observations in the overflow bucket report the last
// bound (the histogram cannot see beyond it).
func (h HistogramSnap) Quantile(q float64) int64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			break
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Quantiles returns the upper-bound estimates for several quantiles
// at once (one pass per quantile over an already-consistent snap).
func (h HistogramSnap) Quantiles(qs ...float64) []int64 {
	out := make([]int64, len(qs))
	for i, q := range qs {
		out[i] = h.Quantile(q)
	}
	return out
}

// Sub returns the delta histogram cur − prev: the observations that
// landed between the two snapshots. Bounds must match (the zero prev
// subtracts nothing); mismatched layouts return cur unchanged, so a
// daemon restart between scrapes degrades to an absolute window
// rather than panicking.
func (h HistogramSnap) Sub(prev HistogramSnap) HistogramSnap {
	if len(prev.Counts) != len(h.Counts) || len(prev.Bounds) != len(h.Bounds) {
		return h
	}
	d := HistogramSnap{
		Name:   h.Name,
		Label:  h.Label,
		Bounds: h.Bounds,
		Counts: make([]int64, len(h.Counts)),
		Sum:    h.Sum - prev.Sum,
		Count:  h.Count - prev.Count,
	}
	for i := range h.Counts {
		d.Counts[i] = h.Counts[i] - prev.Counts[i]
	}
	return d
}

// Snapshot captures every metric in the registry. A nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	collectors := make([]func(), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()
	// Collectors run unlocked: they re-enter the registry to refresh
	// gauges/histograms, which would deadlock under r.mu.
	for _, fn := range collectors {
		fn()
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	cfams := make(map[string]*CounterFamily, len(r.cfamilies))
	for k, v := range r.cfamilies {
		cfams[k] = v
	}
	gfams := make(map[string]*GaugeFamily, len(r.gfamilies))
	for k, v := range r.gfamilies {
		gfams[k] = v
	}
	hfams := make(map[string]*HistogramFamily, len(r.hfamilies))
	for k, v := range r.hfamilies {
		hfams[k] = v
	}
	rates := make(map[string]*Rate, len(r.rates))
	for k, v := range r.rates {
		rates[k] = v
	}
	r.mu.Unlock()

	for name, c := range counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, f := range cfams {
		f.mu.RLock()
		for label, c := range f.items {
			s.Counters = append(s.Counters, CounterSnap{Name: name, Label: label, Value: c.Value()})
		}
		f.mu.RUnlock()
	}
	for name, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	for name, f := range gfams {
		f.mu.RLock()
		for label, g := range f.items {
			s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Label: label, Value: g.Value()})
		}
		f.mu.RUnlock()
	}
	for name, h := range hists {
		s.Histograms = append(s.Histograms, h.snap(name, ""))
	}
	for name, f := range hfams {
		f.mu.RLock()
		for label, h := range f.items {
			s.Histograms = append(s.Histograms, h.snap(name, label))
		}
		f.mu.RUnlock()
	}
	for name, rt := range rates {
		s.Rates = append(s.Rates, RateSnap{
			Name:          name,
			PerSecond:     rt.PerSecond(),
			WindowSeconds: rt.WindowSeconds(),
		})
	}

	sort.Slice(s.Counters, func(i, j int) bool {
		if s.Counters[i].Name != s.Counters[j].Name {
			return s.Counters[i].Name < s.Counters[j].Name
		}
		return s.Counters[i].Label < s.Counters[j].Label
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		if s.Gauges[i].Name != s.Gauges[j].Name {
			return s.Gauges[i].Name < s.Gauges[j].Name
		}
		return s.Gauges[i].Label < s.Gauges[j].Label
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		if s.Histograms[i].Name != s.Histograms[j].Name {
			return s.Histograms[i].Name < s.Histograms[j].Name
		}
		return s.Histograms[i].Label < s.Histograms[j].Label
	})
	sort.Slice(s.Rates, func(i, j int) bool { return s.Rates[i].Name < s.Rates[j].Name })
	return s
}

// RateValue looks up a rate by name; missing entries return 0.
func (s Snapshot) RateValue(name string) float64 {
	for _, r := range s.Rates {
		if r.Name == name {
			return r.PerSecond
		}
	}
	return 0
}

// HasRate reports whether the snapshot carries the named rate.
func (s Snapshot) HasRate(name string) bool {
	for _, r := range s.Rates {
		if r.Name == name {
			return true
		}
	}
	return false
}

// CounterValue looks up a counter (or family member) by name and
// label; missing entries return 0.
func (s Snapshot) CounterValue(name, label string) int64 {
	for _, c := range s.Counters {
		if c.Name == name && c.Label == label {
			return c.Value
		}
	}
	return 0
}

// CounterTotal sums all labels of a counter name (for families).
func (s Snapshot) CounterTotal(name string) int64 {
	var total int64
	for _, c := range s.Counters {
		if c.Name == name {
			total += c.Value
		}
	}
	return total
}

// GaugeValue looks up a gauge by name; missing entries return 0.
func (s Snapshot) GaugeValue(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name && g.Label == "" {
			return g.Value
		}
	}
	return 0
}

// GaugeLabeled looks up a gauge-family member by name and label;
// missing entries return 0.
func (s Snapshot) GaugeLabeled(name, label string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name && g.Label == label {
			return g.Value
		}
	}
	return 0
}

// HistogramSnap looks up a histogram by name and label.
func (s Snapshot) HistogramSnap(name, label string) (HistogramSnap, bool) {
	for _, h := range s.Histograms {
		if h.Name == name && h.Label == label {
			return h, true
		}
	}
	return HistogramSnap{}, false
}
