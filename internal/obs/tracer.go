package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one telemetry event: a point event or a completed span
// (Duration > 0). Attrs are flat key/value pairs. Trace/Span/Parent
// carry the distributed trace identity as 16-hex-digit ids; all three
// are empty on untraced events, and Parent is empty on a trace's root
// span.
type Event struct {
	Time     time.Time     `json:"time"`
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns,omitempty"`
	Trace    string        `json:"trace,omitempty"`
	Span     string        `json:"span,omitempty"`
	Parent   string        `json:"parent,omitempty"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Attr is one event attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A creates an attribute (shorthand for literals at call sites).
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// AttrValue returns the value of the named attribute ("" when absent).
func (e Event) AttrValue(key string) string {
	for _, a := range e.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Sink consumes events. Implementations must be safe for concurrent
// Emit calls.
type Sink interface {
	Emit(Event)
}

// Tracer emits events and spans to a sink. A nil *Tracer (or a
// tracer over a nil sink) is a valid no-op tracer.
type Tracer struct {
	sink Sink
}

// NewTracer wraps a sink. A nil sink yields a no-op tracer.
func NewTracer(sink Sink) *Tracer { return &Tracer{sink: sink} }

// Enabled reports whether events reach a sink (lets callers skip
// expensive attribute construction).
func (t *Tracer) Enabled() bool { return t != nil && t.sink != nil }

// Event emits a point event.
func (t *Tracer) Event(name string, attrs ...Attr) {
	if !t.Enabled() {
		return
	}
	t.sink.Emit(Event{Time: time.Now(), Name: name, Attrs: attrs})
}

// Start opens an anonymous span (no trace identity); End emits it with
// the measured duration. Use Root/Child for spans that participate in
// distributed traces.
func (t *Tracer) Start(name string, attrs ...Attr) Span {
	if !t.Enabled() {
		return Span{}
	}
	return Span{t: t, name: name, attrs: attrs, t0: time.Now()}
}

// Root opens a span that starts a new trace: a fresh TraceID with a
// fresh root SpanID and no parent. The proxy mints one per client
// query.
func (t *Tracer) Root(name string, attrs ...Attr) Span {
	if !t.Enabled() {
		return Span{}
	}
	id := NewID()
	return Span{
		t: t, name: name, attrs: attrs, t0: time.Now(),
		ctx: TraceContext{TraceID: id, SpanID: NewID()},
	}
}

// Child opens a span continuing parent: same TraceID, fresh SpanID,
// parented under parent.SpanID. A zero (untraced) parent degrades to
// Root, so daemons receiving untraced frames still produce local
// trees.
func (t *Tracer) Child(parent TraceContext, name string, attrs ...Attr) Span {
	if !t.Enabled() {
		return Span{}
	}
	if !parent.Valid() {
		return t.Root(name, attrs...)
	}
	return Span{
		t: t, name: name, attrs: attrs, t0: time.Now(),
		ctx:    TraceContext{TraceID: parent.TraceID, SpanID: NewID()},
		parent: parent.SpanID,
	}
}

// Span is an in-flight operation opened by Tracer.Start, Root, or
// Child.
type Span struct {
	t      *Tracer
	name   string
	attrs  []Attr
	t0     time.Time
	ctx    TraceContext
	parent uint64
}

// Context returns the span's own trace identity, for propagation to
// children (locally via Child, remotely via wire frames). Zero for
// anonymous and no-op spans.
func (s Span) Context() TraceContext { return s.ctx }

// End emits the span event. Safe on the zero Span.
func (s Span) End(extra ...Attr) {
	if s.t == nil {
		return
	}
	attrs := s.attrs
	if len(extra) > 0 {
		attrs = append(append([]Attr{}, s.attrs...), extra...)
	}
	s.t.sink.Emit(Event{
		Time:     s.t0,
		Name:     s.name,
		Duration: time.Since(s.t0),
		Trace:    FormatID(s.ctx.TraceID),
		Span:     FormatID(s.ctx.SpanID),
		Parent:   FormatID(s.parent),
		Attrs:    attrs,
	})
}

// Ring is an in-memory ring buffer sink for tests and diagnostics:
// it retains the last N events.
type Ring struct {
	mu     sync.Mutex
	events []Event
	next   int
	full   bool
}

// NewRing returns a ring retaining the last n events (n ≥ 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{events: make([]Event, n)}
}

// Emit implements Sink.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	r.events[r.next] = e
	r.next = (r.next + 1) % len(r.events)
	if r.next == 0 {
		r.full = true
	}
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.events[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// JSONL is a sink writing one JSON object per event line, for
// offline analysis of daemon runs (byproxyd/bydbd -trace-out).
type JSONL struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
}

// NewJSONL wraps a writer.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{w: w, enc: json.NewEncoder(w)} }

// Emit implements Sink. Encoding errors are dropped: telemetry must
// never fail the instrumented operation.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	j.enc.Encode(e) //nolint:errcheck
	j.mu.Unlock()
}

// Close closes the underlying writer when it is an io.Closer, so span
// logs are not truncated on daemon shutdown. Emit calls racing Close
// serialize on the sink mutex; events after Close are dropped by the
// closed writer.
func (j *JSONL) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if c, ok := j.w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
