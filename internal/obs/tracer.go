package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one telemetry event: a point event or a completed span
// (Duration > 0). Attrs are flat key/value pairs.
type Event struct {
	Time     time.Time     `json:"time"`
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns,omitempty"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Attr is one event attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A creates an attribute (shorthand for literals at call sites).
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Sink consumes events. Implementations must be safe for concurrent
// Emit calls.
type Sink interface {
	Emit(Event)
}

// Tracer emits events and spans to a sink. A nil *Tracer (or a
// tracer over a nil sink) is a valid no-op tracer.
type Tracer struct {
	sink Sink
}

// NewTracer wraps a sink. A nil sink yields a no-op tracer.
func NewTracer(sink Sink) *Tracer { return &Tracer{sink: sink} }

// Enabled reports whether events reach a sink (lets callers skip
// expensive attribute construction).
func (t *Tracer) Enabled() bool { return t != nil && t.sink != nil }

// Event emits a point event.
func (t *Tracer) Event(name string, attrs ...Attr) {
	if !t.Enabled() {
		return
	}
	t.sink.Emit(Event{Time: time.Now(), Name: name, Attrs: attrs})
}

// Start opens a span; End emits it with the measured duration.
func (t *Tracer) Start(name string, attrs ...Attr) Span {
	if !t.Enabled() {
		return Span{}
	}
	return Span{t: t, name: name, attrs: attrs, t0: time.Now()}
}

// Span is an in-flight operation opened by Tracer.Start.
type Span struct {
	t     *Tracer
	name  string
	attrs []Attr
	t0    time.Time
}

// End emits the span event. Safe on the zero Span.
func (s Span) End(extra ...Attr) {
	if s.t == nil {
		return
	}
	attrs := s.attrs
	if len(extra) > 0 {
		attrs = append(append([]Attr{}, s.attrs...), extra...)
	}
	s.t.sink.Emit(Event{
		Time:     s.t0,
		Name:     s.name,
		Duration: time.Since(s.t0),
		Attrs:    attrs,
	})
}

// Ring is an in-memory ring buffer sink for tests and diagnostics:
// it retains the last N events.
type Ring struct {
	mu     sync.Mutex
	events []Event
	next   int
	full   bool
}

// NewRing returns a ring retaining the last n events (n ≥ 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{events: make([]Event, n)}
}

// Emit implements Sink.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	r.events[r.next] = e
	r.next = (r.next + 1) % len(r.events)
	if r.next == 0 {
		r.full = true
	}
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.events[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// JSONL is a sink writing one JSON object per event line, for
// offline analysis of daemon runs (byproxyd -trace-out).
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONL wraps a writer.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{enc: json.NewEncoder(w)} }

// Emit implements Sink. Encoding errors are dropped: telemetry must
// never fail the instrumented operation.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	j.enc.Encode(e) //nolint:errcheck
	j.mu.Unlock()
}
