// Package ledger is the decision ledger of the bypass-yield cache:
// a bounded, lock-free ring of structured DecisionRecords — one per
// policy decision — with an optional JSONL sink for durable audit
// logs. Where the obs registry answers "how much" (aggregate byte
// counters, rates, histograms), the ledger answers "why": every
// record carries the inputs that drove the serve/load/bypass choice
// (RP, LAR, BYU, episode state, fetch cost, size) plus the realized
// yield and WAN charge, correlated to the distributed trace the
// access rode in on.
//
// Design constraints mirror package obs:
//
//   - Record is lock-free and costs at most one allocation: a slot is
//     claimed with one atomic add and an immutable copy of the record
//     is published with one atomic pointer store. A nil *Ledger is a
//     valid no-op, so call sites thread it unconditionally.
//   - Snapshot never blocks writers: a claimed-but-unpublished slot,
//     or one overwritten by a ring wrap mid-read, is detected by its
//     sequence number and skipped — bounded imprecision, bought for a
//     lock-free hot path.
//
// The package deliberately depends on nothing above the standard
// library so every layer (core, wire, cmd) can import it freely.
package ledger

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// DecisionRecord explains one policy decision. Numeric fields are the
// decision's inputs at the moment it was taken; which are meaningful
// depends on the policy (RP/LAR/episodes for rate-profile, BYU for
// online-by). String fields are either interned constants ("hit",
// reason codes) or ids that already existed at the call site, so
// building a record does not allocate.
type DecisionRecord struct {
	// Seq is the ledger sequence number (1-based, assigned by Record).
	Seq uint64 `json:"seq"`
	// T is the query clock (the mediator's statement counter).
	T int64 `json:"t"`
	// Policy names the deciding policy ("rate-profile", ...).
	Policy string `json:"policy,omitempty"`
	// Trace is the distributed trace id of the enclosing query (16 hex
	// digits, "" when untraced) — the join key to span waterfalls.
	Trace string `json:"trace,omitempty"`
	// Object is the decided object's id.
	Object string `json:"object"`
	// Action is the chosen decision: "hit", "bypass", or "load" — or
	// "failed" for a leg that could not be served at all because its
	// site was unavailable and the object was not cached. Failed
	// records carry zero Yield and WANCost (nothing was delivered,
	// nothing was charged), keeping Σ ledger yields equal to D_A.
	Action string `json:"action"`
	// Stale marks a forced serve-from-cache: the owning site was
	// unavailable, so the cached copy was served without any freshness
	// guarantee.
	Stale bool `json:"stale,omitempty"`
	// Yield is the realized yield of the access in bytes.
	Yield int64 `json:"yield"`
	// WANCost is the WAN traffic the decision charged: 0 for a hit,
	// the cost-scaled yield for a bypass, the fetch cost for a load.
	WANCost int64 `json:"wan_cost"`
	// Size is the object's size s_i in bytes.
	Size int64 `json:"size"`
	// FetchCost is the object's load cost f_i in bytes.
	FetchCost int64 `json:"fetch_cost"`
	// RP is the object's measured in-cache rate profile (eq. 3) — the
	// realized savings rate — at decision time; meaningful on hits and
	// for eviction comparisons.
	RP float64 `json:"rp,omitempty"`
	// LAR is the candidate's load-adjusted rate (eqs. 4-6) — the
	// predicted savings rate had it been loaded; meaningful on
	// bypass/load decisions of profile-driven policies.
	LAR float64 `json:"lar,omitempty"`
	// BYU is the ski-rental accumulator normalized by object size (the
	// paper's byte-yield-utility accumulator of Figure 2); meaningful
	// for online-by.
	BYU float64 `json:"byu,omitempty"`
	// VictimRP is the best (maximum) rate profile among the would-be
	// eviction victims the candidate was compared against.
	VictimRP float64 `json:"victim_rp,omitempty"`
	// Episodes counts the object's completed out-of-cache episodes.
	Episodes int64 `json:"episodes,omitempty"`
	// EpisodePhase is "open" while the object is inside an episode
	// burst, "closed" otherwise.
	EpisodePhase string `json:"episode_phase,omitempty"`
	// Reason is a compact code naming the rule that fired (see the
	// core package's Reason* constants).
	Reason string `json:"reason,omitempty"`
}

// Sink consumes records as they are written (in addition to the
// ring). Implementations must tolerate concurrent calls.
type Sink interface {
	Record(DecisionRecord)
}

// Ledger is the bounded decision ring. Construct with New; the zero
// value and nil are valid no-op ledgers.
type Ledger struct {
	slots []slot
	seq   atomic.Uint64
	sink  Sink // set before recording starts; nil = ring only
}

type slot struct {
	// rec points at an immutable record: writers publish a fresh copy
	// with one atomic store, readers load without synchronizing. This
	// costs one allocation per record but keeps the hot path lock-free
	// and race-free under the Go memory model (a seqlock over a plain
	// struct copy would not be).
	rec atomic.Pointer[DecisionRecord]
}

// New returns a ledger retaining the most recent n records (n is
// clamped to at least 1).
func New(n int) *Ledger {
	if n < 1 {
		n = 1
	}
	return &Ledger{slots: make([]slot, n)}
}

// SetSink attaches a sink that receives every record in addition to
// the ring (e.g. a JSONL audit log). Call before recording starts;
// the sink's cost lands on the recording path.
func (l *Ledger) SetSink(s Sink) {
	if l == nil {
		return
	}
	l.sink = s
}

// Cap returns the ring capacity (0 on a nil ledger).
func (l *Ledger) Cap() int {
	if l == nil {
		return 0
	}
	return len(l.slots)
}

// Count returns the total number of records ever written (0 on a nil
// ledger); records older than Count-Cap have been overwritten.
func (l *Ledger) Count() uint64 {
	if l == nil {
		return 0
	}
	return l.seq.Load()
}

// Record appends one record, overwriting the oldest when the ring is
// full. The record's Seq field is assigned here. No-op on a nil
// ledger; one allocation per record (the published copy).
func (l *Ledger) Record(rec DecisionRecord) {
	if l == nil {
		return
	}
	seq := l.seq.Add(1)
	rec.Seq = seq
	// Copy into a fresh heap record here, after the nil check, so the
	// disabled path stays allocation-free (taking &rec directly would
	// heap-allocate the parameter on every call).
	p := new(DecisionRecord)
	*p = rec
	l.slots[(seq-1)%uint64(len(l.slots))].rec.Store(p)
	if l.sink != nil {
		l.sink.Record(rec)
	}
}

// Snapshot returns the retained records oldest-first. A slot whose
// writer has claimed a sequence number but not yet published is
// skipped, so under heavy concurrent recording the result may briefly
// miss a record. Nil on a nil or empty ledger.
func (l *Ledger) Snapshot() []DecisionRecord {
	if l == nil {
		return nil
	}
	seq := l.seq.Load()
	if seq == 0 {
		return nil
	}
	n := uint64(len(l.slots))
	lo := uint64(1)
	if seq > n {
		lo = seq - n + 1
	}
	out := make([]DecisionRecord, 0, seq-lo+1)
	for s := lo; s <= seq; s++ {
		rec := l.slots[(s-1)%n].rec.Load()
		if rec == nil || rec.Seq != s {
			continue // unpublished, or already overwritten by a wrap
		}
		out = append(out, *rec)
	}
	return out
}

// Query filters a record set. Zero fields match everything.
type Query struct {
	// Object matches the record's object id exactly.
	Object string
	// Action matches "hit", "bypass", "load", or "failed".
	Action string
	// Trace matches the record's trace id.
	Trace string
	// Limit keeps only the most recent N matches (0 = all).
	Limit int
}

// Match reports whether one record satisfies the query's filters
// (Limit is applied by Filter, not here).
func (q Query) Match(r DecisionRecord) bool {
	if q.Object != "" && r.Object != q.Object {
		return false
	}
	if q.Action != "" && r.Action != q.Action {
		return false
	}
	if q.Trace != "" && r.Trace != q.Trace {
		return false
	}
	return true
}

// Filter applies a query to records (assumed oldest-first), returning
// matches oldest-first, trimmed to the most recent Limit.
func Filter(recs []DecisionRecord, q Query) []DecisionRecord {
	out := make([]DecisionRecord, 0, len(recs))
	for _, r := range recs {
		if q.Match(r) {
			out = append(out, r)
		}
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[len(out)-q.Limit:]
	}
	return out
}

// ObjectRegret aggregates one object's ledger records against its
// per-object offline bound.
type ObjectRegret struct {
	// Object is the object id.
	Object string `json:"object"`
	// Accesses counts the object's records.
	Accesses int64 `json:"accesses"`
	// RealizedWAN is the WAN traffic the policy actually charged.
	RealizedWAN int64 `json:"realized_wan"`
	// Bound is the object's offline ski-rental bound ignoring cache
	// capacity: min(all-bypass cost, one fetch) — no policy can do
	// better for this object in isolation.
	Bound int64 `json:"bound"`
	// Regret is RealizedWAN − Bound: the WAN bytes an omniscient
	// per-object strategy would have saved.
	Regret int64 `json:"regret"`
}

// Regret computes per-object regret from ledger records, sorted by
// descending regret: the objects where the policy left the most WAN
// traffic on the table. The bound is the ski-rental optimum per
// object (rent forever vs. buy once), so regret is an upper estimate
// — a capacity-constrained OPT may not achieve it for every object
// simultaneously.
func Regret(recs []DecisionRecord) []ObjectRegret {
	type agg struct {
		accesses   int64
		realized   int64
		bypassCost int64 // what all-bypass would have paid
		fetch      int64
		loaded     bool
	}
	byObj := map[string]*agg{}
	for _, r := range recs {
		a := byObj[r.Object]
		if a == nil {
			a = &agg{fetch: r.FetchCost}
			byObj[r.Object] = a
		}
		a.accesses++
		a.realized += r.WANCost
		a.bypassCost += bypassEquivalent(r)
		if r.Action == "load" {
			a.loaded = true
		}
	}
	out := make([]ObjectRegret, 0, len(byObj))
	for obj, a := range byObj {
		bound := a.bypassCost
		if a.fetch > 0 && a.fetch < bound {
			bound = a.fetch
		}
		out = append(out, ObjectRegret{
			Object:      obj,
			Accesses:    a.accesses,
			RealizedWAN: a.realized,
			Bound:       bound,
			Regret:      a.realized - bound,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Regret != out[j].Regret {
			return out[i].Regret > out[j].Regret
		}
		return out[i].Object < out[j].Object
	})
	return out
}

// bypassEquivalent is the WAN cost the access would have incurred had
// it been bypassed: the record's own charge for a bypass, the
// cost-scaled yield for hits and loads.
func bypassEquivalent(r DecisionRecord) int64 {
	if r.Action == "bypass" {
		return r.WANCost
	}
	if r.Size > 0 && r.FetchCost != r.Size {
		return int64(float64(r.Yield) * float64(r.FetchCost) / float64(r.Size))
	}
	return r.Yield
}

// JSONL is a sink appending one JSON object per record, for offline
// audit of daemon runs (byproxyd -ledger-out).
type JSONL struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
}

// NewJSONL wraps a writer.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: w, enc: json.NewEncoder(w)}
}

// Record implements Sink. Encoding errors are dropped: the ledger
// must never fail the decision it describes.
func (j *JSONL) Record(r DecisionRecord) {
	j.mu.Lock()
	j.enc.Encode(r) //nolint:errcheck
	j.mu.Unlock()
}

// Close closes the underlying writer when it is an io.Closer. Nil-safe.
func (j *JSONL) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if c, ok := j.w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
