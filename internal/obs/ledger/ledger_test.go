package ledger

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func rec(obj, action string, yield, wan int64) DecisionRecord {
	return DecisionRecord{
		Object:    obj,
		Action:    action,
		Yield:     yield,
		WANCost:   wan,
		Size:      1000,
		FetchCost: 1000,
	}
}

func TestNilLedgerIsNoOp(t *testing.T) {
	var l *Ledger
	l.Record(rec("o1", "hit", 10, 0)) // must not panic
	l.SetSink(NewJSONL(&bytes.Buffer{}))
	if got := l.Snapshot(); got != nil {
		t.Fatalf("nil ledger Snapshot = %v, want nil", got)
	}
	if l.Count() != 0 || l.Cap() != 0 {
		t.Fatalf("nil ledger Count/Cap = %d/%d, want 0/0", l.Count(), l.Cap())
	}
}

func TestLedgerSequenceAndSnapshot(t *testing.T) {
	l := New(8)
	for i := 0; i < 5; i++ {
		l.Record(rec("o1", "bypass", int64(i), int64(i)))
	}
	if l.Count() != 5 {
		t.Fatalf("Count = %d, want 5", l.Count())
	}
	recs := l.Snapshot()
	if len(recs) != 5 {
		t.Fatalf("Snapshot len = %d, want 5", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d: Seq = %d, want %d (oldest-first)", i, r.Seq, i+1)
		}
		if r.Yield != int64(i) {
			t.Fatalf("record %d: Yield = %d, want %d", i, r.Yield, i)
		}
	}
}

func TestLedgerRingWrap(t *testing.T) {
	l := New(4)
	for i := 1; i <= 10; i++ {
		l.Record(rec("o1", "hit", int64(i), 0))
	}
	recs := l.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("Snapshot len = %d, want 4 (ring capacity)", len(recs))
	}
	// Only the 4 most recent survive, oldest-first: seqs 7..10.
	for i, r := range recs {
		want := uint64(7 + i)
		if r.Seq != want {
			t.Fatalf("record %d: Seq = %d, want %d", i, r.Seq, want)
		}
	}
}

func TestLedgerCapClamp(t *testing.T) {
	l := New(0)
	if l.Cap() != 1 {
		t.Fatalf("Cap = %d, want clamp to 1", l.Cap())
	}
	l.Record(rec("a", "hit", 1, 0))
	l.Record(rec("b", "hit", 2, 0))
	recs := l.Snapshot()
	if len(recs) != 1 || recs[0].Object != "b" {
		t.Fatalf("Snapshot = %+v, want only the latest record", recs)
	}
}

func TestFilter(t *testing.T) {
	l := New(16)
	l.Record(DecisionRecord{Object: "o1", Action: "bypass", Trace: "aa"})
	l.Record(DecisionRecord{Object: "o2", Action: "load", Trace: "aa"})
	l.Record(DecisionRecord{Object: "o1", Action: "hit", Trace: "bb"})
	l.Record(DecisionRecord{Object: "o1", Action: "hit", Trace: "bb"})
	recs := l.Snapshot()

	if got := Filter(recs, Query{Object: "o1"}); len(got) != 3 {
		t.Fatalf("object filter: %d matches, want 3", len(got))
	}
	if got := Filter(recs, Query{Action: "hit"}); len(got) != 2 {
		t.Fatalf("action filter: %d matches, want 2", len(got))
	}
	if got := Filter(recs, Query{Trace: "aa"}); len(got) != 2 {
		t.Fatalf("trace filter: %d matches, want 2", len(got))
	}
	if got := Filter(recs, Query{Object: "o1", Action: "hit", Trace: "bb"}); len(got) != 2 {
		t.Fatalf("combined filter: %d matches, want 2", len(got))
	}
	got := Filter(recs, Query{Object: "o1", Limit: 2})
	if len(got) != 2 || got[0].Action != "hit" || got[1].Action != "hit" {
		t.Fatalf("limit filter: %+v, want the 2 most recent o1 records", got)
	}
}

func TestRegret(t *testing.T) {
	// o1: bypassed 3 times at 400 each (realized WAN 1200) but one
	// fetch costs 1000 — regret 200.
	// o2: loaded once (WAN 1000) then hit for 10 — all-bypass would
	// have paid 500+10=510 < fetch, bound 510, regret 490.
	// o3: one cheap bypass of 50 — bound 50, regret 0.
	recs := []DecisionRecord{
		{Object: "o1", Action: "bypass", Yield: 400, WANCost: 400, Size: 1000, FetchCost: 1000},
		{Object: "o1", Action: "bypass", Yield: 400, WANCost: 400, Size: 1000, FetchCost: 1000},
		{Object: "o1", Action: "bypass", Yield: 400, WANCost: 400, Size: 1000, FetchCost: 1000},
		{Object: "o2", Action: "load", Yield: 500, WANCost: 1000, Size: 1000, FetchCost: 1000},
		{Object: "o2", Action: "hit", Yield: 10, WANCost: 0, Size: 1000, FetchCost: 1000},
		{Object: "o3", Action: "bypass", Yield: 50, WANCost: 50, Size: 1000, FetchCost: 1000},
	}
	regrets := Regret(recs)
	if len(regrets) != 3 {
		t.Fatalf("len = %d, want 3", len(regrets))
	}
	// Sorted by descending regret: o2 (490), o1 (200), o3 (0).
	want := []ObjectRegret{
		{Object: "o2", Accesses: 2, RealizedWAN: 1000, Bound: 510, Regret: 490},
		{Object: "o1", Accesses: 3, RealizedWAN: 1200, Bound: 1000, Regret: 200},
		{Object: "o3", Accesses: 1, RealizedWAN: 50, Bound: 50, Regret: 0},
	}
	for i, w := range want {
		if regrets[i] != w {
			t.Fatalf("regrets[%d] = %+v, want %+v", i, regrets[i], w)
		}
	}
}

func TestRegretNonuniformCost(t *testing.T) {
	// FetchCost 2x size: a hit's bypass-equivalent is yield * f/s.
	recs := []DecisionRecord{
		{Object: "o1", Action: "load", Yield: 100, WANCost: 2000, Size: 1000, FetchCost: 2000},
		{Object: "o1", Action: "hit", Yield: 500, WANCost: 0, Size: 1000, FetchCost: 2000},
	}
	r := Regret(recs)[0]
	// all-bypass = 100*2 + 500*2 = 1200 < fetch 2000 → bound 1200.
	if r.Bound != 1200 {
		t.Fatalf("Bound = %d, want 1200", r.Bound)
	}
	if r.Regret != 2000-1200 {
		t.Fatalf("Regret = %d, want 800", r.Regret)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	l := New(4)
	l.SetSink(NewJSONL(&buf))
	// More records than the ring holds: the sink sees all of them.
	for i := 1; i <= 6; i++ {
		l.Record(DecisionRecord{T: int64(i), Object: "o1", Action: "bypass", Yield: int64(i * 10)})
	}
	sc := bufio.NewScanner(&buf)
	var n int
	for sc.Scan() {
		var r DecisionRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d: %v", n+1, err)
		}
		n++
		if r.Seq != uint64(n) || r.Yield != int64(n*10) {
			t.Fatalf("line %d: Seq=%d Yield=%d", n, r.Seq, r.Yield)
		}
		if r.Trace != "" {
			t.Fatalf("untraced record marshaled Trace = %q, want omitted/empty", r.Trace)
		}
	}
	if n != 6 {
		t.Fatalf("sink saw %d records, want 6", n)
	}
}

func TestLedgerConcurrent(t *testing.T) {
	l := New(64)
	const writers, perWriter = 8, 500
	done := make(chan struct{})
	// Concurrent snapshots must never observe torn records: every
	// returned record must be internally consistent (Yield == T*10).
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, r := range l.Snapshot() {
				if r.Yield != r.T*10 {
					t.Errorf("torn record: T=%d Yield=%d", r.T, r.Yield)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Record(DecisionRecord{T: int64(i), Yield: int64(i) * 10, Object: "o", Action: "hit"})
			}
		}()
	}
	wg.Wait()
	close(done)
	readers.Wait()
	if l.Count() != writers*perWriter {
		t.Fatalf("Count = %d, want %d", l.Count(), writers*perWriter)
	}
	if got := len(l.Snapshot()); got > 64 {
		t.Fatalf("Snapshot len = %d, want ≤ 64", got)
	}
}
