package obs

import "testing"

// TestHistogramQuantile pins the shared quantile implementation that
// bysynth's run reports and byinspect -watch both lean on: the
// q-quantile is the upper bound of the bucket holding the ⌈q·N⌉-th
// observation.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]int64{10, 100, 1000})
	// 10 observations ≤ 10, 80 in (10,100], 9 in (100,1000], 1 overflow.
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	for i := 0; i < 80; i++ {
		h.Observe(50)
	}
	for i := 0; i < 9; i++ {
		h.Observe(500)
	}
	h.Observe(5000)

	cases := []struct {
		q    float64
		want int64
	}{
		{0, 10},     // clamped to rank 1
		{0.05, 10},  // rank 5 in the first bucket
		{0.10, 10},  // rank 10, still first bucket
		{0.11, 100}, // rank 11 spills into the second
		{0.50, 100},
		{0.90, 100},
		{0.95, 1000},
		{0.99, 1000},
		{0.999, 1000}, // overflow reports the last bound
		{1, 1000},
		{1.5, 1000}, // clamped
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}

	s := h.Snap()
	got := s.Quantiles(0.5, 0.99)
	if got[0] != 100 || got[1] != 1000 {
		t.Errorf("Quantiles(0.5, 0.99) = %v, want [100 1000]", got)
	}
	if s.Count != 100 {
		t.Errorf("Snap().Count = %d, want 100", s.Count)
	}
}

func TestHistogramQuantileNilAndEmpty(t *testing.T) {
	var h *Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("nil Quantile = %d, want 0", got)
	}
	if s := h.Snap(); s.Count != 0 || s.Quantile(0.5) != 0 {
		t.Errorf("nil Snap = %+v", s)
	}
	e := newHistogram([]int64{10})
	if got := e.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}
}

// TestHistogramSnapSub checks the watch-window delta: quantiles of the
// subtraction cover only the observations between the two snapshots.
func TestHistogramSnapSub(t *testing.T) {
	h := newHistogram([]int64{10, 100, 1000})
	h.Observe(5)
	h.Observe(5)
	before := h.Snap()

	// The new window is all slow observations.
	for i := 0; i < 10; i++ {
		h.Observe(500)
	}
	d := h.Snap().Sub(before)
	if d.Count != 10 {
		t.Fatalf("delta count = %d, want 10", d.Count)
	}
	if got := d.Quantile(0.5); got != 1000 {
		t.Errorf("delta p50 = %d, want 1000 (old fast observations must not dilute the window)", got)
	}
	if got := d.Sum; got != 5000 {
		t.Errorf("delta sum = %d, want 5000", got)
	}

	// Mismatched layouts (daemon restarted with different buckets)
	// degrade to the absolute window.
	other := newHistogram([]int64{1, 2}).Snap()
	abs := h.Snap()
	if got := abs.Sub(other); got.Count != abs.Count {
		t.Errorf("mismatched Sub count = %d, want %d", got.Count, abs.Count)
	}
}
