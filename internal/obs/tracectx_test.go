package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestIDFormatParseRoundTrip(t *testing.T) {
	for _, id := range []uint64{1, 0xdeadbeef, ^uint64(0), NewID()} {
		s := FormatID(id)
		if len(s) != 16 {
			t.Fatalf("FormatID(%d) = %q, want 16 hex digits", id, s)
		}
		if got := ParseID(s); got != id {
			t.Fatalf("round trip %d → %q → %d", id, s, got)
		}
	}
	if FormatID(0) != "" {
		t.Fatal("zero id must encode as empty (untraced)")
	}
	for _, bad := range []string{"", "zzzz", "12345678901234567890", "-1"} {
		if ParseID(bad) != 0 {
			t.Fatalf("ParseID(%q) should degrade to 0", bad)
		}
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		id := NewID()
		if id == 0 || seen[id] {
			t.Fatalf("id %d duplicate or zero at iteration %d", id, i)
		}
		seen[id] = true
	}
}

func TestRootChildPropagation(t *testing.T) {
	ring := NewRing(8)
	tr := NewTracer(ring)

	root := tr.Root("q")
	rctx := root.Context()
	if !rctx.Valid() || rctx.SpanID == 0 {
		t.Fatalf("root context = %+v", rctx)
	}
	child := tr.Child(rctx, "leg")
	cctx := child.Context()
	if cctx.TraceID != rctx.TraceID {
		t.Fatal("child must share the trace id")
	}
	if cctx.SpanID == rctx.SpanID || cctx.SpanID == 0 {
		t.Fatalf("child span id = %d", cctx.SpanID)
	}
	grand := tr.Child(cctx, "sub")
	grand.End()
	child.End()
	root.End()

	evs := ring.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	byName := map[string]Event{}
	for _, e := range evs {
		byName[e.Name] = e
	}
	if byName["q"].Parent != "" {
		t.Fatal("root must have no parent")
	}
	if byName["leg"].Parent != byName["q"].Span {
		t.Fatal("child parent must be the root span id")
	}
	if byName["sub"].Parent != byName["leg"].Span {
		t.Fatal("grandchild parent must be the child span id")
	}
	for _, e := range evs {
		if e.Trace != rctx.TraceHex() {
			t.Fatalf("event %s trace = %q, want %q", e.Name, e.Trace, rctx.TraceHex())
		}
	}
}

func TestChildOfZeroParentMintsTrace(t *testing.T) {
	ring := NewRing(2)
	tr := NewTracer(ring)
	sp := tr.Child(TraceContext{}, "standalone")
	if !sp.Context().Valid() {
		t.Fatal("zero parent should degrade to a fresh root")
	}
	sp.End()
	if ev := ring.Events()[0]; ev.Parent != "" || ev.Trace == "" {
		t.Fatalf("event = %+v", ev)
	}
}

func TestDisabledTracerSpansAreZero(t *testing.T) {
	var tr *Tracer
	if tr.Root("r").Context().Valid() || tr.Child(TraceContext{TraceID: 1, SpanID: 2}, "c").Context().Valid() {
		t.Fatal("disabled tracer must hand out zero contexts")
	}
	tr.Root("r").End() // must not panic
}

func TestEventAttrValue(t *testing.T) {
	e := Event{Attrs: []Attr{A("k", "v"), A("x", "y")}}
	if e.AttrValue("x") != "y" || e.AttrValue("absent") != "" {
		t.Fatalf("AttrValue lookup broken: %+v", e)
	}
}

// closeRecorder is an io.WriteCloser recording whether Close ran.
type closeRecorder struct {
	bytes.Buffer
	closed bool
}

func (c *closeRecorder) Close() error { c.closed = true; return nil }

func TestJSONLClose(t *testing.T) {
	rec := &closeRecorder{}
	j := NewJSONL(rec)
	NewTracer(j).Root("q").End()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if !rec.closed {
		t.Fatal("Close must close the underlying writer")
	}
	// A plain writer (no Closer) and a nil sink are both fine.
	if err := NewJSONL(&bytes.Buffer{}).Close(); err != nil {
		t.Fatal(err)
	}
	var nilJ *JSONL
	if err := nilJ.Close(); err != nil {
		t.Fatal(err)
	}

	var ev Event
	line := strings.TrimSpace(rec.String())
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatalf("span line %q: %v", line, err)
	}
	if ev.Trace == "" || ev.Span == "" {
		t.Fatalf("traced span must serialize its ids: %+v", ev)
	}
}
