package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// NewHTTPHandler builds the daemon telemetry plane:
//
//	/metrics       Prometheus text exposition of snap()
//	/healthz       liveness ("ok")
//	/debug/pprof/  net/http/pprof profiles (heap, goroutine, cpu, ...)
//
// The pprof handlers are wired onto the returned mux explicitly so the
// daemon never exposes them on http.DefaultServeMux.
func NewHTTPHandler(snap func() Snapshot) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap().WritePrometheus(w) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// HTTPServer is a running telemetry listener with its bound address.
type HTTPServer struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	srv  *http.Server
	ln   net.Listener
	once sync.Once
	err  error
}

// StartHTTP binds addr and serves h on it in a background goroutine.
// Close the returned server on shutdown.
func StartHTTP(addr string, h http.Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &HTTPServer{Addr: ln.Addr().String(), srv: &http.Server{Handler: h}, ln: ln}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	return s, nil
}

// Close stops the listener and in-flight handlers. Safe to call more
// than once.
func (s *HTTPServer) Close() error {
	if s == nil {
		return nil
	}
	s.once.Do(func() { s.err = s.srv.Close() })
	return s.err
}
