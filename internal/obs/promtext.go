package obs

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4), deterministically: metric names
// are sanitized to the Prometheus charset, entries keep the snapshot's
// (name, label) order, family labels are emitted under the "label"
// key, histograms expand to cumulative `_bucket` series plus `_sum`
// and `_count`, and rates render as gauges. Every snapshot of the same
// registry therefore serializes byte-identically modulo values — the
// golden-file test pins the format.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	pw := &promWriter{w: w}

	prev := ""
	for _, c := range s.Counters {
		name := PromName(c.Name)
		if name != prev {
			pw.printf("# TYPE %s counter\n", name)
			prev = name
		}
		pw.sample(name, c.Label, "", fmt.Sprintf("%d", c.Value))
	}
	prev = ""
	for _, g := range s.Gauges {
		name := PromName(g.Name)
		if name != prev {
			pw.printf("# TYPE %s gauge\n", name)
			prev = name
		}
		pw.sample(name, g.Label, "", fmt.Sprintf("%d", g.Value))
	}
	for _, r := range s.Rates {
		name := PromName(r.Name)
		pw.printf("# TYPE %s gauge\n", name)
		pw.sample(name, "", "", formatFloat(r.PerSecond))
	}
	prev = ""
	for _, h := range s.Histograms {
		name := PromName(h.Name)
		if name != prev {
			pw.printf("# TYPE %s histogram\n", name)
			prev = name
		}
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			pw.sample(name+"_bucket", h.Label, fmt.Sprintf("%d", bound), fmt.Sprintf("%d", cum))
		}
		pw.sample(name+"_bucket", h.Label, "+Inf", fmt.Sprintf("%d", h.Count))
		pw.sample(name+"_sum", h.Label, "", fmt.Sprintf("%d", h.Sum))
		pw.sample(name+"_count", h.Label, "", fmt.Sprintf("%d", h.Count))
	}
	return pw.err
}

// promWriter accumulates the first write error so rendering code stays
// linear.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// sample writes one sample line, attaching the family label (key
// "label") and/or the histogram bucket bound (key "le") when present.
func (p *promWriter) sample(name, label, le, value string) {
	var b strings.Builder
	b.WriteString(name)
	if label != "" || le != "" {
		b.WriteByte('{')
		if label != "" {
			b.WriteString(`label="`)
			b.WriteString(promEscape(label))
			b.WriteByte('"')
			if le != "" {
				b.WriteByte(',')
			}
		}
		if le != "" {
			b.WriteString(`le="`)
			b.WriteString(le)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	p.printf("%s %s\n", b.String(), value)
}

// PromName sanitizes a registry metric name ("wire.rpc_latency_us")
// into the Prometheus name charset [a-zA-Z_:][a-zA-Z0-9_:]*
// ("wire_rpc_latency_us").
func PromName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value per the exposition format:
// backslash, double quote, and newline.
func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float sample value without exponent noise for
// the common magnitudes telemetry produces.
func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}
