package obs

import (
	"math"
	"runtime"
	rtmetrics "runtime/metrics"
	"sync"
)

// Runtime self-observation metric names. Every daemon enables these so
// tail attribution can distinguish a runtime stall (GC pause,
// scheduler backlog) from a WAN stall.
const (
	MetricGoroutines     = "runtime.goroutines"
	MetricHeapAllocBytes = "runtime.heap_alloc_bytes"
	MetricHeapSysBytes   = "runtime.heap_sys_bytes"
	MetricHeapObjects    = "runtime.heap_objects"
	MetricGCCycles       = "runtime.gc_cycles"
	MetricGCPauseUS      = "runtime.gc_pause_us"
	MetricSchedP50US     = "runtime.sched_latency_p50_us"
	MetricSchedP99US     = "runtime.sched_latency_p99_us"
)

// GCPauseBuckets spans 10µs to ~327ms in ×2 steps — stop-the-world
// pauses in microseconds.
func GCPauseBuckets() []int64 { return ExpBuckets(10, 2, 16) }

const schedLatencyMetric = "/sched/latencies:seconds"

// EnableRuntimeStats registers a Snapshot-time collector that refreshes
// Go runtime gauges (goroutines, heap, GC cycles), feeds new GC pauses
// into a runtime.gc_pause_us histogram, and exposes scheduler-latency
// p50/p99 gauges from runtime/metrics. Idempotent per registry; no-op
// on a nil registry. Collection costs one ReadMemStats per Snapshot —
// acceptable on the scrape path, never on the query path.
func EnableRuntimeStats(r *Registry) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.runtimeEnabled {
		r.mu.Unlock()
		return
	}
	r.runtimeEnabled = true
	r.mu.Unlock()

	c := &runtimeCollector{
		goroutines:  r.Gauge(MetricGoroutines),
		heapAlloc:   r.Gauge(MetricHeapAllocBytes),
		heapSys:     r.Gauge(MetricHeapSysBytes),
		heapObjects: r.Gauge(MetricHeapObjects),
		gcCycles:    r.Gauge(MetricGCCycles),
		gcPause:     r.Histogram(MetricGCPauseUS, GCPauseBuckets()),
		schedP50:    r.Gauge(MetricSchedP50US),
		schedP99:    r.Gauge(MetricSchedP99US),
		samples:     []rtmetrics.Sample{{Name: schedLatencyMetric}},
	}
	r.RegisterCollector(c.collect)
}

type runtimeCollector struct {
	mu          sync.Mutex
	goroutines  *Gauge
	heapAlloc   *Gauge
	heapSys     *Gauge
	heapObjects *Gauge
	gcCycles    *Gauge
	gcPause     *Histogram
	schedP50    *Gauge
	schedP99    *Gauge
	lastNumGC   uint32
	samples     []rtmetrics.Sample
}

func (c *runtimeCollector) collect() {
	c.mu.Lock()
	defer c.mu.Unlock()

	c.goroutines.Set(int64(runtime.NumGoroutine()))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.heapAlloc.Set(int64(ms.HeapAlloc))
	c.heapSys.Set(int64(ms.HeapSys))
	c.heapObjects.Set(int64(ms.HeapObjects))
	c.gcCycles.Set(int64(ms.NumGC))

	// PauseNs is a circular buffer of the last 256 pauses; cycle i's
	// pause lives at index (i+255)%256. Feed only cycles newer than the
	// previous collection (capped at the buffer depth).
	if n := ms.NumGC; n > c.lastNumGC {
		lo := c.lastNumGC
		if n-lo > 256 {
			lo = n - 256
		}
		for i := lo + 1; i <= n; i++ {
			c.gcPause.Observe(int64(ms.PauseNs[(i+255)%256] / 1000))
		}
		c.lastNumGC = n
	}

	rtmetrics.Read(c.samples)
	if c.samples[0].Value.Kind() == rtmetrics.KindFloat64Histogram {
		h := c.samples[0].Value.Float64Histogram()
		c.schedP50.Set(int64(floatHistQuantile(h, 0.50) * 1e6))
		c.schedP99.Set(int64(floatHistQuantile(h, 0.99) * 1e6))
	}
}

// floatHistQuantile estimates the q-quantile of a runtime/metrics
// Float64Histogram, returning the upper bound of the bucket holding
// the rank (the lower bound when the bucket is unbounded above).
func floatHistQuantile(h *rtmetrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			// Bucket i spans [Buckets[i], Buckets[i+1]).
			hi := h.Buckets[i+1]
			if math.IsInf(hi, +1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return 0
}
