package obs

import (
	"testing"

	"bypassyield/internal/obs/ledger"
)

// The registry sits on every hot path of the federation — per-frame,
// per-access, per-row-scan — so increments and observations must not
// allocate. TestHotPathAllocFree asserts it; the benchmarks measure
// it (`go test -bench . -benchmem ./internal/obs/`).

func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", DefaultLatencyBuckets())
	cf := r.CounterFamily("cf")
	hf := r.HistogramFamily("hf", DefaultSizeBuckets())
	cf.Add("site", 1) // materialize the labels once
	hf.Observe("site", 1)

	rt := r.Rate("rate")
	rt.Add(1) // materialize the first slot once

	// Tracing disabled (nil tracer / nil sink): span start/end must
	// stay free — daemons run untraced by default.
	var off *Tracer
	parent := TraceContext{TraceID: 1, SpanID: 2}

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Add", func() { c.Add(1) }},
		{"Gauge.Set", func() { g.Set(42) }},
		{"Histogram.Observe", func() { h.Observe(12345) }},
		{"CounterFamily.Add", func() { cf.Add("site", 1) }},
		{"HistogramFamily.Observe", func() { hf.Observe("site", 77) }},
		{"Rate.Add", func() { rt.Add(64) }},
		{"Rate.PerSecond", func() { rt.PerSecond() }},
		{"disabled Root+End", func() { off.Root("q").End() }},
		{"disabled Child+End", func() { off.Child(parent, "leg").End() }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", tc.name, allocs)
		}
	}

	// Decision ledger: recording into a nil ledger (the disabled
	// default) must be free; an enabled ring without a sink may spend
	// at most one allocation per record.
	var off2 *ledger.Ledger
	rec := ledger.DecisionRecord{
		Policy: "rate-profile", Object: "edr/photoobj.ra", Action: "hit",
		Yield: 1 << 20, Size: 1 << 20, FetchCost: 1 << 20, RP: 0.5,
	}
	if allocs := testing.AllocsPerRun(1000, func() { off2.Record(rec) }); allocs != 0 {
		t.Errorf("disabled Ledger.Record allocates %.1f per op, want 0", allocs)
	}
	led := ledger.New(1024)
	if allocs := testing.AllocsPerRun(1000, func() { led.Record(rec) }); allocs > 1 {
		t.Errorf("enabled Ledger.Record allocates %.1f per op, want ≤ 1", allocs)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", DefaultLatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkCounterFamilyGet(b *testing.B) {
	f := NewRegistry().CounterFamily("f")
	f.Add("photo.sdss.org", 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Add("photo.sdss.org", 1)
	}
}

func BenchmarkHistogramFamilyObserve(b *testing.B) {
	f := NewRegistry().HistogramFamily("f", DefaultLatencyBuckets())
	f.Observe("photo.sdss.org", 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Observe("photo.sdss.org", int64(i))
	}
}

func BenchmarkRateAdd(b *testing.B) {
	r := NewRate(DefaultRateInterval, DefaultRateSlots)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add(1)
	}
}

func BenchmarkRateAddParallel(b *testing.B) {
	r := NewRate(DefaultRateInterval, DefaultRateSlots)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Add(1)
		}
	})
}

func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	parent := TraceContext{TraceID: 1, SpanID: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Child(parent, "leg").End()
	}
}

func BenchmarkTracedSpanRing(b *testing.B) {
	tr := NewTracer(NewRing(1024))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := tr.Root("q")
		tr.Child(root.Context(), "leg").End()
		root.End()
	}
}

func BenchmarkLedgerRecord(b *testing.B) {
	led := ledger.New(4096)
	rec := ledger.DecisionRecord{
		Policy: "rate-profile", Object: "edr/photoobj.ra", Action: "hit",
		Yield: 1 << 20, Size: 1 << 20, FetchCost: 1 << 20, RP: 0.5,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		led.Record(rec)
	}
}

func BenchmarkLedgerRecordDisabled(b *testing.B) {
	var led *ledger.Ledger
	rec := ledger.DecisionRecord{Policy: "rate-profile", Object: "o", Action: "bypass"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		led.Record(rec)
	}
}

func BenchmarkSnapshot(b *testing.B) {
	r := NewRegistry()
	for _, n := range []string{"a", "b", "c", "d"} {
		r.Counter(n).Inc()
		r.Histogram(n+".h", DefaultLatencyBuckets()).Observe(1)
		r.CounterFamily(n+".f").Add("l1", 1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Snapshot()
	}
}
