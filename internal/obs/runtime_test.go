package obs

import (
	"runtime"
	"testing"
)

func TestEnableRuntimeStats(t *testing.T) {
	r := NewRegistry()
	EnableRuntimeStats(r)
	EnableRuntimeStats(r) // idempotent: must not double-register

	runtime.GC() // guarantee at least one pause is observable

	s := r.Snapshot()
	if g := s.GaugeValue(MetricGoroutines); g <= 0 {
		t.Fatalf("runtime.goroutines = %d, want > 0", g)
	}
	if g := s.GaugeValue(MetricHeapAllocBytes); g <= 0 {
		t.Fatalf("runtime.heap_alloc_bytes = %d, want > 0", g)
	}
	if g := s.GaugeValue(MetricGCCycles); g <= 0 {
		t.Fatalf("runtime.gc_cycles = %d, want > 0", g)
	}
	h, ok := s.HistogramSnap(MetricGCPauseUS, "")
	if !ok {
		t.Fatal("runtime.gc_pause_us missing from snapshot")
	}
	if h.Count == 0 {
		t.Fatal("runtime.gc_pause_us has no observations after runtime.GC()")
	}

	// A second snapshot must not re-observe the same GC cycles.
	before := h.Count
	s2 := r.Snapshot()
	h2, _ := s2.HistogramSnap(MetricGCPauseUS, "")
	cycles := s2.GaugeValue(MetricGCCycles) - s.GaugeValue(MetricGCCycles)
	if h2.Count-before > cycles {
		t.Fatalf("gc_pause_us grew by %d but only %d GC cycles elapsed", h2.Count-before, cycles)
	}
}

func TestRegisterCollector(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.RegisterCollector(func() {
		calls++
		// Collectors may re-enter the registry without deadlocking.
		r.Gauge("test.collected").Set(int64(calls))
	})
	s := r.Snapshot()
	if calls != 1 {
		t.Fatalf("collector ran %d times, want 1", calls)
	}
	if v := s.GaugeValue("test.collected"); v != 1 {
		t.Fatalf("test.collected = %d, want 1", v)
	}
	r.Snapshot()
	if calls != 2 {
		t.Fatalf("collector ran %d times after two snapshots, want 2", calls)
	}
	var nilReg *Registry
	nilReg.RegisterCollector(func() {}) // must not panic
	EnableRuntimeStats(nilReg)          // must not panic
}
