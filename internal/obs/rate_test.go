package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeRate returns a tracker with a controllable clock starting at t0.
func fakeRate(interval time.Duration, slots int, t0 int64) (*Rate, *int64) {
	r := NewRate(interval, slots)
	now := t0
	r.now = func() int64 { return now }
	return r, &now
}

func TestRatePartialSlot(t *testing.T) {
	// 500ms into the first second: 1000 units → 2000/s.
	r, now := fakeRate(time.Second, 4, int64(10*time.Second))
	*now += int64(500 * time.Millisecond)
	r.Add(1000)
	if got := r.PerSecond(); got != 2000 {
		t.Fatalf("rate = %f, want 2000", got)
	}
}

func TestRateAcrossSlots(t *testing.T) {
	r, now := fakeRate(time.Second, 4, int64(100*time.Second))
	r.Add(100) // lands exactly on a slot boundary: a complete slot later
	*now += int64(time.Second)
	r.Add(300)
	*now += int64(time.Second) // both slots now complete
	// Two full seconds covered, 400 units. (The new current slot is
	// empty and holds a stale epoch, so it contributes nothing.)
	if got := r.PerSecond(); got != 200 {
		t.Fatalf("rate = %f, want 200", got)
	}
}

func TestRateWindowExpiry(t *testing.T) {
	r, now := fakeRate(time.Second, 3, int64(50*time.Second))
	r.Add(900)
	*now += int64(10 * time.Second) // far beyond the 3s window
	if got := r.PerSecond(); got != 0 {
		t.Fatalf("expired rate = %f, want 0", got)
	}
	// The stale slot recycles on the next add.
	r.Add(30)
	*now += int64(time.Second)
	if got := r.PerSecond(); got != 30 {
		t.Fatalf("recycled rate = %f, want 30", got)
	}
}

func TestRateIdleDecay(t *testing.T) {
	// Regression for window-boundary staleness: a burst followed by
	// idleness must decay on each scrape, not hold full burst
	// intensity until it falls off the window edge.
	r, now := fakeRate(time.Second, 4, int64(20*time.Second))
	r.Add(900) // epoch 20
	*now += int64(time.Second)
	if got := r.PerSecond(); got != 900 {
		t.Fatalf("after 1s: rate = %f, want 900", got)
	}
	*now += int64(2 * time.Second) // 3s since the burst slot began
	if got := r.PerSecond(); got != 300 {
		t.Fatalf("after 3s idle: rate = %f, want 300 (decayed)", got)
	}
	*now += int64(900 * time.Millisecond) // 3.9s: still inside the 4s window
	if got := r.PerSecond(); got >= 300 || got <= 0 {
		t.Fatalf("after 3.9s idle: rate = %f, want decayed below 300 but nonzero", got)
	}
}

func TestRateIdlePastWindowReadsZero(t *testing.T) {
	// A scrape after more than a full window of idleness reports 0.
	r, now := fakeRate(time.Second, 4, int64(20*time.Second))
	r.Add(900)
	*now += int64(4 * time.Second) // exactly one window later
	if got := r.PerSecond(); got != 0 {
		t.Fatalf("at window edge: rate = %f, want 0", got)
	}
	*now += int64(30 * time.Second) // far past the window
	if got := r.PerSecond(); got != 0 {
		t.Fatalf("past window: rate = %f, want 0", got)
	}
	// The tracker still works after the idle gap.
	r.Add(40)
	*now += int64(2 * time.Second)
	if got := r.PerSecond(); got != 20 {
		t.Fatalf("post-idle add: rate = %f, want 20", got)
	}
}

func TestRateNilAndDegenerate(t *testing.T) {
	var r *Rate
	r.Add(5)
	if r.PerSecond() != 0 || r.WindowSeconds() != 0 {
		t.Fatal("nil rate must be a no-op")
	}
	d := NewRate(0, 0)
	if d.WindowSeconds() != (DefaultRateInterval * DefaultRateSlots).Seconds() {
		t.Fatalf("degenerate params not clamped: window = %f", d.WindowSeconds())
	}
	if NewRate(time.Second, 4).PerSecond() != 0 {
		t.Fatal("untouched rate must read 0")
	}
}

func TestRateConcurrent(t *testing.T) {
	r := NewRate(time.Second, DefaultRateSlots)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Add(1)
				if j%100 == 0 {
					r.PerSecond()
				}
			}
		}()
	}
	wg.Wait()
	if r.PerSecond() <= 0 {
		t.Fatal("concurrent adds lost entirely")
	}
}

func TestRegistryRate(t *testing.T) {
	r := NewRegistry()
	rt := r.Rate("core.query_rate")
	if r.Rate("core.query_rate") != rt {
		t.Fatal("rate handle not stable")
	}
	rt.Add(10)
	s := r.Snapshot()
	if !s.HasRate("core.query_rate") {
		t.Fatalf("snapshot missing rate: %+v", s.Rates)
	}
	if s.RateValue("core.query_rate") < 0 {
		t.Fatal("negative rate")
	}
	if s.RateValue("absent") != 0 || s.HasRate("absent") {
		t.Fatal("missing rate should read 0")
	}
	// Nil registry safety.
	var nilReg *Registry
	nilReg.Rate("x").Add(1)
}
