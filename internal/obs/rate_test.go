package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeRate returns a tracker with a controllable clock starting at t0.
func fakeRate(interval time.Duration, slots int, t0 int64) (*Rate, *int64) {
	r := NewRate(interval, slots)
	now := t0
	r.now = func() int64 { return now }
	return r, &now
}

func TestRatePartialSlot(t *testing.T) {
	// 500ms into the first second: 1000 units → 2000/s.
	r, now := fakeRate(time.Second, 4, int64(10*time.Second))
	*now += int64(500 * time.Millisecond)
	r.Add(1000)
	if got := r.PerSecond(); got != 2000 {
		t.Fatalf("rate = %f, want 2000", got)
	}
}

func TestRateAcrossSlots(t *testing.T) {
	r, now := fakeRate(time.Second, 4, int64(100*time.Second))
	r.Add(100) // lands exactly on a slot boundary: a complete slot later
	*now += int64(time.Second)
	r.Add(300)
	*now += int64(time.Second) // both slots now complete
	// Two full seconds covered, 400 units. (The new current slot is
	// empty and holds a stale epoch, so it contributes nothing.)
	if got := r.PerSecond(); got != 200 {
		t.Fatalf("rate = %f, want 200", got)
	}
}

func TestRateWindowExpiry(t *testing.T) {
	r, now := fakeRate(time.Second, 3, int64(50*time.Second))
	r.Add(900)
	*now += int64(10 * time.Second) // far beyond the 3s window
	if got := r.PerSecond(); got != 0 {
		t.Fatalf("expired rate = %f, want 0", got)
	}
	// The stale slot recycles on the next add.
	r.Add(30)
	*now += int64(time.Second)
	if got := r.PerSecond(); got != 30 {
		t.Fatalf("recycled rate = %f, want 30", got)
	}
}

func TestRateNilAndDegenerate(t *testing.T) {
	var r *Rate
	r.Add(5)
	if r.PerSecond() != 0 || r.WindowSeconds() != 0 {
		t.Fatal("nil rate must be a no-op")
	}
	d := NewRate(0, 0)
	if d.WindowSeconds() != (DefaultRateInterval * DefaultRateSlots).Seconds() {
		t.Fatalf("degenerate params not clamped: window = %f", d.WindowSeconds())
	}
	if NewRate(time.Second, 4).PerSecond() != 0 {
		t.Fatal("untouched rate must read 0")
	}
}

func TestRateConcurrent(t *testing.T) {
	r := NewRate(time.Second, DefaultRateSlots)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Add(1)
				if j%100 == 0 {
					r.PerSecond()
				}
			}
		}()
	}
	wg.Wait()
	if r.PerSecond() <= 0 {
		t.Fatal("concurrent adds lost entirely")
	}
}

func TestRegistryRate(t *testing.T) {
	r := NewRegistry()
	rt := r.Rate("core.query_rate")
	if r.Rate("core.query_rate") != rt {
		t.Fatal("rate handle not stable")
	}
	rt.Add(10)
	s := r.Snapshot()
	if !s.HasRate("core.query_rate") {
		t.Fatalf("snapshot missing rate: %+v", s.Rates)
	}
	if s.RateValue("core.query_rate") < 0 {
		t.Fatal("negative rate")
	}
	if s.RateValue("absent") != 0 || s.HasRate("absent") {
		t.Fatal("missing rate should read 0")
	}
	// Nil registry safety.
	var nilReg *Registry
	nilReg.Rate("x").Add(1)
}
