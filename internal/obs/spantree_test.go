package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// emitTrace writes a two-level trace into the sink and returns its
// root context.
func emitTrace(tr *Tracer) TraceContext {
	root := tr.Root("proxy.query")
	m := tr.Child(root.Context(), "proxy.mediate")
	d := tr.Child(root.Context(), "proxy.decide", A("yield", "100"))
	x := tr.Child(d.Context(), "dbnode.execute")
	x.End()
	d.End()
	m.End()
	root.End()
	return root.Context()
}

func TestReadEventsAndBuildTraces(t *testing.T) {
	// Two daemons logging into separate JSONL buffers, one shared
	// trace; merge must produce one connected tree.
	var bufA, bufB bytes.Buffer
	trA := NewTracer(NewJSONL(&bufA))
	trB := NewTracer(NewJSONL(&bufB))

	root := trA.Root("proxy.query")
	leg := trA.Child(root.Context(), "proxy.fetch")
	remote := trB.Child(leg.Context(), "dbnode.fetch", A("object", "edr/photoobj"))
	remote.End(A("size", "42"))
	leg.End()
	root.End()

	evsA, err := ReadEvents(&bufA)
	if err != nil {
		t.Fatal(err)
	}
	evsB, err := ReadEvents(&bufB)
	if err != nil {
		t.Fatal(err)
	}
	traces := BuildTraces(append(evsA, evsB...))
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	tree := traces[0]
	if tree.ID != root.Context().TraceHex() {
		t.Fatalf("trace id = %q", tree.ID)
	}
	if len(tree.Roots) != 1 || tree.Orphans != 0 || tree.Spans != 3 {
		t.Fatalf("tree = roots %d orphans %d spans %d", len(tree.Roots), tree.Orphans, tree.Spans)
	}
	r := tree.Roots[0]
	if r.Name != "proxy.query" || len(r.Children) != 1 {
		t.Fatalf("root = %+v", r)
	}
	if r.Children[0].Name != "proxy.fetch" || len(r.Children[0].Children) != 1 {
		t.Fatalf("mid = %+v", r.Children[0])
	}
	if got := r.Children[0].Children[0]; got.Name != "dbnode.fetch" || got.AttrValue("size") != "42" {
		t.Fatalf("leaf = %+v", got)
	}
}

func TestBuildTracesMultipleAndOrphans(t *testing.T) {
	ring := NewRing(64)
	tr := NewTracer(ring)
	c1 := emitTrace(tr)
	time.Sleep(time.Millisecond) // order traces by start time
	c2 := emitTrace(tr)

	evs := ring.Events()
	// An orphan: parent id set but absent from the logs.
	evs = append(evs, Event{
		Time: time.Now(), Name: "lost",
		Trace: c2.TraceHex(), Span: FormatID(NewID()), Parent: FormatID(NewID()),
	})
	// An untraced event: ignored entirely.
	evs = append(evs, Event{Time: time.Now(), Name: "untraced"})

	traces := BuildTraces(evs)
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(traces))
	}
	if traces[0].ID != c1.TraceHex() || traces[1].ID != c2.TraceHex() {
		t.Fatal("traces not ordered by start time")
	}
	if traces[0].Orphans != 0 || traces[0].Spans != 4 {
		t.Fatalf("trace 1 = %+v", traces[0])
	}
	if traces[1].Orphans != 1 || len(traces[1].Roots) != 2 {
		t.Fatalf("orphan not promoted to root: %+v", traces[1])
	}

	var names []string
	traces[0].Walk(func(n *SpanNode, depth int) {
		names = append(names, strings.Repeat(">", depth)+n.Name)
	})
	want := "proxy.query >proxy.mediate >proxy.decide >>dbnode.execute"
	// mediate and decide order depends on start times (same ns tick is
	// possible); accept either sibling order.
	alt := "proxy.query >proxy.decide >>dbnode.execute >proxy.mediate"
	if got := strings.Join(names, " "); got != want && got != alt {
		t.Fatalf("walk = %q", got)
	}
}

func TestReadEventsErrors(t *testing.T) {
	if _, err := ReadEvents(strings.NewReader("{\"name\":\"ok\"}\n\nnot json\n")); err == nil {
		t.Fatal("malformed line should error")
	}
	evs, err := ReadEvents(strings.NewReader("\n\n"))
	if err != nil || len(evs) != 0 {
		t.Fatalf("blank log = %v, %v", evs, err)
	}
}
