package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestHTTPTelemetryPlane(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.accesses").Add(3)
	r.Rate("core.query_rate").Add(2)
	r.Histogram("federation.query_latency_us", []int64{10, 100}).Observe(7)

	srv, err := StartHTTP("127.0.0.1:0", NewHTTPHandler(r.Snapshot))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
	}

	code, ctype, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ctype)
	}
	for _, want := range []string{"core_accesses 3", "core_query_rate", "federation_query_latency_us_bucket"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	ValidatePrometheusText(t, body)

	if code, _, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	if code, _, _ := get("/absent"); code != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", code)
	}

	// Close is idempotent.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	var nilSrv *HTTPServer
	if err := nilSrv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStartHTTPBadAddr(t *testing.T) {
	if _, err := StartHTTP("256.256.256.256:0", http.NewServeMux()); err == nil {
		t.Fatal("bad address should fail to bind")
	}
}
