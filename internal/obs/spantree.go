package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// ReadEvents decodes a JSONL span log (one Event per line, as written
// by the JSONL sink). Blank lines are skipped; a malformed line is an
// error naming its position.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("obs: span log line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SpanNode is one span in a reconstructed trace tree.
type SpanNode struct {
	Event
	Children []*SpanNode
}

// TraceTree is one causal tree reconstructed from merged span logs —
// typically one client query spanning byproxyd and every bydbd it
// touched.
type TraceTree struct {
	// ID is the shared trace id (16 hex digits).
	ID string
	// Roots are the spans with no parent in the trace (a fully merged
	// healthy trace has exactly one, the proxy's per-query root).
	Roots []*SpanNode
	// Orphans counts spans whose parent id is set but missing from the
	// merged logs (truncated or partial log set). Orphaned spans are
	// promoted to Roots so no data is hidden.
	Orphans int
	// Spans is the total span count in the tree.
	Spans int
}

// BuildTraces groups traced events by trace id and resolves each
// parent pointer into a tree. Untraced events (no trace id) are
// ignored. Traces are ordered by their earliest span start; children
// within a span are ordered by start time.
func BuildTraces(events []Event) []TraceTree {
	byTrace := map[string][]Event{}
	for _, e := range events {
		if e.Trace == "" {
			continue
		}
		byTrace[e.Trace] = append(byTrace[e.Trace], e)
	}

	out := make([]TraceTree, 0, len(byTrace))
	for id, evs := range byTrace {
		tree := TraceTree{ID: id, Spans: len(evs)}
		nodes := make(map[string]*SpanNode, len(evs))
		order := make([]*SpanNode, 0, len(evs))
		for _, e := range evs {
			n := &SpanNode{Event: e}
			// Duplicate span ids (a re-emitted log) keep the first copy.
			if e.Span == "" || nodes[e.Span] == nil {
				if e.Span != "" {
					nodes[e.Span] = n
				}
				order = append(order, n)
			}
		}
		for _, n := range order {
			switch {
			case n.Parent == "":
				tree.Roots = append(tree.Roots, n)
			case nodes[n.Parent] != nil && nodes[n.Parent] != n:
				p := nodes[n.Parent]
				p.Children = append(p.Children, n)
			default:
				tree.Orphans++
				tree.Roots = append(tree.Roots, n)
			}
		}
		tree.Spans = len(order)
		var sortChildren func(n *SpanNode)
		sortChildren = func(n *SpanNode) {
			sort.SliceStable(n.Children, func(i, j int) bool {
				return n.Children[i].Time.Before(n.Children[j].Time)
			})
			for _, c := range n.Children {
				sortChildren(c)
			}
		}
		sort.SliceStable(tree.Roots, func(i, j int) bool {
			return tree.Roots[i].Time.Before(tree.Roots[j].Time)
		})
		for _, r := range tree.Roots {
			sortChildren(r)
		}
		out = append(out, tree)
	}
	sort.SliceStable(out, func(i, j int) bool {
		ti, tj := out[i].start(), out[j].start()
		if !ti.Equal(tj) {
			return ti.Before(tj)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func (t TraceTree) start() (min time.Time) {
	for i, r := range t.Roots {
		if i == 0 || r.Time.Before(min) {
			min = r.Time
		}
	}
	return min
}

// Bounds returns the trace's earliest span start and its total extent
// (latest span end minus earliest start) — the time axis of a
// waterfall rendering.
func (t TraceTree) Bounds() (start time.Time, total time.Duration) {
	start = t.start()
	var end time.Time
	t.Walk(func(n *SpanNode, _ int) {
		if n.Time.Before(start) {
			start = n.Time
		}
		if e := n.Time.Add(n.Duration); e.After(end) {
			end = e
		}
	})
	if !end.IsZero() {
		total = end.Sub(start)
	}
	return start, total
}

// Walk visits every span in the tree depth-first, with its depth
// (roots are depth 0).
func (t TraceTree) Walk(fn func(n *SpanNode, depth int)) {
	var walk func(n *SpanNode, depth int)
	walk = func(n *SpanNode, depth int) {
		fn(n, depth)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		walk(r, 0)
	}
}
