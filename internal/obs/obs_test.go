package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x") != c {
		t.Fatal("counter handle not stable across lookups")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramBucketsAndStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 5122 {
		t.Fatalf("count/sum = %d/%d", h.Count(), h.Sum())
	}
	s := r.Snapshot()
	hs, ok := s.HistogramSnap("lat", "")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	want := []int64{2, 2, 0, 1} // ≤10: {1,10}; ≤100: {11,100}; ≤1000: none; overflow: 5000
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
	if m := hs.Mean(); m != 5122.0/5 {
		t.Fatalf("mean = %f", m)
	}
	// Median falls in the ≤100 bucket; p99 is clamped to the last bound
	// (overflow observations are beyond the histogram's sight).
	if q := hs.Quantile(0.5); q != 100 {
		t.Fatalf("p50 = %d, want 100", q)
	}
	if q := hs.Quantile(0.99); q != 1000 {
		t.Fatalf("p99 = %d, want 1000", q)
	}
}

func TestFamilies(t *testing.T) {
	r := NewRegistry()
	f := r.CounterFamily("rpc_errors")
	f.Add("siteA", 2)
	f.Get("siteB").Inc()
	hf := r.HistogramFamily("rpc_latency", []int64{10, 100})
	hf.Observe("siteA", 50)

	s := r.Snapshot()
	if got := s.CounterValue("rpc_errors", "siteA"); got != 2 {
		t.Fatalf("siteA = %d, want 2", got)
	}
	if got := s.CounterTotal("rpc_errors"); got != 3 {
		t.Fatalf("total = %d, want 3", got)
	}
	if _, ok := s.HistogramSnap("rpc_latency", "siteA"); !ok {
		t.Fatal("labeled histogram missing")
	}

	gf := r.GaugeFamily("breaker_state")
	gf.Set("siteA", 2)
	gf.Get("siteB").Set(-1)
	gf.Set("siteA", 1) // overwrite, not accumulate
	s = r.Snapshot()
	if got := s.GaugeLabeled("breaker_state", "siteA"); got != 1 {
		t.Fatalf("siteA gauge = %d, want 1", got)
	}
	if got := s.GaugeLabeled("breaker_state", "siteB"); got != -1 {
		t.Fatalf("siteB gauge = %d, want -1", got)
	}
	var nilGF *GaugeFamily
	nilGF.Set("x", 1) // nil family must be a no-op
	if nilGF.Get("x") != nil {
		t.Fatal("nil gauge family should hand out nil gauges")
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	f := r.CounterFamily("a")
	f.Add("z", 1)
	f.Add("m", 1)
	s := r.Snapshot()
	var keys []string
	for _, c := range s.Counters {
		keys = append(keys, c.Name+"/"+c.Label)
	}
	want := []string{"a/", "a/m", "a/z", "b/"}
	if strings.Join(keys, " ") != strings.Join(want, " ") {
		t.Fatalf("order = %v, want %v", keys, want)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Histogram("h", []int64{1, 2}).Observe(1)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.CounterValue("c", "") != 3 {
		t.Fatalf("round trip lost counter: %+v", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Every accessor on a nil registry returns a nil handle whose
	// methods are no-ops; none of this may panic.
	r.Counter("x").Add(1)
	r.Counter("x").Inc()
	r.Gauge("g").Set(3)
	r.Histogram("h", nil).Observe(5)
	r.CounterFamily("f").Add("l", 1)
	r.CounterFamily("f").Get("l").Inc()
	r.HistogramFamily("hf", nil).Observe("l", 1)
	r.HistogramFamily("hf", nil).Get("l").Observe(1)
	if n := len(r.Snapshot().Counters); n != 0 {
		t.Fatalf("nil registry snapshot has %d counters", n)
	}
	var tr *Tracer
	tr.Event("e")
	tr.Start("s").End()
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.CounterFamily("f").Add("l", 1)
				r.Histogram("h", nil).Observe(int64(j))
				r.HistogramFamily("hf", nil).Observe("l", int64(j))
				if j%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.CounterValue("c", "") != 8000 || s.CounterValue("f", "l") != 8000 {
		t.Fatalf("lost increments: %+v", s.Counters)
	}
	h, _ := s.HistogramSnap("h", "")
	if h.Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(50, 2, 4)
	want := []int64{50, 100, 200, 400}
	for i, w := range want {
		if b[i] != w {
			t.Fatalf("buckets = %v, want %v", b, want)
		}
	}
	// Degenerate parameters are clamped sane.
	if b := ExpBuckets(0, 0, 2); b[0] != 1 || b[1] != 2 {
		t.Fatalf("clamped buckets = %v", b)
	}
}

func TestTracerRing(t *testing.T) {
	ring := NewRing(3)
	tr := NewTracer(ring)
	if !tr.Enabled() {
		t.Fatal("tracer should be enabled")
	}
	tr.Event("a", A("k", "v"))
	sp := tr.Start("span", A("site", "x"))
	time.Sleep(time.Millisecond)
	sp.End(A("ok", "true"))
	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Name != "a" || evs[0].Attrs[0] != (Attr{"k", "v"}) {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Duration <= 0 {
		t.Fatalf("span duration = %v", evs[1].Duration)
	}
	if len(evs[1].Attrs) != 2 || evs[1].Attrs[1] != (Attr{"ok", "true"}) {
		t.Fatalf("span attrs = %+v", evs[1].Attrs)
	}
	// Overflow keeps only the newest 3, oldest first.
	for _, n := range []string{"b", "c", "d"} {
		tr.Event(n)
	}
	evs = ring.Events()
	if len(evs) != 3 || evs[0].Name != "b" || evs[2].Name != "d" {
		t.Fatalf("ring overflow = %+v", evs)
	}
}

func TestTracerJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewJSONL(&buf))
	tr.Event("hello", A("x", "1"))
	tr.Event("world")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Name != "hello" || len(ev.Attrs) != 1 {
		t.Fatalf("decoded = %+v", ev)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnap
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram stats should be zero")
	}
	h := HistogramSnap{Bounds: []int64{10}, Counts: []int64{1, 0}, Count: 1, Sum: 5}
	if h.Quantile(-1) != 10 || h.Quantile(2) != 10 {
		t.Fatal("out-of-range q should clamp")
	}
}
