// Package obs is the federation's observability substrate: a
// dependency-free, concurrency-safe metrics registry plus a
// lightweight span/event tracer with pluggable sinks.
//
// The paper's whole argument is quantitative — every policy decision
// is justified by the byte flows D_S, D_L, D_C, D_A — so the running
// system carries the same discipline into operations: every layer
// (wire, core, engine, federation) registers counters, gauges, and
// fixed-bucket histograms here, and the proxy serves the registry's
// Snapshot over the wire protocol (MsgMetrics) for byinspect to
// render.
//
// Design constraints:
//
//   - Hot-path operations (Counter.Add, Gauge.Set, Histogram.Observe,
//     Family.Get on an existing label) are lock-free or read-locked
//     and allocation-free; see bench_test.go, which asserts zero
//     allocations.
//   - Every handle type is nil-safe: methods on a nil *Counter,
//     *Gauge, *Histogram, or *Registry are no-ops. Instrumented code
//     therefore holds plain handles and never branches on "is
//     telemetry enabled".
//   - Snapshot returns plain JSON-serializable values ordered
//     deterministically by (name, label), so snapshots diff cleanly
//     and travel over the wire unchanged.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram over int64 observations
// (latencies in microseconds, sizes in bytes, ...). Bucket i counts
// observations ≤ Bounds[i]; one implicit overflow bucket counts the
// rest. Observation is a linear scan over the (small, fixed) bound
// slice — allocation-free and cheap for the ≤ 32 buckets used here.
type Histogram struct {
	bounds []int64 // sorted upper bounds; immutable after construction
	counts []atomic.Int64
	sum    atomic.Int64
	n      atomic.Int64
}

// newHistogram builds a histogram over sorted upper bounds.
func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one observation. No-op on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Snap captures the histogram as a HistogramSnap (no name/label).
// Callers computing several quantiles should snap once and query the
// snap, so every percentile reads the same consistent view.
func (h *Histogram) Snap() HistogramSnap {
	if h == nil {
		return HistogramSnap{}
	}
	return h.snap("", "")
}

// Quantile returns an upper-bound estimate of the q-quantile of the
// live histogram (see HistogramSnap.Quantile — the one shared quantile
// implementation). Returns 0 on a nil or empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	return h.snap("", "").Quantile(q)
}

// snap captures the histogram under no lock; counts are individually
// atomic, so a snapshot taken during concurrent observation is a
// consistent-enough view (sum/count may lead the buckets by the
// in-flight observations).
func (h *Histogram) snap(name, label string) HistogramSnap {
	s := HistogramSnap{
		Name:   name,
		Label:  label,
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.n.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// ExpBuckets returns n exponentially growing bucket bounds starting
// at first and multiplying by factor: first, first·factor, ....
func ExpBuckets(first int64, factor float64, n int) []int64 {
	if first < 1 {
		first = 1
	}
	if factor <= 1 {
		factor = 2
	}
	out := make([]int64, 0, n)
	v := float64(first)
	for i := 0; i < n; i++ {
		out = append(out, int64(v))
		v *= factor
	}
	return out
}

// DefaultLatencyBuckets spans 50µs to ~26s in ×2 steps — RPC and
// query latencies in microseconds.
func DefaultLatencyBuckets() []int64 { return ExpBuckets(50, 2, 20) }

// DefaultSizeBuckets spans 1KiB to ~1TiB in ×4 steps — yields, frame
// sizes, object sizes in bytes.
func DefaultSizeBuckets() []int64 { return ExpBuckets(1024, 4, 16) }

// CounterFamily is a set of counters sharing one name, keyed by a
// label value ("per-site", "per-decision", ...).
type CounterFamily struct {
	mu    sync.RWMutex
	items map[string]*Counter
}

// Get returns the counter for a label, creating it on first use.
// Lookups of existing labels take only a read lock and do not
// allocate. Returns nil on a nil family.
func (f *CounterFamily) Get(label string) *Counter {
	if f == nil {
		return nil
	}
	f.mu.RLock()
	c := f.items[label]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c = f.items[label]; c == nil {
		c = &Counter{}
		f.items[label] = c
	}
	return c
}

// Add increments the labeled counter by n.
func (f *CounterFamily) Add(label string, n int64) { f.Get(label).Add(n) }

// GaugeFamily is a set of gauges sharing one name, keyed by a label
// value (per-site breaker states, per-shard occupancy, ...).
type GaugeFamily struct {
	mu    sync.RWMutex
	items map[string]*Gauge
}

// Get returns the gauge for a label, creating it on first use.
// Lookups of existing labels take only a read lock and do not
// allocate. Returns nil on a nil family.
func (f *GaugeFamily) Get(label string) *Gauge {
	if f == nil {
		return nil
	}
	f.mu.RLock()
	g := f.items[label]
	f.mu.RUnlock()
	if g != nil {
		return g
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if g = f.items[label]; g == nil {
		g = &Gauge{}
		f.items[label] = g
	}
	return g
}

// Set stores v under the label.
func (f *GaugeFamily) Set(label string, v int64) { f.Get(label).Set(v) }

// HistogramFamily is a set of histograms sharing one name and bucket
// layout, keyed by a label value.
type HistogramFamily struct {
	mu     sync.RWMutex
	bounds []int64
	items  map[string]*Histogram
}

// Get returns the histogram for a label, creating it on first use.
// Returns nil on a nil family.
func (f *HistogramFamily) Get(label string) *Histogram {
	if f == nil {
		return nil
	}
	f.mu.RLock()
	h := f.items[label]
	f.mu.RUnlock()
	if h != nil {
		return h
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if h = f.items[label]; h == nil {
		h = newHistogram(f.bounds)
		f.items[label] = h
	}
	return h
}

// Observe records an observation under a label.
func (f *HistogramFamily) Observe(label string, v int64) { f.Get(label).Observe(v) }

// Registry holds named metrics. All accessors are get-or-create and
// safe for concurrent use; handles are stable, so callers cache them
// once and hit only the atomic on the hot path. A nil *Registry is a
// valid no-op registry: every accessor returns a nil handle, whose
// methods are in turn no-ops.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	rates     map[string]*Rate
	cfamilies map[string]*CounterFamily
	gfamilies map[string]*GaugeFamily
	hfamilies map[string]*HistogramFamily

	// collectors run (unlocked) at the start of every Snapshot, so
	// pull-style sources (runtime stats, pool occupancy) can refresh
	// their gauges lazily instead of on a timer.
	collectors []func()
	// runtimeEnabled guards EnableRuntimeStats idempotency.
	runtimeEnabled bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Histogram),
		rates:     make(map[string]*Rate),
		cfamilies: make(map[string]*CounterFamily),
		gfamilies: make(map[string]*GaugeFamily),
		hfamilies: make(map[string]*HistogramFamily),
	}
}

// RegisterCollector adds a function that Snapshot invokes (without
// holding the registry lock) before capturing metric values.
// Collectors may freely touch the registry; they must be safe for
// concurrent use since overlapping Snapshots run them in parallel.
// No-op on a nil registry.
func (r *Registry) RegisterCollector(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (nil bounds select DefaultLatencyBuckets). The
// first creation fixes the bucket layout.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		if bounds == nil {
			bounds = DefaultLatencyBuckets()
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Rate returns the named sliding-window rate tracker, creating it
// with the default window (DefaultRateSlots × DefaultRateInterval) on
// first use.
func (r *Registry) Rate(name string) *Rate {
	return r.RateWindowed(name, DefaultRateInterval, DefaultRateSlots)
}

// RateWindowed returns the named rate tracker, creating it with the
// given slot layout on first use. The first creation fixes the window.
func (r *Registry) RateWindowed(name string, interval time.Duration, slots int) *Rate {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rt := r.rates[name]
	if rt == nil {
		rt = NewRate(interval, slots)
		r.rates[name] = rt
	}
	return rt
}

// CounterFamily returns the named counter family, creating it on
// first use.
func (r *Registry) CounterFamily(name string) *CounterFamily {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.cfamilies[name]
	if f == nil {
		f = &CounterFamily{items: make(map[string]*Counter)}
		r.cfamilies[name] = f
	}
	return f
}

// GaugeFamily returns the named gauge family, creating it on first
// use.
func (r *Registry) GaugeFamily(name string) *GaugeFamily {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.gfamilies[name]
	if f == nil {
		f = &GaugeFamily{items: make(map[string]*Gauge)}
		r.gfamilies[name] = f
	}
	return f
}

// HistogramFamily returns the named histogram family, creating it
// with the given bounds on first use (nil bounds select
// DefaultLatencyBuckets).
func (r *Registry) HistogramFamily(name string, bounds []int64) *HistogramFamily {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.hfamilies[name]
	if f == nil {
		if bounds == nil {
			bounds = DefaultLatencyBuckets()
		}
		b := make([]int64, len(bounds))
		copy(b, bounds)
		f = &HistogramFamily{bounds: b, items: make(map[string]*Histogram)}
		r.hfamilies[name] = f
	}
	return f
}
