package flightrec

import (
	"sort"
	"strconv"
)

// attribute computes the exemplar's critical-path breakdown: which
// phase the query's wall time is blocked on. The query pipeline is
// serial (execute → decide-wait → decide → legs → encode) except the
// WAN legs, which run in parallel — so only the critical leg (the one
// finishing last) can be on the blocking path, and its time splits
// into pool wait vs. wire round trip. Time none of the instrumented
// phases account for goes to "runtime-gc" when a GC cycle ended
// inside the query window, else to "other" (scheduler delay,
// uninstrumented glue).
func attribute(e *Exemplar) {
	points := make([]CausePoint, 0, 8)
	var accounted int64
	add := func(cause string, us int64) {
		if us > 0 {
			points = append(points, CausePoint{Cause: cause, US: us})
			accounted += us
		}
	}
	add(CauseExecute, e.ExecUS)
	if len(e.ShardWaits) > 0 {
		// Sharded decision plane: attribute the blocked time to the
		// specific partitions, so a hot shard shows up by name.
		for _, w := range e.ShardWaits {
			add(CauseDecideWait+":s"+strconv.Itoa(w.Shard), w.WaitUS)
		}
	} else {
		add(CauseDecideWait, e.DecideWaitUS)
	}
	add(CauseDecide, e.DecideUS)
	add(CauseEncode, e.EncodeUS)

	var crit *LegRec
	for i := range e.Legs {
		l := &e.Legs[i]
		if crit == nil || l.StartUS+l.WallUS > crit.StartUS+crit.WallUS {
			crit = l
		}
	}
	if crit != nil {
		add(CausePoolWait, crit.PoolWaitUS)
		wan := crit.RPCUS
		if slack := crit.WallUS - crit.PoolWaitUS - crit.RPCUS; slack > 0 {
			// Retries and coalesced-fetch waits land in wall time but not
			// in the final RPC; they are still time spent on that site.
			wan += slack
		}
		add("wan:"+crit.Site, wan)
	}

	if other := e.DurUS - accounted; other > 0 {
		start := e.Start.UnixNano()
		end := start + e.DurUS*1000
		gcEnd := e.Runtime.LastGCUnixNano
		if gcEnd >= start && gcEnd <= end && e.Runtime.LastGCPauseUS > 0 {
			gc := e.Runtime.LastGCPauseUS
			if gc > other {
				gc = other
			}
			add(CauseRuntimeGC, gc)
			other -= gc
		}
		add(CauseOther, other)
	}

	sort.Slice(points, func(i, j int) bool {
		if points[i].US != points[j].US {
			return points[i].US > points[j].US
		}
		return points[i].Cause < points[j].Cause
	})
	e.Attribution = points
	if len(points) > 0 {
		e.Cause = points[0].Cause
		e.CauseUS = points[0].US
	}
}
