// Package flightrec is the federation's always-on flight recorder:
// a bounded, lock-free ring of full per-query exemplars captured for
// every query that breaches a latency threshold, errors, or is served
// degraded — plus reservoir-sampled "normal" exemplars for contrast.
//
// The paper argues about byte flows; operations argue about tails. A
// p99 violation can originate in the decision plane (mediator lock
// wait), a WAN leg, a connection-pool wait, result encoding, or the
// runtime itself (GC pause) — and aggregate histograms cannot say
// which. The recorder keeps the evidence: each exemplar carries the
// query's decision record, per-leg wire timings, phase durations, a
// runtime snapshot, and a computed critical-path attribution naming
// the dominant cause.
//
// Design constraints mirror package obs and obs/ledger:
//
//   - The non-exceeding fast path (Begin → timings → Finish below
//     threshold, no error, not degraded, reservoir disabled) is
//     allocation-free in steady state: captures are pooled and their
//     slices are reused. bench_test.go asserts zero allocations.
//   - Publication is the slow path and may allocate freely (copying
//     the capture, reading MemStats, formatting ids).
//   - A nil *Recorder and nil *Capture are valid no-ops, so call
//     sites thread them unconditionally.
package flightrec

import (
	"encoding/json"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bypassyield/internal/obs"
)

// Exemplar outcomes.
const (
	OutcomeSlow     = "slow"     // latency ≥ threshold
	OutcomeError    = "error"    // query failed
	OutcomeDegraded = "degraded" // served with forced-stale or failed legs
	OutcomeNormal   = "normal"   // reservoir-sampled healthy query
)

// Attribution cause labels (see attrib.go). WAN legs use "wan:<site>".
const (
	CauseExecute    = "server-execute"
	CausePoolWait   = "pool-wait"
	CauseDecideWait = "decide-wait"
	CauseDecide     = "decide"
	CauseEncode     = "encode"
	CauseRuntimeGC  = "runtime-gc"
	CauseOther      = "other"
)

// LegRec is one WAN leg's timing inside an exemplar.
type LegRec struct {
	// Site is the remote federation member.
	Site string `json:"site"`
	// Kind is "fetch" (object load) or "subquery" (bypass ship).
	Kind string `json:"kind"`
	// Object is the object id (fetches) or target table (subqueries).
	Object string `json:"object,omitempty"`
	// StartUS is the leg's start offset from query start, microseconds.
	StartUS int64 `json:"start_us"`
	// PoolWaitUS is time spent waiting for a pooled connection.
	PoolWaitUS int64 `json:"pool_wait_us"`
	// RPCUS is the wire round-trip (write request, read response).
	RPCUS int64 `json:"rpc_us"`
	// WallUS is the leg's total wall time (≥ PoolWaitUS + RPCUS;
	// includes retries and coalesced-fetch waits).
	WallUS int64 `json:"wall_us"`
	// Err is the transport error, if the leg failed.
	Err string `json:"err,omitempty"`
}

// DecisionRec is one per-object cache decision inside an exemplar.
type DecisionRec struct {
	Object string `json:"object"`
	Site   string `json:"site"`
	Yield  int64  `json:"yield"`
	Action string `json:"action"`
	Reason string `json:"reason,omitempty"`
}

// BreakerRec is one site's circuit-breaker state at capture time.
type BreakerRec struct {
	Site  string `json:"site"`
	State string `json:"state"`
}

// RuntimeSnap is the Go runtime's state when the exemplar published.
type RuntimeSnap struct {
	Goroutines     int   `json:"goroutines"`
	HeapAllocBytes int64 `json:"heap_alloc_bytes"`
	GCCycles       int64 `json:"gc_cycles"`
	// LastGCPauseUS is the most recent stop-the-world pause.
	LastGCPauseUS int64 `json:"last_gc_pause_us"`
	// LastGCUnixNano is when the last GC cycle ended (0 = never).
	LastGCUnixNano int64 `json:"last_gc_unix_nano"`
}

// CausePoint is one attributed slice of an exemplar's duration.
type CausePoint struct {
	Cause string `json:"cause"`
	US    int64  `json:"us"`
}

// ShardWaitRec is the time one query spent blocked on one decision
// partition's lock.
type ShardWaitRec struct {
	Shard  int   `json:"shard"`
	WaitUS int64 `json:"wait_us"`
}

// Exemplar is one recorded query: identity, phase timings, the span
// tree (legs), the decision record, and the computed attribution.
type Exemplar struct {
	// Seq is the recorder sequence number (1-based).
	Seq uint64 `json:"seq"`
	// Trace is the query's 16-hex trace id ("" when untraced).
	Trace string `json:"trace,omitempty"`
	// SQL is the query text.
	SQL string `json:"sql,omitempty"`
	// Start is the query's wall-clock start.
	Start time.Time `json:"start"`
	// DurUS is the total query duration in microseconds.
	DurUS int64 `json:"dur_us"`
	// Outcome is slow | error | degraded | normal.
	Outcome string `json:"outcome"`
	// Err is the query error, for error exemplars.
	Err string `json:"err,omitempty"`

	// Phase timings (microseconds). ExecUS is server-side statement
	// execution; DecideWaitUS is total time blocked on decision-
	// partition locks; DecideUS is the decision work itself; EncodeUS
	// is result serialization back to the client.
	ExecUS       int64 `json:"exec_us"`
	DecideWaitUS int64 `json:"decide_wait_us"`
	DecideUS     int64 `json:"decide_us"`
	EncodeUS     int64 `json:"encode_us"`
	// ShardWaits breaks DecideWaitUS down per decision partition the
	// query touched (absent on single-partition planes' records and
	// zero-access queries).
	ShardWaits []ShardWaitRec `json:"shard_waits,omitempty"`

	Legs      []LegRec      `json:"legs,omitempty"`
	Decisions []DecisionRec `json:"decisions,omitempty"`
	Breakers  []BreakerRec  `json:"breakers,omitempty"`
	Runtime   RuntimeSnap   `json:"runtime"`

	// Cause is the dominant attributed cause; CauseUS its share.
	Cause   string `json:"cause,omitempty"`
	CauseUS int64  `json:"cause_us,omitempty"`
	// Attribution is the full breakdown, largest first.
	Attribution []CausePoint `json:"attribution,omitempty"`
}

// Config sizes a Recorder.
type Config struct {
	// Capacity is the exemplar ring size (≤ 0 → 256).
	Capacity int
	// Threshold is the latency above which every query is captured
	// (≤ 0 → 250ms).
	Threshold time.Duration
	// SampleEvery publishes every Nth healthy query as a "normal"
	// exemplar for contrast (≤ 0 disables the reservoir — required
	// for a fully allocation-free fast path).
	SampleEvery int
}

// DefaultConfig is the always-on daemon configuration.
func DefaultConfig() Config {
	return Config{Capacity: 256, Threshold: 250 * time.Millisecond, SampleEvery: 256}
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.Threshold <= 0 {
		c.Threshold = 250 * time.Millisecond
	}
	return c
}

// Sink consumes published exemplars (in addition to the ring).
// Implementations must tolerate concurrent calls.
type Sink interface {
	Exemplar(Exemplar)
}

// Recorder is the bounded exemplar ring. Construct with New; nil is a
// valid no-op recorder.
type Recorder struct {
	cfg      Config
	slots    []slot
	seq      atomic.Uint64 // published exemplars
	observed atomic.Uint64 // all finished captures
	pool     sync.Pool
	sink     Sink            // set before recording starts
	annotate func(*Exemplar) // set before recording starts

	// Registry handles (nil-safe when no registry was attached).
	exemplars   *obs.CounterFamily // obs.exemplars{outcome}
	tailCause   *obs.CounterFamily // obs.tail_cause{cause} — dominant
	tailCauseUS *obs.CounterFamily // obs.tail_cause_us{cause} — all µs
}

type slot struct {
	ex atomic.Pointer[Exemplar]
}

// New returns a recorder. r may be nil (no counters exported).
func New(cfg Config, r *obs.Registry) *Recorder {
	cfg = cfg.withDefaults()
	rec := &Recorder{
		cfg:         cfg,
		slots:       make([]slot, cfg.Capacity),
		exemplars:   r.CounterFamily("obs.exemplars"),
		tailCause:   r.CounterFamily("obs.tail_cause"),
		tailCauseUS: r.CounterFamily("obs.tail_cause_us"),
	}
	rec.pool.New = func() any { return new(Capture) }
	return rec
}

// SetSink attaches a sink receiving every published exemplar (e.g. a
// JSONL file). Call before recording starts. Nil-safe.
func (r *Recorder) SetSink(s Sink) {
	if r == nil {
		return
	}
	r.sink = s
}

// SetAnnotate attaches a hook run on every exemplar before it
// publishes — the proxy uses it to stamp breaker states. Call before
// recording starts. Nil-safe.
func (r *Recorder) SetAnnotate(fn func(*Exemplar)) {
	if r == nil {
		return
	}
	r.annotate = fn
}

// ThresholdUS returns the capture threshold in microseconds.
func (r *Recorder) ThresholdUS() int64 {
	if r == nil {
		return 0
	}
	return r.cfg.Threshold.Microseconds()
}

// Cap returns the ring capacity (0 on nil).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Observed returns the number of finished captures (published or not).
func (r *Recorder) Observed() uint64 {
	if r == nil {
		return 0
	}
	return r.observed.Load()
}

// Published returns the number of exemplars ever published.
func (r *Recorder) Published() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Begin starts a capture. Returns nil (a valid no-op capture) on a
// nil recorder. Allocation-free in steady state: captures are pooled.
func (r *Recorder) Begin() *Capture {
	if r == nil {
		return nil
	}
	c := r.pool.Get().(*Capture)
	c.start = time.Now()
	return c
}

// Finish completes a capture, publishing an exemplar when the query
// erred, was degraded, breached the threshold, or hit the reservoir —
// and recycling the capture either way. Nil-safe in both arguments.
func (r *Recorder) Finish(c *Capture, err error) {
	if r == nil || c == nil {
		return
	}
	n := r.observed.Add(1)
	dur := time.Since(c.start)
	outcome := ""
	switch {
	case err != nil:
		outcome = OutcomeError
	case c.degraded:
		outcome = OutcomeDegraded
	case dur >= r.cfg.Threshold:
		outcome = OutcomeSlow
	case r.cfg.SampleEvery > 0 && n%uint64(r.cfg.SampleEvery) == 0:
		outcome = OutcomeNormal
	}
	if outcome != "" {
		r.publish(c, err, dur, outcome)
	}
	c.reset()
	r.pool.Put(c)
}

// publish copies the capture into an immutable Exemplar, attributes
// its critical path, and stores it in the ring. Slow path: allocates.
func (r *Recorder) publish(c *Capture, err error, dur time.Duration, outcome string) {
	e := &Exemplar{
		Trace:        obs.FormatID(c.trace),
		SQL:          c.sql,
		Start:        c.start,
		DurUS:        dur.Microseconds(),
		Outcome:      outcome,
		ExecUS:       c.execUS,
		DecideWaitUS: c.decideWaitUS,
		DecideUS:     c.decideUS,
		EncodeUS:     c.encodeUS,
	}
	if err != nil {
		e.Err = err.Error()
	}
	c.mu.Lock()
	if len(c.legs) > 0 {
		e.Legs = make([]LegRec, len(c.legs))
		copy(e.Legs, c.legs)
	}
	c.mu.Unlock()
	if len(c.decisions) > 0 {
		e.Decisions = make([]DecisionRec, len(c.decisions))
		copy(e.Decisions, c.decisions)
	}
	if len(c.shardWaits) > 0 {
		e.ShardWaits = make([]ShardWaitRec, len(c.shardWaits))
		copy(e.ShardWaits, c.shardWaits)
	}
	e.Runtime = readRuntime()
	attribute(e)
	if r.annotate != nil {
		r.annotate(e)
	}
	seq := r.seq.Add(1)
	e.Seq = seq
	r.slots[(seq-1)%uint64(len(r.slots))].ex.Store(e)

	r.exemplars.Add(outcome, 1)
	if outcome != OutcomeNormal {
		r.tailCause.Add(e.Cause, 1)
		for _, p := range e.Attribution {
			r.tailCauseUS.Add(p.Cause, p.US)
		}
	}
	if r.sink != nil {
		r.sink.Exemplar(*e)
	}
}

// Snapshot returns the retained exemplars oldest-first. Slots claimed
// but not yet published, or overwritten by a ring wrap mid-read, are
// skipped. Nil on a nil recorder.
func (r *Recorder) Snapshot() []Exemplar {
	if r == nil {
		return nil
	}
	seq := r.seq.Load()
	if seq == 0 {
		return nil
	}
	n := uint64(len(r.slots))
	lo := uint64(1)
	if seq > n {
		lo = seq - n + 1
	}
	out := make([]Exemplar, 0, seq-lo+1)
	for s := lo; s <= seq; s++ {
		ex := r.slots[(s-1)%n].ex.Load()
		if ex == nil || ex.Seq != s {
			continue
		}
		out = append(out, *ex)
	}
	return out
}

func readRuntime() RuntimeSnap {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := RuntimeSnap{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: int64(ms.HeapAlloc),
		GCCycles:       int64(ms.NumGC),
		LastGCUnixNano: int64(ms.LastGC),
	}
	if ms.NumGC > 0 {
		s.LastGCPauseUS = int64(ms.PauseNs[(ms.NumGC+255)%256] / 1000)
	}
	return s
}

// Capture accumulates one query's evidence between Begin and Finish.
// All methods are nil-safe; Leg is safe for concurrent use (parallel
// WAN legs record from their own goroutines).
type Capture struct {
	start        time.Time
	sql          string
	trace        uint64
	degraded     bool
	execUS       int64
	decideWaitUS int64
	decideUS     int64
	encodeUS     int64
	shardWaits   []ShardWaitRec
	decisions    []DecisionRec
	mu           sync.Mutex
	legs         []LegRec
}

func (c *Capture) reset() {
	c.sql = ""
	c.trace = 0
	c.degraded = false
	c.execUS, c.decideWaitUS, c.decideUS, c.encodeUS = 0, 0, 0, 0
	c.shardWaits = c.shardWaits[:0]
	c.decisions = c.decisions[:0]
	c.legs = c.legs[:0]
}

// Now returns the capture-relative clock in microseconds (leg start
// offsets). 0 on a nil capture.
func (c *Capture) Now() int64 {
	if c == nil {
		return 0
	}
	return time.Since(c.start).Microseconds()
}

// SetQuery records the query's identity.
func (c *Capture) SetQuery(sql string, trace uint64) {
	if c == nil {
		return
	}
	c.sql = sql
	c.trace = trace
}

// SetDegraded marks the capture as a degraded result.
func (c *Capture) SetDegraded(v bool) {
	if c == nil {
		return
	}
	c.degraded = v
}

// SetMediation records the mediation phase timings (microseconds).
func (c *Capture) SetMediation(execUS, decideWaitUS, decideUS int64) {
	if c == nil {
		return
	}
	c.execUS = execUS
	c.decideWaitUS = decideWaitUS
	c.decideUS = decideUS
}

// ShardWait appends one decision partition's lock wait. The backing
// array is pooled with the capture, so steady-state appends do not
// allocate.
func (c *Capture) ShardWait(shard int, waitUS int64) {
	if c == nil {
		return
	}
	c.shardWaits = append(c.shardWaits, ShardWaitRec{Shard: shard, WaitUS: waitUS})
}

// SetEncodeUS records the result-encoding duration.
func (c *Capture) SetEncodeUS(us int64) {
	if c == nil {
		return
	}
	c.encodeUS = us
}

// Decision appends one per-object cache decision. Strings must be
// interned constants or pre-existing ids (no per-call formatting), so
// appending does not allocate beyond slice growth.
func (c *Capture) Decision(object, site, action, reason string, yield int64) {
	if c == nil {
		return
	}
	c.decisions = append(c.decisions, DecisionRec{
		Object: object, Site: site, Yield: yield, Action: action, Reason: reason,
	})
}

// Leg appends one WAN leg's timing. Safe for concurrent use.
func (c *Capture) Leg(site, kind, object string, startUS, poolWaitUS, rpcUS, wallUS int64, err error) {
	if c == nil {
		return
	}
	rec := LegRec{
		Site: site, Kind: kind, Object: object,
		StartUS: startUS, PoolWaitUS: poolWaitUS, RPCUS: rpcUS, WallUS: wallUS,
	}
	if err != nil {
		rec.Err = err.Error()
		c.SetDegraded(true)
	}
	c.mu.Lock()
	c.legs = append(c.legs, rec)
	c.mu.Unlock()
}

// JSONL is a sink appending one JSON object per exemplar, for offline
// tail forensics (byproxyd -exemplar-out).
type JSONL struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
}

// NewJSONL wraps a writer.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: w, enc: json.NewEncoder(w)}
}

// Exemplar implements Sink. Encoding errors are dropped: the recorder
// must never fail the query it describes.
func (j *JSONL) Exemplar(e Exemplar) {
	j.mu.Lock()
	j.enc.Encode(e) //nolint:errcheck
	j.mu.Unlock()
}

// Close closes the underlying writer when it is an io.Closer. Nil-safe.
func (j *JSONL) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if c, ok := j.w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Filter trims exemplars to those matching outcome (""=all) and
// DurUS ≥ minUS, keeping the most recent limit (≤ 0 = all).
func Filter(exs []Exemplar, outcome string, minUS int64, limit int) []Exemplar {
	out := make([]Exemplar, 0, len(exs))
	for _, e := range exs {
		if outcome != "" && e.Outcome != outcome {
			continue
		}
		if e.DurUS < minUS {
			continue
		}
		out = append(out, e)
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}
