package flightrec

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"bypassyield/internal/obs"
)

func testRecorder(t *testing.T, cfg Config) (*Recorder, *obs.Registry) {
	t.Helper()
	r := obs.NewRegistry()
	return New(cfg, r), r
}

func TestPublishOutcomes(t *testing.T) {
	rec, reg := testRecorder(t, Config{Capacity: 16, Threshold: time.Hour})

	c := rec.Begin()
	c.SetQuery("select 1", 0xabc)
	rec.Finish(c, errors.New("boom"))

	c = rec.Begin()
	c.SetQuery("select 2", 0)
	c.SetDegraded(true)
	rec.Finish(c, nil)

	c = rec.Begin()
	c.SetQuery("select 3", 0)
	rec.Finish(c, nil) // healthy, under threshold, no reservoir → dropped

	exs := rec.Snapshot()
	if len(exs) != 2 {
		t.Fatalf("published %d exemplars, want 2", len(exs))
	}
	if exs[0].Outcome != OutcomeError || exs[0].Err != "boom" {
		t.Fatalf("first exemplar %+v, want error/boom", exs[0])
	}
	if exs[0].Trace != "0000000000000abc" {
		t.Fatalf("trace = %q", exs[0].Trace)
	}
	if exs[1].Outcome != OutcomeDegraded {
		t.Fatalf("second exemplar outcome %q, want degraded", exs[1].Outcome)
	}
	if rec.Observed() != 3 || rec.Published() != 2 {
		t.Fatalf("observed/published = %d/%d, want 3/2", rec.Observed(), rec.Published())
	}
	s := reg.Snapshot()
	if v := s.CounterValue("obs.exemplars", OutcomeError); v != 1 {
		t.Fatalf("obs.exemplars{error} = %d, want 1", v)
	}
	if v := s.CounterTotal("obs.tail_cause"); v != 2 {
		t.Fatalf("obs.tail_cause total = %d, want 2", v)
	}
	if exs[0].Runtime.Goroutines <= 0 {
		t.Fatal("runtime snapshot missing from exemplar")
	}
}

func TestThresholdAndReservoir(t *testing.T) {
	rec, _ := testRecorder(t, Config{Capacity: 16, Threshold: time.Nanosecond})
	c := rec.Begin()
	c.SetQuery("slow", 0)
	time.Sleep(50 * time.Microsecond)
	rec.Finish(c, nil)
	exs := rec.Snapshot()
	if len(exs) != 1 || exs[0].Outcome != OutcomeSlow {
		t.Fatalf("exemplars %+v, want one slow", exs)
	}
	if exs[0].DurUS <= 0 {
		t.Fatal("slow exemplar has zero duration")
	}

	rec, _ = testRecorder(t, Config{Capacity: 16, Threshold: time.Hour, SampleEvery: 4})
	for i := 0; i < 8; i++ {
		rec.Finish(rec.Begin(), nil)
	}
	exs = rec.Snapshot()
	if len(exs) != 2 {
		t.Fatalf("reservoir published %d, want 2 (every 4th of 8)", len(exs))
	}
	for _, e := range exs {
		if e.Outcome != OutcomeNormal {
			t.Fatalf("reservoir outcome %q, want normal", e.Outcome)
		}
	}
}

func TestAttributionCriticalLeg(t *testing.T) {
	rec, reg := testRecorder(t, Config{Capacity: 16, Threshold: time.Nanosecond})
	c := rec.Begin()
	c.SetQuery("select specobj join photoobj", 7)
	c.SetMediation(100, 20, 30)
	c.SetEncodeUS(10)
	// Two parallel legs: spec finishes last and dominates.
	c.Leg("photo.sdss.org", "fetch", "edr/photoobj", 0, 5, 200, 210, nil)
	c.Leg("spec.sdss.org", "subquery", "specobj", 0, 40, 9000, 9100, nil)
	c.Decision("edr/photoobj", "photo.sdss.org", "load", "", 1024)
	time.Sleep(time.Millisecond)
	rec.Finish(c, nil)

	exs := rec.Snapshot()
	if len(exs) != 1 {
		t.Fatalf("published %d, want 1", len(exs))
	}
	e := exs[0]
	if e.Cause != "wan:spec.sdss.org" {
		t.Fatalf("dominant cause %q, want wan:spec.sdss.org (attribution %+v)", e.Cause, e.Attribution)
	}
	if len(e.Legs) != 2 || len(e.Decisions) != 1 {
		t.Fatalf("legs/decisions = %d/%d, want 2/1", len(e.Legs), len(e.Decisions))
	}
	// Attribution covers the critical leg's slack (wall − pool − rpc).
	if e.CauseUS != 9000+(9100-40-9000) {
		t.Fatalf("cause_us = %d, want 9060", e.CauseUS)
	}
	s := reg.Snapshot()
	if v := s.CounterValue("obs.tail_cause", "wan:spec.sdss.org"); v != 1 {
		t.Fatalf("obs.tail_cause{wan:spec.sdss.org} = %d, want 1", v)
	}
	if v := s.CounterValue("obs.tail_cause_us", "pool-wait"); v != 40 {
		t.Fatalf("obs.tail_cause_us{pool-wait} = %d, want 40", v)
	}
}

func TestLegErrorMarksDegraded(t *testing.T) {
	rec, _ := testRecorder(t, Config{Capacity: 4, Threshold: time.Hour})
	c := rec.Begin()
	c.Leg("spec.sdss.org", "fetch", "edr/specobj", 0, 0, 100, 100, errors.New("reset"))
	rec.Finish(c, nil)
	exs := rec.Snapshot()
	if len(exs) != 1 || exs[0].Outcome != OutcomeDegraded {
		t.Fatalf("exemplars %+v, want one degraded", exs)
	}
	if exs[0].Legs[0].Err != "reset" {
		t.Fatalf("leg err %q", exs[0].Legs[0].Err)
	}
}

func TestRingWrap(t *testing.T) {
	rec, _ := testRecorder(t, Config{Capacity: 4, Threshold: time.Nanosecond})
	for i := 0; i < 10; i++ {
		rec.Finish(rec.Begin(), nil)
	}
	exs := rec.Snapshot()
	if len(exs) != 4 {
		t.Fatalf("snapshot holds %d, want 4", len(exs))
	}
	for i, e := range exs {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("exemplar %d seq %d, want %d", i, e.Seq, want)
		}
	}
}

func TestAnnotate(t *testing.T) {
	rec, _ := testRecorder(t, Config{Capacity: 4, Threshold: time.Nanosecond})
	rec.SetAnnotate(func(e *Exemplar) {
		e.Breakers = append(e.Breakers, BreakerRec{Site: "spec.sdss.org", State: "open"})
	})
	rec.Finish(rec.Begin(), nil)
	exs := rec.Snapshot()
	if len(exs) != 1 || len(exs[0].Breakers) != 1 || exs[0].Breakers[0].State != "open" {
		t.Fatalf("annotate hook did not run: %+v", exs)
	}
}

func TestJSONLSink(t *testing.T) {
	rec, _ := testRecorder(t, Config{Capacity: 4, Threshold: time.Nanosecond})
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	rec.SetSink(sink)
	c := rec.Begin()
	c.SetQuery("select ra from photoobj", 0xdead)
	rec.Finish(c, nil)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	var e Exemplar
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatalf("sink line not JSON: %v\n%s", err, line)
	}
	if e.SQL != "select ra from photoobj" || e.Trace != "000000000000dead" {
		t.Fatalf("sink exemplar %+v", e)
	}
}

func TestCaptureReuseDoesNotLeak(t *testing.T) {
	rec, _ := testRecorder(t, Config{Capacity: 8, Threshold: time.Nanosecond})
	c := rec.Begin()
	c.SetQuery("first", 1)
	c.Leg("photo.sdss.org", "fetch", "o1", 0, 0, 1, 1, nil)
	c.Decision("o1", "photo.sdss.org", "hit", "", 1)
	rec.Finish(c, nil)

	c = rec.Begin() // pooled: must start clean
	c.SetQuery("second", 2)
	rec.Finish(c, nil)

	exs := rec.Snapshot()
	if len(exs) != 2 {
		t.Fatalf("published %d, want 2", len(exs))
	}
	second := exs[1]
	if second.SQL != "second" || len(second.Legs) != 0 || len(second.Decisions) != 0 {
		t.Fatalf("capture reuse leaked state: %+v", second)
	}
}

func TestFilter(t *testing.T) {
	exs := []Exemplar{
		{Seq: 1, Outcome: OutcomeSlow, DurUS: 100},
		{Seq: 2, Outcome: OutcomeError, DurUS: 50},
		{Seq: 3, Outcome: OutcomeSlow, DurUS: 300},
		{Seq: 4, Outcome: OutcomeNormal, DurUS: 10},
	}
	if got := Filter(exs, OutcomeSlow, 0, 0); len(got) != 2 {
		t.Fatalf("outcome filter kept %d, want 2", len(got))
	}
	if got := Filter(exs, "", 60, 0); len(got) != 2 {
		t.Fatalf("minUS filter kept %d, want 2", len(got))
	}
	got := Filter(exs, "", 0, 2)
	if len(got) != 2 || got[0].Seq != 3 || got[1].Seq != 4 {
		t.Fatalf("limit filter kept %+v, want seqs 3,4", got)
	}
}

func TestNilSafety(t *testing.T) {
	var rec *Recorder
	c := rec.Begin()
	c.SetQuery("x", 1)
	c.SetDegraded(true)
	c.SetMediation(1, 2, 3)
	c.SetEncodeUS(4)
	c.Decision("o", "s", "hit", "", 1)
	c.Leg("s", "fetch", "o", 0, 0, 1, 1, nil)
	_ = c.Now()
	rec.Finish(c, nil)
	rec.SetSink(nil)
	rec.SetAnnotate(nil)
	if rec.Snapshot() != nil || rec.Observed() != 0 || rec.Published() != 0 || rec.Cap() != 0 || rec.ThresholdUS() != 0 {
		t.Fatal("nil recorder must be inert")
	}
	var j *JSONL
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// New with a nil registry must still record.
	r2 := New(Config{Capacity: 2, Threshold: time.Nanosecond}, nil)
	r2.Finish(r2.Begin(), nil)
	if r2.Published() != 1 {
		t.Fatal("recorder without registry must still publish")
	}
}
