package flightrec

import (
	"runtime/debug"
	"testing"
	"time"

	"bypassyield/internal/obs"
)

// TestFastPathAllocFree asserts the acceptance criterion: a capture
// that does not publish (healthy, under threshold, reservoir off)
// costs zero allocations in steady state — Begin pools the capture
// and the slices it accumulates are reused across queries. GC is
// disabled for the measurement so the pool cannot be drained mid-run.
func TestFastPathAllocFree(t *testing.T) {
	rec := New(Config{Capacity: 64, Threshold: time.Hour, SampleEvery: 0}, obs.NewRegistry())

	work := func() {
		c := rec.Begin()
		c.SetQuery("select ra, dec from photoobj", 0xfeed)
		c.SetMediation(120, 4, 9)
		c.Decision("edr/photoobj", "photo.sdss.org", "hit", "", 4096)
		c.Leg("photo.sdss.org", "fetch", "edr/photoobj", c.Now(), 2, 80, 85, nil)
		c.SetEncodeUS(6)
		rec.Finish(c, nil)
	}
	// Warm the pool and grow the capture slices to steady state.
	for i := 0; i < 64; i++ {
		work()
	}

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if allocs := testing.AllocsPerRun(1000, work); allocs != 0 {
		t.Fatalf("fast path allocates %.1f objects per query, want 0", allocs)
	}
	if rec.Published() != 0 {
		t.Fatalf("fast-path bench published %d exemplars, want 0", rec.Published())
	}
}

func BenchmarkFastPath(b *testing.B) {
	rec := New(Config{Capacity: 64, Threshold: time.Hour, SampleEvery: 0}, obs.NewRegistry())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := rec.Begin()
		c.SetQuery("select ra from photoobj", uint64(i)+1)
		c.SetMediation(120, 4, 9)
		c.Leg("photo.sdss.org", "fetch", "edr/photoobj", c.Now(), 2, 80, 85, nil)
		rec.Finish(c, nil)
	}
}

func BenchmarkPublish(b *testing.B) {
	rec := New(Config{Capacity: 256, Threshold: time.Nanosecond}, obs.NewRegistry())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := rec.Begin()
		c.SetQuery("select ra from photoobj", uint64(i)+1)
		c.Leg("photo.sdss.org", "fetch", "edr/photoobj", 0, 2, 80, 85, nil)
		rec.Finish(c, nil)
	}
}
