package obs

import (
	"sync/atomic"
	"time"
)

// Default rate-window layout: 15 one-second slots, so PerSecond
// reflects roughly the last 15 seconds with one-second resolution.
const (
	DefaultRateInterval = time.Second
	DefaultRateSlots    = 15
)

// Rate is a sliding-window rate tracker: a ring of fixed time slots,
// each an atomic sum of the values added during its interval. It is
// the operational analogue of the paper's rate profiles (eq. 3): where
// the cache core estimates long-run per-object byte rates, Rate tracks
// the recent fleet-level D_S/D_L/D_C and query rates a scraper wants.
//
// Add is lock-free and allocation-free (hot-path safe); PerSecond is a
// scan over the (small, fixed) ring. A nil *Rate is a valid no-op.
type Rate struct {
	interval int64 // slot width, ns
	slots    []rateSlot
	now      func() int64 // nanosecond clock; replaceable in tests
}

type rateSlot struct {
	epoch atomic.Int64 // slot index since the unix epoch (time/interval)
	sum   atomic.Int64
}

// NewRate builds a tracker over `slots` intervals of the given width.
// Degenerate parameters are clamped to the defaults.
func NewRate(interval time.Duration, slots int) *Rate {
	if interval <= 0 {
		interval = DefaultRateInterval
	}
	if slots < 2 {
		slots = DefaultRateSlots
	}
	return &Rate{
		interval: int64(interval),
		slots:    make([]rateSlot, slots),
		now:      func() int64 { return time.Now().UnixNano() },
	}
}

// Add records n at the current time. No-op on a nil rate.
//
// A slot is lazily recycled when its ring position comes around again:
// the first adder of the new epoch CASes the epoch forward and resets
// the sum. An add racing the reset can lose itself or a concurrent
// add's contribution to the fresh slot — an acceptable (and bounded)
// imprecision for telemetry, bought for a lock-free hot path.
func (r *Rate) Add(n int64) {
	if r == nil {
		return
	}
	epoch := r.now() / r.interval
	s := &r.slots[int(epoch%int64(len(r.slots)))]
	if e := s.epoch.Load(); e != epoch {
		if s.epoch.CompareAndSwap(e, epoch) {
			s.sum.Store(0)
		}
	}
	s.sum.Add(n)
}

// PerSecond returns the windowed rate: the sum over live slots divided
// by the wall time elapsed since the oldest live slot began. Anchoring
// the denominator to wall time (not just the touched slots) makes the
// rate decay through idle periods: a burst followed by silence reads
// progressively lower on each scrape and reaches 0 once the burst
// leaves the window, instead of reporting full burst intensity until
// falling off a cliff at the window edge. The current (partial) slot
// contributes its elapsed fraction, so the rate also responds
// immediately. Returns 0 on a nil, never-touched, or >window-idle
// rate.
func (r *Rate) PerSecond() float64 {
	if r == nil {
		return 0
	}
	now := r.now()
	cur := now / r.interval
	oldest := cur - int64(len(r.slots)) + 1
	var total int64
	minEpoch := int64(-1) // oldest live slot seen
	for i := range r.slots {
		s := &r.slots[i]
		e := s.epoch.Load()
		if e < oldest || e > cur {
			continue // stale (not yet recycled) or empty slot
		}
		total += s.sum.Load()
		if minEpoch < 0 || e < minEpoch {
			minEpoch = e
		}
	}
	if minEpoch < 0 {
		return 0 // nothing recorded inside the window
	}
	covered := now - minEpoch*r.interval // ns since the oldest live slot began
	if covered <= 0 {
		return 0
	}
	return float64(total) / (float64(covered) / float64(time.Second))
}

// WindowSeconds returns the full window width the tracker can cover.
func (r *Rate) WindowSeconds() float64 {
	if r == nil {
		return 0
	}
	return time.Duration(r.interval * int64(len(r.slots))).Seconds()
}
