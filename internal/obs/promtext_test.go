package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// goldenSnapshot is a hand-built snapshot covering every rendering
// rule: plain and labeled counters, dotted names, gauges, rates,
// histograms with cumulative buckets, and label values needing
// escaping.
func goldenSnapshot() Snapshot {
	return Snapshot{
		Counters: []CounterSnap{
			{Name: "core.bypass_bytes", Value: 1200},
			{Name: "core.decisions", Label: "rate-profile/bypass", Value: 7},
			{Name: "core.decisions", Label: "rate-profile/hit", Value: 3},
			// Flight-recorder tail attribution (flightrec counters).
			{Name: "obs.exemplars", Label: "slow", Value: 4},
			{Name: "obs.tail_cause", Label: "wan:spec.sdss.org", Value: 3},
			{Name: "obs.tail_cause_us", Label: "wan:spec.sdss.org", Value: 91000},
			{Name: "wire.frames_rx", Label: `weird"label\with` + "\n" + `newline`, Value: 1},
		},
		Gauges: []GaugeSnap{
			{Name: "cache.used_bytes", Value: 9000},
			{Name: "core.bytes_saved_vs_bypass", Value: 524288},
			// Negative: a shadow baseline can beat the live policy, so
			// signed gauge rendering is load-bearing.
			{Name: "core.bytes_saved_vs_lruk", Value: -2048},
			// Runtime self-observation (obs.EnableRuntimeStats).
			{Name: "runtime.goroutines", Value: 42},
			{Name: "runtime.heap_alloc_bytes", Value: 7340032},
			{Name: "runtime.sched_latency_p99_us", Value: 180},
			// Gauge-family members (per-site breaker states) share one
			// TYPE line and carry the family label.
			{Name: "wire.breaker_state", Label: "photo.sdss.org", Value: 0},
			{Name: "wire.breaker_state", Label: "spec.sdss.org", Value: 1},
		},
		Rates: []RateSnap{
			{Name: "core.bypass_bytes_rate", PerSecond: 1234.5, WindowSeconds: 15},
			{Name: "core.query_rate", PerSecond: 0, WindowSeconds: 15},
		},
		Histograms: []HistogramSnap{
			{
				// Decision latency in nanoseconds (core.DecideBuckets).
				Name:   "core.decide_seconds",
				Bounds: []int64{100, 250, 500, 1000, 2500},
				Counts: []int64{0, 3, 5, 1, 0, 1}, // 1 in overflow
				Sum:    4242, Count: 10,
			},
			{
				// GC pause histogram from the runtime collector.
				Name:   "runtime.gc_pause_us",
				Bounds: []int64{10, 20, 40, 80},
				Counts: []int64{1, 2, 0, 0, 1},
				Sum:    195, Count: 4,
			},
			{
				// Pool-wait time per site (pool back-pressure signal,
				// sibling of rpc_latency for adaptive sizing).
				Name: "wire.pool_wait_us", Label: "photo.sdss.org",
				Bounds: []int64{100, 1000, 10000},
				Counts: []int64{5, 2, 0, 1},
				Sum:    15800, Count: 8,
			},
			{
				Name: "wire.rpc_latency_us", Label: "photo.sdss.org",
				Bounds: []int64{50, 100, 200},
				Counts: []int64{2, 1, 0, 4}, // 4 in overflow
				Sum:    12345, Count: 7,
			},
			{
				Name: "wire.rpc_latency_us", Label: "spec.sdss.org",
				Bounds: []int64{50, 100, 200},
				Counts: []int64{1, 0, 0, 0},
				Sum:    40, Count: 1,
			},
		},
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenSnapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "metrics.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if got := buf.String(); got != string(want) {
		t.Fatalf("exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	ValidatePrometheusText(t, buf.String())
}

func TestWritePrometheusDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	s := goldenSnapshot()
	if err := s.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two renders of one snapshot differ")
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"wire.rpc_latency_us": "wire_rpc_latency_us",
		"core.decisions":      "core_decisions",
		"already_fine":        "already_fine",
		"9leading-digit":      "_leading_digit",
		"with:colon":          "with:colon",
		"":                    "_",
		"a b/c":               "a_b_c",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Fatalf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegistryEndToEndExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.accesses").Add(5)
	r.CounterFamily("core.decisions").Add("rate-profile/hit", 2)
	r.Gauge("cache.used").Set(10)
	r.Rate("core.query_rate").Add(4)
	r.Histogram("federation.query_latency_us", []int64{10, 100}).Observe(50)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE core_accesses counter",
		"core_accesses 5",
		`core_decisions{label="rate-profile/hit"} 2`,
		"# TYPE core_query_rate gauge",
		`federation_query_latency_us_bucket{le="+Inf"} 1`,
		"federation_query_latency_us_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	ValidatePrometheusText(t, out)
}

var (
	promTypeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9.]+(e[+-][0-9]+)?|\+Inf|NaN)$`)
)

// ValidatePrometheusText asserts out is well-formed Prometheus text
// exposition: every line is a TYPE comment or a sample, every sample's
// metric was typed, histogram buckets are cumulative and end at +Inf,
// and _count matches the +Inf bucket.
func ValidatePrometheusText(t *testing.T, out string) {
	t.Helper()
	typed := map[string]string{}
	type histState struct {
		lastCum  map[string]int64 // per label-set cumulative check
		infCount map[string]int64
	}
	hists := map[string]*histState{}
	counts := map[string]map[string]int64{}

	for ln, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			if !promTypeRe.MatchString(line) {
				t.Fatalf("line %d: bad TYPE line %q", ln+1, line)
			}
			f := strings.Fields(line)
			typed[f[2]] = f[3]
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: bad sample line %q", ln+1, line)
		}
		name, labels, value := m[1], m[2], m[3]
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(name, suffix); b != name && typed[b] == "histogram" {
				base = b
			}
		}
		if typed[base] == "" {
			t.Fatalf("line %d: sample %q has no preceding TYPE", ln+1, line)
		}
		if typed[base] != "histogram" {
			continue
		}
		h := hists[base]
		if h == nil {
			h = &histState{lastCum: map[string]int64{}, infCount: map[string]int64{}}
			hists[base] = h
		}
		labelSansLE := regexp.MustCompile(`,?le="[^"]*"`).ReplaceAllString(labels, "")
		if labelSansLE == "{}" {
			labelSansLE = "" // bucket had only the le label
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			v, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				t.Fatalf("line %d: non-integer bucket %q", ln+1, line)
			}
			if v < h.lastCum[labelSansLE] {
				t.Fatalf("line %d: bucket counts not cumulative (%d < %d)", ln+1, v, h.lastCum[labelSansLE])
			}
			h.lastCum[labelSansLE] = v
			if strings.Contains(labels, `le="+Inf"`) {
				h.infCount[labelSansLE] = v
				h.lastCum[labelSansLE] = 0 // next label set restarts
			}
		case strings.HasSuffix(name, "_count"):
			v, _ := strconv.ParseInt(value, 10, 64)
			if counts[base] == nil {
				counts[base] = map[string]int64{}
			}
			counts[base][labelSansLE] = v
		}
	}
	for base, h := range hists {
		for labels, inf := range h.infCount {
			if c, ok := counts[base][labels]; !ok || c != inf {
				t.Fatalf("histogram %s%s: _count %d != +Inf bucket %d", base, labels, c, inf)
			}
		}
	}
}
