package obs

import (
	"crypto/rand"
	"encoding/binary"
	"strconv"
	"sync/atomic"
	"time"
)

// TraceContext is the compact cross-process trace identity carried on
// wire frames: the 64-bit trace a request belongs to and the span that
// is its parent on the far side. The zero TraceContext means
// "untraced" — frames carrying it are byte-identical to pre-tracing
// frames, so old and new daemons interoperate.
type TraceContext struct {
	// TraceID identifies the whole causal tree (one client query).
	TraceID uint64
	// SpanID identifies the span that spawned this context; a span
	// opened under this context uses it as its parent.
	SpanID uint64
}

// Valid reports whether the context identifies a trace.
func (c TraceContext) Valid() bool { return c.TraceID != 0 }

// TraceHex returns the trace id as 16 hex digits ("" when untraced),
// the wire and JSONL encoding.
func (c TraceContext) TraceHex() string { return FormatID(c.TraceID) }

// SpanHex returns the span id as 16 hex digits ("" when untraced).
func (c TraceContext) SpanHex() string { return FormatID(c.SpanID) }

// idState walks a full-period Weyl sequence (odd increment) from a
// per-process random base, so ids are unique within a process and
// collide across processes only with ~2^-64 probability per pair.
var idState atomic.Uint64

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(b[:]))
	} else {
		idState.Store(uint64(time.Now().UnixNano()))
	}
}

// NewID mints a nonzero process-unique 64-bit id. Lock-free and
// allocation-free: safe on hot paths.
func NewID() uint64 {
	for {
		if id := idState.Add(0x9E3779B97F4A7C15); id != 0 {
			return id
		}
	}
}

// FormatID encodes an id as 16 lowercase hex digits; zero (no id)
// encodes as "".
func FormatID(id uint64) string {
	if id == 0 {
		return ""
	}
	var buf [16]byte
	const hex = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		buf[i] = hex[id&0xF]
		id >>= 4
	}
	return string(buf[:])
}

// ParseID decodes FormatID's output; malformed or empty input yields 0
// (untraced), never an error — a corrupt trace id must not fail the
// request it rode in on.
func ParseID(s string) uint64 {
	if s == "" {
		return 0
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0
	}
	return v
}
