package engine

import (
	"fmt"
	"math"
	"sort"

	"bypassyield/internal/sqlparse"
)

// Result is the outcome of executing a statement. Cardinality and
// size are logical (scaled by the sampling factor); Tuples carries up
// to Config.MaxResultRows materialized sample rows for display and
// transport.
type Result struct {
	// Columns names the output columns (alias, aggregate rendering,
	// or qualified column name).
	Columns []string
	// Rows is the logical result cardinality.
	Rows int64
	// Bytes is the logical result size — the query's yield.
	Bytes int64
	// Tuples holds materialized sample rows (bounded).
	Tuples [][]float64
	// SampleMatches is the unscaled number of matching sample rows
	// (for tests of the scaling arithmetic).
	SampleMatches int64
}

// ExecError reports an execution failure.
type ExecError struct{ Msg string }

func (e *ExecError) Error() string { return "engine: " + e.Msg }

// Execute runs a statement and returns its result. The execution
// subset matches the workload: one- and two-table statements,
// conjunctive predicates, equi-joins, aggregates, and TOP.
func (db *DB) Execute(stmt *sqlparse.SelectStmt) (*Result, error) {
	b, err := Bind(db.schema, stmt)
	if err != nil {
		return nil, err
	}
	var res *Result
	switch len(b.Tables) {
	case 1:
		res, err = db.execSingle(b)
	case 2:
		res, err = db.execJoin(b)
	default:
		return nil, &ExecError{Msg: fmt.Sprintf("%d-table statements not supported (max 2)", len(b.Tables))}
	}
	if err != nil {
		return nil, err
	}
	db.queries.Add(1)
	db.yieldBytes.Add(res.Bytes)
	return res, nil
}

// evalLocal returns the sample row indexes of one table satisfying
// its literal and same-table predicates.
func (db *DB) evalLocal(b *Bound, tableIdx int) ([]int32, error) {
	td := db.tables[b.Tables[tableIdx].Name]
	db.rowsScanned.Add(int64(td.n))
	out := make([]int32, 0, td.n)
scan:
	for i := 0; i < td.n; i++ {
		for _, c := range b.Conds {
			if c.Left.TableIdx != tableIdx {
				continue
			}
			if c.Right != nil {
				if c.Right.TableIdx != tableIdx {
					continue // cross-table: handled by the join
				}
				l := db.columnValues(b.Tables[tableIdx].Name, c.Left.Col.Name)[i]
				r := db.columnValues(b.Tables[tableIdx].Name, c.Right.Col.Name)[i]
				if !compare(l, c.Cond.Op, r) {
					continue scan
				}
				continue
			}
			v := db.columnValues(b.Tables[tableIdx].Name, c.Left.Col.Name)[i]
			if !evalLiteral(v, c.Cond) {
				continue scan
			}
		}
		out = append(out, int32(i))
	}
	return out, nil
}

// evalLiteral evaluates a literal comparison or BETWEEN.
func evalLiteral(v float64, c sqlparse.Condition) bool {
	if c.Between {
		return v >= c.Lo && v <= c.Hi
	}
	return compare(v, c.Op, c.Value)
}

func compare(l float64, op sqlparse.CompareOp, r float64) bool {
	switch op {
	case sqlparse.OpEq:
		return l == r
	case sqlparse.OpNotEq:
		return l != r
	case sqlparse.OpLt:
		return l < r
	case sqlparse.OpLe:
		return l <= r
	case sqlparse.OpGt:
		return l > r
	case sqlparse.OpGe:
		return l >= r
	default:
		return false
	}
}

// execSingle evaluates a single-table statement.
func (db *DB) execSingle(b *Bound) (*Result, error) {
	matches, err := db.evalLocal(b, 0)
	if err != nil {
		return nil, err
	}
	rowOf := func(m int32) []int32 { return []int32{m} }
	pairs := make([][]int32, len(matches))
	for i, m := range matches {
		pairs[i] = rowOf(m)
	}
	return db.finish(b, pairs)
}

// execJoin evaluates a two-table statement with at least one
// cross-table equi-join condition (cross products are rejected — at
// sample scale alone they can explode).
func (db *DB) execJoin(b *Bound) (*Result, error) {
	var equi []BoundCond  // cross-table equality
	var extra []BoundCond // other cross-table comparisons
	for _, c := range b.Conds {
		if c.Right == nil || c.Left.TableIdx == c.Right.TableIdx {
			continue
		}
		if c.Cond.Op == sqlparse.OpEq {
			equi = append(equi, c)
		} else {
			extra = append(extra, c)
		}
	}
	if len(equi) == 0 {
		return nil, &ExecError{Msg: "cross products are not supported; add a join condition"}
	}
	left, err := db.evalLocal(b, 0)
	if err != nil {
		return nil, err
	}
	right, err := db.evalLocal(b, 1)
	if err != nil {
		return nil, err
	}

	// Build on the smaller side.
	buildIdx, probeIdx := 0, 1
	buildRows, probeRows := left, right
	if len(right) < len(left) {
		buildIdx, probeIdx = 1, 0
		buildRows, probeRows = right, left
	}
	keyCols := func(tableIdx int) [][]float64 {
		cols := make([][]float64, len(equi))
		for i, c := range equi {
			bc := c.Left
			if bc.TableIdx != tableIdx {
				bc = *c.Right
			}
			cols[i] = db.columnValues(b.Tables[tableIdx].Name, bc.Col.Name)
		}
		return cols
	}
	buildCols := keyCols(buildIdx)
	probeCols := keyCols(probeIdx)

	type key [2]float64 // up to two join columns; more is rejected
	if len(equi) > 2 {
		return nil, &ExecError{Msg: "at most two equi-join conditions supported"}
	}
	mk := func(cols [][]float64, row int32) key {
		var k key
		for i, c := range cols {
			k[i] = c[row]
		}
		return k
	}
	ht := make(map[key][]int32, len(buildRows))
	for _, r := range buildRows {
		k := mk(buildCols, r)
		ht[k] = append(ht[k], r)
	}

	extraVals := func(c BoundCond, lrow, rrow int32) (float64, float64) {
		rows := [2]int32{lrow, rrow}
		l := db.columnValues(b.Tables[c.Left.TableIdx].Name, c.Left.Col.Name)[rows[c.Left.TableIdx]]
		r := db.columnValues(b.Tables[c.Right.TableIdx].Name, c.Right.Col.Name)[rows[c.Right.TableIdx]]
		return l, r
	}

	var pairs [][]int32
	for _, pr := range probeRows {
	match:
		for _, br := range ht[mk(probeCols, pr)] {
			row := make([]int32, 2)
			row[buildIdx] = br
			row[probeIdx] = pr
			for _, c := range extra {
				l, r := extraVals(c, row[0], row[1])
				if !compare(l, c.Cond.Op, r) {
					continue match
				}
			}
			pairs = append(pairs, row)
		}
	}
	return db.finish(b, pairs)
}

// finish scales cardinality, applies ORDER BY and TOP, computes
// aggregates, and materializes the bounded tuple sample.
func (db *DB) finish(b *Bound, rows [][]int32) (*Result, error) {
	res := &Result{SampleMatches: int64(len(rows))}
	res.Columns = outputColumns(b)

	if b.GroupBy != nil {
		return db.finishGrouped(b, rows, res)
	}
	if b.OrderBy != nil {
		vals := db.columnValues(b.Tables[b.OrderBy.TableIdx].Name, b.OrderBy.Col.Name)
		ti := b.OrderBy.TableIdx
		desc := b.OrderDesc
		sort.SliceStable(rows, func(i, j int) bool {
			vi, vj := vals[rows[i][ti]], vals[rows[j][ti]]
			if desc {
				return vi > vj
			}
			return vi < vj
		})
	}

	logical := int64(len(rows)) * db.cfg.SampleEvery
	if b.Stmt.HasAggregate() {
		res.Rows = 1
		res.Bytes = b.ProjectedWidth()
		tuple, err := db.aggregate(b, rows)
		if err != nil {
			return nil, err
		}
		res.Tuples = [][]float64{tuple}
		return res, nil
	}
	if b.Stmt.Top > 0 && logical > b.Stmt.Top {
		logical = b.Stmt.Top
	}
	res.Rows = logical
	res.Bytes = logical * b.ProjectedWidth()

	limit := len(rows)
	if int64(limit) > logical {
		limit = int(logical)
	}
	if limit > db.cfg.MaxResultRows {
		limit = db.cfg.MaxResultRows
	}
	for i := 0; i < limit; i++ {
		res.Tuples = append(res.Tuples, db.materialize(b, rows[i]))
	}
	return res, nil
}

// finishGrouped evaluates a GROUP BY statement: one output row per
// distinct group value among the matches, with aggregates computed
// per group. Group counts of effectively-unique columns (keys,
// floats) scale by the sampling factor; low-cardinality integer
// columns do not (their distinct values are all present in any
// sample).
func (db *DB) finishGrouped(b *Bound, rows [][]int32, res *Result) (*Result, error) {
	gvals := db.columnValues(b.Tables[b.GroupBy.TableIdx].Name, b.GroupBy.Col.Name)
	ti := b.GroupBy.TableIdx
	groups := make(map[float64][][]int32)
	for _, row := range rows {
		v := gvals[row[ti]]
		groups[v] = append(groups[v], row)
	}
	keys := make([]float64, 0, len(groups))
	for v := range groups {
		keys = append(keys, v)
	}
	sort.Float64s(keys)

	logical := int64(len(groups))
	if distinct(*b.GroupBy) >= float64(b.GroupBy.Table.Rows) {
		logical *= db.cfg.SampleEvery
	}
	if b.Stmt.Top > 0 && logical > b.Stmt.Top {
		logical = b.Stmt.Top
	}
	res.Rows = logical
	res.Bytes = logical * b.ProjectedWidth()

	limit := len(keys)
	if int64(limit) > logical {
		limit = int(logical)
	}
	if limit > db.cfg.MaxResultRows {
		limit = db.cfg.MaxResultRows
	}
	for _, v := range keys[:limit] {
		grp := groups[v]
		tuple := make([]float64, 0, len(b.Projs))
		for i, p := range b.Projs {
			if b.ProjAggs[i] == sqlparse.AggNone {
				tuple = append(tuple, v)
				continue
			}
			agg, err := db.aggregate(&Bound{
				Stmt:     b.Stmt,
				Tables:   b.Tables,
				Projs:    []BoundCol{p},
				ProjAggs: []sqlparse.AggFunc{b.ProjAggs[i]},
			}, grp)
			if err != nil {
				return nil, err
			}
			tuple = append(tuple, agg[0])
		}
		res.Tuples = append(res.Tuples, tuple)
	}
	return res, nil
}

// materialize projects one joined sample row.
func (db *DB) materialize(b *Bound, row []int32) []float64 {
	if b.Star {
		var out []float64
		for ti, t := range b.Tables {
			for j := range t.Columns {
				out = append(out, db.columnValues(t.Name, t.Columns[j].Name)[row[ti]])
			}
		}
		return out
	}
	out := make([]float64, 0, len(b.Projs))
	for i, p := range b.Projs {
		if b.ProjAggs[i] != sqlparse.AggNone || p.Col == nil {
			continue
		}
		out = append(out, db.columnValues(p.Table.Name, p.Col.Name)[row[p.TableIdx]])
	}
	return out
}

// aggregate computes the aggregate tuple over the matching sample
// rows. count and sum scale to logical size; avg/min/max are
// sample statistics (unbiased under uniform sampling).
func (db *DB) aggregate(b *Bound, rows [][]int32) ([]float64, error) {
	out := make([]float64, 0, len(b.Projs))
	for i, p := range b.Projs {
		agg := b.ProjAggs[i]
		if agg == sqlparse.AggNone {
			return nil, &ExecError{Msg: "mixing aggregates and plain columns requires GROUP BY, which is not supported"}
		}
		if agg == sqlparse.AggCount {
			out = append(out, float64(int64(len(rows))*db.cfg.SampleEvery))
			continue
		}
		vals := db.columnValues(p.Table.Name, p.Col.Name)
		var sum float64
		min, max := math.Inf(1), math.Inf(-1)
		for _, row := range rows {
			v := vals[row[p.TableIdx]]
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		switch agg {
		case sqlparse.AggSum:
			out = append(out, sum*float64(db.cfg.SampleEvery))
		case sqlparse.AggAvg:
			if len(rows) == 0 {
				out = append(out, 0)
			} else {
				out = append(out, sum/float64(len(rows)))
			}
		case sqlparse.AggMin:
			if len(rows) == 0 {
				out = append(out, 0)
			} else {
				out = append(out, min)
			}
		case sqlparse.AggMax:
			if len(rows) == 0 {
				out = append(out, 0)
			} else {
				out = append(out, max)
			}
		}
	}
	return out, nil
}

// outputColumns names the result columns.
func outputColumns(b *Bound) []string {
	if b.Star {
		var out []string
		for _, t := range b.Tables {
			for j := range t.Columns {
				out = append(out, t.Name+"."+t.Columns[j].Name)
			}
		}
		return out
	}
	out := make([]string, 0, len(b.Stmt.Items))
	for i, item := range b.Stmt.Items {
		switch {
		case item.Alias != "":
			out = append(out, item.Alias)
		case item.Agg != sqlparse.AggNone:
			out = append(out, item.String())
		default:
			p := b.Projs[i]
			out = append(out, p.Table.Name+"."+p.Col.Name)
		}
	}
	return out
}
