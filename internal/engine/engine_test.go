package engine

import (
	"math"
	"strings"
	"testing"

	"bypassyield/internal/catalog"
	"bypassyield/internal/sqlparse"
)

// smallSchema is a precise fixture: t has 1000 rows with a key, a
// uniform float and a 10-valued int; u has 100 rows with a foreign
// key into t.
func smallSchema() *catalog.Schema {
	return &catalog.Schema{
		Name: "test",
		Tables: []catalog.Table{
			{
				Name: "t", Rows: 1000, Site: "site-a",
				Columns: []catalog.Column{
					{Name: "id", Type: catalog.Int64, Min: 0, Max: 1000, Key: true},
					{Name: "x", Type: catalog.Float64, Min: 0, Max: 100},
					{Name: "k", Type: catalog.Int16, Min: 0, Max: 9},
				},
			},
			{
				Name: "u", Rows: 100, Site: "site-b",
				Columns: []catalog.Column{
					{Name: "uid", Type: catalog.Int64, Min: 0, Max: 100, Key: true},
					{Name: "tid", Type: catalog.Int64, Min: 0, Max: 1000},
					{Name: "y", Type: catalog.Float32, Min: 0, Max: 1},
				},
			},
		},
	}
}

func mustParse(t *testing.T, sql string) *sqlparse.SelectStmt {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func mustOpen(t *testing.T, s *catalog.Schema, cfg Config) *DB {
	t.Helper()
	db, err := Open(s, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

func TestBindQualifiedAndUnqualified(t *testing.T) {
	s := smallSchema()
	b, err := Bind(s, mustParse(t, "select a.x from t a where a.k = 3"))
	if err != nil {
		t.Fatal(err)
	}
	if b.Projs[0].Col.Name != "x" || b.Projs[0].Table.Name != "t" {
		t.Fatalf("proj = %+v", b.Projs[0])
	}
	// Unqualified column resolving across two tables.
	b, err = Bind(s, mustParse(t, "select y from t, u where tid = id"))
	if err != nil {
		t.Fatal(err)
	}
	if b.Projs[0].Table.Name != "u" {
		t.Fatalf("unqualified y resolved to %s, want u", b.Projs[0].Table.Name)
	}
	if b.Conds[0].Left.Table.Name != "u" || b.Conds[0].Right.Table.Name != "t" {
		t.Fatalf("join bind = %+v", b.Conds[0])
	}
}

func TestBindErrors(t *testing.T) {
	s := smallSchema()
	bad := []string{
		"select x from ghost",
		"select ghost from t",
		"select g.x from t",
		"select t.ghost from t",
		"select x from t where ghost = 1",
		"select id from t, u", // ambiguous? id only in t — fine; use a truly ambiguous case below
	}
	for _, sql := range bad[:5] {
		if _, err := Bind(s, mustParse(t, sql)); err == nil {
			t.Fatalf("Bind(%q) should fail", sql)
		}
	}
	if _, err := Bind(s, mustParse(t, bad[5])); err != nil {
		t.Fatalf("id is unambiguous: %v", err)
	}
}

func TestBindAmbiguous(t *testing.T) {
	s := smallSchema()
	// Add x to u to force ambiguity.
	s.Tables[1].Columns = append(s.Tables[1].Columns, catalog.Column{Name: "x", Type: catalog.Float32, Min: 0, Max: 1})
	if _, err := Bind(s, mustParse(t, "select x from t, u where tid = id")); err == nil {
		t.Fatal("ambiguous x should fail to bind")
	}
}

func TestProjectedWidth(t *testing.T) {
	s := smallSchema()
	cases := []struct {
		sql  string
		want int64
	}{
		{"select x from t", 8},
		{"select id, x, k from t", 18},
		{"select * from t", 18},
		{"select count(*) from t", 8},
		{"select count(*), avg(x) from t", 16},
		{"select * from t, u where id = tid", 38},
	}
	for _, tc := range cases {
		b, err := Bind(s, mustParse(t, tc.sql))
		if err != nil {
			t.Fatalf("%s: %v", tc.sql, err)
		}
		if got := b.ProjectedWidth(); got != tc.want {
			t.Fatalf("%s: width = %d, want %d", tc.sql, got, tc.want)
		}
	}
}

func TestReferencedColumnsPaperExample(t *testing.T) {
	// The paper's worked example (Section 6): "the total storage of
	// all columns is 46 bytes. Storage of p.objid is 8 bytes, so its
	// yield is 8/46·Y". Our SDSS schema must reproduce that 46.
	s := catalog.EDR()
	stmt := mustParse(t, `select p.objID, p.ra, p.dec, p.modelMag_g, s.z as redshift
		from SpecObj s, PhotoObj p
		where p.ObjID = s.ObjID and s.specClass = 2 and s.zConf > 0.95
		and p.modelMag_g > 17.0 and s.z < 0.01`)
	b, err := Bind(s, stmt)
	if err != nil {
		t.Fatal(err)
	}
	refs := b.ReferencedColumns()
	var total int64
	for _, r := range refs {
		total += r.Col.Width()
	}
	if total != 46 {
		for _, r := range refs {
			t.Logf("  %s.%s: %d", r.Table.Name, r.Col.Name, r.Col.Width())
		}
		t.Fatalf("total referenced width = %d, want 46 (paper's example)", total)
	}
	if len(refs) != 8 {
		t.Fatalf("referenced columns = %d, want 8", len(refs))
	}
}

func TestReferencedColumnsStar(t *testing.T) {
	s := smallSchema()
	b, err := Bind(s, mustParse(t, "select * from t"))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.ReferencedColumns()); got != 3 {
		t.Fatalf("star references %d columns, want 3", got)
	}
}

func TestEstimateRangePredicate(t *testing.T) {
	s := smallSchema()
	// x uniform [0,100]: x < 25 → sel 0.25 → 250 rows × 8 bytes.
	rows, bytes, err := Estimate(s, mustParse(t, "select x from t where x < 25"))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 250 || bytes != 2000 {
		t.Fatalf("estimate = %d rows %d bytes, want 250/2000", rows, bytes)
	}
}

func TestEstimateBetween(t *testing.T) {
	s := smallSchema()
	rows, _, err := Estimate(s, mustParse(t, "select x from t where x between 10 and 30"))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 200 {
		t.Fatalf("rows = %d, want 200", rows)
	}
}

func TestEstimateIntEquality(t *testing.T) {
	s := smallSchema()
	// k has 10 distinct values → sel 0.1 → 100 rows.
	rows, _, err := Estimate(s, mustParse(t, "select x from t where k = 4"))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 100 {
		t.Fatalf("rows = %d, want 100", rows)
	}
}

func TestEstimateKeyEquality(t *testing.T) {
	s := smallSchema()
	rows, _, err := Estimate(s, mustParse(t, "select x from t where id = 42"))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 1 {
		t.Fatalf("rows = %d, want 1 (key lookup)", rows)
	}
}

func TestEstimateFKJoin(t *testing.T) {
	s := smallSchema()
	// FK join: one match per u row → 100 rows.
	rows, _, err := Estimate(s, mustParse(t, "select y from t, u where tid = id"))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 100 {
		t.Fatalf("rows = %d, want 100", rows)
	}
	// With a 50% filter on t: 50 rows.
	rows, _, err = Estimate(s, mustParse(t, "select y from t, u where tid = id and x < 50"))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 50 {
		t.Fatalf("rows = %d, want 50", rows)
	}
}

func TestEstimateTopAndAggregate(t *testing.T) {
	s := smallSchema()
	rows, bytes, err := Estimate(s, mustParse(t, "select top 10 x from t"))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 10 || bytes != 80 {
		t.Fatalf("top: %d rows %d bytes, want 10/80", rows, bytes)
	}
	rows, bytes, err = Estimate(s, mustParse(t, "select count(*) from t where x < 50"))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 1 || bytes != 8 {
		t.Fatalf("agg: %d rows %d bytes, want 1/8", rows, bytes)
	}
}

func TestEstimateOutOfRangePredicates(t *testing.T) {
	s := smallSchema()
	rows, _, err := Estimate(s, mustParse(t, "select x from t where x < -5"))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 0 {
		t.Fatalf("below-range: rows = %d, want 0", rows)
	}
	rows, _, err = Estimate(s, mustParse(t, "select x from t where x < 200"))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 1000 {
		t.Fatalf("above-range: rows = %d, want 1000", rows)
	}
}

func TestExecuteMatchesBruteForce(t *testing.T) {
	db := mustOpen(t, smallSchema(), Config{Seed: 1})
	res, err := db.Execute(mustParse(t, "select x from t where x < 25 and k = 3"))
	if err != nil {
		t.Fatal(err)
	}
	// Brute force over the same synthesized columns.
	xs := db.columnValues("t", "x")
	ks := db.columnValues("t", "k")
	var want int64
	for i := range xs {
		if xs[i] < 25 && ks[i] == 3 {
			want++
		}
	}
	if res.Rows != want {
		t.Fatalf("rows = %d, brute force = %d", res.Rows, want)
	}
	if res.Bytes != want*8 {
		t.Fatalf("bytes = %d, want %d", res.Bytes, want*8)
	}
}

func TestExecuteEstimateAgreement(t *testing.T) {
	// On uniform synthesized data, execution should be within a few
	// percent of the analytic estimate.
	db := mustOpen(t, smallSchema(), Config{Seed: 7})
	for _, sql := range []string{
		"select x from t where x < 25",
		"select x from t where x between 40 and 60",
		"select x, k from t where k >= 5",
	} {
		stmt := mustParse(t, sql)
		res, err := db.Execute(stmt)
		if err != nil {
			t.Fatal(err)
		}
		est, _, err := Estimate(db.Schema(), stmt)
		if err != nil {
			t.Fatal(err)
		}
		diff := math.Abs(float64(res.Rows-est)) / math.Max(float64(est), 1)
		if diff > 0.15 {
			t.Fatalf("%s: executed %d vs estimated %d (%.0f%% off)", sql, res.Rows, est, diff*100)
		}
	}
}

func TestExecuteFKJoinEveryForeignRowMatches(t *testing.T) {
	db := mustOpen(t, smallSchema(), Config{Seed: 3})
	res, err := db.Execute(mustParse(t, "select y from t, u where tid = id"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 100 {
		t.Fatalf("join rows = %d, want 100 (every u row matches)", res.Rows)
	}
}

func TestExecuteJoinWithFilter(t *testing.T) {
	db := mustOpen(t, smallSchema(), Config{Seed: 3})
	res, err := db.Execute(mustParse(t, "select y from t, u where tid = id and x < 50"))
	if err != nil {
		t.Fatal(err)
	}
	// ≈ 50 expected; allow sampling noise.
	if res.Rows < 30 || res.Rows > 70 {
		t.Fatalf("filtered join rows = %d, want ≈ 50", res.Rows)
	}
}

func TestExecuteJoinExtraCrossCondition(t *testing.T) {
	// A non-equality cross-table condition filters join pairs.
	db := mustOpen(t, smallSchema(), Config{Seed: 3})
	all, err := db.Execute(mustParse(t, "select y from t, u where tid = id"))
	if err != nil {
		t.Fatal(err)
	}
	some, err := db.Execute(mustParse(t, "select y from t, u where tid = id and y < x"))
	if err != nil {
		t.Fatal(err)
	}
	if some.Rows > all.Rows {
		t.Fatalf("extra condition grew the result: %d > %d", some.Rows, all.Rows)
	}
}

func TestExecuteCrossProductRejected(t *testing.T) {
	db := mustOpen(t, smallSchema(), Config{})
	if _, err := db.Execute(mustParse(t, "select x, y from t, u")); err == nil {
		t.Fatal("cross product should be rejected")
	}
}

func TestExecuteAggregates(t *testing.T) {
	db := mustOpen(t, smallSchema(), Config{Seed: 5})
	res, err := db.Execute(mustParse(t, "select count(*), avg(x), min(x), max(x), sum(k) from t"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 1 || len(res.Tuples) != 1 {
		t.Fatalf("aggregate result shape: rows=%d tuples=%d", res.Rows, len(res.Tuples))
	}
	tu := res.Tuples[0]
	if tu[0] != 1000 {
		t.Fatalf("count = %v, want 1000", tu[0])
	}
	if tu[1] < 40 || tu[1] > 60 {
		t.Fatalf("avg(x) = %v, want ≈ 50", tu[1])
	}
	if tu[2] < 0 || tu[2] > 5 {
		t.Fatalf("min(x) = %v, want near 0", tu[2])
	}
	if tu[3] < 95 || tu[3] > 100 {
		t.Fatalf("max(x) = %v, want near 100", tu[3])
	}
	if res.Bytes != 40 {
		t.Fatalf("bytes = %d, want 40 (5 aggregates × 8)", res.Bytes)
	}
}

func TestExecuteAggregateEmptyMatch(t *testing.T) {
	db := mustOpen(t, smallSchema(), Config{Seed: 5})
	res, err := db.Execute(mustParse(t, "select count(*), avg(x) from t where x < -1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples[0][0] != 0 || res.Tuples[0][1] != 0 {
		t.Fatalf("empty aggregate = %v, want zeros", res.Tuples[0])
	}
}

func TestExecuteMixedAggregateAndColumnRejected(t *testing.T) {
	db := mustOpen(t, smallSchema(), Config{})
	if _, err := db.Execute(mustParse(t, "select k, count(*) from t")); err == nil {
		t.Fatal("aggregate mixed with plain column should be rejected")
	}
}

func TestExecuteTop(t *testing.T) {
	db := mustOpen(t, smallSchema(), Config{Seed: 5})
	res, err := db.Execute(mustParse(t, "select top 7 x from t"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 7 {
		t.Fatalf("rows = %d, want 7", res.Rows)
	}
	if len(res.Tuples) != 7 {
		t.Fatalf("tuples = %d, want 7", len(res.Tuples))
	}
	if res.Bytes != 56 {
		t.Fatalf("bytes = %d, want 56", res.Bytes)
	}
}

func TestExecuteTupleBound(t *testing.T) {
	db := mustOpen(t, smallSchema(), Config{Seed: 5, MaxResultRows: 10})
	res, err := db.Execute(mustParse(t, "select x from t"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 1000 {
		t.Fatalf("rows = %d, want 1000", res.Rows)
	}
	if len(res.Tuples) != 10 {
		t.Fatalf("tuples = %d, want bounded at 10", len(res.Tuples))
	}
}

func TestExecuteKeyLookup(t *testing.T) {
	db := mustOpen(t, smallSchema(), Config{Seed: 5})
	res, err := db.Execute(mustParse(t, "select x from t where id = 42"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 1 {
		t.Fatalf("key lookup rows = %d, want 1", res.Rows)
	}
}

func TestSamplingScalesLogicalSize(t *testing.T) {
	s := smallSchema()
	full := mustOpen(t, s, Config{Seed: 11, SampleEvery: 1})
	sampled := mustOpen(t, s, Config{Seed: 11, SampleEvery: 10})
	if sampled.SampleRows("t") != 100 {
		t.Fatalf("sampled rows = %d, want 100", sampled.SampleRows("t"))
	}
	stmt := mustParse(t, "select x from t where x < 50")
	rFull, err := full.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	rSampled, err := sampled.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	// Both report logical scale; they agree within sampling noise.
	ratio := float64(rSampled.Rows) / float64(rFull.Rows)
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("sampled logical rows %d vs full %d", rSampled.Rows, rFull.Rows)
	}
	if rSampled.SampleMatches*10 != rSampled.Rows {
		t.Fatalf("scaling arithmetic: %d × 10 ≠ %d", rSampled.SampleMatches, rSampled.Rows)
	}
}

func TestSampledFKJoinStillMatches(t *testing.T) {
	// Foreign keys snap to the sampling grid, so the FK join works at
	// sample scale: every u sample row still matches.
	sampled := mustOpen(t, smallSchema(), Config{Seed: 11, SampleEvery: 10})
	res, err := sampled.Execute(mustParse(t, "select y from t, u where tid = id"))
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleMatches != int64(sampled.SampleRows("u")) {
		t.Fatalf("sample join matches = %d, want %d (every sampled u row)",
			res.SampleMatches, sampled.SampleRows("u"))
	}
	if res.Rows != res.SampleMatches*10 {
		t.Fatalf("logical rows = %d, want %d", res.Rows, res.SampleMatches*10)
	}
}

func TestOpenDeterministic(t *testing.T) {
	a := mustOpen(t, smallSchema(), Config{Seed: 42})
	b := mustOpen(t, smallSchema(), Config{Seed: 42})
	xa := a.columnValues("t", "x")
	xb := b.columnValues("t", "x")
	for i := range xa {
		if xa[i] != xb[i] {
			t.Fatal("same seed must synthesize identical data")
		}
	}
	c := mustOpen(t, smallSchema(), Config{Seed: 43})
	xc := c.columnValues("t", "x")
	same := true
	for i := range xa {
		if xa[i] != xc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestSynthesizedValuesInRange(t *testing.T) {
	db := mustOpen(t, catalog.EDR(), Config{Seed: 1, SampleEvery: 10000})
	s := db.Schema()
	for _, tab := range s.Tables {
		for _, col := range tab.Columns {
			vals := db.columnValues(tab.Name, col.Name)
			if len(vals) == 0 {
				t.Fatalf("%s.%s: no values", tab.Name, col.Name)
			}
			if col.Key {
				continue // keys are logical ids, bounded by rows
			}
			for _, v := range vals {
				if v < col.Min || v > col.Max {
					t.Fatalf("%s.%s: value %v outside [%v, %v]", tab.Name, col.Name, v, col.Min, col.Max)
				}
			}
		}
	}
}

func TestOutputColumnNames(t *testing.T) {
	db := mustOpen(t, smallSchema(), Config{Seed: 1})
	res, err := db.Execute(mustParse(t, "select id, x as pos, count from t"))
	if err == nil {
		_ = res
		t.Fatal("t has no column named count; expected bind error")
	}
	res, err = db.Execute(mustParse(t, "select id, x as pos from t where id = 1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0] != "t.id" || res.Columns[1] != "pos" {
		t.Fatalf("columns = %v", res.Columns)
	}
	res, err = db.Execute(mustParse(t, "select count(*) from t"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Columns[0], "count") {
		t.Fatalf("aggregate column name = %q", res.Columns[0])
	}
}

func TestExecutePaperQueryOnEDR(t *testing.T) {
	db := mustOpen(t, catalog.EDR(), Config{Seed: 1, SampleEvery: 2000})
	res, err := db.Execute(mustParse(t, `select p.objID, p.ra, p.dec, p.modelMag_g, s.z as redshift
		from SpecObj s, PhotoObj p
		where p.ObjID = s.ObjID and s.specClass = 2 and s.zConf > 0.95
		and p.modelMag_g > 17.0 and s.z < 0.01`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 5 || res.Columns[4] != "redshift" {
		t.Fatalf("columns = %v", res.Columns)
	}
	// Highly selective query: the result must be far smaller than
	// specobj itself.
	specBytes := db.Schema().Table("specobj").Bytes()
	if res.Bytes >= specBytes {
		t.Fatalf("yield %d should be far below specobj size %d", res.Bytes, specBytes)
	}
}
