package engine

import (
	"sort"
	"testing"

	"bypassyield/internal/catalog"
)

func TestBindGroupByValidation(t *testing.T) {
	s := smallSchema()
	good := []string{
		"select k, count(*) from t group by k",
		"select k from t group by k",
		"select count(*), avg(x) from t group by k",
	}
	for _, sql := range good {
		if _, err := Bind(s, mustParse(t, sql)); err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
	}
	bad := []string{
		"select x, count(*) from t group by k", // x is not the group column
		"select * from t group by k",
		"select k from t group by ghost",
	}
	for _, sql := range bad {
		if _, err := Bind(s, mustParse(t, sql)); err == nil {
			t.Fatalf("%q should fail to bind", sql)
		}
	}
}

func TestBindOrderByValidation(t *testing.T) {
	s := smallSchema()
	if _, err := Bind(s, mustParse(t, "select x from t order by x")); err != nil {
		t.Fatal(err)
	}
	if _, err := Bind(s, mustParse(t, "select * from t order by x")); err != nil {
		t.Fatal(err)
	}
	bad := []string{
		"select x from t order by k",                      // not projected
		"select k, count(*) from t group by k order by k", // group+order unsupported
		"select count(*) from t order by x",               // over aggregate
		"select x from t order by ghost",
	}
	for _, sql := range bad {
		if _, err := Bind(s, mustParse(t, sql)); err == nil {
			t.Fatalf("%q should fail to bind", sql)
		}
	}
}

func TestExecuteGroupByCounts(t *testing.T) {
	db := mustOpen(t, smallSchema(), Config{Seed: 4})
	res, err := db.Execute(mustParse(t, "select k, count(*) from t group by k"))
	if err != nil {
		t.Fatal(err)
	}
	// k has 10 distinct values over 1000 rows.
	if res.Rows != 10 {
		t.Fatalf("groups = %d, want 10", res.Rows)
	}
	var total float64
	for _, tu := range res.Tuples {
		total += tu[1]
	}
	if total != 1000 {
		t.Fatalf("group counts sum to %v, want 1000", total)
	}
	// Group keys sorted ascending, all distinct.
	if !sort.SliceIsSorted(res.Tuples, func(i, j int) bool {
		return res.Tuples[i][0] < res.Tuples[j][0]
	}) {
		t.Fatal("group keys not sorted")
	}
	// Bytes: 10 groups × (2 + 8) bytes.
	if res.Bytes != 100 {
		t.Fatalf("bytes = %d, want 100", res.Bytes)
	}
}

func TestExecuteGroupByMatchesBruteForce(t *testing.T) {
	db := mustOpen(t, smallSchema(), Config{Seed: 4})
	res, err := db.Execute(mustParse(t, "select k, avg(x), count(*) from t where x < 50 group by k"))
	if err != nil {
		t.Fatal(err)
	}
	xs := db.columnValues("t", "x")
	ks := db.columnValues("t", "k")
	sums := map[float64]float64{}
	counts := map[float64]float64{}
	for i := range xs {
		if xs[i] < 50 {
			sums[ks[i]] += xs[i]
			counts[ks[i]]++
		}
	}
	if int(res.Rows) != len(counts) {
		t.Fatalf("groups = %d, brute force = %d", res.Rows, len(counts))
	}
	for _, tu := range res.Tuples {
		k := tu[0]
		if !almostEq(tu[1], sums[k]/counts[k]) {
			t.Fatalf("group %v avg = %v, brute force %v", k, tu[1], sums[k]/counts[k])
		}
		if tu[2] != counts[k] {
			t.Fatalf("group %v count = %v, brute force %v", k, tu[2], counts[k])
		}
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9*(1+b)
}

func TestExecuteGroupBySampledScaling(t *testing.T) {
	// Grouping by a low-cardinality int: the group count does not
	// scale with sampling; per-group counts do.
	db := mustOpen(t, smallSchema(), Config{Seed: 4, SampleEvery: 10})
	res, err := db.Execute(mustParse(t, "select k, count(*) from t group by k"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows > 10 {
		t.Fatalf("groups = %d, want ≤ 10 (unscaled for low-cardinality key)", res.Rows)
	}
	var total float64
	for _, tu := range res.Tuples {
		total += tu[1]
	}
	if total != 1000 {
		t.Fatalf("scaled group counts sum to %v, want 1000", total)
	}
}

func TestEstimateGroupBy(t *testing.T) {
	s := smallSchema()
	rows, bytes, err := Estimate(s, mustParse(t, "select k, count(*) from t group by k"))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 10 {
		t.Fatalf("estimated groups = %d, want 10", rows)
	}
	if bytes != 100 {
		t.Fatalf("estimated bytes = %d, want 100", bytes)
	}
}

func TestExecuteOrderBy(t *testing.T) {
	db := mustOpen(t, smallSchema(), Config{Seed: 4})
	res, err := db.Execute(mustParse(t, "select top 20 x from t order by x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 20 {
		t.Fatalf("tuples = %d, want 20", len(res.Tuples))
	}
	for i := 1; i < len(res.Tuples); i++ {
		if res.Tuples[i][0] < res.Tuples[i-1][0] {
			t.Fatal("ascending order violated")
		}
	}
	// Top-20 ascending must be the 20 smallest values overall.
	xs := append([]float64(nil), db.columnValues("t", "x")...)
	sort.Float64s(xs)
	if res.Tuples[19][0] != xs[19] {
		t.Fatalf("20th value = %v, want %v (global sort before TOP)", res.Tuples[19][0], xs[19])
	}
}

func TestExecuteOrderByDesc(t *testing.T) {
	db := mustOpen(t, smallSchema(), Config{Seed: 4})
	res, err := db.Execute(mustParse(t, "select top 5 x from t order by x desc"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Tuples); i++ {
		if res.Tuples[i][0] > res.Tuples[i-1][0] {
			t.Fatal("descending order violated")
		}
	}
}

func TestReferencedColumnsIncludeGroupAndOrder(t *testing.T) {
	s := smallSchema()
	b, err := Bind(s, mustParse(t, "select count(*) from t group by k"))
	if err != nil {
		t.Fatal(err)
	}
	refs := b.ReferencedColumns()
	found := false
	for _, r := range refs {
		if r.Col != nil && r.Col.Name == "k" {
			found = true
		}
	}
	if !found {
		t.Fatal("group column missing from referenced columns")
	}
}

func TestExecuteGroupByOnEDR(t *testing.T) {
	db := mustOpen(t, catalog.EDR(), Config{Seed: 1, SampleEvery: 5000})
	res, err := db.Execute(mustParse(t, "select specclass, count(*), avg(z) from specobj group by specclass"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows < 2 || res.Rows > 7 {
		t.Fatalf("spec classes = %d, want 2..7", res.Rows)
	}
}
