package engine

import (
	"bypassyield/internal/catalog"
	"bypassyield/internal/sqlparse"
)

// Estimate computes the expected logical result cardinality and byte
// size (yield) of a statement from catalog statistics alone, assuming
// uniform value distributions and independent predicates — the same
// assumptions the data synthesizer satisfies by construction, so
// estimates agree with execution up to sampling noise.
//
// Join estimation uses the standard containment rule: the join
// selectivity of L.c = R.c is 1/max(distinct(L.c), distinct(R.c)).
// For a foreign key joining a key column this reduces to "one match
// per foreign row", which models the photoobj ⋈ specobj joins in the
// paper's workload exactly.
func Estimate(s *catalog.Schema, stmt *sqlparse.SelectStmt) (rows, bytes int64, err error) {
	b, err := Bind(s, stmt)
	if err != nil {
		return 0, 0, err
	}
	return EstimateBound(b)
}

// EstimateBound is Estimate over an already-bound statement.
func EstimateBound(b *Bound) (rows, bytes int64, err error) {
	// Per-table selectivity from non-join predicates; join conditions
	// collected separately.
	sel := make([]float64, len(b.Tables))
	for i := range sel {
		sel[i] = 1
	}
	var joins []BoundCond
	for _, c := range b.Conds {
		if c.Right != nil {
			if c.Left.TableIdx != c.Right.TableIdx {
				joins = append(joins, c)
			} else {
				// Same-table column comparison: use a neutral 1/3 —
				// uniform independent columns satisfy an inequality
				// about half the time and equality almost never; 1/3
				// is the usual optimizer guess.
				sel[c.Left.TableIdx] *= 1.0 / 3.0
			}
			continue
		}
		sel[c.Left.TableIdx] *= condSelectivity(c)
	}

	est := 1.0
	for i, t := range b.Tables {
		est *= float64(t.Rows) * sel[i]
	}
	for _, j := range joins {
		dl := distinct(j.Left)
		dr := distinct(*j.Right)
		d := dl
		if dr > d {
			d = dr
		}
		if d > 0 {
			est /= d
		}
	}
	if len(b.Tables) > 1 && len(joins) == 0 {
		// Pure cross product: already the product of cardinalities.
	}
	if est < 0 {
		est = 0
	}
	rows = int64(est + 0.5)
	switch {
	case b.GroupBy != nil:
		// One row per distinct group value present in the result.
		groups := int64(distinct(*b.GroupBy) + 0.5)
		if rows < groups {
			groups = rows
		}
		rows = groups
	case b.Stmt.HasAggregate():
		rows = 1
	}
	if b.Stmt.Top > 0 && rows > b.Stmt.Top {
		rows = b.Stmt.Top
	}
	return rows, rows * b.ProjectedWidth(), nil
}

// condSelectivity estimates a literal predicate's selectivity from
// the column's uniform range.
func condSelectivity(c BoundCond) float64 {
	col := c.Left.Col
	span := col.Max - col.Min
	if c.Cond.Between {
		lo, hi := c.Cond.Lo, c.Cond.Hi
		if hi < lo {
			return 0
		}
		return clamp01(rangeFrac(col, lo, hi, span))
	}
	v := c.Cond.Value
	switch c.Cond.Op {
	case sqlparse.OpEq:
		return eqSelectivity(c.Left)
	case sqlparse.OpNotEq:
		return clamp01(1 - eqSelectivity(c.Left))
	case sqlparse.OpLt, sqlparse.OpLe:
		if span <= 0 {
			if v >= col.Min {
				return 1
			}
			return 0
		}
		return clamp01((v - col.Min) / span)
	case sqlparse.OpGt, sqlparse.OpGe:
		if span <= 0 {
			if v <= col.Max {
				return 1
			}
			return 0
		}
		return clamp01((col.Max - v) / span)
	default:
		return 1
	}
}

// rangeFrac returns the fraction of the column's span covered by
// [lo, hi], clipped to the column's range.
func rangeFrac(col *catalog.Column, lo, hi, span float64) float64 {
	if span <= 0 {
		if lo <= col.Min && col.Min <= hi {
			return 1
		}
		return 0
	}
	if lo < col.Min {
		lo = col.Min
	}
	if hi > col.Max {
		hi = col.Max
	}
	if hi < lo {
		return 0
	}
	return (hi - lo) / span
}

// eqSelectivity estimates equality selectivity: one row for keys, one
// distinct value otherwise.
func eqSelectivity(bc BoundCol) float64 {
	d := distinct(bc)
	if d <= 0 {
		return 1
	}
	return 1 / d
}

// distinct estimates a column's distinct-value count: row count for
// keys, the integer range width for integer columns (capped at the
// row count), and the row count for floats (effectively all-distinct).
func distinct(bc BoundCol) float64 {
	col, rows := bc.Col, float64(bc.Table.Rows)
	if col.Key {
		return rows
	}
	switch col.Type {
	case catalog.Int64, catalog.Int32, catalog.Int16:
		card := col.Max - col.Min + 1
		if card > rows {
			return rows
		}
		if card < 1 {
			return 1
		}
		return card
	default:
		return rows
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
