// Package engine implements a miniature in-memory column store over a
// catalog schema: deterministic synthetic data generation at a
// configurable sampling factor, execution of the sqlparse SELECT
// subset (scans, conjunctive predicates, two-table hash joins,
// aggregates, TOP), and a catalog-only cardinality/yield estimator.
//
// All result sizes are reported at LOGICAL scale: a database sampled
// at 1/N materializes Rows/N tuples but scales row counts and byte
// sizes back up, so cache economics computed from engine results match
// the paper's full-scale accounting.
package engine

import (
	"fmt"

	"bypassyield/internal/catalog"
	"bypassyield/internal/sqlparse"
)

// BoundCol is a column reference resolved against the schema.
type BoundCol struct {
	// TableIdx indexes the statement's FROM list.
	TableIdx int
	// Table is the resolved catalog table.
	Table *catalog.Table
	// Col is the resolved catalog column.
	Col *catalog.Column
}

// BoundCond is a WHERE conjunct with both sides resolved.
type BoundCond struct {
	// Cond is the original condition.
	Cond sqlparse.Condition
	// Left is the resolved left column.
	Left BoundCol
	// Right is the resolved right column for column-to-column
	// comparisons; nil for literal comparisons and BETWEEN.
	Right *BoundCol
}

// Bound is a statement resolved against a schema: every table and
// column reference checked and linked to catalog metadata.
type Bound struct {
	// Stmt is the original statement.
	Stmt *sqlparse.SelectStmt
	// Schema is the schema the statement was resolved against.
	Schema *catalog.Schema
	// Tables are the resolved FROM tables, in statement order.
	Tables []*catalog.Table
	// Projs are the resolved plain-column projections (empty for
	// star; aggregates resolve their argument unless count(*)).
	Projs []BoundCol
	// ProjAggs mirrors Stmt.Items: the aggregate of each projection.
	ProjAggs []sqlparse.AggFunc
	// Star reports a select-all projection.
	Star bool
	// Conds are the resolved WHERE conjuncts.
	Conds []BoundCond
	// GroupBy is the resolved grouping column, or nil.
	GroupBy *BoundCol
	// OrderBy is the resolved ordering column, or nil; OrderDesc
	// selects descending order.
	OrderBy   *BoundCol
	OrderDesc bool
}

// BindError reports a name-resolution failure.
type BindError struct {
	Ref string
	Msg string
}

func (e *BindError) Error() string {
	return fmt.Sprintf("engine: %s: %s", e.Msg, e.Ref)
}

// Bind resolves a statement against a schema. Every FROM table must
// exist; every column reference must resolve to exactly one table.
func Bind(s *catalog.Schema, stmt *sqlparse.SelectStmt) (*Bound, error) {
	b := &Bound{Stmt: stmt, Schema: s}
	if len(stmt.From) == 0 {
		return nil, &BindError{Msg: "no tables", Ref: stmt.String()}
	}
	for _, tr := range stmt.From {
		t := s.Table(tr.Name)
		if t == nil {
			return nil, &BindError{Msg: "unknown table", Ref: tr.Name}
		}
		b.Tables = append(b.Tables, t)
	}

	resolve := func(ref sqlparse.ColRef) (BoundCol, error) {
		if ref.Table != "" {
			tr := stmt.TableByQualifier(ref.Table)
			if tr == nil {
				return BoundCol{}, &BindError{Msg: "unknown qualifier", Ref: ref.String()}
			}
			for i := range stmt.From {
				if &stmt.From[i] == tr {
					col := b.Tables[i].Column(ref.Column)
					if col == nil {
						return BoundCol{}, &BindError{Msg: "unknown column", Ref: ref.String()}
					}
					return BoundCol{TableIdx: i, Table: b.Tables[i], Col: col}, nil
				}
			}
			return BoundCol{}, &BindError{Msg: "unknown qualifier", Ref: ref.String()}
		}
		// Unqualified: must resolve in exactly one FROM table.
		found := -1
		for i, t := range b.Tables {
			if t.Column(ref.Column) != nil {
				if found >= 0 {
					return BoundCol{}, &BindError{Msg: "ambiguous column", Ref: ref.String()}
				}
				found = i
			}
		}
		if found < 0 {
			return BoundCol{}, &BindError{Msg: "unknown column", Ref: ref.String()}
		}
		return BoundCol{TableIdx: found, Table: b.Tables[found], Col: b.Tables[found].Column(ref.Column)}, nil
	}

	for _, item := range stmt.Items {
		b.ProjAggs = append(b.ProjAggs, item.Agg)
		if item.Star {
			if item.Agg == sqlparse.AggNone {
				b.Star = true
			}
			b.Projs = append(b.Projs, BoundCol{TableIdx: -1})
			continue
		}
		bc, err := resolve(item.Col)
		if err != nil {
			return nil, err
		}
		b.Projs = append(b.Projs, bc)
	}

	for _, cond := range stmt.Where {
		left, err := resolve(cond.Left)
		if err != nil {
			return nil, err
		}
		bcond := BoundCond{Cond: cond, Left: left}
		if cond.RightCol != nil {
			right, err := resolve(*cond.RightCol)
			if err != nil {
				return nil, err
			}
			bcond.Right = &right
		}
		b.Conds = append(b.Conds, bcond)
	}

	if stmt.GroupBy != nil {
		g, err := resolve(*stmt.GroupBy)
		if err != nil {
			return nil, err
		}
		b.GroupBy = &g
		if b.Star {
			return nil, &BindError{Msg: "star projection with GROUP BY", Ref: stmt.String()}
		}
		// Every plain projection must be the grouping column.
		for i, p := range b.Projs {
			if b.ProjAggs[i] != sqlparse.AggNone {
				continue
			}
			if p.Col == nil || p.Col.Name != g.Col.Name || p.TableIdx != g.TableIdx {
				return nil, &BindError{Msg: "non-aggregate projection must be the GROUP BY column", Ref: stmt.Items[i].String()}
			}
		}
	}
	if stmt.OrderBy != nil {
		if b.GroupBy != nil {
			return nil, &BindError{Msg: "ORDER BY with GROUP BY is not supported", Ref: stmt.String()}
		}
		if stmt.HasAggregate() {
			return nil, &BindError{Msg: "ORDER BY over aggregates is not supported", Ref: stmt.String()}
		}
		o, err := resolve(stmt.OrderBy.Col)
		if err != nil {
			return nil, err
		}
		if !b.Star {
			found := false
			for i, p := range b.Projs {
				if b.ProjAggs[i] == sqlparse.AggNone && p.Col != nil &&
					p.Col.Name == o.Col.Name && p.TableIdx == o.TableIdx {
					found = true
					break
				}
			}
			if !found {
				return nil, &BindError{Msg: "ORDER BY column must be projected", Ref: stmt.OrderBy.Col.String()}
			}
		}
		b.OrderBy = &o
		b.OrderDesc = stmt.OrderBy.Desc
	}
	return b, nil
}

// ProjectedWidth returns the byte width of one result row: the sum of
// projected column widths, 8 bytes per aggregate, or the combined row
// width of all FROM tables for star.
func (b *Bound) ProjectedWidth() int64 {
	if b.Star {
		var w int64
		for _, t := range b.Tables {
			w += t.RowWidth()
		}
		return w
	}
	var w int64
	for i, p := range b.Projs {
		if b.ProjAggs[i] != sqlparse.AggNone {
			w += 8
			continue
		}
		if p.Col != nil {
			w += p.Col.Width()
		}
	}
	return w
}

// ReferencedColumns returns every distinct (table, column) pair the
// statement touches — projections, predicates, and join keys. Star
// projections expand to all columns of all FROM tables. The federation
// layer uses this set for yield decomposition at column granularity.
func (b *Bound) ReferencedColumns() []BoundCol {
	seen := make(map[string]bool)
	var out []BoundCol
	add := func(bc BoundCol) {
		if bc.Col == nil {
			return
		}
		k := bc.Table.Name + "." + bc.Col.Name
		if !seen[k] {
			seen[k] = true
			out = append(out, bc)
		}
	}
	if b.Star {
		for i, t := range b.Tables {
			for j := range t.Columns {
				add(BoundCol{TableIdx: i, Table: t, Col: &t.Columns[j]})
			}
		}
	}
	for _, p := range b.Projs {
		add(p)
	}
	for _, c := range b.Conds {
		add(c.Left)
		if c.Right != nil {
			add(*c.Right)
		}
	}
	if b.GroupBy != nil {
		add(*b.GroupBy)
	}
	if b.OrderBy != nil {
		add(*b.OrderBy)
	}
	return out
}
