package engine

import (
	"testing"

	"bypassyield/internal/catalog"
	"bypassyield/internal/sqlparse"
)

func TestIntervalContains(t *testing.T) {
	outer := Interval{0, 10}
	cases := []struct {
		in   Interval
		want bool
	}{
		{Interval{2, 8}, true},
		{Interval{0, 10}, true},
		{Interval{-1, 5}, false},
		{Interval{5, 11}, false},
	}
	for _, tc := range cases {
		if got := outer.Contains(tc.in); got != tc.want {
			t.Fatalf("Contains(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestConditionInterval(t *testing.T) {
	col := &catalog.Column{Name: "x", Type: catalog.Float64, Min: 0, Max: 100}
	cases := []struct {
		sql  string
		want Interval
	}{
		{"select x from t where x between 10 and 20", Interval{10, 20}},
		{"select x from t where x = 7", Interval{7, 7}},
		{"select x from t where x < 30", Interval{0, 30}},
		{"select x from t where x >= 60", Interval{60, 100}},
		{"select x from t where x <> 5", Interval{0, 100}},
	}
	for _, tc := range cases {
		stmt, err := sqlparse.Parse(tc.sql)
		if err != nil {
			t.Fatal(err)
		}
		got := ConditionInterval(stmt.Where[0], col)
		if got != tc.want {
			t.Fatalf("%s: interval = %v, want %v", tc.sql, got, tc.want)
		}
	}
}

func TestBoundRegion(t *testing.T) {
	s := smallSchema()
	b, err := Bind(s, mustParse(t, "select x from t where x between 10 and 50 and x < 40 and k = 3"))
	if err != nil {
		t.Fatal(err)
	}
	region := b.Region(0)
	// Two predicates on x intersect: [10,50] ∩ [0,40] = [10,40].
	if got := region["x"]; got != (Interval{10, 40}) {
		t.Fatalf("x interval = %v, want [10,40]", got)
	}
	if got := region["k"]; got != (Interval{3, 3}) {
		t.Fatalf("k interval = %v, want [3,3]", got)
	}
}

func TestBoundRegionPerTable(t *testing.T) {
	s := smallSchema()
	b, err := Bind(s, mustParse(t, "select y from t, u where tid = id and x < 50 and y > 0.5"))
	if err != nil {
		t.Fatal(err)
	}
	rt := b.Region(0)
	ru := b.Region(1)
	if _, ok := rt["x"]; !ok {
		t.Fatal("table t region missing x")
	}
	if _, ok := rt["y"]; ok {
		t.Fatal("table t region leaked u's predicate")
	}
	if _, ok := ru["y"]; !ok {
		t.Fatal("table u region missing y")
	}
	// Join conditions are not region constraints.
	if _, ok := ru["tid"]; ok {
		t.Fatal("join condition leaked into region")
	}
}

func TestRegionContains(t *testing.T) {
	outer := map[string]Interval{"x": {0, 50}}
	if !RegionContains(outer, map[string]Interval{"x": {10, 20}, "y": {0, 1}}) {
		t.Fatal("narrower region with extra constraints should be contained")
	}
	if RegionContains(outer, map[string]Interval{"x": {10, 60}}) {
		t.Fatal("escaping interval should not be contained")
	}
	if RegionContains(outer, map[string]Interval{"y": {0, 1}}) {
		t.Fatal("inner unconstrained on outer's column should not be contained")
	}
	if !RegionContains(nil, map[string]Interval{"x": {1, 2}}) {
		t.Fatal("empty outer region contains everything")
	}
}
