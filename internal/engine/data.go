package engine

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strings"

	"bypassyield/internal/catalog"
	"bypassyield/internal/obs"
)

// Config parameterizes a database instance.
type Config struct {
	// SampleEvery materializes one of every N logical rows; 1 (or 0,
	// the default) materializes everything. Result cardinalities and
	// yields are always scaled back to logical size.
	SampleEvery int64
	// Seed drives deterministic data synthesis; the same (schema,
	// SampleEvery, Seed) triple always produces identical data.
	Seed int64
	// MaxResultRows bounds the number of materialized tuples carried
	// in a Result (the logical cardinality is unaffected). Zero means
	// the default of 64.
	MaxResultRows int
}

func (c *Config) fill() {
	if c.SampleEvery < 1 {
		c.SampleEvery = 1
	}
	if c.MaxResultRows <= 0 {
		c.MaxResultRows = 64
	}
}

// DB is an in-memory column store holding synthesized data for a
// schema (or a per-site subset of one).
type DB struct {
	schema *catalog.Schema
	cfg    Config
	tables map[string]*tableData

	// obs handles; nil (no-op) until SetObs is called.
	queries     *obs.Counter
	rowsScanned *obs.Counter
	yieldBytes  *obs.Counter
}

// tableData is the columnar storage of one table's sample.
type tableData struct {
	meta *catalog.Table
	n    int
	cols [][]float64 // parallel to meta.Columns
}

// Open synthesizes a database for the schema. Generation is
// column-parallel-free and deterministic: each column's stream is
// seeded by the config seed and the qualified column name.
func Open(s *catalog.Schema, cfg Config) (*DB, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cfg.fill()
	db := &DB{schema: s, cfg: cfg, tables: make(map[string]*tableData, len(s.Tables))}
	for i := range s.Tables {
		t := &s.Tables[i]
		n := int(t.Rows / cfg.SampleEvery)
		if n < 1 {
			n = 1
		}
		td := &tableData{meta: t, n: n, cols: make([][]float64, len(t.Columns))}
		for j := range t.Columns {
			td.cols[j] = synthesize(&t.Columns[j], t.Name, n, cfg)
		}
		db.tables[t.Name] = td
	}
	return db, nil
}

// synthesize generates one column's sample values.
//
// Key columns hold the logical identifiers of the sampled rows:
// i·SampleEvery. Integer columns whose name ends in "id" are snapped
// to the same sampling grid, so foreign keys always reference rows
// that exist in the referenced table's sample — joins behave at
// sample scale exactly as they would at full scale. Other integers
// are uniform over [Min, Max]; floats are uniform over [Min, Max).
func synthesize(col *catalog.Column, table string, n int, cfg Config) []float64 {
	vals := make([]float64, n)
	if col.Key {
		for i := range vals {
			vals[i] = float64(int64(i) * cfg.SampleEvery)
		}
		return vals
	}
	r := rand.New(rand.NewSource(colSeed(cfg.Seed, table, col.Name)))
	isInt := col.Type == catalog.Int64 || col.Type == catalog.Int32 || col.Type == catalog.Int16
	gridID := isInt && strings.HasSuffix(col.Name, "id") && col.Max >= 1000
	span := col.Max - col.Min
	for i := range vals {
		switch {
		case gridID:
			slots := int64(col.Max-col.Min) / cfg.SampleEvery
			if slots < 1 {
				slots = 1
			}
			vals[i] = col.Min + float64(r.Int63n(slots)*cfg.SampleEvery)
		case isInt:
			vals[i] = math.Floor(col.Min + r.Float64()*(span+1))
			if vals[i] > col.Max {
				vals[i] = col.Max
			}
		default:
			vals[i] = col.Min + r.Float64()*span
		}
	}
	return vals
}

// colSeed derives a deterministic per-column seed.
func colSeed(seed int64, table, col string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s.%s", table, col)
	return seed ^ int64(h.Sum64())
}

// SetObs attaches an observability registry: the engine publishes
// executed statements (engine.queries), sample rows scanned
// (engine.rows_scanned), and logical yield produced
// (engine.yield_bytes). A nil registry detaches.
func (db *DB) SetObs(r *obs.Registry) {
	db.queries = r.Counter("engine.queries")
	db.rowsScanned = r.Counter("engine.rows_scanned")
	db.yieldBytes = r.Counter("engine.yield_bytes")
}

// Schema returns the schema the database was opened with.
func (db *DB) Schema() *catalog.Schema { return db.schema }

// SampleEvery returns the sampling factor.
func (db *DB) SampleEvery() int64 { return db.cfg.SampleEvery }

// SampleRows returns the number of materialized rows of a table, or 0
// if the table is unknown.
func (db *DB) SampleRows(table string) int {
	td := db.tables[strings.ToLower(table)]
	if td == nil {
		return 0
	}
	return td.n
}

// columnValues returns the sample values of a column (shared slice;
// callers must not mutate). It returns nil for unknown names.
func (db *DB) columnValues(table, col string) []float64 {
	td := db.tables[strings.ToLower(table)]
	if td == nil {
		return nil
	}
	for j := range td.meta.Columns {
		if td.meta.Columns[j].Name == strings.ToLower(col) {
			return td.cols[j]
		}
	}
	return nil
}
