package engine

import (
	"bypassyield/internal/catalog"
	"bypassyield/internal/sqlparse"
)

// Region analysis: the per-column intervals a statement's literal
// predicates imply. Both the semantic cache and the materialized-view
// matcher decide containment questions over these regions; for this
// SQL subset (conjunctions of per-column comparisons and BETWEEN)
// interval containment is exact.

// Interval is a closed numeric range.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether other lies within i.
func (i Interval) Contains(other Interval) bool {
	return other.Lo >= i.Lo && other.Hi <= i.Hi
}

// ConditionInterval converts a literal condition on a column into the
// interval of values it admits. Operators that admit disjoint sets
// (<>) widen to the full column span.
func ConditionInterval(cond sqlparse.Condition, col *catalog.Column) Interval {
	if cond.Between {
		return Interval{cond.Lo, cond.Hi}
	}
	switch cond.Op {
	case sqlparse.OpEq:
		return Interval{cond.Value, cond.Value}
	case sqlparse.OpLt, sqlparse.OpLe:
		return Interval{col.Min, cond.Value}
	case sqlparse.OpGt, sqlparse.OpGe:
		return Interval{cond.Value, col.Max}
	default:
		return Interval{col.Min, col.Max}
	}
}

// Region returns the per-column intervals the statement's literal
// predicates imply for one FROM table; columns absent from the map
// are unconstrained. Multiple predicates on one column intersect.
func (b *Bound) Region(tableIdx int) map[string]Interval {
	region := make(map[string]Interval)
	for _, c := range b.Conds {
		if c.Right != nil || c.Left.TableIdx != tableIdx {
			continue
		}
		iv := ConditionInterval(c.Cond, c.Left.Col)
		if prev, ok := region[c.Left.Col.Name]; ok {
			if prev.Lo > iv.Lo {
				iv.Lo = prev.Lo
			}
			if prev.Hi < iv.Hi {
				iv.Hi = prev.Hi
			}
		}
		region[c.Left.Col.Name] = iv
	}
	return region
}

// RegionContains reports whether the outer region (a view's or cached
// result's predicate box) contains the inner region (a query's): for
// every column the outer constrains, the inner must constrain at
// least as tightly.
func RegionContains(outer, inner map[string]Interval) bool {
	for col, o := range outer {
		in, ok := inner[col]
		if !ok {
			return false
		}
		if !o.Contains(in) {
			return false
		}
	}
	return true
}
