package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokStar
	tokOp // = < > <= >= <> !=
)

// token is one lexeme with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes a SQL string.
type lexer struct {
	src string
	pos int
}

// SyntaxError reports a lexing or parsing failure with its byte
// offset into the statement.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sqlparse: %s at offset %d", e.Msg, e.Pos)
}

func (l *lexer) errorf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	ch := l.src[l.pos]
	switch {
	case ch == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case ch == '.':
		l.pos++
		return token{tokDot, ".", start}, nil
	case ch == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case ch == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case ch == '*':
		l.pos++
		return token{tokStar, "*", start}, nil
	case ch == '=':
		l.pos++
		return token{tokOp, "=", start}, nil
	case ch == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
			return token{tokOp, l.src[start:l.pos], start}, nil
		}
		return token{tokOp, "<", start}, nil
	case ch == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{tokOp, ">=", start}, nil
		}
		return token{tokOp, ">", start}, nil
	case ch == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{tokOp, "<>", start}, nil // normalize != to <>
		}
		return token{}, l.errorf(start, "unexpected character %q", ch)
	case ch == '-' || ch == '+' || isDigit(ch):
		return l.lexNumber()
	case isIdentStart(ch):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{tokIdent, strings.ToLower(l.src[start:l.pos]), start}, nil
	default:
		return token{}, l.errorf(start, "unexpected character %q", ch)
	}
}

// lexNumber scans an optionally signed decimal with optional fraction
// and exponent.
func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	if l.src[l.pos] == '-' || l.src[l.pos] == '+' {
		l.pos++
	}
	digits := 0
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
		digits++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
			digits++
		}
	}
	if digits == 0 {
		return token{}, l.errorf(start, "malformed number")
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		save := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '-' || l.src[l.pos] == '+') {
			l.pos++
		}
		expDigits := 0
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
			expDigits++
		}
		if expDigits == 0 {
			l.pos = save // "e" belonged to something else; unlikely in this grammar
		}
	}
	return token{tokNumber, l.src[start:l.pos], start}, nil
}

func isDigit(ch byte) bool { return ch >= '0' && ch <= '9' }

func isIdentStart(ch byte) bool {
	return ch == '_' || (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')
}

func isIdentPart(ch byte) bool { return isIdentStart(ch) || isDigit(ch) }
