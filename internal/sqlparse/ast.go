// Package sqlparse implements a lexer and recursive-descent parser for
// the SQL subset appearing in the paper's SDSS traces: single- and
// multi-table SELECT statements with projections, aggregates, TOP,
// aliases, and conjunctive WHERE clauses of comparisons, BETWEEN
// ranges, and equi-join conditions. Values are numeric — the SDSS
// queries the paper shows filter on identifiers, magnitudes, redshifts
// and classes, all numeric.
//
// The AST round-trips: String() renders a statement that re-parses to
// an equal AST, which the trace format relies on.
package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// AggFunc names an aggregate function, or is empty for a plain column
// projection.
type AggFunc string

// Supported aggregate functions.
const (
	AggNone  AggFunc = ""
	AggCount AggFunc = "count"
	AggSum   AggFunc = "sum"
	AggAvg   AggFunc = "avg"
	AggMin   AggFunc = "min"
	AggMax   AggFunc = "max"
)

// ColRef references a column, optionally qualified by a table name or
// alias.
type ColRef struct {
	// Table is the qualifier (alias or table name); empty when
	// unqualified.
	Table string
	// Column is the column name.
	Column string
}

// String renders the reference in SQL syntax.
func (c ColRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// SelectItem is one projection: a column, a star, or an aggregate.
type SelectItem struct {
	// Agg is the aggregate function, or AggNone.
	Agg AggFunc
	// Star marks `*` (select-all) or `count(*)` when Agg is set.
	Star bool
	// Col is the projected column (unused when Star).
	Col ColRef
	// Alias is the output name from AS, or empty.
	Alias string
}

// String renders the item in SQL syntax.
func (s SelectItem) String() string {
	var b strings.Builder
	switch {
	case s.Agg != AggNone && s.Star:
		fmt.Fprintf(&b, "%s(*)", s.Agg)
	case s.Agg != AggNone:
		fmt.Fprintf(&b, "%s(%s)", s.Agg, s.Col)
	case s.Star:
		b.WriteString("*")
	default:
		b.WriteString(s.Col.String())
	}
	if s.Alias != "" {
		b.WriteString(" as ")
		b.WriteString(s.Alias)
	}
	return b.String()
}

// TableRef names a table in the FROM clause with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// String renders the reference in SQL syntax.
func (t TableRef) String() string {
	if t.Alias == "" {
		return t.Name
	}
	return t.Name + " " + t.Alias
}

// CompareOp is a comparison operator.
type CompareOp string

// Supported comparison operators. NotEq renders as <>.
const (
	OpEq    CompareOp = "="
	OpLt    CompareOp = "<"
	OpGt    CompareOp = ">"
	OpLe    CompareOp = "<="
	OpGe    CompareOp = ">="
	OpNotEq CompareOp = "<>"
)

// Condition is one conjunct of the WHERE clause: a comparison against
// a literal, an equi-join comparison against another column, or a
// BETWEEN range.
type Condition struct {
	// Left is the left-hand column.
	Left ColRef
	// Op is the comparison operator (ignored for BETWEEN).
	Op CompareOp
	// RightCol, when non-nil, makes this a column-to-column
	// comparison (a join condition when the columns belong to
	// different tables).
	RightCol *ColRef
	// Value is the literal right-hand side when RightCol is nil and
	// Between is false.
	Value float64
	// Between marks `left BETWEEN Lo AND Hi`.
	Between bool
	// Lo and Hi bound the BETWEEN range.
	Lo, Hi float64
}

// IsJoin reports whether the condition compares two columns of
// different qualifiers with equality.
func (c Condition) IsJoin() bool {
	return c.RightCol != nil && c.Op == OpEq && c.Left.Table != c.RightCol.Table
}

// String renders the condition in SQL syntax.
func (c Condition) String() string {
	if c.Between {
		return fmt.Sprintf("%s between %s and %s", c.Left, fnum(c.Lo), fnum(c.Hi))
	}
	if c.RightCol != nil {
		return fmt.Sprintf("%s %s %s", c.Left, c.Op, *c.RightCol)
	}
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, fnum(c.Value))
}

// OrderSpec is an ORDER BY clause: a column and direction.
type OrderSpec struct {
	// Col is the ordering column.
	Col ColRef
	// Desc selects descending order.
	Desc bool
}

// String renders the clause body in SQL syntax.
func (o OrderSpec) String() string {
	if o.Desc {
		return o.Col.String() + " desc"
	}
	return o.Col.String()
}

// SelectStmt is a parsed SELECT statement.
type SelectStmt struct {
	// Top limits the result to the first N rows; 0 means no limit.
	Top int64
	// Items lists the projections.
	Items []SelectItem
	// From lists the tables.
	From []TableRef
	// Where lists the conjunctive conditions; empty means no filter.
	Where []Condition
	// GroupBy is the grouping column; nil means no grouping.
	GroupBy *ColRef
	// OrderBy is the ordering spec; nil means unordered.
	OrderBy *OrderSpec
}

// String renders the statement in SQL syntax; the output re-parses to
// an equal AST.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("select ")
	if s.Top > 0 {
		fmt.Fprintf(&b, "top %d ", s.Top)
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString(" from ")
	for i, t := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	if len(s.Where) > 0 {
		b.WriteString(" where ")
		for i, c := range s.Where {
			if i > 0 {
				b.WriteString(" and ")
			}
			b.WriteString(c.String())
		}
	}
	if s.GroupBy != nil {
		b.WriteString(" group by ")
		b.WriteString(s.GroupBy.String())
	}
	if s.OrderBy != nil {
		b.WriteString(" order by ")
		b.WriteString(s.OrderBy.String())
	}
	return b.String()
}

// HasAggregate reports whether any projection is an aggregate.
func (s *SelectStmt) HasAggregate() bool {
	for _, it := range s.Items {
		if it.Agg != AggNone {
			return true
		}
	}
	return false
}

// TableByQualifier resolves a qualifier (alias or table name) to its
// TableRef; unqualified references resolve only in single-table
// statements. It returns nil when the qualifier is unknown.
func (s *SelectStmt) TableByQualifier(q string) *TableRef {
	if q == "" {
		if len(s.From) == 1 {
			return &s.From[0]
		}
		return nil
	}
	for i := range s.From {
		if s.From[i].Alias == q || s.From[i].Name == q {
			return &s.From[i]
		}
	}
	return nil
}

// fnum formats a float the way the lexer accepts, without exponent
// notation for typical magnitudes.
func fnum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
