package sqlparse

import (
	"reflect"
	"testing"
)

// FuzzParse checks two properties on arbitrary input: the parser
// never panics, and any statement it accepts round-trips — String()
// re-parses to an equal AST. `go test` exercises the seed corpus;
// `go test -fuzz=FuzzParse` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"select ra, dec from photoobj where ra between 10 and 20",
		"select p.objID, s.z as redshift from SpecObj s, PhotoObj p where p.ObjID = s.ObjID",
		"select top 10 * from t where a <> -1.5e3",
		"select count(*), avg(x) from t group by k",
		"select x from t order by x desc",
		"select a from t where a = 1 and b < 2 and c between 3 and 4",
		"",
		"select",
		"select * from",
		"séłèçt * from t",
		"select a from t where a = 'str'",
		"select (((((((( from t",
		"select a fromt twherea=1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := Parse(sql)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := stmt.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rendering %q does not re-parse: %v", sql, rendered, err)
		}
		if !reflect.DeepEqual(stmt, again) {
			t.Fatalf("round-trip mismatch:\n input: %q\n rendered: %q", sql, rendered)
		}
	})
}
