package sqlparse

import (
	"reflect"
	"testing"
)

func TestParseGroupBy(t *testing.T) {
	stmt, err := Parse("select type, count(*) from photoobj where ra < 100 group by type")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.GroupBy == nil || stmt.GroupBy.Column != "type" {
		t.Fatalf("group by = %+v", stmt.GroupBy)
	}
}

func TestParseOrderBy(t *testing.T) {
	stmt, err := Parse("select ra, modelmag_r from photoobj order by modelmag_r desc")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.OrderBy == nil || stmt.OrderBy.Col.Column != "modelmag_r" || !stmt.OrderBy.Desc {
		t.Fatalf("order by = %+v", stmt.OrderBy)
	}
	stmt, err = Parse("select ra from photoobj order by ra asc")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.OrderBy.Desc {
		t.Fatal("asc parsed as desc")
	}
}

func TestParseGroupAndOrderRoundTrip(t *testing.T) {
	for _, sql := range []string{
		"select type, count(*) from photoobj group by type",
		"select s.specclass, avg(s.z) from specobj s where s.zconf > 0.9 group by s.specclass",
		"select top 10 objid, modelmag_r from photoobj where type = 3 order by modelmag_r",
		"select ra from photoobj order by ra desc",
	} {
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		again, err := Parse(stmt.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", stmt.String(), err)
		}
		if !reflect.DeepEqual(stmt, again) {
			t.Fatalf("round trip mismatch for %q", sql)
		}
	}
}

func TestParseGroupOrderErrors(t *testing.T) {
	for _, sql := range []string{
		"select a from t group",
		"select a from t group by",
		"select a from t order by",
		"select a from t order a",
		"select a from t group by 5",
	} {
		if _, err := Parse(sql); err == nil {
			t.Fatalf("Parse(%q) should fail", sql)
		}
	}
}
