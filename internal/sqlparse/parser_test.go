package sqlparse

import (
	"reflect"
	"testing"
)

// The paper's example query (Section 6), normalized to the subset's
// numeric types (specClass = 2 etc. are numeric in SDSS).
const paperQuery = `select p.objID, p.ra, p.dec, p.modelMag_g, s.z as redshift
 from SpecObj s, PhotoObj p
 where p.ObjID = s.ObjID and s.specClass = 2 and s.zConf > 0.95
   and p.modelMag_g > 17.0 and s.z < 0.01`

func TestParsePaperExampleQuery(t *testing.T) {
	stmt, err := Parse(paperQuery)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(stmt.Items) != 5 {
		t.Fatalf("items = %d, want 5", len(stmt.Items))
	}
	if stmt.Items[4].Alias != "redshift" || stmt.Items[4].Col != (ColRef{"s", "z"}) {
		t.Fatalf("item 5 = %+v, want s.z as redshift", stmt.Items[4])
	}
	if len(stmt.From) != 2 {
		t.Fatalf("from = %d tables, want 2", len(stmt.From))
	}
	if stmt.From[0] != (TableRef{"specobj", "s"}) || stmt.From[1] != (TableRef{"photoobj", "p"}) {
		t.Fatalf("from = %+v", stmt.From)
	}
	if len(stmt.Where) != 5 {
		t.Fatalf("where = %d conjuncts, want 5", len(stmt.Where))
	}
	join := stmt.Where[0]
	if !join.IsJoin() {
		t.Fatalf("first conjunct should be a join: %+v", join)
	}
	if join.Left != (ColRef{"p", "objid"}) || *join.RightCol != (ColRef{"s", "objid"}) {
		t.Fatalf("join condition = %+v", join)
	}
	if stmt.Where[2].Left != (ColRef{"s", "zconf"}) || stmt.Where[2].Op != OpGt || stmt.Where[2].Value != 0.95 {
		t.Fatalf("zconf conjunct = %+v", stmt.Where[2])
	}
}

func TestParseSimpleSelect(t *testing.T) {
	stmt, err := Parse("select ra, dec from photoobj")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Items) != 2 || stmt.Items[0].Col.Column != "ra" {
		t.Fatalf("stmt = %+v", stmt)
	}
	if len(stmt.Where) != 0 {
		t.Fatal("no where expected")
	}
}

func TestParseStar(t *testing.T) {
	stmt, err := Parse("select * from photoobj where ra between 10 and 20")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Items[0].Star {
		t.Fatal("star projection expected")
	}
	w := stmt.Where[0]
	if !w.Between || w.Lo != 10 || w.Hi != 20 {
		t.Fatalf("between = %+v", w)
	}
}

func TestParseTop(t *testing.T) {
	stmt, err := Parse("select top 10 objid from photoobj where type = 3")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Top != 10 {
		t.Fatalf("top = %d, want 10", stmt.Top)
	}
}

func TestParseAggregates(t *testing.T) {
	stmt, err := Parse("select count(*), avg(modelmag_r), min(z), max(z), sum(ew) from specobj")
	if err != nil {
		t.Fatal(err)
	}
	wantAggs := []AggFunc{AggCount, AggAvg, AggMin, AggMax, AggSum}
	for i, want := range wantAggs {
		if stmt.Items[i].Agg != want {
			t.Fatalf("item %d agg = %q, want %q", i, stmt.Items[i].Agg, want)
		}
	}
	if !stmt.Items[0].Star {
		t.Fatal("count(*) should be star")
	}
	if !stmt.HasAggregate() {
		t.Fatal("HasAggregate should be true")
	}
}

func TestParseAggNameAsColumn(t *testing.T) {
	// "count" not followed by '(' is an ordinary column name.
	stmt, err := Parse("select count from field")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Items[0].Agg != AggNone || stmt.Items[0].Col.Column != "count" {
		t.Fatalf("item = %+v", stmt.Items[0])
	}
}

func TestParseNegativeAndExponentNumbers(t *testing.T) {
	stmt, err := Parse("select ra from photoobj where dec > -12.5 and flags < 1e18")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Where[0].Value != -12.5 {
		t.Fatalf("value = %v, want -12.5", stmt.Where[0].Value)
	}
	if stmt.Where[1].Value != 1e18 {
		t.Fatalf("value = %v, want 1e18", stmt.Where[1].Value)
	}
}

func TestParseOperators(t *testing.T) {
	stmt, err := Parse("select a from t where a = 1 and b < 2 and c > 3 and d <= 4 and e >= 5 and f <> 6 and g != 7")
	if err != nil {
		t.Fatal(err)
	}
	want := []CompareOp{OpEq, OpLt, OpGt, OpLe, OpGe, OpNotEq, OpNotEq}
	for i, op := range want {
		if stmt.Where[i].Op != op {
			t.Fatalf("conjunct %d op = %q, want %q", i, stmt.Where[i].Op, op)
		}
	}
}

func TestParseCaseInsensitive(t *testing.T) {
	a, err := Parse("SELECT RA FROM PhotoObj WHERE Dec > 5")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("select ra from photoobj where dec > 5")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("case should not matter")
	}
}

func TestParseImplicitAlias(t *testing.T) {
	stmt, err := Parse("select p.ra r from photoobj p")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Items[0].Alias != "r" {
		t.Fatalf("alias = %q, want r", stmt.Items[0].Alias)
	}
	if stmt.From[0].Alias != "p" {
		t.Fatalf("table alias = %q, want p", stmt.From[0].Alias)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"update t set a = 1",
		"select",
		"select from t",
		"select a",
		"select a from",
		"select a from t where",
		"select a from t where a",
		"select a from t where a =",
		"select a from t where a between 1",
		"select a from t where a between 1 and",
		"select top 0 a from t",
		"select top x a from t",
		"select a from t where a = 1 garbage",
		"select a from t where a ! 1",
		"select a.b.c from t",
		"select count( from t",
		"select a from t where a = 'str'",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Fatalf("Parse(%q) should fail", sql)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("select a from t where a = 'oops'")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type = %T, want *SyntaxError", err)
	}
	if se.Pos <= 0 {
		t.Fatalf("error position = %d, want > 0", se.Pos)
	}
}

func TestRoundTrip(t *testing.T) {
	queries := []string{
		paperQuery,
		"select * from photoobj",
		"select top 50 objid, ra from photoobj where ra between 120 and 130 and dec > -5",
		"select count(*) from specobj where z < 0.1",
		"select avg(modelmag_r) as m from photoobj p where p.type = 3",
		"select p.objid, n.neighborobjid from photoobj p, neighbors n where p.objid = n.objid and n.distance < 0.01",
	}
	for _, sql := range queries {
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
		again, err := Parse(stmt.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", stmt.String(), err)
		}
		if !reflect.DeepEqual(stmt, again) {
			t.Fatalf("round trip mismatch:\n  first:  %+v\n  second: %+v", stmt, again)
		}
	}
}

func TestTableByQualifier(t *testing.T) {
	stmt, err := Parse("select s.z from specobj s, photoobj p where p.objid = s.objid")
	if err != nil {
		t.Fatal(err)
	}
	if tr := stmt.TableByQualifier("s"); tr == nil || tr.Name != "specobj" {
		t.Fatalf("qualifier s → %+v", tr)
	}
	if tr := stmt.TableByQualifier("photoobj"); tr == nil || tr.Name != "photoobj" {
		t.Fatalf("qualifier by name → %+v", tr)
	}
	if tr := stmt.TableByQualifier(""); tr != nil {
		t.Fatal("unqualified in a two-table query must not resolve")
	}
	if tr := stmt.TableByQualifier("x"); tr != nil {
		t.Fatal("unknown qualifier must not resolve")
	}
	single, _ := Parse("select z from specobj")
	if tr := single.TableByQualifier(""); tr == nil || tr.Name != "specobj" {
		t.Fatal("unqualified in a single-table query should resolve")
	}
}
