package sqlparse

import "strconv"

// parser is a recursive-descent parser over the lexer's token stream
// with one token of lookahead.
type parser struct {
	lex *lexer
	tok token
	err error
}

// Parse parses one SELECT statement.
func Parse(sql string) (*SelectStmt, error) {
	p := &parser{lex: &lexer{src: sql}}
	p.advance()
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected trailing input %q", p.tok.text)
	}
	return stmt, nil
}

func (p *parser) advance() {
	if p.err != nil {
		return
	}
	p.tok, p.err = p.lex.next()
}

func (p *parser) errorf(format string, args ...any) error {
	if p.err != nil {
		return p.err
	}
	return p.lex.errorf(p.tok.pos, format, args...)
}

// expectKeyword consumes the given keyword identifier.
func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tokIdent || p.tok.text != kw {
		return p.errorf("expected %q, got %q", kw, p.tok.text)
	}
	p.advance()
	return p.err
}

// isKeyword reports whether the current token is the given keyword.
func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tokIdent && p.tok.text == kw
}

// reserved words that terminate identifier positions.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "and": true,
	"between": true, "as": true, "top": true,
	"group": true, "order": true, "by": true, "asc": true, "desc": true,
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	if p.isKeyword("top") {
		p.advance()
		if p.tok.kind != tokNumber {
			return nil, p.errorf("expected number after TOP, got %q", p.tok.text)
		}
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil || n <= 0 {
			return nil, p.errorf("invalid TOP count %q", p.tok.text)
		}
		stmt.Top = n
		p.advance()
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if p.tok.kind != tokComma {
			break
		}
		p.advance()
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, tr)
		if p.tok.kind != tokComma {
			break
		}
		p.advance()
	}
	if p.isKeyword("where") {
		p.advance()
		for {
			cond, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			stmt.Where = append(stmt.Where, cond)
			if !p.isKeyword("and") {
				break
			}
			p.advance()
		}
	}
	if p.isKeyword("group") {
		p.advance()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		col, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		stmt.GroupBy = &col
	}
	if p.isKeyword("order") {
		p.advance()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		col, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		spec := &OrderSpec{Col: col}
		if p.isKeyword("desc") {
			spec.Desc = true
			p.advance()
		} else if p.isKeyword("asc") {
			p.advance()
		}
		stmt.OrderBy = spec
	}
	return stmt, p.err
}

var aggFuncs = map[string]AggFunc{
	"count": AggCount, "sum": AggSum, "avg": AggAvg, "min": AggMin, "max": AggMax,
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	var item SelectItem
	if p.tok.kind == tokStar {
		p.advance()
		item.Star = true
		return item, p.err
	}
	if p.tok.kind != tokIdent {
		return item, p.errorf("expected projection, got %q", p.tok.text)
	}
	if agg, ok := aggFuncs[p.tok.text]; ok {
		// Lookahead: aggregate call only if followed by '('.
		save := *p.lex
		saveTok := p.tok
		p.advance()
		if p.tok.kind == tokLParen {
			p.advance()
			item.Agg = agg
			if p.tok.kind == tokStar {
				item.Star = true
				p.advance()
			} else {
				col, err := p.parseColRef()
				if err != nil {
					return item, err
				}
				item.Col = col
			}
			if p.tok.kind != tokRParen {
				return item, p.errorf("expected ')', got %q", p.tok.text)
			}
			p.advance()
			return p.parseAlias(item)
		}
		// Not a call: restore and treat as a column name.
		*p.lex = save
		p.tok = saveTok
	}
	col, err := p.parseColRef()
	if err != nil {
		return item, err
	}
	item.Col = col
	return p.parseAlias(item)
}

// parseAlias consumes an optional [AS] alias after a projection.
func (p *parser) parseAlias(item SelectItem) (SelectItem, error) {
	if p.isKeyword("as") {
		p.advance()
		if p.tok.kind != tokIdent {
			return item, p.errorf("expected alias after AS, got %q", p.tok.text)
		}
		item.Alias = p.tok.text
		p.advance()
		return item, p.err
	}
	if p.tok.kind == tokIdent && !reserved[p.tok.text] {
		item.Alias = p.tok.text
		p.advance()
	}
	return item, p.err
}

func (p *parser) parseColRef() (ColRef, error) {
	var c ColRef
	if p.tok.kind != tokIdent || reserved[p.tok.text] {
		return c, p.errorf("expected column reference, got %q", p.tok.text)
	}
	first := p.tok.text
	p.advance()
	if p.tok.kind == tokDot {
		p.advance()
		if p.tok.kind != tokIdent {
			return c, p.errorf("expected column after '.', got %q", p.tok.text)
		}
		c.Table = first
		c.Column = p.tok.text
		p.advance()
		return c, p.err
	}
	c.Column = first
	return c, p.err
}

func (p *parser) parseTableRef() (TableRef, error) {
	var tr TableRef
	if p.tok.kind != tokIdent || reserved[p.tok.text] {
		return tr, p.errorf("expected table name, got %q", p.tok.text)
	}
	tr.Name = p.tok.text
	p.advance()
	if p.isKeyword("as") {
		p.advance()
		if p.tok.kind != tokIdent {
			return tr, p.errorf("expected alias after AS, got %q", p.tok.text)
		}
		tr.Alias = p.tok.text
		p.advance()
		return tr, p.err
	}
	if p.tok.kind == tokIdent && !reserved[p.tok.text] {
		tr.Alias = p.tok.text
		p.advance()
	}
	return tr, p.err
}

func (p *parser) parseCondition() (Condition, error) {
	var c Condition
	left, err := p.parseColRef()
	if err != nil {
		return c, err
	}
	c.Left = left
	if p.isKeyword("between") {
		p.advance()
		c.Between = true
		lo, err := p.parseNumber()
		if err != nil {
			return c, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return c, err
		}
		hi, err := p.parseNumber()
		if err != nil {
			return c, err
		}
		c.Lo, c.Hi = lo, hi
		return c, p.err
	}
	if p.tok.kind != tokOp {
		return c, p.errorf("expected comparison operator, got %q", p.tok.text)
	}
	c.Op = CompareOp(p.tok.text)
	p.advance()
	switch p.tok.kind {
	case tokNumber:
		v, err := p.parseNumber()
		if err != nil {
			return c, err
		}
		c.Value = v
	case tokIdent:
		right, err := p.parseColRef()
		if err != nil {
			return c, err
		}
		c.RightCol = &right
	default:
		return c, p.errorf("expected value or column, got %q", p.tok.text)
	}
	return c, p.err
}

func (p *parser) parseNumber() (float64, error) {
	if p.tok.kind != tokNumber {
		return 0, p.errorf("expected number, got %q", p.tok.text)
	}
	v, err := strconv.ParseFloat(p.tok.text, 64)
	if err != nil {
		return 0, p.errorf("invalid number %q", p.tok.text)
	}
	p.advance()
	return v, p.err
}
