package federation

import (
	"fmt"
	"sync/atomic"
	"time"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/netcost"
	"bypassyield/internal/obs"
	"bypassyield/internal/obs/ledger"
	"bypassyield/internal/sqlparse"
)

// Config assembles a mediator.
type Config struct {
	// Schema is the federated release.
	Schema *catalog.Schema
	// Engine executes queries (a full copy of the release, possibly
	// sampled; yields are logical either way).
	Engine *engine.DB
	// Policy is a single bypass-yield cache instance. It pins the
	// decision plane to one partition (a policy instance is
	// single-goroutine); use NewPolicy to shard. Nil with no NewPolicy
	// means no caching (every access bypasses).
	Policy core.Policy
	// NewPolicy, when set, builds one policy instance per decision
	// partition: shard is the partition index, capacity the partition's
	// exact slice of Capacity. All instances must be the same algorithm
	// (the plane has one policy name). Mutually exclusive with Policy.
	NewPolicy func(shard int, capacity int64) (core.Policy, error)
	// Capacity is the total cache capacity in bytes, split exactly
	// across partitions when NewPolicy is set (ignored with Policy,
	// which carries its own capacity).
	Capacity int64
	// Granularity selects table or column objects.
	Granularity Granularity
	// Net is the WAN cost model; nil means uniform.
	Net *netcost.Model
	// Obs, when non-nil, receives the mediator's telemetry: per-query
	// mediation latency (federation.query_latency_us), objects touched
	// (federation.objects_touched), and the core decision/byte-flow
	// families (see core.NewTelemetry). The registry is shared — the
	// proxy serves it over MsgMetrics.
	Obs *obs.Registry
	// Ledger, when non-nil, receives one explained DecisionRecord per
	// object access (served over MsgDecisions by the proxy).
	Ledger *ledger.Ledger
	// Shadows enables online counterfactual accounting: every access is
	// replayed through always-bypass and LRU-K shadow baselines plus
	// the ski-rental bound, feeding the core.bytes_saved_vs_* gauges.
	Shadows bool
	// Shards is the decision-plane partition count, rounded up to a
	// power of two. 0 means GOMAXPROCS rounded up; 1 is the fully
	// serialized single-partition plane. Counts above 1 require
	// NewPolicy (each partition owns its own policy instance).
	Shards int
}

// SiteHealth reports whether a federation site can currently serve
// traffic. The proxy implements it over its per-site circuit
// breakers; the mediator consults it before every decision so an
// unreachable site degrades to serve-from-cache or a failed leg
// instead of a doomed RPC.
type SiteHealth interface {
	// SiteAvailable reports whether the site admits traffic; when it
	// does not, reason explains why ("breaker open site=X ...").
	SiteAvailable(site string) (ok bool, reason string)
}

// Mediator is the federation entry point the paper collocates with
// the proxy cache: it receives SQL, resolves it against the release,
// executes it, decomposes the yield across referenced objects, and
// drives the cache policy with full flow accounting.
//
// The mediator is safe for concurrent use. Query execution (bind,
// engine evaluation, yield decomposition) runs lock-free — the engine
// is an immutable column store with atomic counters — while the
// decision phase runs over per-object partitions (see shard.go): each
// partition serializes its own clock, policy, accounting, and shadow
// baselines under its own lock, so decisions on unrelated objects
// proceed in parallel while Σ decision yields = D_A holds exactly per
// partition and (by summation) globally. A global atomic sequence
// orders queries across partitions for the ledger and the journal.
// Callers execute the decided WAN legs after QueryStmtTraced returns,
// outside any mediator lock — the decide-then-execute handoff.
type Mediator struct {
	cfg     Config
	objects map[core.ObjectID]core.Object

	// policyName and capacity describe the whole plane: every
	// partition runs the same algorithm, capacities sum to capacity.
	policyName string
	capacity   int64

	// g is the global query sequence: incremented once per query, it
	// is the plane-wide clock (Seq, ledger T, journal T) and the total
	// query count.
	g atomic.Int64

	// shards are the decision partitions. health and journal are
	// written under the all-partitions barrier and read under any
	// single partition lock.
	shards  []*decisionShard
	health  SiteHealth
	journal Journal

	// Telemetry (no-ops when cfg.Obs is nil).
	tel          *core.Telemetry
	queryLatency *obs.Histogram
	objsTouched  *obs.Counter
	queriesMet   *obs.Counter

	// Decision audit trail (nil-safe no-op when not configured).
	ledger *ledger.Ledger

	// Replay mode, set by RestoreState: when the restored snapshot was
	// taken under a different partition layout, recorded partition
	// clocks are meaningless and replay skips by global sequence
	// against replayGBase instead (see state.go).
	replayRehash bool
	replayGBase  int64
}

// AccessDecision records the cache's handling of one object access
// within a query.
type AccessDecision struct {
	// Object is the referenced object.
	Object core.ObjectID
	// Site is the owning federation site.
	Site string
	// Yield is the access's share of the query yield. On a failed leg
	// it is the yield the leg would have delivered; nothing was
	// charged for it.
	Yield int64
	// Decision is the cache's choice (Hit for forced serves;
	// meaningless when Failed).
	Decision core.Decision
	// Forced marks a serve-from-cache the policy did not choose
	// freely: the owning site was unavailable, bypass was impossible,
	// and the cached copy was served stale.
	Forced bool
	// Failed marks a leg dropped entirely: site unavailable and the
	// object not cached.
	Failed bool
	// Reason explains a forced or failed decision
	// ("forced-cache: breaker open site=B", ...).
	Reason string
}

// SiteError annotates one unavailable site's impact on a query.
type SiteError struct {
	// Site is the unavailable federation member.
	Site string
	// Reason is the health detail ("breaker open site=B retry-in=2s").
	Reason string
	// LostBytes is the yield dropped from the result because the
	// site's uncached objects could not be served.
	LostBytes int64
}

// ShardWait is the time one query spent blocked on one decision
// partition's lock.
type ShardWait struct {
	// Shard is the partition index.
	Shard int
	// WaitUS is the blocked time in microseconds.
	WaitUS int64
}

// QueryReport is the outcome of one mediated query.
type QueryReport struct {
	// SQL is the original statement.
	SQL string
	// Seq is the query's position in the mediator's stream.
	Seq int64
	// Result is the execution result (logical cardinality and yield).
	// In degraded mode Result.Bytes excludes the yield of failed legs
	// — it is what the client actually receives, so it still equals
	// the accounting's delivered-bytes increment (D_A).
	Result *engine.Result
	// Decisions lists per-object cache decisions, in access order.
	Decisions []AccessDecision
	// Degraded reports that at least one access was forced or failed.
	Degraded bool
	// SiteErrors details each unavailable site touched by the query.
	SiteErrors []SiteError
	// Phase timings in microseconds, consumed by the proxy's flight
	// recorder for critical-path attribution: ExecUS is the lock-free
	// bind/execute phase, LockWaitUS the total time blocked waiting
	// for decision-partition locks, DecideUS the decision work itself
	// (excluding lock waits).
	ExecUS     int64
	LockWaitUS int64
	DecideUS   int64
	// ShardWaits breaks LockWaitUS down per visited partition, in
	// visit (ascending partition) order.
	ShardWaits []ShardWait
}

// New builds a mediator. The engine must serve the same schema.
func New(cfg Config) (*Mediator, error) {
	if cfg.Schema == nil || cfg.Engine == nil {
		return nil, fmt.Errorf("federation: schema and engine are required")
	}
	if cfg.Engine.Schema() != cfg.Schema {
		return nil, fmt.Errorf("federation: engine serves schema %q, mediator configured for %q",
			cfg.Engine.Schema().Name, cfg.Schema.Name)
	}
	if cfg.Policy != nil && cfg.NewPolicy != nil {
		return nil, fmt.Errorf("federation: Policy and NewPolicy are mutually exclusive")
	}
	nshards := 1
	switch {
	case cfg.Policy != nil:
		// A single policy instance is single-goroutine: it cannot span
		// partitions.
		if cfg.Shards > 1 {
			return nil, fmt.Errorf("federation: %d decision shards require NewPolicy (one policy instance per partition)", cfg.Shards)
		}
	default:
		if cfg.NewPolicy != nil || cfg.Shards > 0 {
			nshards = NumShards(cfg.Shards)
		}
	}
	if cfg.Net == nil {
		cfg.Net = netcost.Uniform()
	}
	m := &Mediator{
		cfg:          cfg,
		objects:      Objects(cfg.Schema, cfg.Granularity, cfg.Net),
		tel:          core.NewTelemetry(cfg.Obs),
		queryLatency: cfg.Obs.Histogram("federation.query_latency_us", obs.DefaultLatencyBuckets()),
		objsTouched:  cfg.Obs.Counter("federation.objects_touched"),
		queriesMet:   cfg.Obs.Counter("federation.queries"),
		ledger:       cfg.Ledger,
	}
	shards, err := newShards(cfg, nshards, m.tel)
	if err != nil {
		return nil, err
	}
	m.shards = shards
	m.policyName = "none"
	if p := shards[0].policy; p != nil {
		m.policyName = p.Name()
		for _, sh := range shards {
			if sh.policy.Name() != m.policyName {
				return nil, fmt.Errorf("federation: decision shard %d runs policy %q, shard 0 runs %q (one algorithm per plane)",
					sh.idx, sh.policy.Name(), m.policyName)
			}
			m.capacity += sh.policy.Capacity()
		}
	}
	return m, nil
}

// Obs returns the registry the mediator publishes into (nil when
// observability is not configured).
func (m *Mediator) Obs() *obs.Registry { return m.cfg.Obs }

// SetHealth attaches a site-health source (the proxy's breakers).
// Nil detaches; every site is then considered available.
func (m *Mediator) SetHealth(h SiteHealth) {
	m.lockAll()
	m.health = h
	m.unlockAll()
}

// Objects returns the cacheable-object universe.
func (m *Mediator) Objects() map[core.ObjectID]core.Object { return m.objects }

// Schema returns the federated release schema.
func (m *Mediator) Schema() *catalog.Schema { return m.cfg.Schema }

// Granularity returns the configured object granularity.
func (m *Mediator) Granularity() Granularity { return m.cfg.Granularity }

// Policy returns the cache policy when the plane has exactly one
// partition (nil when caching is disabled or the plane is sharded —
// per-partition instances are not safe to touch outside their locks;
// use PolicyStats).
func (m *Mediator) Policy() core.Policy {
	if len(m.shards) == 1 {
		return m.shards[0].policy
	}
	return nil
}

// ShardCount returns the number of decision partitions.
func (m *Mediator) ShardCount() int { return len(m.shards) }

// Accounting returns the accumulated flow accounting summed across
// partitions, captured under the all-partitions barrier (consistent:
// never mid-access).
func (m *Mediator) Accounting() core.Accounting {
	m.lockAll()
	defer m.unlockAll()
	return m.accountingLocked()
}

// accountingLocked sums partition accountings; callers hold all
// partition locks. Queries is the global sequence, not the partition
// sum (a query touching k partitions advances k partition clocks).
func (m *Mediator) accountingLocked() core.Accounting {
	var out core.Accounting
	for _, sh := range m.shards {
		out.Add(sh.acct)
	}
	out.Queries = m.g.Load()
	return out
}

// ShardAccountings returns each partition's own flow accounting,
// captured under the all-partitions barrier. Per partition the
// reconciliation invariant holds on its own: Σ that partition's
// decision yields = its DeliveredBytes().
func (m *Mediator) ShardAccountings() []core.Accounting {
	m.lockAll()
	defer m.unlockAll()
	out := make([]core.Accounting, len(m.shards))
	for i, sh := range m.shards {
		out[i] = sh.acct
	}
	return out
}

// Telemetry returns the mediator's core telemetry (nil when
// observability is not configured); the proxy publishes its pipeline
// concurrency gauges through it.
func (m *Mediator) Telemetry() *core.Telemetry { return m.tel }

// Ledger returns the decision ledger (nil when not configured).
func (m *Mediator) Ledger() *ledger.Ledger { return m.ledger }

// Shadows returns the counterfactual shadow set when the plane has
// exactly one partition (nil when disabled or sharded; use
// ShadowStats for the aggregate view). The set mutates under its
// partition's lock.
func (m *Mediator) Shadows() *core.ShadowSet {
	if len(m.shards) == 1 {
		return m.shards[0].shadows
	}
	return nil
}

// PolicyStats is a consistent snapshot of the cache policy's
// externally visible state, aggregated across decision partitions
// under the all-partitions barrier.
type PolicyStats struct {
	Name     string
	Used     int64
	Capacity int64
	// Contents lists cached object ids when the policy implements
	// core.ContentLister (nil otherwise), concatenated across
	// partitions.
	Contents []core.ObjectID
}

// PolicyStats snapshots the policy plane under the all-partitions
// barrier so readers never observe a cache mid-decision; ok is false
// when caching is disabled.
func (m *Mediator) PolicyStats() (ps PolicyStats, ok bool) {
	if m.shards[0].policy == nil {
		return PolicyStats{}, false
	}
	m.lockAll()
	defer m.unlockAll()
	ps = PolicyStats{Name: m.policyName, Capacity: m.capacity}
	for _, sh := range m.shards {
		ps.Used += sh.policy.Used()
		if cl, isLister := sh.policy.(core.ContentLister); isLister {
			ps.Contents = append(ps.Contents, cl.Contents()...)
		}
	}
	return ps, true
}

// ShadowStats is a consistent snapshot of the counterfactual
// baselines, aggregated across decision partitions under the
// all-partitions barrier.
type ShadowStats struct {
	Baselines             []core.ShadowResult
	OptBoundBytes         int64
	CompetitiveRatioMilli int64
}

// ShadowStats snapshots the shadow baselines under the all-partitions
// barrier; zero-valued when shadows are disabled. Baselines and the
// ski-rental bound sum across partitions; the competitive ratio is
// total realized WAN over the total bound.
func (m *Mediator) ShadowStats() ShadowStats {
	m.lockAll()
	defer m.unlockAll()
	var out ShadowStats
	var realizedWAN int64
	for _, sh := range m.shards {
		realizedWAN += sh.shadows.Realized().WANBytes()
		out.OptBoundBytes += sh.shadows.OptBound()
		for bi, r := range sh.shadows.Baselines() {
			if bi == len(out.Baselines) {
				out.Baselines = append(out.Baselines, core.ShadowResult{Name: r.Name})
			}
			out.Baselines[bi].Acct.Add(r.Acct)
			out.Baselines[bi].SavedBytes += r.SavedBytes
		}
	}
	if out.OptBoundBytes > 0 {
		out.CompetitiveRatioMilli = realizedWAN * 1000 / out.OptBoundBytes
	}
	return out
}

// Clock returns the number of queries mediated so far (the global
// query sequence).
func (m *Mediator) Clock() int64 { return m.g.Load() }

// Query parses, executes, and accounts one statement.
func (m *Mediator) Query(sql string) (*QueryReport, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return m.QueryStmt(sql, stmt)
}

// QueryStmt is Query over a pre-parsed statement.
func (m *Mediator) QueryStmt(sql string, stmt *sqlparse.SelectStmt) (*QueryReport, error) {
	return m.QueryStmtTraced(sql, stmt, "")
}

// QueryStmtTraced is QueryStmt carrying the distributed trace id of
// the enclosing query; ledger records emitted for its accesses carry
// the id, linking span waterfalls to the decisions inside them.
func (m *Mediator) QueryStmtTraced(sql string, stmt *sqlparse.SelectStmt, traceID string) (*QueryReport, error) {
	start := time.Now()
	// Execution phase — lock-free. Bind and engine evaluation read only
	// immutable schema/column data; concurrent queries overlap here.
	b, err := engine.Bind(m.cfg.Schema, stmt)
	if err != nil {
		return nil, err
	}
	res, err := m.cfg.Engine.Execute(stmt)
	if err != nil {
		return nil, err
	}
	accs := Decompose(b, m.cfg.Schema.Name, res.Bytes, m.cfg.Granularity)
	// Resolve objects before taking any lock; the universe is immutable.
	objs := make([]core.Object, len(accs))
	for i, acc := range accs {
		obj, ok := m.objects[acc.Object]
		if !ok {
			return nil, fmt.Errorf("federation: decomposition produced unknown object %s", acc.Object)
		}
		objs[i] = obj
	}

	execUS := time.Since(start).Microseconds()

	rep, err := m.decide(sql, traceID, res, accs, objs)
	if err != nil {
		return nil, err
	}
	rep.ExecUS = execUS
	m.queryLatency.Observe(time.Since(start).Microseconds())
	return rep, nil
}

// decide runs the decision phase over pre-resolved accesses. The
// query claims its global sequence number, then visits each touched
// decision partition in ascending index order holding at most one
// partition lock at a time; within a partition, decisions stay
// sequential in partition-clock order so Σ decision yields = D_A is
// exact per partition, and summation keeps it exact globally. The
// contention benchmark drives this entry point directly.
func (m *Mediator) decide(sql, traceID string, res *engine.Result, accs []core.Access, objs []core.Object) (*QueryReport, error) {
	g := m.g.Add(1)
	m.queriesMet.Add(1)
	m.tel.RecordQuery()
	rep := &QueryReport{SQL: sql, Seq: g, Result: res}
	if len(accs) == 0 {
		return rep, nil
	}
	decideStart := time.Now()
	rep.Decisions = make([]AccessDecision, len(accs))
	shardIdx := make([]int, len(accs))
	for i := range accs {
		shardIdx[i] = ShardOf(objs[i].ID, len(m.shards))
	}
	var totalWait time.Duration
	// Ascending-order partition sweep: repeatedly visit the smallest
	// untouched partition index present in the access set. Queries
	// touch a handful of objects, so the quadratic scan is cheaper
	// than sorting.
	prev := -1
	for {
		next := len(m.shards)
		for _, si := range shardIdx {
			if si > prev && si < next {
				next = si
			}
		}
		if next == len(m.shards) {
			break
		}
		if err := m.decideShard(m.shards[next], g, rep, accs, objs, shardIdx, traceID, &totalWait); err != nil {
			return nil, err
		}
		prev = next
	}
	if rep.Degraded {
		m.tel.RecordDegradedQuery()
	}
	m.tel.ObserveDecideWait(totalWait)
	rep.LockWaitUS = totalWait.Microseconds()
	rep.DecideUS = time.Since(decideStart).Microseconds() - rep.LockWaitUS
	if rep.DecideUS < 0 {
		rep.DecideUS = 0
	}
	return rep, nil
}

// decideShard processes the query's accesses owned by one partition
// under that partition's lock.
func (m *Mediator) decideShard(sh *decisionShard, g int64, rep *QueryReport, accs []core.Access, objs []core.Object, shardIdx []int, traceID string, totalWait *time.Duration) error {
	waitStart := time.Now()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	wait := time.Since(waitStart)
	*totalWait += wait
	m.tel.RecordShardQuery(sh.label, wait)
	rep.ShardWaits = append(rep.ShardWaits, ShardWait{Shard: sh.idx, WaitUS: wait.Microseconds()})
	sh.t++
	sh.acct.Queries++
	for i := range accs {
		if shardIdx[i] != sh.idx {
			continue
		}
		obj := objs[i]
		// Degraded mode: an unavailable site makes bypass and load
		// impossible, so the policy is not consulted (outage traffic
		// must not distort its learned rate profiles). The access is
		// forced to serve-from-cache or dropped as a failed leg.
		if m.health != nil {
			if ok, reason := m.health.SiteAvailable(obj.Site); !ok {
				if err := m.degradedAccess(sh, g, rep, i, obj, accs[i].Yield, reason, traceID); err != nil {
					return err
				}
				continue
			}
		}
		d := core.Bypass
		if sh.policy != nil {
			decideStart := time.Now()
			d = sh.policy.Access(sh.t, obj, accs[i].Yield)
			m.tel.ObserveDecide(time.Since(decideStart))
		}
		if err := core.Account(&sh.acct, obj, accs[i].Yield, d); err != nil {
			return err
		}
		m.tel.RecordAccess(m.policyName, obj, accs[i].Yield, d)
		sh.shadows.Access(sh.t, obj, accs[i].Yield, d)
		if m.ledger != nil {
			m.ledger.Record(core.DecisionRecordFor(g, sh.policy, traceID, obj, accs[i].Yield, d))
		}
		if m.journal != nil {
			m.journal.JournalAccess(JournalRecord{Kind: JournalAccess, T: g, ShardT: sh.t, Object: obj.ID, Yield: accs[i].Yield, Decision: d})
		}
		m.objsTouched.Add(1)
		rep.Decisions[i] = AccessDecision{
			Object:   accs[i].Object,
			Site:     obj.Site,
			Yield:    accs[i].Yield,
			Decision: d,
		}
	}
	if sh.policy != nil {
		if ev := sh.policy.Evictions(); ev > sh.lastEvictions {
			m.tel.RecordEvictions(m.policyName, ev-sh.lastEvictions)
			sh.lastEvictions = ev
		}
	}
	return nil
}

// degradedAccess handles one access whose owning site is unavailable,
// under the owning partition's lock. Two outcomes, both fully
// accounted:
//
//   - Object cached → forced hit: the cached (possibly stale) copy is
//     served and charged as a hit, so D_A reconciliation stays exact.
//     The ledger records the forced decision with reason
//     "forced-cache: <detail>" and Stale set.
//   - Object not cached → failed leg: nothing is delivered and
//     nothing is charged. The query's result shrinks by the leg's
//     yield, the ledger records action "failed" with zero yield and
//     WAN cost, and the report carries a per-site error annotation.
func (m *Mediator) degradedAccess(sh *decisionShard, g int64, rep *QueryReport, idx int, obj core.Object, yield int64, reason, traceID string) error {
	m.objsTouched.Add(1)
	if sh.policy != nil && sh.policy.Contains(obj.ID) {
		full := core.ReasonForcedCache + ": " + reason
		if err := core.Account(&sh.acct, obj, yield, core.Hit); err != nil {
			return err
		}
		m.tel.RecordForced(m.policyName, obj.Site, obj, yield)
		sh.shadows.Access(sh.t, obj, yield, core.Hit)
		if m.ledger != nil {
			rec := core.DecisionRecordFor(g, sh.policy, traceID, obj, yield, core.Hit)
			rec.Reason = full
			rec.Stale = true
			m.ledger.Record(rec)
		}
		if m.journal != nil {
			m.journal.JournalAccess(JournalRecord{Kind: JournalForced, T: g, ShardT: sh.t, Object: obj.ID, Yield: yield, Decision: core.Hit})
		}
		rep.Decisions[idx] = AccessDecision{
			Object:   obj.ID,
			Site:     obj.Site,
			Yield:    yield,
			Decision: core.Hit,
			Forced:   true,
			Reason:   full,
		}
		noteSiteError(rep, obj.Site, reason, 0)
		return nil
	}
	full := core.ReasonFailedLeg + ": " + reason
	m.tel.RecordFailedLeg(obj.Site)
	if m.ledger != nil {
		rec := ledger.DecisionRecord{
			T:         g,
			Trace:     traceID,
			Object:    string(obj.ID),
			Action:    core.ReasonFailedLeg,
			Size:      obj.Size,
			FetchCost: obj.FetchCost,
			Reason:    full,
		}
		if sh.policy != nil {
			rec.Policy = sh.policy.Name()
		}
		m.ledger.Record(rec)
	}
	if m.journal != nil {
		m.journal.JournalAccess(JournalRecord{Kind: JournalFailed, T: g, ShardT: sh.t, Object: obj.ID, Yield: yield})
	}
	// The client never receives this leg's bytes: shrink the result so
	// delivered bytes still equal the accounting's D_A increment.
	rep.Result.Bytes -= yield
	if rep.Result.Bytes < 0 {
		rep.Result.Bytes = 0
	}
	rep.Decisions[idx] = AccessDecision{
		Object: obj.ID,
		Site:   obj.Site,
		Yield:  yield,
		Failed: true,
		Reason: full,
	}
	noteSiteError(rep, obj.Site, reason, yield)
	return nil
}

// noteSiteError marks the report degraded, aggregating the lost yield
// per site.
func noteSiteError(rep *QueryReport, site, reason string, lost int64) {
	rep.Degraded = true
	for i := range rep.SiteErrors {
		if rep.SiteErrors[i].Site == site {
			rep.SiteErrors[i].LostBytes += lost
			return
		}
	}
	rep.SiteErrors = append(rep.SiteErrors, SiteError{Site: site, Reason: reason, LostBytes: lost})
}

// Subqueries splits a bound multi-table statement into one
// single-table statement per FROM table, as the paper's mediator ships
// sub-queries to each member database: each subquery projects the
// columns the mediator needs from that table (its referenced columns,
// including join keys) and applies the table's local literal
// predicates. Cross-table conditions are evaluated at the mediator
// after the per-site results return.
func Subqueries(b *engine.Bound) []*sqlparse.SelectStmt {
	out := make([]*sqlparse.SelectStmt, len(b.Tables))
	refs := b.ReferencedColumns()
	for i, t := range b.Tables {
		sub := &sqlparse.SelectStmt{
			From: []sqlparse.TableRef{{Name: t.Name}},
		}
		for _, r := range refs {
			if r.TableIdx != i {
				continue
			}
			sub.Items = append(sub.Items, sqlparse.SelectItem{
				Col: sqlparse.ColRef{Column: r.Col.Name},
			})
		}
		if len(sub.Items) == 0 {
			sub.Items = []sqlparse.SelectItem{{Star: true}}
		}
		for _, c := range b.Conds {
			if c.Right != nil || c.Left.TableIdx != i {
				continue
			}
			cond := c.Cond
			cond.Left = sqlparse.ColRef{Column: c.Left.Col.Name}
			sub.Where = append(sub.Where, cond)
		}
		out[i] = sub
	}
	return out
}
