package federation

import (
	"fmt"
	"sync"
	"time"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/netcost"
	"bypassyield/internal/obs"
	"bypassyield/internal/obs/ledger"
	"bypassyield/internal/sqlparse"
)

// Config assembles a mediator.
type Config struct {
	// Schema is the federated release.
	Schema *catalog.Schema
	// Engine executes queries (a full copy of the release, possibly
	// sampled; yields are logical either way).
	Engine *engine.DB
	// Policy is the bypass-yield cache algorithm. Nil means no
	// caching (every access bypasses).
	Policy core.Policy
	// Granularity selects table or column objects.
	Granularity Granularity
	// Net is the WAN cost model; nil means uniform.
	Net *netcost.Model
	// Obs, when non-nil, receives the mediator's telemetry: per-query
	// mediation latency (federation.query_latency_us), objects touched
	// (federation.objects_touched), and the core decision/byte-flow
	// families (see core.NewTelemetry). The registry is shared — the
	// proxy serves it over MsgMetrics.
	Obs *obs.Registry
	// Ledger, when non-nil, receives one explained DecisionRecord per
	// object access (served over MsgDecisions by the proxy).
	Ledger *ledger.Ledger
	// Shadows enables online counterfactual accounting: every access is
	// replayed through always-bypass and LRU-K shadow baselines plus
	// the ski-rental bound, feeding the core.bytes_saved_vs_* gauges.
	Shadows bool
}

// SiteHealth reports whether a federation site can currently serve
// traffic. The proxy implements it over its per-site circuit
// breakers; the mediator consults it before every decision so an
// unreachable site degrades to serve-from-cache or a failed leg
// instead of a doomed RPC.
type SiteHealth interface {
	// SiteAvailable reports whether the site admits traffic; when it
	// does not, reason explains why ("breaker open site=X ...").
	SiteAvailable(site string) (ok bool, reason string)
}

// Mediator is the federation entry point the paper collocates with
// the proxy cache: it receives SQL, resolves it against the release,
// executes it, decomposes the yield across referenced objects, and
// drives the cache policy with full flow accounting.
//
// The mediator is safe for concurrent use. Query execution (bind,
// engine evaluation, yield decomposition) runs lock-free — the engine
// is an immutable column store with atomic counters — while the
// decision phase (query clock, policy, accounting, ledger, shadows)
// runs under one internal mutex. Decisions therefore stay globally
// ordered: each query observes a consistent policy state, the clock t
// increments once per query, and Σ decision yields = D_A holds exactly
// however many queries overlap. Callers execute the decided WAN legs
// after QueryStmtTraced returns, outside any mediator lock — the
// decide-then-execute handoff.
type Mediator struct {
	cfg     Config
	objects map[core.ObjectID]core.Object
	health  SiteHealth

	// mu guards the sequential decision state below: the query clock,
	// accounting, policy, ledger ordering, shadow baselines, and the
	// eviction watermark.
	mu   sync.Mutex
	acct core.Accounting
	t    int64

	// Telemetry (no-ops when cfg.Obs is nil).
	tel           *core.Telemetry
	queryLatency  *obs.Histogram
	objsTouched   *obs.Counter
	queriesMet    *obs.Counter
	lastEvictions int64

	// Decision audit trail (nil-safe no-ops when not configured).
	ledger  *ledger.Ledger
	shadows *core.ShadowSet

	// journal, when attached, receives one record per accounted access
	// under the decision lock (crash-safe persistence, see state.go).
	journal Journal
}

// AccessDecision records the cache's handling of one object access
// within a query.
type AccessDecision struct {
	// Object is the referenced object.
	Object core.ObjectID
	// Site is the owning federation site.
	Site string
	// Yield is the access's share of the query yield. On a failed leg
	// it is the yield the leg would have delivered; nothing was
	// charged for it.
	Yield int64
	// Decision is the cache's choice (Hit for forced serves;
	// meaningless when Failed).
	Decision core.Decision
	// Forced marks a serve-from-cache the policy did not choose
	// freely: the owning site was unavailable, bypass was impossible,
	// and the cached copy was served stale.
	Forced bool
	// Failed marks a leg dropped entirely: site unavailable and the
	// object not cached.
	Failed bool
	// Reason explains a forced or failed decision
	// ("forced-cache: breaker open site=B", ...).
	Reason string
}

// SiteError annotates one unavailable site's impact on a query.
type SiteError struct {
	// Site is the unavailable federation member.
	Site string
	// Reason is the health detail ("breaker open site=B retry-in=2s").
	Reason string
	// LostBytes is the yield dropped from the result because the
	// site's uncached objects could not be served.
	LostBytes int64
}

// QueryReport is the outcome of one mediated query.
type QueryReport struct {
	// SQL is the original statement.
	SQL string
	// Seq is the query's position in the mediator's stream.
	Seq int64
	// Result is the execution result (logical cardinality and yield).
	// In degraded mode Result.Bytes excludes the yield of failed legs
	// — it is what the client actually receives, so it still equals
	// the accounting's delivered-bytes increment (D_A).
	Result *engine.Result
	// Decisions lists per-object cache decisions.
	Decisions []AccessDecision
	// Degraded reports that at least one access was forced or failed.
	Degraded bool
	// SiteErrors details each unavailable site touched by the query.
	SiteErrors []SiteError
	// Phase timings in microseconds, consumed by the proxy's flight
	// recorder for critical-path attribution: ExecUS is the lock-free
	// bind/execute phase, LockWaitUS the time blocked waiting for the
	// decision lock, DecideUS the locked decision phase.
	ExecUS     int64
	LockWaitUS int64
	DecideUS   int64
}

// New builds a mediator. The engine must serve the same schema.
func New(cfg Config) (*Mediator, error) {
	if cfg.Schema == nil || cfg.Engine == nil {
		return nil, fmt.Errorf("federation: schema and engine are required")
	}
	if cfg.Engine.Schema() != cfg.Schema {
		return nil, fmt.Errorf("federation: engine serves schema %q, mediator configured for %q",
			cfg.Engine.Schema().Name, cfg.Schema.Name)
	}
	if cfg.Net == nil {
		cfg.Net = netcost.Uniform()
	}
	m := &Mediator{
		cfg:          cfg,
		objects:      Objects(cfg.Schema, cfg.Granularity, cfg.Net),
		tel:          core.NewTelemetry(cfg.Obs),
		queryLatency: cfg.Obs.Histogram("federation.query_latency_us", obs.DefaultLatencyBuckets()),
		objsTouched:  cfg.Obs.Counter("federation.objects_touched"),
		queriesMet:   cfg.Obs.Counter("federation.queries"),
		ledger:       cfg.Ledger,
	}
	if ts, ok := cfg.Policy.(core.TelemetrySetter); ok && cfg.Obs != nil {
		ts.SetTelemetry(m.tel)
	}
	if cfg.Shadows {
		var capacity int64
		if cfg.Policy != nil {
			capacity = cfg.Policy.Capacity()
		}
		m.shadows = core.NewShadowSet(capacity)
		m.shadows.SetTelemetry(m.tel)
	}
	return m, nil
}

// Obs returns the registry the mediator publishes into (nil when
// observability is not configured).
func (m *Mediator) Obs() *obs.Registry { return m.cfg.Obs }

// SetHealth attaches a site-health source (the proxy's breakers).
// Nil detaches; every site is then considered available.
func (m *Mediator) SetHealth(h SiteHealth) {
	m.mu.Lock()
	m.health = h
	m.mu.Unlock()
}

// Objects returns the cacheable-object universe.
func (m *Mediator) Objects() map[core.ObjectID]core.Object { return m.objects }

// Schema returns the federated release schema.
func (m *Mediator) Schema() *catalog.Schema { return m.cfg.Schema }

// Granularity returns the configured object granularity.
func (m *Mediator) Granularity() Granularity { return m.cfg.Granularity }

// Policy returns the configured cache policy (nil when caching is
// disabled).
func (m *Mediator) Policy() core.Policy { return m.cfg.Policy }

// Accounting returns the accumulated flow accounting (a consistent
// snapshot: never mid-query).
func (m *Mediator) Accounting() core.Accounting {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.acct
}

// Telemetry returns the mediator's core telemetry (nil when
// observability is not configured); the proxy publishes its pipeline
// concurrency gauges through it.
func (m *Mediator) Telemetry() *core.Telemetry { return m.tel }

// Ledger returns the decision ledger (nil when not configured).
func (m *Mediator) Ledger() *ledger.Ledger { return m.ledger }

// Shadows returns the counterfactual shadow set (nil when disabled).
// The set mutates under the mediator's decision lock; concurrent
// readers should prefer ShadowStats.
func (m *Mediator) Shadows() *core.ShadowSet { return m.shadows }

// PolicyStats is a consistent snapshot of the cache policy's
// externally visible state, taken under the decision lock.
type PolicyStats struct {
	Name     string
	Used     int64
	Capacity int64
	// Contents lists cached object ids when the policy implements
	// core.ContentLister (nil otherwise).
	Contents []core.ObjectID
}

// PolicyStats snapshots the policy under the decision lock so readers
// never observe a cache mid-decision; ok is false when caching is
// disabled.
func (m *Mediator) PolicyStats() (ps PolicyStats, ok bool) {
	pol := m.cfg.Policy
	if pol == nil {
		return PolicyStats{}, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ps = PolicyStats{Name: pol.Name(), Used: pol.Used(), Capacity: pol.Capacity()}
	if cl, isLister := pol.(core.ContentLister); isLister {
		ps.Contents = cl.Contents()
	}
	return ps, true
}

// ShadowStats is a consistent snapshot of the counterfactual
// baselines, taken under the decision lock.
type ShadowStats struct {
	Baselines             []core.ShadowResult
	OptBoundBytes         int64
	CompetitiveRatioMilli int64
}

// ShadowStats snapshots the shadow baselines under the decision lock;
// zero-valued when shadows are disabled.
func (m *Mediator) ShadowStats() ShadowStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return ShadowStats{
		Baselines:             m.shadows.Baselines(),
		OptBoundBytes:         m.shadows.OptBound(),
		CompetitiveRatioMilli: int64(m.shadows.CompetitiveRatio() * 1000),
	}
}

// Clock returns the number of queries mediated so far.
func (m *Mediator) Clock() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t
}

// Query parses, executes, and accounts one statement.
func (m *Mediator) Query(sql string) (*QueryReport, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return m.QueryStmt(sql, stmt)
}

// QueryStmt is Query over a pre-parsed statement.
func (m *Mediator) QueryStmt(sql string, stmt *sqlparse.SelectStmt) (*QueryReport, error) {
	return m.QueryStmtTraced(sql, stmt, "")
}

// QueryStmtTraced is QueryStmt carrying the distributed trace id of
// the enclosing query; ledger records emitted for its accesses carry
// the id, linking span waterfalls to the decisions inside them.
func (m *Mediator) QueryStmtTraced(sql string, stmt *sqlparse.SelectStmt, traceID string) (*QueryReport, error) {
	start := time.Now()
	// Execution phase — lock-free. Bind and engine evaluation read only
	// immutable schema/column data; concurrent queries overlap here.
	b, err := engine.Bind(m.cfg.Schema, stmt)
	if err != nil {
		return nil, err
	}
	res, err := m.cfg.Engine.Execute(stmt)
	if err != nil {
		return nil, err
	}
	accs := Decompose(b, m.cfg.Schema.Name, res.Bytes, m.cfg.Granularity)
	// Resolve objects before taking the lock; the universe is immutable.
	objs := make([]core.Object, len(accs))
	for i, acc := range accs {
		obj, ok := m.objects[acc.Object]
		if !ok {
			return nil, fmt.Errorf("federation: decomposition produced unknown object %s", acc.Object)
		}
		objs[i] = obj
	}

	execUS := time.Since(start).Microseconds()

	// Decision phase — the short critical section. Policy decisions,
	// accounting, ledger records, and shadow replays stay sequential in
	// query order so Σ decision yields = D_A is exact and every policy
	// observes a consistent clock.
	lockStart := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	lockWait := time.Since(lockStart)
	m.tel.ObserveLockWait(lockWait)
	decidePhaseStart := time.Now()
	m.t++
	m.acct.Queries++
	m.queriesMet.Add(1)
	m.tel.RecordQuery()
	rep := &QueryReport{SQL: sql, Seq: m.t, Result: res}
	policyName := "none"
	if m.cfg.Policy != nil {
		policyName = m.cfg.Policy.Name()
	}
	for i, acc := range accs {
		obj := objs[i]
		// Degraded mode: an unavailable site makes bypass and load
		// impossible, so the policy is not consulted (outage traffic
		// must not distort its learned rate profiles). The access is
		// forced to serve-from-cache or dropped as a failed leg.
		if m.health != nil {
			if ok, reason := m.health.SiteAvailable(obj.Site); !ok {
				if err := m.degradedAccess(rep, obj, acc.Yield, reason, policyName, traceID); err != nil {
					return nil, err
				}
				continue
			}
		}
		d := core.Bypass
		if m.cfg.Policy != nil {
			decideStart := time.Now()
			d = m.cfg.Policy.Access(m.t, obj, acc.Yield)
			m.tel.ObserveDecide(time.Since(decideStart))
		}
		if err := core.Account(&m.acct, obj, acc.Yield, d); err != nil {
			return nil, err
		}
		m.tel.RecordAccess(policyName, obj, acc.Yield, d)
		m.shadows.Access(m.t, obj, acc.Yield, d)
		if m.ledger != nil {
			m.ledger.Record(core.DecisionRecordFor(m.t, m.cfg.Policy, traceID, obj, acc.Yield, d))
		}
		if m.journal != nil {
			m.journal.JournalAccess(JournalRecord{Kind: JournalAccess, T: m.t, Object: obj.ID, Yield: acc.Yield, Decision: d})
		}
		m.objsTouched.Add(1)
		rep.Decisions = append(rep.Decisions, AccessDecision{
			Object:   acc.Object,
			Site:     obj.Site,
			Yield:    acc.Yield,
			Decision: d,
		})
	}
	if rep.Degraded {
		m.tel.RecordDegradedQuery()
	}
	if m.cfg.Policy != nil {
		if ev := m.cfg.Policy.Evictions(); ev > m.lastEvictions {
			m.tel.RecordEvictions(policyName, ev-m.lastEvictions)
			m.lastEvictions = ev
		}
	}
	rep.ExecUS = execUS
	rep.LockWaitUS = lockWait.Microseconds()
	rep.DecideUS = time.Since(decidePhaseStart).Microseconds()
	m.queryLatency.Observe(time.Since(start).Microseconds())
	return rep, nil
}

// degradedAccess handles one access whose owning site is unavailable.
// Two outcomes, both fully accounted:
//
//   - Object cached → forced hit: the cached (possibly stale) copy is
//     served and charged as a hit, so D_A reconciliation stays exact.
//     The ledger records the forced decision with reason
//     "forced-cache: <detail>" and Stale set.
//   - Object not cached → failed leg: nothing is delivered and
//     nothing is charged. The query's result shrinks by the leg's
//     yield, the ledger records action "failed" with zero yield and
//     WAN cost, and the report carries a per-site error annotation.
func (m *Mediator) degradedAccess(rep *QueryReport, obj core.Object, yield int64, reason, policyName, traceID string) error {
	m.objsTouched.Add(1)
	if m.cfg.Policy != nil && m.cfg.Policy.Contains(obj.ID) {
		full := core.ReasonForcedCache + ": " + reason
		if err := core.Account(&m.acct, obj, yield, core.Hit); err != nil {
			return err
		}
		m.tel.RecordForced(policyName, obj.Site, obj, yield)
		m.shadows.Access(m.t, obj, yield, core.Hit)
		if m.ledger != nil {
			rec := core.DecisionRecordFor(m.t, m.cfg.Policy, traceID, obj, yield, core.Hit)
			rec.Reason = full
			rec.Stale = true
			m.ledger.Record(rec)
		}
		if m.journal != nil {
			m.journal.JournalAccess(JournalRecord{Kind: JournalForced, T: m.t, Object: obj.ID, Yield: yield, Decision: core.Hit})
		}
		rep.Decisions = append(rep.Decisions, AccessDecision{
			Object:   obj.ID,
			Site:     obj.Site,
			Yield:    yield,
			Decision: core.Hit,
			Forced:   true,
			Reason:   full,
		})
		noteSiteError(rep, obj.Site, reason, 0)
		return nil
	}
	full := core.ReasonFailedLeg + ": " + reason
	m.tel.RecordFailedLeg(obj.Site)
	if m.ledger != nil {
		rec := ledger.DecisionRecord{
			T:         m.t,
			Trace:     traceID,
			Object:    string(obj.ID),
			Action:    core.ReasonFailedLeg,
			Size:      obj.Size,
			FetchCost: obj.FetchCost,
			Reason:    full,
		}
		if m.cfg.Policy != nil {
			rec.Policy = m.cfg.Policy.Name()
		}
		m.ledger.Record(rec)
	}
	if m.journal != nil {
		m.journal.JournalAccess(JournalRecord{Kind: JournalFailed, T: m.t, Object: obj.ID, Yield: yield})
	}
	// The client never receives this leg's bytes: shrink the result so
	// delivered bytes still equal the accounting's D_A increment.
	rep.Result.Bytes -= yield
	if rep.Result.Bytes < 0 {
		rep.Result.Bytes = 0
	}
	rep.Decisions = append(rep.Decisions, AccessDecision{
		Object: obj.ID,
		Site:   obj.Site,
		Yield:  yield,
		Failed: true,
		Reason: full,
	})
	noteSiteError(rep, obj.Site, reason, yield)
	return nil
}

// noteSiteError marks the report degraded, aggregating the lost yield
// per site.
func noteSiteError(rep *QueryReport, site, reason string, lost int64) {
	rep.Degraded = true
	for i := range rep.SiteErrors {
		if rep.SiteErrors[i].Site == site {
			rep.SiteErrors[i].LostBytes += lost
			return
		}
	}
	rep.SiteErrors = append(rep.SiteErrors, SiteError{Site: site, Reason: reason, LostBytes: lost})
}

// Subqueries splits a bound multi-table statement into one
// single-table statement per FROM table, as the paper's mediator ships
// sub-queries to each member database: each subquery projects the
// columns the mediator needs from that table (its referenced columns,
// including join keys) and applies the table's local literal
// predicates. Cross-table conditions are evaluated at the mediator
// after the per-site results return.
func Subqueries(b *engine.Bound) []*sqlparse.SelectStmt {
	out := make([]*sqlparse.SelectStmt, len(b.Tables))
	refs := b.ReferencedColumns()
	for i, t := range b.Tables {
		sub := &sqlparse.SelectStmt{
			From: []sqlparse.TableRef{{Name: t.Name}},
		}
		for _, r := range refs {
			if r.TableIdx != i {
				continue
			}
			sub.Items = append(sub.Items, sqlparse.SelectItem{
				Col: sqlparse.ColRef{Column: r.Col.Name},
			})
		}
		if len(sub.Items) == 0 {
			sub.Items = []sqlparse.SelectItem{{Star: true}}
		}
		for _, c := range b.Conds {
			if c.Right != nil || c.Left.TableIdx != i {
				continue
			}
			cond := c.Cond
			cond.Left = sqlparse.ColRef{Column: c.Left.Col.Name}
			sub.Where = append(sub.Where, cond)
		}
		out[i] = sub
	}
	return out
}
