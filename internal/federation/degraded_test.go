package federation

import (
	"strings"
	"testing"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/obs"
	"bypassyield/internal/obs/ledger"
)

// fakeHealth marks a chosen set of sites down.
type fakeHealth struct{ down map[string]string }

func (h *fakeHealth) SiteAvailable(site string) (bool, string) {
	if reason, bad := h.down[site]; bad {
		return false, reason
	}
	return true, ""
}

// loadAll caches every object on first touch — a deterministic stand-in
// for warming the cache, so forced-cache tests don't depend on a real
// policy's admission thresholds.
type loadAll struct {
	objs map[core.ObjectID]bool
	used int64
}

func (p *loadAll) Name() string { return "load-all" }
func (p *loadAll) Access(t int64, obj core.Object, yield int64) core.Decision {
	if p.objs[obj.ID] {
		return core.Hit
	}
	if p.objs == nil {
		p.objs = make(map[core.ObjectID]bool)
	}
	p.objs[obj.ID] = true
	p.used += obj.Size
	return core.Load
}
func (p *loadAll) Used() int64                    { return p.used }
func (p *loadAll) Capacity() int64                { return 1 << 62 }
func (p *loadAll) Contains(id core.ObjectID) bool { return p.objs[id] }
func (p *loadAll) Evictions() int64               { return 0 }
func (p *loadAll) Reset()                         { p.objs = nil; p.used = 0 }

func newDegradedMediator(t *testing.T, p core.Policy) (*Mediator, *obs.Registry, *ledger.Ledger) {
	t.Helper()
	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 20000})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	led := ledger.New(1024)
	m, err := New(Config{Schema: s, Engine: db, Policy: p, Granularity: Tables, Obs: reg, Ledger: led})
	if err != nil {
		t.Fatal(err)
	}
	return m, reg, led
}

func TestDegradedFailedLeg(t *testing.T) {
	// Site down, nothing cached: the leg fails, nothing is charged,
	// and the result shrinks by the lost yield.
	cap := catalog.EDR().TotalBytes()
	m, reg, led := newDegradedMediator(t, core.NewRateProfile(core.RateProfileConfig{Capacity: cap}))
	m.SetHealth(&fakeHealth{down: map[string]string{catalog.SitePhoto: "breaker open site=" + catalog.SitePhoto}})

	rep, err := m.Query("select ra, dec from photoobj where ra < 90")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Fatal("report not marked degraded")
	}
	if len(rep.Decisions) != 1 || !rep.Decisions[0].Failed {
		t.Fatalf("decisions = %+v, want one failed leg", rep.Decisions)
	}
	d := rep.Decisions[0]
	if d.Yield <= 0 {
		t.Fatal("failed leg lost no yield — query should have yielded bytes")
	}
	if !strings.HasPrefix(d.Reason, core.ReasonFailedLeg+": breaker open") {
		t.Fatalf("reason = %q", d.Reason)
	}
	if rep.Result.Bytes != 0 {
		t.Fatalf("result bytes = %d, want 0 (single-site query, site down)", rep.Result.Bytes)
	}
	if len(rep.SiteErrors) != 1 || rep.SiteErrors[0].Site != catalog.SitePhoto || rep.SiteErrors[0].LostBytes != d.Yield {
		t.Fatalf("site errors = %+v", rep.SiteErrors)
	}
	// Nothing charged: D_A, D_S, D_C, D_L all zero.
	acct := m.Accounting()
	if acct.DeliveredBytes() != 0 || acct.WANBytes() != 0 {
		t.Fatalf("accounting charged a failed leg: %+v", acct)
	}
	// Ledger records the failure with zero yield and WAN cost.
	recs := led.Snapshot()
	if len(recs) != 1 || recs[0].Action != "failed" || recs[0].Yield != 0 || recs[0].WANCost != 0 {
		t.Fatalf("ledger = %+v", recs)
	}
	s := reg.Snapshot()
	if s.CounterValue("core.failed_legs", catalog.SitePhoto) != 1 {
		t.Fatal("core.failed_legs not counted")
	}
	if s.CounterValue("core.degraded_queries", "") != 1 {
		t.Fatal("core.degraded_queries not counted")
	}
}

func TestDegradedForcedCache(t *testing.T) {
	// Warm the cache while healthy, then kill the site: accesses are
	// forced to serve-from-cache, charged exactly as hits.
	pol := &loadAll{}
	m, reg, led := newDegradedMediator(t, pol)
	const sql = "select ra, dec from photoobj where ra < 90"

	// First query loads the photoobj table into cache.
	if _, err := m.Query(sql); err != nil {
		t.Fatal(err)
	}
	obj := TableObjectID(catalog.EDR().Name, "photoobj")
	if !pol.Contains(obj) {
		t.Fatalf("warm-up did not cache %s", obj)
	}
	before := m.Accounting()

	m.SetHealth(&fakeHealth{down: map[string]string{catalog.SitePhoto: "breaker open site=" + catalog.SitePhoto}})
	rep, err := m.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || len(rep.Decisions) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	d := rep.Decisions[0]
	if !d.Forced || d.Failed || d.Decision != core.Hit {
		t.Fatalf("decision = %+v, want forced hit", d)
	}
	if !strings.HasPrefix(d.Reason, core.ReasonForcedCache+": breaker open") {
		t.Fatalf("reason = %q", d.Reason)
	}
	// The result is served in full from cache.
	if rep.Result.Bytes != d.Yield || d.Yield <= 0 {
		t.Fatalf("bytes = %d, yield = %d", rep.Result.Bytes, d.Yield)
	}
	// Charged exactly as a hit: D_A and D_C grow by the yield, WAN
	// unchanged.
	acct := m.Accounting()
	if acct.DeliveredBytes() != before.DeliveredBytes()+d.Yield {
		t.Fatalf("D_A grew by %d, want %d", acct.DeliveredBytes()-before.DeliveredBytes(), d.Yield)
	}
	if acct.WANBytes() != before.WANBytes() {
		t.Fatal("forced hit charged WAN traffic")
	}
	// Ledger: the forced record is a stale hit with the forced reason.
	recs := led.Snapshot()
	last := recs[len(recs)-1]
	if last.Action != "hit" || !last.Stale || !strings.HasPrefix(last.Reason, core.ReasonForcedCache) {
		t.Fatalf("ledger record = %+v", last)
	}
	s := reg.Snapshot()
	if s.CounterValue("core.forced_decisions", catalog.SitePhoto) != 1 {
		t.Fatal("core.forced_decisions not counted")
	}
	if s.CounterValue("core.stale_served_bytes", "") != d.Yield {
		t.Fatal("core.stale_served_bytes not counted")
	}
}

func TestDegradedMixedSites(t *testing.T) {
	// A join across a healthy and a dead site: the healthy leg is
	// decided normally, the dead leg fails, and Σ ledger yields still
	// equals D_A.
	m, _, led := newDegradedMediator(t, nil)
	m.SetHealth(&fakeHealth{down: map[string]string{catalog.SiteSpec: "breaker open site=" + catalog.SiteSpec}})

	rep, err := m.Query("select p.ra, s.z from photoobj p, specobj s where p.objid = s.objid")
	if err != nil {
		t.Fatal(err)
	}
	var failed, served int
	var lostYield int64
	for _, d := range rep.Decisions {
		if d.Failed {
			failed++
			lostYield += d.Yield
			if d.Site != catalog.SiteSpec {
				t.Fatalf("failed leg on healthy site: %+v", d)
			}
		} else {
			served++
			if d.Site == catalog.SiteSpec {
				t.Fatalf("dead site served a leg: %+v", d)
			}
		}
	}
	if failed == 0 || served == 0 {
		t.Fatalf("failed = %d, served = %d; want both non-zero", failed, served)
	}
	// Delivered bytes: the engine's full yield minus the lost legs.
	acct := m.Accounting()
	if acct.DeliveredBytes() != rep.Result.Bytes {
		t.Fatalf("D_A = %d, result bytes = %d", acct.DeliveredBytes(), rep.Result.Bytes)
	}
	// Σ ledger yields over all records equals D_A (failed records carry
	// zero yield by construction).
	var sum int64
	for _, r := range led.Snapshot() {
		sum += r.Yield
	}
	if sum != acct.DeliveredBytes() {
		t.Fatalf("Σ ledger yields = %d, D_A = %d", sum, acct.DeliveredBytes())
	}
	if lostYield <= 0 {
		t.Fatal("no yield lost on the dead site")
	}
}

func TestHealthDetachedServesNormally(t *testing.T) {
	m, _, _ := newDegradedMediator(t, nil)
	m.SetHealth(&fakeHealth{down: map[string]string{catalog.SitePhoto: "down"}})
	m.SetHealth(nil)
	rep, err := m.Query("select ra from photoobj where ra < 10")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded || len(rep.SiteErrors) != 0 {
		t.Fatalf("detached health still degraded: %+v", rep)
	}
}
